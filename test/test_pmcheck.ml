(* Tests for the bug-finder substrate: the simulated memory, the
   persistency state machine, the interpreter, trace serialization and
   crash simulation. *)

open Hippo_pmir
open Hippo_pmcheck

let v = Value.reg
let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_regions () =
  Alcotest.(check bool) "pm" true (Layout.is_pm Layout.pm_base);
  Alcotest.(check bool) "vol not pm" false (Layout.is_pm Layout.vol_base);
  Alcotest.(check bool) "vol ptr" true (Layout.is_volatile_ptr Layout.stack_base);
  Alcotest.(check bool) "global ptr" true (Layout.is_volatile_ptr Layout.global_base);
  Alcotest.(check bool) "small int is no ptr" false (Layout.is_volatile_ptr 42);
  Alcotest.(check bool) "pm is not volatile" false
    (Layout.is_volatile_ptr (Layout.pm_base + 100));
  Alcotest.(check int) "line base" (Layout.pm_base)
    (Layout.line_base (Layout.pm_base + 63));
  Alcotest.(check int) "line of addr" (Layout.pm_base / 64 + 1)
    (Layout.line_of_addr (Layout.pm_base + 64))

(* ------------------------------------------------------------------ *)
(* Mem *)

let mk_mem () = Mem.create []

let test_mem_load_store_sizes () =
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  List.iter
    (fun (size, value) ->
      Mem.store m ~addr:a ~size value;
      Alcotest.(check int)
        (Printf.sprintf "size %d" size)
        value
        (Mem.load m ~addr:a ~size))
    [ (1, 0xAB); (2, 0xBEEF); (4, 0xDEADBEE); (8, 0x1122334455667788) ]

let test_mem_little_endian () =
  let m = mk_mem () in
  let a = Mem.alloc_vol m 16 in
  Mem.store m ~addr:a ~size:8 0x0807060504030201;
  Alcotest.(check int) "byte 0" 0x01 (Mem.load m ~addr:a ~size:1);
  Alcotest.(check int) "byte 7" 0x08 (Mem.load m ~addr:(a + 7) ~size:1)

let test_mem_regions_disjoint () =
  let m = mk_mem () in
  let pm = Mem.alloc_pm m 8 and vol = Mem.alloc_vol m 8 in
  Mem.store m ~addr:pm ~size:8 1;
  Mem.store m ~addr:vol ~size:8 2;
  Alcotest.(check int) "pm" 1 (Mem.load m ~addr:pm ~size:8);
  Alcotest.(check int) "vol" 2 (Mem.load m ~addr:vol ~size:8)

let test_mem_traps () =
  let m = mk_mem () in
  let trap f = match f () with
    | exception Mem.Trap _ -> ()
    | _ -> Alcotest.fail "expected trap"
  in
  trap (fun () -> Mem.load m ~addr:0 ~size:8);
  trap (fun () -> Mem.load m ~addr:0x9999_9999 ~size:8);
  trap (fun () -> Mem.load m ~addr:(Layout.pm_base - 1) ~size:8);
  trap (fun () -> Mem.store m ~addr:(Layout.pm_base + (1 lsl 24) - 4) ~size:8 0)

let test_mem_pm_alloc_alignment () =
  let m = mk_mem () in
  let a = Mem.alloc_pm m 10 and b = Mem.alloc_pm m 10 in
  Alcotest.(check int) "line aligned" 0 (a mod 64);
  Alcotest.(check int) "next line" 64 (b - a)

let test_mem_globals () =
  let m = Mem.create [ ("g1", 8); ("g2", 100) ] in
  let a1 = Mem.global_addr m "g1" and a2 = Mem.global_addr m "g2" in
  Alcotest.(check bool) "distinct" true (a1 <> a2);
  Alcotest.(check bool) "in globals region" true
    (Layout.region_of_addr a1 = Layout.Globals);
  (match Mem.global_addr m "nope" with
  | exception Mem.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap")

let test_mem_persist_and_crash_image () =
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  Mem.store m ~addr:a ~size:8 7;
  let img0 = Mem.crash_image m in
  Alcotest.(check int) "not persisted yet" 0
    (Int64.to_int (Bytes.get_int64_le img0 (a - Layout.pm_base)));
  Mem.persist_range m ~addr:a ~size:8;
  let img1 = Mem.crash_image m in
  Alcotest.(check int) "persisted" 7
    (Int64.to_int (Bytes.get_int64_le img1 (a - Layout.pm_base)))

let test_mem_string_roundtrip () =
  let m = mk_mem () in
  let a = Mem.alloc_vol m 32 in
  Mem.write_string m ~addr:a "hello pm";
  Alcotest.(check string) "roundtrip" "hello pm"
    (Mem.read_string m ~addr:a ~len:8)

(* ------------------------------------------------------------------ *)
(* Pstate *)

let dummy_iid () = Iid.fresh ~func:"t"
let dloc = Loc.make ~file:"t.c" ~line:1

let crash_at_exit : Report.crash_info =
  { crash_iid = None; crash_loc = dloc; crash_stack = [] }

let test_pstate_store_flush_fence () =
  let ps = Pstate.create () in
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  Mem.store m ~addr:a ~size:8 42;
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:0);
  Alcotest.(check int) "dirty" 1 (Pstate.unpersisted_count ps);
  let moved = Pstate.flush ps m ~iid:(dummy_iid ()) ~kind:Instr.Clwb ~addr:a in
  Alcotest.(check int) "flushed one" 1 moved;
  Alcotest.(check int) "pending" 1 (Pstate.pending_count ps);
  let drained = Pstate.fence ps m ~seq:2 in
  Alcotest.(check int) "one line drained" 1 drained;
  Alcotest.(check int) "all durable" 0 (Pstate.unpersisted_count ps);
  Alcotest.(check int) "durable content" 42
    (Int64.to_int (Bytes.get_int64_le (Mem.crash_image m) (a - Layout.pm_base)))

let test_pstate_clflush_immediate () =
  let ps = Pstate.create () in
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  Mem.store m ~addr:a ~size:8 9;
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:0);
  ignore (Pstate.flush ps m ~iid:(dummy_iid ()) ~kind:Instr.Clflush ~addr:a);
  Alcotest.(check int) "durable without fence" 0 (Pstate.unpersisted_count ps);
  Alcotest.(check int) "content" 9
    (Int64.to_int (Bytes.get_int64_le (Mem.crash_image m) (a - Layout.pm_base)))

let test_pstate_clflush_drains_pending_writeback () =
  (* clwb queues a write-back of value 1; the line is re-stored with 2 and
     clflush'd. Write-backs to one line complete in order, so the fence
     must not let the stale clwb snapshot overwrite the clflush'd bytes. *)
  let ps = Pstate.create () in
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  Mem.store m ~addr:a ~size:8 1;
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:0);
  ignore (Pstate.flush ps m ~iid:(dummy_iid ()) ~kind:Instr.Clwb ~addr:a);
  Mem.store m ~addr:a ~size:8 2;
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:1);
  ignore (Pstate.flush ps m ~iid:(dummy_iid ()) ~kind:Instr.Clflush ~addr:a);
  Alcotest.(check int) "nothing in flight" 0 (Pstate.pending_count ps);
  Alcotest.(check int) "all durable" 0 (Pstate.unpersisted_count ps);
  ignore (Pstate.fence ps m ~seq:2);
  Alcotest.(check int) "newest value survives the fence" 2
    (Int64.to_int (Bytes.get_int64_le (Mem.crash_image m) (a - Layout.pm_base)))

let test_pstate_nt_store () =
  let ps = Pstate.create () in
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  Mem.store m ~addr:a ~size:8 5;
  Pstate.store_nt ps m ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:0;
  Alcotest.(check int) "pending, no flush needed" 1 (Pstate.pending_count ps);
  ignore (Pstate.fence ps m ~seq:1);
  Alcotest.(check int) "durable" 0 (Pstate.unpersisted_count ps)

let test_pstate_flush_snapshot_semantics () =
  (* a store issued after the flush but before the fence is NOT covered *)
  let ps = Pstate.create () in
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  Mem.store m ~addr:a ~size:8 1;
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:0);
  ignore (Pstate.flush ps m ~iid:(dummy_iid ()) ~kind:Instr.Clwb ~addr:a);
  (* overwrite the same range post-flush *)
  Mem.store m ~addr:a ~size:8 2;
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:1);
  ignore (Pstate.fence ps m ~seq:2);
  Alcotest.(check int) "crash sees the flushed snapshot" 1
    (Int64.to_int (Bytes.get_int64_le (Mem.crash_image m) (a - Layout.pm_base)));
  Alcotest.(check int) "newer store still tracked" 1 (Pstate.unpersisted_count ps)

let test_pstate_supersede () =
  let ps = Pstate.create () in
  let m = mk_mem () in
  let a = Mem.alloc_pm m 64 in
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:0);
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:1);
  Alcotest.(check int) "newest only" 1 (Pstate.unpersisted_count ps)

let test_pstate_classification () =
  let ps = Pstate.create () in
  let m = mk_mem () in
  let a = Mem.alloc_pm m 256 in
  (* store 1: never flushed, fence follows -> missing-flush *)
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:(Loc.make ~file:"t.c" ~line:1) ~stack:[] ~addr:a ~size:8 ~seq:0);
  ignore (Pstate.fence ps m ~seq:1);
  (* store 2: flushed, never fenced -> missing-fence *)
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:(Loc.make ~file:"t.c" ~line:2) ~stack:[] ~addr:(a + 64) ~size:8 ~seq:2);
  ignore (Pstate.flush ps m ~iid:(dummy_iid ()) ~kind:Instr.Clwb ~addr:(a + 64));
  (* store 3: no flush, no subsequent fence -> missing-flush&fence *)
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:(Loc.make ~file:"t.c" ~line:3) ~stack:[] ~addr:(a + 128) ~size:8 ~seq:3);
  let bugs = Pstate.unpersisted_bugs ps ~crash:crash_at_exit in
  let kinds = List.map (fun (b : Report.bug) -> b.Report.kind) bugs in
  Alcotest.(check (list string)) "classified in line order"
    [ "missing-flush"; "missing-fence"; "missing-flush&fence" ]
    (List.map Report.kind_to_string kinds);
  (* the missing-fence bug records its ordering flush *)
  let mf = List.nth bugs 1 in
  Alcotest.(check bool) "ordering flush recorded" true
    (mf.Report.ordering_flush <> None)

let test_pstate_flush_cross_line_record () =
  (* an 8-byte store straddling two lines is flushed from either line *)
  let ps = Pstate.create () in
  let m = mk_mem () in
  let base = Mem.alloc_pm m 128 in
  let a = base + 60 in
  Mem.store m ~addr:a ~size:8 77;
  ignore (Pstate.store ps ~iid:(dummy_iid ()) ~loc:dloc ~stack:[] ~addr:a ~size:8 ~seq:0);
  ignore (Pstate.flush ps m ~iid:(dummy_iid ()) ~kind:Instr.Clwb ~addr:(base + 64));
  Alcotest.(check int) "record pending via second line" 1 (Pstate.pending_count ps)

(* ------------------------------------------------------------------ *)
(* Interp *)

let build_prog emit =
  let b = Builder.create () in
  emit b;
  let p = Builder.program b in
  Validate.check_exn p;
  p

let test_interp_arith_and_flow () =
  (* iterative factorial through a loop *)
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "fact" [ "n" ] ~body:(fun fb ->
              ignore (Builder.set fb "acc" (i 1));
              Builder.while_ fb
                ~cond:(fun () -> Builder.gt fb (v "n") (i 1))
                ~body:(fun () ->
                  ignore (Builder.set fb "acc" (Builder.mul fb (v "acc") (v "n")));
                  ignore (Builder.set fb "n" (Builder.sub fb (v "n") (i 1))));
              Builder.ret fb (v "acc"))
        in
        ())
  in
  let t = Interp.create Interp.default_config p in
  Alcotest.(check int) "5! = 120" 120 (Interp.call t "fact" [ 5 ]);
  Alcotest.(check int) "0! = 1" 1 (Interp.call t "fact" [ 0 ])

let test_interp_recursion () =
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "fib" [ "n" ] ~body:(fun fb ->
              Builder.if_ fb
                (Builder.lt fb (v "n") (i 2))
                ~then_:(fun () -> Builder.ret fb (v "n"))
                ();
              let a = Builder.call fb "fib" [ Builder.sub fb (v "n") (i 1) ] in
              let c = Builder.call fb "fib" [ Builder.sub fb (v "n") (i 2) ] in
              Builder.ret fb (Builder.add fb a c))
        in
        ())
  in
  let t = Interp.create Interp.default_config p in
  Alcotest.(check int) "fib 10" 55 (Interp.call t "fib" [ 10 ])

let test_interp_division_traps () =
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "d" [ "x" ] ~body:(fun fb ->
              Builder.ret fb (Builder.div fb (i 10) (v "x")))
        in
        ())
  in
  let t = Interp.create Interp.default_config p in
  Alcotest.(check int) "10/2" 5 (Interp.call t "d" [ 2 ]);
  match Interp.call t "d" [ 0 ] with
  | exception Mem.Trap _ -> ()
  | _ -> Alcotest.fail "expected division trap"

let test_interp_intrinsics_and_output () =
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "main" [] ~body:(fun fb ->
              let pm = Builder.call fb "pm_alloc" [ i 64 ] in
              let base = Builder.call fb "pm_base" [] in
              Builder.call_void fb "emit" [ Builder.eq fb pm base ];
              let m1 = Builder.call fb "malloc" [ i 8 ] in
              Builder.call_void fb "free" [ m1 ];
              Builder.call_void fb "emit" [ i 7 ];
              Builder.ret_void fb)
        in
        ())
  in
  let t = Interp.create Interp.default_config p in
  ignore (Interp.call t "main" []);
  Alcotest.(check (list int)) "emitted" [ 1; 7 ] (Interp.output t)

let test_interp_abort_and_fuel () =
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "boom" [] ~body:(fun fb ->
              Builder.call_void fb "abort" [];
              Builder.ret_void fb)
        in
        let _ =
          Builder.func b "spin" [] ~body:(fun fb ->
              Builder.while_ fb ~cond:(fun () -> i 1) ~body:(fun () -> ());
              Builder.ret_void fb)
        in
        ())
  in
  let t = Interp.create Interp.default_config p in
  (match Interp.call t "boom" [] with
  | exception Interp.Aborted -> ()
  | _ -> Alcotest.fail "expected abort");
  let t2 = Interp.create { Interp.default_config with fuel = 1000 } p in
  match Interp.call t2 "spin" [] with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected out of fuel"

let test_interp_alloca_stack_release () =
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "leaf" [] ~body:(fun fb ->
              let a = Builder.alloca fb 1024 in
              Builder.store fb ~addr:a (i 1);
              Builder.ret fb a)
        in
        let _ =
          Builder.func b "main" [] ~body:(fun fb ->
              Builder.for_ fb "k" ~from:(i 0) ~below:(i 100) ~body:(fun _ ->
                  ignore (Builder.call fb "leaf" []));
              Builder.ret_void fb)
        in
        ())
  in
  let t = Interp.create { Interp.default_config with stack_size = 8192 } p in
  (* without per-frame stack release this would overflow *)
  ignore (Interp.call t "main" [])

let buggy_store_prog () =
  build_prog (fun b ->
      let _ =
        Builder.func b "main" [] ~body:(fun fb ->
            let pm = Builder.call fb "pm_alloc" [ i 64 ] in
            Builder.store fb ~addr:pm (i 123);
            Builder.ret_void fb)
      in
      ())

let test_interp_detects_bug_at_exit () =
  let t, _ = Interp.run (buggy_store_prog ()) ~entry:"main" ~args:[] in
  let bugs = Interp.bugs t in
  Alcotest.(check int) "one bug" 1 (List.length bugs);
  Alcotest.(check string) "flush&fence" "missing-flush&fence"
    (Report.kind_to_string (List.hd bugs).Report.kind)

let test_interp_stop_at_crash () =
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "main" [] ~body:(fun fb ->
              let pm = Builder.call fb "pm_alloc" [ i 64 ] in
              Builder.store fb ~addr:pm (i 1);
              Builder.crash fb;
              Builder.flush fb pm;
              Builder.fence fb ();
              Builder.crash fb;
              Builder.call_void fb "emit" [ i 99 ];
              Builder.ret_void fb)
        in
        ())
  in
  let cfg = { Interp.default_config with stop_at_crash = Some 1 } in
  let t = Interp.create cfg p in
  (match Interp.call t "main" [] with
  | exception Interp.Stopped_at_crash -> ()
  | _ -> Alcotest.fail "expected stop");
  Alcotest.(check (list int)) "stopped before emit" [] (Interp.output t);
  Alcotest.(check int) "bug recorded at crash 1" 1 (List.length (Interp.bugs t))

let test_interp_cost_accounting () =
  let run cost prog =
    let cfg = { Interp.default_config with cost = Some cost; trace = false } in
    let t = Interp.create cfg prog in
    ignore (Interp.call t "main" []);
    Interp.cost_ns t
  in
  let flush_free = buggy_store_prog () in
  let with_persist =
    build_prog (fun b ->
        let _ =
          Builder.func b "main" [] ~body:(fun fb ->
              let pm = Builder.call fb "pm_alloc" [ i 64 ] in
              Builder.store fb ~addr:pm (i 123);
              Builder.flush fb pm;
              Builder.fence fb ();
              Builder.ret_void fb)
        in
        ())
  in
  let c0 = run Cost.default flush_free and c1 = run Cost.default with_persist in
  Alcotest.(check bool) "persistence costs more" true (c1 > c0);
  let c2 = run Cost.fence_heavy with_persist in
  Alcotest.(check bool) "fence-heavy model costs more" true (c2 > c1)

let test_interp_global_values () =
  let p =
    build_prog (fun b ->
        Builder.global b "slot" 8;
        let _ =
          Builder.func b "main" [] ~body:(fun fb ->
              Builder.store fb ~addr:(Value.global "slot") (i 31);
              let x = Builder.load fb (Value.global "slot") in
              Builder.call_void fb "emit" [ x ];
              Builder.ret_void fb)
        in
        ())
  in
  let t = Interp.create Interp.default_config p in
  ignore (Interp.call t "main" []);
  Alcotest.(check (list int)) "global round trip" [ 31 ] (Interp.output t)

(* ------------------------------------------------------------------ *)
(* Trace serialization *)

let trace_of_buggy () =
  let p =
    build_prog (fun b ->
        let _ =
          Builder.func b "w" [ "p" ] ~body:(fun fb ->
              Builder.store fb ~addr:(v "p") (i 5);
              Builder.flush fb (v "p");
              Builder.fence fb ();
              Builder.ret_void fb)
        in
        let _ =
          Builder.func b "main" [] ~body:(fun fb ->
              let pm = Builder.call fb "pm_alloc" [ i 64 ] in
              Builder.call_void fb "w" [ pm ];
              Builder.crash fb;
              Builder.ret_void fb)
        in
        ())
  in
  let t, _ = Interp.run p ~entry:"main" ~args:[] in
  Interp.trace t

let test_trace_roundtrip () =
  let tr = trace_of_buggy () in
  Alcotest.(check bool) "nonempty" true (List.length tr >= 5);
  let tr' = Trace.of_string (Trace.to_string tr) in
  Alcotest.(check int) "same length" (List.length tr) (List.length tr');
  Alcotest.(check string) "identical after reserialize"
    (Trace.to_string tr) (Trace.to_string tr')

let test_trace_stacks () =
  let tr = trace_of_buggy () in
  let store_ev =
    List.find (function Trace.Store _ -> true | _ -> false) tr
  in
  let stack = Trace.stack_of store_ev in
  Alcotest.(check int) "two frames" 2 (List.length stack);
  Alcotest.(check string) "inner frame" "w" (List.hd stack).Trace.func;
  Alcotest.(check bool) "inner has call site" true
    ((List.hd stack).Trace.callsite <> None);
  Alcotest.(check bool) "outer is host entry" true
    ((List.nth stack 1).Trace.callsite = None)

let test_sitestats_roundtrip () =
  let stats = Sitestats.create () in
  let s1 = Iid.fresh ~func:"f" in
  Sitestats.observe stats ~site:s1 ~arg:(-1) Trace.Pm_ptr;
  Sitestats.observe stats ~site:s1 ~arg:(-1) Trace.Vol_ptr;
  Sitestats.observe stats ~site:s1 ~arg:0 Trace.Pm_ptr;
  Sitestats.observe stats ~site:s1 ~arg:1 Trace.Not_ptr;
  let lines = Sitestats.to_lines stats in
  Alcotest.(check int) "not-ptr ignored" 2 (List.length lines);
  let stats' = Sitestats.of_lines lines in
  (match Sitestats.find stats' ~site:s1 ~arg:(-1) with
  | Some o ->
      Alcotest.(check int) "pm obs" 1 o.Sitestats.pm;
      Alcotest.(check int) "vol obs" 1 o.Sitestats.vol
  | None -> Alcotest.fail "missing stat");
  Alcotest.(check bool) "arg 1 absent" true
    (Sitestats.find stats' ~site:s1 ~arg:1 = None)

let test_pmtest_format_roundtrip () =
  let t, _ = Interp.run (buggy_store_prog ()) ~entry:"main" ~args:[] in
  let events = Interp.trace t and bugs = Interp.raw_bugs t in
  let text = Pmtest_format.to_string ~events ~bugs in
  let events', bugs' = Pmtest_format.of_string text in
  Alcotest.(check int) "event count" (List.length events) (List.length events');
  Alcotest.(check int) "bug count" (List.length bugs) (List.length bugs');
  Alcotest.(check string) "stable reserialization" text
    (Pmtest_format.to_string ~events:events' ~bugs:bugs');
  (* parsed reports must re-key onto the same instructions *)
  List.iter2
    (fun (a : Report.bug) (b : Report.bug) ->
      Alcotest.(check bool) "same store identity" true
        (Iid.equal a.Report.store.iid b.Report.store.iid))
    bugs bugs'

let test_report_line_roundtrip () =
  let t, _ = Interp.run (buggy_store_prog ()) ~entry:"main" ~args:[] in
  List.iter
    (fun b ->
      let b' = Report.of_line (Report.to_line b) in
      Alcotest.(check string) "bug line roundtrip" (Report.to_line b)
        (Report.to_line b'))
    (Interp.raw_bugs t)

(* ------------------------------------------------------------------ *)
(* Crashsim *)

let counter_prog ~bug =
  (* a persistent counter with a recovery invariant: value == shadow *)
  build_prog (fun b ->
      let _ =
        Builder.func b "init" [] ~body:(fun fb ->
            let c = Builder.call fb "pm_alloc" [ i 128 ] in
            Builder.store fb ~addr:c (i 0);
            Builder.store fb ~addr:(Builder.gep fb c (i 64)) (i 0);
            Builder.flush fb c;
            Builder.flush fb (Builder.gep fb c (i 64));
            Builder.fence fb ();
            Builder.ret fb c)
      in
      let _ =
        Builder.func b "bump" [] ~body:(fun fb ->
            let c = Builder.call fb "pm_base" [] in
            let s = Builder.gep fb c (i 64) in
            let x = Builder.add fb (Builder.load fb c) (i 1) in
            Builder.store fb ~addr:c x;
            Builder.flush fb c;
            Builder.fence fb ();
            Builder.store fb ~addr:s x;
            (* the injected bug: the shadow copy is never flushed *)
            if not bug then Builder.flush fb s;
            Builder.fence fb ();
            Builder.crash fb;
            Builder.ret_void fb)
      in
      let _ =
        Builder.func b "check" [] ~body:(fun fb ->
            let c = Builder.call fb "pm_base" [] in
            let s = Builder.gep fb c (i 64) in
            Builder.ret fb (Builder.eq fb (Builder.load fb c) (Builder.load fb s)))
      in
      ())

let setup = [ ("init", []); ("bump", []); ("bump", []); ("bump", []) ]

let test_crashsim_correct_program_consistent () =
  let ok =
    Crashsim.crash_consistent (counter_prog ~bug:false) ~setup ~checker:"check"
      ~checker_args:[]
  in
  Alcotest.(check bool) "consistent" true ok

let test_crashsim_buggy_program_detected () =
  let verdicts =
    Crashsim.sweep (counter_prog ~bug:true) ~setup ~checker:"check"
      ~checker_args:[]
  in
  Alcotest.(check int) "three crash points" 3 (List.length verdicts);
  Alcotest.(check bool) "some pessimistic failure" true
    (List.exists (fun v -> not v.Crashsim.pessimistic_ok) verdicts);
  Alcotest.(check bool) "lucky image always recovers" true
    (List.for_all (fun v -> v.Crashsim.lucky_ok) verdicts)

let suite =
  [
    ("layout regions", `Quick, test_layout_regions);
    ("mem load/store sizes", `Quick, test_mem_load_store_sizes);
    ("mem little endian", `Quick, test_mem_little_endian);
    ("mem regions disjoint", `Quick, test_mem_regions_disjoint);
    ("mem traps", `Quick, test_mem_traps);
    ("mem pm alloc alignment", `Quick, test_mem_pm_alloc_alignment);
    ("mem globals", `Quick, test_mem_globals);
    ("mem persist + crash image", `Quick, test_mem_persist_and_crash_image);
    ("mem string roundtrip", `Quick, test_mem_string_roundtrip);
    ("pstate store/flush/fence", `Quick, test_pstate_store_flush_fence);
    ("pstate clflush immediate", `Quick, test_pstate_clflush_immediate);
    ( "pstate clflush drains pending",
      `Quick,
      test_pstate_clflush_drains_pending_writeback );
    ("pstate nt store", `Quick, test_pstate_nt_store);
    ("pstate flush snapshot", `Quick, test_pstate_flush_snapshot_semantics);
    ("pstate supersede", `Quick, test_pstate_supersede);
    ("pstate classification", `Quick, test_pstate_classification);
    ("pstate cross-line flush", `Quick, test_pstate_flush_cross_line_record);
    ("interp arith and flow", `Quick, test_interp_arith_and_flow);
    ("interp recursion", `Quick, test_interp_recursion);
    ("interp division traps", `Quick, test_interp_division_traps);
    ("interp intrinsics/output", `Quick, test_interp_intrinsics_and_output);
    ("interp abort and fuel", `Quick, test_interp_abort_and_fuel);
    ("interp alloca release", `Quick, test_interp_alloca_stack_release);
    ("interp bug at exit", `Quick, test_interp_detects_bug_at_exit);
    ("interp stop at crash", `Quick, test_interp_stop_at_crash);
    ("interp cost accounting", `Quick, test_interp_cost_accounting);
    ("interp globals", `Quick, test_interp_global_values);
    ("trace roundtrip", `Quick, test_trace_roundtrip);
    ("trace stacks", `Quick, test_trace_stacks);
    ("sitestats roundtrip", `Quick, test_sitestats_roundtrip);
    ("report line roundtrip", `Quick, test_report_line_roundtrip);
    ("pmtest format roundtrip", `Quick, test_pmtest_format_roundtrip);
    ("crashsim: correct program", `Quick, test_crashsim_correct_program_consistent);
    ("crashsim: buggy program", `Quick, test_crashsim_buggy_program_detected);
  ]
