A simulation fleet is byte-identical for a given seed at any --jobs
width: scenarios are pure functions of (seed, index, config), executed
over a domain pool and collected in submission order. The summary
deliberately contains no timing and no jobs count — virtual time is the
machine's simulated cost, identical across widths and execution tiers.

  $ hippocrates sim --app redis --variant manual --mode standard --smoke --seed 42 --jobs 2
  sim: redis/manual mode=standard seed=42 scenarios=4 ops=60 exec=compiled
  crashes: 8, recoveries: 8, reordered: 0, torn: 0
  virtual time: 40.158 ms
  digest: d3c19467d633b0f396e7c4b987ce3529
  sim: OK (0 violations)

  $ hippocrates sim --app redis --variant manual --mode standard --smoke --seed 42 --jobs 1
  sim: redis/manual mode=standard seed=42 scenarios=4 ops=60 exec=compiled
  crashes: 8, recoveries: 8, reordered: 0, torn: 0
  virtual time: 40.158 ms
  digest: d3c19467d633b0f396e7c4b987ce3529
  sim: OK (0 violations)

Chaos mode on P-CLHT's buggy manual port detects the injected bugs and
writes one seed-stamped reproducer per violating scenario, plus a
serial replay one-liner; the process exits nonzero.

  $ hippocrates sim --app pclht --variant manual --mode chaos --smoke --seed 7
  sim: pclht/manual mode=chaos seed=7 scenarios=4 ops=60 exec=compiled
  crashes: 40, recoveries: 40, reordered: 0, torn: 12
  virtual time: 200.132 ms
  digest: 7a89bf9d96fb3fd332316a2c53157223
  violations: 31 in scenarios: 0,1,2,3
    step 42 corrupted-value: key k04: expected 72603505657114353, got 151121382320824455
    step 42 corrupted-value: key k14: expected 13725050206171563, got 180583412588921927
    step 42 corrupted-value: key k15: expected 131471966398902389, got 4974855868099601
    step 42 corrupted-value: key k16: expected 202656592562579927, got 71903036443638665
    step 44 atomicity: key k16 is neither old (202656592562579927) nor new (139752266122358421) after recovery: 71903036443638665
  reproducer: sim-out/sim-seed7-s000.txt
  reproducer: sim-out/sim-seed7-s001.txt
  reproducer: sim-out/sim-seed7-s002.txt
  reproducer: sim-out/sim-seed7-s003.txt
  replay: hippocrates sim --app pclht --variant manual --mode chaos --exec compiled --seed 7 --scenarios 4 --ops 60 --keyspace 24 --nbuckets 16 --jobs 1
  sim: FAIL
  [1]

The reproducer opens with the replay recipe and the violations, then
carries the full transcript (ops, crash points, image digests):

  $ head -4 sim-out/sim-seed7-s000.txt
  # sim reproducer: scenario 0 of seed 7
  # replay: hippocrates sim --app pclht --variant manual --mode chaos --exec compiled --seed 7 --scenarios 4 --ops 60 --keyspace 24 --nbuckets 16 --jobs 1
  
  violation step=42 corrupted-value: key k04: expected 72603505657114353, got 151121382320824455


  $ grep -c '!crash' sim-out/sim-seed7-s000.txt
  7
