module Pmir_gen = Hippo_fuzz.Gen
(* Differential testing of the two bug detectors over generated PMIR.

   [Pmir_gen.arb_bug_free] programs persist every PM store before exit,
   so the dynamic finder (executing the workload) and the static analyzer
   (abstract interpretation from the roots) must both report zero bugs —
   any disagreement is a soundness or precision defect in one of them. *)

open Hippo_pmcheck
open Hippo_core

let dynamic_bugs p =
  let t = Interp.create Interp.default_config p in
  Pmir_gen.workload t;
  Interp.exit_check t;
  Interp.bugs t

let static_bugs p = (Driver.check_static p).Hippo_staticcheck.Checker.bugs

let prop_detectors_agree_on_bug_free =
  QCheck.Test.make
    ~name:"static and dynamic detectors agree: bug-free stays bug-free"
    ~count:80 Pmir_gen.arb_bug_free (fun p ->
      dynamic_bugs p = [] && static_bugs p = [])

let prop_repair_is_noop_on_bug_free =
  QCheck.Test.make ~name:"repair of a bug-free program is a no-op" ~count:25
    Pmir_gen.arb_bug_free (fun p ->
      let r = Driver.repair ~name:"gen" ~workload:Pmir_gen.workload p in
      r.Driver.bugs = []
      && r.Driver.plan.Fix.fixes = []
      && r.Driver.input_instrs = r.Driver.output_instrs)

let prop_mixed_detection_repairable =
  (* over the full alphabet: whatever the dynamic finder reports, the
     pipeline repairs with both guarantees intact *)
  QCheck.Test.make ~name:"mixed programs always repair clean" ~count:40
    Pmir_gen.arb_mixed (fun p ->
      let r = Driver.repair ~name:"gen" ~workload:Pmir_gen.workload p in
      Verify.effective r.Driver.verification
      && Verify.harm_free r.Driver.verification)

let test_generator_shapes () =
  (* one fixed program exercising every step constructor stays valid and
     bug-free under both detectors *)
  let p =
    Pmir_gen.program_of_steps
      [
        Pmir_gen.S_persist (0, 1);
        Pmir_gen.S_persist_helper (1, 2);
        Pmir_gen.S_batch [ (2, 3); (3, 4) ];
        Pmir_gen.S_vol_store (0, 5);
        Pmir_gen.S_emit 1;
      ]
  in
  Alcotest.(check int) "dynamic: no bugs" 0 (List.length (dynamic_bugs p));
  Alcotest.(check int) "static: no bugs" 0 (List.length (static_bugs p))

let test_raw_store_is_a_bug_for_both () =
  let p = Pmir_gen.program_of_steps [ Pmir_gen.S_store_raw (0, 7) ] in
  Alcotest.(check bool) "dynamic reports it" true (dynamic_bugs p <> []);
  Alcotest.(check bool) "static reports it" true (static_bugs p <> [])

let suite =
  [
    ("generator shapes", `Quick, test_generator_shapes);
    ("raw store flagged by both", `Quick, test_raw_store_is_a_bug_for_both);
    QCheck_alcotest.to_alcotest prop_detectors_agree_on_bug_free;
    QCheck_alcotest.to_alcotest prop_repair_is_noop_on_bug_free;
    QCheck_alcotest.to_alcotest prop_mixed_detection_repairable;
  ]
