(* The flush/fence optimizer: per-rule unit semantics on minimal
   programs, the must-not-remove cases, do-no-harm properties over
   random programs (static reports identical, crash-sweep verdicts
   identical at any [--jobs]), and analysis-cache sharing with repair. *)

open Hippo_pmir
open Hippo_engine
module Driver = Hippo_core.Driver
module Gen = Hippo_fuzz.Gen
module Timed = Hippo_perfmodel.Timed

let i = Value.imm

let build body =
  let b = Builder.create () in
  let (_ : string) = Builder.func b "main" [] ~body in
  let p = Builder.program b in
  Validate.check_exn p;
  p

let rules o = List.map (fun r -> r.Optimize.r_rule) o.Optimize.o_removals

let counts p =
  let c = Timed.static_counts p in
  (c.Timed.flushes, c.Timed.fences)

(* ------------------------------------------------------------------ *)
(* Rewrite rules, one by one *)

(* store; flush; fence; flush; fence — the second pair is redundant on
   the only path: covered flush, dominated fence. *)
let test_covered_flush_and_dominated_fence () =
  let p =
    build (fun fb ->
        let open Builder in
        let pm = call fb "pm_base" [] in
        store fb ~addr:pm (i 7);
        flush fb pm;
        fence fb ();
        flush fb pm;
        fence fb ();
        ret_void fb)
  in
  let o = Optimize.run p in
  Alcotest.(check bool) "not reverted" false o.Optimize.o_reverted;
  Alcotest.(check bool) "reports identical" true o.Optimize.o_report_equal;
  Alcotest.(check (list bool))
    "one covered flush, one dominated fence"
    [ true; true ]
    [
      List.mem Optimize.Covered_flush (rules o);
      List.mem Optimize.Dominated_fence (rules o);
    ];
  let f0, n0 = counts p and f1, n1 = counts o.Optimize.o_prog in
  Alcotest.(check (pair int int)) "one flush and one fence gone"
    (f0 - 1, n0 - 1) (f1, n1)

(* store; pmem_persist; pmem_persist — the second call site is entirely
   redundant (nothing in flight, lines already durable). *)
let test_double_persist () =
  let p =
    let b = Builder.create () in
    Hippo_pmdk_mini.Runtime.add b;
    let (_ : string) =
      Builder.func b "main" [] ~body:(fun fb ->
          let open Builder in
          let pm = call fb "pm_base" [] in
          store fb ~addr:pm (i 7);
          call_void fb "pmem_persist" [ pm; i 8 ];
          call_void fb "pmem_persist" [ pm; i 8 ];
          ret_void fb)
    in
    let p = Builder.program b in
    Validate.check_exn p;
    p
  in
  let o = Optimize.run p in
  Alcotest.(check bool) "not reverted" false o.Optimize.o_reverted;
  Alcotest.(check (list Alcotest.bool))
    "covered persist removed" [ true ]
    [ rules o = [ Optimize.Covered_persist ] ]

(* flush of provably-volatile memory: removable regardless of state. *)
let test_volatile_flush () =
  let p =
    build (fun fb ->
        let open Builder in
        let v = call fb "malloc" [ i 64 ] in
        store fb ~addr:v (i 1);
        flush fb v;
        ret_void fb)
  in
  let o = Optimize.run p in
  Alcotest.(check bool) "volatile flush removed" true
    (rules o = [ Optimize.Volatile_flush ])

(* adjacent fences with nothing between them coalesce to one. *)
let test_adjacent_fences_coalesce () =
  let p =
    build (fun fb ->
        let open Builder in
        let pm = call fb "pm_base" [] in
        store fb ~addr:pm (i 7);
        flush fb pm;
        fence fb ();
        fence fb ();
        fence fb ();
        ret_void fb)
  in
  let o = Optimize.run p in
  Alcotest.(check int) "two of three fences removed" 2
    (List.length
       (List.filter (fun r -> r = Optimize.Dominated_fence) (rules o)));
  let _, n1 = counts o.Optimize.o_prog in
  Alcotest.(check int) "one fence left" 1 n1

(* ------------------------------------------------------------------ *)
(* Must-not-remove cases *)

(* The ISSUE's named case: the first flush+fence runs on only one path,
   so the final flush still feeds the final fence on the other path —
   neither of the final pair may be removed. (The branch fence itself
   may legally coalesce into the final one: the window between them is
   crash-free, so every crash image is unchanged.) *)
let test_one_path_flush_kept () =
  let p =
    let b = Builder.create () in
    let (_ : string) =
      Builder.func b "main" [ "c" ] ~body:(fun fb ->
          let open Builder in
          let pm = call fb "pm_base" [] in
          store fb ~addr:pm (i 7);
          if_ fb (Value.reg "c")
            ~then_:(fun () ->
              flush fb pm;
              fence fb ())
            ();
          flush fb pm;
          fence fb ();
          ret_void fb)
    in
    let p = Builder.program b in
    Validate.check_exn p;
    p
  in
  let o = Optimize.run p in
  Alcotest.(check int) "no flush removed" 0
    (List.length
       (List.filter
          (fun r ->
            r = Optimize.Covered_flush || r = Optimize.Volatile_flush
            || r = Optimize.Covered_persist)
          (rules o)));
  let f0, _ = counts p and f1, n1 = counts o.Optimize.o_prog in
  Alcotest.(check int) "both flushes kept" f0 f1;
  Alcotest.(check bool) "a fence survives to cover the final flush" true
    (n1 >= 1)

(* A fence whose window to the next fence contains a crash point must
   be kept: the crash image would otherwise lose the pending flush. The
   same shape without the crash coalesces. *)
let test_fence_before_crash_point_kept () =
  let shape ~with_crash =
    let b = Builder.create () in
    let (_ : string) =
      Builder.func b "main" [] ~body:(fun fb ->
          let open Builder in
          let pm = call fb "pm_base" [] in
          store fb ~addr:pm (i 7);
          flush fb pm;
          fence fb ();
          if with_crash then Builder.crash fb;
          store fb ~addr:(gep fb pm (i 8)) (i 9);
          flush fb (gep fb pm (i 8));
          fence fb ();
          ret_void fb)
    in
    let p = Builder.program b in
    Validate.check_exn p;
    p
  in
  let o_crash = Optimize.run (shape ~with_crash:true) in
  Alcotest.(check bool) "crash in window: fence kept" true
    (not (List.mem Optimize.Coalesced_fence (rules o_crash)));
  let o_clear = Optimize.run (shape ~with_crash:false) in
  Alcotest.(check bool) "crash-free window: fence coalesced" true
    (List.mem Optimize.Coalesced_fence (rules o_clear));
  let _, n1 = counts o_clear.Optimize.o_prog in
  Alcotest.(check int) "one fence left" 1 n1

(* A fence after a callee that flushes without fencing covers that
   callee's in-flight lines: removing it would be unsound (P-CLHT's
   clht_size_add shape), so [may_flush] must keep it. *)
let test_fence_after_flushing_callee_kept () =
  let p =
    let b = Builder.create () in
    let (_ : string) =
      Builder.func b "bump" [ "p" ] ~body:(fun fb ->
          let open Builder in
          store fb ~addr:(Value.reg "p") (i 1);
          flush fb (Value.reg "p");
          ret_void fb)
    in
    let (_ : string) =
      Builder.func b "main" [] ~body:(fun fb ->
          let open Builder in
          let pm = call fb "pm_base" [] in
          store fb ~addr:pm (i 7);
          flush fb pm;
          fence fb ();
          call_void fb "bump" [ pm ];
          fence fb ();
          ret_void fb)
    in
    let p = Builder.program b in
    Validate.check_exn p;
    p
  in
  let o = Optimize.run p in
  Alcotest.(check bool) "final fence kept" true
    (not (List.mem Optimize.Dominated_fence (rules o)))

(* Allocation-site objects may have several live instances sharing one
   abstract object; flushing one instance must not certify another, so
   clean-promotion (and covered-flush removal) is off for them. *)
let test_alloc_site_not_promoted () =
  let p =
    build (fun fb ->
        let open Builder in
        let a = call fb "pm_alloc" [ i 64 ] in
        store fb ~addr:a (i 7);
        flush fb a;
        fence fb ();
        flush fb a;
        fence fb ();
        ret_void fb)
  in
  let o = Optimize.run p in
  Alcotest.(check bool) "no covered flush on pm_alloc object" true
    (not (List.mem Optimize.Covered_flush (rules o)))

(* ------------------------------------------------------------------ *)
(* Corpus and application subjects *)

(* Every repaired memcached corpus case carries removable redundancy
   (the repair-inserted fences in [mc_store_item] coalesce into the
   trailing drain, and [cmd_del]'s drain is dominated); the PMDK cases
   are already tight — every remaining op there is load-bearing, and
   the optimizer must say so by removing nothing. *)
let repair_case (c : Hippo_pmdk_mini.Case.t) =
  let r =
    Driver.repair ~name:c.Hippo_pmdk_mini.Case.id
      ~workload:c.Hippo_pmdk_mini.Case.workload
      (Lazy.force c.Hippo_pmdk_mini.Case.program)
  in
  r.Driver.repaired

let test_corpus_memcached_optimizes () =
  let case =
    List.find
      (fun (c : Hippo_pmdk_mini.Case.t) -> c.Hippo_pmdk_mini.Case.id = "mc-1")
      Hippo_apps.Memcached_mini.cases
  in
  let o = Optimize.run (repair_case case) in
  Alcotest.(check bool) "not reverted" false o.Optimize.o_reverted;
  Alcotest.(check bool) "removes at least one persistence op" true
    (o.Optimize.o_removals <> []);
  let before = o.Optimize.o_before and after = o.Optimize.o_after in
  Alcotest.(check bool) "flush+fence sites strictly drop" true
    (after.Timed.flushes + after.Timed.fences
    < before.Timed.flushes + before.Timed.fences)

let test_corpus_case_452_stays_tight () =
  let case =
    List.find
      (fun (c : Hippo_pmdk_mini.Case.t) -> c.Hippo_pmdk_mini.Case.issue = Some 452)
      Hippo_pmdk_mini.Bugs.all
  in
  let o = Optimize.run (repair_case case) in
  Alcotest.(check bool) "not reverted" false o.Optimize.o_reverted;
  Alcotest.(check int) "nothing to remove: the repair is tight" 0
    (List.length o.Optimize.o_removals)

let clht_setup =
  [ ("clht_init", [ 4 ]) ]
  @ List.concat_map
      (fun k -> [ ("clht_put", [ k; k * 3 ]) ])
      (List.init 20 (fun k -> k + 1))
  @ [ ("clht_put", [ 3; 999 ]) ]

let test_pclht_repaired_optimizes_and_verdicts_identical () =
  let p = Hippo_apps.Pclht.build () in
  let r = Driver.repair ~name:"pclht" ~workload:Hippo_apps.Pclht.workload p in
  let o = Optimize.run r.Driver.repaired in
  Alcotest.(check bool) "not reverted" false o.Optimize.o_reverted;
  Alcotest.(check bool) "removes at least one persistence op" true
    (o.Optimize.o_removals <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Fmt.str "crash verdicts identical at jobs %d" jobs)
        true
        (Optimize.crash_verdicts_identical ~jobs ~setup:clht_setup
           ~checker:"clht_recover_check" ~checker_args:[] r.Driver.repaired
           o.Optimize.o_prog))
    [ 1; 2 ]

(* Redis: the optimizer must find savings on the repaired build (the
   repair pipeline's fences coalesce into dict_set's own) and keep the
   static reports identical on both builds it serves. *)
let test_redis_variants_optimize () =
  List.iter
    (fun variant ->
      match Hippo_apps.App.program Hippo_apps.App.Redis variant with
      | Error e -> Alcotest.fail e
      | Ok p ->
          let o = Optimize.run p in
          Alcotest.(check bool) "not reverted" false o.Optimize.o_reverted;
          Alcotest.(check bool) "reports identical" true
            o.Optimize.o_report_equal;
          Alcotest.(check bool) "removes at least one persistence op" true
            (o.Optimize.o_removals <> []))
    [ Hippo_apps.App.Manual; Hippo_apps.App.Repaired ]

(* ------------------------------------------------------------------ *)
(* Cache sharing: optimize after repair reuses the version's Andersen. *)

let test_andersen_shared_with_repair () =
  let p = Hippo_apps.Pclht.build () in
  let cache = Cache.create () in
  let r =
    Driver.repair ~cache ~name:"pclht" ~workload:Hippo_apps.Pclht.workload p
  in
  (* warm the repaired version's analyses the way a re-check would *)
  let (_ : Hippo_staticcheck.Checker.result) =
    Cache.static_check (Cache.view cache r.Driver.repaired)
  in
  let runs = Cache.andersen_runs cache in
  let (_ : Optimize.analysis) = Optimize.analyze ~cache r.Driver.repaired in
  Alcotest.(check int) "no extra Andersen run for optimize" runs
    (Cache.andersen_runs cache)

(* ------------------------------------------------------------------ *)
(* Properties over random programs *)

let qcount = 60

let prop_valid_and_report_equal =
  QCheck.Test.make ~count:qcount ~name:"optimized output valid + reports equal"
    Gen.arb_mixed (fun p ->
      let o = Optimize.run p in
      (* revert never fires: the analysis itself is report-preserving *)
      Validate.is_valid o.Optimize.o_prog
      && o.Optimize.o_report_equal
      && (not o.Optimize.o_reverted)
      &&
      let b = o.Optimize.o_before and a = o.Optimize.o_after in
      a.Timed.flushes <= b.Timed.flushes && a.Timed.fences <= b.Timed.fences)

let prop_crash_verdicts_identical =
  QCheck.Test.make ~count:25 ~name:"crash-sweep verdicts identical"
    Gen.arb_crash (fun p ->
      let o = Optimize.run p in
      List.for_all
        (fun jobs ->
          Optimize.crash_verdicts_identical ~jobs ~setup:Gen.setup
            ~checker:Gen.checker_name ~checker_args:[] p o.Optimize.o_prog)
        [ 1; 2 ])

let suite =
  [
    Alcotest.test_case "covered flush + dominated fence" `Quick
      test_covered_flush_and_dominated_fence;
    Alcotest.test_case "double pmem_persist" `Quick test_double_persist;
    Alcotest.test_case "volatile flush" `Quick test_volatile_flush;
    Alcotest.test_case "adjacent fences coalesce" `Quick
      test_adjacent_fences_coalesce;
    Alcotest.test_case "one-path flush kept" `Quick test_one_path_flush_kept;
    Alcotest.test_case "fence before crash point kept" `Quick
      test_fence_before_crash_point_kept;
    Alcotest.test_case "fence after flushing callee kept" `Quick
      test_fence_after_flushing_callee_kept;
    Alcotest.test_case "alloc-site lines never promoted" `Quick
      test_alloc_site_not_promoted;
    Alcotest.test_case "corpus mc-1 repaired then optimized" `Slow
      test_corpus_memcached_optimizes;
    Alcotest.test_case "corpus 452 already tight" `Slow
      test_corpus_case_452_stays_tight;
    Alcotest.test_case "pclht repaired: removal + verdicts identical" `Slow
      test_pclht_repaired_optimizes_and_verdicts_identical;
    Alcotest.test_case "redis manual+repaired optimize" `Slow
      test_redis_variants_optimize;
    Alcotest.test_case "andersen shared with repair" `Slow
      test_andersen_shared_with_repair;
    QCheck_alcotest.to_alcotest prop_valid_and_report_equal;
    QCheck_alcotest.to_alcotest prop_crash_verdicts_identical;
  ]
