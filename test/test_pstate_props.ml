(* qcheck properties of the persistency state machine: random sequences
   of PM stores, flushes and fences must maintain the model's invariants,
   and the durable image must change only at durability events. *)

open Hippo_pmir
open Hippo_pmcheck

type op = Op_store of int * int | Op_flush of int * Instr.flush_kind | Op_fence

let gen_ops : op list QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_range 0 7 in
  list_size (int_range 1 40)
    (oneof
       [
         map2 (fun s v -> Op_store (s, v)) slot (int_range 1 255);
         map2
           (fun s k -> Op_flush (s, k))
           slot
           (oneofl [ Instr.Clwb; Instr.Clflushopt; Instr.Clflush ]);
         return Op_fence;
       ])

let arb_ops =
  QCheck.make gen_ops
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Op_store (s, v) -> Printf.sprintf "store %d<-%d" s v
             | Op_flush (s, k) ->
                 Printf.sprintf "flush.%s %d" (Instr.flush_kind_to_string k) s
             | Op_fence -> "fence")
           ops))

(* replay an op list through a fresh machine, returning the state and the
   history of durable images *)
let replay ops =
  let ps = Pstate.create () in
  let m = Mem.create [] in
  let base = Mem.alloc_pm m 1024 in
  let seq = ref 0 in
  let images = ref [ Mem.crash_image m ] in
  List.iter
    (fun op ->
      (match op with
      | Op_store (s, v) ->
          let addr = base + (s * 64) in
          Mem.store m ~addr ~size:8 v;
          ignore
            (Pstate.store ps ~iid:(Iid.fresh ~func:"t") ~loc:Loc.none
               ~stack:[] ~addr ~size:8 ~seq:!seq)
      | Op_flush (s, k) ->
          ignore
            (Pstate.flush ps m ~iid:(Iid.fresh ~func:"t") ~kind:k
               ~addr:(base + (s * 64)))
      | Op_fence -> ignore (Pstate.fence ps m ~seq:!seq));
      incr seq;
      images := Mem.crash_image m :: !images)
    ops;
  (ps, m, List.rev !images)

let prop_no_pending_after_fence =
  QCheck.Test.make ~name:"fence leaves nothing pending" ~count:300 arb_ops
    (fun ops ->
      let ps, _, _ = replay (ops @ [ Op_fence ]) in
      Pstate.pending_count ps = 0)

let prop_fully_persisted_after_flush_all_fence =
  QCheck.Test.make
    ~name:"flushing every line then fencing persists everything" ~count:300
    arb_ops
    (fun ops ->
      let all_flushes = List.init 8 (fun s -> Op_flush (s, Instr.Clwb)) in
      let ps, m, _ = replay (ops @ all_flushes @ [ Op_fence ]) in
      Pstate.unpersisted_count ps = 0
      && Bytes.equal (Mem.crash_image m) (Mem.working_image m))

let prop_image_changes_only_at_durability_events =
  QCheck.Test.make
    ~name:"durable image changes only at clflush or fence" ~count:300 arb_ops
    (fun ops ->
      let _, _, images = replay ops in
      let rec walk ops images =
        match (ops, images) with
        | op :: ops', before :: (after :: _ as images') ->
            let durability_event =
              match op with
              | Op_flush (_, Instr.Clflush) | Op_fence -> true
              | _ -> false
            in
            (durability_event || Bytes.equal before after)
            && walk ops' images'
        | _ -> true
      in
      walk ops images)

let prop_bug_counts_consistent =
  QCheck.Test.make
    ~name:"reported bugs equal the unpersisted-record count" ~count:300
    arb_ops
    (fun ops ->
      let ps, _, _ = replay ops in
      let crash : Report.crash_info =
        { crash_iid = None; crash_loc = Loc.none; crash_stack = [] }
      in
      List.length (Pstate.unpersisted_bugs ps ~crash)
      = Pstate.unpersisted_count ps)

let prop_missing_fence_only_when_pending =
  QCheck.Test.make
    ~name:"missing-fence reports correspond to pending records" ~count:300
    arb_ops
    (fun ops ->
      let ps, _, _ = replay ops in
      let crash : Report.crash_info =
        { crash_iid = None; crash_loc = Loc.none; crash_stack = [] }
      in
      let bugs = Pstate.unpersisted_bugs ps ~crash in
      let fence_bugs =
        List.length
          (List.filter
             (fun (b : Report.bug) -> b.Report.kind = Report.Missing_fence)
             bugs)
      in
      fence_bugs = Pstate.pending_count ps)

(* ------------------------------------------------------------------ *)
(* fault-injection hook: commit_chosen models a partial write-pending
   queue drain but must preserve the per-line store-order (clflush
   drain) invariant — choosing a write-back drags every older pending
   record of its cache line in, and commits run oldest-first *)

let test_commit_chosen_closes_lines_oldest_first () =
  let ps = Pstate.create () in
  let m = Mem.create [] in
  let base = Mem.alloc_pm m 256 in
  let seq = ref 0 in
  let store_flush addr v =
    Mem.store m ~addr ~size:8 v;
    ignore
      (Pstate.store ps ~iid:(Iid.fresh ~func:"t") ~loc:Loc.none ~stack:[]
         ~addr ~size:8 ~seq:!seq);
    incr seq;
    ignore
      (Pstate.flush ps m ~iid:(Iid.fresh ~func:"t") ~kind:Instr.Clwb ~addr)
  in
  store_flush base 0x11 (* line 0, oldest in-flight write-back *);
  store_flush base 0x22 (* line 0, newer write-back of the same word *);
  store_flush (base + 64) 0x33 (* line 1, independent *);
  let pend = Pstate.pending_records ps in
  Alcotest.(check int) "three write-backs in flight" 3 (List.length pend);
  Alcotest.(check int) "nothing drains when nothing is chosen" 0
    (Pstate.commit_chosen ps m (fun _ -> false));
  let durable addr =
    Int64.to_int
      (Bytes.get_int64_le (Mem.crash_image m) (addr - Layout.pm_base))
  in
  (* choose only the NEWER line-0 record: the older one must be dragged
     along, and oldest-first commit leaves the newer value durable *)
  let mid = List.nth pend 1 in
  let drained =
    Pstate.commit_chosen ps m (fun r -> r.Pstate.seq = mid.Pstate.seq)
  in
  Alcotest.(check int) "older same-line record dragged along" 2 drained;
  Alcotest.(check int) "newest chosen value is what ends up durable" 0x22
    (durable base);
  Alcotest.(check int) "unchosen line did not drain" 0 (durable (base + 64));
  Alcotest.(check int) "unchosen line still in flight" 1
    (Pstate.pending_count ps);
  ignore (Pstate.fence ps m ~seq:!seq);
  Alcotest.(check int) "fence drains the remainder" 0
    (Pstate.pending_count ps);
  Alcotest.(check int) "line 1 durable after the fence" 0x33
    (durable (base + 64))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_no_pending_after_fence;
    QCheck_alcotest.to_alcotest prop_fully_persisted_after_flush_all_fence;
    QCheck_alcotest.to_alcotest prop_image_changes_only_at_durability_events;
    QCheck_alcotest.to_alcotest prop_bug_counts_consistent;
    QCheck_alcotest.to_alcotest prop_missing_fence_only_when_pending;
    Alcotest.test_case "commit_chosen closes lines, commits oldest-first"
      `Quick test_commit_chosen_closes_lines_oldest_first;
  ]
