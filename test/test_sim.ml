(* The scenario simulator: digest determinism across jobs widths and
   execution tiers, single-crash semantics of the forced-crash hook, and
   differential agreement with the per-crash-point sweep. *)

open Hippo_pmcheck
open Hippo_apps
module Faults = Hippo_sim.Faults
module Scenario = Hippo_sim.Scenario
module Harness = Hippo_sim.Harness

(* Small fleets: the battery runs dozens of harness invocations. *)
let small kind variant mode =
  {
    Harness.default_config with
    Harness.kind;
    variant;
    mode;
    scenarios = 3;
    ops = 24;
    keyspace = 10;
    nbuckets = 8;
  }

let run_exn cfg =
  match Harness.run cfg with Ok r -> r | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* determinism: one seed, one digest — at every jobs width and tier *)

let prop_jobs_identical =
  QCheck.Test.make ~count:4 ~name:"same seed => same digest at jobs {1,2,4}"
    QCheck.small_nat (fun seed ->
      let cfg = { (small App.Redis App.Manual Harness.Standard) with Harness.seed } in
      let reports =
        List.map (fun jobs -> run_exn { cfg with Harness.jobs }) [ 1; 2; 4 ]
      in
      match reports with
      | r1 :: rest ->
          List.for_all
            (fun r ->
              String.equal r.Harness.digest r1.Harness.digest
              && r.Harness.crashes = r1.Harness.crashes
              && r.Harness.violating = r1.Harness.violating)
            rest
      | [] -> false)

let prop_tiers_identical =
  QCheck.Test.make ~count:4
    ~name:"interpreted and compiled fleets produce one digest"
    QCheck.small_nat (fun seed ->
      let cfg = { (small App.Pclht App.Manual Harness.Chaos) with Harness.seed } in
      let ri = run_exn { cfg with Harness.exec = `Interp } in
      let rc = run_exn { cfg with Harness.exec = `Compiled } in
      String.equal ri.Harness.digest rc.Harness.digest
      && ri.Harness.violating = rc.Harness.violating
      && ri.Harness.torn = rc.Harness.torn)

let test_quick_mode_clean () =
  (* fault-free scenarios on the hand-hardened builds: pure workload vs
     shadow, nothing to report *)
  List.iter
    (fun kind ->
      let r = run_exn (small kind App.Manual Harness.Quick) in
      Alcotest.(check int)
        (App.kind_to_string kind ^ " crashes")
        0 r.Harness.crashes;
      Alcotest.(check int)
        (App.kind_to_string kind ^ " violations")
        0
        (List.length r.Harness.violations))
    [ App.Redis; App.Pclht ]

(* ------------------------------------------------------------------ *)
(* chaos on the buggy baseline detects; the repair survives the same
   schedule (do no harm, observed end to end) *)

let test_chaos_detects_injected_bugs () =
  let cfg =
    { (small App.Pclht App.Manual Harness.Chaos) with Harness.seed = 7 }
  in
  let r = run_exn cfg in
  Alcotest.(check bool) "crashes injected" true (r.Harness.crashes > 0);
  Alcotest.(check bool)
    "P-CLHT's injected bugs surface under chaos" true
    (r.Harness.violating <> [])

let test_repaired_survives_chaos () =
  let cfg =
    {
      (small App.Pclht App.Repaired Harness.Chaos) with
      Harness.seed = 7;
      scenarios = 2;
    }
  in
  let r = run_exn cfg in
  Alcotest.(check (list int)) "repaired app clean" [] r.Harness.violating;
  Alcotest.(check bool) "schedule was hostile" true (r.Harness.crashes > 0);
  Alcotest.(check bool)
    "lockstep baseline (repair input) violates" true
    (r.Harness.baseline_violating <> [])

(* ------------------------------------------------------------------ *)
(* differential: a forced-crash scenario must agree with the replay
   sweep's verdict at the same crash point *)

(* two buckets under eight keys: overflow chains form, so the injected
   CLHT bugs (unflushed slot publish / chain link) sit on the path *)
let scen_cfg =
  { Scenario.default with Scenario.ops = 12; keyspace = 8; recovery_ns = 0. }

let setup_of ops =
  ("clht_init", [ 2 ])
  :: List.map
       (fun op ->
         match op with
         | Scenario.Insert { key; value } ->
             ("clht_put", [ App.word_of_string key; App.word_of_string value ])
         | Scenario.Read { key } -> ("clht_get", [ App.word_of_string key ])
         | Scenario.Delete { key } -> ("clht_del", [ App.word_of_string key ]))
       ops

let test_forced_crash_matches_sweep () =
  let prog = Pclht.build () in
  let icfg = { Interp.default_config with Interp.trace = false } in
  let seed = 5 and index = 0 in
  let ops = Scenario.ops_of ~seed ~index scen_cfg in
  let setup = setup_of ops in
  let init_pts =
    Crashsim.count_crash_points ~config:icfg prog
      ~setup:[ ("clht_init", [ 2 ]) ]
  in
  let total_pts = Crashsim.count_crash_points ~config:icfg prog ~setup in
  Alcotest.(check bool) "workload passes crash points" true
    (total_pts > init_pts);
  let run_forced ci =
    match
      Scenario.run ~seed ~index
        { scen_cfg with Scenario.force_crash_at = Some ci }
        ~make_app:(fun () ->
          Ok (App.wrap ~config:icfg ~nbuckets:2 App.Pclht App.Manual prog))
        ()
    with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let inconsistent = ref 0 in
  for ci = init_pts + 1 to total_pts do
    let v =
      Crashsim.check_crash ~config:icfg prog ~setup
        ~checker:"clht_recover_check" ~checker_args:[] ~crash_index:ci
    in
    let o = run_forced ci in
    Alcotest.(check int)
      (Printf.sprintf "exactly one crash at point %d" ci)
      1 o.Scenario.crashes;
    if not v.Crashsim.pessimistic_ok then begin
      incr inconsistent;
      Alcotest.(check bool)
        (Printf.sprintf
           "sweep-inconsistent crash point %d => scenario violation" ci)
        true
        (o.Scenario.violations <> [])
    end
  done;
  (* the injected CLHT bugs guarantee the interesting direction is
     exercised, not vacuous *)
  Alcotest.(check bool) "some crash point is sweep-inconsistent" true
    (!inconsistent > 0)

(* fault-free forced runs of one scenario are digest-stable, and a
   force index beyond the last crash point degrades to a clean run *)
let test_forced_crash_bounds () =
  let prog = Pclht.build () in
  let icfg = { Interp.default_config with Interp.trace = false } in
  let mk () = Ok (App.wrap ~config:icfg ~nbuckets:2 App.Pclht App.Manual prog) in
  let go cfg =
    match Scenario.run ~seed:5 ~index:1 cfg ~make_app:mk () with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let a = go scen_cfg and b = go scen_cfg in
  Alcotest.(check string) "fault-free reruns agree" a.Scenario.digest
    b.Scenario.digest;
  Alcotest.(check int) "no crashes drawn at rate 0" 0 a.Scenario.crashes;
  let far = go { scen_cfg with Scenario.force_crash_at = Some 100_000 } in
  Alcotest.(check int) "unreachable point never fires" 0 far.Scenario.crashes

let suite =
  [
    QCheck_alcotest.to_alcotest prop_jobs_identical;
    QCheck_alcotest.to_alcotest prop_tiers_identical;
    Alcotest.test_case "quick mode on manual builds is clean" `Quick
      test_quick_mode_clean;
    Alcotest.test_case "chaos detects P-CLHT's injected bugs" `Quick
      test_chaos_detects_injected_bugs;
    Alcotest.test_case "repaired app survives the baseline's chaos" `Slow
      test_repaired_survives_chaos;
    Alcotest.test_case "forced crashes agree with the replay sweep" `Quick
      test_forced_crash_matches_sweep;
    Alcotest.test_case "forced-crash bounds and rerun stability" `Quick
      test_forced_crash_bounds;
  ]
