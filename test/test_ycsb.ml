(* Tests for the YCSB workload generator: PRNG determinism, zipfian
   distribution shape, workload mixes, and key/value encoding. *)

open Hippo_ycsb

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Rng.next a) in
  let ys = List.init 100 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "same stream" true (xs = ys);
  let c = Rng.create ~seed:43 in
  let zs = List.init 100 (fun _ -> Rng.next c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "unit float" true (f >= 0.0 && f < 1.0)
  done

let histogram n items f =
  let h = Array.make items 0 in
  for _ = 1 to n do
    let k = f () in
    h.(k) <- h.(k) + 1
  done;
  h

let test_zipfian_bounds_and_skew () =
  let z = Zipfian.create 100 in
  let r = Rng.create ~seed:7 in
  let h = histogram 20_000 100 (fun () -> Zipfian.next z r) in
  (* hottest item is item 0, and it dominates the median item *)
  let hottest = Array.fold_left max 0 h in
  Alcotest.(check int) "item 0 is hottest" hottest h.(0);
  Alcotest.(check bool) "skewed" true (h.(0) > 10 * h.(50));
  (* roughly zipf: top item gets ~ 1/zeta(100) of the mass ~ 19% *)
  Alcotest.(check bool) "plausible head mass" true
    (h.(0) > 2_000 && h.(0) < 6_000)

let test_zipfian_latest () =
  let z = Zipfian.create 100 in
  let r = Rng.create ~seed:9 in
  let h = histogram 10_000 100 (fun () -> Zipfian.latest z r ~n:100) in
  Alcotest.(check int) "latest item is hottest" (Array.fold_left max 0 h) h.(99)

let count_ops ops =
  List.fold_left
    (fun (r, u, ins, s, rmw) -> function
      | Workload.Read _ -> (r + 1, u, ins, s, rmw)
      | Workload.Update _ -> (r, u + 1, ins, s, rmw)
      | Workload.Insert _ -> (r, u, ins + 1, s, rmw)
      | Workload.Scan _ -> (r, u, ins, s + 1, rmw)
      | Workload.Read_modify_write _ -> (r, u, ins, s, rmw + 1))
    (0, 0, 0, 0, 0) ops

let spec kind = { (Workload.default_spec kind) with record_count = 1000; op_count = 4000 }

let test_workload_mixes () =
  let near ~pct n total =
    let expected = total * pct / 100 in
    abs (n - expected) < total / 10
  in
  let r, u, _, _, _ = count_ops (Workload.ops (spec Workload.A) ~seed:1) in
  Alcotest.(check bool) "A is 50/50" true (near ~pct:50 r 4000 && near ~pct:50 u 4000);
  let r, u, _, _, _ = count_ops (Workload.ops (spec Workload.B) ~seed:1) in
  Alcotest.(check bool) "B is 95/5" true (near ~pct:95 r 4000 && near ~pct:5 u 4000);
  let r, u, ins, s, rmw = count_ops (Workload.ops (spec Workload.C) ~seed:1) in
  Alcotest.(check bool) "C is read-only" true
    (r = 4000 && u = 0 && ins = 0 && s = 0 && rmw = 0);
  let r, _, ins, _, _ = count_ops (Workload.ops (spec Workload.D) ~seed:1) in
  Alcotest.(check bool) "D is 95 read / 5 insert" true
    (near ~pct:95 r 4000 && near ~pct:5 ins 4000);
  let _, _, ins, s, _ = count_ops (Workload.ops (spec Workload.E) ~seed:1) in
  Alcotest.(check bool) "E is 95 scan / 5 insert" true
    (near ~pct:95 s 4000 && near ~pct:5 ins 4000);
  let r, _, _, _, rmw = count_ops (Workload.ops (spec Workload.F) ~seed:1) in
  Alcotest.(check bool) "F is 50 read / 50 rmw" true
    (near ~pct:50 r 4000 && near ~pct:50 rmw 4000)

let test_load_is_sequential_inserts () =
  let ops = Workload.ops (spec Workload.Load) ~seed:3 in
  Alcotest.(check int) "record_count inserts" 1000 (List.length ops);
  List.iteri
    (fun idx op ->
      match op with
      | Workload.Insert k -> Alcotest.(check int) "sequential" idx k
      | _ -> Alcotest.fail "non-insert in load")
    ops

let test_inserts_use_fresh_keys () =
  let ops = Workload.ops (spec Workload.D) ~seed:5 in
  List.iter
    (function
      | Workload.Insert k ->
          Alcotest.(check bool) "beyond loaded range" true (k >= 1000)
      | _ -> ())
    ops

let test_ops_deterministic_by_seed () =
  let a = Workload.ops (spec Workload.A) ~seed:11 in
  let b = Workload.ops (spec Workload.A) ~seed:11 in
  let c = Workload.ops (spec Workload.A) ~seed:12 in
  Alcotest.(check bool) "same seed same ops" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_scan_lengths_bounded () =
  let s = { (spec Workload.E) with max_scan_len = 10 } in
  List.iter
    (function
      | Workload.Scan (_, len) ->
          Alcotest.(check bool) "scan length in bounds" true (len >= 1 && len <= 10)
      | _ -> ())
    (Workload.ops s ~seed:2)

let test_seq_equals_ops () =
  (* the streaming generator and the materialized list agree for every
     workload kind *)
  List.iter
    (fun kind ->
      let s = spec kind in
      Alcotest.(check bool)
        (Fmt.str "seq = ops for %s" (Workload.kind_to_string kind))
        true
        (List.of_seq (Workload.seq s ~seed:17) = Workload.ops s ~seed:17))
    Workload.all_kinds

let test_seq_replayable_and_lazy () =
  let s = spec Workload.A in
  let head = Workload.seq s ~seed:23 in
  (* a Seq head can be traversed twice with identical results (fresh
     PRNG per traversal) *)
  Alcotest.(check bool) "replayable from head" true
    (List.of_seq head = List.of_seq head);
  (* laziness: taking a prefix of a huge stream terminates *)
  let huge = { s with op_count = 100_000_000 } in
  let prefix = List.of_seq (Seq.take 5 (Workload.seq huge ~seed:1)) in
  Alcotest.(check int) "prefix of huge stream" 5 (List.length prefix)

let test_key_value_encoding () =
  Alcotest.(check string) "key format" "user000000000042" (Workload.key_bytes 42);
  Alcotest.(check int) "key length" 16 (String.length (Workload.key_bytes 7));
  let v0 = Workload.value_bytes ~k:1 ~version:0 in
  let v1 = Workload.value_bytes ~k:1 ~version:1 in
  Alcotest.(check int) "value length" 96 (String.length v0);
  Alcotest.(check bool) "version changes value" true (v0 <> v1);
  Alcotest.(check string) "deterministic" v0 (Workload.value_bytes ~k:1 ~version:0);
  String.iter
    (fun c ->
      Alcotest.(check bool) "printable" true (Char.code c >= 0x20 && Char.code c < 0x80))
    v0

let prop_zipfian_in_range =
  QCheck.Test.make ~name:"zipfian stays in range" ~count:200
    QCheck.(pair (int_range 1 500) small_int)
    (fun (items, seed) ->
      let z = Zipfian.create items in
      let r = Rng.create ~seed in
      List.for_all
        (fun _ ->
          let k = Zipfian.next z r in
          k >= 0 && k < items)
        (List.init 50 Fun.id))

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng bounds", `Quick, test_rng_bounds);
    ("zipfian skew", `Quick, test_zipfian_bounds_and_skew);
    ("zipfian latest", `Quick, test_zipfian_latest);
    ("workload mixes", `Quick, test_workload_mixes);
    ("load phase", `Quick, test_load_is_sequential_inserts);
    ("inserts beyond range", `Quick, test_inserts_use_fresh_keys);
    ("seed determinism", `Quick, test_ops_deterministic_by_seed);
    ("scan lengths", `Quick, test_scan_lengths_bounded);
    ("seq equals ops", `Quick, test_seq_equals_ops);
    ("seq replayable and lazy", `Quick, test_seq_replayable_and_lazy);
    ("key/value encoding", `Quick, test_key_value_encoding);
    QCheck_alcotest.to_alcotest prop_zipfian_in_range;
  ]
