(* Aggregated alcotest entry point for the whole repository. *)
let () =
  Alcotest.run "hippocrates"
    [
      ("pmir", Test_pmir.suite);
      ("pmcheck", Test_pmcheck.suite);
      ("pstate-props", Test_pstate_props.suite);
      ("exec", Test_exec.suite);
      ("runtime", Test_runtime.suite);
      ("alias", Test_alias.suite);
      ("fixes", Test_fixes.suite);
      ("driver", Test_driver.suite);
      ("engine", Test_engine.suite);
      ("optimize", Test_optimize.suite);
      ("parallel", Test_parallel.suite);
      ("crashsim", Test_crashsim.suite);
      ("pmir-gen", Test_pmir_gen.suite);
      ("staticcheck", Test_staticcheck.suite);
      ("fuzz", Test_fuzz.suite);
      ("corpus", Test_corpus.suite);
      ("apps", Test_apps.suite);
      ("ycsb", Test_ycsb.suite);
      ("perfmodel", Test_perfmodel.suite);
      ("serve", Test_serve.suite);
      ("bugstudy", Test_bugstudy.suite);
      ("sim", Test_sim.suite);
      ("e2e", Test_e2e.suite);
    ]
