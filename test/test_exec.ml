(* Differential battery for the compiled execution tier: every observable
   of a run — result, bugs, output, trace, cost, steps, coverage, crash
   points, crash images — must be byte-identical between the interpreter
   oracle and the compiled closures, over randomized programs from the
   fuzzer's generator and over hand-built trap edge cases. *)

open Hippo_pmir
open Hippo_pmcheck
module Gen = Hippo_fuzz.Gen

let v = Value.reg
let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Observation: everything a run exposes, in comparable form. *)

type obs = {
  ret : string;
  bugs : string list;
  raw_bugs : string list;
  output : int list;
  trace : string list;
  cost_ns : float;
  steps : int;
  crash_points : int;
  cov : int list;
}

let ret_to_string = function
  | Ok n -> Printf.sprintf "ok:%d" n
  | Error `Stopped_at_crash -> "stopped_at_crash"
  | Error `Aborted -> "aborted"
  | Error `Out_of_fuel -> "out_of_fuel"

let observe ~tier ~trace ~cost ?(fuel = Machine.default_config.fuel)
    ?stop_at_crash prog =
  let cov = Coverage.create () in
  let config =
    {
      Machine.default_config with
      exec = tier;
      trace;
      cost;
      fuel;
      stop_at_crash;
      coverage = Some cov;
    }
  in
  let t, ret = Exec.run ~config prog ~entry:"main" ~args:[] in
  {
    ret = ret_to_string ret;
    bugs = List.map Report.bug_to_string (Interp.bugs t);
    raw_bugs = List.map Report.bug_to_string (Interp.raw_bugs t);
    output = Interp.output t;
    trace = List.map Trace.to_line (Interp.trace t);
    cost_ns = Interp.cost_ns t;
    steps = Interp.steps t;
    crash_points = Interp.crash_points_hit t;
    cov = Coverage.to_list cov;
  }

(* Polymorphic equality is exact here: strings, ints, and a float compared
   bit-for-bit (cost must accumulate in the same order in both tiers). *)
let parity ~trace ~cost ?fuel ?stop_at_crash prog =
  observe ~tier:`Interp ~trace ~cost ?fuel ?stop_at_crash prog
  = observe ~tier:`Compiled ~trace ~cost ?fuel ?stop_at_crash prog

(* ------------------------------------------------------------------ *)
(* QCheck properties over the fuzzer's program family. *)

let prop_parity_full =
  QCheck.Test.make ~name:"interp/compiled parity (trace+cost, mixed)"
    ~count:80 Gen.arb_mixed (fun prog ->
      parity ~trace:true ~cost:(Some Cost.default) prog)

let prop_parity_lean =
  QCheck.Test.make ~name:"interp/compiled parity (lean config, mixed)"
    ~count:80 Gen.arb_mixed (fun prog ->
      parity ~trace:false ~cost:None prog)

let prop_parity_crash_family =
  QCheck.Test.make ~name:"interp/compiled parity (crash family)" ~count:60
    Gen.arb_crash (fun prog ->
      parity ~trace:true ~cost:(Some Cost.default) prog
      && parity ~trace:false ~cost:None prog)

let prop_parity_out_of_fuel =
  QCheck.Test.make ~name:"interp/compiled parity at fuel exhaustion"
    ~count:60 Gen.arb_mixed (fun prog ->
      (* tiny budgets stop mid-program: the compiled tier's segment
         pre-charge must give the exact same Out_of_fuel point, steps
         count and trace prefix *)
      List.for_all
        (fun fuel -> parity ~trace:true ~cost:(Some Cost.default) ~fuel prog)
        [ 1; 7; 23; 61; 144 ])

(* Crash images: stop both tiers at every crash point in turn and compare
   the durable and working PM images byte for byte. *)
let prop_parity_crash_images =
  QCheck.Test.make ~name:"interp/compiled crash images at every stop index"
    ~count:25 Gen.arb_crash (fun prog ->
      let count =
        let config = { Machine.default_config with trace = false } in
        let t, _ = Exec.run ~config prog ~entry:"main" ~args:[] in
        Interp.crash_points_hit t
      in
      let snap tier k =
        let config =
          {
            Machine.default_config with
            exec = tier;
            trace = false;
            stop_at_crash = Some k;
          }
        in
        let t, ret = Exec.run ~config prog ~entry:"main" ~args:[] in
        (ret_to_string ret, Interp.crash_image t,
         Mem.working_image (Interp.mem t))
      in
      let ok = ref true in
      for k = 1 to count do
        let r1, p1, w1 = snap `Interp k and r2, p2, w2 = snap `Compiled k in
        if not (r1 = r2 && Bytes.equal p1 p2 && Bytes.equal w1 w2) then
          ok := false
      done;
      !ok)

(* The crash sweep under the compiled tier: same verdicts at jobs 1 and 2,
   and the same verdicts the interpreter-tier sweep produces. *)
let prop_sweep_tier_and_jobs_determinism =
  QCheck.Test.make ~name:"compiled crash sweep: jobs/tier determinism"
    ~count:20 Gen.arb_crash (fun prog ->
      QCheck.assume (Gen.has_checker prog);
      let sweep ~tier ~jobs =
        Crashsim.sweep
          ~config:{ Machine.default_config with exec = tier }
          ~jobs prog ~setup:Gen.setup ~checker:Gen.checker_name
          ~checker_args:[]
      in
      let c1 = sweep ~tier:`Compiled ~jobs:1 in
      let c2 = sweep ~tier:`Compiled ~jobs:2 in
      let i1 = sweep ~tier:`Interp ~jobs:1 in
      c1 = c2 && c1 = i1)

(* ------------------------------------------------------------------ *)
(* Hand-built edge cases: traps must carry identical messages, and the
   machine state left behind must agree. *)

let build_prog emit =
  let b = Builder.create () in
  emit b;
  let p = Builder.program b in
  Validate.check_exn p;
  p

let call_result t name args =
  match Exec.call t name args with
  | r -> Printf.sprintf "ret:%d" r
  | exception Mem.Trap m -> Printf.sprintf "trap:%s" m
  | exception Interp.Aborted -> "aborted"
  | exception Interp.Out_of_fuel -> "out_of_fuel"

let both_tiers prog name args =
  let run tier =
    let config = { Machine.default_config with exec = tier } in
    let t = Interp.create config prog in
    (call_result t name args, Interp.output t, Interp.steps t)
  in
  let a = run `Interp and b = run `Compiled in
  Alcotest.(check (triple string (list int) int)) "tier parity" a b;
  a

let test_trap_messages () =
  let p =
    build_prog (fun b ->
        ignore
          (Builder.func b "d" [ "x" ] ~body:(fun fb ->
               Builder.ret fb (Builder.div fb (i 10) (v "x"))));
        ignore
          (Builder.func b "r" [ "x" ] ~body:(fun fb ->
               Builder.ret fb (Builder.rem fb (i 10) (v "x"))));
        ignore
          (Builder.func b "sh" [ "x"; "k" ] ~body:(fun fb ->
               Builder.ret fb (Builder.shl fb (v "x") (v "k")))))
  in
  let msg, _, _ = both_tiers p "d" [ 0 ] in
  Alcotest.(check string) "div msg" "trap:division by zero" msg;
  let msg, _, _ = both_tiers p "r" [ 0 ] in
  Alcotest.(check string) "rem msg" "trap:remainder by zero" msg;
  (* shift amounts mask to [land 62] in both tiers *)
  let r, _, _ = both_tiers p "sh" [ 1; 65 ] in
  Alcotest.(check string) "shift mask"
    (Printf.sprintf "ret:%d" (1 lsl (65 land 62)))
    r;
  let r, _, _ = both_tiers p "sh" [ 3; 62 ] in
  Alcotest.(check string) "shift 62" (Printf.sprintf "ret:%d" (3 lsl 62)) r

let test_arity_and_undefined () =
  let p =
    build_prog (fun b ->
        ignore
          (Builder.func b "f" [ "x" ] ~body:(fun fb -> Builder.ret fb (v "x"))))
  in
  let msg, _, _ = both_tiers p "f" [ 1; 2 ] in
  Alcotest.(check string) "arity msg"
    "trap:@f called with 2 arguments (expects 1)" msg;
  let run tier =
    let config = { Machine.default_config with exec = tier } in
    let t = Interp.create config p in
    call_result t "nope" []
  in
  Alcotest.(check string) "undefined parity" (run `Interp) (run `Compiled)

let test_abort_and_wild_access () =
  let p =
    build_prog (fun b ->
        ignore
          (Builder.func b "boom" [] ~body:(fun fb ->
               Builder.call_void fb "abort" [];
               Builder.ret fb (i 0)));
        ignore
          (Builder.func b "wild" [] ~body:(fun fb ->
               Builder.ret fb (Builder.load fb (i 0x9999_9999) ~size:8)));
        ignore
          (Builder.func b "null" [] ~body:(fun fb ->
               Builder.store fb ~addr:(i 8) ~size:8 (i 1);
               Builder.ret fb (i 0))))
  in
  ignore (both_tiers p "boom" []);
  ignore (both_tiers p "wild" []);
  ignore (both_tiers p "null" [])

let test_tier_of_string () =
  Alcotest.(check bool) "interp" true (Exec.tier_of_string "interp" = Ok `Interp);
  Alcotest.(check bool) "compiled" true
    (Exec.tier_of_string "compiled" = Ok `Compiled);
  (match Exec.tier_of_string "jit" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  Alcotest.(check string) "round trip" "compiled"
    (Exec.tier_to_string `Compiled);
  Alcotest.(check string) "default tier" "compiled"
    (Exec.tier_to_string Machine.default_config.exec)

(* A compiled machine accumulates across host calls exactly like the
   interpreter (persistency state, trace, seq numbers span calls). *)
let test_accumulation_across_calls () =
  let prog = Gen.random_mixed (Random.State.make [| 42 |]) in
  let run tier =
    let config = { Machine.default_config with exec = tier } in
    let t = Interp.create config prog in
    ignore (Exec.call t "main" []);
    ignore (Exec.call t "main" []);
    Interp.exit_check t;
    ( List.map Trace.to_line (Interp.trace t),
      List.map Report.bug_to_string (Interp.raw_bugs t),
      Interp.output t )
  in
  let ti, bi, oi = run `Interp and tc, bc, oc = run `Compiled in
  Alcotest.(check (list string)) "trace" ti tc;
  Alcotest.(check (list string)) "raw bugs" bi bc;
  Alcotest.(check (list int)) "output" oi oc

let suite =
  [
    Alcotest.test_case "trap message parity" `Quick test_trap_messages;
    Alcotest.test_case "arity/undefined parity" `Quick test_arity_and_undefined;
    Alcotest.test_case "abort/wild/null parity" `Quick
      test_abort_and_wild_access;
    Alcotest.test_case "tier of/to string" `Quick test_tier_of_string;
    Alcotest.test_case "accumulation across calls" `Quick
      test_accumulation_across_calls;
    QCheck_alcotest.to_alcotest prop_parity_full;
    QCheck_alcotest.to_alcotest prop_parity_lean;
    QCheck_alcotest.to_alcotest prop_parity_crash_family;
    QCheck_alcotest.to_alcotest prop_parity_out_of_fuel;
    QCheck_alcotest.to_alcotest prop_parity_crash_images;
    QCheck_alcotest.to_alcotest prop_sweep_tier_and_jobs_determinism;
  ]
