(* Pass-manager engine tests: the versioned analysis cache is invisible
   (cached and cache-disabled runs produce identical fix plans and
   repaired programs), analyses are shared across an ablation sweep
   (Andersen points-to runs exactly once on an unmutated program), and
   the structured event stream reflects the pass order. *)

open Hippo_pmir
open Hippo_core
open Hippo_pmdk_mini
module E = Hippo_engine

let workload = Test_driver.workload

let fix_signature (r : Driver.result) =
  List.sort String.compare (List.map Fix.to_string r.Driver.plan.Fix.fixes)

let same_outcome (a : Driver.result) (b : Driver.result) =
  fix_signature a = fix_signature b
  && Printer.to_string a.Driver.repaired = Printer.to_string b.Driver.repaired

(* ------------------------------------------------------------------ *)
(* The cache is semantically invisible *)

let prop_cache_equivalence =
  QCheck.Test.make
    ~name:"cached and cache-disabled runs agree (plans and programs)"
    ~count:30 Test_driver.arb_buggy
    (fun p ->
      (* cache-disabled: every run builds its own throwaway cache *)
      let fresh = Driver.repair ~name:"fresh" ~workload p in
      (* cached: a shared cache, warmed by a first run, reused by a second *)
      let cache = E.Cache.create () in
      let warm = Driver.repair ~cache ~name:"warm" ~workload p in
      let cached = Driver.repair ~cache ~name:"cached" ~workload p in
      same_outcome fresh warm && same_outcome fresh cached)

let test_cache_equivalence_corpus () =
  let cache = E.Cache.create () in
  List.iter
    (fun (case : Case.t) ->
      let prog = Lazy.force case.Case.program in
      let fresh =
        Driver.repair ~name:case.Case.id ~workload:case.Case.workload prog
      in
      let cached =
        Driver.repair ~cache ~name:case.Case.id ~workload:case.Case.workload
          prog
      in
      Alcotest.(check bool)
        (case.Case.id ^ ": cached run equals cache-disabled run")
        true (same_outcome fresh cached))
    Bugs.all

(* ------------------------------------------------------------------ *)
(* Analysis sharing across an ablation sweep *)

let test_andersen_runs_once_across_sweep () =
  let cache = E.Cache.create () in
  let case = List.hd Bugs.all in
  let prog = Lazy.force case.Case.program in
  List.iter
    (fun options ->
      ignore
        (Driver.repair ~options ~cache ~name:case.Case.id
           ~workload:case.Case.workload prog))
    [
      Driver.default_options;
      { Driver.default_options with hoisting = false };
      { Driver.default_options with reduction = false };
      { Driver.default_options with clone_reuse = false };
    ];
  Alcotest.(check int)
    "Andersen points-to computed once, not once per configuration" 1
    (E.Cache.andersen_runs cache)

let test_apply_bumps_version () =
  let cache = E.Cache.create () in
  let case = List.hd Bugs.all in
  let prog = Lazy.force case.Case.program in
  let r =
    Driver.repair ~cache ~name:case.Case.id ~workload:case.Case.workload prog
  in
  (* the repaired program was registered as a fresh version *)
  Alcotest.(check int) "two versions registered" 2 (E.Cache.versions cache);
  Alcotest.(check int) "input is version 0" 0
    E.Cache.(version (view cache prog));
  Alcotest.(check int) "repaired is version 1" 1
    E.Cache.(version (view cache r.Driver.repaired));
  (* looking the versions up again must not mint new ones *)
  Alcotest.(check int) "lookups do not bump" 2 (E.Cache.versions cache)

(* ------------------------------------------------------------------ *)
(* Structured events *)

let pass_names (events : E.Event.t list) =
  List.map (fun e -> e.E.Event.pass) events

let test_event_stream_order () =
  let p = Test_driver.program_of_steps [ Test_driver.S_pm_store (0, 1) ] in
  let r = Driver.repair ~name:"evt" ~workload p in
  Alcotest.(check (list string))
    "one event per pass, in pipeline order"
    [ "locate"; "compute"; "reduce"; "hoist"; "apply"; "verify" ]
    (pass_names r.Driver.events);
  List.iter
    (fun (e : E.Event.t) ->
      Alcotest.(check bool)
        (e.E.Event.pass ^ " duration is non-negative")
        true (e.E.Event.dur_s >= 0.0))
    r.Driver.events;
  (* verify runs against the bumped program version *)
  let verify = List.nth r.Driver.events 5 in
  Alcotest.(check int) "verify sees version 1" 1 verify.E.Event.version

let test_event_json () =
  let e =
    {
      E.Event.pass = "locate";
      target = "a \"quoted\"\npath";
      version = 0;
      parallel = 2;
      dur_s = 0.25;
      counters = [ ("bugs", 3) ];
      notes = [ ("detector", "dynamic") ];
    }
  in
  Alcotest.(check string)
    "escaped JSON object"
    "{\"pass\":\"locate\",\"target\":\"a \\\"quoted\\\"\\npath\",\"version\":0,\"parallel\":2,\"dur_s\":0.250000,\"counters\":{\"bugs\":3},\"notes\":{\"detector\":\"dynamic\"}}"
    (E.Event.to_json e)

(* ------------------------------------------------------------------ *)
(* Driver satellites *)

let test_repair_static_respects_oracle () =
  let case = List.hd Bugs.all in
  let prog = Lazy.force case.Case.program in
  (* Full-AA: the workload-free pipeline works *)
  let r = Driver.repair_static ~name:case.Case.id prog in
  Alcotest.(check bool) "static bugs found" true (r.Driver.s_bugs <> []);
  Alcotest.(check int) "no residual static bugs" 0
    (List.length r.Driver.s_residual);
  Alcotest.(check bool) "events emitted" true (r.Driver.s_events <> []);
  (* Trace-AA needs a workload trace: a clear, early error *)
  match
    Driver.repair_static
      ~options:{ Driver.default_options with oracle = Driver.Trace_aa }
      ~name:case.Case.id prog
  with
  | _ -> Alcotest.fail "repair_static accepted the Trace-AA oracle"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "error names the Trace-AA oracle" true
        (Test_driver.string_contains ~needle:"Trace-AA" msg)

let test_peak_heap_uses_word_size () =
  let p = Test_driver.program_of_steps [ Test_driver.S_pm_store (0, 1) ] in
  let r = Driver.repair ~name:"heap" ~workload p in
  let word_bytes = Sys.word_size / 8 in
  Alcotest.(check bool) "positive" true (r.Driver.peak_heap_bytes > 0);
  Alcotest.(check int) "multiple of the machine word size" 0
    (r.Driver.peak_heap_bytes mod word_bytes)

let suite =
  [
    ("cache equivalence on the corpus", `Quick, test_cache_equivalence_corpus);
    ( "andersen runs once across ablation sweep",
      `Quick,
      test_andersen_runs_once_across_sweep );
    ("apply bumps the program version", `Quick, test_apply_bumps_version);
    ("event stream order", `Quick, test_event_stream_order);
    ("event JSON rendering", `Quick, test_event_json);
    ( "repair_static respects the oracle choice",
      `Quick,
      test_repair_static_respects_oracle );
    ("peak heap uses machine word size", `Quick, test_peak_heap_uses_word_size);
    QCheck_alcotest.to_alcotest prop_cache_equivalence;
  ]
