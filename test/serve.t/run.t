The in-process serve smoke is byte-identical for a given seed at any
--jobs width: logical workers own disjoint keyspaces, requests are
dispatched round-robin in worker order, and latency percentiles come
from the simulated cost model, so domain count only affects wall-clock
time. The output deliberately contains no timing and no jobs count.

  $ hippocrates serve --inproc --smoke --seed 42 --records 400 --ops 600 --workers 4 --jobs 1
  redis/manual: workers=4 records=400 final=400
  load: 400 reqs (ok=400 found=0 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  run: 600 reqs (ok=311 found=289 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  latency: p50 991ns p95 1727ns p99 1727ns p99.9 1855ns (n=1000)
  count=400 check=true digest=93e50bf8d65855
  redis/repaired: workers=4 records=400 final=400
  load: 400 reqs (ok=400 found=0 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  run: 600 reqs (ok=311 found=289 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  latency: p50 1151ns p95 1535ns p99 1535ns p99.9 1663ns (n=1000)
  count=400 check=true digest=93e50bf8d65855
  serve smoke: redis manual and repaired agree

  $ hippocrates serve --inproc --smoke --seed 42 --records 400 --ops 600 --workers 4 --jobs 2
  redis/manual: workers=4 records=400 final=400
  load: 400 reqs (ok=400 found=0 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  run: 600 reqs (ok=311 found=289 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  latency: p50 991ns p95 1727ns p99 1727ns p99.9 1855ns (n=1000)
  count=400 check=true digest=93e50bf8d65855
  redis/repaired: workers=4 records=400 final=400
  load: 400 reqs (ok=400 found=0 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  run: 600 reqs (ok=311 found=289 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  latency: p50 1151ns p95 1535ns p99 1535ns p99.9 1663ns (n=1000)
  count=400 check=true digest=93e50bf8d65855
  serve smoke: redis manual and repaired agree

The pclht app serves through the same adapter; flush-free is refused
because its bugs are injected rather than stripped:

  $ hippocrates serve --inproc --smoke --seed 7 --records 100 --ops 150 --workers 2 --app pclht --jobs 2
  pclht/manual: workers=2 records=100 final=100
  load: 100 reqs (ok=100 found=0 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  run: 150 reqs (ok=72 found=78 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  latency: p50 47ns p95 319ns p99 319ns p99.9 319ns (n=250)
  count=100 check=true digest=112cd7a2ba62f8
  pclht/repaired: workers=2 records=100 final=100
  load: 100 reqs (ok=100 found=0 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  run: 150 reqs (ok=72 found=78 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  latency: p50 151ns p95 319ns p99 319ns p99.9 319ns (n=250)
  count=100 check=true digest=112cd7a2ba62f8
  serve smoke: pclht manual and repaired agree

  $ hippocrates serve --inproc --app pclht --variant flush-free --records 10 --ops 10
  error: pclht has no flush-free build (its two bugs are injected, not stripped); use --variant manual or repaired
  [1]

Socket end-to-end: a Unix-socket server bounded to one connection,
driven by the load generator over the same binary protocol. (Socket
transport lives here rather than in the unit tests because OCaml 5
forbids fork after domains exist.)

  $ SOCK="$PWD/serve.sock"
  $ hippocrates serve --unix "$SOCK" --expect-conns 2 --jobs 1 >server.out 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
  $ hippocrates loadgen --unix "$SOCK" --records 200 --ops 300 --workers 2 --seed 5 --jobs 1 | grep -v kops
  load: 200 reqs (ok=200 found=0 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  run: 300 reqs (ok=148 found=152 absent=0 deleted=0 missed=0 unsupported=0 counted=0 errors=0)
  $ wait $SERVER
  $ grep -o 'ops=[0-9]*' server.out
  ops=500
