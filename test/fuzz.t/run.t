The fuzz smoke run is byte-identical for a given seed at any --jobs
width: candidates are constructed serially from per-candidate RNG
streams and merged in slot order, so the pool width only affects
wall-clock time. The summary deliberately contains no timing and no
jobs count.

  $ hippocrates fuzz --smoke --seed 42 --jobs 2
  fuzz: seed 42, budget 64 execs
  fuzz summary
    execs:     64 (26 generated, 38 mutants)
    corpus:    43 programs, digest 8ec71888bf42466c2ef39061a9520d32
    coverage:  135 edges (blind baseline at equal execs: 21)
    recovery memo: 195 hits / 69 misses
    violations: 0

  $ hippocrates fuzz --smoke --seed 42 --jobs 1
  fuzz: seed 42, budget 64 execs
  fuzz summary
    execs:     64 (26 generated, 38 mutants)
    corpus:    43 programs, digest 8ec71888bf42466c2ef39061a9520d32
    coverage:  135 edges (blind baseline at equal execs: 21)
    recovery memo: 195 hits / 69 misses
    violations: 0

A different seed explores different territory but stays violation-free
and keeps the guided run ahead of the coverage-blind baseline:

  $ hippocrates fuzz --smoke --seed 7 --jobs 2
  fuzz: seed 7, budget 64 execs
  fuzz summary
    execs:     64 (25 generated, 39 mutants)
    corpus:    51 programs, digest 2008d67228d4f61c8441dfe46cf02b40
    coverage:  134 edges (blind baseline at equal execs: 20)
    recovery memo: 155 hits / 79 misses
    violations: 0
