module Pmir_gen = Hippo_fuzz.Gen
(* The domain work pool, and the determinism battery for the parallel
   repair engine: the same inputs must produce the same fix plans,
   repaired programs and event sequences at every --jobs setting. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core
module Pool = Hippo_parallel.Pool
module E = Hippo_engine

let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Pool units *)

let square x = x * x

let test_map_ordering () =
  Pool.run ~domains:4 (fun p ->
      let xs = List.init 100 Fun.id in
      (* stagger the work so early submissions finish last: collection
         must still be in submission order *)
      let f x =
        let acc = ref 0 in
        for k = 1 to (100 - x) * 200 do
          acc := !acc + k
        done;
        ignore !acc;
        square x
      in
      Alcotest.(check (list int))
        "submission order" (List.map square xs) (Pool.map p f xs))

let test_empty_and_singleton () =
  Pool.run ~domains:3 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p square []);
      Alcotest.(check (list int)) "singleton" [ 49 ] (Pool.map p square [ 7 ]))

let test_exception_propagation () =
  Pool.run ~domains:3 (fun p ->
      (match
         Pool.map p
           (fun x -> if x mod 2 = 0 then failwith (Fmt.str "boom%d" x) else x)
           [ 1; 2; 3; 4 ]
       with
      | _ -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure m ->
          Alcotest.(check string) "first failing submission wins" "boom2" m);
      (* a failed map must not poison the pool *)
      Alcotest.(check (list int))
        "pool reusable after failure" [ 2; 4; 6 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_reuse () =
  Pool.run ~domains:2 (fun p ->
      for n = 1 to 5 do
        Alcotest.(check int)
          (Fmt.str "map_reduce sum to %d" n)
          (n * (n + 1) / 2)
          (Pool.map_reduce p ~map:Fun.id ~reduce:( + ) ~init:0
             (List.init n (fun k -> k + 1)))
      done)

let test_single_domain_fallback () =
  let p = Pool.create ~domains:1 () in
  Alcotest.(check int) "width clamped to 1" 1 (Pool.domains p);
  Alcotest.(check (list int))
    "serial map" [ 1; 4; 9 ]
    (Pool.map p square [ 1; 2; 3 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let test_nested_pools () =
  (* the sweep shape: verify opens its own 2-domain pool inside a worker
     task; caller-helps draining must not deadlock *)
  Pool.run ~domains:3 (fun outer ->
      Alcotest.(check (list int))
        "nested maps" [ 6; 12; 18; 24 ]
        (Pool.map outer
           (fun x ->
             Pool.run ~domains:2 (fun inner ->
                 List.fold_left ( + ) 0
                   (Pool.map inner (fun y -> x * y) [ 1; 2; 3 ])))
           [ 1; 2; 3; 4 ]))

let test_default_domains () =
  let d = Pool.default_domains () in
  Alcotest.(check bool) "at least one domain" true (d >= 1);
  (* when the CI matrix pins HIPPO_JOBS, the pool must honor it *)
  match Sys.getenv_opt "HIPPO_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Alcotest.(check int) "HIPPO_JOBS honored" n d
      | _ -> ())
  | None -> ()

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map at every width" ~count:100
    QCheck.(pair (int_range 1 4) (small_list int))
    (fun (domains, xs) ->
      let f x = (3 * x) - 1 in
      Pool.run ~domains (fun p -> Pool.map p f xs) = List.map f xs)

(* ------------------------------------------------------------------ *)
(* Determinism battery: fix --jobs N is invisible in every output *)

let repair_at_jobs jobs p =
  Driver.repair
    ~options:{ Driver.default_options with jobs }
    ~name:"par" ~workload:Pmir_gen.workload p

(* everything observable except wall-clock timings and the per-pass
   domain budget (which legitimately differs across --jobs settings) *)
let fingerprint (r : Driver.result) =
  ( Printer.to_string r.Driver.repaired,
    List.map Fix.to_string r.Driver.plan.Fix.fixes,
    List.map Report.bug_to_string r.Driver.bugs,
    List.map
      (fun (e : E.Event.t) ->
        (e.E.Event.pass, e.E.Event.target, e.E.Event.version,
         e.E.Event.counters, e.E.Event.notes))
      r.Driver.events )

let prop_fix_deterministic_across_jobs =
  QCheck.Test.make
    ~name:"repair at --jobs 1/2/4: identical plans, programs and events"
    ~count:20 Pmir_gen.arb_mixed
    (fun p ->
      let f1 = fingerprint (repair_at_jobs 1 p) in
      f1 = fingerprint (repair_at_jobs 2 p)
      && f1 = fingerprint (repair_at_jobs 4 p))

let test_verify_event_parallel_field () =
  let p = Pmir_gen.program_of_steps [ Pmir_gen.S_store_raw (0, 5) ] in
  let parallel_of (r : Driver.result) pass =
    (List.find (fun (e : E.Event.t) -> e.E.Event.pass = pass) r.Driver.events)
      .E.Event.parallel
  in
  let serial = repair_at_jobs 1 p and par = repair_at_jobs 4 p in
  Alcotest.(check int) "serial verify" 1 (parallel_of serial "verify");
  Alcotest.(check int) "parallel verify uses 2 domains" 2
    (parallel_of par "verify");
  Alcotest.(check int) "locate stays serial" 1 (parallel_of par "locate")

(* ------------------------------------------------------------------ *)
(* Parallel corpus sweep *)

(* Program versions are cache-relative: the serial sweep's shared cache
   numbers all cases consecutively, while per-domain caches restart per
   domain. Rebasing each case's versions on its first event makes the
   sequences comparable; everything else must match exactly. *)
let rebased_events (r : Driver.result) =
  match r.Driver.events with
  | [] -> []
  | first :: _ ->
      let base = first.E.Event.version in
      List.map
        (fun (e : E.Event.t) ->
          ( e.E.Event.pass, e.E.Event.target, e.E.Event.version - base,
            List.map
              (fun (k, v) ->
                if k = "output_version" then (k, v - base) else (k, v))
              e.E.Event.counters,
            e.E.Event.notes ))
        r.Driver.events

let corpus_fingerprint results =
  List.map
    (fun ((c : Hippo_pmdk_mini.Case.t), (r : Driver.result)) ->
      ( c.Hippo_pmdk_mini.Case.id,
        Printer.to_string r.Driver.repaired,
        List.map Fix.to_string r.Driver.plan.Fix.fixes,
        List.map Report.bug_to_string r.Driver.bugs,
        rebased_events r ))
    results

let test_sweep_matches_serial () =
  let cases = Hippo_pmdk_mini.Bugs.all in
  let serial, serial_cache = Hippo_bugstudy.Sweep.corpus ~jobs:1 cases in
  let par, par_cache = Hippo_bugstudy.Sweep.corpus ~jobs:4 cases in
  Alcotest.(check bool)
    "identical results in corpus order" true
    (corpus_fingerprint serial = corpus_fingerprint par);
  (* same total analysis work, merely spread over per-domain caches *)
  let computes c =
    List.fold_left (fun acc (_, n, _) -> acc + n) 0 (E.Cache.stats c)
  in
  Alcotest.(check int)
    "same analysis computes overall" (computes serial_cache)
    (computes par_cache)

let test_crashsim_sweep_jobs_identical () =
  (* the pmcheck crash-state enumeration fans out over the pool *)
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "init" [] ~body:(fun fb ->
        let c = call fb "pm_alloc" [ i 128 ] in
        store fb ~addr:c (i 0);
        flush fb c;
        fence fb ();
        ret fb c)
  in
  let _ =
    func b "bump" [] ~body:(fun fb ->
        let c = call fb "pm_base" [] in
        let x = add fb (load fb c) (i 1) in
        store fb ~addr:c x;
        flush fb c;
        fence fb ();
        crash fb;
        ret_void fb)
  in
  let _ =
    func b "check" [] ~body:(fun fb ->
        let c = call fb "pm_base" [] in
        ret fb (le fb (i 0) (load fb c)))
  in
  let p = Builder.program b in
  Validate.check_exn p;
  let setup = [ ("init", []); ("bump", []); ("bump", []); ("bump", []) ] in
  let serial = Crashsim.sweep ~jobs:1 p ~setup ~checker:"check" ~checker_args:[] in
  let par = Crashsim.sweep ~jobs:4 p ~setup ~checker:"check" ~checker_args:[] in
  Alcotest.(check int) "three crash points" 3 (List.length serial);
  Alcotest.(check bool) "verdicts identical" true (serial = par)

(* ------------------------------------------------------------------ *)
(* Verify: crash-stopped workloads must not report at-exit phantoms *)

let crash_mid_transaction_prog () =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 64 ] in
        store fb ~addr:pm (i 7);
        crash fb;
        flush fb pm;
        fence fb ();
        ret_void fb)
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

let test_verify_crash_stop_skips_exit_check () =
  let p = crash_mid_transaction_prog () in
  let config = { Interp.default_config with Interp.stop_at_crash = Some 1 } in
  let workload t = ignore (Interp.call t "main" []) in
  let o = Verify.check ~jobs:1 ~workload ~config ~original:p ~repaired:p in
  (* the store is legitimately unpersisted at the crash point the run
     stopped at — but the run never exited, so the implicit at-exit crash
     point must not also fire *)
  Alcotest.(check int) "one residual bug, at the crash point" 1
    (List.length o.Verify.residual_bugs);
  Alcotest.(check bool) "no at-exit phantom report" true
    (List.for_all
       (fun (b : Report.bug) -> b.Report.crash.Report.crash_iid <> None)
       o.Verify.residual_bugs);
  Alcotest.(check bool) "state comparison still runs" true (Verify.harm_free o)

let suite =
  [
    ("pool map ordering", `Quick, test_map_ordering);
    ("pool empty/singleton", `Quick, test_empty_and_singleton);
    ("pool exception propagation", `Quick, test_exception_propagation);
    ("pool reuse", `Quick, test_pool_reuse);
    ("pool single-domain fallback", `Quick, test_single_domain_fallback);
    ("pool nested", `Quick, test_nested_pools);
    ("pool default domains", `Quick, test_default_domains);
    QCheck_alcotest.to_alcotest prop_map_matches_list_map;
    QCheck_alcotest.to_alcotest prop_fix_deterministic_across_jobs;
    ("verify event parallel field", `Quick, test_verify_event_parallel_field);
    ("corpus sweep matches serial", `Quick, test_sweep_matches_serial);
    ("crashsim sweep jobs identical", `Quick, test_crashsim_sweep_jobs_identical);
    ("verify skips exit check after crash stop", `Quick,
     test_verify_crash_stop_skips_exit_check);
  ]
