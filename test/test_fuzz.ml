(* The fuzzing subsystem: coverage bitmap laws, mutator well-typedness,
   shrinker minimality, and the fuzz loop's determinism contract. *)

open Hippo_pmir
open Hippo_pmcheck
module Pgen = Hippo_fuzz.Gen
module Mutate = Hippo_fuzz.Mutate
module Oracle = Hippo_fuzz.Oracle
module Shrink = Hippo_fuzz.Shrink
module Fuzzer = Hippo_fuzz.Fuzzer

(* Coverage bitmap ------------------------------------------------------- *)

let test_coverage_edge_stable () =
  let e1 = Coverage.edge ~func:"f" ~block:"entry" ~dest:"then1" in
  let e2 = Coverage.edge ~func:"f" ~block:"entry" ~dest:"then1" in
  Alcotest.(check int) "same triple, same index" e1 e2;
  Alcotest.(check bool) "index in range" true (e1 >= 0 && e1 < Coverage.map_size);
  let e3 = Coverage.edge ~func:"f" ~block:"entry" ~dest:"else1" in
  Alcotest.(check bool) "different dest, different index" true (e1 <> e3)

let test_coverage_mark_reset () =
  let t = Coverage.create () in
  let e = Coverage.edge ~func:"f" ~block:"b" ~dest:"c" in
  Alcotest.(check bool) "fresh map empty" false (Coverage.mem t e);
  Coverage.mark t e;
  Coverage.mark t e;
  Alcotest.(check bool) "marked" true (Coverage.mem t e);
  Alcotest.(check int) "count ignores re-marks" 1 (Coverage.count t);
  Coverage.reset t;
  Alcotest.(check int) "reset clears" 0 (Coverage.count t);
  Alcotest.(check bool) "reset clears membership" false (Coverage.mem t e)

let test_coverage_add_merge () =
  let a = Coverage.create () and b = Coverage.create () in
  Alcotest.(check int) "add counts new bits" 3 (Coverage.add ~into:a [ 1; 2; 3 ]);
  Alcotest.(check int) "re-add counts nothing" 0 (Coverage.add ~into:a [ 2; 3 ]);
  ignore (Coverage.add ~into:b [ 3; 4 ]);
  Alcotest.(check int) "merge counts only fresh" 1 (Coverage.merge ~into:a b);
  Alcotest.(check (list int)) "to_list ascending" [ 1; 2; 3; 4 ]
    (Coverage.to_list a)

let test_coverage_run_deterministic () =
  (* same program, two fresh maps: identical edge sets *)
  let rand = Random.State.make [| 7 |] in
  let p = Pgen.random_mixed rand in
  let run () = Oracle.coverage_edges p in
  Alcotest.(check (list int)) "same edges both runs" (run ()) (run ())

(* Mutators -------------------------------------------------------------- *)

let prop_mutants_valid =
  QCheck.Test.make ~name:"mutants are well-typed PMIR" ~count:60
    QCheck.(pair Pgen.arb_mixed small_int)
    (fun (p, s) ->
      let rand = Random.State.make [| s |] in
      match Mutate.mutate_stack rand p with
      | None -> true
      | Some (_, p') -> Validate.is_valid p')

let prop_mutants_keep_checker =
  QCheck.Test.make ~name:"mutators never touch the recovery checker"
    ~count:60
    QCheck.(pair Pgen.arb_crash small_int)
    (fun (p, s) ->
      let checker_body p =
        match Program.find p Pgen.checker_name with
        | Some f -> Some (Printer.func_to_string f)
        | None -> None
      in
      let rand = Random.State.make [| s |] in
      match Mutate.mutate_stack rand p with
      | None -> true
      | Some (_, p') -> checker_body p' = checker_body p)

(* Hot blocks ------------------------------------------------------------ *)

let test_hot_blocks () =
  let rand = Random.State.make [| 11 |] in
  let p = Pgen.random_mixed rand in
  let hot = Oracle.hot_blocks p (Oracle.coverage_edges p) in
  Alcotest.(check bool) "main entry is hot" true
    (List.mem ("main", "entry") hot);
  List.iter
    (fun (fn, bl) ->
      match Program.find p fn with
      | None -> Alcotest.failf "hot block in unknown function %s" fn
      | Some f ->
          if not (List.exists (fun (b : Func.block) -> b.label = bl) (Func.blocks f))
          then Alcotest.failf "hot block %s.%s not in program" fn bl)
    hot

(* Shrinker -------------------------------------------------------------- *)

let undurable_store_count p =
  let config = Oracle.interp_config in
  let t = Interp.run ~config p ~entry:"main" ~args:[] in
  List.length (Interp.bugs (fst t))

let test_shrink_minimal () =
  (* a buggy program padded with generator noise shrinks to something
     that still fails, is valid, and is a deletion fixpoint *)
  let rand = Random.State.make [| 3 |] in
  let p = Pgen.random_mixed rand in
  let fails p = undurable_store_count p > 0 in
  (* make sure the seed actually fails; if not, drop its flushes first *)
  let apply name r p =
    (List.find (fun m -> m.Mutate.mname = name) Mutate.all).Mutate.apply
      ~hot:[] r p
  in
  let p =
    let rec strip p n =
      if n = 0 || fails p then p
      else
        let r = Random.State.make [| n |] in
        let p' =
          match apply "drop_flush" r p with
          | Some p' -> p'
          | None -> Option.value (apply "drop_fence" r p) ~default:p
        in
        strip p' (n - 1)
    in
    strip p 32
  in
  if not (fails p) then Alcotest.skip ()
  else begin
    let s = Shrink.shrink ~fails p in
    Alcotest.(check bool) "shrunk still fails" true (fails s);
    Alcotest.(check bool) "shrunk is valid" true (Validate.is_valid s);
    Alcotest.(check bool) "shrunk no larger" true
      (Program.size s <= Program.size p);
    let s2 = Shrink.shrink ~fails s in
    Alcotest.(check int) "shrinking is a fixpoint" (Program.size s)
      (Program.size s2)
  end

(* Fuzz loop determinism -------------------------------------------------- *)

let smoke_config jobs =
  {
    Fuzzer.default_config with
    Fuzzer.seed = 42;
    jobs;
    max_execs = 48;
    smoke = true;
  }

let summary_fingerprint (s : Fuzzer.summary) =
  Fmt.str "%d/%d/%d/%d/%s/%d/%d/%d/%d/%d" s.Fuzzer.execs s.Fuzzer.gen_count
    s.Fuzzer.mutant_count s.Fuzzer.corpus_size s.Fuzzer.corpus_digest
    s.Fuzzer.edges s.Fuzzer.blind_edges s.Fuzzer.memo_hits
    s.Fuzzer.memo_misses
    (List.length s.Fuzzer.found)

let test_jobs_deterministic () =
  let s1 = Fuzzer.run (smoke_config 1) in
  let s2 = Fuzzer.run (smoke_config 2) in
  Alcotest.(check string) "summary identical at jobs 1 and 2"
    (summary_fingerprint s1) (summary_fingerprint s2)

let test_memo_counters () =
  let s = Fuzzer.run (smoke_config 2) in
  Alcotest.(check bool) "crash sweeps consulted the recovery memo" true
    (s.Fuzzer.memo_hits + s.Fuzzer.memo_misses > 0)

let suite =
  [
    ("coverage edge stable", `Quick, test_coverage_edge_stable);
    ("coverage mark/reset", `Quick, test_coverage_mark_reset);
    ("coverage add/merge", `Quick, test_coverage_add_merge);
    ("coverage deterministic", `Quick, test_coverage_run_deterministic);
    QCheck_alcotest.to_alcotest prop_mutants_valid;
    QCheck_alcotest.to_alcotest prop_mutants_keep_checker;
    ("hot blocks", `Quick, test_hot_blocks);
    ("shrinker minimal", `Quick, test_shrink_minimal);
    ("fuzz jobs-deterministic", `Slow, test_jobs_deterministic);
    ("fuzz memo counters", `Slow, test_memo_counters);
  ]
