The command-line workflow, end to end, over a textual PMIR program.

  $ cat > demo.pmir <<'PMIR'
  > ; Listing 5 from the paper, in textual PMIR
  > func @update(%addr, %idx, %val) {
  > entry:
  >   %slot = gep %addr, %idx
  >   store.i8 %val -> %slot @ "update.c":2
  >   ret
  > }
  > 
  > func @modify(%addr) {
  > entry:
  >   call @update(%addr, 0, 42) @ "modify.c":5
  >   ret
  > }
  > 
  > func @main() {
  > entry:
  >   %vol = call @malloc(64)
  >   %pm = call @pm_alloc(64)
  >   %i = mov 0
  >   br head
  > head:
  >   %c = lt %i, 100
  >   condbr %c, body, done
  > body:
  >   call @modify(%vol) @ "foo.c":18
  >   %i = add %i, 1
  >   br head
  > done:
  >   call @modify(%pm) @ "foo.c":19
  >   crash @ "foo.c":23
  >   ret
  > }
  > PMIR

The bug finder reports the unflushed PM store (exit code 1 signals bugs):

  $ hippocrates check demo.pmir --trace-out demo.trace
  main() returned 0
  PM stores: 1, flushes: 0, fences: 0
  durability bugs: 2
    [missing-flush&fence] store at update.c:2 (update#2), 0x40000000+1, unpersisted at foo.c:23
    [missing-flush&fence] store at update.c:2 (update#2), 0x40000000+1, unpersisted at <exit>:0
  trace written to demo.trace
  [1]

Repair from the on-disk trace; the heuristic hoists to the PM call site:

  $ hippocrates fix demo.pmir --trace demo.trace -o demo.fixed.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 2 stores, 1 flush sites, 1 fence sites
  bugs: 2; fixes: 1 (0 intra, 1 inter); reduction eliminated 2; clones: 2

  $ grep -A4 'func @update_PM' demo.fixed.pmir
  func @update_PM(%addr, %idx, %val) {
  entry:
    %slot = gep %addr, %idx @ "update.pmir":4
    store.i8 %val -> %slot @ "update.c":2
    flush.clwb %slot @ "update.c":2

The repaired program is clean:

  $ hippocrates check demo.fixed.pmir
  main() returned 0
  PM stores: 1, flushes: 1, fences: 1
  durability bugs: 0

Intra-only repair (Phase 3 disabled) fixes in-line instead:

  $ hippocrates fix demo.pmir --trace demo.trace --no-hoist -o demo.intra.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 1 stores, 1 flush sites, 1 fence sites
  bugs: 2; fixes: 2 (2 intra, 0 inter); reduction eliminated 2; clones: 0

  $ grep -c 'flush.clwb' demo.intra.pmir
  1
  $ hippocrates check demo.intra.pmir
  main() returned 0
  PM stores: 1, flushes: 101, fences: 101
  durability bugs: 0

The PMTest trace dialect round-trips through fix as well:

  $ hippocrates check demo.pmir --format pmtest --trace-out demo.pmtest > /dev/null
  [1]
  $ hippocrates fix demo.pmir --trace demo.pmtest --format pmtest -o demo.fixed2.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 2 stores, 1 flush sites, 1 fence sites
  bugs: 2; fixes: 1 (0 intra, 1 inter); reduction eliminated 2; clones: 2
  $ diff demo.fixed.pmir demo.fixed2.pmir

The static analyzer finds the same two bugs without executing anything
(exit code 1 signals bugs, as with the dynamic finder):

  $ hippocrates check demo.pmir --static --trace-out demo.static.trace
  static analysis: 1 entry, 4 summaries (6 reused)
  durability bugs: 2
    [missing-flush&fence] store at update.c:2 (update#2), 0x0+1, unpersisted at foo.c:23
    [missing-flush&fence] store at update.c:2 (update#2), 0x0+1, unpersisted at <exit>:0
  reports written to demo.static.trace
  [1]

Workload-free repair from static reports produces the same fix as the
dynamic pipeline, and the result is clean under both checkers:

  $ hippocrates fix demo.pmir --detector static -o demo.sfixed.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 2 stores, 1 flush sites, 1 fence sites
  target: demo.pmir
  static bugs: 2
  fixes: 1 (0 intraprocedural, 1 interprocedural)
  residual static bugs: 0
  summaries: 4 computed, 6 reused
  $ diff demo.fixed.pmir demo.sfixed.pmir
  $ hippocrates check demo.sfixed.pmir
  main() returned 0
  PM stores: 1, flushes: 1, fences: 1
  durability bugs: 0
  $ hippocrates check demo.sfixed.pmir --static
  static analysis: 1 entry, 4 summaries (6 reused)
  durability bugs: 0

The static report file feeds `fix --trace` like a dynamic trace, and
`--detector both` unions the two report sets; all three agree here:

  $ hippocrates fix demo.pmir --trace demo.static.trace -o demo.tfixed.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 2 stores, 1 flush sites, 1 fence sites
  bugs: 2; fixes: 1 (0 intra, 1 inter); reduction eliminated 2; clones: 2
  $ diff demo.sfixed.pmir demo.tfixed.pmir
  $ hippocrates fix demo.pmir --detector both -o demo.bfixed.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 2 stores, 1 flush sites, 1 fence sites
  target: demo.pmir
  bugs: 2
  fixes: 1 (0 intraprocedural, 1 interprocedural)
  reduction eliminated: 2
  IR size: 17 -> 24 (+41.176%)
  verification: residual bugs: 0; outputs match; PM state match
  $ diff demo.sfixed.pmir demo.bfixed.pmir

The corpus listing shows all 23 reproduced bugs:

  $ hippocrates corpus | wc -l
  23

Repairs are deterministic across domain budgets: `--jobs` parallelizes
verification without changing a byte of output:

  $ hippocrates fix demo.pmir --jobs 1 -o demo.j1.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 2 stores, 1 flush sites, 1 fence sites
  target: demo.pmir
  bugs: 2
  fixes: 1 (0 intraprocedural, 1 interprocedural)
  reduction eliminated: 2
  IR size: 17 -> 24 (+41.176%)
  verification: residual bugs: 0; outputs match; PM state match
  $ hippocrates fix demo.pmir --jobs 4 -o demo.j4.pmir
  input:    1 stores, 0 flush sites, 0 fence sites
  repaired: 2 stores, 1 flush sites, 1 fence sites
  target: demo.pmir
  bugs: 2
  fixes: 1 (0 intraprocedural, 1 interprocedural)
  reduction eliminated: 2
  IR size: 17 -> 24 (+41.176%)
  verification: residual bugs: 0; outputs match; PM state match
  $ diff demo.j1.pmir demo.j4.pmir
  $ diff demo.j1.pmir demo.fixed.pmir

`check --crash-sweep` enumerates every crash point of the workload and
recovers both crash images with an in-program checker, fanning the
scenarios out across `--jobs` domains. A persistent counter whose shadow
copy is never flushed recovers only on the lucky image — the durability
bug demonstrated end to end:

  $ cat > counter.pmir <<'PMIR'
  > ; value at [0], shadow at [64]; invariant: value == shadow
  > func @main() {
  > entry:
  >   %c = call @pm_alloc(128)
  >   store.i64 0 -> %c @ "counter.c":3
  >   %s = gep %c, 64
  >   store.i64 0 -> %s @ "counter.c":4
  >   flush.clwb %c
  >   flush.clwb %s
  >   fence.sfence
  >   call @bump()
  >   call @bump()
  >   ret
  > }
  > 
  > func @bump() {
  > entry:
  >   %c = call @pm_base()
  >   %s = gep %c, 64
  >   %x0 = load.i64 %c
  >   %x = add %x0, 1
  >   store.i64 %x -> %c @ "counter.c":10
  >   flush.clwb %c
  >   fence.sfence
  >   store.i64 %x -> %s @ "counter.c":12
  >   crash @ "counter.c":14
  >   ret
  > }
  > 
  > func @check() {
  > entry:
  >   %c = call @pm_base()
  >   %s = gep %c, 64
  >   %a = load.i64 %c
  >   %b = load.i64 %s
  >   %e = eq %a, %b
  >   ret %e
  > }
  > PMIR

  $ hippocrates check counter.pmir --crash-sweep check --jobs 2
  main() returned 0
  PM stores: 6, flushes: 4, fences: 3
  durability bugs: 3
    [missing-flush&fence] store at counter.c:12 (bump#18), 0x40000040+8, unpersisted at counter.c:14
    [missing-flush&fence] store at counter.c:12 (bump#18), 0x40000040+8, unpersisted at counter.c:14
    [missing-flush&fence] store at counter.c:12 (bump#18), 0x40000040+8, unpersisted at <exit>:0
    crash point  1: pessimistic LOST, lucky recovers
    crash point  2: pessimistic LOST, lucky recovers
  crash images: 4 distinct of 4 captured; recovery runs: 4 (0 memoized)
  crash consistent: NO (0/2 crash points recover)
  [1]

After repair the pessimistic image recovers at every crash point:

  $ hippocrates fix counter.pmir -o counter.fixed.pmir 2>/dev/null
  $ hippocrates check counter.fixed.pmir --crash-sweep check --jobs 2
  main() returned 0
  PM stores: 6, flushes: 6, fences: 5
  durability bugs: 0
    crash point  1: pessimistic recovers, lucky recovers
    crash point  2: pessimistic recovers, lucky recovers
  crash images: 2 distinct of 4 captured; recovery runs: 2 (2 memoized)
  crash consistent: yes (2/2 crash points recover)

`--crash-strategy replay` re-executes the workload prefix per crash
point (the historical O(n^2) path, kept for differential testing); the
verdicts are identical, with no dedup statistics to report:

  $ hippocrates check counter.fixed.pmir --crash-sweep check --crash-strategy replay --jobs 2
  main() returned 0
  PM stores: 6, flushes: 6, fences: 5
  durability bugs: 0
    crash point  1: pessimistic recovers, lucky recovers
    crash point  2: pessimistic recovers, lucky recovers
  crash consistent: yes (2/2 crash points recover)

The static analyzer rejects the sweep (it has no workload to crash):

  $ hippocrates check counter.pmir --static --crash-sweep check
  error: --crash-sweep needs a dynamic workload; drop --static
  [1]
