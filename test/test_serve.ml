(* Tests for the serve subsystem: codec round-trips and rejection of
   damaged frames, handler/app-adapter semantics, and end-to-end
   in-process determinism across worker counts and domain widths. *)

open Hippo_serve
module App = Hippo_apps.App
module Hist = Hippo_perfmodel.Stats.Hist

(* ------------------------------------------------------------------ *)
(* Codec *)

let wire_string =
  QCheck.Gen.(string_size ~gen:printable (int_range 1 40))

let request_gen : Protocol.request QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun key value -> Protocol.Set { key; value })
          wire_string wire_string;
        map (fun key -> Protocol.Get { key }) wire_string;
        map (fun key -> Protocol.Del { key }) wire_string;
        map2
          (fun key len -> Protocol.Scan { key; len })
          wire_string (int_range 0 1000);
        return Protocol.Count;
        return Protocol.Stats;
      ])

let reply_gen : Protocol.reply QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        return Protocol.Ok_;
        map (fun v -> Protocol.Value v) wire_string;
        return Protocol.Not_found;
        map (fun d -> Protocol.Deleted d) bool;
        return Protocol.Unsupported;
        map (fun n -> Protocol.Count_is n) (int_range 0 1_000_000);
        map
          (fun ns ->
            let hist = Hist.create () in
            List.iter (Hist.record hist) ns;
            Protocol.Stats_are
              {
                Protocol.ops = List.length ns;
                kind_counts =
                  Array.init Protocol.nkinds (fun i ->
                      i * List.length ns);
                hist;
              })
          (list_size (int_range 0 50) (int_range 0 1_000_000));
        map (fun m -> Protocol.Err m) wire_string;
      ])

(* structural equality, except histograms compare by sparse form *)
let reply_equal (a : Protocol.reply) (b : Protocol.reply) =
  match (a, b) with
  | Protocol.Stats_are sa, Protocol.Stats_are sb ->
      sa.Protocol.ops = sb.Protocol.ops
      && sa.Protocol.kind_counts = sb.Protocol.kind_counts
      && Hist.buckets sa.Protocol.hist = Hist.buckets sb.Protocol.hist
  | _ -> a = b

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode round-trip" ~count:500
    (QCheck.make request_gen) (fun req ->
      let frame = Protocol.encode_request req in
      match Protocol.decode_request frame ~pos:0 with
      | Ok (req', next) -> req' = req && next = String.length frame
      | Error _ -> false)

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply encode/decode round-trip" ~count:500
    (QCheck.make reply_gen) (fun reply ->
      let frame = Protocol.encode_reply reply in
      match Protocol.decode_reply frame ~pos:0 with
      | Ok (reply', next) ->
          reply_equal reply' reply && next = String.length frame
      | Error _ -> false)

let prop_truncation_rejected =
  (* every strict prefix of a valid frame is Truncated, never Ok and
     never Malformed (a partial read must simply wait for more bytes) *)
  QCheck.Test.make ~name:"every strict prefix reports Truncated" ~count:200
    (QCheck.make request_gen) (fun req ->
      let frame = Protocol.encode_request req in
      List.for_all
        (fun n ->
          match Protocol.decode_request (String.sub frame 0 n) ~pos:0 with
          | Error Protocol.Truncated -> true
          | _ -> false)
        (List.init (String.length frame) Fun.id))

let test_oversized_rejected () =
  (* a length prefix beyond max_payload is rejected without waiting for
     the (absurd) body *)
  let b = Buffer.create 8 in
  let len = Protocol.max_payload + 1 in
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (len land 0xFF));
  (match Protocol.decode_request (Buffer.contents b) ~pos:0 with
  | Error (Protocol.Oversized n) -> Alcotest.(check int) "length" len n
  | _ -> Alcotest.fail "oversized frame accepted");
  match Protocol.encode_reply (Protocol.Value (String.make (Protocol.max_payload + 10) 'x')) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized encode accepted"

let test_malformed_rejected () =
  (* a complete frame with garbage inside is Malformed, not Truncated *)
  let bad_tag = "\x00\x00\x00\x01\x7f" in
  (match Protocol.decode_request bad_tag ~pos:0 with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "unknown tag accepted");
  (* declared payload longer than its fields *)
  let short_body = "\x00\x00\x00\x03\x02\x00\x05" in
  (match Protocol.decode_request short_body ~pos:0 with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "short body accepted");
  (* trailing junk inside the declared payload *)
  let get = Protocol.encode_request (Protocol.Get { key = "k" }) in
  let payload = String.sub get 4 (String.length get - 4) ^ "junk" in
  let n = String.length payload in
  let framed =
    Fmt.str "%c%c%c%c%s"
      (Char.chr ((n lsr 24) land 0xFF))
      (Char.chr ((n lsr 16) land 0xFF))
      (Char.chr ((n lsr 8) land 0xFF))
      (Char.chr (n land 0xFF))
      payload
  in
  match Protocol.decode_request framed ~pos:0 with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "trailing payload bytes accepted"

let test_streamed_frames () =
  (* several frames concatenated decode in sequence from moving offsets *)
  let reqs =
    [
      Protocol.Set { key = "a"; value = "1" };
      Protocol.Get { key = "a" };
      Protocol.Count;
    ]
  in
  let buf = String.concat "" (List.map Protocol.encode_request reqs) in
  let rec decode pos acc =
    if pos >= String.length buf then List.rev acc
    else
      match Protocol.decode_request buf ~pos with
      | Ok (req, next) -> decode next (req :: acc)
      | Error e -> Alcotest.failf "decode: %a" Protocol.pp_error e
  in
  Alcotest.(check bool) "all frames decode" true (decode 0 [] = reqs)

(* ------------------------------------------------------------------ *)
(* App adapter + handler *)

let small_app variant =
  match App.make App.Redis variant with
  | Ok app -> app
  | Error e -> Alcotest.failf "App.make: %s" e

let test_app_adapter_semantics () =
  let app = small_app App.Manual in
  let metrics = Metrics.create () in
  let rpc req = Handler.handle ~app ~metrics req in
  Alcotest.(check bool) "set" true
    (rpc (Protocol.Set { key = "alpha"; value = "one" }) = Protocol.Ok_);
  Alcotest.(check bool) "get hit" true
    (rpc (Protocol.Get { key = "alpha" }) = Protocol.Value "one");
  Alcotest.(check bool) "get miss" true
    (rpc (Protocol.Get { key = "beta" }) = Protocol.Not_found);
  Alcotest.(check bool) "scan unsupported" true
    (rpc (Protocol.Scan { key = "alpha"; len = 3 }) = Protocol.Unsupported);
  Alcotest.(check bool) "count" true (rpc Protocol.Count = Protocol.Count_is 1);
  Alcotest.(check bool) "del hit" true
    (rpc (Protocol.Del { key = "alpha" }) = Protocol.Deleted true);
  Alcotest.(check bool) "del miss" true
    (rpc (Protocol.Del { key = "alpha" }) = Protocol.Deleted false);
  (* an over-capacity key maps to Err, not a dead connection *)
  (match rpc (Protocol.Set { key = String.make 100 'k'; value = "v" }) with
  | Protocol.Err _ -> ()
  | _ -> Alcotest.fail "over-capacity key accepted");
  (* metrics counted every op, including the failed one *)
  Alcotest.(check int) "ops counted" 8 (Metrics.ops metrics);
  let stats = (Metrics.snapshot metrics : Protocol.server_stats) in
  Alcotest.(check int) "set count" 2
    stats.Protocol.kind_counts.(Protocol.kind_index Protocol.KSet);
  Alcotest.(check int) "hist count" 8 (Hist.count stats.Protocol.hist);
  match rpc Protocol.Stats with
  | Protocol.Stats_are s -> Alcotest.(check int) "stats ops" 8 s.Protocol.ops
  | _ -> Alcotest.fail "stats reply"

let test_pclht_adapter () =
  match App.make App.Pclht App.Manual with
  | Error e -> Alcotest.failf "pclht make: %s" e
  | Ok app ->
      let metrics = Metrics.create () in
      let rpc req = Handler.handle ~app ~metrics req in
      Alcotest.(check bool) "set" true
        (rpc (Protocol.Set { key = "k1"; value = "v1" }) = Protocol.Ok_);
      (* a word store: GET echoes the stored word, not the SET bytes *)
      (match rpc (Protocol.Get { key = "k1" }) with
      | Protocol.Value _ -> ()
      | _ -> Alcotest.fail "pclht get hit");
      Alcotest.(check bool) "miss" true
        (rpc (Protocol.Get { key = "nope" }) = Protocol.Not_found);
      Alcotest.(check bool) "count" true
        (rpc Protocol.Count = Protocol.Count_is 1);
      Alcotest.(check bool) "check" true (app.App.check ())

let test_pclht_flush_free_rejected () =
  match App.make App.Pclht App.Flush_free with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pclht flush-free accepted"

let test_handle_wire_codec_path () =
  let app = small_app App.Manual in
  let metrics = Metrics.create () in
  let frame =
    Handler.handle_wire ~app ~metrics
      (Protocol.encode_request (Protocol.Set { key = "x"; value = "y" }))
  in
  (match Protocol.decode_reply frame ~pos:0 with
  | Ok (Protocol.Ok_, _) -> ()
  | _ -> Alcotest.fail "wire set");
  (* garbage in, Err frame out — the connection stays decodable *)
  let err = Handler.handle_wire ~app ~metrics "\x00\x00\x00\x01\x7f" in
  match Protocol.decode_reply err ~pos:0 with
  | Ok (Protocol.Err _, _) -> ()
  | _ -> Alcotest.fail "wire error path"

(* ------------------------------------------------------------------ *)
(* In-process end-to-end determinism *)

let run_inproc ~pool ~variant ~workers =
  match
    Drive.run_inproc ~pool ~app:App.Redis ~variant
      ~workload:Hippo_ycsb.Workload.A ~records:120 ~ops:200 ~workers ~seed:42
      ()
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "run_inproc: %s" e

let deterministic_view (o : Drive.outcome) =
  Fmt.str "%a" Drive.pp_outcome o

let test_inproc_deterministic_across_jobs () =
  let at domains =
    Hippo_parallel.Pool.run ~domains (fun pool ->
        deterministic_view (run_inproc ~pool ~variant:App.Manual ~workers:4))
  in
  let j1 = at 1 and j2 = at 2 and j4 = at 4 in
  Alcotest.(check string) "jobs 1 = jobs 2" j1 j2;
  Alcotest.(check string) "jobs 2 = jobs 4" j2 j4

let test_inproc_manual_repaired_agree () =
  Hippo_parallel.Pool.run ~domains:2 (fun pool ->
      let manual = run_inproc ~pool ~variant:App.Manual ~workers:3 in
      let repaired = run_inproc ~pool ~variant:App.Repaired ~workers:3 in
      Alcotest.(check bool) "verdicts, count and digest agree" true
        (Drive.agrees manual repaired);
      Alcotest.(check bool) "app invariant holds" true
        (manual.Drive.check && repaired.Drive.check);
      Alcotest.(check int) "all records present" manual.Drive.final_records
        manual.Drive.count)

let test_inproc_workload_d_inserts () =
  (* workload D grows the store: final_records, count and the digest
     sweep must all track the inserts *)
  Hippo_parallel.Pool.run ~domains:2 (fun pool ->
      match
        Drive.run_inproc ~pool ~app:App.Redis ~variant:App.Manual
          ~workload:Hippo_ycsb.Workload.D ~records:100 ~ops:200 ~workers:2
          ~seed:7 ()
      with
      | Error e -> Alcotest.failf "workload D: %s" e
      | Ok o ->
          Alcotest.(check bool) "inserts happened" true
            (o.Drive.final_records > o.Drive.records);
          Alcotest.(check int) "count tracks inserts" o.Drive.final_records
            o.Drive.count)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_reply_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncation_rejected;
    ("oversized rejected", `Quick, test_oversized_rejected);
    ("malformed rejected", `Quick, test_malformed_rejected);
    ("streamed frames", `Quick, test_streamed_frames);
    ("app adapter semantics", `Quick, test_app_adapter_semantics);
    ("pclht adapter", `Quick, test_pclht_adapter);
    ("pclht flush-free rejected", `Quick, test_pclht_flush_free_rejected);
    ("handle_wire codec path", `Quick, test_handle_wire_codec_path);
    ("inproc deterministic across jobs", `Quick,
     test_inproc_deterministic_across_jobs);
    ("inproc manual/repaired agree", `Quick,
     test_inproc_manual_repaired_agree);
    ("inproc workload D inserts", `Quick, test_inproc_workload_d_inserts);
  ]
