Repairing the sample append-only log shipped in examples/ir.

The entry-body stores are never flushed (the count is):

  $ hippocrates check pmlog.pmir
  main() returned 0
  PM stores: 16, flushes: 6, fences: 6
  durability bugs: 4
    [missing-flush] store at log.c:10 (log_append#10), 0x40000040+8, unpersisted at log.c:16
    [missing-flush] store at log.c:11 (log_append#12), 0x40000048+8, unpersisted at log.c:16
    [missing-flush] store at log.c:10 (log_append#10), 0x40000040+8, unpersisted at <exit>:0
    [missing-flush] store at log.c:11 (log_append#12), 0x40000048+8, unpersisted at <exit>:0
  [1]

Both take intraprocedural flushes (the stores are PM-only), shown as a patch:

  $ hippocrates fix pmlog.pmir --diff -o pmlog.fixed.pmir
  input:    4 stores, 2 flush sites, 2 fence sites
  repaired: 4 stores, 4 flush sites, 2 fence sites
  target: pmlog.pmir
  bugs: 4
  fixes: 2 (2 intraprocedural, 0 interprocedural)
  reduction eliminated: 2
  IR size: 47 -> 49 (+4.255%)
  verification: residual bugs: 0; outputs match; PM state match
  --- @log_append at log.c:10
      store.i64 %a -> %p
    + flush.clwb %p
  --- @log_append at log.c:11
      store.i64 %b -> %p8
    + flush.clwb %p8

  $ hippocrates check pmlog.fixed.pmir
  main() returned 0
  PM stores: 16, flushes: 16, fences: 6
  durability bugs: 0
