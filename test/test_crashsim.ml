(* The single-pass crash sweep: differential equivalence against the
   per-crash-point replay strategy, image-hash dedup and recovery
   memoization, the trace-free crash-point counter, and the Verify /
   Bugstudy wiring. *)

open Hippo_pmcheck
module Gen = Hippo_fuzz.Gen
module Verify = Hippo_engine.Verify
module Sweep = Hippo_bugstudy.Sweep

(* Small interpreter buffers: these programs touch a few cache lines and
   the suites below create hundreds of recovery machines. *)
let cfg =
  {
    Interp.default_config with
    Interp.vol_size = 1 lsl 12;
    stack_size = 1 lsl 14;
    global_size = 1 lsl 12;
    pm_size = 1 lsl 12;
  }

let setup = [ ("main", []) ]
let checker = Gen.checker_name

let sweep ?strategy ?jobs ?memo prog =
  Crashsim.sweep_with_stats ~config:cfg ?jobs ?strategy ?memo prog ~setup
    ~checker ~checker_args:[]

(* deterministic step programs (see Pmir_gen's checker-mode alphabet) *)
let prog_of steps = Gen.program_of_steps ~checker:true steps

(* ------------------------------------------------------------------ *)
(* differential property: single-pass == replay, at jobs 1 and 4 *)

let prop_strategies_identical =
  QCheck.Test.make ~count:40
    ~name:"single-pass dedup sweep == replay sweep, jobs {1,4}" Gen.arb_crash
    (fun prog ->
      let reference, _ = sweep ~strategy:`Replay ~jobs:1 prog in
      List.for_all
        (fun (strategy, jobs) -> fst (sweep ~strategy ~jobs prog) = reference)
        [ (`Replay, 4); (`Single_pass, 1); (`Single_pass, 4) ])

(* the sweep's stats must account for every crash point: runs + hits
   cover both images of every point *)
let prop_stats_account =
  QCheck.Test.make ~count:40 ~name:"dedup stats account for 2n image checks"
    Gen.arb_crash (fun prog ->
      let _, s = sweep ~strategy:`Single_pass prog in
      s.Crashsim.recovery_runs + s.Crashsim.memo_hits
      = 2 * s.Crashsim.crash_points
      && s.Crashsim.recovery_runs = s.Crashsim.distinct_images
      && s.Crashsim.distinct_images <= 2 * s.Crashsim.crash_points)

(* ------------------------------------------------------------------ *)
(* dedup and memoization units *)

let test_identical_images_memoized () =
  (* one fully-persisted pair, then two crash points: durable == working
     at both, so four image checks need exactly one recovery run *)
  let prog = prog_of [ Gen.S_pair (0, 1); Gen.S_crash; Gen.S_crash ] in
  let verdicts, s = sweep ~strategy:`Single_pass prog in
  Alcotest.(check int) "crash points" 2 (List.length verdicts);
  Alcotest.(check int) "distinct images" 1 s.Crashsim.distinct_images;
  Alcotest.(check int) "recovery runs" 1 s.Crashsim.recovery_runs;
  Alcotest.(check int) "memo hits" 3 s.Crashsim.memo_hits;
  Alcotest.(check bool) "all recover" true
    (List.for_all Crashsim.consistent verdicts)

let test_repeated_durable_images_hit_memo () =
  (* the durable image toggles A, B, A: the third crash point's images
     are already memoized *)
  let prog =
    prog_of
      [
        Gen.S_pair (0, 1); Gen.S_crash; Gen.S_pair (0, 2); Gen.S_crash;
        Gen.S_pair (0, 1); Gen.S_crash;
      ]
  in
  let _, s = sweep ~strategy:`Single_pass prog in
  Alcotest.(check int) "crash points" 3 s.Crashsim.crash_points;
  Alcotest.(check int) "distinct images" 2 s.Crashsim.distinct_images;
  Alcotest.(check int) "recovery runs" 2 s.Crashsim.recovery_runs;
  Alcotest.(check bool) "memo hit" true (s.Crashsim.memo_hits > 0)

let test_memo_reused_across_sweeps () =
  let prog =
    prog_of [ Gen.S_half (0, 1); Gen.S_crash; Gen.S_pair (1, 2); Gen.S_crash ]
  in
  let memo = Crashsim.Memo.create () in
  let v1, s1 = sweep ~strategy:`Single_pass ~memo prog in
  let v2, s2 = sweep ~strategy:`Single_pass ~memo prog in
  Alcotest.(check bool) "verdicts stable" true (v1 = v2);
  Alcotest.(check bool) "first sweep ran recovery" true
    (s1.Crashsim.recovery_runs > 0);
  Alcotest.(check int) "second sweep fully memoized" 0
    s2.Crashsim.recovery_runs;
  Alcotest.(check int) "every image check hit" (2 * s2.Crashsim.crash_points)
    s2.Crashsim.memo_hits;
  Alcotest.(check int) "memo counters accumulate"
    (Crashsim.Memo.misses memo) s1.Crashsim.recovery_runs

let test_half_persisted_pair_diverges () =
  (* slot persisted, shadow not: pessimistic loses the invariant, lucky
     keeps it — the durability-bug demonstration the sweep exists for *)
  let prog = prog_of [ Gen.S_half (0, 1); Gen.S_crash ] in
  match fst (sweep prog) with
  | [ v ] ->
      Alcotest.(check bool) "pessimistic LOST" false v.Crashsim.pessimistic_ok;
      Alcotest.(check bool) "lucky recovers" true v.Crashsim.lucky_ok
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs)

(* ------------------------------------------------------------------ *)
(* trace-free crash-point counting *)

let test_count_crash_points_trace_free () =
  let prog =
    prog_of
      [ Gen.S_crash; Gen.S_pair (0, 1); Gen.S_crash; Gen.S_crash ]
  in
  Alcotest.(check int) "counted" 3
    (Crashsim.count_crash_points ~config:cfg prog ~setup);
  let verdicts, _ = sweep prog in
  Alcotest.(check int) "matches sweep" (List.length verdicts) 3

(* ------------------------------------------------------------------ *)
(* incremental image hashing == ground-truth scan *)

let prop_digests_match_ground_truth =
  QCheck.Test.make ~count:30
    ~name:"incremental digests == Imghash.of_bytes of the images"
    Gen.arb_crash (fun prog ->
      let t =
        Interp.create { cfg with Interp.track_images = true } prog
      in
      ignore (Interp.call t "main" []);
      let mem = Interp.mem t in
      Imghash.equal_digest
        (Mem.working_digest mem)
        (Imghash.digest (Imghash.of_bytes (Mem.working_image mem)))
      && Imghash.equal_digest (Mem.durable_digest mem)
           (Imghash.digest (Imghash.of_bytes (Interp.crash_image t))))

(* ------------------------------------------------------------------ *)
(* recovery-then-re-crash chains and injected torn lines — the restart
   and image-perturbation primitives the scenario simulator drives *)

module R = Hippo_apps.Redis_mini

let test_recovery_then_recrash_chain () =
  let prog = R.build R.Manual in
  let rcfg = { cfg with Interp.pm_size = 1 lsl 13 } in
  let s1 = R.start ~config:rcfg ~nbuckets:4 prog in
  List.iter (fun k -> R.op_insert s1 ~k ~version:1) [ 1; 2; 3 ];
  let crash s =
    (Interp.crash_image s.R.interp, (Interp.mem s.R.interp).Mem.pm_brk)
  in
  let img1, brk1 = crash s1 in
  Alcotest.(check bool) "allocator mark persisted" true (brk1 > 0);
  let s2 =
    R.recover_attach (Interp.create ~pm_image:img1 ~pm_brk:brk1 rcfg prog)
  in
  Alcotest.(check int) "first recovery validates" 1
    (Interp.call s2.R.interp "cmd_check" []);
  Alcotest.(check int) "all inserts durable" 3
    (Interp.call s2.R.interp "cmd_count" []);
  (* the recovered allocator must continue past the live pool *)
  R.op_insert s2 ~k:9 ~version:1;
  Alcotest.(check bool) "pre-crash key survives the new insert" true
    (R.op_read s2 ~k:1 > 0);
  (* re-crash the recovered instance: second restart of the chain *)
  let img2, brk2 = crash s2 in
  let s3 =
    R.recover_attach (Interp.create ~pm_image:img2 ~pm_brk:brk2 rcfg prog)
  in
  Alcotest.(check int) "second recovery validates" 1
    (Interp.call s3.R.interp "cmd_check" []);
  Alcotest.(check int) "chain preserved every key" 4
    (Interp.call s3.R.interp "cmd_count" []);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d readable after two restarts" k)
        true
        (R.op_read s3 ~k > 0))
    [ 1; 2; 3; 9 ];
  (* negative control — the regression this test pins: dropping the
     allocator mark re-issues live addresses, and the next insert
     overwrites the pool from its base *)
  let sbad = R.recover_attach (Interp.create ~pm_image:img2 rcfg prog) in
  let corrupted =
    try
      R.op_insert sbad ~k:10 ~version:1;
      Interp.call sbad.R.interp "cmd_check" [] = 0
    with Mem.Trap _ -> true
  in
  Alcotest.(check bool) "without pm_brk the pool is destroyed" true corrupted

let prop_torn_dirty_digests_match_ground_truth =
  QCheck.Test.make ~count:30
    ~name:"torn dirty lines keep incremental digests == rescan"
    Gen.arb_crash (fun prog ->
      let t = Interp.create { cfg with Interp.track_images = true } prog in
      ignore (Interp.call t "main" []);
      let mem = Interp.mem t and ps = Interp.pstate t in
      List.iteri
        (fun i r ->
          Pstate.tear_dirty mem r ~keep_word:(fun w -> (w + i) land 1 = 0))
        (Pstate.dirty_records ps);
      Imghash.equal_digest (Mem.durable_digest mem)
        (Imghash.digest (Imghash.of_bytes (Interp.crash_image t)))
      && Imghash.equal_digest (Mem.working_digest mem)
           (Imghash.digest (Imghash.of_bytes (Mem.working_image mem))))

(* ------------------------------------------------------------------ *)
(* Verify: crash consistency of original vs repaired, shared memo *)

let test_verify_crash_consistency () =
  let original = prog_of [ Gen.S_half (0, 1); Gen.S_crash ] in
  let repaired = prog_of [ Gen.S_pair (0, 1); Gen.S_crash ] in
  let memo = Crashsim.Memo.create () in
  let r =
    Verify.check_crash_consistency ~config:cfg ~memo ~setup ~checker
      ~checker_args:[] ~original ~repaired ()
  in
  Alcotest.(check bool) "original inconsistent" false r.Verify.original_consistent;
  Alcotest.(check bool) "repaired consistent" true r.Verify.repaired_consistent;
  Alcotest.(check bool) "improved" true (Verify.crash_improved r);
  (* the repaired sweep's working image equals the original's (harm-free
     repair), so the shared memo answers at least one of its checks *)
  Alcotest.(check bool) "memo shared across programs" true
    (r.Verify.repaired_stats.Crashsim.memo_hits
    > 2 * r.Verify.repaired_stats.Crashsim.crash_points
      - r.Verify.repaired_stats.Crashsim.distinct_images);
  let o =
    Verify.with_crash_report
      {
        Verify.residual_bugs = [];
        outputs_match = true;
        pm_working_match = true;
        crash_consistent_improved = None;
      }
      r
  in
  Alcotest.(check (option bool)) "outcome field set" (Some true)
    o.Verify.crash_consistent_improved

(* ------------------------------------------------------------------ *)
(* Bugstudy: corpus of crash subjects, per-domain memos *)

let crash_subjects () =
  List.map
    (fun (id, steps) ->
      {
        Sweep.cs_id = id;
        cs_program = lazy (prog_of steps);
        cs_setup = setup;
        cs_checker = checker;
        cs_checker_args = [];
      })
    [
      ("half", [ Gen.S_half (0, 1); Gen.S_crash ]);
      ("pair", [ Gen.S_pair (0, 1); Gen.S_crash; Gen.S_crash ]);
      ( "toggle",
        [
          Gen.S_pair (1, 1); Gen.S_crash; Gen.S_pair (1, 2); Gen.S_crash;
          Gen.S_pair (1, 1); Gen.S_crash;
        ] );
      ("mixed", [ Gen.S_pair (2, 3); Gen.S_crash; Gen.S_half (2, 4); Gen.S_crash ]);
    ]

let test_crash_corpus_jobs_identical () =
  let strip (s, v, _) = (s.Sweep.cs_id, v) in
  let r1, memo1 = Sweep.crash_corpus ~config:cfg ~jobs:1 (crash_subjects ()) in
  let r4, _ = Sweep.crash_corpus ~config:cfg ~jobs:4 (crash_subjects ()) in
  Alcotest.(check bool) "verdicts identical at jobs 1 and 4" true
    (List.map strip r1 = List.map strip r4);
  Alcotest.(check bool) "aggregate memo saw work" true
    (Crashsim.Memo.misses memo1 > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_strategies_identical;
    QCheck_alcotest.to_alcotest prop_stats_account;
    Alcotest.test_case "identical images memoized" `Quick
      test_identical_images_memoized;
    Alcotest.test_case "repeated durable images hit memo" `Quick
      test_repeated_durable_images_hit_memo;
    Alcotest.test_case "memo reused across sweeps" `Quick
      test_memo_reused_across_sweeps;
    Alcotest.test_case "half-persisted pair diverges" `Quick
      test_half_persisted_pair_diverges;
    Alcotest.test_case "count crash points without a trace" `Quick
      test_count_crash_points_trace_free;
    QCheck_alcotest.to_alcotest prop_digests_match_ground_truth;
    Alcotest.test_case "recovery-then-re-crash chain" `Quick
      test_recovery_then_recrash_chain;
    QCheck_alcotest.to_alcotest prop_torn_dirty_digests_match_ground_truth;
    Alcotest.test_case "verify crash consistency, shared memo" `Quick
      test_verify_crash_consistency;
    Alcotest.test_case "crash corpus identical across jobs" `Quick
      test_crash_corpus_jobs_identical;
  ]
