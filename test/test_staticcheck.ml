(* The static durability analyzer: lattice laws, transfer-function
   semantics on minimal programs, interprocedural witness chains, the
   libpmem models, and the soundness property tying it to the dynamic
   checker — every bug the interpreter's exit check reports on a random
   buggy program is covered by a static report at the same site. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_staticcheck

let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Lattice laws *)

let all_elems = Lattice.[ Bot; Persisted; Flush_pending; Dirty; Top ]

let test_lattice_laws () =
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Fmt.str "join idempotent %s" (Lattice.to_string a))
        true
        (Lattice.equal (Lattice.join a a) a);
      Alcotest.(check bool) "bot is identity" true
        (Lattice.equal (Lattice.join Lattice.Bot a) a);
      Alcotest.(check bool) "top absorbs" true
        (Lattice.equal (Lattice.join Lattice.Top a) Lattice.Top);
      List.iter
        (fun b ->
          Alcotest.(check bool) "join commutative" true
            (Lattice.equal (Lattice.join a b) (Lattice.join b a));
          Alcotest.(check bool) "join is lub" true
            (Lattice.leq a (Lattice.join a b));
          List.iter
            (fun c ->
              Alcotest.(check bool) "join associative" true
                (Lattice.equal
                   (Lattice.join a (Lattice.join b c))
                   (Lattice.join (Lattice.join a b) c)))
            all_elems)
        all_elems)
    all_elems

let test_lattice_undurable () =
  Alcotest.(check (list bool))
    "only pending, dirty and top are undurable"
    [ false; false; true; true; true ]
    (List.map Lattice.undurable all_elems)

(* ------------------------------------------------------------------ *)
(* Transfer semantics, observed through whole-program checks on minimal
   straight-line programs: one store to a PM cache line, followed by the
   given durability suffix. *)

let one_store_prog suffix =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 128 ] in
        store fb ~addr:pm (i 7);
        suffix fb pm;
        ret_void fb)
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

let static_kinds prog =
  let r = Checker.check ~entries:[ "main" ] prog in
  List.sort compare (List.map (fun (b : Report.bug) -> b.Report.kind) r.Checker.bugs)

let test_transfer_bare_store () =
  Alcotest.(check bool) "missing-flush&fence" true
    (static_kinds (one_store_prog (fun _ _ -> ()))
    = [ Report.Missing_flush_fence ])

let test_transfer_flush_no_fence () =
  let p = one_store_prog (fun fb pm -> Builder.flush fb pm) in
  Alcotest.(check bool) "missing-fence" true
    (static_kinds p = [ Report.Missing_fence ]);
  let r = Checker.check ~entries:[ "main" ] p in
  List.iter
    (fun (b : Report.bug) ->
      Alcotest.(check bool) "ordering flush recorded" true
        (b.Report.ordering_flush <> None))
    r.Checker.bugs

let test_transfer_fence_no_flush () =
  Alcotest.(check bool) "missing-flush" true
    (static_kinds (one_store_prog (fun fb _ -> Builder.fence fb ()))
    = [ Report.Missing_flush ])

let test_transfer_flush_fence_clean () =
  Alcotest.(check bool) "clean" true
    (static_kinds
       (one_store_prog (fun fb pm ->
            Builder.flush fb pm;
            Builder.fence fb ()))
    = [])

let test_transfer_clflush_is_durable_alone () =
  Alcotest.(check bool) "clflush needs no fence" true
    (static_kinds
       (one_store_prog (fun fb pm ->
            Builder.flush fb ~kind:Instr.Clflush pm))
    = [])

let test_transfer_wrong_line_does_not_cover () =
  (* flushing line 1 does not discharge a store on line 0 *)
  Alcotest.(check bool) "wrong-line flush ignored" true
    (static_kinds
       (one_store_prog (fun fb pm ->
            Builder.flush fb (Builder.gep fb pm (i 64));
            Builder.fence fb ()))
    = [ Report.Missing_flush ])

(* The libpmem models: the runtime's ranged-flush loop has a zero-trip
   path a path-insensitive fixpoint cannot exclude, so [pmem_flush] /
   [pmem_persist] calls are modelled as single transfers. A correct
   persist caller must be clean. *)
let runtime_prog suffix =
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 128 ] in
        store fb ~addr:pm (i 7);
        suffix fb pm;
        ret_void fb)
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

let test_model_pmem_persist_clean () =
  Alcotest.(check bool) "pmem_persist caller is clean" true
    (static_kinds
       (runtime_prog (fun fb pm ->
            Builder.call_void fb "pmem_persist" [ pm; i 64 ]))
    = [])

let test_model_pmem_flush_needs_drain () =
  Alcotest.(check bool) "pmem_flush alone is missing-fence" true
    (static_kinds
       (runtime_prog (fun fb pm ->
            Builder.call_void fb "pmem_flush" [ pm; i 64 ]))
    = [ Report.Missing_fence ]);
  Alcotest.(check bool) "pmem_flush + pmem_drain is clean" true
    (static_kinds
       (runtime_prog (fun fb pm ->
            Builder.call_void fb "pmem_flush" [ pm; i 64 ];
            Builder.call_void fb "pmem_drain" []))
    = [])

(* ------------------------------------------------------------------ *)
(* Interprocedural: witness chains and summary reuse *)

let helper_prog () =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "h" [ "p" ] ~body:(fun fb ->
        store fb ~addr:(Value.reg "p") (i 1);
        ret_void fb)
  in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 128 ] in
        call_void fb "h" [ pm ];
        call_void fb "h" [ pm ];
        ret_void fb)
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

let test_interproc_witness_chain () =
  let r = Checker.check ~entries:[ "main" ] (helper_prog ()) in
  Alcotest.(check bool) "found bugs" true (r.Checker.bugs <> []);
  List.iter
    (fun (b : Report.bug) ->
      let stack = b.Report.store.Report.stack in
      Alcotest.(check int) "two frames" 2 (List.length stack);
      let inner = List.hd stack in
      Alcotest.(check string) "innermost frame is the helper" "h"
        inner.Trace.func;
      Alcotest.(check bool) "call site attached" true
        (inner.Trace.callsite <> None);
      Alcotest.(check string) "store is in the helper" "h"
        (Iid.func b.Report.store.Report.iid))
    r.Checker.bugs

let test_interproc_summary_reuse () =
  let r = Checker.check ~entries:[ "main" ] (helper_prog ()) in
  Alcotest.(check bool) "second identical call hits the memo" true
    (r.Checker.stats.summary_hits > 0)

let test_distinct_callsites_distinct_bugs () =
  (* same store instruction through two different call sites must yield
     two distinct static bugs (different witness chains): exactly what
     the repair pipeline needs to consider hoisting over *)
  let r = Checker.check ~entries:[ "main" ] (helper_prog ()) in
  Alcotest.(check int) "one bug per call site" 2 (List.length r.Checker.bugs)

(* ------------------------------------------------------------------ *)
(* Soundness against the dynamic checker: on random buggy programs (the
   driver test generator), every bug the interpreter's exit check
   reports is covered by a static report at the same site. The converse
   need not hold — the static analysis may over-approximate. *)

let prop_static_covers_dynamic =
  QCheck.Test.make ~name:"static covers every dynamic exit bug" ~count:60
    Test_driver.arb_buggy
    (fun p ->
      let t = Interp.create Interp.default_config p in
      ignore (Interp.call t "main" []);
      Interp.exit_check t;
      let dynamic = Interp.bugs t in
      let static_ = (Checker.check ~entries:[ "main" ] p).Checker.bugs in
      let c = Adapter.compare_reports ~static_ ~dynamic in
      c.Adapter.missed = [])

let prop_static_repair_dynamically_clean =
  (* repairing from static reports alone leaves nothing for the dynamic
     checker to find (the workload-free pipeline's acceptance bar) *)
  QCheck.Test.make ~name:"static-driven repair is dynamically clean"
    ~count:30 Test_driver.arb_buggy
    (fun p ->
      let r =
        Hippo_core.Driver.repair
          ~detector:Hippo_core.Driver.Static ~static_entries:[ "main" ]
          ~name:"random-static"
          ~workload:(fun t -> ignore (Interp.call t "main" []))
          p
      in
      Hippo_core.Verify.effective r.Hippo_core.Driver.verification
      && Hippo_core.Verify.harm_free r.Hippo_core.Driver.verification)

let suite =
  [
    ("lattice laws", `Quick, test_lattice_laws);
    ("lattice undurable", `Quick, test_lattice_undurable);
    ("bare store", `Quick, test_transfer_bare_store);
    ("flush without fence", `Quick, test_transfer_flush_no_fence);
    ("fence without flush", `Quick, test_transfer_fence_no_flush);
    ("flush + fence clean", `Quick, test_transfer_flush_fence_clean);
    ("clflush durable alone", `Quick, test_transfer_clflush_is_durable_alone);
    ("wrong-line flush ignored", `Quick, test_transfer_wrong_line_does_not_cover);
    ("pmem_persist model", `Quick, test_model_pmem_persist_clean);
    ("pmem_flush model", `Quick, test_model_pmem_flush_needs_drain);
    ("interprocedural witness chain", `Quick, test_interproc_witness_chain);
    ("summary reuse", `Quick, test_interproc_summary_reuse);
    ("distinct call sites, distinct bugs", `Quick,
     test_distinct_callsites_distinct_bugs);
    QCheck_alcotest.to_alcotest prop_static_covers_dynamic;
    QCheck_alcotest.to_alcotest prop_static_repair_dynamically_clean;
  ]
