(* Tests for the performance model: summary statistics and timed
   execution under the latency cost model. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_perfmodel

let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_stddev () =
  let s = Stats.summarize [ 10.0; 12.0; 14.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 12.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 2.0 s.Stats.stddev;
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check bool) "ci positive" true (s.Stats.ci95 > 0.0)

let test_stats_single_sample () =
  let s = Stats.summarize [ 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "no spread" 0.0 s.Stats.stddev

let test_stats_overlap () =
  let near1 = Stats.summarize [ 9.0; 10.0; 11.0 ] in
  let near2 = Stats.summarize [ 10.0; 11.0; 12.0 ] in
  let far = Stats.summarize [ 100.0; 101.0; 102.0 ] in
  Alcotest.(check bool) "close intervals overlap" true (Stats.overlap near1 near2);
  Alcotest.(check bool) "distant intervals do not" false (Stats.overlap near1 far);
  Alcotest.(check bool) "symmetric" true
    (Stats.overlap near2 near1 = Stats.overlap near1 near2)

let test_stats_empty_rejected () =
  match Stats.mean [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* ------------------------------------------------------------------ *)
(* Timed *)

let prog_with ~flushes =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "main" [ "n" ] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 4096 ] in
        for_ fb "k" ~from:(i 0) ~below:(Value.reg "n") ~body:(fun k ->
            let slot = gep fb pm (Builder.mul fb k (i 64)) in
            store fb ~addr:slot k;
            if flushes then flush fb slot);
        fence fb ();
        ret_void fb)
  in
  Builder.program b

let measure prog =
  Timed.measure prog
    ~setup:(fun _ -> ())
    ~drive:(fun t () -> ignore (Interp.call t "main" [ 50 ]))
    ~ops:50

let test_timed_accumulates () =
  let r = measure (prog_with ~flushes:true) in
  Alcotest.(check bool) "time accumulated" true (r.Timed.sim_ns > 0.0);
  Alcotest.(check bool) "steps counted" true (r.Timed.steps > 0);
  Alcotest.(check bool) "throughput positive" true (Timed.throughput_kops r > 0.0)

let test_timed_flushes_cost_more () =
  let without = measure (prog_with ~flushes:false) in
  let with_f = measure (prog_with ~flushes:true) in
  Alcotest.(check bool) "flushing costs time" true
    (with_f.Timed.sim_ns > without.Timed.sim_ns)

let test_timed_setup_not_charged () =
  let prog = prog_with ~flushes:true in
  let r =
    Timed.measure prog
      ~setup:(fun t -> ignore (Interp.call t "main" [ 50 ]))
      ~drive:(fun _ () -> ())
      ~ops:1
  in
  Alcotest.(check (float 1e-9)) "setup excluded" 0.0 r.Timed.sim_ns

let test_timed_trials_summary () =
  let prog = prog_with ~flushes:true in
  let s = Timed.trials 5 (fun _seed -> measure prog) in
  Alcotest.(check int) "five trials" 5 s.Stats.n;
  (* deterministic program: zero variance *)
  Alcotest.(check (float 1e-6)) "deterministic" 0.0 s.Stats.stddev

let test_volatile_flush_penalty () =
  (* flushing volatile lines (the intraprocedural-fix failure mode) must
     dominate flushing nothing *)
  let mk ~vol_flush =
    let b = Builder.create () in
    let open Builder in
    let _ =
      func b "main" [] ~body:(fun fb ->
          let buf = call fb "malloc" [ i 4096 ] in
          for_ fb "k" ~from:(i 0) ~below:(i 50) ~body:(fun k ->
              let slot = gep fb buf (Builder.mul fb k (i 8)) in
              store fb ~addr:slot k;
              if vol_flush then flush fb slot);
          ret_void fb)
    in
    Builder.program b
  in
  let quiet =
    Timed.measure (mk ~vol_flush:false)
      ~setup:(fun _ -> ())
      ~drive:(fun t () -> ignore (Interp.call t "main" []))
      ~ops:1
  in
  let noisy =
    Timed.measure (mk ~vol_flush:true)
      ~setup:(fun _ -> ())
      ~drive:(fun t () -> ignore (Interp.call t "main" []))
      ~ops:1
  in
  Alcotest.(check bool) "DRAM write-backs dominate" true
    (noisy.Timed.sim_ns > 3.0 *. quiet.Timed.sim_ns)

let test_cost_model_variants () =
  let d = Cost.default in
  Alcotest.(check bool) "volatile flush is the expensive waste" true
    (d.Cost.flush_vol_ns > d.Cost.flush_pm_dirty_ns);
  Alcotest.(check bool) "fence-heavy raises fences" true
    (Cost.fence_heavy.Cost.fence_base_ns > d.Cost.fence_base_ns);
  Alcotest.(check bool) "cheap-vol lowers the waste" true
    (Cost.cheap_vol_flush.Cost.flush_vol_ns < d.Cost.flush_vol_ns)

(* ------------------------------------------------------------------ *)
(* Stats.Hist *)

module Hist = Stats.Hist

let test_hist_buckets_sane () =
  (* values below one octave get exact buckets *)
  for v = 0 to 15 do
    Alcotest.(check int) "small value exact" v (Hist.bucket_of v)
  done;
  (* bucket bounds are monotone and every value lands at or below its
     bucket's inclusive bound *)
  let prev = ref (-1.0) in
  for i = 0 to Hist.nbuckets - 1 do
    let b = Hist.bucket_bound i in
    Alcotest.(check bool) "bounds monotone" true (b > !prev);
    prev := b
  done;
  List.iter
    (fun v ->
      let i = Hist.bucket_of v in
      Alcotest.(check bool) "value within bucket bound" true
        (float_of_int v <= Hist.bucket_bound i);
      (* relative error of the bound is at most 1/16 *)
      Alcotest.(check bool) "1/16 relative error" true
        (Hist.bucket_bound i <= float_of_int v *. (1.0 +. 1.0 /. 16.0) +. 1.0))
    [ 0; 1; 15; 16; 17; 31; 32; 63; 100; 1023; 4096; 123_456; 987_654_321 ]

let test_hist_quantiles () =
  let h = Hist.create () in
  for v = 1 to 1000 do
    Hist.record h v
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  (* the p50 estimate brackets the true median within bucket error *)
  let p50 = Hist.p50 h in
  Alcotest.(check bool) "p50 near 500" true (p50 >= 500.0 && p50 <= 540.0);
  let p99 = Hist.p99 h in
  Alcotest.(check bool) "p99 near 990" true (p99 >= 990.0 && p99 <= 1055.0);
  (* quantiles are monotone in q *)
  let qs = [ 0.0; 0.1; 0.5; 0.9; 0.95; 0.99; 0.999; 1.0 ] in
  let vals = List.map (Hist.quantile h) qs in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in q" true (mono vals);
  Alcotest.(check (float 1e-9)) "empty quantile" 0.0 (Hist.p99 (Hist.create ()))

let test_hist_sparse_roundtrip () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 3; 3; 47; 1000; 1_000_000 ];
  let h' = Hist.of_buckets (Hist.buckets h) in
  Alcotest.(check bool) "sparse round-trip" true
    (Hist.buckets h = Hist.buckets h' && Hist.count h = Hist.count h');
  (match Hist.of_buckets [ (Hist.nbuckets, 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range index accepted");
  match Hist.of_buckets [ (0, -1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative count accepted"

let hist_of_list vs =
  let h = Hist.create () in
  List.iter (Hist.record h) vs;
  h

let prop_hist_merge_associative =
  QCheck.Test.make ~name:"hist merge is associative and commutative"
    ~count:100
    QCheck.(triple (list small_nat) (list small_nat) (list small_nat))
    (fun (a, b, c) ->
      let ha = hist_of_list a and hb = hist_of_list b and hc = hist_of_list c in
      let left = Hist.merge (Hist.merge ha hb) hc in
      let right = Hist.merge ha (Hist.merge hb hc) in
      let comm = Hist.merge hb ha in
      Hist.buckets left = Hist.buckets right
      && Hist.count left = Hist.count right
      && Hist.buckets comm = Hist.buckets (Hist.merge ha hb))

let prop_hist_merge_is_concat =
  QCheck.Test.make ~name:"merge equals recording the concatenation"
    ~count:100
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      Hist.buckets (Hist.merge (hist_of_list a) (hist_of_list b))
      = Hist.buckets (hist_of_list (a @ b)))

let suite =
  [
    ("stats mean/stddev", `Quick, test_stats_mean_stddev);
    ("stats single sample", `Quick, test_stats_single_sample);
    ("stats overlap", `Quick, test_stats_overlap);
    ("stats empty rejected", `Quick, test_stats_empty_rejected);
    ("timed accumulates", `Quick, test_timed_accumulates);
    ("timed flush cost", `Quick, test_timed_flushes_cost_more);
    ("timed setup not charged", `Quick, test_timed_setup_not_charged);
    ("timed trials summary", `Quick, test_timed_trials_summary);
    ("volatile flush penalty", `Quick, test_volatile_flush_penalty);
    ("cost model variants", `Quick, test_cost_model_variants);
    ("hist buckets", `Quick, test_hist_buckets_sane);
    ("hist quantiles", `Quick, test_hist_quantiles);
    ("hist sparse round-trip", `Quick, test_hist_sparse_roundtrip);
    QCheck_alcotest.to_alcotest prop_hist_merge_associative;
    QCheck_alcotest.to_alcotest prop_hist_merge_is_concat;
  ]
