lib/alias/oracle.ml: Andersen Fmt Fun Hippo_pmcheck Hippo_pmir Iid Instr Layout List Program Sitestats Value
