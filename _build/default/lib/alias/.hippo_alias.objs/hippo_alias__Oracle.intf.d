lib/alias/oracle.mli: Andersen Hippo_pmcheck Hippo_pmir Iid Program Sitestats
