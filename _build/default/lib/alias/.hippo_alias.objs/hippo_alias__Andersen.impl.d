lib/alias/andersen.ml: Array Fmt Func Hashtbl Hippo_pmcheck Hippo_pmir Iid Instr Int List Option Program Set String Value
