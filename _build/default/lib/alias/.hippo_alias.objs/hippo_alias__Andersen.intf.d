lib/alias/andersen.mli: Format Hippo_pmir Iid Program Set Value
