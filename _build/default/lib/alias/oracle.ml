(** Alias oracles: the two heuristic information sources of §6.1.

    The hoisting heuristic (paper §4.3) needs two judgements:

    - {e site scores} — for a candidate fix location (the PM-modifying
      store itself, or a call site on its stack), the number of persistent
      aliases minus the number of volatile aliases of the location's
      pointer argument(s); [None] encodes the paper's [-inf] for call sites
      with no pointer arguments;
    - {e store PM-ness} — whether a store inside a subprogram being made
      persistent may modify PM (those get flushes in the clone).

    Full-AA answers from the whole-program Andersen analysis; Trace-AA
    answers purely from the dynamic per-site observations in the trace.
    The paper reports both produce identical fixes on all test systems —
    experiment E3 replays that comparison. *)

open Hippo_pmir
open Hippo_pmcheck

type t = {
  name : string;
  store_score : Program.t -> Iid.t -> int option;
      (** score of fixing at the store itself *)
  call_score : Program.t -> Iid.t -> int option;
      (** score of hoisting to this call site *)
  store_may_touch_pm : Program.t -> Iid.t -> bool;
      (** must this store be flushed inside a persistent subprogram? *)
}

let score_of_counts ~pm ~vol = pm - vol

(* ------------------------------------------------------------------ *)

let full_aa (analysis : Andersen.t) : t =
  let instr_of prog iid =
    match Program.find_instr prog iid with
    | Some i -> i
    | None -> invalid_arg (Fmt.str "oracle: unknown instruction %a" Iid.pp iid)
  in
  let value_score prog ~func v =
    if not (Andersen.is_pointer analysis ~func v) then None
    else
      let node =
        match v with
        | Value.Reg r -> Some (Andersen.Var (func, r))
        | _ -> None
      in
      match node with
      | Some n ->
          Some
            (score_of_counts
               ~pm:(Andersen.pm_count analysis n)
               ~vol:(Andersen.vol_count analysis n))
      | None -> (
          (* Globals and immediates: classify directly. *)
          match v with
          | Value.Global _ -> Some (score_of_counts ~pm:0 ~vol:1)
          | Value.Imm n when Layout.is_pm n -> Some 1
          | Value.Imm _ -> Some (-1)
          | _ -> None)
    [@@ocaml.warning "-27"]
  in
  let store_score prog iid =
    let i = instr_of prog iid in
    match Instr.op i with
    | Instr.Store { addr; _ } ->
        value_score prog ~func:(Iid.func iid) addr
    | _ -> None
  in
  let call_score prog iid =
    (* Only PM-relevant pointer arguments are scored: an argument that can
       never reach persistent memory cannot be the path of the buggy store,
       so (as in the paper's Listing 6, where only [addr] is considered) it
       does not penalize the candidate. Call sites with no PM-relevant
       pointer argument score -inf ([None]): making their callee persistent
       cannot cover the bug. *)
    let i = instr_of prog iid in
    match Instr.op i with
    | Instr.Call { args; _ } ->
        let func = Iid.func iid in
        let scores =
          List.filter_map
            (fun v ->
              if Andersen.may_be_pm analysis ~func v then
                value_score prog ~func v
              else None)
            args
        in
        if scores = [] then None else Some (List.fold_left ( + ) 0 scores)
    | _ -> None
  in
  let store_may_touch_pm prog iid =
    let i = instr_of prog iid in
    match Instr.op i with
    | Instr.Store { addr; _ } ->
        Andersen.may_be_pm analysis ~func:(Iid.func iid) addr
    | _ -> false
  in
  { name = "Full-AA"; store_score; call_score; store_may_touch_pm }

let of_program prog = full_aa (Andersen.analyze prog)

(* ------------------------------------------------------------------ *)

let trace_aa (stats : Sitestats.t) : t =
  let obs_score site arg =
    match Sitestats.find stats ~site ~arg with
    | None -> None
    | Some o ->
        Some
          (score_of_counts
             ~pm:(if o.Sitestats.pm > 0 then 1 else 0)
             ~vol:(if o.Sitestats.vol > 0 then 1 else 0))
  in
  let store_score _prog iid = obs_score iid (-1) in
  let call_score prog iid =
    (* Dynamic counterpart of Full-AA's PM-relevance filter: argument
       positions never observed holding a PM pointer are excluded. *)
    let nargs =
      match Program.find_instr prog iid with
      | Some i -> (
          match Instr.op i with
          | Instr.Call { args; _ } -> List.length args
          | _ -> 0)
      | None -> 0
    in
    let pm_relevant k =
      match Sitestats.find stats ~site:iid ~arg:k with
      | Some o when o.Sitestats.pm > 0 -> obs_score iid k
      | _ -> None
    in
    let scores = List.filter_map pm_relevant (List.init nargs Fun.id) in
    if scores = [] then None else Some (List.fold_left ( + ) 0 scores)
  in
  let store_may_touch_pm _prog iid =
    match Sitestats.find stats ~site:iid ~arg:(-1) with
    | Some o -> o.Sitestats.pm > 0
    | None -> false
  in
  { name = "Trace-AA"; store_score; call_score; store_may_touch_pm }
