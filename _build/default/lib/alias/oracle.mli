(** Alias oracles: the two heuristic information sources of §6.1.

    The hoisting heuristic (paper §4.3) needs two judgements:

    - {e site scores}: for a candidate fix location (the PM-modifying
      store itself, or a call site on its stack), persistent aliases minus
      volatile aliases of the location's PM-relevant pointer argument(s);
      [None] encodes the paper's [-inf] for call sites with no such
      argument;
    - {e store PM-ness}: whether a store inside a subprogram being made
      persistent may modify PM (those get flushes in the clone).

    Full-AA answers from the whole-program Andersen analysis; Trace-AA
    purely from the dynamic per-site observations in the trace. The paper
    reports both produce identical fixes on all test systems — experiment
    E3 replays that comparison. *)

open Hippo_pmir
open Hippo_pmcheck

type t = {
  name : string;
  store_score : Program.t -> Iid.t -> int option;
  call_score : Program.t -> Iid.t -> int option;
  store_may_touch_pm : Program.t -> Iid.t -> bool;
}

val score_of_counts : pm:int -> vol:int -> int

(** Build the static oracle from a solved analysis. *)
val full_aa : Andersen.t -> t

(** Analyze the program and build the static oracle. *)
val of_program : Program.t -> t

(** Build the dynamic oracle from a run's site statistics. *)
val trace_aa : Sitestats.t -> t
