(** The Redis case study (§6.3, Fig. 4): build the three persistent
    Redises (H-intra / hand-written Redis-pm / H-full), confirm all are
    pmemcheck-clean, and drive them through YCSB under the latency cost
    model. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

(** The repair workload: exercises every PM-mutating path plus the
    volatile paths that teach the heuristic which helpers are dual-use. *)
val repair_workload : Interp.t -> unit

type variants = {
  h_intra : Program.t;  (** repaired with Phase 3 disabled *)
  manual : Program.t;  (** the hand-written port *)
  h_full : Program.t;  (** full Hippocrates repair *)
  full_result : Driver.result;
  intra_result : Driver.result;
}

val repair_variants : unit -> variants

(** Bugs pmcheck reports on the program under the repair workload. *)
val residual_bugs : Program.t -> Report.bug list

(** One timed trial of one workload against one program variant. *)
val trial :
  ?cost:Cost.t ->
  Program.t ->
  Hippo_ycsb.Workload.spec ->
  seed:int ->
  Hippo_perfmodel.Timed.run

type row = {
  workload : Hippo_ycsb.Workload.kind;
  intra : Hippo_perfmodel.Stats.summary;
  manual_pm : Hippo_perfmodel.Stats.summary;
  full : Hippo_perfmodel.Stats.summary;
}

(** The full Fig. 4 sweep; throughputs in simulated kops/s. *)
val figure4 :
  ?trials:int -> ?record_count:int -> ?op_count:int -> variants -> row list

val pp_row : Format.formatter -> row -> unit
