lib/apps/redis_mini.ml: Builder Hippo_pmcheck Hippo_pmdk_mini Hippo_pmir Hippo_ycsb Interp Mem Program String Validate Value
