lib/apps/memcached_mini.mli: Hippo_pmcheck Hippo_pmdk_mini Hippo_pmir Interp Program
