lib/apps/pclht.ml: Builder Hippo_pmcheck Hippo_pmdk_mini Hippo_pmir Interp Program Report Validate Value
