lib/apps/memcached_mini.ml: Builder Char Hippo_pmcheck Hippo_pmdk_mini Hippo_pmir Interp Mem Printf Program Report String Validate Value
