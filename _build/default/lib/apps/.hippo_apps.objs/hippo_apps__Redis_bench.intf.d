lib/apps/redis_bench.mli: Cost Driver Format Hippo_core Hippo_perfmodel Hippo_pmcheck Hippo_pmir Hippo_ycsb Interp Program Report
