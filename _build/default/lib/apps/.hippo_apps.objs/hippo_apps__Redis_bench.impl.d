lib/apps/redis_bench.ml: Cost Driver Fmt Hippo_core Hippo_perfmodel Hippo_pmcheck Hippo_pmir Hippo_ycsb Interp List Program Redis_mini Stats
