lib/apps/redis_mini.mli: Hippo_pmcheck Hippo_pmir Hippo_ycsb Interp Program
