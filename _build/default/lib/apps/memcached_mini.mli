(** memcached_mini: a PM-backed slab cache after Lenovo's memcached-pm,
    the third subject of §6.1, with the paper's population of 10
    previously-undocumented durability bugs injected in the SET path (key
    and value copies through the shared [memcpy], length fields, hash and
    LRU linkage, the item count and the sets statistic), while DELETE,
    TOUCH and the flags/cas/exptime updates follow the correct
    [pmem_persist] discipline.

    IR commands (over wire-buffer globals): [cmd_set], [cmd_get],
    [cmd_del], [cmd_touch exptime], [cmd_count], [mc_recover_check]. *)

open Hippo_pmir
open Hippo_pmcheck

val build : unit -> Program.t

type session = {
  interp : Interp.t;
  key_buf : int;
  val_buf : int;
  g_klen : int;
  g_vlen : int;
  g_flags : int;
}

val attach : ?nbuckets:int -> Interp.t -> session
val set_key : session -> string -> unit
val op_set : session -> key:string -> value:string -> flags:int -> unit

(** Returns the value length or -1. *)
val op_get : session -> key:string -> int

val op_del : session -> key:string -> int

(** The repair/bug-finding workload: sets (fresh and replacing), gets,
    touches and deletes, ending with a burst of sets. *)
val workload : Interp.t -> unit

(** The ten injected omissions as corpus ground truth (all share the
    program). *)
val cases : Hippo_pmdk_mini.Case.t list
