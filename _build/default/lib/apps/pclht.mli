(** P-CLHT: a persistent cache-line hash table after RECIPE's P-CLHT
    (Lee et al., SOSP'19), the research-prototype subject of §6.1.

    Each bucket is one cache line (three key/value slot pairs + an
    overflow link); the persistence discipline is line-granular
    flush+fence with explicit durability points ([crash]) at operation
    boundaries. Two previously-undocumented bugs are injected, matching
    the paper's findings: a missing flush on the value-update path and a
    missing fence on the overflow-link path.

    IR functions: [clht_init nbuckets], [clht_put key value] (1 = insert,
    2 = update), [clht_get key], [clht_del key], [clht_check],
    [clht_recover_check] (rebinds the root from [pm_base] after a crash,
    then checks). Keys and values are nonzero machine words. *)

open Hippo_pmir
open Hippo_pmcheck

val build : unit -> Program.t

(** The example workload from RECIPE's evaluation: insertion, update,
    lookup and deletion traffic, with chains forced through overflow. *)
val workload : Interp.t -> unit

(** Injected-bug ground truth for the corpus harness (both cases share the
    program). *)
val cases : Hippo_pmdk_mini.Case.t list
