(** Mean and 95% confidence intervals over benchmark trials, as plotted in
    Fig. 4's error bars. Small samples use Student-t critical values. *)

type summary = { n : int; mean : float; stddev : float; ci95 : float }

(** Raises [Invalid_argument] on an empty sample. *)
val mean : float list -> float

(** Sample standard deviation (Bessel-corrected); 0 for n < 2. *)
val stddev : float list -> float

val summarize : float list -> summary

(** Renders as ["mean ±ci"]. *)
val pp_summary : Format.formatter -> summary -> unit

(** Do two 95% confidence intervals overlap? (the paper's "equal
    performance within the 95% confidence intervals") *)
val overlap : summary -> summary -> bool
