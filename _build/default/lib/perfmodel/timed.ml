(** Timed execution: run a host driver against a program under the latency
    cost model and report simulated throughput. *)

open Hippo_pmcheck

type run = {
  ops : int;
  sim_ns : float;  (** simulated nanoseconds accumulated by the cost model *)
  steps : int;  (** interpreted instructions *)
}

let throughput_kops r =
  if r.sim_ns <= 0.0 then 0.0 else float_of_int r.ops /. r.sim_ns *. 1e6

(** [measure ?cost prog ~setup ~drive ~ops] creates an untraced interpreter
    with the cost model, runs [setup] (not timed — it may build driver
    state such as scratch buffers and return it), then [drive] (timed);
    [ops] is the operation count [drive] performs. *)
let measure ?(cost = Cost.default) ?(config = Interp.default_config) prog
    ~(setup : Interp.t -> 'a) ~(drive : Interp.t -> 'a -> unit) ~ops : run =
  let cfg = { config with Interp.trace = false; cost = Some cost } in
  let t = Interp.create cfg prog in
  let state = setup t in
  let before = Interp.cost_ns t in
  let steps_before = Interp.steps t in
  drive t state;
  {
    ops;
    sim_ns = Interp.cost_ns t -. before;
    steps = Interp.steps t - steps_before;
  }

(** [trials n f] runs [f seed] for seeds 1..n and summarizes the
    throughputs. *)
let trials n (f : int -> run) : Stats.summary =
  Stats.summarize (List.init n (fun k -> throughput_kops (f (k + 1))))
