(** Mean and 95% confidence intervals over benchmark trials, as plotted in
    Fig. 4's error bars. *)

type summary = { n : int; mean : float; stddev : float; ci95 : float }

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let n = List.length xs in
  if n < 2 then 0.0
  else
    sqrt
      (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (n - 1))

(* Two-sided t critical values at 95% for small samples; 1.96 beyond. *)
let t_crit n =
  let table =
    [| 12.71; 4.30; 3.18; 2.78; 2.57; 2.45; 2.36; 2.31; 2.26; 2.23;
       2.20; 2.18; 2.16; 2.14; 2.13; 2.12; 2.11; 2.10; 2.09; 2.09 |]
  in
  let df = n - 1 in
  if df <= 0 then 0.0 else if df <= 20 then table.(df - 1) else 1.96

let summarize xs =
  let n = List.length xs in
  let m = mean xs in
  let s = stddev xs in
  { n; mean = m; stddev = s; ci95 = t_crit n *. s /. sqrt (float_of_int n) }

let pp_summary ppf s = Fmt.pf ppf "%.0f ±%.0f" s.mean s.ci95

(** Do two confidence intervals overlap? (the paper's "equal performance
    within the 95% confidence intervals") *)
let overlap a b =
  a.mean -. a.ci95 <= b.mean +. b.ci95 && b.mean -. b.ci95 <= a.mean +. a.ci95
