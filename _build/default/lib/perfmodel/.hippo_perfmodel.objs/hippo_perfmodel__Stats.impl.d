lib/perfmodel/stats.ml: Array Fmt List
