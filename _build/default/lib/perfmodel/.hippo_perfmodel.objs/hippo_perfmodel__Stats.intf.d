lib/perfmodel/stats.mli: Format
