lib/perfmodel/timed.mli: Cost Hippo_pmcheck Hippo_pmir Interp Stats
