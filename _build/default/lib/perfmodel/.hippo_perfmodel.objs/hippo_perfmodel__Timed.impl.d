lib/perfmodel/timed.ml: Cost Hippo_pmcheck Interp List Stats
