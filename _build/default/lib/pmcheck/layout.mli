(** The simulated address space.

    Four disjoint regions, distinguishable by the top nibble of an
    address, so classifying a pointer as persistent or volatile is a
    shift — the same cheap test pmemcheck performs against the mmap'd pool
    range. *)

val cache_line : int
(** 64 bytes: the flush granule. *)

val vol_base : int
val stack_base : int
val global_base : int
val pm_base : int

type region = Null_page | Vol_heap | Stack | Globals | Pm | Wild

val region_of_addr : int -> region

(** Is the address inside persistent memory? *)
val is_pm : int -> bool

(** A volatile pointer: a valid address outside persistent memory. Used to
    classify call arguments for the Trace-AA heuristic — integers that are
    not addresses at all fall in neither class. *)
val is_volatile_ptr : int -> bool

val line_of_addr : int -> int
val line_base : int -> int
