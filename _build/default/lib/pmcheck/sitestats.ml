(** Aggregated per-site pointer-class observations.

    For each store instruction (key index [-1] = the address operand) and
    each call-site argument position, how many dynamic executions saw a
    persistent pointer and how many saw a volatile pointer. This is the
    dynamic counterpart of the static alias counts: the Trace-AA heuristic
    variant (paper §6.1) scores fix candidates from these counters alone,
    with no static analysis. *)

open Hippo_pmir

type obs = { mutable pm : int; mutable vol : int }

type key = { site : Iid.t; arg : int }

module KTbl = Hashtbl.Make (struct
  type t = key

  let equal a b = a.arg = b.arg && Iid.equal a.site b.site
  let hash k = Hashtbl.hash (Iid.hash k.site, k.arg)
end)

type t = obs KTbl.t

let create () : t = KTbl.create 256

let observe (t : t) ~site ~arg (cls : Trace.arg_class) =
  match cls with
  | Trace.Not_ptr -> ()
  | _ ->
      let key = { site; arg } in
      let o =
        match KTbl.find_opt t key with
        | Some o -> o
        | None ->
            let o = { pm = 0; vol = 0 } in
            KTbl.add t key o;
            o
      in
      (match cls with
      | Trace.Pm_ptr -> o.pm <- o.pm + 1
      | Trace.Vol_ptr -> o.vol <- o.vol + 1
      | Trace.Not_ptr -> ())

let find (t : t) ~site ~arg = KTbl.find_opt t { site; arg }

let fold f (t : t) acc = KTbl.fold (fun k o acc -> f k o acc) t acc

(* Serialization: "STAT;<iid>;<arg>;<pm>;<vol>" lines appended after the
   event log in a trace file. *)

let to_lines (t : t) =
  fold
    (fun k o acc ->
      Fmt.str "STAT;%a;%d;%d;%d" Iid.pp k.site k.arg o.pm o.vol :: acc)
    t []
  |> List.sort String.compare

let of_lines lines : t =
  let t = create () in
  List.iter
    (fun line ->
      match String.split_on_char ';' line with
      | [ "STAT"; iid; arg; pm; vol ] ->
          KTbl.replace t
            { site = Trace.parse_iid iid; arg = Trace.parse_int arg }
            { pm = Trace.parse_int pm; vol = Trace.parse_int vol }
      | _ -> Trace.bad "unparseable stat line %S" line)
    lines;
  t
