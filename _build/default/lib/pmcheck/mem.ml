(** Byte-addressable simulated memory.

    The working PM image is what loads observe; the persisted image is what
    survives a crash. Stores touch only the working image; the persistency
    state machine ({!Pstate}) copies ranges into the persisted image when
    they become durable (flush + fence, or [clflush]). *)

exception Trap of string

let trap fmt = Fmt.kstr (fun m -> raise (Trap m)) fmt

type t = {
  vol : Bytes.t;
  stack : Bytes.t;
  globals : Bytes.t;
  pm : Bytes.t;  (** working image: CPU-cache view of PM *)
  pm_persisted : Bytes.t;  (** durable image: what a crash preserves *)
  mutable vol_brk : int;
  mutable stack_brk : int;
  mutable pm_brk : int;
  global_addrs : (string * int) list;
}

let align8 n = (n + 7) land lnot 7

let create ?(vol_size = 1 lsl 24) ?(stack_size = 1 lsl 22)
    ?(global_size = 1 lsl 20) ?(pm_size = 1 lsl 24) ?pm_image
    (globals : (string * int) list) =
  let pm =
    match pm_image with
    | Some img ->
        if Bytes.length img <> pm_size then
          invalid_arg "Mem.create: pm_image size mismatch";
        Bytes.copy img
    | None -> Bytes.make pm_size '\000'
  in
  let global_addrs, _ =
    List.fold_left
      (fun (acc, off) (name, size) ->
        if off + size > global_size then trap "global segment overflow";
        ((name, Layout.global_base + off) :: acc, off + align8 size))
      ([], 0) globals
  in
  {
    vol = Bytes.make vol_size '\000';
    stack = Bytes.make stack_size '\000';
    globals = Bytes.make global_size '\000';
    pm;
    pm_persisted = Bytes.copy pm;
    vol_brk = 0;
    stack_brk = 0;
    pm_brk = 0;
    global_addrs;
  }

let global_addr t name =
  match List.assoc_opt name t.global_addrs with
  | Some a -> a
  | None -> trap "unknown global @%s" name

(* Region resolution: returns the backing buffer and the offset within it. *)
let resolve t addr size =
  let check buf base =
    let off = addr - base in
    if off < 0 || off + size > Bytes.length buf then
      trap "out-of-bounds access at 0x%x (size %d)" addr size;
    (buf, off)
  in
  match Layout.region_of_addr addr with
  | Layout.Vol_heap -> check t.vol Layout.vol_base
  | Layout.Stack -> check t.stack Layout.stack_base
  | Layout.Globals -> check t.globals Layout.global_base
  | Layout.Pm -> check t.pm Layout.pm_base
  | Layout.Null_page -> trap "null-page access at 0x%x" addr
  | Layout.Wild -> trap "wild access at 0x%x" addr

let load t ~addr ~size =
  let buf, off = resolve t addr size in
  match size with
  | 1 -> Bytes.get_uint8 buf off
  | 2 -> Bytes.get_uint16_le buf off
  | 4 -> Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le buf off)
  | _ -> trap "bad load size %d" size

let store t ~addr ~size v =
  let buf, off = resolve t addr size in
  match size with
  | 1 -> Bytes.set_uint8 buf off (v land 0xFF)
  | 2 -> Bytes.set_uint16_le buf off (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le buf off (Int32.of_int v)
  | 8 ->
      (* PMIR is a 63-bit machine (OCaml ints). Mask the sign extension so
         byte 7 of a stored word round-trips through byte-wise loads. *)
      Bytes.set_int64_le buf off
        (Int64.logand (Int64.of_int v) 0x7FFF_FFFF_FFFF_FFFFL)
  | _ -> trap "bad store size %d" size

(** [persist_range t ~addr ~size] copies working PM content into the
    persisted image (called by {!Pstate} when a range becomes durable). *)
let persist_range t ~addr ~size =
  let off = addr - Layout.pm_base in
  if off < 0 || off + size > Bytes.length t.pm then
    trap "persist_range outside PM at 0x%x" addr;
  Bytes.blit t.pm off t.pm_persisted off size

(** Snapshot of the durable image: the post-crash PM contents. *)
let crash_image t = Bytes.copy t.pm_persisted

(** Snapshot of the working image (i.e. assuming everything reached PM). *)
let working_image t = Bytes.copy t.pm

(* Allocators ------------------------------------------------------------- *)

let alloc_vol t size =
  let size = align8 (max size 1) in
  if t.vol_brk + size > Bytes.length t.vol then trap "volatile heap exhausted";
  let addr = Layout.vol_base + t.vol_brk in
  t.vol_brk <- t.vol_brk + size;
  addr

(** PM allocations are cache-line aligned, as PMDK's allocator guarantees;
    this keeps distinct objects from sharing flush granules. *)
let alloc_pm t size =
  let size = (max size 1 + 63) land lnot 63 in
  if t.pm_brk + size > Bytes.length t.pm then trap "persistent heap exhausted";
  let addr = Layout.pm_base + t.pm_brk in
  t.pm_brk <- t.pm_brk + size;
  addr

let stack_mark t = t.stack_brk

let stack_release t mark = t.stack_brk <- mark

let alloc_stack t size =
  let size = align8 (max size 1) in
  if t.stack_brk + size > Bytes.length t.stack then trap "stack overflow";
  let addr = Layout.stack_base + t.stack_brk in
  t.stack_brk <- t.stack_brk + size;
  addr

(* Host-side convenience accessors ---------------------------------------- *)

let write_string t ~addr s =
  String.iteri (fun i c -> store t ~addr:(addr + i) ~size:1 (Char.code c)) s

let read_string t ~addr ~len =
  String.init len (fun i -> Char.chr (load t ~addr:(addr + i) ~size:1 land 0xFF))
