lib/pmcheck/pmtest_format.ml: Fmt Hippo_pmir Iid Instr List Loc Report String Trace
