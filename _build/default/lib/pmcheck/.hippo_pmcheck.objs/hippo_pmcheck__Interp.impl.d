lib/pmcheck/interp.ml: Array Cost Fun Func Hashtbl Hippo_pmir Iid Instr Layout List Loc Mem Option Program Pstate Report Sitestats Trace Value
