lib/pmcheck/cost.ml:
