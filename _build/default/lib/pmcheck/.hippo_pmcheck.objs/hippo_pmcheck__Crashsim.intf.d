lib/pmcheck/crashsim.mli: Hippo_pmir Interp
