lib/pmcheck/mem.mli: Bytes Format
