lib/pmcheck/pstate.ml: Bytes Hashtbl Hippo_pmir Iid Instr Int Layout List Loc Mem Report String Trace
