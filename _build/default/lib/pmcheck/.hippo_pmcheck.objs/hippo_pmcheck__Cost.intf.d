lib/pmcheck/cost.mli:
