lib/pmcheck/report.mli: Format Hippo_pmir Iid Loc Trace
