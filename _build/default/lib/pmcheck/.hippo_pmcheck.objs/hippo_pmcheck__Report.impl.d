lib/pmcheck/report.ml: Fmt Hippo_pmir Iid List Loc Option String Trace
