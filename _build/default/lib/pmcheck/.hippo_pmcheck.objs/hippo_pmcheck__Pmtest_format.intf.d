lib/pmcheck/pmtest_format.mli: Report Trace
