lib/pmcheck/layout.mli:
