lib/pmcheck/layout.ml:
