lib/pmcheck/sitestats.mli: Hippo_pmir Iid Trace
