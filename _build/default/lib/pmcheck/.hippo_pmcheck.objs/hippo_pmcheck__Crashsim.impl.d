lib/pmcheck/crashsim.ml: Fmt Interp List Mem Trace
