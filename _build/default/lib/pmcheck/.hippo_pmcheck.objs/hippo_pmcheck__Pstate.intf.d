lib/pmcheck/pstate.mli: Hashtbl Hippo_pmir Iid Instr Loc Mem Report Trace
