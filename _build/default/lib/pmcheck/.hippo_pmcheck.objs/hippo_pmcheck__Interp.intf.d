lib/pmcheck/interp.mli: Bytes Cost Hippo_pmir Mem Program Pstate Report Sitestats Trace
