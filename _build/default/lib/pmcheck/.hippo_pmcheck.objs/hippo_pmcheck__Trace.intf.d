lib/pmcheck/trace.mli: Format Hippo_pmir Iid Instr Loc
