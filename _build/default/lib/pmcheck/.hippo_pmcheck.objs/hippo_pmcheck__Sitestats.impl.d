lib/pmcheck/sitestats.ml: Fmt Hashtbl Hippo_pmir Iid List String Trace
