lib/pmcheck/mem.ml: Bytes Char Fmt Int32 Int64 Layout List String
