lib/pmcheck/trace.ml: Fmt Hippo_pmir Iid Instr List Loc String
