(** A second on-disk trace dialect, in PMTest's assertion-log style.

    The paper (§5.1) notes Hippocrates "currently supports pmemcheck and
    PMTest" and that porting further bug finders is easy because the
    required contract is small: per-event operation type, binary location
    and call stack. This module demonstrates that porting surface: the
    same events and reports as the native (pmemcheck-style) format of
    {!Trace}/{!Report}, rendered in a key=value assertion-log dialect.

    PMTest-style traces do not carry the per-site pointer statistics the
    Trace-AA heuristic needs (PMTest logs PM operations only), so repairs
    driven from this format use the Full-AA oracle — matching how the
    original consumed PMTest input. *)

open Hippo_pmir

let kv key value = key ^ "=" ^ value

let render_stack (s : Trace.stack) =
  kv "stack" (Trace.stack_to_string s)

let event_to_line (ev : Trace.event) =
  match ev with
  | Trace.Store { iid; loc; stack; addr; size; nontemporal; seq } ->
      String.concat " "
        ([
           "[PMTest] STORE";
           kv "seq" (string_of_int seq);
           kv "addr" (Fmt.str "0x%x" addr);
           kv "size" (string_of_int size);
           kv "nt" (string_of_bool nontemporal);
           kv "id" (Iid.to_string iid);
           kv "at" (Loc.to_string loc);
         ]
        @ [ render_stack stack ])
  | Trace.Flush { iid; loc; stack; kind; line_addr; seq } ->
      String.concat " "
        [
          "[PMTest] FLUSH";
          kv "seq" (string_of_int seq);
          kv "kind" (Instr.flush_kind_to_string kind);
          kv "line" (Fmt.str "0x%x" line_addr);
          kv "id" (Iid.to_string iid);
          kv "at" (Loc.to_string loc);
          render_stack stack;
        ]
  | Trace.Fence { iid; loc; stack; kind; seq } ->
      String.concat " "
        [
          "[PMTest] FENCE";
          kv "seq" (string_of_int seq);
          kv "kind" (Instr.fence_kind_to_string kind);
          kv "id" (Iid.to_string iid);
          kv "at" (Loc.to_string loc);
          render_stack stack;
        ]
  | Trace.Call { iid; loc; stack; callee; arg_classes; seq } ->
      String.concat " "
        [
          "[PMTest] CALL";
          kv "seq" (string_of_int seq);
          kv "fn" callee;
          kv "args"
            (String.concat ","
               (List.map Trace.arg_class_to_string arg_classes));
          kv "id" (Iid.to_string iid);
          kv "at" (Loc.to_string loc);
          render_stack stack;
        ]
  | Trace.Crash_point { iid; loc; stack; seq } ->
      String.concat " "
        [
          "[PMTest] CHECKPOINT";
          kv "seq" (string_of_int seq);
          kv "id"
            (match iid with Some i -> Iid.to_string i | None -> "exit");
          kv "at" (Loc.to_string loc);
          render_stack stack;
        ]

let bug_to_line (b : Report.bug) =
  String.concat " "
    [
      "[PMTest] ASSERT-FAIL";
      kv "type" (Report.kind_to_string b.Report.kind);
      kv "store" (Iid.to_string b.Report.store.iid);
      kv "at" (Loc.to_string b.Report.store.loc);
      kv "addr" (Fmt.str "0x%x" b.Report.store.addr);
      kv "size" (string_of_int b.Report.store.size);
      kv "stack" (Trace.stack_to_string b.Report.store.stack);
      kv "crash"
        (match b.Report.crash.crash_iid with
        | Some i -> Iid.to_string i
        | None -> "exit");
      kv "crashat" (Loc.to_string b.Report.crash.crash_loc);
      kv "crashstack" (Trace.stack_to_string b.Report.crash.crash_stack);
      kv "flush"
        (match b.Report.ordering_flush with
        | Some i -> Iid.to_string i
        | None -> "-");
    ]

let to_string ~(events : Trace.event list) ~(bugs : Report.bug list) =
  String.concat "\n"
    (List.map event_to_line events @ List.map bug_to_line bugs)

(* Parsing ---------------------------------------------------------------- *)

let fields_of_line line =
  (* "[PMTest] VERB k=v k=v ..." — values contain no spaces by
     construction (stacks use '<' and ';') *)
  match String.split_on_char ' ' line with
  | "[PMTest]" :: verb :: rest ->
      let kvs =
        List.filter_map
          (fun tok ->
            match String.index_opt tok '=' with
            | Some k ->
                Some
                  ( String.sub tok 0 k,
                    String.sub tok (k + 1) (String.length tok - k - 1) )
            | None -> None)
          rest
      in
      (verb, kvs)
  | _ -> Trace.bad "not a PMTest line: %S" line

let field kvs name =
  match List.assoc_opt name kvs with
  | Some v -> v
  | None -> Trace.bad "PMTest line missing %S" name

let opt_stack kvs name =
  match List.assoc_opt name kvs with
  | Some s -> Trace.parse_stack s
  | None -> []

let event_of_line line : Trace.event =
  let verb, kvs = fields_of_line line in
  let seq = Trace.parse_int (field kvs "seq") in
  let stack = opt_stack kvs "stack" in
  match verb with
  | "STORE" ->
      Trace.Store
        {
          iid = Trace.parse_iid (field kvs "id");
          loc = Trace.parse_loc (field kvs "at");
          stack;
          addr = Trace.parse_int (field kvs "addr");
          size = Trace.parse_int (field kvs "size");
          nontemporal = Trace.parse_bool (field kvs "nt");
          seq;
        }
  | "FLUSH" ->
      let kind =
        match Instr.flush_kind_of_string (field kvs "kind") with
        | Some k -> k
        | None -> Trace.bad "bad flush kind"
      in
      Trace.Flush
        {
          iid = Trace.parse_iid (field kvs "id");
          loc = Trace.parse_loc (field kvs "at");
          stack;
          kind;
          line_addr = Trace.parse_int (field kvs "line");
          seq;
        }
  | "FENCE" ->
      let kind =
        match Instr.fence_kind_of_string (field kvs "kind") with
        | Some k -> k
        | None -> Trace.bad "bad fence kind"
      in
      Trace.Fence
        {
          iid = Trace.parse_iid (field kvs "id");
          loc = Trace.parse_loc (field kvs "at");
          stack;
          kind;
          seq;
        }
  | "CALL" ->
      let arg_classes =
        match field kvs "args" with
        | "" -> []
        | s ->
            List.map
              (fun c ->
                match Trace.arg_class_of_string c with
                | Some c -> c
                | None -> Trace.bad "bad arg class")
              (String.split_on_char ',' s)
      in
      Trace.Call
        {
          iid = Trace.parse_iid (field kvs "id");
          loc = Trace.parse_loc (field kvs "at");
          stack;
          callee = field kvs "fn";
          arg_classes;
          seq;
        }
  | "CHECKPOINT" ->
      Trace.Crash_point
        {
          iid =
            (match field kvs "id" with
            | "exit" -> None
            | s -> Some (Trace.parse_iid s));
          loc = Trace.parse_loc (field kvs "at");
          stack;
          seq;
        }
  | v -> Trace.bad "unknown PMTest verb %S" v

let bug_of_line line : Report.bug =
  let verb, kvs = fields_of_line line in
  if verb <> "ASSERT-FAIL" then Trace.bad "not a PMTest assertion: %S" line;
  let kind =
    match Report.kind_of_string (field kvs "type") with
    | Some k -> k
    | None -> Trace.bad "bad bug type"
  in
  {
    Report.kind;
    store =
      {
        iid = Trace.parse_iid (field kvs "store");
        loc = Trace.parse_loc (field kvs "at");
        stack = opt_stack kvs "stack";
        addr = Trace.parse_int (field kvs "addr");
        size = Trace.parse_int (field kvs "size");
      };
    crash =
      {
        crash_iid =
          (match field kvs "crash" with
          | "exit" -> None
          | s -> Some (Trace.parse_iid s));
        crash_loc = Trace.parse_loc (field kvs "crashat");
        crash_stack = opt_stack kvs "crashstack";
      };
    ordering_flush =
      (match field kvs "flush" with
      | "-" -> None
      | s -> Some (Trace.parse_iid s));
  }

let is_bug_line line =
  match fields_of_line line with
  | "ASSERT-FAIL", _ -> true
  | _ -> false

(** Parse a whole PMTest-format trace into events and bug reports. *)
let of_string s : Trace.event list * Report.bug list =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  let bug_lines, event_lines = List.partition is_bug_line lines in
  (List.map event_of_line event_lines, List.map bug_of_line bug_lines)
