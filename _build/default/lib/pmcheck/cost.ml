(** Latency cost model for timed execution.

    Constants (nanoseconds) follow published Optane DC measurements
    (Izraelevitz et al., arXiv:1903.05714, cited by the paper) — the
    absolute values matter less than the ratios: persistence primitives are
    one to two orders of magnitude more expensive than cached operations,
    which is precisely why the intraprocedural-vs-interprocedural fix
    placement tradeoff of §3.2 exists.

    Flushes are charged at issue; the write-back itself is overlapped into
    the write-pending queue and paid when a fence drains it, per distinct
    cache line (this is how clwb behaves: issuing several clwb to one line
    before the fence costs extra issues, not extra write-backs). A flush
    that targets volatile memory forces a DRAM write-back of a dirty line —
    the dominant waste of naive intraprocedural fixes in dual-use helpers
    like [memcpy] (§3.2, §6.3). *)

type t = {
  op_ns : float;  (** plain ALU / branch instruction *)
  load_dram_ns : float;
  store_dram_ns : float;
  load_pm_ns : float;  (** Optane read latency (cache-missing) *)
  store_pm_ns : float;  (** store into cache, destined for PM *)
  flush_pm_dirty_ns : float;  (** clwb issue on a line with dirty PM data *)
  flush_pm_clean_ns : float;  (** clwb issue on an already-clean PM line *)
  flush_vol_ns : float;  (** clwb on volatile memory: DRAM write-back *)
  fence_base_ns : float;  (** sfence with an empty write-pending queue *)
  fence_drain_line_ns : float;
      (** per distinct pending cache line drained by the fence *)
  call_ns : float;
}

let default =
  {
    op_ns = 0.4;
    load_dram_ns = 1.0;
    store_dram_ns = 1.0;
    load_pm_ns = 3.0;
    store_pm_ns = 1.5;
    flush_pm_dirty_ns = 20.0;
    flush_pm_clean_ns = 12.0;
    flush_vol_ns = 100.0;
    fence_base_ns = 25.0;
    fence_drain_line_ns = 80.0;
    call_ns = 2.0;
  }

(** Variant with pricier fences, used by the ablation benches to check the
    conclusions are robust to the constants. *)
let fence_heavy =
  { default with fence_base_ns = 100.0; fence_drain_line_ns = 160.0 }

(** Variant with free volatile flushes: isolates how much of the
    intraprocedural penalty is DRAM write-backs vs extra fencing. *)
let cheap_vol_flush = { default with flush_vol_ns = 4.0 }
