(** A second on-disk trace dialect, in PMTest's assertion-log style
    (key=value records). Demonstrates the small porting surface the paper
    describes (§5.1): the same events and bug reports as the native
    pmemcheck-style format, in a different syntax.

    PMTest-style traces carry no per-site pointer statistics, so repairs
    driven from this format use the Full-AA oracle. *)


val event_to_line : Trace.event -> string
val bug_to_line : Report.bug -> string

(** Serialize a full trace: events, then assertion failures. *)
val to_string : events:Trace.event list -> bugs:Report.bug list -> string

val event_of_line : string -> Trace.event
val bug_of_line : string -> Report.bug

(** Parse a whole PMTest-format trace into events and bug reports. Raises
    {!Trace.Bad_trace}. *)
val of_string : string -> Trace.event list * Report.bug list
