(** The persistency state machine (paper §4.2 definitions).

    Tracks, per PM store, whether the stored range is still {e dirty} in
    the CPU cache, {e pending} (covered by a weakly-ordered flush that no
    fence has ordered yet), or durable. Durable ranges are copied into the
    persisted image, so crash simulation sees exactly the bytes a real
    crash would preserve.

    Deterministic-pessimistic model: lines are never spontaneously
    evicted, so "may still be volatile at the crash" becomes "is volatile
    at the crash" — the same worst-case stance pmemcheck takes. *)

open Hippo_pmir

type state = Dirty | Pending

type record = {
  iid : Iid.t;
  loc : Loc.t;
  stack : Trace.stack;
  addr : int;
  size : int;
  seq : int;  (** global event sequence number of the store *)
  mutable state : state;
  mutable snapshot : string;  (** bytes captured at flush time *)
  mutable flushed_by : Iid.t option;  (** the flush that made it pending *)
}

type t = {
  lines : (int, record list ref) Hashtbl.t;
  mutable pending : record list;
  mutable last_fence_seq : int;
  mutable flushes_total : int;
  mutable flushes_clean : int;  (** flushes that moved no dirty data *)
  mutable fences_total : int;
  mutable stores_pm_total : int;
}

val create : unit -> t

(** Record a PM store. Overlapping older {e dirty} records are superseded;
    pending records (write-backs already in flight) are left alone. *)
val store :
  t ->
  iid:Iid.t ->
  loc:Loc.t ->
  stack:Trace.stack ->
  addr:int ->
  size:int ->
  seq:int ->
  record

(** Nontemporal stores bypass the cache into the write-pending queue:
    durable after the next fence, without any flush. *)
val store_nt :
  t ->
  Mem.t ->
  iid:Iid.t ->
  loc:Loc.t ->
  stack:Trace.stack ->
  addr:int ->
  size:int ->
  seq:int ->
  unit

(** Flush the cache line containing [addr]. Dirty records intersecting the
    line capture their current working bytes and become pending ([Clwb],
    [Clflushopt]) or immediately durable ([Clflush]). Returns the number
    of records transitioned. No effect outside PM. *)
val flush : t -> Mem.t -> iid:Iid.t -> kind:Instr.flush_kind -> addr:int -> int

(** A fence makes every pending record durable (committing the
    flush-time snapshots). Returns the number of {e distinct cache lines}
    drained — the write-pending-queue work a real sfence waits for. *)
val fence : t -> Mem.t -> seq:int -> int

(** All still-unpersisted records, classified per §4.2: [Dirty] with a
    later fence = missing-flush; [Dirty] with no later fence =
    missing-flush&fence; [Pending] = missing-fence. Sorted by source
    location. *)
val unpersisted_bugs : t -> crash:Report.crash_info -> Report.bug list

val unpersisted_count : t -> int
val pending_count : t -> int
