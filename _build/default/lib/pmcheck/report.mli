(** Durability-bug reports (paper §2.1, §4.2).

    A bug is an update [X] to persistent memory that the program required
    to be durable before an instruction [I] (a crash point or program
    exit), for which no [X -> F(X) -> M -> I] chain exists:

    - {e missing-flush}: no flush covered the store, but a later fence
      exists (one flush before that fence suffices);
    - {e missing-fence}: a flush covered the store but no fence ordered
      it;
    - {e missing-flush&fence}: neither exists. *)

open Hippo_pmir

type kind = Missing_flush | Missing_fence | Missing_flush_fence

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type store_info = {
  iid : Iid.t;
  loc : Loc.t;
  stack : Trace.stack;
  addr : int;
  size : int;
}

type crash_info = {
  crash_iid : Iid.t option;  (** [None] = implicit crash point at exit *)
  crash_loc : Loc.t;
  crash_stack : Trace.stack;
}

type bug = {
  kind : kind;
  store : store_info;
  crash : crash_info;
  ordering_flush : Iid.t option;
      (** for missing-fence bugs: the flush that covered the store but was
          never ordered — the natural insertion point for the fence fix *)
}

(** Two dynamic reports are the same static bug when the same store
    instruction is unpersisted for the same reason, at the same crash
    point, through the same chain of call sites. Reports of one store
    reached through {e different} call chains stay distinct: each chain is
    a separate fix opportunity for the hoisting heuristic. *)
val same_static_bug : bug -> bug -> bool

val dedup : bug list -> bug list
val pp_bug : Format.formatter -> bug -> unit
val bug_to_string : bug -> string

(** On-disk form ("BUG;..." lines appended after a trace's event log). *)
val to_line : bug -> string

val of_line : string -> bug
