(** Aggregated per-site pointer-class observations.

    For each store instruction (key index [-1] = the address operand) and
    each call-site argument position: how many dynamic executions saw a
    persistent pointer and how many saw a volatile one. The dynamic
    counterpart of the static alias counts — the Trace-AA heuristic
    variant (paper §6.1) scores fix candidates from these counters alone,
    with no static analysis. *)

open Hippo_pmir

type obs = { mutable pm : int; mutable vol : int }

type key = { site : Iid.t; arg : int }

type t

val create : unit -> t

(** [observe t ~site ~arg cls] bumps the counter; [Not_ptr] observations
    are ignored. *)
val observe : t -> site:Iid.t -> arg:int -> Trace.arg_class -> unit

val find : t -> site:Iid.t -> arg:int -> obs option
val fold : (key -> obs -> 'a -> 'a) -> t -> 'a -> 'a

(** "STAT;iid;arg;pm;vol" lines, sorted (appended after a trace's event
    log). *)
val to_lines : t -> string list

val of_lines : string list -> t
