(** Durability-bug reports (paper §2.1, §4.2).

    A bug is an update [X] to persistent memory that the program required to
    be durable before an instruction [I] (a crash point or program exit),
    for which no [X -> F(X) -> M -> I] chain exists:

    - {e missing-flush}: no flush covered the store, but a later fence
      exists (inserting one flush before that fence suffices);
    - {e missing-fence}: a flush covered the store but no fence ordered it;
    - {e missing-flush&fence}: neither exists. *)

open Hippo_pmir

type kind = Missing_flush | Missing_fence | Missing_flush_fence

let kind_to_string = function
  | Missing_flush -> "missing-flush"
  | Missing_fence -> "missing-fence"
  | Missing_flush_fence -> "missing-flush&fence"

let kind_of_string = function
  | "missing-flush" -> Some Missing_flush
  | "missing-fence" -> Some Missing_fence
  | "missing-flush&fence" -> Some Missing_flush_fence
  | _ -> None

type store_info = {
  iid : Iid.t;
  loc : Loc.t;
  stack : Trace.stack;
  addr : int;
  size : int;
}

type crash_info = {
  crash_iid : Iid.t option;  (** [None] = implicit crash point at exit *)
  crash_loc : Loc.t;
  crash_stack : Trace.stack;
}

type bug = {
  kind : kind;
  store : store_info;
  crash : crash_info;
  ordering_flush : Iid.t option;
      (** for missing-fence bugs: the flush that covered the store but was
          never ordered — the natural insertion point for the fence fix *)
}

(** Two dynamic reports are the same static bug when the same store
    instruction is unpersisted for the same reason, at the same crash
    point, through the same chain of call sites — the deduplication
    pmemcheck performs on repeated executions of a source line (e.g. in
    loops). Reports of one store reached through {e different} call chains
    stay distinct: each chain is a separate fix opportunity for the
    hoisting heuristic (a hoist at one call site does not cover the
    others). *)
let same_static_bug a b =
  let stack_sites (s : Trace.stack) =
    List.map (fun (f : Trace.frame) -> f.Trace.callsite) s
  in
  a.kind = b.kind
  && Iid.equal a.store.iid b.store.iid
  && Option.equal Iid.equal a.crash.crash_iid b.crash.crash_iid
  && List.equal (Option.equal Iid.equal)
       (stack_sites a.store.stack)
       (stack_sites b.store.stack)

let dedup bugs =
  List.fold_left
    (fun acc b -> if List.exists (same_static_bug b) acc then acc else b :: acc)
    [] bugs
  |> List.rev

let pp_bug ppf b =
  Fmt.pf ppf "[%s] store at %a (%a), 0x%x+%d, unpersisted at %a"
    (kind_to_string b.kind) Loc.pp b.store.loc Iid.pp b.store.iid b.store.addr
    b.store.size Loc.pp b.crash.crash_loc

let bug_to_string b = Fmt.str "%a" pp_bug b

(* On-disk form, appended to trace files the way pmemcheck appends its
   error summary after the operation log. *)

let to_line b =
  Fmt.str "BUG;%s;%a;%a;0x%x;%d;%s;%s;%a;%s;%s"
    (kind_to_string b.kind) Iid.pp b.store.iid Loc.pp b.store.loc b.store.addr
    b.store.size
    (Trace.stack_to_string b.store.stack)
    (match b.crash.crash_iid with
    | Some i -> Iid.to_string i
    | None -> "exit")
    Loc.pp b.crash.crash_loc
    (Trace.stack_to_string b.crash.crash_stack)
    (match b.ordering_flush with Some i -> Iid.to_string i | None -> "-")

let of_line line =
  match String.split_on_char ';' line with
  | [ "BUG"; kind; siid; sloc; addr; size; sstack; ciid; cloc; cstack; oflush ] ->
      let kind =
        match kind_of_string kind with
        | Some k -> k
        | None -> Trace.bad "bad bug kind %S" kind
      in
      {
        kind;
        store =
          {
            iid = Trace.parse_iid siid;
            loc = Trace.parse_loc sloc;
            stack = Trace.parse_stack sstack;
            addr = Trace.parse_int addr;
            size = Trace.parse_int size;
          };
        crash =
          {
            crash_iid =
              (if ciid = "exit" then None else Some (Trace.parse_iid ciid));
            crash_loc = Trace.parse_loc cloc;
            crash_stack = Trace.parse_stack cstack;
          };
        ordering_flush =
          (if oflush = "-" then None else Some (Trace.parse_iid oflush));
      }
  | _ -> Trace.bad "unparseable bug line %S" line
