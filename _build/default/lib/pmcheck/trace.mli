(** PM operation traces.

    The contract between bug finder and repair tool (paper §4.1): every
    event carries the instruction identity, the source location, and the
    call stack at the time of the event. pmemcheck produces exactly this;
    Hippocrates consumes it to locate bugs in the IR and to compute
    interprocedural fix candidates.

    Serialization is line-oriented (';'-separated fields, stacks
    '<'-separated innermost-first), round-tripping through
    {!to_string}/{!of_string}. *)

open Hippo_pmir

type frame = {
  func : string;
  callsite : Iid.t option;
      (** the call instruction, in the caller, that created this frame;
          [None] for the host-invoked entry frame *)
  callsite_loc : Loc.t option;
}

type stack = frame list
(** innermost frame first *)

type arg_class = Pm_ptr | Vol_ptr | Not_ptr

type event =
  | Store of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      addr : int;
      size : int;
      nontemporal : bool;
      seq : int;
    }
  | Flush of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      kind : Instr.flush_kind;
      line_addr : int;
      seq : int;
    }
  | Fence of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      kind : Instr.fence_kind;
      seq : int;
    }
  | Call of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      callee : string;
      arg_classes : arg_class list;
      seq : int;
    }
  | Crash_point of { iid : Iid.t option; loc : Loc.t; stack : stack; seq : int }
      (** [iid = None] denotes the implicit crash point at program exit *)

val seq : event -> int
val stack_of : event -> stack

val frame_to_string : frame -> string
val stack_to_string : stack -> string
val arg_class_to_string : arg_class -> string
val arg_class_of_string : string -> arg_class option
val to_line : event -> string
val to_string : event list -> string

exception Bad_trace of string

val bad : ('a, Format.formatter, unit, 'b) format4 -> 'a

(* Field parsers shared with {!Report} and {!Sitestats}. *)
val parse_iid : string -> Iid.t
val parse_loc : string -> Loc.t
val parse_frame : string -> frame
val parse_stack : string -> stack
val parse_int : string -> int
val parse_bool : string -> bool

val of_line : string -> event
val of_string : string -> event list
