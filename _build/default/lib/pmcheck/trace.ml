(** PM operation traces.

    The contract between bug finder and repair tool (paper §4.1): every
    event carries the instruction identity, the source location, and the
    call stack at the time of the event. pmemcheck produces exactly this;
    Hippocrates consumes it to locate bugs in the IR and to compute
    interprocedural fix candidates. *)

open Hippo_pmir

type frame = {
  func : string;
  callsite : Iid.t option;
      (** the call instruction, in the caller, that created this frame;
          [None] for the host-invoked entry frame *)
  callsite_loc : Loc.t option;
}

type stack = frame list
(** innermost frame first *)

type arg_class = Pm_ptr | Vol_ptr | Not_ptr

type event =
  | Store of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      addr : int;
      size : int;
      nontemporal : bool;
      seq : int;
    }
  | Flush of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      kind : Instr.flush_kind;
      line_addr : int;
      seq : int;
    }
  | Fence of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      kind : Instr.fence_kind;
      seq : int;
    }
  | Call of {
      iid : Iid.t;
      loc : Loc.t;
      stack : stack;
      callee : string;
      arg_classes : arg_class list;
      seq : int;
    }
  | Crash_point of { iid : Iid.t option; loc : Loc.t; stack : stack; seq : int }
      (** [iid = None] denotes the implicit crash point at program exit *)

let seq = function
  | Store { seq; _ } | Flush { seq; _ } | Fence { seq; _ } | Call { seq; _ }
  | Crash_point { seq; _ } ->
      seq

let stack_of = function
  | Store { stack; _ } | Flush { stack; _ } | Fence { stack; _ }
  | Call { stack; _ } | Crash_point { stack; _ } ->
      stack

(* Serialization: one event per line, ';'-separated fields, pmemcheck
   style. Stacks are rendered innermost-first, '<'-separated. *)

let frame_to_string f =
  match (f.callsite, f.callsite_loc) with
  | Some iid, Some loc -> Fmt.str "%s[%a|%a]" f.func Iid.pp iid Loc.pp loc
  | _ -> f.func

let stack_to_string (s : stack) =
  String.concat "<" (List.map frame_to_string s)

let arg_class_to_string = function
  | Pm_ptr -> "pm"
  | Vol_ptr -> "vol"
  | Not_ptr -> "int"

let arg_class_of_string = function
  | "pm" -> Some Pm_ptr
  | "vol" -> Some Vol_ptr
  | "int" -> Some Not_ptr
  | _ -> None

let to_line = function
  | Store { iid; loc; stack; addr; size; nontemporal; seq } ->
      Fmt.str "STORE;%d;%a;%a;0x%x;%d;%b;%s" seq Iid.pp iid Loc.pp loc addr
        size nontemporal (stack_to_string stack)
  | Flush { iid; loc; stack; kind; line_addr; seq } ->
      Fmt.str "FLUSH;%d;%a;%a;%s;0x%x;%s" seq Iid.pp iid Loc.pp loc
        (Instr.flush_kind_to_string kind)
        line_addr (stack_to_string stack)
  | Fence { iid; loc; stack; kind; seq } ->
      Fmt.str "FENCE;%d;%a;%a;%s;%s" seq Iid.pp iid Loc.pp loc
        (Instr.fence_kind_to_string kind)
        (stack_to_string stack)
  | Call { iid; loc; stack; callee; arg_classes; seq } ->
      Fmt.str "CALL;%d;%a;%a;%s;%s;%s" seq Iid.pp iid Loc.pp loc callee
        (String.concat "," (List.map arg_class_to_string arg_classes))
        (stack_to_string stack)
  | Crash_point { iid; loc; stack; seq } ->
      Fmt.str "CRASH;%d;%s;%a;%s" seq
        (match iid with Some i -> Iid.to_string i | None -> "exit")
        Loc.pp loc (stack_to_string stack)

let to_string events = String.concat "\n" (List.map to_line events)

(* Parsing (used to demonstrate the tool consumes on-disk traces, and to
   round-trip in tests). *)

exception Bad_trace of string

let bad fmt = Fmt.kstr (fun m -> raise (Bad_trace m)) fmt

let parse_iid s =
  match String.rindex_opt s '#' with
  | None -> bad "bad iid %S" s
  | Some i -> (
      let func = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some serial -> Iid.of_serial ~func serial
      | None -> bad "bad iid %S" s)

let parse_loc s =
  match String.rindex_opt s ':' with
  | None -> bad "bad location %S" s
  | Some i -> (
      let file = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some line -> Loc.make ~file ~line
      | None -> bad "bad location %S" s)

let parse_frame s =
  match String.index_opt s '[' with
  | None -> { func = s; callsite = None; callsite_loc = None }
  | Some i ->
      let func = String.sub s 0 i in
      if String.length s < i + 2 || s.[String.length s - 1] <> ']' then
        bad "bad frame %S" s;
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      (match String.index_opt inner '|' with
      | None -> bad "bad frame %S" s
      | Some j ->
          let iid = parse_iid (String.sub inner 0 j) in
          let loc = parse_loc (String.sub inner (j + 1) (String.length inner - j - 1)) in
          { func; callsite = Some iid; callsite_loc = Some loc })

let parse_stack s =
  if s = "" then [] else List.map parse_frame (String.split_on_char '<' s)

let parse_int s =
  match int_of_string_opt s with Some n -> n | None -> bad "bad integer %S" s

let parse_bool s =
  match bool_of_string_opt s with Some b -> b | None -> bad "bad bool %S" s

let of_line line =
  match String.split_on_char ';' line with
  | [ "STORE"; seq; iid; loc; addr; size; nt; stack ] ->
      Store
        {
          iid = parse_iid iid;
          loc = parse_loc loc;
          stack = parse_stack stack;
          addr = parse_int addr;
          size = parse_int size;
          nontemporal = parse_bool nt;
          seq = parse_int seq;
        }
  | [ "FLUSH"; seq; iid; loc; kind; addr; stack ] ->
      let kind =
        match Instr.flush_kind_of_string kind with
        | Some k -> k
        | None -> bad "bad flush kind %S" kind
      in
      Flush
        {
          iid = parse_iid iid;
          loc = parse_loc loc;
          stack = parse_stack stack;
          kind;
          line_addr = parse_int addr;
          seq = parse_int seq;
        }
  | [ "FENCE"; seq; iid; loc; kind; stack ] ->
      let kind =
        match Instr.fence_kind_of_string kind with
        | Some k -> k
        | None -> bad "bad fence kind %S" kind
      in
      Fence
        {
          iid = parse_iid iid;
          loc = parse_loc loc;
          stack = parse_stack stack;
          kind;
          seq = parse_int seq;
        }
  | [ "CALL"; seq; iid; loc; callee; argcls; stack ] ->
      let arg_classes =
        if argcls = "" then []
        else
          List.map
            (fun s ->
              match arg_class_of_string s with
              | Some c -> c
              | None -> bad "bad arg class %S" s)
            (String.split_on_char ',' argcls)
      in
      Call
        {
          iid = parse_iid iid;
          loc = parse_loc loc;
          stack = parse_stack stack;
          callee;
          arg_classes;
          seq = parse_int seq;
        }
  | [ "CRASH"; seq; iid; loc; stack ] ->
      Crash_point
        {
          iid = (if iid = "exit" then None else Some (parse_iid iid));
          loc = parse_loc loc;
          stack = parse_stack stack;
          seq = parse_int seq;
        }
  | _ -> bad "unparseable trace line %S" line

let of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map of_line
