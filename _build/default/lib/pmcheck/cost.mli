(** Latency cost model for timed execution.

    Constants (nanoseconds) follow published Optane DC measurements
    (Izraelevitz et al., arXiv:1903.05714, cited by the paper); only the
    ratios matter for the evaluation's shape. Flushes are charged at
    issue; the write-back is overlapped into the write-pending queue and
    paid when a fence drains it, per distinct cache line. A flush that
    targets volatile memory forces a DRAM write-back of a dirty line — the
    dominant waste of naive intraprocedural fixes in dual-use helpers like
    [memcpy] (§3.2, §6.3). *)

type t = {
  op_ns : float;  (** plain ALU / branch instruction *)
  load_dram_ns : float;
  store_dram_ns : float;
  load_pm_ns : float;  (** Optane read latency (cache-missing) *)
  store_pm_ns : float;  (** store into cache, destined for PM *)
  flush_pm_dirty_ns : float;  (** clwb issue on a line with dirty PM data *)
  flush_pm_clean_ns : float;  (** clwb issue on an already-clean PM line *)
  flush_vol_ns : float;  (** clwb on volatile memory: DRAM write-back *)
  fence_base_ns : float;  (** sfence with an empty write-pending queue *)
  fence_drain_line_ns : float;
      (** per distinct pending cache line drained by the fence *)
  call_ns : float;
}

val default : t

(** Pricier fences: the ablation that checks conclusions are robust to the
    constants. *)
val fence_heavy : t

(** Free-ish volatile flushes: isolates how much of the intraprocedural
    penalty is DRAM write-backs. *)
val cheap_vol_flush : t
