lib/pmdk_mini/runtime.mli: Hippo_pmir
