lib/pmdk_mini/bugs.mli: Case
