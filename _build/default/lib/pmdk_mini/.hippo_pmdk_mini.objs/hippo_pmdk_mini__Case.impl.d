lib/pmdk_mini/case.ml: Fix Fmt Hippo_core Hippo_pmcheck Hippo_pmir Iid Interp Lazy List Program Report
