lib/pmdk_mini/case.mli: Fix Format Hippo_core Hippo_pmcheck Hippo_pmir Interp Lazy Program Report
