lib/pmdk_mini/bugs.ml: Builder Case Hippo_pmcheck Hippo_pmir Interp Program Report Runtime Validate Value
