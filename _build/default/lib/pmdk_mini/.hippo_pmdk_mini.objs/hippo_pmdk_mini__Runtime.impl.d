lib/pmdk_mini/runtime.ml: Builder Hippo_pmcheck Hippo_pmir Instr Value
