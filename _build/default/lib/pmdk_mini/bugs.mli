(** The 11 reproduced PMDK unit-test bugs (§6.1, Fig. 3).

    Each case is a miniature of the cited upstream issue, preserving the
    structural property that determined how it was fixed: issues 452, 940
    and 943 update single-cache-line PM fields reached only through
    persistent pointers (intraprocedural [clwb] fixes, more-portable
    developer fixes); issues 447, 458, 459, 460, 461, 585, 942 and 945
    write through helpers shared with volatile paths (interprocedural
    fixes identical to the developer's; 459 and 945 hoist two frames). *)

val case_447 : Case.t
val case_452 : Case.t
val case_458 : Case.t
val case_459 : Case.t
val case_460 : Case.t
val case_461 : Case.t
val case_585 : Case.t
val case_940 : Case.t
val case_942 : Case.t
val case_943 : Case.t
val case_945 : Case.t

(** All 11, ordered by issue number. *)
val all : Case.t list
