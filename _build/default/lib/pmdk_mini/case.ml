(** A reproduced durability bug: the subject program, the workload that
    makes pmcheck report it, and the ground truth the evaluation compares
    against (the developer's fix and the fix shape Hippocrates is expected
    to produce — Fig. 3's two columns). *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

type dev_fix =
  | Dev_inter_flush_fence  (** developers added a persistent helper / persist call *)
  | Dev_portable_flush
      (** developers inserted a libpmem flush that dispatches on CPU
          features at run time (the "more machine-portable" fixes of §6.2) *)

type expected_shape =
  | Exp_intra_flush
  | Exp_intra_fence
  | Exp_intra_flush_fence
  | Exp_inter of int  (** hoist depth *)

type t = {
  id : string;
  system : string;
  issue : int option;  (** upstream issue number, when modelled on one *)
  title : string;
  program : Program.t Lazy.t;
  workload : Interp.t -> unit;
  entry : string;  (** entry function the workload drives *)
  expected_kind : Report.kind;
  expected_shape : expected_shape;
  dev_fix : dev_fix option;  (** None for previously-undocumented bugs *)
  notes : string;
}

let shape_matches (shape : expected_shape) (s : Fix.shape) =
  match (shape, s) with
  | Exp_intra_flush, Fix.Shape_intra_flush -> true
  | Exp_intra_fence, Fix.Shape_intra_fence -> true
  | Exp_intra_flush_fence, Fix.Shape_intra_flush_fence -> true
  | Exp_inter d, Fix.Shape_interprocedural d' -> d = d'
  | _ -> false

let pp_shape ppf = function
  | Exp_intra_flush -> Fmt.string ppf "intraprocedural flush (clwb)"
  | Exp_intra_fence -> Fmt.string ppf "intraprocedural fence"
  | Exp_intra_flush_fence -> Fmt.string ppf "intraprocedural flush+fence"
  | Exp_inter d -> Fmt.pf ppf "interprocedural flush+fence (%d up)" d

let pp_dev_fix ppf = function
  | Some Dev_inter_flush_fence -> Fmt.string ppf "interprocedural flush+fence"
  | Some Dev_portable_flush -> Fmt.string ppf "interprocedural flush (runtime-dispatched)"
  | None -> Fmt.string ppf "(previously undocumented)"

(** Count the distinct buggy store sites among the reports — the paper's
    "bugs" unit (23 across the three systems). *)
let static_bug_sites (bugs : Report.bug list) =
  List.sort_uniq Iid.compare
    (List.map (fun (b : Report.bug) -> b.Report.store.iid) bugs)
  |> List.length
