(** A reproduced durability bug: the subject program, the workload that
    makes pmcheck report it, and the ground truth the evaluation compares
    against (the developer's fix and the fix shape Hippocrates is expected
    to produce — Fig. 3's two columns). *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

type dev_fix =
  | Dev_inter_flush_fence
      (** developers added a persistent helper / persist call *)
  | Dev_portable_flush
      (** developers inserted a libpmem flush that dispatches on CPU
          features at run time (the "more machine-portable" fixes of
          §6.2) *)

type expected_shape =
  | Exp_intra_flush
  | Exp_intra_fence
  | Exp_intra_flush_fence
  | Exp_inter of int  (** hoist depth *)

type t = {
  id : string;
  system : string;
  issue : int option;  (** upstream issue number, when modelled on one *)
  title : string;
  program : Program.t Lazy.t;
  workload : Interp.t -> unit;
  entry : string;
  expected_kind : Report.kind;
  expected_shape : expected_shape;
  dev_fix : dev_fix option;  (** [None] for previously-undocumented bugs *)
  notes : string;
}

val shape_matches : expected_shape -> Fix.shape -> bool
val pp_shape : Format.formatter -> expected_shape -> unit
val pp_dev_fix : Format.formatter -> dev_fix option -> unit

(** Count the distinct buggy store sites among the reports — the paper's
    "bugs" unit. *)
val static_bug_sites : Report.bug list -> int
