(** A miniature libpmem: the PMDK runtime functions the subject programs
    link against, emitted as PMIR.

    [pmem_flush]/[pmem_drain]/[pmem_persist] follow libpmem's semantics:
    flush every cache line of a range, fence, or both. [memcpy]/[memset]
    are the shared, durability-oblivious primitives whose dual use on
    volatile and persistent data creates the paper's central fix-placement
    tension (§3.2): the correct developer practice is
    [memcpy] + [pmem_persist] (Listing 2), and a naive intraprocedural
    repair inside [memcpy] is what ruins performance. *)

open Hippo_pmir

let line = Hippo_pmcheck.Layout.cache_line

(** Emit the runtime into [b]. Every function is plain PMIR, so Hippocrates
    can transform runtime functions exactly as it transforms application
    code (the original operates on whole-program LLVM bitcode the same
    way). *)
let add (b : Builder.t) : unit =
  let open Builder in
  (* memcpy: word-at-a-time when both pointers and the length are 8-byte
     aligned, byte loop otherwise. *)
  let _ =
    func b "memcpy" [ "dst"; "src"; "len" ] ~body:(fun fb ->
        let dst = Value.reg "dst"
        and src = Value.reg "src"
        and len = Value.reg "len" in
        let misalign = band fb (bor fb (bor fb dst src) len) (Value.imm 7) in
        if_ fb
          (eq fb misalign (Value.imm 0))
          ~then_:(fun () ->
            ignore (set fb "w" (Value.imm 0));
            while_ fb
              ~cond:(fun () -> lt fb (Value.reg "w") len)
              ~body:(fun () ->
                let s = gep fb src (Value.reg "w") in
                let v = load fb ~size:8 s in
                let d = gep fb dst (Value.reg "w") in
                store fb ~size:8 ~addr:d v;
                ignore (set fb "w" (add fb (Value.reg "w") (Value.imm 8)))))
          ~else_:(fun () ->
            for_ fb "i" ~from:(Value.imm 0) ~below:len ~body:(fun i ->
                let s = gep fb src i in
                let v = load fb ~size:1 s in
                let d = gep fb dst i in
                store fb ~size:1 ~addr:d v))
          ();
        ret fb dst)
  in
  let _ =
    func b "memset" [ "dst"; "c"; "len" ] ~body:(fun fb ->
        let dst = Value.reg "dst" in
        for_ fb "i" ~from:(Value.imm 0) ~below:(Value.reg "len")
          ~body:(fun i ->
            let d = gep fb dst i in
            store fb ~size:1 ~addr:d (Value.reg "c"));
        ret fb dst)
  in
  (* memcmp: returns 1 when the ranges are equal, 0 otherwise. *)
  let _ =
    func b "memcmp_eq" [ "a"; "b"; "len" ] ~body:(fun fb ->
        ignore (set fb "ok" (Value.imm 1));
        for_ fb "i" ~from:(Value.imm 0) ~below:(Value.reg "len")
          ~body:(fun i ->
            let va = load fb ~size:1 (gep fb (Value.reg "a") i) in
            let vb = load fb ~size:1 (gep fb (Value.reg "b") i) in
            if_ fb (ne fb va vb)
              ~then_:(fun () -> ignore (set fb "ok" (Value.imm 0)))
              ());
        ret fb (Value.reg "ok"))
  in
  (* FNV-1a over a byte range; masked to stay within 62 bits. *)
  let _ =
    func b "hash_fnv" [ "ptr"; "len" ] ~body:(fun fb ->
        ignore (set fb "h" (Value.imm 0x100001b3));
        for_ fb "i" ~from:(Value.imm 0) ~below:(Value.reg "len")
          ~body:(fun i ->
            let c = load fb ~size:1 (gep fb (Value.reg "ptr") i) in
            let x = bxor fb (Value.reg "h") c in
            let m = mul fb x (Value.imm 0x01000193) in
            ignore (set fb "h" (band fb m (Value.imm 0x3FFFFFFFFFFFFFF))));
        ret fb (Value.reg "h"))
  in
  (* pmem_flush: flush every cache line intersecting [addr, addr+len). *)
  let _ =
    func b "pmem_flush" [ "addr"; "len" ] ~body:(fun fb ->
        let base =
          band fb (Value.reg "addr") (Value.imm (lnot (line - 1)))
        in
        let limit = add fb (Value.reg "addr") (Value.reg "len") in
        ignore (set fb "p" base);
        while_ fb
          ~cond:(fun () -> lt fb (Value.reg "p") limit)
          ~body:(fun () ->
            flush fb ~kind:Instr.Clwb (Value.reg "p");
            ignore
              (set fb "p" (add fb (Value.reg "p") (Value.imm line))));
        ret_void fb)
  in
  let _ =
    func b "pmem_drain" [] ~body:(fun fb ->
        fence fb ~kind:Instr.Sfence ();
        ret_void fb)
  in
  let _ =
    func b "pmem_persist" [ "addr"; "len" ] ~body:(fun fb ->
        call_void fb "pmem_flush" [ Value.reg "addr"; Value.reg "len" ];
        call_void fb "pmem_drain" [];
        ret_void fb)
  in
  let _ =
    func b "pmem_memcpy_persist" [ "dst"; "src"; "len" ] ~body:(fun fb ->
        let r =
          call fb "memcpy" [ Value.reg "dst"; Value.reg "src"; Value.reg "len" ]
        in
        call_void fb "pmem_persist" [ Value.reg "dst"; Value.reg "len" ];
        ret fb r)
  in
  ()
