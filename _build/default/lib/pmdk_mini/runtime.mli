(** A miniature libpmem: the PMDK runtime functions the subject programs
    link against, emitted as PMIR.

    Provided functions (all plain PMIR, so Hippocrates can transform them
    exactly like application code):

    - [memcpy(dst, src, len)] / [memset(dst, c, len)] — the shared,
      durability-oblivious primitives whose dual use on volatile and
      persistent data creates the paper's central fix-placement tension;
    - [memcmp_eq(a, b, len)] — 1 when equal;
    - [hash_fnv(ptr, len)] — FNV-1a;
    - [pmem_flush(addr, len)] / [pmem_drain()] / [pmem_persist(addr, len)]
      — libpmem semantics: flush every line of a range, fence, or both;
    - [pmem_memcpy_persist(dst, src, len)] — the Listing-2 idiom. *)

(** Emit the runtime into a builder. *)
val add : Hippo_pmir.Builder.t -> unit
