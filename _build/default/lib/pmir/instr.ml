(** PMIR instructions.

    The instruction set mirrors the LLVM subset that persistent-memory
    programs and the Hippocrates pass care about: ordinary loads and stores,
    pointer arithmetic ([gep]), calls, branches — plus the x86 persistence
    primitives as first-class instructions: cache-line flushes ([clwb],
    [clflushopt], [clflush]) and memory fences ([sfence], [mfence]).

    [Crash] marks a simulated crash point: the instruction [I] of the
    paper's durability ordering "X -> F(X) -> M -> I". The bug finder
    reports every PM store not yet durable when a crash point (or program
    exit) is reached. *)

type flush_kind =
  | Clwb  (** weakly ordered write-back, needs a fence; keeps the line *)
  | Clflushopt  (** weakly ordered flush-and-evict, needs a fence *)
  | Clflush  (** legacy serialized flush; durable without a fence *)

type fence_kind =
  | Sfence  (** orders stores and flushes *)
  | Mfence  (** orders all memory operations *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type op =
  | Store of { addr : Value.t; value : Value.t; size : int; nontemporal : bool }
  | Load of { dst : string; addr : Value.t; size : int }
  | Flush of { kind : flush_kind; addr : Value.t }
  | Fence of { kind : fence_kind }
  | Binop of { dst : string; op : binop; lhs : Value.t; rhs : Value.t }
  | Mov of { dst : string; src : Value.t }
  | Gep of { dst : string; base : Value.t; offset : Value.t }
      (** [dst = base + offset] in bytes; kept distinct from [Add] because
          alias analysis propagates points-to facts through it *)
  | Alloca of { dst : string; size : int }  (** volatile stack allocation *)
  | Call of { dst : string option; callee : string; args : Value.t list }
  | Br of { target : string }
  | Condbr of { cond : Value.t; if_true : string; if_false : string }
  | Ret of Value.t option
  | Crash

type t = { iid : Iid.t; loc : Loc.t; op : op }

let make ~iid ~loc op = { iid; loc; op }

let iid t = t.iid
let loc t = t.loc
let op t = t.op

let with_op t op = { t with op }

(** The register defined by the instruction, if any. *)
let def t =
  match t.op with
  | Load { dst; _ } | Binop { dst; _ } | Mov { dst; _ } | Gep { dst; _ }
  | Alloca { dst; _ } ->
      Some dst
  | Call { dst; _ } -> dst
  | Store _ | Flush _ | Fence _ | Br _ | Condbr _ | Ret _ | Crash -> None

(** All operand values of the instruction, in syntactic order. *)
let operands t =
  match t.op with
  | Store { addr; value; _ } -> [ value; addr ]
  | Load { addr; _ } -> [ addr ]
  | Flush { addr; _ } -> [ addr ]
  | Fence _ -> []
  | Binop { lhs; rhs; _ } -> [ lhs; rhs ]
  | Mov { src; _ } -> [ src ]
  | Gep { base; offset; _ } -> [ base; offset ]
  | Alloca _ -> []
  | Call { args; _ } -> args
  | Br _ -> []
  | Condbr { cond; _ } -> [ cond ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []
  | Crash -> []

(** Registers read by the instruction. *)
let uses t =
  match t.op with
  | Store { addr; value; _ } -> Value.uses addr @ Value.uses value
  | Load { addr; _ } -> Value.uses addr
  | Flush { addr; _ } -> Value.uses addr
  | Fence _ -> []
  | Binop { lhs; rhs; _ } -> Value.uses lhs @ Value.uses rhs
  | Mov { src; _ } -> Value.uses src
  | Gep { base; offset; _ } -> Value.uses base @ Value.uses offset
  | Alloca _ -> []
  | Call { args; _ } -> List.concat_map Value.uses args
  | Br _ -> []
  | Condbr { cond; _ } -> Value.uses cond
  | Ret (Some v) -> Value.uses v
  | Ret None -> []
  | Crash -> []

let is_terminator t =
  match t.op with Br _ | Condbr _ | Ret _ -> true | _ -> false

let is_store t = match t.op with Store _ -> true | _ -> false
let is_flush t = match t.op with Flush _ -> true | _ -> false
let is_fence t = match t.op with Fence _ -> true | _ -> false

let flush_kind_to_string = function
  | Clwb -> "clwb"
  | Clflushopt -> "clflushopt"
  | Clflush -> "clflush"

let flush_kind_of_string = function
  | "clwb" -> Some Clwb
  | "clflushopt" -> Some Clflushopt
  | "clflush" -> Some Clflush
  | _ -> None

let fence_kind_to_string = function Sfence -> "sfence" | Mfence -> "mfence"

let fence_kind_of_string = function
  | "sfence" -> Some Sfence
  | "mfence" -> Some Mfence
  | _ -> None

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let binop_of_string = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "lshr" -> Some Lshr
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

(** Structural equality of operations, ignoring identities and locations.
    Used by round-trip property tests. *)
let op_equal (a : op) (b : op) =
  match (a, b) with
  | Store x, Store y ->
      Value.equal x.addr y.addr && Value.equal x.value y.value
      && x.size = y.size
      && Bool.equal x.nontemporal y.nontemporal
  | Load x, Load y ->
      String.equal x.dst y.dst && Value.equal x.addr y.addr && x.size = y.size
  | Flush x, Flush y -> x.kind = y.kind && Value.equal x.addr y.addr
  | Fence x, Fence y -> x.kind = y.kind
  | Binop x, Binop y ->
      String.equal x.dst y.dst && x.op = y.op && Value.equal x.lhs y.lhs
      && Value.equal x.rhs y.rhs
  | Mov x, Mov y -> String.equal x.dst y.dst && Value.equal x.src y.src
  | Gep x, Gep y ->
      String.equal x.dst y.dst && Value.equal x.base y.base
      && Value.equal x.offset y.offset
  | Alloca x, Alloca y -> String.equal x.dst y.dst && x.size = y.size
  | Call x, Call y ->
      Option.equal String.equal x.dst y.dst
      && String.equal x.callee y.callee
      && List.equal Value.equal x.args y.args
  | Br x, Br y -> String.equal x.target y.target
  | Condbr x, Condbr y ->
      Value.equal x.cond y.cond
      && String.equal x.if_true y.if_true
      && String.equal x.if_false y.if_false
  | Ret x, Ret y -> Option.equal Value.equal x y
  | Crash, Crash -> true
  | ( ( Store _ | Load _ | Flush _ | Fence _ | Binop _ | Mov _ | Gep _
      | Alloca _ | Call _ | Br _ | Condbr _ | Ret _ | Crash ),
      _ ) ->
      false

let pp_op ppf (o : op) =
  match o with
  | Store { addr; value; size; nontemporal } ->
      Fmt.pf ppf "store.i%d%s %a -> %a" (size * 8)
        (if nontemporal then ".nt" else "")
        Value.pp value Value.pp addr
  | Load { dst; addr; size } ->
      Fmt.pf ppf "%%%s = load.i%d %a" dst (size * 8) Value.pp addr
  | Flush { kind; addr } ->
      Fmt.pf ppf "flush.%s %a" (flush_kind_to_string kind) Value.pp addr
  | Fence { kind } -> Fmt.pf ppf "fence.%s" (fence_kind_to_string kind)
  | Binop { dst; op; lhs; rhs } ->
      Fmt.pf ppf "%%%s = %s %a, %a" dst (binop_to_string op) Value.pp lhs
        Value.pp rhs
  | Mov { dst; src } -> Fmt.pf ppf "%%%s = mov %a" dst Value.pp src
  | Gep { dst; base; offset } ->
      Fmt.pf ppf "%%%s = gep %a, %a" dst Value.pp base Value.pp offset
  | Alloca { dst; size } -> Fmt.pf ppf "%%%s = alloca %d" dst size
  | Call { dst; callee; args } -> (
      let pp_args = Fmt.list ~sep:(Fmt.any ", ") Value.pp in
      match dst with
      | Some d -> Fmt.pf ppf "%%%s = call @%s(%a)" d callee pp_args args
      | None -> Fmt.pf ppf "call @%s(%a)" callee pp_args args)
  | Br { target } -> Fmt.pf ppf "br %s" target
  | Condbr { cond; if_true; if_false } ->
      Fmt.pf ppf "condbr %a, %s, %s" Value.pp cond if_true if_false
  | Ret (Some v) -> Fmt.pf ppf "ret %a" Value.pp v
  | Ret None -> Fmt.string ppf "ret"
  | Crash -> Fmt.string ppf "crash"

let pp ppf t =
  if Loc.is_none t.loc then pp_op ppf t.op
  else Fmt.pf ppf "%a @@ \"%s\":%d" pp_op t.op (Loc.file t.loc) (Loc.line t.loc)

let to_string t = Fmt.str "%a" pp t
