(** A PMIR program: an ordered collection of functions plus global byte
    buffers. Globals live in volatile memory (the interpreter assigns them
    addresses at startup); persistent memory is obtained dynamically
    through the [pm_alloc] intrinsic, mirroring how PMDK pools are
    mapped. *)

type t

val empty : t

(** [add_func t f] appends (or replaces, keeping position) a function. *)
val add_func : t -> Func.t -> t

val add_global : t -> name:string -> size:int -> t
val of_funcs : Func.t list -> t
val find : t -> string -> Func.t option

(** Raises [Invalid_argument] when absent. *)
val find_exn : t -> string -> Func.t

val mem : t -> string -> bool

(** Functions in definition order. *)
val funcs : t -> Func.t list

val globals : t -> (string * int) list
val func_names : t -> string list

(** [update t f] replaces the function of the same name; raises
    [Invalid_argument] if it does not exist. *)
val update : t -> Func.t -> t

val map_funcs : (Func.t -> Func.t) -> t -> t

(** [find_instr t iid] locates an instruction program-wide. *)
val find_instr : t -> Iid.t -> Instr.t option

(** Total instruction count — the "lines of IR" metric used for the
    code-size experiments (§6.4). *)
val size : t -> int

val equal_modulo_iid : t -> t -> bool

(** Names of intrinsic functions understood directly by the interpreter
    (they have no PMIR body): [pm_alloc], [pm_base], [pm_size], [malloc],
    [free], [emit], [abort]. *)
val intrinsics : string list

val is_intrinsic : string -> bool
