(** Parser for the textual PMIR format produced by {!Printer}.

    Instructions are assigned fresh identities; explicit
    [@ "file":line] annotations are honoured, otherwise each instruction
    gets its physical line number in the parsed text. *)

exception Parse_error of { line : int; msg : string }

(** Parse a whole program from a string. Raises {!Parse_error}. *)
val program : string -> Program.t

(** Parse a program from a file. Raises {!Parse_error} or [Sys_error]. *)
val program_of_file : string -> Program.t
