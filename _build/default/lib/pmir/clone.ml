(** Function duplication with identity tracking.

    The persistent-subprogram transformation (§4.2.4 of the paper) clones a
    function and all PM-modifying callees. The clone's instructions receive
    fresh identities, and the returned mapping lets the caller translate
    facts keyed on original identities (e.g. "this store touches PM, flush
    it in the clone") onto the clone. *)

type mapping = Iid.t Iid.Tbl.t
(** original instruction identity -> clone instruction identity *)

(** [func ~new_name f] duplicates [f] under [new_name]; returns the clone
    and the identity mapping. *)
let func ~new_name (f : Func.t) : Func.t * mapping =
  let mapping = Iid.Tbl.create 64 in
  let clone_instr (i : Instr.t) =
    let iid = Iid.fresh ~func:new_name in
    Iid.Tbl.replace mapping (Instr.iid i) iid;
    Instr.make ~iid ~loc:(Instr.loc i) (Instr.op i)
  in
  let blocks =
    List.map
      (fun (b : Func.block) ->
        { Func.label = b.label; instrs = List.map clone_instr b.instrs })
      (Func.blocks f)
  in
  (Func.make ~name:new_name ~params:(Func.params f) ~blocks, mapping)

(** [retarget_calls f ~rename] rewrites every call site whose callee is
    remapped by [rename]. *)
let retarget_calls (f : Func.t) ~(rename : string -> string option) : Func.t =
  Func.map_instrs
    (fun i ->
      match Instr.op i with
      | Instr.Call { dst; callee; args } -> (
          match rename callee with
          | Some callee' -> [ Instr.with_op i (Instr.Call { dst; callee = callee'; args }) ]
          | None -> [ i ])
      | _ -> [ i ])
    f
