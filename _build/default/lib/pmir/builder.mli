(** Imperative construction of PMIR programs from OCaml.

    The subject applications are large enough that writing textual IR by
    hand would be error-prone; this builder plays the role clang plays for
    the original system — it is how "C source" becomes IR. Every emitted
    instruction is automatically tagged with a source location
    ([<file>:<line>], one line per emitted instruction unless overridden
    with {!at}), which is what the bug-finder traces report and what
    Hippocrates keys its fixes on.

    Typical usage:
    {[
      let b = Builder.create () in
      let _ = Builder.func b "main" [] ~body:(fun fb ->
          let p = Builder.call fb "pm_alloc" [ Value.imm 64 ] in
          Builder.store fb ~addr:p (Value.imm 1);
          Builder.ret_void fb)
      in
      Builder.program b
    ]} *)

type t
(** a program under construction *)

type fb
(** a function under construction *)

val create : unit -> t
val global : t -> string -> int -> unit

(** Finalize the program. Blocks are truncated at their first terminator,
    so structured emitters that append dead jumps stay valid. *)
val program : t -> Program.t

(** [func b name params ~body] defines a function; [body] receives the
    function builder positioned in the entry block. [?file] overrides the
    synthesized debug file name ([name ^ ".c"]). Returns [name]. *)
val func : t -> ?file:string -> string -> string list -> body:(fb -> unit) -> string

(** [at fb line] pins the source line of the next emitted instruction. *)
val at : fb -> int -> unit

(** [block fb label] switches emission to the (possibly new) block. *)
val block : fb -> string -> unit

val fresh_label : fb -> string -> string

(* Instruction emission. Emitters returning [Value.t] produce the fresh
   register holding the result. *)

val store : fb -> ?nt:bool -> ?size:int -> addr:Value.t -> Value.t -> unit
val load : fb -> ?size:int -> Value.t -> Value.t
val flush : fb -> ?kind:Instr.flush_kind -> Value.t -> unit
val fence : fb -> ?kind:Instr.fence_kind -> unit -> unit
val binop : fb -> Instr.binop -> Value.t -> Value.t -> Value.t
val add : fb -> Value.t -> Value.t -> Value.t
val sub : fb -> Value.t -> Value.t -> Value.t
val mul : fb -> Value.t -> Value.t -> Value.t
val div : fb -> Value.t -> Value.t -> Value.t
val rem : fb -> Value.t -> Value.t -> Value.t
val band : fb -> Value.t -> Value.t -> Value.t
val bor : fb -> Value.t -> Value.t -> Value.t
val bxor : fb -> Value.t -> Value.t -> Value.t
val shl : fb -> Value.t -> Value.t -> Value.t
val lshr : fb -> Value.t -> Value.t -> Value.t
val eq : fb -> Value.t -> Value.t -> Value.t
val ne : fb -> Value.t -> Value.t -> Value.t
val lt : fb -> Value.t -> Value.t -> Value.t
val le : fb -> Value.t -> Value.t -> Value.t
val gt : fb -> Value.t -> Value.t -> Value.t
val ge : fb -> Value.t -> Value.t -> Value.t

(** [set fb "x" v] assigns register [%x] and returns it as a value. *)
val set : fb -> string -> Value.t -> Value.t

val gep : fb -> Value.t -> Value.t -> Value.t
val alloca : fb -> int -> Value.t
val call : fb -> string -> Value.t list -> Value.t
val call_void : fb -> string -> Value.t list -> unit
val br : fb -> string -> unit
val condbr : fb -> Value.t -> string -> string -> unit
val ret : fb -> Value.t -> unit
val ret_void : fb -> unit
val crash : fb -> unit

(* Structured control flow. *)

(** [if_ fb cond ~then_ ?else_ ()] emits a diamond and leaves the builder
    positioned at the join block. *)
val if_ : fb -> Value.t -> then_:(unit -> unit) -> ?else_:(unit -> unit) -> unit -> unit

(** [while_ fb ~cond ~body] — [cond] is re-emitted in the loop header, so
    it must emit its own instructions and return the condition value. *)
val while_ : fb -> cond:(unit -> Value.t) -> body:(unit -> unit) -> unit

(** [for_ fb v ~from ~below ~body] — a counted loop over register [v];
    [body] receives the induction value. *)
val for_ : fb -> string -> from:Value.t -> below:Value.t -> body:(Value.t -> unit) -> unit
