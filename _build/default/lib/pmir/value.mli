(** Operand values.

    PMIR is a register machine with mutable, function-local registers
    (sidestepping SSA phi nodes while keeping the store/flush/fence
    structure Hippocrates reasons about identical to LLVM's). *)

type t =
  | Reg of string  (** function-local register, e.g. [%addr] *)
  | Imm of int  (** integer immediate; addresses are plain integers *)
  | Global of string  (** address of a program global, e.g. [@tbl] *)
  | Null  (** the null pointer (reads as 0) *)

val reg : string -> t
val imm : int -> t
val global : string -> t
val null : t
val equal : t -> t -> bool
val compare : t -> t -> int

(** Registers read by the operand (none for immediates and globals). *)
val uses : t -> string list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
