(** Textual serialization of PMIR programs.

    The format round-trips through {!Parser} (modulo instruction
    identities, which are allocated fresh on parse). It is the on-disk form
    of subject programs and the diff format in which Hippocrates reports
    its fixes. *)

let pp_block ppf (b : Func.block) =
  Fmt.pf ppf "%s:@," b.label;
  List.iter (fun i -> Fmt.pf ppf "  %a@," Instr.pp i) b.instrs

let pp_func ppf (f : Func.t) =
  Fmt.pf ppf "@[<v>func @@%s(%a) {@,"
    (Func.name f)
    Fmt.(list ~sep:(any ", ") (fmt "%%%s"))
    (Func.params f);
  List.iter (pp_block ppf) (Func.blocks f);
  Fmt.pf ppf "}@]"

let pp_program ppf (p : Program.t) =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (name, size) -> Fmt.pf ppf "global @@%s %d@," name size)
    (Program.globals p);
  Fmt.(list ~sep:(any "@,@,") pp_func) ppf (Program.funcs p);
  Fmt.pf ppf "@]@."

let func_to_string f = Fmt.str "%a" pp_func f
let to_string p = Fmt.str "%a" pp_program p
