(** Parser for the textual PMIR format produced by {!Printer}.

    Hand-rolled recursive-descent over a token list; programs are small
    enough (hundreds of KLOC at most) that parsing speed is irrelevant next
    to interpretation. Instructions are assigned fresh identities; explicit
    [@ "file":line] annotations are honoured, otherwise each instruction
    gets its physical line number in the parsed text. *)

exception Parse_error of { line : int; msg : string }

let fail line fmt = Fmt.kstr (fun msg -> raise (Parse_error { line; msg })) fmt

type token =
  | Tfunc
  | Tglobal
  | Tat_name of string  (** [@name] *)
  | Treg of string  (** [%name] *)
  | Tint of int
  | Tident of string
  | Tstring of string
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tcomma
  | Tcolon
  | Tarrow
  | Tatloc  (** [@] introducing a location annotation *)
  | Teq

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let tokenize_line lineno (s : string) : (token * int) list =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := (t, lineno) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ';' then i := n (* comment to end of line *)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if c = '{' then (push Tlbrace; incr i)
    else if c = '}' then (push Trbrace; incr i)
    else if c = ',' then (push Tcomma; incr i)
    else if c = ':' then (push Tcolon; incr i)
    else if c = '=' then (push Teq; incr i)
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then (
      push Tarrow;
      i := !i + 2)
    else if c = '"' then (
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then fail lineno "unterminated string literal";
      push (Tstring (String.sub s (!i + 1) (!j - !i - 1)));
      i := !j + 1)
    else if c = '@' then (
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      if !j = !i + 1 then (push Tatloc; incr i)
      else (
        push (Tat_name (String.sub s (!i + 1) (!j - !i - 1)));
        i := !j))
    else if c = '%' then (
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      if !j = !i + 1 then fail lineno "bare '%%'";
      push (Treg (String.sub s (!i + 1) (!j - !i - 1)));
      i := !j)
    else if c = '-' || (c >= '0' && c <= '9') then (
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      let lit = String.sub s !i (!j - !i) in
      (match int_of_string_opt lit with
      | Some v -> push (Tint v)
      | None -> fail lineno "bad integer literal %S" lit);
      i := !j)
    else if is_ident_char c then (
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      let id = String.sub s !i (!j - !i) in
      (match id with
      | "func" -> push Tfunc
      | "global" -> push Tglobal
      | _ -> push (Tident id));
      i := !j)
    else fail lineno "unexpected character %C" c
  done;
  List.rev !toks

(* A mutable token cursor. *)
type cursor = { mutable toks : (token * int) list }

let peek c = match c.toks with [] -> None | (t, _) :: _ -> Some t
let cur_line c = match c.toks with [] -> -1 | (_, l) :: _ -> l

let next c =
  match c.toks with
  | [] -> fail (-1) "unexpected end of input"
  | (t, l) :: rest ->
      c.toks <- rest;
      (t, l)

let expect c tok what =
  let t, l = next c in
  if t <> tok then fail l "expected %s" what

let expect_ident c =
  match next c with
  | Tident s, _ -> s
  | _, l -> fail l "expected an identifier"

let expect_int c =
  match next c with
  | Tint n, _ -> n
  | _, l -> fail l "expected an integer"

let parse_value c : Value.t =
  match next c with
  | Treg r, _ -> Value.reg r
  | Tint n, _ -> Value.imm n
  | Tat_name g, _ -> Value.global g
  | Tident "null", _ -> Value.null
  | _, l -> fail l "expected a value (register, integer, global, or null)"

(* "store.i64" / "store.i8.nt" / "load.i32" / "flush.clwb" / "fence.sfence" *)
let split_dotted s = String.split_on_char '.' s

let size_of_suffix l = function
  | "i8" -> 1
  | "i16" -> 2
  | "i32" -> 4
  | "i64" -> 8
  | s -> fail l "bad width suffix %S" s

(* Optional trailing location annotation: @ "file":line *)
let parse_loc_annot c ~default =
  match peek c with
  | Some Tatloc ->
      ignore (next c);
      let file =
        match next c with
        | Tstring s, _ -> s
        | _, l -> fail l "expected a file string after '@'"
      in
      expect c Tcolon "':'";
      let line = expect_int c in
      Loc.make ~file ~line
  | _ -> default

let parse_call_args c =
  expect c Tlparen "'('";
  let rec args acc =
    match peek c with
    | Some Trparen ->
        ignore (next c);
        List.rev acc
    | _ -> (
        let v = parse_value c in
        match next c with
        | Tcomma, _ -> args (v :: acc)
        | Trparen, _ -> List.rev (v :: acc)
        | _, l -> fail l "expected ',' or ')' in call arguments")
  in
  args []

(* Instructions that produce a value: "%x = <rhs>". *)
let parse_rhs c dst : Instr.op =
  match next c with
  | Tident kw, l -> (
      match split_dotted kw with
      | [ "load"; w ] ->
          let addr = parse_value c in
          Instr.Load { dst; addr; size = size_of_suffix l w }
      | [ "mov" ] -> Instr.Mov { dst; src = parse_value c }
      | [ "gep" ] ->
          let base = parse_value c in
          expect c Tcomma "','";
          let offset = parse_value c in
          Instr.Gep { dst; base; offset }
      | [ "alloca" ] -> Instr.Alloca { dst; size = expect_int c }
      | [ op ] -> (
          match Instr.binop_of_string op with
          | Some bop ->
              let lhs = parse_value c in
              expect c Tcomma "','";
              let rhs = parse_value c in
              Instr.Binop { dst; op = bop; lhs; rhs }
          | None -> fail l "unknown instruction %S" kw)
      | _ -> fail l "unknown instruction %S" kw)
  | _, l -> fail l "expected an instruction after '='"

let parse_instr c ~func ~lineno : Instr.t =
  let default_loc = Loc.make ~file:(func ^ ".pmir") ~line:lineno in
  let finish op =
    let loc = parse_loc_annot c ~default:default_loc in
    Instr.make ~iid:(Iid.fresh ~func) ~loc op
  in
  match next c with
  | Treg dst, _ -> (
      expect c Teq "'='";
      match peek c with
      | Some (Tident "call") ->
          ignore (next c);
          let callee =
            match next c with
            | Tat_name f, _ -> f
            | _, l -> fail l "expected '@function' after call"
          in
          let args = parse_call_args c in
          finish (Instr.Call { dst = Some dst; callee; args })
      | _ -> finish (parse_rhs c dst))
  | Tident kw, l -> (
      match split_dotted kw with
      | "store" :: w :: rest ->
          let nontemporal =
            match rest with
            | [] -> false
            | [ "nt" ] -> true
            | _ -> fail l "bad store suffix"
          in
          let value = parse_value c in
          expect c Tarrow "'->'";
          let addr = parse_value c in
          finish (Instr.Store { addr; value; size = size_of_suffix l w; nontemporal })
      | [ "flush"; k ] -> (
          (* ARM spellings are accepted as aliases with the same
             semantics (paper §2.1): dc_cvap behaves like clwb. *)
          let k = if k = "dc_cvap" then "clwb" else k in
          match Instr.flush_kind_of_string k with
          | Some kind -> finish (Instr.Flush { kind; addr = parse_value c })
          | None -> fail l "unknown flush kind %S" k)
      | [ "fence"; k ] -> (
          (* ARM: dsb orders like sfence for persistence purposes. *)
          let k = if k = "dsb" then "sfence" else k in
          match Instr.fence_kind_of_string k with
          | Some kind -> finish (Instr.Fence { kind })
          | None -> fail l "unknown fence kind %S" k)
      | [ "call" ] ->
          let callee =
            match next c with
            | Tat_name f, _ -> f
            | _, l -> fail l "expected '@function' after call"
          in
          let args = parse_call_args c in
          finish (Instr.Call { dst = None; callee; args })
      | [ "br" ] -> finish (Instr.Br { target = expect_ident c })
      | [ "condbr" ] ->
          let cond = parse_value c in
          expect c Tcomma "','";
          let if_true = expect_ident c in
          expect c Tcomma "','";
          let if_false = expect_ident c in
          finish (Instr.Condbr { cond; if_true; if_false })
      | [ "ret" ] -> (
          match peek c with
          | None | Some (Tident _) | Some Trbrace | Some Tatloc ->
              finish (Instr.Ret None)
          | Some _ -> finish (Instr.Ret (Some (parse_value c))))
      | [ "crash" ] -> finish Instr.Crash
      | _ -> fail l "unknown instruction %S" kw)
  | _, l -> fail l "expected an instruction"

(** Parse a whole program from a string. *)
let program (src : string) : Program.t =
  let lines = String.split_on_char '\n' src in
  let toks =
    List.concat (List.mapi (fun i line -> tokenize_line (i + 1) line) lines)
  in
  let c = { toks } in
  let prog = ref Program.empty in
  let rec top () =
    match peek c with
    | None -> ()
    | Some Tglobal ->
        ignore (next c);
        let name =
          match next c with
          | Tat_name n, _ -> n
          | _, l -> fail l "expected '@name' after global"
        in
        let size = expect_int c in
        prog := Program.add_global !prog ~name ~size;
        top ()
    | Some Tfunc ->
        ignore (next c);
        parse_func ();
        top ()
    | Some _ -> fail (cur_line c) "expected 'func' or 'global'"
  and parse_func () =
    let name =
      match next c with
      | Tat_name n, _ -> n
      | _, l -> fail l "expected '@name' after func"
    in
    expect c Tlparen "'('";
    let rec params acc =
      match next c with
      | Trparen, _ -> List.rev acc
      | Treg r, _ -> (
          match next c with
          | Tcomma, _ -> params (r :: acc)
          | Trparen, _ -> List.rev (r :: acc)
          | _, l -> fail l "expected ',' or ')' in parameter list")
      | _, l -> fail l "expected a parameter"
    in
    let params = params [] in
    expect c Tlbrace "'{'";
    (* blocks: "label:" then instructions until next label / '}' *)
    let blocks = ref [] in
    let rec block_loop () =
      match next c with
      | Trbrace, _ -> ()
      | Tident label, _ ->
          expect c Tcolon "':' after block label";
          let instrs = ref [] in
          let rec instr_loop () =
            match c.toks with
            | (Trbrace, _) :: _ -> ()
            | (Tident lbl, _) :: (Tcolon, _) :: _ when lbl <> "ret" ->
                ignore lbl (* next block label *)
            | [] -> fail (-1) "unterminated function body"
            | (_, lineno) :: _ ->
                instrs := parse_instr c ~func:name ~lineno :: !instrs;
                instr_loop ()
          in
          instr_loop ();
          blocks := { Func.label; instrs = List.rev !instrs } :: !blocks;
          block_loop ()
      | _, l -> fail l "expected a block label or '}'"
    in
    block_loop ();
    prog := Program.add_func !prog (Func.make ~name ~params ~blocks:(List.rev !blocks))
  in
  top ();
  !prog

let program_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> program (really_input_string ic (in_channel_length ic)))
