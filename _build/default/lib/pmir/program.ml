(** A PMIR program: an ordered collection of functions plus global byte
    buffers. Globals live in volatile memory (the interpreter assigns them
    addresses at startup); persistent memory is obtained dynamically through
    the [pm_alloc] intrinsic, mirroring how PMDK pools are mapped. *)

module SMap = Map.Make (String)

type t = {
  funcs : Func.t SMap.t;
  order : string list;  (** function names in definition order *)
  globals : (string * int) list;  (** name, size in bytes *)
}

let empty = { funcs = SMap.empty; order = []; globals = [] }

let add_func t (f : Func.t) =
  let name = Func.name f in
  let order = if SMap.mem name t.funcs then t.order else t.order @ [ name ] in
  { t with funcs = SMap.add name f t.funcs; order }

let add_global t ~name ~size = { t with globals = t.globals @ [ (name, size) ] }

let of_funcs funcs = List.fold_left add_func empty funcs

let find t name = SMap.find_opt name t.funcs

let find_exn t name =
  match find t name with
  | Some f -> f
  | None -> invalid_arg (Fmt.str "Program.find_exn: no function @%s" name)

let mem t name = SMap.mem name t.funcs

let funcs t = List.map (fun n -> SMap.find n t.funcs) t.order

let globals t = t.globals

let func_names t = t.order

(** [update t f] replaces the function of the same name. *)
let update t (f : Func.t) =
  let name = Func.name f in
  if not (SMap.mem name t.funcs) then
    invalid_arg (Fmt.str "Program.update: no function @%s" name);
  { t with funcs = SMap.add name f t.funcs }

let map_funcs f t =
  List.fold_left (fun acc fn -> update acc (f fn)) t (funcs t)

(** [find_instr t iid] locates an instruction program-wide. *)
let find_instr t (iid : Iid.t) =
  Option.bind (find t (Iid.func iid)) (fun f -> Func.find_instr f iid)

(** Total instruction count — the "lines of IR" metric used for the
    code-size experiments (§6.4). *)
let size t =
  List.fold_left (fun n f -> n + List.length (Func.instrs f)) 0 (funcs t)

let equal_modulo_iid a b =
  List.equal String.equal a.order b.order
  && List.equal
       (fun (n1, s1) (n2, s2) -> String.equal n1 n2 && s1 = s2)
       a.globals b.globals
  && List.for_all2 Func.equal_modulo_iid (funcs a) (funcs b)

(** Names of intrinsic functions understood directly by the interpreter
    (they have no PMIR body). *)
let intrinsics =
  [ "pm_alloc"; "pm_base"; "pm_size"; "malloc"; "free"; "emit"; "abort" ]

let is_intrinsic name = List.mem name intrinsics
