(** Operand values.

    PMIR is a register machine with mutable, function-local registers (this
    sidesteps SSA phi nodes while keeping the store/flush/fence structure
    that Hippocrates reasons about identical to LLVM's). An operand is a
    register read, an integer immediate, or the null pointer. *)

type t =
  | Reg of string  (** function-local register, e.g. [%addr] *)
  | Imm of int  (** integer immediate; addresses are plain integers *)
  | Global of string  (** address of a program global, e.g. [@tbl] *)
  | Null  (** the null pointer (reads as 0) *)

let reg name = Reg name
let imm n = Imm n
let global name = Global name
let null = Null

let equal a b =
  match (a, b) with
  | Reg x, Reg y -> String.equal x y
  | Imm x, Imm y -> Int.equal x y
  | Global x, Global y -> String.equal x y
  | Null, Null -> true
  | (Reg _ | Imm _ | Global _ | Null), _ -> false

let compare a b =
  let rank = function Reg _ -> 0 | Imm _ -> 1 | Global _ -> 2 | Null -> 3 in
  match (a, b) with
  | Reg x, Reg y -> String.compare x y
  | Imm x, Imm y -> Int.compare x y
  | Global x, Global y -> String.compare x y
  | Null, Null -> 0
  | _ -> Int.compare (rank a) (rank b)

(** Registers read by the operand (none for immediates and globals). *)
let uses = function Reg r -> [ r ] | Imm _ | Global _ | Null -> []

let pp ppf = function
  | Reg r -> Fmt.pf ppf "%%%s" r
  | Imm n -> Fmt.int ppf n
  | Global g -> Fmt.pf ppf "@@%s" g
  | Null -> Fmt.string ppf "null"

let to_string t = Fmt.str "%a" pp t
