(** Function duplication with identity tracking.

    The persistent-subprogram transformation (paper §4.2.4) clones a
    function and all PM-modifying callees. The clone's instructions
    receive fresh identities, and the returned mapping lets the caller
    translate facts keyed on original identities onto the clone. *)

type mapping = Iid.t Iid.Tbl.t
(** original instruction identity -> clone instruction identity *)

(** [func ~new_name f] duplicates [f] under [new_name]. *)
val func : new_name:string -> Func.t -> Func.t * mapping

(** [retarget_calls f ~rename] rewrites every call site whose callee is
    remapped by [rename]. *)
val retarget_calls : Func.t -> rename:(string -> string option) -> Func.t
