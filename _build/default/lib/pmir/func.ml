(** PMIR functions: a parameter list and an ordered list of labelled basic
    blocks. The first block is the entry block. Registers (including
    parameters) are function-local and mutable, so loops are expressed by
    reassignment rather than phi nodes. *)

type block = { label : string; instrs : Instr.t list }

type t = { name : string; params : string list; blocks : block list }

let make ~name ~params ~blocks = { name; params; blocks }

let name t = t.name
let params t = t.params
let blocks t = t.blocks

let entry t =
  match t.blocks with
  | [] -> invalid_arg (Fmt.str "Func.entry: %s has no blocks" t.name)
  | b :: _ -> b

let find_block t label = List.find_opt (fun b -> b.label = label) t.blocks

let instrs t = List.concat_map (fun b -> b.instrs) t.blocks

(** [find_instr t iid] returns the instruction with identity [iid]. *)
let find_instr t iid =
  List.find_opt (fun i -> Iid.equal (Instr.iid i) iid) (instrs t)

let map_blocks f t = { t with blocks = List.map f t.blocks }

(** [map_instrs f t] rebuilds every block by applying [f] to each
    instruction; [f] returns the list of instructions replacing it, which
    is how flush/fence insertion is implemented. *)
let map_instrs f t =
  map_blocks (fun b -> { b with instrs = List.concat_map f b.instrs }) t

let fold_instrs f acc t =
  List.fold_left (fun acc b -> List.fold_left f acc b.instrs) acc t.blocks

(** All registers defined anywhere in the function, parameters included. *)
let defined_regs t =
  let defs =
    fold_instrs
      (fun acc i -> match Instr.def i with Some d -> d :: acc | None -> acc)
      [] t
  in
  List.sort_uniq String.compare (t.params @ defs)

(** Call sites, in block order: [(iid, callee, args)]. *)
let call_sites t =
  fold_instrs
    (fun acc i ->
      match Instr.op i with
      | Call { callee; args; _ } -> (Instr.iid i, callee, args) :: acc
      | _ -> acc)
    [] t
  |> List.rev

let equal_modulo_iid a b =
  let block_eq x y =
    String.equal x.label y.label
    && List.equal
         (fun i j -> Instr.op_equal (Instr.op i) (Instr.op j))
         x.instrs y.instrs
  in
  String.equal a.name b.name
  && List.equal String.equal a.params b.params
  && List.equal block_eq a.blocks b.blocks
