(** Structural well-formedness checks for PMIR programs.

    Run before interpretation and after every Hippocrates transformation:
    a repaired program that fails validation would indicate the repair
    engine itself violated "do no harm" at the structural level. *)

type error = { where : string; what : string }

let err where fmt = Fmt.kstr (fun what -> { where; what }) fmt

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

let valid_sizes = [ 1; 2; 4; 8 ]

let check_func (prog : Program.t) (f : Func.t) : error list =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let fname = Func.name f in
  let blocks = Func.blocks f in
  (if blocks = [] then add (err fname "function has no blocks"));
  let labels = List.map (fun (b : Func.block) -> b.label) blocks in
  let dup =
    List.filter
      (fun l -> List.length (List.filter (String.equal l) labels) > 1)
      labels
  in
  (match dup with
  | [] -> ()
  | l :: _ -> add (err fname "duplicate block label %S" l));
  let has_label l = List.mem l labels in
  let defined = Func.defined_regs f in
  let known r = List.mem r defined in
  let check_value where (v : Value.t) =
    match v with
    | Value.Reg r when not (known r) ->
        add (err where "use of undefined register %%%s" r)
    | _ -> ()
  in
  let check_instr ~is_last (i : Instr.t) =
    let where = Fmt.str "%s at %a" fname Loc.pp (Instr.loc i) in
    List.iter (fun r -> if not (known r) then
        add (err where "use of undefined register %%%s" r))
      (Instr.uses i);
    List.iter
      (function
        | Value.Global g when not (List.mem_assoc g (Program.globals prog)) ->
            add (err where "reference to undefined global @%s" g)
        | _ -> ())
      (Instr.operands i);
    (match Instr.op i with
    | Store { size; _ } | Load { size; _ } ->
        if not (List.mem size valid_sizes) then
          add (err where "invalid access size %d" size)
    | Alloca { size; _ } ->
        if size <= 0 then add (err where "non-positive alloca size %d" size)
    | Call { callee; args; _ } ->
        if (not (Program.mem prog callee)) && not (Program.is_intrinsic callee)
        then add (err where "call to undefined function @%s" callee)
        else if Program.mem prog callee then (
          let arity = List.length (Func.params (Program.find_exn prog callee)) in
          if List.length args <> arity then
            add
              (err where "call to @%s with %d arguments (expects %d)" callee
                 (List.length args) arity))
    | Br { target } ->
        if not (has_label target) then
          add (err where "branch to undefined label %S" target)
    | Condbr { if_true; if_false; _ } ->
        List.iter
          (fun l ->
            if not (has_label l) then
              add (err where "branch to undefined label %S" l))
          [ if_true; if_false ]
    | _ -> ());
    if Instr.is_terminator i && not is_last then
      add (err where "terminator is not the last instruction of its block")
  in
  List.iter
    (fun (b : Func.block) ->
      (match List.rev b.instrs with
      | [] -> add (err fname "block %S is empty (needs a terminator)" b.label)
      | last :: _ ->
          if not (Instr.is_terminator last) then
            add (err fname "block %S does not end in a terminator" b.label));
      let n = List.length b.instrs in
      List.iteri (fun k i -> check_instr ~is_last:(k = n - 1) i) b.instrs)
    blocks;
  ignore check_value;
  List.rev !errors

(** [check prog] returns all well-formedness errors, empty when valid. *)
let check (prog : Program.t) : error list =
  let dups =
    let names = Program.func_names prog in
    List.filter
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      names
  in
  let dup_errors =
    List.map (fun n -> err "program" "duplicate function @%s" n) dups
  in
  (* Duplicate instruction identities would silently corrupt fix keying. *)
  let seen = Iid.Tbl.create 1024 in
  let iid_errors = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun i ->
          let id = Instr.iid i in
          if Iid.Tbl.mem seen id then
            iid_errors :=
              err (Func.name f) "duplicate instruction identity %a" Iid.pp id
              :: !iid_errors
          else Iid.Tbl.add seen id ())
        (Func.instrs f))
    (Program.funcs prog);
  dup_errors @ List.rev !iid_errors
  @ List.concat_map (check_func prog) (Program.funcs prog)

let is_valid prog = check prog = []

exception Invalid of error list

(** [check_exn prog] raises {!Invalid} if the program is malformed. *)
let check_exn prog =
  match check prog with [] -> () | errors -> raise (Invalid errors)
