(** PMIR functions: a parameter list and an ordered list of labelled basic
    blocks. The first block is the entry block. Registers (including
    parameters) are function-local and mutable, so loops are expressed by
    reassignment rather than phi nodes. *)

type block = { label : string; instrs : Instr.t list }

type t

val make : name:string -> params:string list -> blocks:block list -> t
val name : t -> string
val params : t -> string list
val blocks : t -> block list

(** The entry block; raises [Invalid_argument] on an empty function. *)
val entry : t -> block

val find_block : t -> string -> block option

(** All instructions, in block order. *)
val instrs : t -> Instr.t list

(** [find_instr t iid] returns the instruction with identity [iid]. *)
val find_instr : t -> Iid.t -> Instr.t option

val map_blocks : (block -> block) -> t -> t

(** [map_instrs f t] rebuilds every block by applying [f] to each
    instruction; [f] returns the list of instructions replacing it, which
    is how flush/fence insertion is implemented. *)
val map_instrs : (Instr.t -> Instr.t list) -> t -> t

val fold_instrs : ('a -> Instr.t -> 'a) -> 'a -> t -> 'a

(** All registers defined anywhere in the function, parameters included. *)
val defined_regs : t -> string list

(** Call sites in block order: [(identity, callee, arguments)]. *)
val call_sites : t -> (Iid.t * string * Value.t list) list

(** Structural equality up to instruction identities and locations. *)
val equal_modulo_iid : t -> t -> bool
