(** Textual serialization of PMIR programs.

    The format round-trips through {!Parser} (modulo instruction
    identities, which are allocated fresh on parse). It is the on-disk
    form of subject programs and the diff format in which Hippocrates
    reports its fixes. *)

val pp_block : Format.formatter -> Func.block -> unit
val pp_func : Format.formatter -> Func.t -> unit
val pp_program : Format.formatter -> Program.t -> unit
val func_to_string : Func.t -> string
val to_string : Program.t -> string
