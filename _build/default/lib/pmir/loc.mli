(** Source locations attached to PMIR instructions.

    PMIR plays the role of LLVM bitcode in the original Hippocrates: every
    instruction carries debug information mapping it back to a
    [(file, line)] pair, so that bug-finder trace events can be correlated
    with program points — exactly as the LLVM pass correlates pmemcheck
    output with bitcode through DWARF metadata. *)

type t

(** [make ~file ~line] builds a location. *)
val make : file:string -> line:int -> t

(** The absent location (pretty-printed as [<none>:0]). *)
val none : t

val is_none : t -> bool
val file : t -> string
val line : t -> int
val equal : t -> t -> bool

(** Total order: by file name, then line. *)
val compare : t -> t -> int

(** Renders as ["file:line"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
