(** Structural well-formedness checks for PMIR programs.

    Run before interpretation and after every Hippocrates transformation:
    a repaired program that fails validation would indicate the repair
    engine itself violated "do no harm" at the structural level.

    Checked: nonempty functions; unique block labels; every block ends in
    exactly one terminator (and none mid-block); uses of defined registers
    and declared globals only; valid access sizes; calls target defined
    functions or intrinsics with matching arity; and — crucial for fix
    keying — no duplicate instruction identities program-wide. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

(** [check prog] returns all well-formedness errors, empty when valid. *)
val check : Program.t -> error list

val is_valid : Program.t -> bool

exception Invalid of error list

(** [check_exn prog] raises {!Invalid} if the program is malformed. *)
val check_exn : Program.t -> unit
