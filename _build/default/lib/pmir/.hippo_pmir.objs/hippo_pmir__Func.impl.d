lib/pmir/func.ml: Fmt Iid Instr List String
