lib/pmir/parser.ml: Fmt Fun Func Iid Instr List Loc Program String Value
