lib/pmir/loc.mli: Format
