lib/pmir/iid.ml: Fmt Hashtbl Int Map Set String
