lib/pmir/builder.ml: Func Iid Instr List Loc Option Printf Program Value
