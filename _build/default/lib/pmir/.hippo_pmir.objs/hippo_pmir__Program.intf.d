lib/pmir/program.mli: Func Iid Instr
