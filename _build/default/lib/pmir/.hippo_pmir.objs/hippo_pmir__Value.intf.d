lib/pmir/value.mli: Format
