lib/pmir/instr.mli: Format Iid Loc Value
