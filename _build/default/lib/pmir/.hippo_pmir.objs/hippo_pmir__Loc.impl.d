lib/pmir/loc.ml: Fmt Int String
