lib/pmir/clone.ml: Func Iid Instr List
