lib/pmir/program.ml: Fmt Func Iid List Map Option String
