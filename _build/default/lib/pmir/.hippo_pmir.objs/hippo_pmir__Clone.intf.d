lib/pmir/clone.mli: Func Iid
