lib/pmir/func.mli: Iid Instr Value
