lib/pmir/printer.mli: Format Func Program
