lib/pmir/parser.mli: Program
