lib/pmir/instr.ml: Bool Fmt Iid List Loc Option String Value
