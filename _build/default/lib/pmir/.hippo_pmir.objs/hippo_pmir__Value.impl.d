lib/pmir/value.ml: Fmt Int String
