lib/pmir/printer.ml: Fmt Func Instr List Program
