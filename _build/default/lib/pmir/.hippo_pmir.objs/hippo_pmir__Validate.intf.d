lib/pmir/validate.mli: Format Program
