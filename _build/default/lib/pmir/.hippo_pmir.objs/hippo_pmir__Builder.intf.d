lib/pmir/builder.mli: Instr Program Value
