lib/pmir/validate.ml: Fmt Func Iid Instr List Loc Program String Value
