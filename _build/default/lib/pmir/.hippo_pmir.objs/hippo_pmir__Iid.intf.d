lib/pmir/iid.mli: Format Hashtbl Map Set
