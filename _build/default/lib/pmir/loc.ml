(** Source locations attached to PMIR instructions.

    PMIR plays the role of LLVM bitcode in the original Hippocrates: every
    instruction carries debug information mapping it back to a (file, line)
    pair so that bug-finder trace events can be correlated with program
    points, exactly as the LLVM pass correlates pmemcheck output with
    bitcode through DWARF metadata. *)

type t = { file : string; line : int }

let make ~file ~line = { file; line }

let none = { file = "<none>"; line = 0 }

let is_none t = t.file = "<none>" && t.line = 0

let file t = t.file
let line t = t.line

let equal a b = a.line = b.line && String.equal a.file b.file

let compare a b =
  match String.compare a.file b.file with
  | 0 -> Int.compare a.line b.line
  | c -> c

let pp ppf t = Fmt.pf ppf "%s:%d" t.file t.line

let to_string t = Fmt.str "%a" pp t
