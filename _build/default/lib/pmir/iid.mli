(** Stable instruction identities.

    Fixes computed by Hippocrates are keyed on the identity of the buggy
    store / flush / crash-point instruction. Identities must survive
    program transformation: inserting a flush after a store must not
    invalidate the key of any other pending fix. Instructions are
    therefore identified by a [(function, serial)] pair whose serial is
    allocated once, at instruction creation, and never reassigned — never
    by position. *)

type t

(** [fresh ~func] allocates a new identity in function [func]. Serials
    come from a process-global counter; uniqueness within a program is all
    the algorithms rely on. *)
val fresh : func:string -> t

(** [of_serial ~func n] reconstitutes an identity recorded in a trace
    file. Does not touch the fresh-serial counter. *)
val of_serial : func:string -> int -> t

(** [in_func t name] rebinds the identity to another function, keeping the
    serial (used when tracking clone provenance). *)
val in_func : t -> string -> t

val func : t -> string
val serial : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Renders as ["func#serial"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
