(** PMIR instructions.

    The instruction set mirrors the LLVM subset that persistent-memory
    programs and the Hippocrates pass care about: ordinary loads and
    stores, pointer arithmetic ([gep]), calls, branches — plus the x86
    persistence primitives as first-class instructions: cache-line flushes
    ([clwb], [clflushopt], [clflush]) and memory fences ([sfence],
    [mfence]).

    [Crash] marks a simulated crash point: the instruction [I] of the
    paper's durability ordering [X -> F(X) -> M -> I]. The bug finder
    reports every PM store not yet durable when a crash point (or program
    exit) is reached. *)

type flush_kind =
  | Clwb  (** weakly ordered write-back, needs a fence; keeps the line *)
  | Clflushopt  (** weakly ordered flush-and-evict, needs a fence *)
  | Clflush  (** legacy serialized flush; durable without a fence *)

type fence_kind =
  | Sfence  (** orders stores and flushes *)
  | Mfence  (** orders all memory operations *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type op =
  | Store of { addr : Value.t; value : Value.t; size : int; nontemporal : bool }
  | Load of { dst : string; addr : Value.t; size : int }
  | Flush of { kind : flush_kind; addr : Value.t }
  | Fence of { kind : fence_kind }
  | Binop of { dst : string; op : binop; lhs : Value.t; rhs : Value.t }
  | Mov of { dst : string; src : Value.t }
  | Gep of { dst : string; base : Value.t; offset : Value.t }
      (** [dst = base + offset] in bytes; distinct from [Add] because alias
          analysis propagates points-to facts through it *)
  | Alloca of { dst : string; size : int }  (** volatile stack allocation *)
  | Call of { dst : string option; callee : string; args : Value.t list }
  | Br of { target : string }
  | Condbr of { cond : Value.t; if_true : string; if_false : string }
  | Ret of Value.t option
  | Crash

type t

val make : iid:Iid.t -> loc:Loc.t -> op -> t
val iid : t -> Iid.t
val loc : t -> Loc.t
val op : t -> op

(** [with_op t op] keeps the identity and location, replaces the
    operation (used when retargeting call sites). *)
val with_op : t -> op -> t

(** The register defined by the instruction, if any. *)
val def : t -> string option

(** All operand values, in syntactic order. *)
val operands : t -> Value.t list

(** Registers read by the instruction. *)
val uses : t -> string list

val is_terminator : t -> bool
val is_store : t -> bool
val is_flush : t -> bool
val is_fence : t -> bool

val flush_kind_to_string : flush_kind -> string
val flush_kind_of_string : string -> flush_kind option
val fence_kind_to_string : fence_kind -> string
val fence_kind_of_string : string -> fence_kind option
val binop_to_string : binop -> string
val binop_of_string : string -> binop option

(** Structural equality of operations, ignoring identities and locations
    (the round-trip property's notion of equality). *)
val op_equal : op -> op -> bool

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
