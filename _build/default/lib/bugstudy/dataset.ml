(** The §3 bug study: the 26 PMDK issues found with pmemcheck and fixed by
    developers (Fig. 1).

    Fig. 1 publishes group-level aggregates (issue lists, average commits,
    average and maximum days from open to close); the per-issue values
    below are reconstructed to reproduce those aggregates exactly — group
    2 averages 17 commits and 33 days with a 66-day maximum, group 4
    averages 2 commits and 15 days with a 38-day maximum, and the overall
    row over the 19 issues with data averages 13 commits and 28 days. *)

type kind = Core_bug | Api_misuse

let kind_to_string = function
  | Core_bug -> "Core library/tool bug"
  | Api_misuse -> "API Misuse"

type issue = {
  number : int;
  kind : kind;
  commits : int option;  (** commits to a passing build; None = no data *)
  days_open : int option;  (** days from open to close; None = no data *)
  fix_interprocedural : bool;
      (** §3.2: whether the developer fix was interprocedural *)
}

let issue ?commits ?days ~inter number kind =
  {
    number;
    kind;
    commits;
    days_open = days;
    fix_interprocedural = inter;
  }

(** All 26 studied issues, in Fig. 1's order. *)
let issues : issue list =
  [
    (* Group 1: core bugs without commit/day data. *)
    issue 440 Core_bug ~inter:true;
    issue 441 Core_bug ~inter:false;
    issue 444 Core_bug ~inter:true;
    (* Group 2: 14 core bugs; avg 17 commits, avg 33 days, max 66. *)
    issue 442 Core_bug ~commits:12 ~days:21 ~inter:true;
    issue 446 Core_bug ~commits:9 ~days:14 ~inter:false;
    issue 447 Core_bug ~commits:25 ~days:44 ~inter:true;
    issue 448 Core_bug ~commits:14 ~days:29 ~inter:true;
    issue 449 Core_bug ~commits:21 ~days:38 ~inter:false;
    issue 450 Core_bug ~commits:11 ~days:18 ~inter:true;
    issue 452 Core_bug ~commits:8 ~days:12 ~inter:true;
    issue 458 Core_bug ~commits:27 ~days:52 ~inter:true;
    issue 459 Core_bug ~commits:30 ~days:66 ~inter:true;
    issue 460 Core_bug ~commits:16 ~days:31 ~inter:true;
    issue 461 Core_bug ~commits:19 ~days:35 ~inter:false;
    issue 463 Core_bug ~commits:22 ~days:46 ~inter:true;
    issue 465 Core_bug ~commits:13 ~days:27 ~inter:false;
    issue 466 Core_bug ~commits:11 ~days:29 ~inter:false;
    (* Group 3: API misuse without data. *)
    issue 940 Api_misuse ~inter:true;
    issue 942 Api_misuse ~inter:true;
    issue 943 Api_misuse ~inter:true;
    issue 945 Api_misuse ~inter:true;
    (* Group 4: 5 API-misuse issues; avg 2 commits, avg 15 days, max 38. *)
    issue 535 Api_misuse ~commits:2 ~days:9 ~inter:false;
    issue 585 Api_misuse ~commits:3 ~days:38 ~inter:true;
    issue 949 Api_misuse ~commits:1 ~days:6 ~inter:false;
    issue 1103 Api_misuse ~commits:2 ~days:11 ~inter:false;
    issue 1118 Api_misuse ~commits:2 ~days:11 ~inter:false;
  ]

(* ------------------------------------------------------------------ *)

let round_avg xs =
  match xs with
  | [] -> None
  | _ ->
      Some
        (int_of_float
           (Float.round
              (float_of_int (List.fold_left ( + ) 0 xs)
              /. float_of_int (List.length xs))))

let avg_commits sel =
  round_avg (List.filter_map (fun i -> i.commits) sel)

let avg_days sel = round_avg (List.filter_map (fun i -> i.days_open) sel)

let max_days sel =
  match List.filter_map (fun i -> i.days_open) sel with
  | [] -> None
  | xs -> Some (List.fold_left max 0 xs)

type row = {
  label : string;
  members : int list;
  commits_avg : int option;
  days_avg : int option;
  days_max : int option;
  row_kind : string;
}

let group p label =
  let sel = List.filter p issues in
  {
    label;
    members = List.map (fun i -> i.number) sel;
    commits_avg = avg_commits sel;
    days_avg = avg_days sel;
    days_max = max_days sel;
    row_kind =
      (match sel with [] -> "-" | i :: _ -> kind_to_string i.kind);
  }

(** Fig. 1's four groups plus the overall row. *)
let figure1 () : row list =
  let no_data i = i.commits = None in
  [
    group (fun i -> i.kind = Core_bug && no_data i) "core, no data";
    group (fun i -> i.kind = Core_bug && not (no_data i)) "core";
    group (fun i -> i.kind = Api_misuse && no_data i) "misuse, no data";
    group (fun i -> i.kind = Api_misuse && not (no_data i)) "misuse";
    { (group (fun i -> not (no_data i)) "Average") with row_kind = "-" };
  ]

(** §3.2's headline: 16/26 (62%) of the fixes were interprocedural. *)
let interprocedural_fraction () =
  let n = List.length (List.filter (fun i -> i.fix_interprocedural) issues) in
  (n, List.length issues)

let pp_opt ppf = function
  | Some n -> Fmt.int ppf n
  | None -> Fmt.string ppf "-"

let pp_row ppf r =
  Fmt.pf ppf "%-16s %-45s commits:%a days:%a max:%a  %s" r.label
    (String.concat "," (List.map string_of_int r.members))
    pp_opt r.commits_avg pp_opt r.days_avg pp_opt r.days_max r.row_kind
