(** The §3 bug study: the 26 PMDK issues found with pmemcheck and fixed by
    developers (Fig. 1).

    Fig. 1 publishes group-level aggregates; per-issue values here are
    reconstructed to reproduce those aggregates exactly (core group:
    17 commits / 33 days / 66 max; misuse group: 2 / 15 / 38; overall:
    13 / 28 / 66; 16/26 interprocedural fixes). *)

type kind = Core_bug | Api_misuse

val kind_to_string : kind -> string

type issue = {
  number : int;
  kind : kind;
  commits : int option;  (** commits to a passing build; None = no data *)
  days_open : int option;
  fix_interprocedural : bool;  (** §3.2 classification of the dev fix *)
}

(** All 26 studied issues, in Fig. 1's order. *)
val issues : issue list

type row = {
  label : string;
  members : int list;
  commits_avg : int option;
  days_avg : int option;
  days_max : int option;
  row_kind : string;
}

(** Fig. 1's four groups plus the overall row (over issues with data). *)
val figure1 : unit -> row list

(** §3.2's headline: interprocedural fixes out of all studied fixes. *)
val interprocedural_fraction : unit -> int * int

val pp_row : Format.formatter -> row -> unit
