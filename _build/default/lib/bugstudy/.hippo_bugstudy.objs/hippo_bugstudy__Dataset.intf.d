lib/bugstudy/dataset.mli: Format
