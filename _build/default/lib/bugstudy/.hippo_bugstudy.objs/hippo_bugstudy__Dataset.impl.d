lib/bugstudy/dataset.ml: Float Fmt List String
