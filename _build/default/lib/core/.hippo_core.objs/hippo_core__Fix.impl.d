lib/core/fix.ml: Fmt Hippo_pmcheck Hippo_pmir Iid Instr List Report String Value
