lib/core/driver.ml: Apply Compute Fix Fmt Gc Heuristic Hippo_alias Hippo_pmcheck Hippo_pmir Interp List Program Reduce Report Unix_time Verify
