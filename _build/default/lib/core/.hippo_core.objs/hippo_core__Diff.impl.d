lib/core/diff.ml: Fmt Func Hippo_pmir Iid Instr List Loc Program String
