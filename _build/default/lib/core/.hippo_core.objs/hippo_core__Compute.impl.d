lib/core/compute.ml: Fix Fmt Hippo_pmcheck Hippo_pmir Iid Instr List Program Report Value
