lib/core/heuristic.ml: Fix Hippo_alias Hippo_pmcheck Hippo_pmir Iid List Option Program Reduce Report Trace
