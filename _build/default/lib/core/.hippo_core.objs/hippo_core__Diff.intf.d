lib/core/diff.mli: Format Func Hippo_pmir Instr Program
