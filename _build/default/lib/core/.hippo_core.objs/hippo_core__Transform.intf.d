lib/core/transform.mli: Fix Hippo_alias Hippo_pmir Program
