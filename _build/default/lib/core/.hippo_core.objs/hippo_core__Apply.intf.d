lib/core/apply.mli: Fix Hippo_alias Hippo_pmir Program
