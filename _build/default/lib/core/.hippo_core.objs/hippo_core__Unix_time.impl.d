lib/core/unix_time.ml: Sys
