lib/core/apply.ml: Fix Fmt Func Hippo_alias Hippo_pmir Iid Instr List Option Program Transform Validate Value
