lib/core/verify.mli: Format Hippo_pmcheck Hippo_pmir Interp Program Report
