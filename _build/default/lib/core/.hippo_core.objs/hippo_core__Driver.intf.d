lib/core/driver.mli: Apply Fix Format Heuristic Hippo_alias Hippo_pmcheck Hippo_pmir Interp Program Report Verify
