lib/core/verify.ml: Bytes Fmt Hippo_pmcheck Hippo_pmir Interp List Mem Program Report
