lib/core/reduce.ml: Fix Func Hippo_pmcheck Hippo_pmir Iid Instr List Program Report Value
