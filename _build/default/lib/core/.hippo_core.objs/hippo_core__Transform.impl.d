lib/core/transform.ml: Clone Fix Fmt Func Hashtbl Hippo_alias Hippo_pmir Iid Instr List Program
