lib/core/fix.mli: Format Hippo_pmcheck Hippo_pmir Iid Instr Report Value
