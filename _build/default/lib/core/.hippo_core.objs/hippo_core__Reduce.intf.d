lib/core/reduce.mli: Fix Hippo_pmcheck Hippo_pmir Program Report
