lib/core/compute.mli: Fix Hippo_pmcheck Hippo_pmir Iid Program Report Value
