lib/core/heuristic.mli: Fix Hippo_alias Hippo_pmcheck Hippo_pmir Iid Program Reduce Report
