(** Human-readable repair reports: what Hippocrates changed, at source
    level.

    §5.2 of the paper discusses mapping the generated fixes back onto
    source code; because Hippocrates only inserts instructions and adds
    cloned functions, the "decompilation" problem collapses to an
    insertion diff. Instructions are matched across the original and
    repaired programs by their stable identities, so the diff is exact,
    not heuristic. *)

open Hippo_pmir

type change =
  | Inserted of { func : string; after : Instr.t option; instr : Instr.t }
      (** a flush/fence (or portable persist call) inserted after the
          given instruction ([None] = at function entry) *)
  | New_function of { func : Func.t; cloned_from : string option }

(** [changes ~original ~repaired] computes the insertion diff. *)
let changes ~(original : Program.t) ~(repaired : Program.t) : change list =
  let orig_iids = Iid.Tbl.create 1024 in
  List.iter
    (fun f ->
      List.iter
        (fun i -> Iid.Tbl.replace orig_iids (Instr.iid i) ())
        (Func.instrs f))
    (Program.funcs original);
  let acc = ref [] in
  List.iter
    (fun f ->
      let name = Func.name f in
      match Program.find original name with
      | None ->
          (* a persistent-subprogram clone: recover its origin by name *)
          let cloned_from =
            match String.rindex_opt name '_' with
            | Some k when String.sub name k (String.length name - k) |> fun s ->
                          String.length s >= 3 && String.sub s 0 3 = "_PM" ->
                let base = String.sub name 0 k in
                if Program.mem original base then Some base else None
            | _ -> None
          in
          acc := New_function { func = f; cloned_from } :: !acc
      | Some _ ->
          (* walk instructions; anything with an unknown identity was
             inserted by the repair *)
          List.iter
            (fun (b : Func.block) ->
              let prev = ref None in
              List.iter
                (fun i ->
                  if Iid.Tbl.mem orig_iids (Instr.iid i) then prev := Some i
                  else
                    acc :=
                      Inserted { func = name; after = !prev; instr = i }
                      :: !acc)
                b.instrs)
            (Func.blocks f))
    (Program.funcs repaired);
  List.rev !acc

let pp_change ppf = function
  | Inserted { func; after; instr } -> (
      match after with
      | Some a ->
          Fmt.pf ppf "@[<v>--- @@%s at %a@,    %a@,  + %a@]" func Loc.pp
            (Instr.loc a) Instr.pp_op (Instr.op a) Instr.pp_op (Instr.op instr)
      | None ->
          Fmt.pf ppf "@[<v>--- @@%s (entry)@,  + %a@]" func Instr.pp_op
            (Instr.op instr))
  | New_function { func; cloned_from } ->
      Fmt.pf ppf "@[<v>+++ new function @@%s%s (%d instructions)@]"
        (Func.name func)
        (match cloned_from with
        | Some base -> Fmt.str " (persistent subprogram of @@%s)" base
        | None -> "")
        (List.length (Func.instrs func))

(** [report ~original ~repaired] renders the whole repair as a patch-style
    summary. *)
let report ~original ~repaired : string =
  let cs = changes ~original ~repaired in
  if cs = [] then "no changes"
  else Fmt.str "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_change) cs

(** Count of inserted instructions (insertions plus clone bodies). *)
let inserted_instrs ~original ~repaired =
  List.fold_left
    (fun n -> function
      | Inserted _ -> n + 1
      | New_function { func; _ } -> n + List.length (Func.instrs func))
    0
    (changes ~original ~repaired)
