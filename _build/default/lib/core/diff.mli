(** Human-readable repair reports: what Hippocrates changed, at source
    level.

    Because Hippocrates only inserts instructions and adds cloned
    functions, §5.2's source-mapping problem collapses to an insertion
    diff; instructions are matched across the original and repaired
    programs by their stable identities, so the diff is exact. *)

open Hippo_pmir

type change =
  | Inserted of { func : string; after : Instr.t option; instr : Instr.t }
      (** a flush/fence (or portable persist call) inserted after the
          given instruction ([None] = at function entry) *)
  | New_function of { func : Func.t; cloned_from : string option }

val changes : original:Program.t -> repaired:Program.t -> change list
val pp_change : Format.formatter -> change -> unit

(** Patch-style summary of the whole repair. *)
val report : original:Program.t -> repaired:Program.t -> string

(** Inserted instructions (insertions plus clone bodies). *)
val inserted_instrs : original:Program.t -> repaired:Program.t -> int
