(** Zipfian key-chooser, following the YCSB implementation (Gray et al.'s
    rejection-free formula). Item 0 is the most popular. *)

type t

(** [create ?theta items]; YCSB's default skew is [theta = 0.99]. *)
val create : ?theta:float -> int -> t

val next : t -> Rng.t -> int

(** "Latest" distribution for workload D: zipfian over recency — with [n]
    inserted items, returns an index near [n-1] most of the time. *)
val latest : t -> Rng.t -> n:int -> int
