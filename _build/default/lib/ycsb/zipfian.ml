(** Zipfian key-chooser, following the YCSB implementation (Gray et al.'s
    rejection-free formula as used in [ZipfianGenerator.java]). Item 0 is
    the most popular. *)

type t = {
  items : int;
  theta : float;
  zetan : float;
  zeta2 : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !s

let create ?(theta = 0.99) items =
  if items <= 0 then invalid_arg "Zipfian.create: items must be positive";
  let zetan = zeta items theta in
  let zeta2 = zeta 2 theta in
  {
    items;
    theta;
    zetan;
    zeta2;
    alpha = 1.0 /. (1.0 -. theta);
    eta =
      (1.0 -. Float.pow (2.0 /. float_of_int items) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan));
  }

let next t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let v =
      float_of_int t.items
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    min (t.items - 1) (int_of_float v)

(** "Latest" distribution for workload D: zipfian over recency. With [n]
    inserted items, returns an index near [n-1] most of the time. *)
let latest t rng ~n =
  if n <= 0 then 0
  else
    let off = next t rng in
    max 0 (n - 1 - (off mod n))
