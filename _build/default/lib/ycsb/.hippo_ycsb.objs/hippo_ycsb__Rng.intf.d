lib/ycsb/rng.mli:
