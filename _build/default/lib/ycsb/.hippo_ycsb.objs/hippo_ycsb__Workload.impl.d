lib/ycsb/workload.ml: Char Fmt List Rng String Zipfian
