lib/ycsb/rng.ml:
