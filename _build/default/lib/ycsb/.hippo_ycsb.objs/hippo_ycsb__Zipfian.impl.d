lib/ycsb/zipfian.ml: Float Rng
