lib/ycsb/workload.mli:
