lib/ycsb/zipfian.mli: Rng
