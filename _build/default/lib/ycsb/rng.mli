(** Deterministic splitmix-style PRNG.

    The benchmark harness must be reproducible run-to-run (trials differ
    only by seed), so no dependence on [Random]'s global state. *)

type t

val create : seed:int -> t

(** Next nonnegative pseudo-random int. *)
val next : t -> int

(** [int t bound] in [0, bound); raises on nonpositive bounds. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float
