(** Deterministic splitmix64-style PRNG.

    The benchmark harness must be reproducible run-to-run (trials differ
    only by seed), so no dependence on [Random]'s global state. *)

type t = { mutable state : int }

let create ~seed = { state = (seed * 0x9E3779B9) lor 1 }

let next t =
  (* splitmix64 finalizer with 63-bit constants (OCaml ints are 63-bit) *)
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let float t = float_of_int (next t land 0xFFFFFFFFFFFF) /. 281474976710656.0
