(* qcheck properties of the persistency state machine: random sequences
   of PM stores, flushes and fences must maintain the model's invariants,
   and the durable image must change only at durability events. *)

open Hippo_pmir
open Hippo_pmcheck

type op = Op_store of int * int | Op_flush of int * Instr.flush_kind | Op_fence

let gen_ops : op list QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_range 0 7 in
  list_size (int_range 1 40)
    (oneof
       [
         map2 (fun s v -> Op_store (s, v)) slot (int_range 1 255);
         map2
           (fun s k -> Op_flush (s, k))
           slot
           (oneofl [ Instr.Clwb; Instr.Clflushopt; Instr.Clflush ]);
         return Op_fence;
       ])

let arb_ops =
  QCheck.make gen_ops
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Op_store (s, v) -> Printf.sprintf "store %d<-%d" s v
             | Op_flush (s, k) ->
                 Printf.sprintf "flush.%s %d" (Instr.flush_kind_to_string k) s
             | Op_fence -> "fence")
           ops))

(* replay an op list through a fresh machine, returning the state and the
   history of durable images *)
let replay ops =
  let ps = Pstate.create () in
  let m = Mem.create [] in
  let base = Mem.alloc_pm m 1024 in
  let seq = ref 0 in
  let images = ref [ Mem.crash_image m ] in
  List.iter
    (fun op ->
      (match op with
      | Op_store (s, v) ->
          let addr = base + (s * 64) in
          Mem.store m ~addr ~size:8 v;
          ignore
            (Pstate.store ps ~iid:(Iid.fresh ~func:"t") ~loc:Loc.none
               ~stack:[] ~addr ~size:8 ~seq:!seq)
      | Op_flush (s, k) ->
          ignore
            (Pstate.flush ps m ~iid:(Iid.fresh ~func:"t") ~kind:k
               ~addr:(base + (s * 64)))
      | Op_fence -> ignore (Pstate.fence ps m ~seq:!seq));
      incr seq;
      images := Mem.crash_image m :: !images)
    ops;
  (ps, m, List.rev !images)

let prop_no_pending_after_fence =
  QCheck.Test.make ~name:"fence leaves nothing pending" ~count:300 arb_ops
    (fun ops ->
      let ps, _, _ = replay (ops @ [ Op_fence ]) in
      Pstate.pending_count ps = 0)

let prop_fully_persisted_after_flush_all_fence =
  QCheck.Test.make
    ~name:"flushing every line then fencing persists everything" ~count:300
    arb_ops
    (fun ops ->
      let all_flushes = List.init 8 (fun s -> Op_flush (s, Instr.Clwb)) in
      let ps, m, _ = replay (ops @ all_flushes @ [ Op_fence ]) in
      Pstate.unpersisted_count ps = 0
      && Bytes.equal (Mem.crash_image m) (Mem.working_image m))

let prop_image_changes_only_at_durability_events =
  QCheck.Test.make
    ~name:"durable image changes only at clflush or fence" ~count:300 arb_ops
    (fun ops ->
      let _, _, images = replay ops in
      let rec walk ops images =
        match (ops, images) with
        | op :: ops', before :: (after :: _ as images') ->
            let durability_event =
              match op with
              | Op_flush (_, Instr.Clflush) | Op_fence -> true
              | _ -> false
            in
            (durability_event || Bytes.equal before after)
            && walk ops' images'
        | _ -> true
      in
      walk ops images)

let prop_bug_counts_consistent =
  QCheck.Test.make
    ~name:"reported bugs equal the unpersisted-record count" ~count:300
    arb_ops
    (fun ops ->
      let ps, _, _ = replay ops in
      let crash : Report.crash_info =
        { crash_iid = None; crash_loc = Loc.none; crash_stack = [] }
      in
      List.length (Pstate.unpersisted_bugs ps ~crash)
      = Pstate.unpersisted_count ps)

let prop_missing_fence_only_when_pending =
  QCheck.Test.make
    ~name:"missing-fence reports correspond to pending records" ~count:300
    arb_ops
    (fun ops ->
      let ps, _, _ = replay ops in
      let crash : Report.crash_info =
        { crash_iid = None; crash_loc = Loc.none; crash_stack = [] }
      in
      let bugs = Pstate.unpersisted_bugs ps ~crash in
      let fence_bugs =
        List.length
          (List.filter
             (fun (b : Report.bug) -> b.Report.kind = Report.Missing_fence)
             bugs)
      in
      fence_bugs = Pstate.pending_count ps)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_no_pending_after_fence;
    QCheck_alcotest.to_alcotest prop_fully_persisted_after_flush_all_fence;
    QCheck_alcotest.to_alcotest prop_image_changes_only_at_durability_events;
    QCheck_alcotest.to_alcotest prop_bug_counts_consistent;
    QCheck_alcotest.to_alcotest prop_missing_fence_only_when_pending;
  ]
