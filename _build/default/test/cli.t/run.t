The command-line workflow, end to end, over a textual PMIR program.

  $ cat > demo.pmir <<'PMIR'
  > ; Listing 5 from the paper, in textual PMIR
  > func @update(%addr, %idx, %val) {
  > entry:
  >   %slot = gep %addr, %idx
  >   store.i8 %val -> %slot @ "update.c":2
  >   ret
  > }
  > 
  > func @modify(%addr) {
  > entry:
  >   call @update(%addr, 0, 42) @ "modify.c":5
  >   ret
  > }
  > 
  > func @main() {
  > entry:
  >   %vol = call @malloc(64)
  >   %pm = call @pm_alloc(64)
  >   %i = mov 0
  >   br head
  > head:
  >   %c = lt %i, 100
  >   condbr %c, body, done
  > body:
  >   call @modify(%vol) @ "foo.c":18
  >   %i = add %i, 1
  >   br head
  > done:
  >   call @modify(%pm) @ "foo.c":19
  >   crash @ "foo.c":23
  >   ret
  > }
  > PMIR

The bug finder reports the unflushed PM store (exit code 1 signals bugs):

  $ hippocrates check demo.pmir --trace-out demo.trace
  main() returned 0
  PM stores: 1, flushes: 0, fences: 0
  durability bugs: 2
    [missing-flush&fence] store at update.c:2 (update#2), 0x40000000+1, unpersisted at foo.c:23
    [missing-flush&fence] store at update.c:2 (update#2), 0x40000000+1, unpersisted at <exit>:0
  trace written to demo.trace
  [1]

Repair from the on-disk trace; the heuristic hoists to the PM call site:

  $ hippocrates fix demo.pmir --trace demo.trace -o demo.fixed.pmir
  bugs: 2; fixes: 1 (0 intra, 1 inter); reduction eliminated 2; clones: 2

  $ grep -A4 'func @update_PM' demo.fixed.pmir
  func @update_PM(%addr, %idx, %val) {
  entry:
    %slot = gep %addr, %idx @ "update.pmir":4
    store.i8 %val -> %slot @ "update.c":2
    flush.clwb %slot @ "update.c":2

The repaired program is clean:

  $ hippocrates check demo.fixed.pmir
  main() returned 0
  PM stores: 1, flushes: 1, fences: 1
  durability bugs: 0

Intra-only repair (Phase 3 disabled) fixes in-line instead:

  $ hippocrates fix demo.pmir --trace demo.trace --no-hoist -o demo.intra.pmir
  bugs: 2; fixes: 2 (2 intra, 0 inter); reduction eliminated 2; clones: 0

  $ grep -c 'flush.clwb' demo.intra.pmir
  1
  $ hippocrates check demo.intra.pmir
  main() returned 0
  PM stores: 1, flushes: 101, fences: 101
  durability bugs: 0

The PMTest trace dialect round-trips through fix as well:

  $ hippocrates check demo.pmir --format pmtest --trace-out demo.pmtest > /dev/null
  [1]
  $ hippocrates fix demo.pmir --trace demo.pmtest --format pmtest -o demo.fixed2.pmir
  bugs: 2; fixes: 1 (0 intra, 1 inter); reduction eliminated 2; clones: 2
  $ diff demo.fixed.pmir demo.fixed2.pmir

The corpus listing shows all 23 reproduced bugs:

  $ hippocrates corpus | wc -l
  23
