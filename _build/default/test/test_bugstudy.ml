(* The §3 bug study dataset must reproduce Fig. 1's aggregates exactly. *)

open Hippo_bugstudy

let row label =
  List.find (fun (r : Dataset.row) -> r.Dataset.label = label) (Dataset.figure1 ())

let test_group_sizes () =
  Alcotest.(check int) "26 issues" 26 (List.length Dataset.issues);
  Alcotest.(check int) "3 core without data" 3 (List.length (row "core, no data").Dataset.members);
  Alcotest.(check int) "14 core with data" 14 (List.length (row "core").Dataset.members);
  Alcotest.(check int) "4 misuse without data" 4 (List.length (row "misuse, no data").Dataset.members);
  Alcotest.(check int) "5 misuse with data" 5 (List.length (row "misuse").Dataset.members)

let test_core_aggregates () =
  let r = row "core" in
  Alcotest.(check (option int)) "avg 17 commits" (Some 17) r.Dataset.commits_avg;
  Alcotest.(check (option int)) "avg 33 days" (Some 33) r.Dataset.days_avg;
  Alcotest.(check (option int)) "max 66 days" (Some 66) r.Dataset.days_max

let test_misuse_aggregates () =
  let r = row "misuse" in
  Alcotest.(check (option int)) "avg 2 commits" (Some 2) r.Dataset.commits_avg;
  Alcotest.(check (option int)) "avg 15 days" (Some 15) r.Dataset.days_avg;
  Alcotest.(check (option int)) "max 38 days" (Some 38) r.Dataset.days_max

let test_overall_row () =
  let r = row "Average" in
  Alcotest.(check (option int)) "avg 13 commits" (Some 13) r.Dataset.commits_avg;
  Alcotest.(check (option int)) "avg 28 days" (Some 28) r.Dataset.days_avg;
  Alcotest.(check (option int)) "max 66 days" (Some 66) r.Dataset.days_max

let test_interprocedural_fraction () =
  let n, total = Dataset.interprocedural_fraction () in
  Alcotest.(check int) "16 interprocedural" 16 n;
  Alcotest.(check int) "of 26" 26 total

let test_issue_numbers_match_paper () =
  let numbers = List.map (fun i -> i.Dataset.number) Dataset.issues in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "issue %d present" n) true
        (List.mem n numbers))
    [ 440; 441; 444; 442; 446; 447; 448; 449; 450; 452; 458; 459; 460; 461;
      463; 465; 466; 940; 942; 943; 945; 535; 585; 949; 1103; 1118 ]

let test_reproduced_issues_are_in_study () =
  (* every reproduced PMDK case models an issue from the study *)
  let study = List.map (fun i -> i.Dataset.number) Dataset.issues in
  List.iter
    (fun (c : Hippo_pmdk_mini.Case.t) ->
      match c.Hippo_pmdk_mini.Case.issue with
      | Some n ->
          Alcotest.(check bool) (Printf.sprintf "issue %d studied" n) true
            (List.mem n study)
      | None -> Alcotest.fail "PMDK case without issue number")
    Hippo_pmdk_mini.Bugs.all

let suite =
  [
    ("group sizes", `Quick, test_group_sizes);
    ("core aggregates", `Quick, test_core_aggregates);
    ("misuse aggregates", `Quick, test_misuse_aggregates);
    ("overall row", `Quick, test_overall_row);
    ("interprocedural fraction", `Quick, test_interprocedural_fraction);
    ("issue numbers", `Quick, test_issue_numbers_match_paper);
    ("reproduced issues studied", `Quick, test_reproduced_issues_are_in_study);
  ]
