(* Tests for the miniature libpmem runtime (PMIR functions the subject
   applications link against). *)

open Hippo_pmir
open Hippo_pmcheck

let i = Value.imm

let runtime_interp extra =
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  extra b;
  let p = Builder.program b in
  Validate.check_exn p;
  Interp.create Interp.default_config p

let plain () = runtime_interp (fun _ -> ())

let test_memcpy_aligned_and_unaligned () =
  let t = plain () in
  let m = Interp.mem t in
  List.iter
    (fun (len, doff) ->
      let src = Mem.alloc_vol m 128 and dst = Mem.alloc_vol m 128 in
      let dst = dst + doff in
      let data = String.init len (fun k -> Char.chr ((k * 13 + 5) land 0x7F)) in
      Mem.write_string m ~addr:src data;
      let r = Interp.call t "memcpy" [ dst; src; len ] in
      Alcotest.(check int) "returns dst" dst r;
      Alcotest.(check string)
        (Printf.sprintf "copy len=%d off=%d" len doff)
        data
        (Mem.read_string m ~addr:dst ~len))
    [ (64, 0); (13, 0); (64, 1); (7, 3); (0, 0); (96, 0) ]

let test_memset () =
  let t = plain () in
  let m = Interp.mem t in
  let buf = Mem.alloc_vol m 64 in
  ignore (Interp.call t "memset" [ buf; Char.code 'q'; 20 ]);
  Alcotest.(check string) "filled" (String.make 20 'q')
    (Mem.read_string m ~addr:buf ~len:20);
  Alcotest.(check int) "stops at len" 0 (Mem.load m ~addr:(buf + 20) ~size:1)

let test_memcmp_eq () =
  let t = plain () in
  let m = Interp.mem t in
  let a = Mem.alloc_vol m 32 and b = Mem.alloc_vol m 32 in
  Mem.write_string m ~addr:a "identical";
  Mem.write_string m ~addr:b "identical";
  Alcotest.(check int) "equal" 1 (Interp.call t "memcmp_eq" [ a; b; 9 ]);
  Mem.store m ~addr:(b + 4) ~size:1 (Char.code 'X');
  Alcotest.(check int) "differs" 0 (Interp.call t "memcmp_eq" [ a; b; 9 ]);
  Alcotest.(check int) "prefix still equal" 1 (Interp.call t "memcmp_eq" [ a; b; 4 ])

let test_hash_fnv () =
  let t = plain () in
  let m = Interp.mem t in
  let a = Mem.alloc_vol m 32 in
  Mem.write_string m ~addr:a "key-one";
  let h1 = Interp.call t "hash_fnv" [ a; 7 ] in
  let h1' = Interp.call t "hash_fnv" [ a; 7 ] in
  Mem.write_string m ~addr:a "key-two";
  let h2 = Interp.call t "hash_fnv" [ a; 7 ] in
  Alcotest.(check int) "deterministic" h1 h1';
  Alcotest.(check bool) "distinguishes keys" true (h1 <> h2);
  Alcotest.(check bool) "non-negative" true (h1 >= 0)

let test_pmem_persist_makes_durable () =
  let t = plain () in
  let m = Interp.mem t in
  let pm = Mem.alloc_pm m 256 in
  (* dirty 200 bytes across four lines through the interpreter would need
     a program; write via host then register stores via a helper program
     instead: simply check pmem_persist persists host-written content *)
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let p = call fb "pm_alloc" [ i 256 ] in
        for_ fb "k" ~from:(i 0) ~below:(i 25) ~body:(fun k ->
            store fb ~addr:(gep fb p (mul fb k (i 8))) k);
        call_void fb "pmem_persist" [ p; i 200 ];
        ret_void fb)
  in
  let p = Builder.program b in
  let t2 = Interp.create Interp.default_config p in
  ignore (Interp.call t2 "main" []);
  Interp.exit_check t2;
  Alcotest.(check int) "no bugs: everything persisted" 0
    (List.length (Interp.bugs t2));
  let img = Interp.crash_image t2 in
  for k = 0 to 24 do
    Alcotest.(check int)
      (Printf.sprintf "word %d durable" k)
      k
      (Int64.to_int (Bytes.get_int64_le img (k * 8)))
  done;
  ignore pm;
  ignore m;
  ignore t

let test_pmem_flush_without_drain_is_pending () =
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let p = call fb "pm_alloc" [ i 64 ] in
        store fb ~addr:p (i 5);
        call_void fb "pmem_flush" [ p; i 8 ];
        ret_void fb)
  in
  let p = Builder.program b in
  let t = Interp.create Interp.default_config p in
  ignore (Interp.call t "main" []);
  Interp.exit_check t;
  match Interp.bugs t with
  | [ bug ] ->
      Alcotest.(check string) "missing fence" "missing-fence"
        (Hippo_pmcheck.Report.kind_to_string bug.Report.kind)
  | bugs -> Alcotest.failf "expected exactly one bug, got %d" (List.length bugs)

let test_pmem_memcpy_persist () =
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let src = call fb "malloc" [ i 64 ] in
        for_ fb "k" ~from:(i 0) ~below:(i 8) ~body:(fun k ->
            store fb ~addr:(gep fb src k) ~size:1 (add fb k (i 65)));
        let dst = call fb "pm_alloc" [ i 64 ] in
        ignore (call fb "pmem_memcpy_persist" [ dst; src; i 8 ]);
        ret_void fb)
  in
  let p = Builder.program b in
  let t = Interp.create Interp.default_config p in
  ignore (Interp.call t "main" []);
  Interp.exit_check t;
  Alcotest.(check int) "clean" 0 (List.length (Interp.bugs t));
  Alcotest.(check string) "durable content" "ABCDEFGH"
    (Bytes.sub_string (Interp.crash_image t) 0 8)

let suite =
  [
    ("memcpy aligned/unaligned", `Quick, test_memcpy_aligned_and_unaligned);
    ("memset", `Quick, test_memset);
    ("memcmp_eq", `Quick, test_memcmp_eq);
    ("hash_fnv", `Quick, test_hash_fnv);
    ("pmem_persist durability", `Quick, test_pmem_persist_makes_durable);
    ("pmem_flush needs drain", `Quick, test_pmem_flush_without_drain_is_pending);
    ("pmem_memcpy_persist", `Quick, test_pmem_memcpy_persist);
  ]
