(* Unit and property tests for the PMIR substrate: values, identities,
   the builder's structured control flow, the validator, the textual
   printer/parser round-trip, and function cloning. *)

open Hippo_pmir

let v = Value.reg
let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Loc / Iid / Value *)

let test_loc_basics () =
  let l = Loc.make ~file:"a.c" ~line:3 in
  Alcotest.(check string) "to_string" "a.c:3" (Loc.to_string l);
  Alcotest.(check bool) "equal" true (Loc.equal l (Loc.make ~file:"a.c" ~line:3));
  Alcotest.(check bool) "not equal" false (Loc.equal l Loc.none);
  Alcotest.(check bool) "none" true (Loc.is_none Loc.none);
  Alcotest.(check int) "compare same" 0 (Loc.compare l l);
  Alcotest.(check bool) "ordered by file then line" true
    (Loc.compare (Loc.make ~file:"a.c" ~line:9) (Loc.make ~file:"b.c" ~line:1) < 0)

let test_iid_uniqueness () =
  let a = Iid.fresh ~func:"f" and b = Iid.fresh ~func:"f" in
  Alcotest.(check bool) "fresh ids differ" false (Iid.equal a b);
  Alcotest.(check bool) "same id equal" true (Iid.equal a a);
  let c = Iid.in_func a "g" in
  Alcotest.(check string) "rebound function" "g" (Iid.func c);
  Alcotest.(check int) "serial preserved" (Iid.serial a) (Iid.serial c);
  Alcotest.(check bool) "rebound differs" false (Iid.equal a c);
  let d = Iid.of_serial ~func:"f" (Iid.serial a) in
  Alcotest.(check bool) "of_serial reconstitutes" true (Iid.equal a d)

let test_value_forms () =
  Alcotest.(check bool) "reg equal" true (Value.equal (v "x") (v "x"));
  Alcotest.(check bool) "reg differs" false (Value.equal (v "x") (v "y"));
  Alcotest.(check bool) "imm vs null" false (Value.equal (i 0) Value.null);
  Alcotest.(check (list string)) "uses of reg" [ "x" ] (Value.uses (v "x"));
  Alcotest.(check (list string)) "uses of imm" [] (Value.uses (i 7));
  Alcotest.(check string) "pp global" "@g" (Value.to_string (Value.global "g"));
  Alcotest.(check string) "pp reg" "%x" (Value.to_string (v "x"))

(* ------------------------------------------------------------------ *)
(* Builder *)

let build_one ~body =
  let b = Builder.create () in
  let _ = Builder.func b "f" [ "p" ] ~body in
  Builder.program b

let test_builder_entry_first () =
  let p =
    build_one ~body:(fun fb ->
        Builder.block fb "other";
        Builder.ret_void fb)
  in
  let f = Program.find_exn p "f" in
  Alcotest.(check string) "entry block first" "entry" (Func.entry f).Func.label

let test_builder_if_truncates_dead_jump () =
  (* a then-branch ending in ret must not leave a trailing jump *)
  let p =
    build_one ~body:(fun fb ->
        Builder.if_ fb (v "p")
          ~then_:(fun () -> Builder.ret fb (i 1))
          ();
        Builder.ret fb (i 0))
  in
  Alcotest.(check (list Alcotest.reject)) "validates" [] (Validate.check p)

let test_builder_while_loop_shape () =
  let p =
    build_one ~body:(fun fb ->
        Builder.for_ fb "k" ~from:(i 0) ~below:(i 10) ~body:(fun _ -> ());
        Builder.ret_void fb)
  in
  let f = Program.find_exn p "f" in
  Alcotest.(check bool) "has >= 4 blocks" true (List.length (Func.blocks f) >= 4);
  Alcotest.(check (list Alcotest.reject)) "validates" [] (Validate.check p)

let test_builder_locations_monotonic () =
  let p =
    build_one ~body:(fun fb ->
        Builder.store fb ~addr:(v "p") (i 1);
        Builder.store fb ~addr:(v "p") (i 2);
        Builder.ret_void fb)
  in
  let f = Program.find_exn p "f" in
  match Func.instrs f with
  | [ a; b; _ ] ->
      Alcotest.(check bool) "lines increase" true
        (Loc.line (Instr.loc a) < Loc.line (Instr.loc b))
  | _ -> Alcotest.fail "unexpected shape"

let test_builder_at_pins_location () =
  let p =
    build_one ~body:(fun fb ->
        Builder.at fb 99;
        Builder.store fb ~addr:(v "p") (i 1);
        Builder.ret_void fb)
  in
  let f = Program.find_exn p "f" in
  match Func.instrs f with
  | s :: _ -> Alcotest.(check int) "pinned line" 99 (Loc.line (Instr.loc s))
  | _ -> Alcotest.fail "no instrs"

(* ------------------------------------------------------------------ *)
(* Func / Program *)

let sample_program () =
  let b = Builder.create () in
  Builder.global b "g" 16;
  let _ =
    Builder.func b "leaf" [ "x" ] ~body:(fun fb ->
        Builder.store fb ~addr:(v "x") (i 5);
        Builder.ret_void fb)
  in
  let _ =
    Builder.func b "main" [] ~body:(fun fb ->
        let p = Builder.call fb "pm_alloc" [ i 64 ] in
        Builder.call_void fb "leaf" [ p ];
        Builder.ret_void fb)
  in
  Builder.program b

let test_program_lookup () =
  let p = sample_program () in
  Alcotest.(check bool) "mem leaf" true (Program.mem p "leaf");
  Alcotest.(check bool) "no ghost" false (Program.mem p "ghost");
  Alcotest.(check (list string)) "order" [ "leaf"; "main" ] (Program.func_names p);
  Alcotest.(check int) "globals" 1 (List.length (Program.globals p));
  Alcotest.(check int) "size counts instrs" 5 (Program.size p)

let test_find_instr_by_iid () =
  let p = sample_program () in
  let f = Program.find_exn p "leaf" in
  let first = List.hd (Func.instrs f) in
  match Program.find_instr p (Instr.iid first) with
  | Some found ->
      Alcotest.(check bool) "same instr" true
        (Instr.op_equal (Instr.op found) (Instr.op first))
  | None -> Alcotest.fail "find_instr missed"

let test_call_sites () =
  let p = sample_program () in
  let f = Program.find_exn p "main" in
  let sites = Func.call_sites f in
  Alcotest.(check int) "two call sites" 2 (List.length sites);
  let _, callee, _ = List.nth sites 1 in
  Alcotest.(check string) "second is leaf" "leaf" callee

let test_map_instrs_replaces () =
  let p = sample_program () in
  let f = Program.find_exn p "leaf" in
  let doubled =
    Func.map_instrs
      (fun ins ->
        if Instr.is_store ins then [ ins; ins ] else [ ins ])
      f
  in
  Alcotest.(check int) "store duplicated" 3 (List.length (Func.instrs doubled))

(* ------------------------------------------------------------------ *)
(* Validator *)

let mk_func ?(params = []) name blocks = Func.make ~name ~params ~blocks

let raw_instr op = Instr.make ~iid:(Iid.fresh ~func:"f") ~loc:Loc.none op

let test_validator_rejects_missing_terminator () =
  let f =
    mk_func "f"
      [ { Func.label = "entry"; instrs = [ raw_instr (Instr.Fence { kind = Instr.Sfence }) ] } ]
  in
  let p = Program.of_funcs [ f ] in
  Alcotest.(check bool) "invalid" false (Validate.is_valid p)

let test_validator_rejects_undefined_register () =
  let f =
    mk_func "f"
      [
        {
          Func.label = "entry";
          instrs =
            [
              raw_instr (Instr.Store { addr = v "ghost"; value = i 1; size = 8; nontemporal = false });
              raw_instr (Instr.Ret None);
            ];
        };
      ]
  in
  Alcotest.(check bool) "invalid" false (Validate.is_valid (Program.of_funcs [ f ]))

let test_validator_rejects_bad_branch () =
  let f =
    mk_func "f"
      [ { Func.label = "entry"; instrs = [ raw_instr (Instr.Br { target = "nowhere" }) ] } ]
  in
  Alcotest.(check bool) "invalid" false (Validate.is_valid (Program.of_funcs [ f ]))

let test_validator_rejects_bad_callee_and_arity () =
  let callee_missing =
    mk_func "f"
      [
        {
          Func.label = "entry";
          instrs =
            [ raw_instr (Instr.Call { dst = None; callee = "nope"; args = [] });
              raw_instr (Instr.Ret None) ];
        };
      ]
  in
  Alcotest.(check bool) "undefined callee" false
    (Validate.is_valid (Program.of_funcs [ callee_missing ]));
  let p = sample_program () in
  let f = Program.find_exn p "main" in
  let bad_arity =
    Func.map_instrs
      (fun ins ->
        match Instr.op ins with
        | Instr.Call { dst; callee = "leaf"; _ } ->
            [ Instr.with_op ins (Instr.Call { dst; callee = "leaf"; args = [] }) ]
        | _ -> [ ins ])
      f
  in
  Alcotest.(check bool) "bad arity" false
    (Validate.is_valid (Program.update p bad_arity))

let test_validator_rejects_bad_size_and_global () =
  let f =
    mk_func "f"
      [
        {
          Func.label = "entry";
          instrs =
            [
              raw_instr (Instr.Store { addr = i 100; value = i 1; size = 3; nontemporal = false });
              raw_instr (Instr.Store { addr = Value.global "nog"; value = i 1; size = 8; nontemporal = false });
              raw_instr (Instr.Ret None);
            ];
        };
      ]
  in
  let errors = Validate.check (Program.of_funcs [ f ]) in
  Alcotest.(check int) "two errors" 2 (List.length errors)

let test_validator_rejects_duplicate_iids () =
  let id = Iid.fresh ~func:"f" in
  let ins op = Instr.make ~iid:id ~loc:Loc.none op in
  let f =
    mk_func "f"
      [
        {
          Func.label = "entry";
          instrs = [ ins (Instr.Fence { kind = Instr.Sfence }); ins (Instr.Ret None) ];
        };
      ]
  in
  Alcotest.(check bool) "duplicate iids rejected" false
    (Validate.is_valid (Program.of_funcs [ f ]))

let test_validator_accepts_builder_output () =
  Alcotest.(check (list Alcotest.reject)) "sample ok" [] (Validate.check (sample_program ()))

(* ------------------------------------------------------------------ *)
(* Printer / Parser round trip *)

let test_roundtrip_sample () =
  let p = sample_program () in
  let p' = Parser.program (Printer.to_string p) in
  Alcotest.(check bool) "round trip" true (Program.equal_modulo_iid p p')

let test_parser_locations () =
  let src =
    "func @f(%p) {\nentry:\n  store.i64 1 -> %p @ \"x.c\":42\n  ret\n}\n"
  in
  let p = Parser.program src in
  let f = Program.find_exn p "f" in
  match Func.instrs f with
  | s :: _ ->
      Alcotest.(check string) "file" "x.c" (Loc.file (Instr.loc s));
      Alcotest.(check int) "line" 42 (Loc.line (Instr.loc s))
  | _ -> Alcotest.fail "no instrs"

let test_parser_comments_and_negatives () =
  let src =
    "; leading comment\nfunc @f() {\nentry: ; trailing\n  %x = mov -7\n  ret %x\n}\n"
  in
  let p = Parser.program src in
  Alcotest.(check bool) "valid" true (Validate.is_valid p)

let test_parser_errors () =
  let bad = [ "func f() {"; "func @f( {"; "func @f() {\nentry:\n  frob\n}" ] in
  List.iter
    (fun src ->
      match Parser.program src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted bad input: " ^ src))
    bad

(* qcheck: random straight-line programs round-trip through the text. *)

let gen_program : Program.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = oneofl [ "a"; "b"; "c"; "p" ] in
  let value =
    oneof [ map Value.reg reg; map Value.imm (int_range (-100) 100); return Value.null ]
  in
  let size = oneofl [ 1; 2; 4; 8 ] in
  let nsteps = int_range 0 12 in
  let* n = nsteps in
  let* steps =
    list_repeat n
      (oneof
         [
           (let* d = reg and* a = value in
            return (`Load (d, a)));
           (let* a = value and* vl = value and* sz = size in
            return (`Store (a, vl, sz)));
           (let* a = value in
            return (`Flush a));
           return `Fence;
           (let* d = reg and* l = value and* r = value in
            return (`Add (d, l, r)));
           (let* d = reg and* s = value in
            return (`Mov (d, s)));
         ])
  in
  return
    (let b = Builder.create () in
     let _ =
       Builder.func b "main" [] ~body:(fun fb ->
           (* define every register first so uses always validate *)
           List.iter
             (fun r -> ignore (Builder.set fb r (Value.imm 0)))
             [ "a"; "b"; "c"; "p" ];
           List.iter
             (function
               | `Load (d, a) ->
                   ignore (Builder.set fb d (Builder.load fb a))
               | `Store (a, vl, sz) -> Builder.store fb ~size:sz ~addr:a vl
               | `Flush a -> Builder.flush fb a
               | `Fence -> Builder.fence fb ()
               | `Add (d, l, r) -> ignore (Builder.set fb d (Builder.add fb l r))
               | `Mov (d, s) -> ignore (Builder.set fb d s))
             steps;
           Builder.ret_void fb)
     in
     Builder.program b)

let arb_program =
  QCheck.make gen_program ~print:(fun p -> Printer.to_string p)

let prop_roundtrip =
  QCheck.Test.make ~name:"printer/parser round-trip" ~count:200 arb_program
    (fun p -> Program.equal_modulo_iid p (Parser.program (Printer.to_string p)))

let prop_builder_validates =
  QCheck.Test.make ~name:"builder output validates" ~count:200 arb_program
    Validate.is_valid

(* ------------------------------------------------------------------ *)
(* Clone *)

let test_clone_mapping () =
  let p = sample_program () in
  let f = Program.find_exn p "leaf" in
  let clone, mapping = Clone.func ~new_name:"leaf_PM" f in
  Alcotest.(check string) "renamed" "leaf_PM" (Func.name clone);
  Alcotest.(check int) "same instr count"
    (List.length (Func.instrs f))
    (List.length (Func.instrs clone));
  Alcotest.(check bool) "body equal mod iid" true
    (Func.equal_modulo_iid
       (Func.make ~name:"x" ~params:(Func.params f) ~blocks:(Func.blocks f))
       (Func.make ~name:"x" ~params:(Func.params clone) ~blocks:(Func.blocks clone)));
  List.iter
    (fun ins ->
      match Iid.Tbl.find_opt mapping (Instr.iid ins) with
      | Some cloned_id ->
          Alcotest.(check string) "clone iid in clone func" "leaf_PM"
            (Iid.func cloned_id)
      | None -> Alcotest.fail "instruction missing from mapping")
    (Func.instrs f)

let test_retarget_calls () =
  let p = sample_program () in
  let f = Program.find_exn p "main" in
  let f' =
    Clone.retarget_calls f ~rename:(function
      | "leaf" -> Some "leaf_PM"
      | _ -> None)
  in
  let callees =
    List.filter_map
      (fun ins ->
        match Instr.op ins with
        | Instr.Call { callee; _ } -> Some callee
        | _ -> None)
      (Func.instrs f')
  in
  Alcotest.(check (list string)) "retargeted" [ "pm_alloc"; "leaf_PM" ] callees

let suite =
  [
    ("loc basics", `Quick, test_loc_basics);
    ("iid uniqueness", `Quick, test_iid_uniqueness);
    ("value forms", `Quick, test_value_forms);
    ("builder entry first", `Quick, test_builder_entry_first);
    ("builder dead jump truncation", `Quick, test_builder_if_truncates_dead_jump);
    ("builder loop shape", `Quick, test_builder_while_loop_shape);
    ("builder locations monotonic", `Quick, test_builder_locations_monotonic);
    ("builder location pinning", `Quick, test_builder_at_pins_location);
    ("program lookup", `Quick, test_program_lookup);
    ("find instr by iid", `Quick, test_find_instr_by_iid);
    ("call sites", `Quick, test_call_sites);
    ("map_instrs", `Quick, test_map_instrs_replaces);
    ("validator: missing terminator", `Quick, test_validator_rejects_missing_terminator);
    ("validator: undefined register", `Quick, test_validator_rejects_undefined_register);
    ("validator: bad branch", `Quick, test_validator_rejects_bad_branch);
    ("validator: bad callee/arity", `Quick, test_validator_rejects_bad_callee_and_arity);
    ("validator: bad size/global", `Quick, test_validator_rejects_bad_size_and_global);
    ("validator: duplicate iids", `Quick, test_validator_rejects_duplicate_iids);
    ("validator: accepts builder output", `Quick, test_validator_accepts_builder_output);
    ("roundtrip sample", `Quick, test_roundtrip_sample);
    ("parser locations", `Quick, test_parser_locations);
    ("parser comments/negatives", `Quick, test_parser_comments_and_negatives);
    ("parser errors", `Quick, test_parser_errors);
    ("clone mapping", `Quick, test_clone_mapping);
    ("retarget calls", `Quick, test_retarget_calls);
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_builder_validates;
  ]
