(* Functional and crash-consistency tests for the subject applications:
   Redis_mini (all variants), P-CLHT and memcached_mini. *)

open Hippo_pmcheck
open Hippo_apps

(* ------------------------------------------------------------------ *)
(* Redis_mini functional behaviour *)

let redis_session variant =
  Redis_mini.start ~nbuckets:32 (Redis_mini.build variant)

let value_at s =
  let mem = Interp.mem s.Redis_mini.interp in
  Mem.read_string mem ~addr:s.Redis_mini.reply_buf

let test_redis_set_get () =
  List.iter
    (fun variant ->
      let s = redis_session variant in
      Redis_mini.op_insert s ~k:7 ~version:0;
      let vlen = Redis_mini.op_read s ~k:7 in
      Alcotest.(check int) "value length" 96 vlen;
      Alcotest.(check string) "value bytes"
        (Hippo_ycsb.Workload.value_bytes ~k:7 ~version:0)
        (value_at s ~len:vlen);
      Alcotest.(check int) "missing key" (-1) (Redis_mini.op_read s ~k:8))
    [ Redis_mini.Flush_free; Redis_mini.Manual ]

let test_redis_update_in_place () =
  let s = redis_session Redis_mini.Manual in
  Redis_mini.op_insert s ~k:3 ~version:0;
  Redis_mini.op_insert s ~k:3 ~version:5;
  let vlen = Redis_mini.op_read s ~k:3 in
  Alcotest.(check string) "updated value"
    (Hippo_ycsb.Workload.value_bytes ~k:3 ~version:5)
    (value_at s ~len:vlen);
  Alcotest.(check int) "count still 1" 1 (Redis_mini.count s)

let test_redis_delete () =
  let s = redis_session Redis_mini.Manual in
  for k = 0 to 9 do
    Redis_mini.op_insert s ~k ~version:0
  done;
  Alcotest.(check int) "ten entries" 10 (Redis_mini.count s);
  Alcotest.(check int) "delete hits" 1 (Redis_mini.op_delete s ~k:4);
  Alcotest.(check int) "delete misses" 0 (Redis_mini.op_delete s ~k:4);
  Alcotest.(check int) "nine left" 9 (Redis_mini.count s);
  Alcotest.(check int) "gone" (-1) (Redis_mini.op_read s ~k:4);
  Alcotest.(check bool) "others intact" true (Redis_mini.op_read s ~k:5 = 96)

let test_redis_collision_chains () =
  (* tiny table forces chains; all keys must remain reachable *)
  let s = Redis_mini.start ~nbuckets:2 (Redis_mini.build Redis_mini.Manual) in
  for k = 0 to 49 do
    Redis_mini.op_insert s ~k ~version:0
  done;
  for k = 0 to 49 do
    Alcotest.(check int) (Printf.sprintf "key %d" k) 96 (Redis_mini.op_read s ~k)
  done;
  Alcotest.(check int) "count" 50 (Redis_mini.count s)

let test_redis_check_invariant () =
  let s = redis_session Redis_mini.Manual in
  for k = 0 to 19 do
    Redis_mini.op_insert s ~k ~version:0
  done;
  ignore (Redis_mini.op_delete s ~k:3);
  Alcotest.(check int) "dict_check holds" 1
    (Interp.call s.Redis_mini.interp "cmd_check" [])

let test_redis_manual_is_clean () =
  Alcotest.(check int) "manual port has no bugs" 0
    (List.length (Redis_bench.residual_bugs (Redis_mini.build Redis_mini.Manual)))

let test_redis_flush_free_is_buggy () =
  Alcotest.(check bool) "flush-free port has bugs" true
    (Redis_bench.residual_bugs (Redis_mini.build Redis_mini.Flush_free) <> [])

(* Durable state survives a clean restart: run ops on the manual variant,
   take the durable image, reopen and verify. *)
let test_redis_restart_from_durable_image () =
  let prog = Redis_mini.build Redis_mini.Manual in
  let s = Redis_mini.start ~nbuckets:16 prog in
  for k = 0 to 9 do
    Redis_mini.op_insert s ~k ~version:2
  done;
  let image = Interp.crash_image s.Redis_mini.interp in
  (* reopen: fresh interpreter on the durable image; recovery rebinds the
     root, then the data must be fully readable *)
  let t2 = Interp.create ~pm_image:image Interp.default_config prog in
  let mem = Interp.mem t2 in
  let g name = Interp.global_addr t2 name in
  (* recovery: header is the pool's first allocation *)
  Mem.store mem ~addr:(g "g_hdr") ~size:8 Layout.pm_base;
  Mem.store mem ~addr:(g "g_key") ~size:8 (Mem.alloc_vol mem 32);
  Mem.store mem ~addr:(g "g_reply") ~size:8 (Mem.alloc_vol mem 128);
  Mem.store mem ~addr:(g "g_stage") ~size:8 (Mem.alloc_vol mem 128);
  let key_buf = Mem.load mem ~addr:(g "g_key") ~size:8 in
  let check_key k =
    let key = Hippo_ycsb.Workload.key_bytes k in
    Mem.write_string mem ~addr:key_buf key;
    Mem.store mem ~addr:(g "g_klen") ~size:8 (String.length key);
    Interp.call t2 "cmd_get" []
  in
  for k = 0 to 9 do
    Alcotest.(check int) (Printf.sprintf "key %d survives" k) 96 (check_key k)
  done;
  Alcotest.(check int) "dict_check after restart" 1
    (Interp.call t2 "cmd_check" [])

(* ------------------------------------------------------------------ *)
(* P-CLHT *)

let clht_interp () =
  let p = Pclht.build () in
  let t = Interp.create Interp.default_config p in
  ignore (Interp.call t "clht_init" [ 8 ]);
  t

let test_clht_put_get_del () =
  let t = clht_interp () in
  for k = 1 to 30 do
    Alcotest.(check int) "fresh insert" 1 (Interp.call t "clht_put" [ k; k * 7 ])
  done;
  for k = 1 to 30 do
    Alcotest.(check int) (Printf.sprintf "get %d" k) (k * 7)
      (Interp.call t "clht_get" [ k ])
  done;
  Alcotest.(check int) "update returns 2" 2 (Interp.call t "clht_put" [ 5; 99 ]);
  Alcotest.(check int) "updated" 99 (Interp.call t "clht_get" [ 5 ]);
  Alcotest.(check int) "del" 1 (Interp.call t "clht_del" [ 5 ]);
  Alcotest.(check int) "deleted" 0 (Interp.call t "clht_get" [ 5 ]);
  Alcotest.(check int) "missing del" 0 (Interp.call t "clht_del" [ 5 ]);
  Alcotest.(check int) "check invariant" 1 (Interp.call t "clht_check" [])

let test_clht_overflow_chains () =
  let t = clht_interp () in
  (* 8 buckets x 3 slots = 24; 60 keys force chains *)
  for k = 1 to 60 do
    ignore (Interp.call t "clht_put" [ k; k ])
  done;
  for k = 1 to 60 do
    Alcotest.(check int) (Printf.sprintf "chained get %d" k) k
      (Interp.call t "clht_get" [ k ])
  done;
  Alcotest.(check int) "size invariant" 1 (Interp.call t "clht_check" [])

(* Crash consistency: the repaired P-CLHT must be crash consistent at
   every durability point; the buggy one must not be. *)
let clht_setup =
  [ ("clht_init", [ 4 ]) ]
  @ List.concat_map
      (fun k -> [ ("clht_put", [ k; k * 3 ]) ])
      (List.init 20 (fun k -> k + 1))
  @ [ ("clht_put", [ 3; 999 ]) ]

let test_clht_buggy_not_crash_consistent () =
  let p = Pclht.build () in
  let verdicts =
    Crashsim.sweep p ~setup:clht_setup ~checker:"clht_recover_check"
      ~checker_args:[]
  in
  Alcotest.(check bool) "has crash points" true (verdicts <> []);
  Alcotest.(check bool) "some crash state is inconsistent" true
    (List.exists (fun v -> not v.Crashsim.pessimistic_ok) verdicts)

let test_clht_repaired_crash_consistent () =
  let p = Pclht.build () in
  let r =
    Hippo_core.Driver.repair ~name:"pclht" ~workload:Pclht.workload p
  in
  Alcotest.(check bool) "repaired and clean" true
    (Hippo_core.Verify.effective r.Hippo_core.Driver.verification);
  let ok =
    Crashsim.crash_consistent r.Hippo_core.Driver.repaired ~setup:clht_setup
      ~checker:"clht_recover_check" ~checker_args:[]
  in
  Alcotest.(check bool) "crash consistent after repair" true ok

(* ------------------------------------------------------------------ *)
(* memcached_mini *)

let mc_session () =
  let p = Memcached_mini.build () in
  let t = Interp.create Interp.default_config p in
  Memcached_mini.attach ~nbuckets:8 t

let test_mc_set_get_del () =
  let s = mc_session () in
  Memcached_mini.op_set s ~key:"alpha" ~value:"0123456789abcdef" ~flags:2;
  Memcached_mini.op_set s ~key:"beta" ~value:"xxxxxxxxyyyyyyyy" ~flags:0;
  Alcotest.(check int) "get alpha" 16 (Memcached_mini.op_get s ~key:"alpha");
  Alcotest.(check int) "get missing" (-1) (Memcached_mini.op_get s ~key:"gamma");
  Alcotest.(check int) "del beta" 1 (Memcached_mini.op_del s ~key:"beta");
  Alcotest.(check int) "beta gone" (-1) (Memcached_mini.op_get s ~key:"beta");
  Alcotest.(check int) "count" 1 (Interp.call s.Memcached_mini.interp "cmd_count" [])

let test_mc_replace_semantics () =
  let s = mc_session () in
  Memcached_mini.op_set s ~key:"k" ~value:"v1v1v1v1" ~flags:0;
  Memcached_mini.op_set s ~key:"k" ~value:"v2v2v2v2v2v2" ~flags:1;
  Alcotest.(check int) "replaced length" 12 (Memcached_mini.op_get s ~key:"k");
  Alcotest.(check int) "count stays 1" 1
    (Interp.call s.Memcached_mini.interp "cmd_count" [])

let test_mc_touch () =
  let s = mc_session () in
  Memcached_mini.op_set s ~key:"t" ~value:"vvvvvvvv" ~flags:0;
  Memcached_mini.set_key s "t";
  Alcotest.(check int) "touch existing" 1
    (Interp.call s.Memcached_mini.interp "cmd_touch" [ 7200 ]);
  Memcached_mini.set_key s "absent";
  Alcotest.(check int) "touch missing" 0
    (Interp.call s.Memcached_mini.interp "cmd_touch" [ 7200 ])

let test_mc_workload_invariant () =
  let p = Memcached_mini.build () in
  let t = Interp.create Interp.default_config p in
  Memcached_mini.workload t;
  Alcotest.(check int) "recover-check on live state" 1
    (Interp.call t "mc_recover_check" [])

let suite =
  [
    ("redis set/get", `Quick, test_redis_set_get);
    ("redis update in place", `Quick, test_redis_update_in_place);
    ("redis delete", `Quick, test_redis_delete);
    ("redis collision chains", `Quick, test_redis_collision_chains);
    ("redis check invariant", `Quick, test_redis_check_invariant);
    ("redis manual variant clean", `Quick, test_redis_manual_is_clean);
    ("redis flush-free variant buggy", `Quick, test_redis_flush_free_is_buggy);
    ("redis restart from durable image", `Quick, test_redis_restart_from_durable_image);
    ("clht put/get/del", `Quick, test_clht_put_get_del);
    ("clht overflow chains", `Quick, test_clht_overflow_chains);
    ("clht buggy not crash consistent", `Slow, test_clht_buggy_not_crash_consistent);
    ("clht repaired crash consistent", `Slow, test_clht_repaired_crash_consistent);
    ("memcached set/get/del", `Quick, test_mc_set_get_del);
    ("memcached replace", `Quick, test_mc_replace_semantics);
    ("memcached touch", `Quick, test_mc_touch);
    ("memcached workload invariant", `Quick, test_mc_workload_invariant);
  ]
