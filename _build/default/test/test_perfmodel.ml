(* Tests for the performance model: summary statistics and timed
   execution under the latency cost model. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_perfmodel

let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_stddev () =
  let s = Stats.summarize [ 10.0; 12.0; 14.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 12.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 2.0 s.Stats.stddev;
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check bool) "ci positive" true (s.Stats.ci95 > 0.0)

let test_stats_single_sample () =
  let s = Stats.summarize [ 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "no spread" 0.0 s.Stats.stddev

let test_stats_overlap () =
  let near1 = Stats.summarize [ 9.0; 10.0; 11.0 ] in
  let near2 = Stats.summarize [ 10.0; 11.0; 12.0 ] in
  let far = Stats.summarize [ 100.0; 101.0; 102.0 ] in
  Alcotest.(check bool) "close intervals overlap" true (Stats.overlap near1 near2);
  Alcotest.(check bool) "distant intervals do not" false (Stats.overlap near1 far);
  Alcotest.(check bool) "symmetric" true
    (Stats.overlap near2 near1 = Stats.overlap near1 near2)

let test_stats_empty_rejected () =
  match Stats.mean [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* ------------------------------------------------------------------ *)
(* Timed *)

let prog_with ~flushes =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "main" [ "n" ] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 4096 ] in
        for_ fb "k" ~from:(i 0) ~below:(Value.reg "n") ~body:(fun k ->
            let slot = gep fb pm (Builder.mul fb k (i 64)) in
            store fb ~addr:slot k;
            if flushes then flush fb slot);
        fence fb ();
        ret_void fb)
  in
  Builder.program b

let measure prog =
  Timed.measure prog
    ~setup:(fun _ -> ())
    ~drive:(fun t () -> ignore (Interp.call t "main" [ 50 ]))
    ~ops:50

let test_timed_accumulates () =
  let r = measure (prog_with ~flushes:true) in
  Alcotest.(check bool) "time accumulated" true (r.Timed.sim_ns > 0.0);
  Alcotest.(check bool) "steps counted" true (r.Timed.steps > 0);
  Alcotest.(check bool) "throughput positive" true (Timed.throughput_kops r > 0.0)

let test_timed_flushes_cost_more () =
  let without = measure (prog_with ~flushes:false) in
  let with_f = measure (prog_with ~flushes:true) in
  Alcotest.(check bool) "flushing costs time" true
    (with_f.Timed.sim_ns > without.Timed.sim_ns)

let test_timed_setup_not_charged () =
  let prog = prog_with ~flushes:true in
  let r =
    Timed.measure prog
      ~setup:(fun t -> ignore (Interp.call t "main" [ 50 ]))
      ~drive:(fun _ () -> ())
      ~ops:1
  in
  Alcotest.(check (float 1e-9)) "setup excluded" 0.0 r.Timed.sim_ns

let test_timed_trials_summary () =
  let prog = prog_with ~flushes:true in
  let s = Timed.trials 5 (fun _seed -> measure prog) in
  Alcotest.(check int) "five trials" 5 s.Stats.n;
  (* deterministic program: zero variance *)
  Alcotest.(check (float 1e-6)) "deterministic" 0.0 s.Stats.stddev

let test_volatile_flush_penalty () =
  (* flushing volatile lines (the intraprocedural-fix failure mode) must
     dominate flushing nothing *)
  let mk ~vol_flush =
    let b = Builder.create () in
    let open Builder in
    let _ =
      func b "main" [] ~body:(fun fb ->
          let buf = call fb "malloc" [ i 4096 ] in
          for_ fb "k" ~from:(i 0) ~below:(i 50) ~body:(fun k ->
              let slot = gep fb buf (Builder.mul fb k (i 8)) in
              store fb ~addr:slot k;
              if vol_flush then flush fb slot);
          ret_void fb)
    in
    Builder.program b
  in
  let quiet =
    Timed.measure (mk ~vol_flush:false)
      ~setup:(fun _ -> ())
      ~drive:(fun t () -> ignore (Interp.call t "main" []))
      ~ops:1
  in
  let noisy =
    Timed.measure (mk ~vol_flush:true)
      ~setup:(fun _ -> ())
      ~drive:(fun t () -> ignore (Interp.call t "main" []))
      ~ops:1
  in
  Alcotest.(check bool) "DRAM write-backs dominate" true
    (noisy.Timed.sim_ns > 3.0 *. quiet.Timed.sim_ns)

let test_cost_model_variants () =
  let d = Cost.default in
  Alcotest.(check bool) "volatile flush is the expensive waste" true
    (d.Cost.flush_vol_ns > d.Cost.flush_pm_dirty_ns);
  Alcotest.(check bool) "fence-heavy raises fences" true
    (Cost.fence_heavy.Cost.fence_base_ns > d.Cost.fence_base_ns);
  Alcotest.(check bool) "cheap-vol lowers the waste" true
    (Cost.cheap_vol_flush.Cost.flush_vol_ns < d.Cost.flush_vol_ns)

let suite =
  [
    ("stats mean/stddev", `Quick, test_stats_mean_stddev);
    ("stats single sample", `Quick, test_stats_single_sample);
    ("stats overlap", `Quick, test_stats_overlap);
    ("stats empty rejected", `Quick, test_stats_empty_rejected);
    ("timed accumulates", `Quick, test_timed_accumulates);
    ("timed flush cost", `Quick, test_timed_flushes_cost_more);
    ("timed setup not charged", `Quick, test_timed_setup_not_charged);
    ("timed trials summary", `Quick, test_timed_trials_summary);
    ("volatile flush penalty", `Quick, test_volatile_flush_penalty);
    ("cost model variants", `Quick, test_cost_model_variants);
  ]
