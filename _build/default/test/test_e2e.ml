(* Heavier end-to-end properties:

   - repaired random transactional programs are crash consistent at every
     durability point (the paper's correctness claim, executed);
   - a miniature Fig. 4: the repaired-with-hoisting Redis beats the
     intraprocedural repair under the cost model, and tracks the
     hand-written port. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Random transactional programs over (value, shadow) cell pairs.

   Each transaction picks a cell, writes a new value to the data word and
   then to its shadow word (one cache line apart), with independently
   randomized flush omissions, fencing, and a durability point at the end.
   The recovery invariant is data == shadow for every cell: a crash
   between the two persists must never be observable, which the correct
   fencing discipline guarantees — unless a flush was omitted. *)

let cells = 3

type txn = { cell : int; value : int; flush_data : bool; flush_shadow : bool }

let gen_txns : txn list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 1 8)
    (let* cell = int_range 0 (cells - 1) in
     let* value = int_range 1 1000 in
     let* flush_data = bool in
     let* flush_shadow = bool in
     return { cell; value; flush_data; flush_shadow })

let v' r = Value.reg r

let program_of_txns (txns : txn list) : Program.t =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "init" [] ~body:(fun fb ->
        let base = call fb "pm_alloc" [ i (cells * 128) ] in
        call_void fb "pmem_persist_init" [ base ];
        ret fb base)
  in
  (* zero + persist everything, in IR, so recovery starts consistent *)
  let _ =
    func b "pmem_persist_init" [ "base" ] ~body:(fun fb ->
        for_ fb "k" ~from:(i 0) ~below:(i (cells * 2)) ~body:(fun k ->
            let slot = gep fb (v' "base") (mul fb k (i 64)) in
            store fb ~addr:slot (i 0);
            flush fb slot);
        fence fb ();
        ret_void fb)
  in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let base = call fb "init" [] in
        List.iter
          (fun t ->
            let data = gep fb base (i (t.cell * 128)) in
            let shadow = gep fb base (i ((t.cell * 128) + 64)) in
            store fb ~addr:data (i t.value);
            if t.flush_data then flush fb data;
            fence fb ();
            store fb ~addr:shadow (i t.value);
            if t.flush_shadow then flush fb shadow;
            fence fb ();
            crash fb)
          txns;
        ret_void fb)
  in
  let _ =
    func b "check" [] ~body:(fun fb ->
        let base = call fb "pm_base" [] in
        for_ fb "k" ~from:(i 0) ~below:(i cells) ~body:(fun k ->
            let off = mul fb k (i 128) in
            let data = load fb (gep fb base off) in
            let shadow = load fb (gep fb base (add fb off (i 64))) in
            if_ fb (ne fb data shadow)
              ~then_:(fun () -> ret fb (i 0))
              ());
        ret fb (i 1))
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

let arb_txn_prog =
  QCheck.make
    QCheck.Gen.(map program_of_txns gen_txns)
    ~print:Printer.to_string

let prop_repaired_crash_consistent =
  QCheck.Test.make
    ~name:"repaired transactional programs are crash consistent" ~count:25
    arb_txn_prog
    (fun p ->
      let r =
        Driver.repair ~name:"txn"
          ~workload:(fun t -> ignore (Interp.call t "main" []))
          p
      in
      Verify.effective r.Driver.verification
      && Crashsim.crash_consistent r.Driver.repaired
           ~setup:[ ("main", []) ]
           ~checker:"check" ~checker_args:[])

(* a buggy instance really is crash inconsistent (the property above is
   not vacuous) *)
let test_buggy_txn_loses_data () =
  let p =
    program_of_txns
      [ { cell = 0; value = 7; flush_data = true; flush_shadow = false } ]
  in
  let verdicts =
    Crashsim.sweep p ~setup:[ ("main", []) ] ~checker:"check" ~checker_args:[]
  in
  Alcotest.(check bool) "inconsistent durable image exists" true
    (List.exists (fun v -> not v.Crashsim.pessimistic_ok) verdicts)

(* ------------------------------------------------------------------ *)
(* Miniature Fig. 4: the performance ordering must hold under the cost
   model even at smoke-test scale. *)

let test_redis_perf_ordering () =
  let v = Hippo_apps.Redis_bench.repair_variants () in
  let spec =
    {
      (Hippo_ycsb.Workload.default_spec Hippo_ycsb.Workload.A) with
      record_count = 300;
      op_count = 300;
    }
  in
  let tput prog =
    Hippo_perfmodel.Timed.throughput_kops
      (Hippo_apps.Redis_bench.trial prog spec ~seed:3)
  in
  let intra = tput v.Hippo_apps.Redis_bench.h_intra in
  let manual = tput v.Hippo_apps.Redis_bench.manual in
  let full = tput v.Hippo_apps.Redis_bench.h_full in
  Alcotest.(check bool) "hoisting beats intra by >1.5x" true
    (full > 1.5 *. intra);
  Alcotest.(check bool) "full within 15% of the manual port" true
    (full > 0.85 *. manual)

let test_redis_load_full_beats_manual () =
  let v = Hippo_apps.Redis_bench.repair_variants () in
  let spec =
    {
      (Hippo_ycsb.Workload.default_spec Hippo_ycsb.Workload.Load) with
      record_count = 500;
      op_count = 500;
    }
  in
  let tput prog =
    Hippo_perfmodel.Timed.throughput_kops
      (Hippo_apps.Redis_bench.trial prog spec ~seed:1)
  in
  Alcotest.(check bool) "auto port at least matches the manual port on Load"
    true
    (tput v.Hippo_apps.Redis_bench.h_full
    >= tput v.Hippo_apps.Redis_bench.manual)

let suite =
  [
    ("buggy txn loses data", `Quick, test_buggy_txn_loses_data);
    QCheck_alcotest.to_alcotest prop_repaired_crash_consistent;
    ("redis perf ordering", `Slow, test_redis_perf_ordering);
    ("redis load: full >= manual", `Slow, test_redis_load_full_beats_manual);
  ]
