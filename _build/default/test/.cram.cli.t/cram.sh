  $ cat > demo.pmir <<'PMIR'
  > ; Listing 5 from the paper, in textual PMIR
  > func @update(%addr, %idx, %val) {
  > entry:
  >   %slot = gep %addr, %idx
  >   store.i8 %val -> %slot @ "update.c":2
  >   ret
  > }
  > 
  > func @modify(%addr) {
  > entry:
  >   call @update(%addr, 0, 42) @ "modify.c":5
  >   ret
  > }
  > 
  > func @main() {
  > entry:
  >   %vol = call @malloc(64)
  >   %pm = call @pm_alloc(64)
  >   %i = mov 0
  >   br head
  > head:
  >   %c = lt %i, 100
  >   condbr %c, body, done
  > body:
  >   call @modify(%vol) @ "foo.c":18
  >   %i = add %i, 1
  >   br head
  > done:
  >   call @modify(%pm) @ "foo.c":19
  >   crash @ "foo.c":23
  >   ret
  > }
  > PMIR
  $ hippocrates check demo.pmir --trace-out demo.trace
  $ hippocrates fix demo.pmir --trace demo.trace -o demo.fixed.pmir
  $ grep -A4 'func @update_PM' demo.fixed.pmir
  $ hippocrates check demo.fixed.pmir
  $ hippocrates fix demo.pmir --trace demo.trace --no-hoist -o demo.intra.pmir
  $ grep -c 'flush.clwb' demo.intra.pmir
  $ hippocrates check demo.intra.pmir
  $ hippocrates check demo.pmir --format pmtest --trace-out demo.pmtest > /dev/null
  $ hippocrates fix demo.pmir --trace demo.pmtest --format pmtest -o demo.fixed2.pmir
  $ diff demo.fixed.pmir demo.fixed2.pmir
  $ hippocrates corpus | wc -l
