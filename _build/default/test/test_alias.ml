(* Tests for the Andersen points-to analysis and the two alias oracles
   (Full-AA and Trace-AA) that drive the hoisting heuristic. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_alias

let v = Value.reg
let i = Value.imm

(* The paper's Listing 5/6 program: the canonical scoring example. *)
let listing5 () =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "update" [ "addr"; "idx"; "val" ] ~body:(fun fb ->
        let a = gep fb (v "addr") (v "idx") in
        store fb ~size:1 ~addr:a (v "val");
        ret_void fb)
  in
  let _ =
    func b "modify" [ "addr" ] ~body:(fun fb ->
        call_void fb "update" [ v "addr"; i 0; i 42 ];
        ret_void fb)
  in
  let _ =
    func b "foo" [] ~body:(fun fb ->
        let vol = call fb "malloc" [ i 64 ] in
        let pm = call fb "pm_alloc" [ i 64 ] in
        for_ fb "k" ~from:(i 0) ~below:(i 50) ~body:(fun _ ->
            call_void fb "modify" [ vol ]);
        call_void fb "modify" [ pm ];
        crash fb;
        ret_void fb)
  in
  Builder.program b

let test_points_to_listing5 () =
  let p = listing5 () in
  let a = Andersen.analyze p in
  (* %addr in update aliases both allocations *)
  let n = Andersen.Var ("update", "addr") in
  Alcotest.(check int) "update addr: 1 pm" 1 (Andersen.pm_count a n);
  Alcotest.(check int) "update addr: 1 vol" 1 (Andersen.vol_count a n);
  (* %addr in modify likewise *)
  let m = Andersen.Var ("modify", "addr") in
  Alcotest.(check int) "modify addr: 1 pm" 1 (Andersen.pm_count a m);
  Alcotest.(check int) "modify addr: 1 vol" 1 (Andersen.vol_count a m);
  Alcotest.(check bool) "update addr may be pm" true
    (Andersen.may_be_pm a ~func:"update" (v "addr"));
  Alcotest.(check bool) "idx is not a pointer" false
    (Andersen.is_pointer a ~func:"update" (v "idx"))

let test_gep_propagates () =
  let p = listing5 () in
  let a = Andersen.analyze p in
  (* the gep result in update points where addr points *)
  let f = Program.find_exn p "update" in
  let gep_dst =
    List.find_map
      (fun ins ->
        match Instr.op ins with Instr.Gep { dst; _ } -> Some dst | _ -> None)
      (Func.instrs f)
    |> Option.get
  in
  let g = Andersen.Var ("update", gep_dst) in
  Alcotest.(check int) "gep: pm flows" 1 (Andersen.pm_count a g);
  Alcotest.(check int) "gep: vol flows" 1 (Andersen.vol_count a g)

let test_heap_contents_flow () =
  (* a pointer stored through one variable and loaded through another *)
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let cell = call fb "malloc" [ i 8 ] in
        let pm = call fb "pm_alloc" [ i 8 ] in
        store fb ~addr:cell pm;
        let out = load fb cell in
        store fb ~addr:out (i 1);
        ret_void fb)
  in
  let p = Builder.program b in
  let a = Andersen.analyze p in
  let f = Program.find_exn p "main" in
  let loads =
    List.filter_map
      (fun ins ->
        match Instr.op ins with Instr.Load { dst; _ } -> Some dst | _ -> None)
      (Func.instrs f)
  in
  let out = List.hd loads in
  Alcotest.(check int) "loaded pointer is pm" 1
    (Andersen.pm_count a (Andersen.Var ("main", out)))

let test_retval_flow () =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "mk" [] ~body:(fun fb -> ret fb (call fb "pm_alloc" [ i 8 ]))
  in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let p = call fb "mk" [] in
        store fb ~addr:p (i 3);
        ret_void fb)
  in
  let p = Builder.program b in
  let a = Andersen.analyze p in
  let f = Program.find_exn p "main" in
  let dst =
    List.find_map
      (fun ins ->
        match Instr.op ins with
        | Instr.Call { dst; callee = "mk"; _ } -> dst
        | _ -> None)
      (Func.instrs f)
    |> Option.get
  in
  Alcotest.(check int) "return value flows" 1
    (Andersen.pm_count a (Andersen.Var ("main", dst)))

let test_global_contents_flow () =
  let b = Builder.create () in
  let open Builder in
  Builder.global b "slot" 8;
  let _ =
    func b "setup" [] ~body:(fun fb ->
        store fb ~addr:(Value.global "slot") (call fb "pm_alloc" [ i 8 ]);
        ret_void fb)
  in
  let _ =
    func b "user" [] ~body:(fun fb ->
        let p = load fb (Value.global "slot") in
        store fb ~addr:p (i 1);
        ret_void fb)
  in
  let p = Builder.program b in
  let a = Andersen.analyze p in
  let f = Program.find_exn p "user" in
  let dst =
    List.find_map
      (fun ins ->
        match Instr.op ins with Instr.Load { dst; _ } -> Some dst | _ -> None)
      (Func.instrs f)
    |> Option.get
  in
  Alcotest.(check int) "pointer via global" 1
    (Andersen.pm_count a (Andersen.Var ("user", dst)))

(* ------------------------------------------------------------------ *)
(* Oracles on Listing 6's scoring *)

let run_traced p =
  let t = Interp.create Interp.default_config p in
  ignore (Interp.call t "foo" []);
  Interp.exit_check t;
  t

let store_iid_in p fname =
  let f = Program.find_exn p fname in
  List.find_map
    (fun ins -> if Instr.is_store ins then Some (Instr.iid ins) else None)
    (Func.instrs f)
  |> Option.get

let call_iid_in p fname ~callee =
  let f = Program.find_exn p fname in
  List.find_map
    (fun (iid, c, _) -> if c = callee then Some iid else None)
    (Func.call_sites f)
  |> Option.get

let listing6_scores (oracle : Oracle.t) p =
  let store = store_iid_in p "update" in
  let cs_update = call_iid_in p "modify" ~callee:"update" in
  (* the PM call site is the second call to modify in foo *)
  let f = Program.find_exn p "foo" in
  let modify_sites =
    List.filter_map
      (fun (iid, c, _) -> if c = "modify" then Some iid else None)
      (Func.call_sites f)
  in
  let cs_pm = List.nth modify_sites 1 in
  ( oracle.Oracle.store_score p store,
    oracle.Oracle.call_score p cs_update,
    oracle.Oracle.call_score p cs_pm )

let test_full_aa_listing6 () =
  let p = listing5 () in
  let oracle = Oracle.of_program p in
  let s, c1, c2 = listing6_scores oracle p in
  Alcotest.(check (option int)) "store site 0" (Some 0) s;
  Alcotest.(check (option int)) "inner call site 0" (Some 0) c1;
  Alcotest.(check (option int)) "pm call site +1" (Some 1) c2

let test_trace_aa_listing6 () =
  let p = listing5 () in
  let t = run_traced p in
  let oracle = Oracle.trace_aa (Interp.site_stats t) in
  let s, c1, c2 = listing6_scores oracle p in
  Alcotest.(check (option int)) "store site 0" (Some 0) s;
  Alcotest.(check (option int)) "inner call site 0" (Some 0) c1;
  Alcotest.(check (option int)) "pm call site +1" (Some 1) c2

let test_no_pointer_args_scores_none () =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "noptr" [ "n" ] ~body:(fun fb ->
        ignore (add fb (v "n") (i 1));
        ret_void fb)
  in
  let _ =
    func b "foo" [] ~body:(fun fb ->
        call_void fb "noptr" [ i 5 ];
        ret_void fb)
  in
  let p = Builder.program b in
  let oracle = Oracle.of_program p in
  let cs = call_iid_in p "foo" ~callee:"noptr" in
  Alcotest.(check (option int)) "-inf for pointer-free call" None
    (oracle.Oracle.call_score p cs)

let test_store_may_touch_pm_soundness_on_listing5 () =
  (* every dynamically-observed PM store must be flagged by both oracles *)
  let p = listing5 () in
  let t = run_traced p in
  let full = Oracle.of_program p in
  let tr = Oracle.trace_aa (Interp.site_stats t) in
  List.iter
    (function
      | Trace.Store { iid; _ } ->
          Alcotest.(check bool) "full-aa flags it" true
            (full.Oracle.store_may_touch_pm p iid);
          Alcotest.(check bool) "trace-aa flags it" true
            (tr.Oracle.store_may_touch_pm p iid)
      | _ -> ())
    (Interp.trace t)

let test_oracle_soundness_on_corpus () =
  (* same soundness property across every corpus subject *)
  List.iter
    (fun (case : Hippo_pmdk_mini.Case.t) ->
      let p = Lazy.force case.Hippo_pmdk_mini.Case.program in
      let t = Interp.create Interp.default_config p in
      case.Hippo_pmdk_mini.Case.workload t;
      let full = Oracle.of_program p in
      List.iter
        (function
          | Trace.Store { iid; _ } ->
              if not (full.Oracle.store_may_touch_pm p iid) then
                Alcotest.failf "%s: PM store %a missed by Full-AA"
                  case.Hippo_pmdk_mini.Case.id Iid.pp iid
          | _ -> ())
        (Interp.trace t))
    (Hippo_pmdk_mini.Bugs.all @ Hippo_apps.Pclht.cases)

let suite =
  [
    ("points-to on listing 5", `Quick, test_points_to_listing5);
    ("gep propagates", `Quick, test_gep_propagates);
    ("heap contents flow", `Quick, test_heap_contents_flow);
    ("return value flow", `Quick, test_retval_flow);
    ("global contents flow", `Quick, test_global_contents_flow);
    ("full-AA scores listing 6", `Quick, test_full_aa_listing6);
    ("trace-AA scores listing 6", `Quick, test_trace_aa_listing6);
    ("pointer-free call scores -inf", `Quick, test_no_pointer_args_scores_none);
    ("PM-store soundness (listing 5)", `Quick, test_store_may_touch_pm_soundness_on_listing5);
    ("PM-store soundness (corpus)", `Slow, test_oracle_soundness_on_corpus);
  ]
