  $ hippocrates check pmlog.pmir
  $ hippocrates fix pmlog.pmir --diff -o pmlog.fixed.pmir
  $ hippocrates check pmlog.fixed.pmir
