(* Tests for the repair engine: Phase 1 fix computation, Phase 2 fix
   reduction, Phase 3 hoisting, the persistent-subprogram transformation,
   and fix application. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

let v = Value.reg
let i = Value.imm

let build emit =
  let b = Builder.create () in
  emit b;
  let p = Builder.program b in
  Validate.check_exn p;
  p

let find_bugs ?(entry = "main") p =
  let t = Interp.create Interp.default_config p in
  ignore (Interp.call t entry []);
  Interp.exit_check t;
  (t, Interp.bugs t)

(* one PM store, no flush, no fence *)
let prog_flush_fence () =
  build (fun b ->
      let open Builder in
      let _ =
        func b "main" [] ~body:(fun fb ->
            let pm = call fb "pm_alloc" [ i 64 ] in
            store fb ~addr:pm (i 9);
            ret_void fb)
      in
      ())

(* one PM store, no flush, later fence *)
let prog_missing_flush () =
  build (fun b ->
      let open Builder in
      let _ =
        func b "main" [] ~body:(fun fb ->
            let pm = call fb "pm_alloc" [ i 64 ] in
            store fb ~addr:pm (i 9);
            fence fb ();
            ret_void fb)
      in
      ())

(* one PM store, flushed, never fenced *)
let prog_missing_fence () =
  build (fun b ->
      let open Builder in
      let _ =
        func b "main" [] ~body:(fun fb ->
            let pm = call fb "pm_alloc" [ i 64 ] in
            store fb ~addr:pm (i 9);
            flush fb pm;
            ret_void fb)
      in
      ())

(* ------------------------------------------------------------------ *)
(* Phase 1 *)

let test_phase1_flush_fence () =
  let p = prog_flush_fence () in
  let _, bugs = find_bugs p in
  let fixes = List.concat_map snd (Compute.phase1 p bugs) in
  let has_flush =
    List.exists
      (fun (f : Fix.intra) ->
        match f.Fix.action with Fix.Add_flush _ -> true | _ -> false)
      fixes
  and has_fence =
    List.exists
      (fun (f : Fix.intra) ->
        match f.Fix.action with Fix.Add_fence _ -> true | _ -> false)
      fixes
  in
  Alcotest.(check bool) "flush fix" true has_flush;
  Alcotest.(check bool) "fence fix" true has_fence

let test_phase1_missing_flush_only () =
  let p = prog_missing_flush () in
  let _, bugs = find_bugs p in
  Alcotest.(check bool) "classified missing-flush" true
    (List.for_all (fun (b : Report.bug) -> b.Report.kind = Report.Missing_flush) bugs);
  let fixes = List.concat_map snd (Compute.phase1 p bugs) in
  Alcotest.(check bool) "flush-only fixes" true
    (List.for_all
       (fun (f : Fix.intra) ->
         match f.Fix.action with Fix.Add_flush _ -> true | _ -> false)
       fixes)

let test_phase1_missing_fence_targets_flush () =
  let p = prog_missing_fence () in
  let _, bugs = find_bugs p in
  let bug = List.hd bugs in
  Alcotest.(check bool) "missing-fence" true (bug.Report.kind = Report.Missing_fence);
  let fixes = List.concat_map snd (Compute.phase1 p bugs) in
  match fixes with
  | [ { Fix.after; action = Fix.Add_fence _ } ] ->
      (* the fence is inserted after the ordering flush, not the store *)
      Alcotest.(check bool) "after the flush" true
        (match bug.Report.ordering_flush with
        | Some fl -> Iid.equal fl after
        | None -> false)
  | _ -> Alcotest.fail "expected a single fence fix"

let test_phase1_flush_reuses_store_address () =
  let p = prog_flush_fence () in
  let _, bugs = find_bugs p in
  let bug = List.hd bugs in
  let store_addr =
    match Program.find_instr p bug.Report.store.iid with
    | Some ins -> (
        match Instr.op ins with
        | Instr.Store { addr; _ } -> addr
        | _ -> assert false)
    | None -> assert false
  in
  let fixes = List.concat_map snd (Compute.phase1 p bugs) in
  List.iter
    (fun (f : Fix.intra) ->
      match f.Fix.action with
      | Fix.Add_flush { addr; _ } ->
          Alcotest.(check bool) "same operand" true (Value.equal addr store_addr)
      | _ -> ())
    fixes

(* ------------------------------------------------------------------ *)
(* Phase 2 *)

let test_reduce_merges_duplicates () =
  let p = prog_flush_fence () in
  let _, bugs = find_bugs p in
  (* duplicate every bug: reduction must still emit each fix once *)
  let per_bug = Compute.phase1 p (bugs @ bugs) in
  let reduced = Reduce.phase2 p per_bug in
  let raw = List.fold_left (fun n (_, fs) -> n + List.length fs) 0 per_bug in
  Alcotest.(check bool) "reduced below raw" true (List.length reduced < raw);
  (* distinct fixes only *)
  let rec no_dups = function
    | [] -> true
    | (r : Reduce.reduced) :: rest ->
        (not (List.exists (fun r' -> Fix.intra_equal r.Reduce.fix r'.Reduce.fix) rest))
        && no_dups rest
  in
  Alcotest.(check bool) "no duplicate fixes" true (no_dups reduced);
  (* provenance: the duplicated bug is attached to the same fix *)
  Alcotest.(check bool) "multi-bug provenance" true
    (List.exists (fun (r : Reduce.reduced) -> List.length r.Reduce.bugs >= 2) reduced)

let test_reduce_skips_already_present () =
  (* program that already flushes right after the store: a stale trace
     must not cause a second identical insertion *)
  let p = prog_missing_fence () in
  let stale_bug =
    let _, bugs = find_bugs (prog_missing_flush ()) in
    List.hd bugs
  in
  (* re-key the stale bug onto this program's store *)
  let _, real_bugs = find_bugs p in
  let this_store = (List.hd real_bugs).Report.store in
  let forged = { stale_bug with Report.store = this_store; kind = Report.Missing_flush } in
  let reduced = Reduce.phase2 p [ (forged, Compute.fixes_for p forged) ] in
  Alcotest.(check int) "flush already present -> dropped" 0 (List.length reduced)

let test_reduce_eliminated_metric () =
  let p = prog_flush_fence () in
  let _, bugs = find_bugs p in
  let per_bug = Compute.phase1 p (bugs @ bugs) in
  let reduced = Reduce.phase2 p per_bug in
  Alcotest.(check int) "eliminated count"
    (List.fold_left (fun n (_, fs) -> n + List.length fs) 0 per_bug
    - List.length reduced)
    (Reduce.eliminated ~raw:per_bug ~reduced)

(* ------------------------------------------------------------------ *)
(* Phase 3 + transformation *)

let listing5 () =
  build (fun b ->
      let open Builder in
      let _ =
        func b "update" [ "addr"; "idx"; "val" ] ~body:(fun fb ->
            let a = gep fb (v "addr") (v "idx") in
            store fb ~size:1 ~addr:a (v "val");
            ret_void fb)
      in
      let _ =
        func b "modify" [ "addr" ] ~body:(fun fb ->
            call_void fb "update" [ v "addr"; i 0; i 42 ];
            ret_void fb)
      in
      let _ =
        func b "main" [] ~body:(fun fb ->
            let vol = call fb "malloc" [ i 64 ] in
            let pm = call fb "pm_alloc" [ i 64 ] in
            for_ fb "k" ~from:(i 0) ~below:(i 10) ~body:(fun _ ->
                call_void fb "modify" [ vol ]);
            call_void fb "modify" [ pm ];
            crash fb;
            ret_void fb)
      in
      ())

let test_heuristic_candidates_stop_at_crash_function () =
  let p = listing5 () in
  let _, bugs = find_bugs p in
  let crash_bug =
    List.find (fun (b : Report.bug) -> b.Report.crash.crash_iid <> None) bugs
  in
  let cands = Heuristic.call_candidates crash_bug in
  (* update's and modify's creating call sites; main (crash frame) excluded *)
  Alcotest.(check int) "two candidates" 2 (List.length cands);
  Alcotest.(check (list string)) "callee order inner-out"
    [ "update"; "modify" ]
    (List.map snd cands)

let test_heuristic_chooses_outermost_max () =
  let p = listing5 () in
  let _, bugs = find_bugs p in
  let oracle = Hippo_alias.Oracle.of_program p in
  let d = Heuristic.decide oracle p (List.hd bugs) in
  match d.Heuristic.choice with
  | Heuristic.At_call { callee; depth; _ } ->
      Alcotest.(check string) "hoists modify" "modify" callee;
      Alcotest.(check int) "depth 2" 2 depth
  | Heuristic.At_store -> Alcotest.fail "expected a hoist"

let test_heuristic_tie_prefers_store () =
  (* PM-only leaf: store site and call site tie; intraprocedural wins *)
  let p =
    build (fun b ->
        let open Builder in
        let _ =
          func b "leaf" [ "p" ] ~body:(fun fb ->
              store fb ~addr:(v "p") (i 4);
              ret_void fb)
        in
        let _ =
          func b "main" [] ~body:(fun fb ->
              let pm = call fb "pm_alloc" [ i 64 ] in
              call_void fb "leaf" [ pm ];
              fence fb ();
              ret_void fb)
        in
        ())
  in
  let _, bugs = find_bugs p in
  let oracle = Hippo_alias.Oracle.of_program p in
  let d = Heuristic.decide oracle p (List.hd bugs) in
  Alcotest.(check bool) "stays at store" true (d.Heuristic.choice = Heuristic.At_store)

let test_transform_clone_reuse () =
  let p = listing5 () in
  let oracle = Hippo_alias.Oracle.of_program p in
  let ctx = Transform.create ~oracle p in
  let c1 = Transform.ensure_clone ctx "modify" in
  let c2 = Transform.ensure_clone ctx "modify" in
  Alcotest.(check string) "same clone" c1 c2;
  Alcotest.(check int) "two functions added (modify_PM, update_PM)" 2
    ctx.Transform.funcs_added;
  let clone = Program.find_exn ctx.Transform.prog c1 in
  let calls = Func.call_sites clone in
  Alcotest.(check bool) "clone calls update_PM" true
    (List.exists (fun (_, callee, _) -> callee = "update_PM") calls)

let test_transform_clone_flushes_pm_stores () =
  let p = listing5 () in
  let oracle = Hippo_alias.Oracle.of_program p in
  let ctx = Transform.create ~oracle p in
  let _ = Transform.ensure_clone ctx "update" in
  let clone = Program.find_exn ctx.Transform.prog "update_PM" in
  let instrs = Func.instrs clone in
  let rec store_then_flush = function
    | a :: b :: rest ->
        (if Instr.is_store a then Instr.is_flush b else true)
        && store_then_flush (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "every store followed by flush" true
    (store_then_flush instrs);
  Alcotest.(check bool) "clone contains a flush" true
    (List.exists Instr.is_flush instrs);
  Alcotest.(check bool) "no fence inside the clone" true
    (not (List.exists Instr.is_fence instrs))

let test_transform_no_reuse_ablation () =
  let p = listing5 () in
  let oracle = Hippo_alias.Oracle.of_program p in
  let f = Program.find_exn p "main" in
  let modify_sites =
    List.filter_map
      (fun (iid, c, _) -> if c = "modify" then Some iid else None)
      (Func.call_sites f)
  in
  let hoist_at ctx cs depth =
    Transform.hoist ctx { Fix.call_site = cs; callee = "modify"; depth }
  in
  let with_reuse = Transform.create ~reuse:true ~oracle p in
  List.iter (fun cs -> hoist_at with_reuse cs 1) modify_sites;
  let without_reuse = Transform.create ~reuse:false ~oracle p in
  List.iter (fun cs -> hoist_at without_reuse cs 1) modify_sites;
  Alcotest.(check bool) "reuse creates fewer functions" true
    (with_reuse.Transform.funcs_added < without_reuse.Transform.funcs_added);
  Validate.check_exn with_reuse.Transform.prog;
  Validate.check_exn without_reuse.Transform.prog

let test_transform_recursive_subprogram_terminates () =
  let p =
    build (fun b ->
        let open Builder in
        let _ =
          func b "rec_write" [ "p"; "n" ] ~body:(fun fb ->
              if_ fb
                (Builder.le fb (v "n") (i 0))
                ~then_:(fun () -> ret_void fb)
                ();
              store fb ~addr:(v "p") (v "n");
              call_void fb "rec_write"
                [ gep fb (v "p") (i 8); Builder.sub fb (v "n") (i 1) ];
              ret_void fb)
        in
        let _ =
          func b "main" [] ~body:(fun fb ->
              let pm = call fb "pm_alloc" [ i 128 ] in
              call_void fb "rec_write" [ pm; i 4 ];
              ret_void fb)
        in
        ())
  in
  let oracle = Hippo_alias.Oracle.of_program p in
  let ctx = Transform.create ~oracle p in
  let c = Transform.ensure_clone ctx "rec_write" in
  let clone = Program.find_exn ctx.Transform.prog c in
  Alcotest.(check bool) "recursive clone calls itself" true
    (List.exists (fun (_, callee, _) -> callee = c) (Func.call_sites clone));
  Validate.check_exn ctx.Transform.prog

(* ------------------------------------------------------------------ *)
(* Apply *)

let test_apply_orders_flush_before_fence () =
  let p = prog_flush_fence () in
  let _, bugs = find_bugs p in
  let oracle = Hippo_alias.Oracle.of_program p in
  let plan, _, _ = Driver.plan ~oracle p bugs in
  let repaired, stats = Apply.apply ~oracle p plan in
  Alcotest.(check int) "one flush" 1 stats.Apply.intra_flushes;
  Alcotest.(check int) "one fence" 1 stats.Apply.intra_fences;
  let f = Program.find_exn repaired "main" in
  let rec scan = function
    | a :: b :: c :: rest ->
        if Instr.is_store a then (
          Alcotest.(check bool) "store; flush; fence" true
            (Instr.is_flush b && Instr.is_fence c))
        else scan (b :: c :: rest)
    | _ -> ()
  in
  scan (Func.instrs f);
  Validate.check_exn repaired

let test_apply_missing_insertion_point_rejected () =
  let p = prog_flush_fence () in
  let ghost =
    {
      Fix.after = Iid.fresh ~func:"main";
      action = Fix.Add_fence { kind = Instr.Sfence };
    }
  in
  let oracle = Hippo_alias.Oracle.of_program p in
  match Apply.apply ~oracle p { Fix.fixes = [ Fix.Intra ghost ]; per_bug = [] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_apply_portable_style () =
  (* with the runtime linked, portable fixes are pmem_flush/pmem_drain
     calls — the developer-style fix of Fig. 3's first row *)
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 64 ] in
        store fb ~addr:pm (i 9);
        ret_void fb)
  in
  let p = Builder.program b in
  let _, bugs = find_bugs p in
  let oracle = Hippo_alias.Oracle.of_program p in
  let plan, _, _ = Driver.plan ~oracle p bugs in
  let repaired, stats = Apply.apply ~style:Apply.Portable ~oracle p plan in
  Alcotest.(check int) "one flush" 1 stats.Apply.intra_flushes;
  let f = Program.find_exn repaired "main" in
  let callees =
    List.filter_map
      (fun ins ->
        match Instr.op ins with
        | Instr.Call { callee; _ } -> Some callee
        | _ -> None)
      (Func.instrs f)
  in
  Alcotest.(check bool) "calls pmem_flush" true (List.mem "pmem_flush" callees);
  Alcotest.(check bool) "calls pmem_drain" true (List.mem "pmem_drain" callees);
  (* and the repaired program is clean *)
  let t = Interp.create Interp.default_config repaired in
  ignore (Interp.call t "main" []);
  Interp.exit_check t;
  Alcotest.(check int) "portable fix is effective" 0
    (List.length (Interp.bugs t))

let test_apply_portable_falls_back_without_runtime () =
  let p = prog_flush_fence () in
  let _, bugs = find_bugs p in
  let oracle = Hippo_alias.Oracle.of_program p in
  let plan, _, _ = Driver.plan ~oracle p bugs in
  let repaired, _ = Apply.apply ~style:Apply.Portable ~oracle p plan in
  let f = Program.find_exn repaired "main" in
  Alcotest.(check bool) "direct clwb emitted" true
    (List.exists Instr.is_flush (Func.instrs f))

let test_apply_preserves_original_iids () =
  let p = prog_flush_fence () in
  let _, bugs = find_bugs p in
  let oracle = Hippo_alias.Oracle.of_program p in
  let plan, _, _ = Driver.plan ~oracle p bugs in
  let repaired, _ = Apply.apply ~oracle p plan in
  List.iter
    (fun (b : Report.bug) ->
      Alcotest.(check bool) "buggy store still addressable" true
        (Program.find_instr repaired b.Report.store.iid <> None))
    bugs

let suite =
  [
    ("phase1: flush&fence", `Quick, test_phase1_flush_fence);
    ("phase1: missing flush only", `Quick, test_phase1_missing_flush_only);
    ("phase1: fence after flush", `Quick, test_phase1_missing_fence_targets_flush);
    ("phase1: flush reuses operand", `Quick, test_phase1_flush_reuses_store_address);
    ("phase2: merges duplicates", `Quick, test_reduce_merges_duplicates);
    ("phase2: skips already present", `Quick, test_reduce_skips_already_present);
    ("phase2: eliminated metric", `Quick, test_reduce_eliminated_metric);
    ("phase3: candidate walk", `Quick, test_heuristic_candidates_stop_at_crash_function);
    ("phase3: picks max score", `Quick, test_heuristic_chooses_outermost_max);
    ("phase3: tie prefers store", `Quick, test_heuristic_tie_prefers_store);
    ("transform: clone reuse", `Quick, test_transform_clone_reuse);
    ("transform: clone flush placement", `Quick, test_transform_clone_flushes_pm_stores);
    ("transform: reuse ablation", `Quick, test_transform_no_reuse_ablation);
    ("transform: recursion terminates", `Quick, test_transform_recursive_subprogram_terminates);
    ("apply: flush before fence", `Quick, test_apply_orders_flush_before_fence);
    ("apply: missing point rejected", `Quick, test_apply_missing_insertion_point_rejected);
    ("apply: portable style", `Quick, test_apply_portable_style);
    ("apply: portable fallback", `Quick, test_apply_portable_falls_back_without_runtime);
    ("apply: original iids preserved", `Quick, test_apply_preserves_original_iids);
  ]
