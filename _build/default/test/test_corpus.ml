(* The evaluation corpus as a test suite (E2 effectiveness, E3 heuristic
   equivalence, E4 accuracy vs developer fixes). *)

open Hippo_pmcheck
open Hippo_core
open Hippo_pmdk_mini

let repair ?(options = Driver.default_options) (case : Case.t) =
  Driver.repair ~options ~name:case.Case.id ~workload:case.Case.workload
    (Lazy.force case.Case.program)

let results : (string, Driver.result) Hashtbl.t = Hashtbl.create 32

let result_for (case : Case.t) =
  (* corpus cases sharing a program share the repair result *)
  let key = case.Case.system in
  let key = if case.Case.system = "PMDK" then case.Case.id else key in
  match Hashtbl.find_opt results key with
  | Some r -> r
  | None ->
      let r = repair case in
      Hashtbl.add results key r;
      r

let all_cases =
  Bugs.all @ Hippo_apps.Pclht.cases @ Hippo_apps.Memcached_mini.cases

let test_corpus_has_23_bugs () =
  Alcotest.(check int) "23 cases" 23 (List.length all_cases);
  Alcotest.(check int) "11 PMDK" 11 (List.length Bugs.all);
  Alcotest.(check int) "2 P-CLHT" 2 (List.length Hippo_apps.Pclht.cases);
  Alcotest.(check int) "10 memcached" 10
    (List.length Hippo_apps.Memcached_mini.cases)

let check_case (case : Case.t) () =
  let r = result_for case in
  Alcotest.(check bool) "bugs found" true (r.Driver.bugs <> []);
  Alcotest.(check bool) "expected kind reported" true
    (List.exists
       (fun (b : Report.bug) -> b.Report.kind = case.Case.expected_kind)
       r.Driver.bugs);
  Alcotest.(check bool) "expected fix shape produced" true
    (List.exists
       (fun (_, s) -> Case.shape_matches case.Case.expected_shape s)
       r.Driver.plan.Fix.per_bug);
  Alcotest.(check bool) "no residual bugs" true
    (Verify.effective r.Driver.verification);
  Alcotest.(check bool) "do no harm" true
    (Verify.harm_free r.Driver.verification)

(* E4 (Fig. 3): the accuracy split — 3 intraprocedural-flush cases whose
   developer fix was the portable libpmem flush, 8 interprocedural cases
   functionally identical to the developer fix. *)
let test_fig3_split () =
  let intra, inter =
    List.partition
      (fun (c : Case.t) -> c.Case.expected_shape = Case.Exp_intra_flush)
      Bugs.all
  in
  Alcotest.(check int) "3 portable-flush rows" 3 (List.length intra);
  Alcotest.(check int) "8 identical rows" 8 (List.length inter);
  List.iter
    (fun (c : Case.t) ->
      Alcotest.(check bool) "dev fix is portable flush" true
        (c.Case.dev_fix = Some Case.Dev_portable_flush))
    intra;
  List.iter
    (fun (c : Case.t) ->
      Alcotest.(check bool) "dev fix is inter flush+fence" true
        (c.Case.dev_fix = Some Case.Dev_inter_flush_fence))
    inter

(* E3: Full-AA and Trace-AA produce identical fix plans on every subject. *)
let test_heuristic_equivalence () =
  List.iter
    (fun (case : Case.t) ->
      let full = repair case in
      let tr =
        repair ~options:{ Driver.default_options with oracle = Driver.Trace_aa }
          case
      in
      let plan_sig (r : Driver.result) =
        List.map Fix.to_string r.Driver.plan.Fix.fixes
        |> List.sort String.compare
      in
      Alcotest.(check (list string))
        (case.Case.id ^ ": identical fixes")
        (plan_sig full) (plan_sig tr))
    all_cases

(* Bug-site counts per system (the paper's 2 + 10 undocumented bugs).
   P-CLHT is counted by distinct store sites (its durability points report
   the same omissions repeatedly); memcached by distinct (site, call-chain)
   bugs, since its two memcpy omissions share one store instruction. *)
let test_bug_site_counts () =
  (match Hippo_apps.Pclht.cases with
  | first :: _ ->
      let r = result_for first in
      Alcotest.(check int) "P-CLHT injected sites" 2
        (Case.static_bug_sites r.Driver.bugs)
  | [] -> ());
  match Hippo_apps.Memcached_mini.cases with
  | first :: _ ->
      let r = result_for first in
      Alcotest.(check int) "memcached injected bugs" 10
        (List.length (Report.dedup r.Driver.bugs));
      Alcotest.(check int) "memcached distinct sites" 9
        (Case.static_bug_sites r.Driver.bugs)
  | [] -> ()

let suite =
  [
    ("corpus size", `Quick, test_corpus_has_23_bugs);
    ("fig3 split", `Quick, test_fig3_split);
    ("bug site counts", `Slow, test_bug_site_counts);
    ("heuristic equivalence (E3)", `Slow, test_heuristic_equivalence);
  ]
  @ List.map
      (fun (c : Case.t) -> (c.Case.id, `Slow, check_case c))
      all_cases
