(* End-to-end repair pipeline tests, including the executable counterparts
   of the paper's guarantees as qcheck properties over randomly generated
   buggy programs:

   - completeness: after repair, the bug finder reports zero bugs;
   - do no harm: repair preserves emitted outputs and final working PM
     contents on the same workload;
   - robustness: the guarantees hold with hoisting disabled, with fix
     reduction disabled, and under the Trace-AA oracle. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

let i = Value.imm

(* ------------------------------------------------------------------ *)
(* Random buggy-program generator.

   Shape: a helper [h] that writes one word through its pointer argument
   (shared by volatile and persistent callers), plus a main function
   performing a random sequence of PM stores, volatile stores, flushes,
   fences, helper calls and emits. Bugs arise naturally from the random
   omission of flushes and fences. *)

type step =
  | S_pm_store of int * int  (* slot, value *)
  | S_vol_store of int * int
  | S_flush_pm of int
  | S_fence
  | S_helper_pm of int * int
  | S_helper_vol of int * int
  | S_emit_load of int

let gen_steps : step list QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_range 0 3 in
  let value = int_range 1 1000 in
  list_size (int_range 1 25)
    (oneof
       [
         map2 (fun s x -> S_pm_store (s, x)) slot value;
         map2 (fun s x -> S_vol_store (s, x)) slot value;
         map (fun s -> S_flush_pm s) slot;
         return S_fence;
         map2 (fun s x -> S_helper_pm (s, x)) slot value;
         map2 (fun s x -> S_helper_vol (s, x)) slot value;
         map (fun s -> S_emit_load s) slot;
       ])

let program_of_steps steps : Program.t =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "h" [ "p"; "x" ] ~body:(fun fb ->
        store fb ~addr:(Value.reg "p") (Value.reg "x");
        ret_void fb)
  in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let pm = call fb "pm_alloc" [ i 256 ] in
        let vol = call fb "malloc" [ i 256 ] in
        let pm_slot k = gep fb pm (i (k * 64)) in
        let vol_slot k = gep fb vol (i (k * 8)) in
        List.iter
          (function
            | S_pm_store (s, x) -> store fb ~addr:(pm_slot s) (i x)
            | S_vol_store (s, x) -> store fb ~addr:(vol_slot s) (i x)
            | S_flush_pm s -> flush fb (pm_slot s)
            | S_fence -> fence fb ()
            | S_helper_pm (s, x) -> call_void fb "h" [ pm_slot s; i x ]
            | S_helper_vol (s, x) -> call_void fb "h" [ vol_slot s; i x ]
            | S_emit_load s -> call_void fb "emit" [ load fb (pm_slot s) ])
          steps;
        ret_void fb)
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

let arb_buggy =
  QCheck.make
    QCheck.Gen.(map program_of_steps gen_steps)
    ~print:Printer.to_string

let workload t = ignore (Interp.call t "main" [])

let repair_with options p =
  Driver.repair ~options ~name:"random" ~workload p

let effective_and_harmless (r : Driver.result) =
  Verify.effective r.Driver.verification
  && Verify.harm_free r.Driver.verification

let prop_repair_complete_and_harmless =
  QCheck.Test.make ~name:"repair: complete and harmless (Full-AA)" ~count:60
    arb_buggy
    (fun p -> effective_and_harmless (repair_with Driver.default_options p))

let prop_repair_trace_aa =
  QCheck.Test.make ~name:"repair: complete and harmless (Trace-AA)" ~count:40
    arb_buggy
    (fun p ->
      effective_and_harmless
        (repair_with { Driver.default_options with oracle = Driver.Trace_aa } p))

let prop_repair_no_hoisting =
  QCheck.Test.make ~name:"repair: complete and harmless (intra only)"
    ~count:40 arb_buggy
    (fun p ->
      effective_and_harmless
        (repair_with { Driver.default_options with hoisting = false } p))

let prop_reduction_preserves_outcome =
  QCheck.Test.make ~name:"fix reduction never changes the outcome" ~count:30
    arb_buggy
    (fun p ->
      let on = repair_with Driver.default_options p in
      let off =
        repair_with { Driver.default_options with reduction = false } p
      in
      effective_and_harmless on && effective_and_harmless off)

let prop_trace_file_plan_equivalence =
  (* the CLI path: serializing the trace to disk and planning from the
     parsed reports yields the same fixes as planning in-process *)
  QCheck.Test.make ~name:"on-disk trace reproduces the in-process plan"
    ~count:25 arb_buggy
    (fun p ->
      let t = Interp.create Interp.default_config p in
      workload t;
      Interp.exit_check t;
      let native_bugs = Interp.bugs t in
      (* round-trip reports and statistics through their textual forms *)
      let bugs' =
        List.map Report.of_line (List.map Report.to_line (Interp.raw_bugs t))
        |> Report.dedup
      in
      let stats' =
        Sitestats.of_lines (Sitestats.to_lines (Interp.site_stats t))
      in
      let plan_of bugs stats =
        let oracle = Hippo_alias.Oracle.trace_aa stats in
        let plan, _, _ = Driver.plan ~oracle p bugs in
        List.sort String.compare (List.map Fix.to_string plan.Fix.fixes)
      in
      plan_of native_bugs (Interp.site_stats t) = plan_of bugs' stats')

let prop_repair_idempotent =
  QCheck.Test.make ~name:"repairing a repaired program changes nothing"
    ~count:25 arb_buggy
    (fun p ->
      let r1 = repair_with Driver.default_options p in
      let r2 = repair_with Driver.default_options r1.Driver.repaired in
      r2.Driver.bugs = [] && List.length r2.Driver.plan.Fix.fixes = 0)

(* ------------------------------------------------------------------ *)
(* Deterministic end-to-end checks *)

let test_driver_summary_fields () =
  let p = program_of_steps [ S_pm_store (0, 1); S_helper_pm (1, 2) ] in
  let r = repair_with Driver.default_options p in
  Alcotest.(check bool) "found bugs" true (r.Driver.bugs <> []);
  Alcotest.(check bool) "sized" true (r.Driver.input_instrs > 0);
  Alcotest.(check bool) "grew" true (r.Driver.output_instrs > r.Driver.input_instrs);
  Alcotest.(check bool) "traced" true (r.Driver.trace_events > 0);
  Alcotest.(check bool) "timed" true (r.Driver.time_s >= 0.0);
  Alcotest.(check bool) "memory" true (r.Driver.peak_heap_bytes > 0)

let test_driver_no_bugs_no_fixes () =
  let p =
    program_of_steps [ S_pm_store (0, 1); S_flush_pm 0; S_fence ]
  in
  let r = repair_with Driver.default_options p in
  Alcotest.(check int) "no bugs" 0 (List.length r.Driver.bugs);
  Alcotest.(check int) "no fixes" 0 (List.length r.Driver.plan.Fix.fixes);
  Alcotest.(check int) "program unchanged" r.Driver.input_instrs
    r.Driver.output_instrs

let test_driver_plan_from_reports () =
  (* the CLI's trace-file path: plan from externally parsed reports *)
  let p = program_of_steps [ S_pm_store (0, 7) ] in
  let t = Interp.create Interp.default_config p in
  workload t;
  Interp.exit_check t;
  let bugs = Interp.bugs t in
  let oracle = Hippo_alias.Oracle.of_program p in
  let plan, _, _ = Driver.plan ~oracle p bugs in
  let repaired, _ = Apply.apply ~oracle p plan in
  let t2 = Interp.create Interp.default_config repaired in
  workload t2;
  Interp.exit_check t2;
  Alcotest.(check int) "clean after plan-from-reports" 0
    (List.length (Interp.bugs t2))

let test_quickstart_produces_listing5_output () =
  (* the paper's transformation result, end to end *)
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "update" [ "addr"; "idx"; "val" ] ~body:(fun fb ->
        let a = gep fb (Value.reg "addr") (Value.reg "idx") in
        store fb ~size:1 ~addr:a (Value.reg "val");
        ret_void fb)
  in
  let _ =
    func b "modify" [ "addr" ] ~body:(fun fb ->
        call_void fb "update" [ Value.reg "addr"; i 0; i 42 ];
        ret_void fb)
  in
  let _ =
    func b "foo" [] ~body:(fun fb ->
        let vol = call fb "malloc" [ i 64 ] in
        let pm = call fb "pm_alloc" [ i 64 ] in
        for_ fb "k" ~from:(i 0) ~below:(i 10) ~body:(fun _ ->
            call_void fb "modify" [ vol ]);
        call_void fb "modify" [ pm ];
        crash fb;
        ret_void fb)
  in
  let p = Builder.program b in
  let r =
    Driver.repair ~name:"listing5"
      ~workload:(fun t -> ignore (Interp.call t "foo" []))
      p
  in
  Alcotest.(check bool) "modify_PM created" true
    (Program.mem r.Driver.repaired "modify_PM");
  Alcotest.(check bool) "update_PM created" true
    (Program.mem r.Driver.repaired "update_PM");
  Alcotest.(check bool) "original modify kept" true
    (Program.mem r.Driver.repaired "modify");
  Alcotest.(check int) "exactly one hoist" 1 (Fix.count_hoisted r.Driver.plan);
  Alcotest.(check bool) "verified" true (effective_and_harmless r)

let string_contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go k = k + n <= h && (String.sub hay k n = needle || go (k + 1)) in
  go 0

let test_diff_reports_insertions () =
  let p = program_of_steps [ S_pm_store (0, 1); S_helper_pm (1, 2) ] in
  let r = repair_with Driver.default_options p in
  let changes = Diff.changes ~original:p ~repaired:r.Driver.repaired in
  Alcotest.(check bool) "nonempty diff" true (changes <> []);
  (* every insertion anchors to an instruction of the original program *)
  List.iter
    (function
      | Diff.Inserted { after = Some a; _ } ->
          Alcotest.(check bool) "anchor exists in original" true
            (Program.find_instr p (Instr.iid a) <> None)
      | _ -> ())
    changes;
  Alcotest.(check int) "insertion count matches growth"
    (r.Driver.output_instrs - r.Driver.input_instrs)
    (Diff.inserted_instrs ~original:p ~repaired:r.Driver.repaired);
  (* the rendered report mentions each inserted mechanism *)
  let report = Diff.report ~original:p ~repaired:r.Driver.repaired in
  Alcotest.(check bool) "mentions a flush" true
    (string_contains ~needle:"flush" report)

and test_diff_clone_attribution () =
  let p =
    let b = Builder.create () in
    let open Builder in
    let _ =
      func b "w" [ "p" ] ~body:(fun fb ->
          store fb ~addr:(Value.reg "p") (i 1);
          ret_void fb)
    in
    let _ =
      func b "main" [] ~body:(fun fb ->
          call_void fb "w" [ call fb "malloc" [ i 8 ] ];
          call_void fb "w" [ call fb "pm_alloc" [ i 8 ] ];
          ret_void fb)
    in
    Builder.program b
  in
  let r = repair_with Driver.default_options p in
  let clones =
    List.filter_map
      (function
        | Diff.New_function { func; cloned_from } ->
            Some (Func.name func, cloned_from)
        | _ -> None)
      (Diff.changes ~original:p ~repaired:r.Driver.repaired)
  in
  Alcotest.(check (list (pair string (option string))))
    "clone attributed to its origin"
    [ ("w_PM", Some "w") ]
    clones

let suite =
  [
    ("summary fields", `Quick, test_driver_summary_fields);
    ("diff reports insertions", `Quick, test_diff_reports_insertions);
    ("diff clone attribution", `Quick, test_diff_clone_attribution);
    ("clean program untouched", `Quick, test_driver_no_bugs_no_fixes);
    ("plan from external reports", `Quick, test_driver_plan_from_reports);
    ("listing 5 end to end", `Quick, test_quickstart_produces_listing5_output);
    QCheck_alcotest.to_alcotest prop_repair_complete_and_harmless;
    QCheck_alcotest.to_alcotest prop_repair_trace_aa;
    QCheck_alcotest.to_alcotest prop_repair_no_hoisting;
    QCheck_alcotest.to_alcotest prop_reduction_preserves_outcome;
    QCheck_alcotest.to_alcotest prop_trace_file_plan_equivalence;
    QCheck_alcotest.to_alcotest prop_repair_idempotent;
  ]
