test/test_pmcheck.ml: Alcotest Builder Bytes Cost Crashsim Hippo_pmcheck Hippo_pmir Iid Instr Int64 Interp Layout List Loc Mem Pmtest_format Printf Pstate Report Sitestats Trace Validate Value
