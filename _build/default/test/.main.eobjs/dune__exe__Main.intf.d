test/main.mli:
