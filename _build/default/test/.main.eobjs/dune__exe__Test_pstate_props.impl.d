test/test_pstate_props.ml: Bytes Hippo_pmcheck Hippo_pmir Iid Instr List Loc Mem Printf Pstate QCheck QCheck_alcotest Report String
