test/test_corpus.ml: Alcotest Bugs Case Driver Fix Hashtbl Hippo_apps Hippo_core Hippo_pmcheck Hippo_pmdk_mini Lazy List Report String Verify
