test/test_ycsb.ml: Alcotest Array Char Fun Hippo_ycsb List QCheck QCheck_alcotest Rng String Workload Zipfian
