test/test_pmir.ml: Alcotest Builder Clone Func Hippo_pmir Iid Instr List Loc Parser Printer Program QCheck QCheck_alcotest Validate Value
