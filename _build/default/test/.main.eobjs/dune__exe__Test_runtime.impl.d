test/test_runtime.ml: Alcotest Builder Bytes Char Hippo_pmcheck Hippo_pmdk_mini Hippo_pmir Int64 Interp List Mem Printf Report String Validate Value
