test/test_apps.ml: Alcotest Crashsim Hippo_apps Hippo_core Hippo_pmcheck Hippo_ycsb Interp Layout List Mem Memcached_mini Pclht Printf Redis_bench Redis_mini String
