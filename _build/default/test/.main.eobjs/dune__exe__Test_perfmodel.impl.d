test/test_perfmodel.ml: Alcotest Builder Cost Hippo_perfmodel Hippo_pmcheck Hippo_pmir Interp Stats Timed Value
