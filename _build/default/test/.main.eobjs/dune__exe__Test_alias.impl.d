test/test_alias.ml: Alcotest Andersen Builder Func Hippo_alias Hippo_apps Hippo_pmcheck Hippo_pmdk_mini Hippo_pmir Iid Instr Interp Lazy List Option Oracle Program Trace Value
