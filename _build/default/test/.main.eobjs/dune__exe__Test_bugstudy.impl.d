test/test_bugstudy.ml: Alcotest Dataset Hippo_bugstudy Hippo_pmdk_mini List Printf
