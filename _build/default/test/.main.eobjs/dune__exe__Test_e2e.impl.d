test/test_e2e.ml: Alcotest Builder Crashsim Driver Hippo_apps Hippo_core Hippo_perfmodel Hippo_pmcheck Hippo_pmir Hippo_ycsb Interp List Printer Program QCheck QCheck_alcotest Validate Value Verify
