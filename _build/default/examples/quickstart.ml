(* Quickstart: repair the paper's Listing 5/6 program.

   [update] writes one byte through a pointer; [modify] wraps it. [foo]
   calls [modify] many times on volatile memory and once on persistent
   memory, then hits a crash point. The PM write is never flushed: a
   missing-flush&fence bug. Hippocrates should hoist the fix to the
   [modify(pm_addr)] call site (Listing 6 scores the candidates 0, 0, 1),
   creating [modify_PM]/[update_PM] clones — exactly Listing 5's output. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

let listing5 () =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "update" [ "addr"; "idx"; "val" ] ~body:(fun fb ->
        let a = gep fb (Value.reg "addr") (Value.reg "idx") in
        store fb ~size:1 ~addr:a (Value.reg "val");
        ret_void fb)
  in
  let _ =
    func b "modify" [ "addr" ] ~body:(fun fb ->
        call_void fb "update" [ Value.reg "addr"; Value.imm 0; Value.imm 42 ];
        ret_void fb)
  in
  let _ =
    func b "foo" [] ~body:(fun fb ->
        let vol = call fb "malloc" [ Value.imm 64 ] in
        let pm = call fb "pm_alloc" [ Value.imm 64 ] in
        for_ fb "i" ~from:(Value.imm 0) ~below:(Value.imm 1000) ~body:(fun _ ->
            call_void fb "modify" [ vol ]);
        call_void fb "modify" [ pm ];
        crash fb;
        ret_void fb)
  in
  Builder.program b

let () =
  let prog = listing5 () in
  Validate.check_exn prog;
  Fmt.pr "=== Original program ===@.%s@." (Printer.to_string prog);
  let workload t = ignore (Interp.call t "foo" []) in
  let result = Driver.repair ~name:"listing5" ~workload prog in
  Fmt.pr "=== Bugs found ===@.";
  List.iter (fun b -> Fmt.pr "  %a@." Report.pp_bug b) result.Driver.bugs;
  Fmt.pr "=== Fix plan ===@.";
  List.iter (fun f -> Fmt.pr "  %a@." Fix.pp f) result.Driver.plan.Fix.fixes;
  Fmt.pr "=== Repaired program ===@.%s@."
    (Printer.to_string result.Driver.repaired);
  Fmt.pr "=== Summary ===@.%a@." Driver.pp_summary result
