(* A guided tour of the hoisting heuristic (paper §4.3, Listing 6).

   Rebuilds the paper's example, prints the candidate fix locations with
   their alias scores under both oracles, and shows the decision and the
   resulting patch. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

let v = Value.reg
let i = Value.imm

let listing6 () =
  let b = Builder.create () in
  let open Builder in
  let _ =
    func b "update" [ "addr"; "idx"; "val" ] ~body:(fun fb ->
        at fb 3;
        let a = gep fb (v "addr") (v "idx") in
        store fb ~size:1 ~addr:a (v "val");
        ret_void fb)
  in
  let _ =
    func b "modify" [ "addr" ] ~body:(fun fb ->
        at fb 7;
        call_void fb "update" [ v "addr"; i 0; i 42 ];
        ret_void fb)
  in
  let _ =
    func b "foo" [] ~body:(fun fb ->
        let vol = call fb "malloc" [ i 64 ] in
        let pm = call fb "pm_alloc" [ i 64 ] in
        for_ fb "k" ~from:(i 0) ~below:(i 100) ~body:(fun _ ->
            at fb 12;
            call_void fb "modify" [ vol ]);
        at fb 15;
        call_void fb "modify" [ pm ];
        at fb 16;
        crash fb;
        ret_void fb)
  in
  Builder.program b

let pp_candidate prog ppf = function
  | Heuristic.At_store -> Fmt.string ppf "the PM-modifying store itself"
  | Heuristic.At_call { call_site; callee; depth } ->
      let loc =
        match Program.find_instr prog call_site with
        | Some ins -> Loc.to_string (Instr.loc ins)
        | None -> "?"
      in
      Fmt.pf ppf "call to @%s at %s (%d frame%s up)" callee loc depth
        (if depth = 1 then "" else "s")

let show_decision prog label (oracle : Hippo_alias.Oracle.t) bug =
  let d = Heuristic.decide oracle prog bug in
  Fmt.pr "@.%s (%s):@." label oracle.Hippo_alias.Oracle.name;
  List.iter
    (fun (c, score) ->
      Fmt.pr "  score %+d  %a@." score (pp_candidate prog) c)
    d.Heuristic.scores;
  Fmt.pr "  -> chosen: %a@." (pp_candidate prog) d.Heuristic.choice

let () =
  let prog = listing6 () in
  Fmt.pr "Listing 6 (the paper's scoring example):@.%s@."
    (Printer.to_string prog);
  (* run the bug finder *)
  let t = Interp.create Interp.default_config prog in
  ignore (Interp.call t "foo" []);
  Interp.exit_check t;
  let bug = List.hd (Interp.bugs t) in
  Fmt.pr "bug under repair: %a@." Report.pp_bug bug;
  (* candidates and scores under both oracles *)
  let full = Hippo_alias.Oracle.of_program prog in
  let trace = Hippo_alias.Oracle.trace_aa (Interp.site_stats t) in
  show_decision prog "static alias analysis" full bug;
  show_decision prog "dynamic trace observations" trace bug;
  (* the resulting repair, as a patch *)
  let r =
    Driver.repair ~name:"listing6"
      ~workload:(fun t -> ignore (Interp.call t "foo" []))
      prog
  in
  Fmt.pr "@.resulting patch:@.%s@."
    (Diff.report ~original:prog ~repaired:r.Driver.repaired);
  Fmt.pr "@.%a@." Driver.pp_summary r
