(* The Redis case study (§6.3): create a PM port of Redis purely from
   Hippocrates fixes and compare it against the hand-written port.

   Usage: redis_port [--full]   (--full uses the paper's parameters:
   10k records, 10k ops, 20 trials; the default is a quick run) *)

open Hippo_core
open Hippo_apps

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  Fmt.pr "building and repairing Redis variants...@.";
  let v = Redis_bench.repair_variants () in
  Fmt.pr "@[<v>%a@]@.@." Driver.pp_summary v.Redis_bench.full_result;
  let check name prog =
    let bugs = Redis_bench.residual_bugs prog in
    Fmt.pr "%-14s residual durability bugs: %d@." name (List.length bugs)
  in
  check "Redis-pm" v.Redis_bench.manual;
  check "Redis_H-intra" v.Redis_bench.h_intra;
  check "Redis_H-full" v.Redis_bench.h_full;
  let trials = if full then 20 else 3 in
  let record_count = if full then 10_000 else 1_000 in
  let op_count = if full then 10_000 else 1_000 in
  Fmt.pr "@.YCSB throughput, simulated kops/s (%d trials, %d records, %d ops):@."
    trials record_count op_count;
  let rows = Redis_bench.figure4 ~trials ~record_count ~op_count v in
  List.iter (fun r -> Fmt.pr "  %a@." Redis_bench.pp_row r) rows
