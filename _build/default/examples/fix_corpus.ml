(* Repair the full reproduced bug corpus (§6.1/§6.2): the 11 PMDK
   unit-test bugs, the 2 P-CLHT bugs and the 10 memcached-pm bugs — 23 in
   total. For every subject: run the workload under the bug finder, repair
   with Hippocrates, re-run the bug finder (zero residual reports), check
   observational equivalence, and compare fix shapes against the recorded
   ground truth. *)

open Hippo_pmcheck
open Hippo_core
open Hippo_pmdk_mini

(* One repair per distinct subject program; cases sharing a program (the
   P-CLHT and memcached corpora) are checked against the same result. *)
let repair_program (case : Case.t) =
  let prog = Lazy.force case.Case.program in
  Driver.repair ~name:case.Case.id ~workload:case.Case.workload prog

let check_case (result : Driver.result) (case : Case.t) =
  let kinds =
    List.sort_uniq compare
      (List.map (fun (b : Report.bug) -> b.Report.kind) result.Driver.bugs)
  in
  let ok =
    result.Driver.bugs <> []
    && Verify.effective result.Driver.verification
    && Verify.harm_free result.Driver.verification
    && List.mem case.Case.expected_kind kinds
    && List.exists
         (fun (_, s) -> Case.shape_matches case.Case.expected_shape s)
         result.Driver.plan.Fix.per_bug
  in
  Fmt.pr "%-12s %-5s %-50s expected: %a@." case.Case.id
    (if ok then "OK" else "FAIL")
    case.Case.title Case.pp_shape case.Case.expected_shape;
  if not ok then begin
    List.iter (fun b -> Fmt.pr "    %a@." Report.pp_bug b) result.Driver.bugs;
    List.iter (fun f -> Fmt.pr "    %a@." Fix.pp f) result.Driver.plan.Fix.fixes;
    Fmt.pr "    %a@." Verify.pp result.Driver.verification
  end;
  ok

let check_group name (cases : Case.t list) ~expected_static_bugs =
  Fmt.pr "--- %s ---@." name;
  match cases with
  | [] -> true
  | first :: _ ->
      let result = repair_program first in
      let sites =
        List.length (Report.dedup result.Driver.bugs)
        |> fun _ -> List.length result.Driver.bugs
      in
      let oks = List.map (check_case result) cases in
      let count_ok = sites >= expected_static_bugs in
      if not count_ok then
        Fmt.pr "  FAIL: expected at least %d static bugs, found %d@."
          expected_static_bugs sites;
      List.for_all Fun.id oks && count_ok

let () =
  let pmdk_ok =
    Fmt.pr "--- PMDK unit tests ---@.";
    List.for_all
      (fun case -> check_case (repair_program case) case)
      Bugs.all
  in
  let pclht_ok =
    check_group "P-CLHT (RECIPE)" Hippo_apps.Pclht.cases
      ~expected_static_bugs:2
  in
  let mc_ok =
    check_group "memcached-pm" Hippo_apps.Memcached_mini.cases
      ~expected_static_bugs:10
  in
  if not (pmdk_ok && pclht_ok && mc_ok) then exit 1;
  Fmt.pr "@.all 23 corpus bugs repaired and verified@."
