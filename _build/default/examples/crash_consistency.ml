(* Crash-consistency demonstration: durability bugs are not abstract
   report lines — they lose real data.

   P-CLHT carries two injected bugs (a missing flush on value updates and
   a missing fence on overflow-bucket links). This example crashes the
   workload at every durability point, restarts from the durable image,
   and runs the structure's recovery check:

   - on the buggy build, some crash points leave an unrecoverable image
     (while the "lucky" image — everything happened to be evicted in
     time — always recovers: exactly why these bugs escape testing);
   - after Hippocrates repairs it, every crash point recovers. *)

open Hippo_pmcheck
open Hippo_core
open Hippo_apps

let setup =
  [ ("clht_init", [ 4 ]) ]
  @ List.map (fun k -> ("clht_put", [ k + 1; (k + 1) * 3 ])) (List.init 20 Fun.id)
  @ [ ("clht_put", [ 3; 999 ]) (* in-place update: exercises bug 1 *) ]

let sweep label prog =
  let verdicts =
    Crashsim.sweep prog ~setup ~checker:"clht_recover_check" ~checker_args:[]
  in
  let bad = List.filter (fun v -> not v.Crashsim.pessimistic_ok) verdicts in
  Fmt.pr "%-18s %d crash points, %d unrecoverable durable images, lucky \
          images always recover: %b@."
    label (List.length verdicts) (List.length bad)
    (List.for_all (fun v -> v.Crashsim.lucky_ok) verdicts);
  List.iter
    (fun v -> Fmt.pr "    crash point %d: data lost@." v.Crashsim.crash_index)
    bad;
  bad = []

let () =
  let buggy = Pclht.build () in
  Fmt.pr "--- P-CLHT with its two injected durability bugs ---@.";
  let buggy_ok = sweep "buggy" buggy in
  Fmt.pr "@.--- repairing with Hippocrates ---@.";
  let r = Driver.repair ~name:"pclht" ~workload:Pclht.workload buggy in
  Fmt.pr "bugs: %d, fixes: %a@."
    (List.length r.Driver.bugs)
    Fmt.(list ~sep:(any "; ") Fix.pp)
    r.Driver.plan.Fix.fixes;
  Fmt.pr "verification: %a@.@." Verify.pp r.Driver.verification;
  Fmt.pr "--- repaired P-CLHT ---@.";
  let repaired_ok = sweep "repaired" r.Driver.repaired in
  if buggy_ok then (
    Fmt.pr "unexpected: buggy build survived every crash@.";
    exit 1);
  if not repaired_ok then (
    Fmt.pr "unexpected: repaired build lost data@.";
    exit 1);
  Fmt.pr "@.the bugs were real, and the repair heals them end to end@."
