examples/quickstart.ml: Builder Driver Fix Fmt Hippo_core Hippo_pmcheck Hippo_pmir Interp List Printer Report Validate Value
