examples/crash_consistency.ml: Crashsim Driver Fix Fmt Fun Hippo_apps Hippo_core Hippo_pmcheck List Pclht Verify
