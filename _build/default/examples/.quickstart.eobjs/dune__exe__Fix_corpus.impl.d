examples/fix_corpus.ml: Bugs Case Driver Fix Fmt Fun Hippo_apps Hippo_core Hippo_pmcheck Hippo_pmdk_mini Lazy List Report Verify
