examples/quickstart.mli:
