examples/redis_port.mli:
