examples/redis_port.ml: Array Driver Fmt Hippo_apps Hippo_core List Redis_bench Sys
