examples/fix_corpus.mli:
