examples/heuristic_tour.ml: Builder Diff Driver Fmt Heuristic Hippo_alias Hippo_core Hippo_pmcheck Hippo_pmir Instr Interp List Loc Printer Program Report Value
