(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index).

     bench/main.exe                 — run every experiment (quick params)
     bench/main.exe --full          — paper-scale parameters for Fig. 4
     bench/main.exe fig1            — §3 bug-study table
     bench/main.exe table_effectiveness — §6.1 (all 23 bugs fixed)
     bench/main.exe table_static    — static checker vs dynamic ground truth
     bench/main.exe table_heuristics    — §6.1 (Full-AA == Trace-AA)
     bench/main.exe fig3            — §6.2 accuracy vs developer fixes
     bench/main.exe fig4            — §6.3 Redis YCSB throughput
     bench/main.exe fix_stats       — §6.3 fix statistics
     bench/main.exe fig5            — §6.4 offline overhead
     bench/main.exe code_size       — §6.4 code-size impact
     bench/main.exe ablate_reuse    — A1: clone reuse on/off
     bench/main.exe ablate_reduction— A2: fix reduction on/off
     bench/main.exe ablate_heuristic— A3: cost-model robustness
     bench/main.exe table_main      — per-phase engine timing breakdown
                                      (ablation sweep, shared analysis cache)
     bench/main.exe table_par       — corpus-sweep wall-clock scaling over
                                      worker domains (jobs 1 vs 2 vs 4)
     bench/main.exe table_crash     — single-pass dedup crash sweep vs
                                      per-crash-point replay
     bench/main.exe table_fuzz      — coverage-guided fuzzing vs blind
                                      generation at equal exec counts
     bench/main.exe table_serve     — the KV service under YCSB traffic:
                                      manual vs repaired throughput and
                                      latency percentiles (not part of the
                                      default sweep: --serve-records /
                                      --serve-ops default to one million);
                                      drives both apps (redis and pclht)
     bench/main.exe table_opt       — flush/fence optimizer over every
                                      repaired corpus and app subject:
                                      static sites removed, report
                                      identity, perfmodel cost deltas and
                                      the P-CLHT crash-verdict gauntlet
     bench/main.exe table_exec      — compiled execution tier vs the
                                      reference interpreter on the YCSB
                                      and fuzz-smoke workloads (wall-clock
                                      ops/s, cross-tier witness check;
                                      --exec-ops sets the YCSB op count)
     bench/main.exe table_sim       — fault-injecting scenario fleets:
                                      scenarios/s per mode, crash and
                                      violation counts, digest identity
                                      across jobs widths
     bench/main.exe micro           — bechamel micro-benchmarks

   `--jobs N` sets the domain budget for every corpus sweep (default:
   HIPPO_JOBS or the machine's recommended domain count). `--jobs 1` is
   byte-identical to the historical serial harness. `--seed N` seeds the
   seed-threaded experiments (table_fuzz; default 0). `--json FILE`
   writes the results of json-aware experiments (table_crash,
   table_fuzz) to FILE. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core
open Hippo_pmdk_mini
open Hippo_apps

let section title = Fmt.pr "@.=== %s ===@." title

module Sweep = Hippo_bugstudy.Sweep

(* Domain budget for every corpus sweep; set by --jobs. *)
let jobs = ref (Hippo_parallel.Pool.default_domains ())

(* ------------------------------------------------------------------ *)
(* E1 — Fig. 1: the 26-bug study *)

let fig1 () =
  section "Fig. 1 — study of 26 PMDK durability bugs (paper: 13 / 28 / 66)";
  List.iter
    (fun r -> Fmt.pr "  %a@." Hippo_bugstudy.Dataset.pp_row r)
    (Hippo_bugstudy.Dataset.figure1 ());
  let n, total = Hippo_bugstudy.Dataset.interprocedural_fraction () in
  Fmt.pr "  interprocedural developer fixes: %d/%d (%d%%) (paper: 16/26, 62%%)@."
    n total (100 * n / total)

(* ------------------------------------------------------------------ *)
(* Corpus plumbing shared by E2/E3/E4/E7 *)

let repair_case ?(options = Driver.default_options) ?cache (case : Case.t) =
  Driver.repair ~options ?cache ~name:case.Case.id
    ~workload:case.Case.workload
    (Lazy.force case.Case.program)

(* E2 — §6.1 effectiveness *)

let table_effectiveness () =
  section "§6.1 — effectiveness: fix all 23 reproduced bugs";
  let all_ok = ref true in
  let pmdk_ok = ref 0 in
  let pmdk_results, _cache = Sweep.corpus ~jobs:!jobs Bugs.all in
  List.iter
    (fun (_, r) ->
      let ok =
        r.Driver.bugs <> []
        && Verify.effective r.Driver.verification
        && Verify.harm_free r.Driver.verification
      in
      if ok then incr pmdk_ok else all_ok := false)
    pmdk_results;
  Fmt.pr "  %-22s bugs: %2d (expected 11)   repaired+verified: %s@."
    "PMDK (unit tests)" !pmdk_ok
    (if !pmdk_ok = 11 then "yes" else "NO");
  let app_row label case expected ~count =
    let r = repair_case case in
    let n = count r in
    let ok =
      Verify.effective r.Driver.verification
      && Verify.harm_free r.Driver.verification
    in
    if (not ok) || n <> expected then all_ok := false;
    Fmt.pr "  %-22s bugs: %2d (expected %2d)   repaired+verified: %s@." label
      n expected
      (if ok then "yes" else "NO")
  in
  app_row "P-CLHT (RECIPE)" (List.hd Pclht.cases) 2 ~count:(fun r ->
      Case.static_bug_sites r.Driver.bugs);
  app_row "memcached-pm" (List.hd Memcached_mini.cases) 10 ~count:(fun r ->
      List.length (Report.dedup r.Driver.bugs));
  Fmt.pr "  total: %d bugs (paper: 23); all repaired with zero residual: %s@."
    (!pmdk_ok + 12)
    (if !all_ok && !pmdk_ok = 11 then "yes" else "NO")

(* E3 — §6.1 heuristic equivalence *)

let table_heuristics () =
  section "§6.1 — Full-AA vs Trace-AA produce identical fixes";
  let all_cases =
    Bugs.all @ [ List.hd Pclht.cases; List.hd Memcached_mini.cases ]
  in
  let identical = ref 0 in
  let sweep_with oracle =
    fst
      (Sweep.corpus
         ~options:{ Driver.default_options with oracle }
         ~jobs:!jobs all_cases)
  in
  let sig_of (_, (r : Driver.result)) =
    List.sort String.compare (List.map Fix.to_string r.Driver.plan.Fix.fixes)
  in
  List.iter2
    (fun ((case, _) as full) trace ->
      let same = sig_of full = sig_of trace in
      if same then incr identical;
      Fmt.pr "  %-14s %s@." case.Case.id
        (if same then "identical" else "DIFFERENT"))
    (sweep_with Driver.Full_aa)
    (sweep_with Driver.Trace_aa);
  Fmt.pr "  %d/%d subjects with identical fix sets (paper: all)@." !identical
    (List.length all_cases)

(* E4 — Fig. 3: accuracy vs developer fixes *)

let fig3 () =
  section "Fig. 3 — Hippocrates fixes vs PMDK developer fixes";
  Fmt.pr "  %-7s %-40s %-42s %s@." "issue" "Hippocrates fix" "developer fix"
    "comparison";
  let identical = ref 0 and equivalent = ref 0 in
  List.iter
    (fun ((case : Case.t), (r : Driver.result)) ->
      let shape =
        match
          List.find_opt
            (fun (_, s) -> Case.shape_matches case.Case.expected_shape s)
            r.Driver.plan.Fix.per_bug
        with
        | Some (_, s) -> Fix.shape_to_string s
        | None -> "(unexpected)"
      in
      let comparison =
        match case.Case.dev_fix with
        | Some Case.Dev_inter_flush_fence ->
            incr identical;
            "functionally identical"
        | Some Case.Dev_portable_flush ->
            incr equivalent;
            "equivalent; PMDK's fix is more portable"
        | None -> "-"
      in
      Fmt.pr "  #%-6s %-40s %-42s %s@."
        (match case.Case.issue with Some n -> string_of_int n | None -> "?")
        shape
        (Fmt.str "%a" Case.pp_dev_fix case.Case.dev_fix)
        comparison)
    (fst (Sweep.corpus ~jobs:!jobs Bugs.all));
  Fmt.pr
    "  functionally identical: %d/11 (paper: 8/11); equivalent: %d/11 \
     (paper: 3/11)@."
    !identical !equivalent

(* ------------------------------------------------------------------ *)
(* E5 — Fig. 4: Redis YCSB throughput *)

let fig4 ~full () =
  section
    (if full then
       "Fig. 4 — Redis YCSB throughput (paper parameters: 10k/10k, 20 trials)"
     else "Fig. 4 — Redis YCSB throughput (quick parameters)");
  let v = Redis_bench.repair_variants () in
  Fmt.pr "  repair: %d bugs, %d fixes (%d interprocedural)@."
    (List.length v.Redis_bench.full_result.Driver.bugs)
    (List.length v.Redis_bench.full_result.Driver.plan.Fix.fixes)
    (Fix.count_hoisted v.Redis_bench.full_result.Driver.plan);
  List.iter
    (fun (name, prog) ->
      Fmt.pr "  %-14s residual bugs: %d@." name
        (List.length (Redis_bench.residual_bugs prog)))
    [
      ("Redis-pm", v.Redis_bench.manual);
      ("Redis_H-intra", v.Redis_bench.h_intra);
      ("Redis_H-full", v.Redis_bench.h_full);
    ];
  let trials = if full then 20 else 5 in
  let record_count = if full then 10_000 else 2_000 in
  let op_count = if full then 10_000 else 2_000 in
  Fmt.pr "  simulated kops/s, %d trials, %d records, %d ops:@." trials
    record_count op_count;
  let rows = Redis_bench.figure4 ~trials ~record_count ~op_count v in
  List.iter (fun r -> Fmt.pr "    %a@." Redis_bench.pp_row r) rows;
  let load = List.hd rows in
  let open Hippo_perfmodel in
  Fmt.pr
    "  Load: H-full/Redis-pm = %.2fx (paper: ~1.07x); H-full/H-intra range: \
     %.1fx-%.1fx (paper: 2.4x-11.7x)@."
    (load.Redis_bench.full.Stats.mean /. load.Redis_bench.manual_pm.Stats.mean)
    (List.fold_left
       (fun acc r ->
         min acc
           (r.Redis_bench.full.Stats.mean /. r.Redis_bench.intra.Stats.mean))
       infinity rows)
    (List.fold_left
       (fun acc r ->
         max acc
           (r.Redis_bench.full.Stats.mean /. r.Redis_bench.intra.Stats.mean))
       0.0 rows);
  v

(* E6 — §6.3 fix statistics *)

let fix_stats ?variants () =
  section "§6.3 — fix statistics for the Redis repair";
  let v =
    match variants with Some v -> v | None -> Redis_bench.repair_variants ()
  in
  let plan = v.Redis_bench.full_result.Driver.plan in
  let hoists =
    List.filter_map
      (function Fix.Hoist h -> Some h | Fix.Intra _ -> None)
      plan.Fix.fixes
  in
  let depth d = List.length (List.filter (fun h -> h.Fix.depth = d) hoists) in
  Fmt.pr
    "  fixes: %d total, %d intraprocedural, %d interprocedural (paper: 50 \
     total, 12 inter)@."
    (List.length plan.Fix.fixes)
    (Fix.count_intra plan) (List.length hoists);
  Fmt.pr "  hoist depths: %d at 1 frame, %d at 2 frames (paper: 10 and 2)@."
    (depth 1) (depth 2);
  Fmt.pr "  fix reduction eliminated %d raw fixes@."
    v.Redis_bench.full_result.Driver.reduce_eliminated

(* ------------------------------------------------------------------ *)
(* E7 — Fig. 5: offline overhead *)

let fig5 () =
  section "Fig. 5 — offline overhead of Hippocrates";
  Fmt.pr "  %-22s %10s %13s %11s %10s@." "target" "IR instrs" "trace events"
    "time" "peak heap";
  let show name (r : Driver.result) =
    Fmt.pr "  %-22s %10d %13d %10.3fs %8dMB@." name r.Driver.input_instrs
      r.Driver.trace_events r.Driver.time_s
      (r.Driver.peak_heap_bytes / (1024 * 1024))
  in
  let pmdk_results = List.map snd (fst (Sweep.corpus ~jobs:!jobs Bugs.all)) in
  let instrs, events, time, mem =
    List.fold_left
      (fun (instrs, events, time, mem) (r : Driver.result) ->
        ( instrs + r.Driver.input_instrs,
          events + r.Driver.trace_events,
          time +. r.Driver.time_s,
          max mem r.Driver.peak_heap_bytes ))
      (0, 0, 0.0, 0) pmdk_results
  in
  Fmt.pr "  %-22s %10d %13d %10.3fs %8dMB@." "PMDK (11 unit tests)" instrs
    events time
    (mem / (1024 * 1024));
  show "P-CLHT (RECIPE)" (repair_case (List.hd Pclht.cases));
  show "memcached-pm" (repair_case (List.hd Memcached_mini.cases));
  let redis =
    Driver.repair ~name:"redis" ~workload:Redis_bench.repair_workload
      (Redis_mini.build Redis_mini.Flush_free)
  in
  show "Redis (flush-free)" redis;
  Fmt.pr
    "  (paper: 2s-5m09s, 147-870MB on 37-203 KLOC of C; same shape — the \
     largest target dominates)@."

(* E8 — §6.4 code-size impact *)

let code_size ?variants () =
  section "§6.4 — code-size impact of persistent subprograms (Redis)";
  let v =
    match variants with Some v -> v | None -> Redis_bench.repair_variants ()
  in
  let r = v.Redis_bench.full_result in
  let added = r.Driver.output_instrs - r.Driver.input_instrs in
  Fmt.pr "  IR instructions: %d -> %d (+%d, +%.3f%%)@." r.Driver.input_instrs
    r.Driver.output_instrs added
    (100.0 *. float_of_int added /. float_of_int r.Driver.input_instrs);
  Fmt.pr
    "  persistent clones created: %d (paper: +105 IR lines, +0.013%%, with \
     clone reuse)@."
    r.Driver.apply_stats.Apply.clones_created

(* ------------------------------------------------------------------ *)
(* A1 — ablation: clone reuse *)

let ablate_reuse () =
  section "A1 — persistent-subprogram clone reuse (on vs off)";
  let prog = Redis_mini.build Redis_mini.Flush_free in
  let run reuse =
    Driver.repair
      ~options:{ Driver.default_options with clone_reuse = reuse }
      ~name:"redis" ~workload:Redis_bench.repair_workload prog
  in
  let on = run true and off = run false in
  let fmt (r : Driver.result) =
    Fmt.str "instrs %d->%d (clones %d)" r.Driver.input_instrs
      r.Driver.output_instrs r.Driver.apply_stats.Apply.clones_created
  in
  Fmt.pr "  reuse on : %s@." (fmt on);
  Fmt.pr "  reuse off: %s@." (fmt off);
  Fmt.pr "  both verified clean: %b / %b@."
    (Verify.effective on.Driver.verification)
    (Verify.effective off.Driver.verification)

(* A2 — ablation: fix reduction *)

let ablate_reduction () =
  section "A2 — fix reduction (Phase 2) on vs off";
  let cases = Bugs.all @ [ List.hd Pclht.cases; List.hd Memcached_mini.cases ] in
  let ons, _ = Sweep.corpus ~jobs:!jobs cases in
  let offs, _ =
    Sweep.corpus
      ~options:{ Driver.default_options with reduction = false }
      ~jobs:!jobs cases
  in
  List.iter2
    (fun ((case : Case.t), (on : Driver.result)) (_, (off : Driver.result)) ->
      Fmt.pr
        "  %-14s raw fixes: %2d; with reduction: %2d applied; without: %2d \
         applied; both clean: %b@."
        case.Case.id on.Driver.raw_fix_count
        (List.length on.Driver.plan.Fix.fixes)
        (List.length off.Driver.plan.Fix.fixes)
        (Verify.effective on.Driver.verification
        && Verify.effective off.Driver.verification))
    ons offs

(* A3 — ablation: cost-model robustness *)

let ablate_heuristic () =
  section "A3 — Fig. 4 conclusions under different cost models";
  let v = Redis_bench.repair_variants () in
  let spec =
    {
      (Hippo_ycsb.Workload.default_spec Hippo_ycsb.Workload.A) with
      record_count = 1000;
      op_count = 1000;
    }
  in
  List.iter
    (fun (label, cost) ->
      let tput prog =
        Hippo_perfmodel.Timed.throughput_kops
          (Redis_bench.trial ~cost prog spec ~seed:1)
      in
      let ti = tput v.Redis_bench.h_intra
      and tm = tput v.Redis_bench.manual
      and tf = tput v.Redis_bench.h_full in
      Fmt.pr
        "  %-16s H-intra %7.0f  Redis-pm %7.0f  H-full %7.0f  (full/intra \
         %.2fx, full/pm %.2fx)@."
        label ti tm tf (tf /. ti) (tf /. tm))
    [
      ("default", Cost.default);
      ("fence-heavy", Cost.fence_heavy);
      ("cheap-vol-flush", Cost.cheap_vol_flush);
    ];
  Fmt.pr
    "  (the interprocedural advantage must survive fence-heavy constants \
     and shrink when volatile flushes are free)@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment pipeline *)

let micro () =
  section "bechamel micro-benchmarks (one per experiment pipeline)";
  let open Bechamel in
  let listing5 = Lazy.force (List.hd Bugs.all).Case.program in
  let text = Printer.to_string listing5 in
  let clht = Pclht.build () in
  let tests =
    [
      Test.make ~name:"fig1_aggregate"
        (Staged.stage (fun () -> Hippo_bugstudy.Dataset.figure1 ()));
      Test.make ~name:"pmir_parse"
        (Staged.stage (fun () -> Parser.program text));
      Test.make ~name:"pmir_validate"
        (Staged.stage (fun () -> Validate.check listing5));
      Test.make ~name:"andersen_analyze"
        (Staged.stage (fun () -> Hippo_alias.Andersen.analyze clht));
      Test.make ~name:"pmcheck_clht_workload"
        (Staged.stage (fun () ->
             let t = Interp.create Interp.default_config clht in
             Pclht.workload t;
             Interp.exit_check t;
             Interp.bugs t));
      Test.make ~name:"repair_pmdk_452"
        (Staged.stage (fun () -> repair_case (List.nth Bugs.all 1)));
      Test.make ~name:"repair_pclht"
        (Staged.stage (fun () -> repair_case (List.hd Pclht.cases)));
      Test.make ~name:"ycsb_generate_ops"
        (Staged.stage (fun () ->
             Hippo_ycsb.Workload.ops
               (Hippo_ycsb.Workload.default_spec Hippo_ycsb.Workload.A)
               ~seed:1));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Fmt.pr "  %-28s %12.1f ns/run@." name ns
          | _ -> Fmt.pr "  %-28s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* E8 — static checker: detection vs dynamic ground truth *)

module SAdapter = Hippo_staticcheck.Adapter

let dynamic_bugs_of (case : Case.t) =
  let prog = Lazy.force case.Case.program in
  let t = Interp.create { Interp.default_config with Interp.trace = true } prog in
  (try case.Case.workload t with Interp.Stopped_at_crash -> ());
  Interp.exit_check t;
  (prog, Interp.bugs t)

let table_static () =
  section
    "static checker — detection vs dynamic ground truth (23 corpus bugs)";
  let compare_case (case : Case.t) =
    let prog, dyn = dynamic_bugs_of case in
    let static_ = (Driver.check_static prog).Hippo_staticcheck.Checker.bugs in
    (dyn, static_, SAdapter.compare_reports ~static_ ~dynamic:dyn)
  in
  let print_misses (c : SAdapter.comparison) =
    List.iter
      (fun b -> Fmt.pr "      MISSED %a@." Report.pp_bug b)
      c.SAdapter.missed;
    List.iter
      (fun (b : Report.bug) ->
        Fmt.pr "      extra  %a via %s@." Report.pp_bug b
          (Trace.stack_to_string b.Report.store.Report.stack))
      c.SAdapter.extra
  in
  (* PMDK: one bug per unit test; detected = every dynamic site covered *)
  let pmdk_det = ref 0 and pmdk_fp = ref 0 in
  List.iter
    (fun (case : Case.t) ->
      let dyn, _, c = compare_case case in
      let detected = dyn <> [] && c.SAdapter.missed = [] in
      if detected then incr pmdk_det;
      pmdk_fp := !pmdk_fp + List.length c.SAdapter.extra;
      Fmt.pr "  %-12s dynamic sites: %d  matched: %d  missed: %d  extra: %d%s@."
        case.Case.id
        (List.length c.SAdapter.matched + List.length c.SAdapter.missed)
        (List.length c.SAdapter.matched)
        (List.length c.SAdapter.missed)
        (List.length c.SAdapter.extra)
        (if detected then "" else "  NOT DETECTED");
      print_misses c)
    Bugs.all;
  (* the applications: unit = distinct (store, chain) dynamic site *)
  let app_row label case =
    let _, _, c = compare_case case in
    let dyn_sites = List.length c.SAdapter.matched + List.length c.SAdapter.missed in
    Fmt.pr "  %-12s dynamic sites: %d  matched: %d  missed: %d  extra: %d@."
      label dyn_sites
      (List.length c.SAdapter.matched)
      (List.length c.SAdapter.missed)
      (List.length c.SAdapter.extra);
    print_misses c;
    (List.length c.SAdapter.matched, dyn_sites, List.length c.SAdapter.extra)
  in
  let clht_tp, clht_n, clht_fp = app_row "P-CLHT" (List.hd Pclht.cases) in
  let mc_tp, mc_n, mc_fp = app_row "memcached-pm" (List.hd Memcached_mini.cases) in
  let detected = !pmdk_det + clht_tp + mc_tp in
  let total = 11 + clht_n + mc_n in
  Fmt.pr
    "  total detected: %d/%d (threshold: >= 20/23)   false positives: %d@."
    detected total
    (!pmdk_fp + clht_fp + mc_fp);
  Fmt.pr "  static repair closes the loop: %s@."
    (let ok =
       List.for_all
         (fun (case : Case.t) ->
           let r =
             Driver.repair ~detector:Driver.Static ~name:case.Case.id
               ~workload:case.Case.workload
               (Lazy.force case.Case.program)
           in
           Verify.effective r.Driver.verification
           && Verify.harm_free r.Driver.verification)
         Bugs.all
     in
     if ok then "zero residual dynamic bugs on all PMDK cases"
     else "RESIDUAL DYNAMIC BUGS REMAIN")

(* ------------------------------------------------------------------ *)
(* E9 — engine: per-phase breakdown + shared-analysis ablation sweep *)

let table_main () =
  section
    "engine — per-phase timing breakdown (ablation sweep, shared analysis \
     cache)";
  let cache = Hippo_engine.Cache.create () in
  let case = List.hd Pclht.cases in
  let configs =
    [
      ("default", Driver.default_options);
      ("no-hoist", { Driver.default_options with hoisting = false });
      ("no-reduction", { Driver.default_options with reduction = false });
      ("no-reuse", { Driver.default_options with clone_reuse = false });
    ]
  in
  let events =
    List.concat_map
      (fun (label, options) ->
        let r = repair_case ~options ~cache case in
        Fmt.pr "  %-14s fixes: %2d  verified: %s@." label
          (List.length r.Driver.plan.Fix.fixes)
          (if
             Verify.effective r.Driver.verification
             && Verify.harm_free r.Driver.verification
           then "yes"
           else "NO");
        r.Driver.events)
      configs
  in
  Fmt.pr "  per-phase breakdown (%s, %d configurations):@." case.Case.id
    (List.length configs);
  Fmt.pr "%a" Hippo_engine.Event.pp_table events;
  List.iter
    (fun (slot, computed, reused) ->
      Fmt.pr "  cache %-8s computed %d, reused %d@." slot computed reused)
    (Hippo_engine.Cache.stats cache);
  Fmt.pr "  Andersen points-to runs across the sweep: %d (expected 1 — \
          computed once, not once per configuration)@."
    (Hippo_engine.Cache.andersen_runs cache)

(* E10 — corpus-sweep scaling over worker domains *)

let table_par () =
  section "parallel — corpus-sweep wall-clock scaling over worker domains";
  let cases =
    Bugs.all @ [ List.hd Pclht.cases; List.hd Memcached_mini.cases ]
  in
  (* force once up front so no run pays the one-time program construction *)
  List.iter (fun (c : Case.t) -> ignore (Lazy.force c.Case.program)) cases;
  let plan_sig results =
    List.concat_map
      (fun (_, (r : Driver.result)) ->
        List.map Fix.to_string r.Driver.plan.Fix.fixes)
      results
  in
  let run jobs =
    (* wall clock, not Sys.time: CPU time sums over domains and would hide
       any speedup *)
    let t0 = Unix.gettimeofday () in
    let results, cache = Sweep.corpus ~jobs cases in
    (Unix.gettimeofday () -. t0, results, cache)
  in
  Fmt.pr "  %d cases; recommended domain count on this host: %d@."
    (List.length cases)
    (Domain.recommended_domain_count ());
  let base_t, base_r, _ = run 1 in
  Fmt.pr "  jobs %2d: %7.3fs  %7s  (baseline)@." 1 base_t "1.00x";
  List.iter
    (fun jobs ->
      let t, r, cache = run jobs in
      Fmt.pr "  jobs %2d: %7.3fs  %6.2fx  (plans %s baseline; %d analysis \
              computes across worker caches)@."
        jobs t (base_t /. t)
        (if plan_sig r = plan_sig base_r then "identical to" else "DIFFER from")
        (List.fold_left
           (fun acc (_, c, _) -> acc + c)
           0
           (Hippo_engine.Cache.stats cache)))
    [ 2; 4 ];
  Fmt.pr
    "  (speedup tracks physical cores: a 1-core host pins every row near \
     1.00x, a 4-core host should reach >= 2x at jobs 4)@."

(* E11 — crash-sweep: single-pass dedup vs per-crash-point replay *)

(* Small interpreter buffers: a crash sweep creates one machine per
   recovery run, and at the default sizes buffer zeroing would dwarf the
   work being measured. Both strategies run under the same per-subject
   config, sized to the subject's actual footprint. *)
let crash_config ~pm_size =
  {
    Interp.default_config with
    Interp.vol_size = 1 lsl 12;
    stack_size = 1 lsl 14;
    global_size = 1 lsl 12;
    pm_size;
  }

let counter_pmir =
  {pmir|
; shadow counter: value at [0], shadow at [64]; the shadow store is
; never flushed, so every crash point loses it — and every durable
; image is distinct (the dedup-hostile case).
func @cnt_init() {
entry:
  %c = call @pm_alloc(128)
  store.i64 0 -> %c @ "cnt.c":1
  %s = gep %c, 64
  store.i64 0 -> %s @ "cnt.c":2
  flush.clwb %c
  flush.clwb %s
  fence.sfence
  ret
}

func @cnt_bump() {
entry:
  %c = call @pm_base()
  %s = gep %c, 64
  %x0 = load.i64 %c
  %x = add %x0, 1
  store.i64 %x -> %c @ "cnt.c":10
  flush.clwb %c
  fence.sfence
  store.i64 %x -> %s @ "cnt.c":12
  crash @ "cnt.c":14
  ret
}

func @cnt_check() {
entry:
  %c = call @pm_base()
  %s = gep %c, 64
  %a = load.i64 %c
  %b = load.i64 %s
  %e = eq %a, %b
  ret %e
}
|pmir}

let pingpong_pmir =
  {pmir|
; correctly-persisted one-bit toggle: the durable image cycles between
; two states, so a sweep of any length needs only a handful of recovery
; runs (the dedup-friendly case).
func @pp_init() {
entry:
  %c = call @pm_alloc(64)
  store.i64 0 -> %c @ "pp.c":1
  flush.clwb %c
  fence.sfence
  ret
}

func @pp_flip() {
entry:
  %c = call @pm_base()
  %x = load.i64 %c
  %y = sub 1, %x
  store.i64 %y -> %c @ "pp.c":6
  flush.clwb %c
  fence.sfence
  crash @ "pp.c":9
  ret
}

func @pp_check() {
entry:
  %c = call @pm_base()
  %x = load.i64 %c
  %ok = lt %x, 2
  ret %ok
}
|pmir}

let crash_subjects () =
  let parsed name text =
    try Parser.program text
    with Parser.Parse_error { line; msg } ->
      Fmt.failwith "bench %s: parse error at line %d: %s" name line msg
  in
  let clht_setup =
    [ ("clht_init", [ 4 ]) ]
    @ List.concat_map
        (fun k -> [ ("clht_put", [ k; k * 3 ]) ])
        (List.init 40 (fun k -> k + 1))
    @ [ ("clht_put", [ 3; 999 ]) ]
  in
  [
    ( "p-clht",
      Pclht.build (),
      clht_setup,
      "clht_recover_check",
      crash_config ~pm_size:(1 lsl 15) );
    ( "counter",
      parsed "counter" counter_pmir,
      ("cnt_init", []) :: List.init 150 (fun _ -> ("cnt_bump", [])),
      "cnt_check",
      crash_config ~pm_size:(1 lsl 12) );
    ( "pingpong",
      parsed "pingpong" pingpong_pmir,
      ("pp_init", []) :: List.init 150 (fun _ -> ("pp_flip", [])),
      "pp_check",
      crash_config ~pm_size:(1 lsl 12) );
  ]

let table_crash () =
  section
    "crash — single-pass dedup sweep vs per-crash-point replay (--jobs 1)";
  Fmt.pr
    "  %-10s %6s %9s %9s %10s %10s %8s %s@." "subject" "n" "distinct"
    "runs" "replay" "single" "speedup" "verdicts";
  let rows =
    List.map
      (fun (id, prog, setup, checker, config) ->
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (Unix.gettimeofday () -. t0, r)
        in
        let t_sp, (v_sp, stats) =
          time (fun () ->
              Crashsim.sweep_with_stats ~config ~jobs:1
                ~strategy:`Single_pass prog ~setup ~checker ~checker_args:[])
        in
        let t_rp, (v_rp, _) =
          time (fun () ->
              Crashsim.sweep_with_stats ~config ~jobs:1 ~strategy:`Replay
                prog ~setup ~checker ~checker_args:[])
        in
        let v_sp4 =
          Crashsim.sweep ~config ~jobs:4 prog ~setup ~checker
            ~checker_args:[]
        in
        let identical = v_sp = v_rp && v_sp = v_sp4 in
        Fmt.pr "  %-10s %6d %9d %9d %9.3fs %9.3fs %7.1fx %s@." id
          stats.Crashsim.crash_points stats.Crashsim.distinct_images
          stats.Crashsim.recovery_runs t_rp t_sp (t_rp /. t_sp)
          (if identical then "identical" else "DIFFER");
        (id, stats, t_rp, t_sp, identical))
      (crash_subjects ())
  in
  let tot_rp = List.fold_left (fun a (_, _, r, _, _) -> a +. r) 0.0 rows in
  let tot_sp = List.fold_left (fun a (_, _, _, s, _) -> a +. s) 0.0 rows in
  let all_identical = List.for_all (fun (_, _, _, _, i) -> i) rows in
  Fmt.pr
    "  total: replay %.3fs, single-pass %.3fs, speedup %.1fx (threshold: >= \
     5x); verdicts %s across strategies and jobs {1,4}@."
    tot_rp tot_sp (tot_rp /. tot_sp)
    (if all_identical then "identical" else "DIFFER");
  `Assoc
    [
      ( "subjects",
        `List
          (List.map
             (fun (id, (s : Crashsim.stats), t_rp, t_sp, identical) ->
               `Assoc
                 [
                   ("subject", `String id);
                   ("crash_points", `Int s.Crashsim.crash_points);
                   ("distinct_pessimistic", `Int s.Crashsim.distinct_pessimistic);
                   ("distinct_lucky", `Int s.Crashsim.distinct_lucky);
                   ("distinct_images", `Int s.Crashsim.distinct_images);
                   ("recovery_runs", `Int s.Crashsim.recovery_runs);
                   ("memo_hits", `Int s.Crashsim.memo_hits);
                   ("replay_s", `Float t_rp);
                   ("single_pass_s", `Float t_sp);
                   ("speedup", `Float (t_rp /. t_sp));
                   ("verdicts_identical", `Bool identical);
                 ])
             rows) );
      ("replay_total_s", `Float tot_rp);
      ("single_pass_total_s", `Float tot_sp);
      ("speedup", `Float (tot_rp /. tot_sp));
      ("verdicts_identical", `Bool all_identical);
    ]

(* fuzz — coverage-guided mutation vs coverage-blind generation ------- *)

let seed = ref 0

let table_fuzz () =
  section
    (Fmt.str
       "fuzz — guided mutation vs blind generation at equal exec counts \
        (seed %d, --jobs %d)"
       !seed !jobs);
  Fmt.pr "  %-8s %8s %8s %10s %8s %s@." "execs" "guided" "blind" "corpus"
    "violations" "guided>blind";
  let rows =
    List.map
      (fun execs ->
        let s =
          Hippo_fuzz.Fuzzer.run
            {
              Hippo_fuzz.Fuzzer.default_config with
              Hippo_fuzz.Fuzzer.seed = !seed;
              jobs = !jobs;
              max_execs = execs;
            }
        in
        let ahead = s.Hippo_fuzz.Fuzzer.edges > s.Hippo_fuzz.Fuzzer.blind_edges in
        Fmt.pr "  %-8d %8d %8d %10d %8d %s@." execs
          s.Hippo_fuzz.Fuzzer.edges s.Hippo_fuzz.Fuzzer.blind_edges
          s.Hippo_fuzz.Fuzzer.corpus_size
          (List.length s.Hippo_fuzz.Fuzzer.found)
          (if ahead then "yes" else "NO");
        (execs, s, ahead))
      [ 64; 128; 256 ]
  in
  let all_ahead = List.for_all (fun (_, _, a) -> a) rows in
  Fmt.pr
    "  guided coverage strictly exceeds the blind baseline at every exec \
     count: %s@."
    (if all_ahead then "yes" else "NO");
  `Assoc
    [
      ("seed", `Int !seed);
      ( "rows",
        `List
          (List.map
             (fun (execs, (s : Hippo_fuzz.Fuzzer.summary), ahead) ->
               `Assoc
                 [
                   ("execs", `Int execs);
                   ("guided_edges", `Int s.Hippo_fuzz.Fuzzer.edges);
                   ("blind_edges", `Int s.Hippo_fuzz.Fuzzer.blind_edges);
                   ("corpus_size", `Int s.Hippo_fuzz.Fuzzer.corpus_size);
                   ("corpus_digest", `String s.Hippo_fuzz.Fuzzer.corpus_digest);
                   ("violations", `Int (List.length s.Hippo_fuzz.Fuzzer.found));
                   ("guided_ahead", `Bool ahead);
                 ])
             rows) );
      ("guided_ahead_all", `Bool all_ahead);
    ]

(* serve — the KV service under million-op YCSB traffic --------------- *)

let serve_records = ref 1_000_000
let serve_ops = ref 1_000_000

let table_serve () =
  section
    (Fmt.str
       "serve — workload A over the KV service: manual vs repaired vs \
        optimized (%d records, %d ops, 4 workers, seed %d, --jobs %d)"
       !serve_records !serve_ops !seed !jobs);
  let module Drive = Hippo_serve.Drive in
  let module Hist = Hippo_perfmodel.Stats.Hist in
  let workers = 4 in
  let apps = [ App.Redis; App.Pclht ] in
  let per_app =
    Hippo_parallel.Pool.run ~domains:(max 1 !jobs) (fun pool ->
        List.map
          (fun kind ->
            ( kind,
              List.map
                (fun variant ->
                  match
                    Drive.run_inproc ~pool ~app:kind ~variant
                      ~workload:Hippo_ycsb.Workload.A ~records:!serve_records
                      ~ops:!serve_ops ~workers ~seed:!seed ()
                  with
                  | Ok o -> (variant, o)
                  | Error e ->
                      Fmt.failwith "table_serve (%s): %s"
                        (App.kind_to_string kind) e)
                [ App.Manual; App.Repaired; App.Optimized ] ))
          apps)
  in
  (* simulated throughput (deterministic, the perfmodel number) next to
     wall clock (hardware-dependent, informational) *)
  let sim_kops reqs ns = float_of_int reqs /. (ns /. 1e9) /. 1e3 in
  Fmt.pr
    "  %-16s %10s %10s %8s %8s %8s %8s %9s@." "variant" "load-kops" "run-kops"
    "p50" "p95" "p99" "p99.9" "count";
  List.iter
    (fun (_, outcomes) ->
      List.iter
        (fun (_, (o : Drive.outcome)) ->
          Fmt.pr
            "  %-16s %10.1f %10.1f %7.0fn %7.0fn %7.0fn %7.0fn %9d  (wall: \
             load %.1fs, run %.1fs)@."
            o.Drive.app_name
            (sim_kops o.Drive.load_reqs o.Drive.sim_load_ns)
            (sim_kops o.Drive.run_reqs o.Drive.sim_run_ns)
            (Hist.p50 o.Drive.hist) (Hist.p95 o.Drive.hist)
            (Hist.p99 o.Drive.hist) (Hist.p999 o.Drive.hist) o.Drive.count
            o.Drive.wall_load_s o.Drive.wall_run_s)
        outcomes)
    per_app;
  let agrees_of outcomes =
    Drive.agrees
      (List.assoc App.Manual outcomes)
      (List.assoc App.Repaired outcomes)
    && Drive.agrees
         (List.assoc App.Repaired outcomes)
         (List.assoc App.Optimized outcomes)
  in
  (* over the whole session (load + run): the run phase alone can sit
     within float noise of repaired when the removed fences are on the
     insert path only *)
  let opt_not_slower outcomes =
    let kops (o : Drive.outcome) =
      sim_kops (o.Drive.load_reqs + o.Drive.run_reqs)
        (o.Drive.sim_load_ns +. o.Drive.sim_run_ns)
    in
    kops (List.assoc App.Optimized outcomes)
    >= kops (List.assoc App.Repaired outcomes)
  in
  List.iter
    (fun (kind, outcomes) ->
      Fmt.pr
        "  %s: repaired and optimized match manual on every verdict, the \
         final count and the store digest: %s; optimized sim-kops >= \
         repaired: %s@."
        (App.kind_to_string kind)
        (if agrees_of outcomes then "yes" else "NO")
        (if opt_not_slower outcomes then "yes" else "NO"))
    per_app;
  let row (o : Drive.outcome) =
    `Assoc
      [
        ("variant", `String o.Drive.app_name);
        ("records", `Int o.Drive.records);
        ("final_records", `Int o.Drive.final_records);
        ("load_reqs", `Int o.Drive.load_reqs);
        ("run_reqs", `Int o.Drive.run_reqs);
        ("sim_load_kops", `Float (sim_kops o.Drive.load_reqs o.Drive.sim_load_ns));
        ("sim_run_kops", `Float (sim_kops o.Drive.run_reqs o.Drive.sim_run_ns));
        ("wall_load_s", `Float o.Drive.wall_load_s);
        ("wall_run_s", `Float o.Drive.wall_run_s);
        ("p50_ns", `Float (Hist.p50 o.Drive.hist));
        ("p95_ns", `Float (Hist.p95 o.Drive.hist));
        ("p99_ns", `Float (Hist.p99 o.Drive.hist));
        ("p999_ns", `Float (Hist.p999 o.Drive.hist));
        ("count", `Int o.Drive.count);
        ("check", `Bool o.Drive.check);
        ("digest", `String (Fmt.str "%014x" o.Drive.digest));
      ]
  in
  `Assoc
    [
      ("workload", `String "A");
      ("workers", `Int workers);
      ("seed", `Int !seed);
      ( "apps",
        `List
          (List.map
             (fun (kind, outcomes) ->
               `Assoc
                 [
                   ("app", `String (App.kind_to_string kind));
                   ("manual", row (List.assoc App.Manual outcomes));
                   ("repaired", row (List.assoc App.Repaired outcomes));
                   ("optimized", row (List.assoc App.Optimized outcomes));
                   ("agrees", `Bool (agrees_of outcomes));
                   ("opt_not_slower", `Bool (opt_not_slower outcomes));
                 ])
             per_app) );
      ("agrees_all", `Bool (List.for_all (fun (_, o) -> agrees_of o) per_app));
    ]

(* opt — the flush/fence optimizer: savings and do-no-harm ------------ *)

let clht_sweep_setup =
  [ ("clht_init", [ 4 ]) ]
  @ List.concat_map
      (fun k -> [ ("clht_put", [ k; k * 3 ]) ])
      (List.init 20 (fun k -> k + 1))
  @ [ ("clht_put", [ 3; 999 ]) ]

let table_opt () =
  section
    (Fmt.str
       "opt — flush/fence optimizer over repaired corpus and app subjects \
        (--jobs %d)"
       !jobs);
  let module O = Hippo_engine.Optimize in
  let module Timed = Hippo_perfmodel.Timed in
  let sim_cost prog workload =
    let t =
      Interp.create
        {
          Interp.default_config with
          Interp.trace = false;
          cost = Some Cost.default;
        }
        prog
    in
    workload t;
    Interp.cost_ns t
  in
  (* one row per subject: the optimizer runs over the given (already
     repaired or manual) program; cost is the perfmodel's simulated ns
     for the subject's own workload, before and after *)
  let row name prog workload =
    let o = O.run prog in
    let cost0 = sim_cost prog workload in
    let cost1 = sim_cost o.O.o_prog workload in
    (name, o, cost0, cost1)
  in
  let corpus_rows =
    List.map
      (fun (c : Case.t) ->
        let r =
          Driver.repair ~name:c.Case.id ~workload:c.Case.workload
            (Lazy.force c.Case.program)
        in
        row (c.Case.id ^ "/repaired") r.Driver.repaired c.Case.workload)
      (Bugs.all @ Pclht.cases @ Memcached_mini.cases)
  in
  let app_prog kind variant =
    match App.program kind variant with
    | Ok p -> p
    | Error e ->
        Fmt.failwith "table_opt (%s/%s): %s" (App.kind_to_string kind)
          (App.variant_to_string variant) e
  in
  let app_rows =
    [
      row "redis/manual" (app_prog App.Redis App.Manual)
        Redis_bench.repair_workload;
      row "redis/repaired" (app_prog App.Redis App.Repaired)
        Redis_bench.repair_workload;
      row "pclht/manual" (app_prog App.Pclht App.Manual) Pclht.workload;
      row "pclht/repaired" (app_prog App.Pclht App.Repaired) Pclht.workload;
    ]
  in
  let rows = corpus_rows @ app_rows in
  Fmt.pr "  %-18s %13s %13s %8s %7s %10s %10s %7s@." "subject" "flush/fence"
    "-> after" "removed" "static" "cost-ns" "-> after" "delta";
  List.iter
    (fun (name, (o : O.outcome), cost0, cost1) ->
      Fmt.pr "  %-18s %6d/%-6d %6d/%-6d %8d %7s %10.0f %10.0f %6.1f%%@." name
        o.O.o_before.Timed.flushes o.O.o_before.Timed.fences
        o.O.o_after.Timed.flushes o.O.o_after.Timed.fences
        (List.length o.O.o_removals)
        (if o.O.o_report_equal then "equal" else "DRIFT")
        cost0 cost1
        (100. *. (cost1 -. cost0) /. Float.max 1. cost0))
    rows;
  (* dynamic do-no-harm on the flagship subject: the repaired and
     optimized P-CLHT must give the same verdict at every crash point,
     at both worker widths *)
  let pclht_rep = app_prog App.Pclht App.Repaired in
  let pclht_opt = (O.run pclht_rep).O.o_prog in
  let verdicts =
    List.map
      (fun jobs ->
        ( jobs,
          O.crash_verdicts_identical ~jobs ~setup:clht_sweep_setup
            ~checker:"clht_recover_check" ~checker_args:[] pclht_rep pclht_opt
        ))
      [ 1; 2 ]
  in
  List.iter
    (fun (jobs, ok) ->
      Fmt.pr "  pclht crash-sweep verdicts identical at jobs %d: %s@." jobs
        (if ok then "yes" else "NO"))
    verdicts;
  let total_removed =
    List.fold_left
      (fun acc (_, o, _, _) -> acc + List.length o.O.o_removals)
      0 rows
  in
  Fmt.pr "  total removed across %d subjects: %d@." (List.length rows)
    total_removed;
  `Assoc
    [
      ( "rows",
        `List
          (List.map
             (fun (name, (o : O.outcome), cost0, cost1) ->
               `Assoc
                 [
                   ("subject", `String name);
                   ("flushes_before", `Int o.O.o_before.Timed.flushes);
                   ("fences_before", `Int o.O.o_before.Timed.fences);
                   ("flushes_after", `Int o.O.o_after.Timed.flushes);
                   ("fences_after", `Int o.O.o_after.Timed.fences);
                   ("removed", `Int (List.length o.O.o_removals));
                   ("report_equal", `Bool o.O.o_report_equal);
                   ("reverted", `Bool o.O.o_reverted);
                   ("cost_ns_before", `Float cost0);
                   ("cost_ns_after", `Float cost1);
                 ])
             rows) );
      ( "pclht_crash_verdicts_identical",
        `Assoc
          (List.map (fun (j, ok) -> (Fmt.str "jobs%d" j, `Bool ok)) verdicts)
      );
      ("total_removed", `Int total_removed);
      ( "all_report_equal",
        `Bool (List.for_all (fun (_, o, _, _) -> o.O.o_report_equal) rows) );
    ]

(* exec — the compiled tier vs the reference interpreter -------------- *)

let exec_ops = ref 200_000

let table_exec () =
  section
    (Fmt.str
       "exec — compiled tier vs the reference interpreter (%d YCSB ops, \
        seed %d)"
       !exec_ops !seed);
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Row 1: YCSB workload A against a manual-Redis session — the serve
     hot path (trace off, cost model on, unlimited fuel). The witness
     (final count, machine steps, accumulated simulated ns) must agree
     across tiers. *)
  let ycsb_case exec =
    let records = 2_000 in
    let spec =
      {
        (Hippo_ycsb.Workload.default_spec Hippo_ycsb.Workload.A) with
        record_count = records;
        op_count = !exec_ops;
      }
    in
    let ops = Hippo_ycsb.Workload.ops spec ~seed:!seed in
    let prog = Redis_mini.build Redis_mini.Manual in
    let config =
      {
        Interp.default_config with
        Interp.trace = false;
        fuel = max_int;
        cost = Some Cost.default;
        exec;
      }
    in
    let s = Redis_mini.start ~config ~nbuckets:(max 64 (records / 8)) prog in
    for k = 0 to records - 1 do
      Redis_mini.op_insert s ~k ~version:0
    done;
    let (), wall = timed (fun () -> List.iter (Redis_mini.run_op s) ops) in
    let witness =
      Fmt.str "count=%d steps=%d cost=%.0f" (Redis_mini.count s)
        (Interp.steps s.Redis_mini.interp)
        (Interp.cost_ns s.Redis_mini.interp)
    in
    (float_of_int (List.length ops) /. wall, witness)
  in
  (* Row 2: the fuzz-smoke program family — {!Hippo_fuzz.Gen} programs
     executed back to back on one machine each (the oracle's hot loop:
     trace off, no cost model). The witness folds steps and bug counts
     over every program. *)
  let fuzz_case exec =
    let nprogs = 32 and reps = 1_500 in
    let rand = Hippo_parallel.Stream.state ~seed:!seed [ 7 ] in
    let progs = List.init nprogs (fun _ -> Hippo_fuzz.Gen.random_mixed rand) in
    let run () =
      List.fold_left
        (fun acc prog ->
          let t =
            Interp.create
              {
                Interp.default_config with
                Interp.trace = false;
                fuel = max_int;
                exec;
              }
              prog
          in
          for _ = 1 to reps do
            ignore (Exec.call t "main" [])
          done;
          Interp.exit_check t;
          acc + Interp.steps t + List.length (Interp.bugs t))
        0 progs
    in
    let acc, wall = timed run in
    (float_of_int (nprogs * reps) /. wall, Fmt.str "acc=%d" acc)
  in
  let row name case =
    let i_ops, i_witness = case `Interp in
    let c_ops, c_witness = case `Compiled in
    let speedup = c_ops /. i_ops in
    let agree = String.equal i_witness c_witness in
    Fmt.pr
      "  %-12s interp %10.0f ops/s   compiled %10.0f ops/s   %6.1fx   \
       agree: %s@."
      name i_ops c_ops speedup
      (if agree then "yes" else "NO");
    (name, i_ops, c_ops, speedup, agree)
  in
  (* Sequence explicitly: list elements evaluate right to left, and the
     rows print as a side effect of [row]. *)
  let r_ycsb = row "ycsb-a" ycsb_case in
  let r_fuzz = row "fuzz-smoke" fuzz_case in
  let rows = [ r_ycsb; r_fuzz ] in
  let speedup_of name =
    let _, _, _, s, _ = List.find (fun (n, _, _, _, _) -> n = name) rows in
    s
  in
  let ycsb_speedup = speedup_of "ycsb-a" in
  Fmt.pr "  compiled is >=10x the interpreter on the YCSB row: %s@."
    (if ycsb_speedup >= 10. then "yes" else "NO");
  `Assoc
    [
      ("seed", `Int !seed);
      ("ycsb_ops", `Int !exec_ops);
      ( "rows",
        `List
          (List.map
             (fun (name, i_ops, c_ops, speedup, agree) ->
               `Assoc
                 [
                   ("workload", `String name);
                   ("interp_ops_s", `Float i_ops);
                   ("compiled_ops_s", `Float c_ops);
                   ("speedup", `Float speedup);
                   ("agree", `Bool agree);
                 ])
             rows) );
      ("ycsb_speedup", `Float ycsb_speedup);
      ("ycsb_speedup_ge_10", `Bool (ycsb_speedup >= 10.));
      ("agree_all", `Bool (List.for_all (fun (_, _, _, _, a) -> a) rows));
    ]

(* ------------------------------------------------------------------ *)
(* scenario simulator: fleet throughput per fault mode, plus the
   determinism cross-check (a fleet's digest must be byte-identical at
   the benchmark's jobs width and serially) *)

module Sim = Hippo_sim.Harness

let table_sim () =
  section
    (Fmt.str "sim — fault-injecting scenario fleets (seed %d, jobs %d)"
       !seed !jobs);
  let scenarios = 8 and ops = 60 in
  let base mode kind variant =
    {
      Sim.default_config with
      Sim.kind;
      variant;
      mode;
      seed = !seed;
      scenarios;
      ops;
      keyspace = 24;
      nbuckets = 16;
      jobs = !jobs;
    }
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let row (label, cfg) =
    match timed (fun () -> Sim.run cfg) with
    | Error e, _ -> Fmt.failwith "table_sim (%s): %s" label e
    | Ok r, wall ->
        let serial =
          match Sim.run { cfg with Sim.jobs = 1 } with
          | Ok s -> s
          | Error e -> Fmt.failwith "table_sim (%s, serial): %s" label e
        in
        let det = String.equal r.Sim.digest serial.Sim.digest in
        let scen_s = float_of_int scenarios /. wall in
        Fmt.pr
          "  %-22s %6.1f scen/s   crashes %3d   violations %3d   \
           digest %s   jobs-identical: %s@."
          label scen_s r.Sim.crashes
          (List.length r.Sim.violations)
          (String.sub r.Sim.digest 0 8)
          (if det then "yes" else "NO");
        (label, scen_s, r, det)
  in
  let rows =
    List.map row
      [
        ("redis/manual quick", base Sim.Quick App.Redis App.Manual);
        ("redis/manual standard", base Sim.Standard App.Redis App.Manual);
        ("redis/manual chaos", base Sim.Chaos App.Redis App.Manual);
        ("pclht/manual chaos", base Sim.Chaos App.Pclht App.Manual);
      ]
  in
  let violations_of label =
    let _, _, r, _ = List.find (fun (l, _, _, _) -> l = label) rows in
    List.length r.Sim.violations
  in
  let deterministic = List.for_all (fun (_, _, _, d) -> d) rows in
  let manual_clean =
    violations_of "redis/manual quick" = 0
    && violations_of "redis/manual standard" = 0
    && violations_of "redis/manual chaos" = 0
  in
  let detects = violations_of "pclht/manual chaos" > 0 in
  Fmt.pr "  every fleet digest identical at jobs %d and 1: %s@." !jobs
    (if deterministic then "yes" else "NO");
  Fmt.pr "  hand-hardened redis clean under every mode: %s@."
    (if manual_clean then "yes" else "NO");
  Fmt.pr "  chaos detects P-CLHT's injected bugs: %s@."
    (if detects then "yes" else "NO");
  `Assoc
    [
      ("seed", `Int !seed);
      ("scenarios", `Int scenarios);
      ("ops", `Int ops);
      ("jobs", `Int !jobs);
      ( "rows",
        `List
          (List.map
             (fun (label, scen_s, r, det) ->
               `Assoc
                 [
                   ("fleet", `String label);
                   ("scenarios_per_s", `Float scen_s);
                   ("crashes", `Int r.Sim.crashes);
                   ("recoveries", `Int r.Sim.recoveries);
                   ("torn", `Int r.Sim.torn);
                   ("violations", `Int (List.length r.Sim.violations));
                   ("digest", `String r.Sim.digest);
                   ("jobs_identical", `Bool det);
                 ])
             rows) );
      ("deterministic", `Bool deterministic);
      ("manual_redis_clean", `Bool manual_clean);
      ("chaos_detects_pclht_bugs", `Bool detects);
    ]

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable results (hand-rolled serializer; no
   JSON library in the toolchain). *)

type json =
  [ `Assoc of (string * json) list
  | `List of json list
  | `String of string
  | `Int of int
  | `Float of float
  | `Bool of bool ]

let rec json_to_buf buf (j : json) =
  match j with
  | `String s ->
      Buffer.add_char buf '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | `Int n -> Buffer.add_string buf (string_of_int n)
  | `Float f -> Buffer.add_string buf (Fmt.str "%.6f" f)
  | `Bool b -> Buffer.add_string buf (string_of_bool b)
  | `List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf x)
        l;
      Buffer.add_char buf ']'
  | `Assoc kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf (`String k);
          Buffer.add_char buf ':';
          json_to_buf buf v)
        kvs;
      Buffer.add_char buf '}'

(* results accumulated by experiments that support --json *)
let json_results : (string * json) list ref = ref []

let add_json key (j : json) = json_results := (key, j) :: !json_results

let write_json path =
  let buf = Buffer.create 4096 in
  json_to_buf buf (`Assoc (List.rev !json_results));
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "@.json results written to %s@." path

let () =
  let args = Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)) in
  let full = List.mem "--full" args in
  (* consume "--jobs N" and "--json FILE"; everything else left in place *)
  let json_file = ref None in
  let rec strip_opts = function
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> jobs := k
        | _ -> Fmt.epr "--jobs expects a positive integer, got %S@." n);
        strip_opts rest
    | "--json" :: path :: rest ->
        json_file := Some path;
        strip_opts rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k -> seed := k
        | None -> Fmt.epr "--seed expects an integer, got %S@." n);
        strip_opts rest
    | "--serve-records" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> serve_records := k
        | _ -> Fmt.epr "--serve-records expects a positive integer, got %S@." n);
        strip_opts rest
    | "--serve-ops" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> serve_ops := k
        | _ -> Fmt.epr "--serve-ops expects a positive integer, got %S@." n);
        strip_opts rest
    | "--exec-ops" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> exec_ops := k
        | _ -> Fmt.epr "--exec-ops expects a positive integer, got %S@." n);
        strip_opts rest
    | a :: rest -> a :: strip_opts rest
    | [] -> []
  in
  let cmds = List.filter (fun a -> a <> "--full") (strip_opts args) in
  let run_all () =
    fig1 ();
    table_effectiveness ();
    table_static ();
    table_heuristics ();
    fig3 ();
    let v = fig4 ~full () in
    fix_stats ~variants:v ();
    fig5 ();
    code_size ~variants:v ();
    ablate_reuse ();
    ablate_reduction ();
    ablate_heuristic ();
    table_main ();
    table_par ();
    add_json "table_crash" (table_crash ());
    add_json "table_fuzz" (table_fuzz ());
    micro ()
  in
  (match cmds with
  | [] -> run_all ()
  | cmds ->
      List.iter
        (function
          | "fig1" -> fig1 ()
          | "table_effectiveness" -> table_effectiveness ()
          | "table_static" -> table_static ()
          | "table_heuristics" -> table_heuristics ()
          | "fig3" -> fig3 ()
          | "fig4" -> ignore (fig4 ~full ())
          | "fix_stats" -> fix_stats ()
          | "fig5" -> fig5 ()
          | "code_size" -> code_size ()
          | "ablate_reuse" -> ablate_reuse ()
          | "ablate_reduction" -> ablate_reduction ()
          | "ablate_heuristic" -> ablate_heuristic ()
          | "table_main" -> table_main ()
          | "table_par" -> table_par ()
          | "table_crash" -> add_json "table_crash" (table_crash ())
          | "table_fuzz" -> add_json "table_fuzz" (table_fuzz ())
          | "table_serve" -> add_json "table_serve" (table_serve ())
          | "table_opt" -> add_json "table_opt" (table_opt ())
          | "table_exec" -> add_json "table_exec" (table_exec ())
          | "table_sim" -> add_json "table_sim" (table_sim ())
          | "micro" -> micro ()
          | other -> Fmt.epr "unknown experiment %S@." other)
        cmds);
  match !json_file with
  | Some path ->
      add_json "jobs" (`Int !jobs);
      write_json path
  | None -> ()
