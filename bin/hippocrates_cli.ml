(* The hippocrates command-line tool, mirroring the artifact's workflow:

     hippocrates check prog.pmir --entry main --trace-out prog.trace
     hippocrates fix prog.pmir --trace prog.trace -o prog.fixed.pmir
     hippocrates fix prog.pmir --entry main -o prog.fixed.pmir
     hippocrates run prog.pmir --entry main
     hippocrates corpus

   `check` runs the pmemcheck-style bug finder over a textual PMIR program
   and writes an on-disk trace (events + site statistics + bug reports);
   `fix` consumes either that trace or re-runs the finder itself, applies
   Hippocrates, verifies, and writes the repaired program. *)

open Cmdliner
open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

let read_program path =
  try Ok (Parser.program_of_file path) with
  | Parser.Parse_error { line; msg } ->
      Error (Fmt.str "%s:%d: %s" path line msg)
  | Sys_error e -> Error e

let validate_or_die prog =
  match Validate.check prog with
  | [] -> Ok ()
  | errors ->
      Error
        (Fmt.str "@[<v>invalid program:@,%a@]"
           (Fmt.list Validate.pp_error) errors)

let parse_args (args : string list) =
  try Ok (List.map int_of_string args)
  with Failure _ -> Error "entry arguments must be integers"

let run_workload prog ~exec ~trace ~entry ~args =
  let t = Interp.create { Interp.default_config with Interp.exec; trace } prog in
  let ret =
    try Ok (Exec.call t entry args) with
    | Mem.Trap m -> Error (Fmt.str "trap: %s" m)
    | Interp.Aborted -> Error "abort() called"
    | Interp.Out_of_fuel -> Error "out of fuel"
  in
  Interp.exit_check t;
  (t, ret)

(* ------------------------------------------------------------------ *)

let prog_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROGRAM" ~doc:"Textual PMIR program file.")

let entry_arg =
  Arg.(
    value & opt string "main"
    & info [ "entry" ] ~docv:"FUNC" ~doc:"Entry function to execute.")

let entry_args_arg =
  Arg.(
    value & opt_all string []
    & info [ "arg" ] ~docv:"INT" ~doc:"Integer argument for the entry call.")

let exits = [ Cmd.Exit.info 1 ~doc:"on failure" ]

let jobs_arg =
  Arg.(
    value
    & opt int (Hippo_parallel.Pool.default_domains ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Domain budget for parallel phases (verification and crash \
              sweeps). Defaults to $(b,HIPPO_JOBS) when set, otherwise the \
              machine's recommended domain count. $(b,--jobs 1) is fully \
              serial, with byte-identical output.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Root RNG seed for randomized modes (fuzzing, crash-point \
              sampling). Every worker derives its own substream from this \
              one value, so results are reproducible at any $(b,--jobs).")

let exec_arg =
  Arg.(
    value
    & opt (enum [ ("interp", `Interp); ("compiled", `Compiled) ])
        Interp.default_config.Interp.exec
    & info [ "exec" ] ~docv:"TIER"
        ~doc:"Execution tier for PMIR workloads: $(b,compiled) (per-block \
              closure compilation, the default) or $(b,interp) (the \
              reference interpreter, kept as the differential oracle). \
              Both tiers produce byte-identical traces, bug reports, \
              crash verdicts and simulated costs; $(b,interp) exists for \
              cross-checking and debugging.")

type trace_format = Pmemcheck | Pmtest

let format_arg =
  Arg.(
    value
    & opt (enum [ ("pmemcheck", Pmemcheck); ("pmtest", Pmtest) ]) Pmemcheck
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Trace dialect: $(b,pmemcheck) (native, with site statistics) \
              or $(b,pmtest) (assertion-log style; Full-AA repairs only).")

(* check ------------------------------------------------------------- *)

(* Static entry points: the --entry function when the program defines it,
   the checker's own root inference otherwise. *)
let static_entries prog ~entry =
  if Program.mem prog entry then Some [ entry ] else None

let check_cmd =
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the PM operation trace, site statistics and bug \
                reports to $(docv).")
  in
  let static_flag =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:"Use the static durability analyzer instead of executing a \
                workload: abstract interpretation from $(b,--entry) (or \
                the program's roots), no trace events or site statistics.")
  in
  let crash_sweep_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-sweep" ] ~docv:"CHECKER"
          ~doc:"After the bug scan, enumerate every crash point of the \
                workload; for each, recover the pessimistic (durable) and \
                lucky (fully-evicted) crash images by calling $(docv) — a \
                function in the program that returns nonzero when the \
                recovered state satisfies the application invariant. Crash \
                points are independent scenarios and fan out across \
                $(b,--jobs) worker domains.")
  in
  let crash_strategy_arg =
    Arg.(
      value
      & opt
          (enum [ ("single-pass", `Single_pass); ("replay", `Replay) ])
          `Single_pass
      & info [ "crash-strategy" ] ~docv:"STRATEGY"
          ~doc:"Crash-sweep strategy: $(b,single-pass) (one instrumented \
                run; recovery deduplicated and memoized by image \
                fingerprint) or $(b,replay) (re-execute the workload \
                prefix per crash point). Verdicts are identical; \
                single-pass also prints dedup statistics.")
  in
  let crash_sample_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-sample" ] ~docv:"K"
          ~doc:"With $(b,--crash-sweep), check only $(docv) crash points \
                sampled uniformly (seeded by $(b,--seed)) instead of every \
                one — a bounded probe for workloads with many crash \
                points.")
  in
  let run prog_path entry args trace_out format static crash_sweep
      crash_strategy crash_sample seed jobs exec =
    let ( let* ) = Result.bind in
    let config = { Interp.default_config with Interp.exec } in
    let sampled_sweep prog ~setup ~checker =
      let n = Crashsim.count_crash_points ~config prog ~setup in
      let k = min crash_sample n in
      Fmt.pr "seed: %d (sampling %d of %d crash points)@." seed k n;
      let rand = Hippo_parallel.Stream.state ~seed [ 2 ] in
      let chosen = Hashtbl.create 16 in
      while Hashtbl.length chosen < k do
        Hashtbl.replace chosen (1 + Random.State.int rand n) ()
      done;
      let indices = List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) chosen []) in
      ( List.map
          (fun crash_index ->
            Crashsim.check_crash ~config prog ~setup ~checker
              ~checker_args:[] ~crash_index)
          indices,
        None )
    in
    let crash_sweep_check prog ~args =
      match crash_sweep with
      | None -> Ok 0
      | Some checker when not (Program.mem prog checker) ->
          Error (Fmt.str "--crash-sweep: no function %S in the program" checker)
      | Some checker ->
          let verdicts, stats =
            if crash_sample > 0 then
              sampled_sweep prog ~setup:[ (entry, args) ] ~checker
            else
              let v, s =
                Crashsim.sweep_with_stats ~config ~jobs:(max 1 jobs)
                  ~strategy:crash_strategy prog
                  ~setup:[ (entry, args) ]
                  ~checker ~checker_args:[]
              in
              (v, Some s)
          in
          List.iter
            (fun (v : Crashsim.verdict) ->
              Fmt.pr "  crash point %2d: pessimistic %s, lucky %s@."
                v.Crashsim.crash_index
                (if v.Crashsim.pessimistic_ok then "recovers" else "LOST")
                (if v.Crashsim.lucky_ok then "recovers" else "LOST"))
            verdicts;
          (match (crash_strategy, stats) with
          | `Single_pass, Some stats ->
              Fmt.pr
                "crash images: %d distinct of %d captured; recovery runs: \
                 %d (%d memoized)@."
                stats.Crashsim.distinct_images
                (2 * stats.Crashsim.crash_points)
                stats.Crashsim.recovery_runs stats.Crashsim.memo_hits
          | _ -> ());
          let ok = List.filter Crashsim.consistent verdicts in
          Fmt.pr "crash consistent: %s (%d/%d crash points recover)@."
            (if List.length ok = List.length verdicts then "yes" else "NO")
            (List.length ok) (List.length verdicts);
          Ok (if List.length ok = List.length verdicts then 0 else 1)
    in
    let static_check prog =
      let r = Driver.check_static ?entries:(static_entries prog ~entry) prog in
      Fmt.pr "static analysis: %d entr%s, %d summaries (%d reused)@."
        (List.length r.Hippo_staticcheck.Checker.stats.entries)
        (if List.length r.Hippo_staticcheck.Checker.stats.entries = 1 then "y"
         else "ies")
        r.Hippo_staticcheck.Checker.stats.summaries_computed
        r.Hippo_staticcheck.Checker.stats.summary_hits;
      let bugs = r.Hippo_staticcheck.Checker.bugs in
      Fmt.pr "durability bugs: %d@." (List.length bugs);
      List.iter (fun b -> Fmt.pr "  %a@." Report.pp_bug b) bugs;
      (match trace_out with
      | Some path ->
          (* bug reports only: there is no execution, hence no events or
             site statistics; `fix --trace` accepts the file (Full-AA) *)
          let oc = open_out path in
          List.iter
            (fun b -> output_string oc (Report.to_line b ^ "\n"))
            bugs;
          close_out oc;
          Fmt.pr "reports written to %s@." path
      | None -> ());
      Ok (if bugs = [] then 0 else 1)
    in
    let result =
      let* prog = read_program prog_path in
      let* () = validate_or_die prog in
      let* () =
        if static && crash_sweep <> None then
          Error "--crash-sweep needs a dynamic workload; drop --static"
        else Ok ()
      in
      if static then static_check prog
      else
      let* args = parse_args args in
      (* the event trace is only materialized when it is written out *)
      let t, ret =
        run_workload prog ~exec ~trace:(trace_out <> None) ~entry ~args
      in
      (match ret with
      | Ok r -> Fmt.pr "%s(%a) returned %d@." entry Fmt.(list ~sep:comma int) args r
      | Error e -> Fmt.pr "execution stopped: %s@." e);
      let bugs = Interp.bugs t in
      Fmt.pr "PM stores: %d, flushes: %d, fences: %d@."
        (Pstate.( (Interp.pstate t).stores_pm_total ))
        (Pstate.( (Interp.pstate t).flushes_total ))
        (Pstate.( (Interp.pstate t).fences_total ));
      Fmt.pr "durability bugs: %d@." (List.length bugs);
      List.iter (fun b -> Fmt.pr "  %a@." Report.pp_bug b) bugs;
      (match trace_out with
      | Some path ->
          let oc = open_out path in
          (match format with
          | Pmemcheck ->
              output_string oc (Trace.to_string (Interp.trace t));
              output_char oc '\n';
              List.iter
                (fun l -> output_string oc (l ^ "\n"))
                (Sitestats.to_lines (Interp.site_stats t));
              List.iter
                (fun b -> output_string oc (Report.to_line b ^ "\n"))
                (Interp.raw_bugs t)
          | Pmtest ->
              output_string oc
                (Pmtest_format.to_string ~events:(Interp.trace t)
                   ~bugs:(Interp.raw_bugs t));
              output_char oc '\n');
          close_out oc;
          Fmt.pr "trace written to %s@." path
      | None -> ());
      let* sweep_code = crash_sweep_check prog ~args in
      Ok (if bugs = [] && sweep_code = 0 then 0 else 1)
    in
    match result with
    | Ok code -> code
    | Error e ->
        Fmt.epr "error: %s@." e;
        1
  in
  Cmd.v
    (Cmd.info "check" ~exits
       ~doc:"Run the pmemcheck-style durability bug finder (or, with \
             $(b,--static), the workload-free static analyzer); optionally \
             follow with a crash-point recovery sweep ($(b,--crash-sweep)).")
    Term.(
      const run $ prog_arg $ entry_arg $ entry_args_arg $ trace_out
      $ format_arg $ static_flag $ crash_sweep_arg $ crash_strategy_arg
      $ crash_sample_arg $ seed_arg $ jobs_arg $ exec_arg)

(* fix --------------------------------------------------------------- *)

let load_trace_file ~format path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match format with
  | Pmtest ->
      let events, bugs = Pmtest_format.of_string content in
      (* PMTest traces carry no site statistics: Trace-AA unavailable *)
      (events, Sitestats.create (), bugs)
  | Pmemcheck ->
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> String.trim l <> "")
      in
      let stats_lines, rest =
        List.partition
          (fun l -> String.length l > 4 && String.sub l 0 5 = "STAT;")
          lines
      in
      let bug_lines, event_lines =
        List.partition
          (fun l -> String.length l > 3 && String.sub l 0 4 = "BUG;")
          rest
      in
      let events = List.map Trace.of_line event_lines in
      let stats = Sitestats.of_lines stats_lines in
      let bugs = List.map Report.of_line bug_lines in
      (events, stats, bugs)

let fix_cmd =
  let trace_in =
    Arg.(
      value & opt (some file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Bug-finder trace produced by $(b,check --trace-out); when \
                absent the finder is run in-process on $(b,--entry).")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the repaired program to $(docv) (default: stdout).")
  in
  let no_hoist =
    Arg.(
      value & flag
      & info [ "no-hoist" ]
          ~doc:"Disable Phase 3 (interprocedural hoisting); produce only \
                intraprocedural fixes.")
  in
  let oracle_choice =
    Arg.(
      value
      & opt (enum [ ("full-aa", Driver.Full_aa); ("trace-aa", Driver.Trace_aa) ])
          Driver.Full_aa
      & info [ "oracle" ] ~docv:"ORACLE"
          ~doc:"Alias oracle for the heuristic: $(b,full-aa) (whole-program \
                Andersen) or $(b,trace-aa) (dynamic observations only).")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:"Print a patch-style summary of the inserted fixes to \
                stderr.")
  in
  let portable_flag =
    Arg.(
      value & flag
      & info [ "portable" ]
          ~doc:"Emit fixes as libpmem-style pmem_flush/pmem_drain calls \
                (runtime-dispatched, PMDK developer style) instead of raw \
                clwb/sfence; requires the program to link the runtime.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the engine's structured per-pass events (timings, \
                counters, fix provenance) to $(docv) as JSON-lines, and \
                print a per-phase timing breakdown to stderr.")
  in
  let detector_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("dynamic", Driver.Dynamic);
               ("static", Driver.Static);
               ("both", Driver.Both);
             ])
          Driver.Dynamic
      & info [ "detector" ] ~docv:"DETECTOR"
          ~doc:"Where bug reports come from: $(b,dynamic) (execute \
                $(b,--entry) under the bug finder), $(b,static) (the \
                workload-free analyzer; verification is static too) or \
                $(b,both) (union of the two). Ignored with $(b,--trace).")
  in
  let optimize_flag =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:"After repair, run the Bent\xc5\x8d-style flush/fence \
                optimizer over the repaired program: deletions must be \
                provably redundant on every path, and the whole rewrite \
                is reverted if the static bug reports change at all.")
  in
  let run prog_path entry args trace_in output no_hoist oracle_choice format
      portable diff detector optimize trace_out jobs exec =
    let ( let* ) = Result.bind in
    let result =
      let* prog = read_program prog_path in
      let* () = validate_or_die prog in
      let* args = parse_args args in
      Fmt.epr "input:    %a@."
        Hippo_perfmodel.Timed.pp_static_counts
        (Hippo_perfmodel.Timed.static_counts prog);
      let collected = ref [] in
      let trace e = collected := e :: !collected in
      let options =
        {
          Driver.default_options with
          hoisting = not no_hoist;
          oracle = oracle_choice;
          style = (if portable then Apply.Portable else Apply.Direct);
          jobs = max 1 jobs;
        }
      in
      let* repaired, report =
        match trace_in with
        | Some path ->
            let _, stats, raw_bugs = load_trace_file ~format path in
            let bugs = Report.dedup raw_bugs in
            let oracle =
              match oracle_choice with
              | Driver.Full_aa -> Hippo_alias.Oracle.of_program prog
              | Driver.Trace_aa -> Hippo_alias.Oracle.trace_aa stats
            in
            let plan, _, eliminated =
              Driver.plan ~options ~trace ~oracle prog bugs
            in
            let repaired, stats' =
              Apply.apply ~style:options.Driver.style ~oracle prog plan
            in
            Ok
              ( repaired,
                Fmt.str
                  "bugs: %d; fixes: %d (%d intra, %d inter); reduction \
                   eliminated %d; clones: %d"
                  (List.length bugs)
                  (List.length plan.Fix.fixes)
                  (Fix.count_intra plan) (Fix.count_hoisted plan) eliminated
                  stats'.Apply.clones_created )
        | None when detector = Driver.Static ->
            let r =
              Driver.repair_static ~options ~trace
                ?entries:(static_entries prog ~entry)
                ~name:prog_path prog
            in
            if r.Driver.s_residual <> [] then
              Error
                (Fmt.str
                   "verification failed: %d static bug(s) remain after \
                    repair"
                   (List.length r.Driver.s_residual))
            else
              Ok (r.Driver.s_repaired, Fmt.str "%a" Driver.pp_static_summary r)
        | None ->
            let workload t = ignore (Exec.call t entry args) in
            let r =
              Driver.repair ~options ~detector ~trace
                ?static_entries:(static_entries prog ~entry)
                ~name:prog_path ~workload
                ~config:{ Interp.default_config with Interp.exec }
                prog
            in
            if not (Verify.effective r.Driver.verification) then
              Error "verification failed: residual bugs after repair"
            else if not (Verify.harm_free r.Driver.verification) then
              Error "verification failed: repaired program diverges"
            else
              Ok (r.Driver.repaired, Fmt.str "%a" Driver.pp_summary r)
      in
      Fmt.epr "repaired: %a@."
        Hippo_perfmodel.Timed.pp_static_counts
        (Hippo_perfmodel.Timed.static_counts repaired);
      Fmt.epr "%s@." report;
      let repaired =
        if not optimize then repaired
        else begin
          let r =
            Driver.optimize
              ?entries:(static_entries repaired ~entry)
              ~name:prog_path repaired
          in
          Fmt.epr "%a@." Driver.pp_opt_summary r;
          r.Driver.t_outcome.Hippo_engine.Optimize.o_prog
        end
      in
      (match trace_out with
      | Some path ->
          let events = List.rev !collected in
          Hippo_engine.Event.write_jsonl path events;
          Fmt.epr "%d engine events written to %s@." (List.length events) path;
          Fmt.epr "%a" Hippo_engine.Event.pp_table events
      | None -> ());
      if diff then
        Fmt.epr "%s@." (Diff.report ~original:prog ~repaired);
      let text = Printer.to_string repaired in
      (match output with
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc
      | None -> print_string text);
      Ok 0
    in
    match result with
    | Ok code -> code
    | Error e ->
        Fmt.epr "error: %s@." e;
        1
  in
  Cmd.v
    (Cmd.info "fix" ~exits ~doc:"Repair durability bugs with Hippocrates.")
    Term.(
      const run $ prog_arg $ entry_arg $ entry_args_arg $ trace_in $ output
      $ no_hoist $ oracle_choice $ format_arg $ portable_flag $ diff_flag
      $ detector_arg $ optimize_flag $ trace_out $ jobs_arg $ exec_arg)

(* optimize ---------------------------------------------------------- *)

let optimize_cmd =
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the optimized program to $(docv) (default: stdout).")
  in
  let removals_flag =
    Arg.(
      value & flag
      & info [ "removals" ]
          ~doc:"List every deleted instruction (function, location, rule) \
                on stderr.")
  in
  let run prog_path entry output removals =
    let ( let* ) = Result.bind in
    let result =
      let* prog = read_program prog_path in
      let* () = validate_or_die prog in
      Fmt.epr "input:    %a@."
        Hippo_perfmodel.Timed.pp_static_counts
        (Hippo_perfmodel.Timed.static_counts prog);
      let r =
        Driver.optimize
          ?entries:(static_entries prog ~entry)
          ~name:prog_path prog
      in
      Fmt.epr "%a@." Driver.pp_opt_summary r;
      if removals then
        List.iter
          (fun rm -> Fmt.epr "  %a@." Hippo_engine.Optimize.pp_removal rm)
          r.Driver.t_outcome.Hippo_engine.Optimize.o_removals;
      let text =
        Printer.to_string r.Driver.t_outcome.Hippo_engine.Optimize.o_prog
      in
      (match output with
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc
      | None -> print_string text);
      Ok (if r.Driver.t_outcome.Hippo_engine.Optimize.o_reverted then 1 else 0)
    in
    match result with
    | Ok code -> code
    | Error e ->
        Fmt.epr "error: %s@." e;
        1
  in
  Cmd.v
    (Cmd.info "optimize" ~exits
       ~doc:"Remove provably-redundant flushes and fences (Bent\xc5\x8d-style), \
             reverting wholesale if the static bug reports change at all.")
    Term.(const run $ prog_arg $ entry_arg $ output $ removals_flag)

(* run --------------------------------------------------------------- *)

let run_cmd =
  let run prog_path entry args exec =
    let ( let* ) = Result.bind in
    let result =
      let* prog = read_program prog_path in
      let* () = validate_or_die prog in
      let* args = parse_args args in
      (* plain execution: nothing reads the event trace, so keep it off *)
      let t, ret = run_workload prog ~exec ~trace:false ~entry ~args in
      (match ret with
      | Ok r -> Fmt.pr "returned %d@." r
      | Error e -> Fmt.pr "execution stopped: %s@." e);
      (match Interp.output t with
      | [] -> ()
      | out -> Fmt.pr "output: %a@." Fmt.(list ~sep:comma int) out);
      Ok 0
    in
    match result with
    | Ok code -> code
    | Error e ->
        Fmt.epr "error: %s@." e;
        1
  in
  Cmd.v
    (Cmd.info "run" ~exits ~doc:"Execute a PMIR program.")
    Term.(const run $ prog_arg $ entry_arg $ entry_args_arg $ exec_arg)

(* fuzz -------------------------------------------------------------- *)

let fuzz_cmd =
  let time_arg =
    Arg.(
      value & opt float 0.
      & info [ "time" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget. A time-bounded run executes a \
                scheduling-dependent number of candidates; use \
                $(b,--execs) for bit-reproducible runs.")
  in
  let execs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "execs" ] ~docv:"N"
          ~doc:"Guided-execution budget (the coverage-blind baseline adds \
                as many again). Default: 64 with $(b,--smoke), else 256 \
                unless $(b,--time) is given.")
  in
  let corpus_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Save the retained corpus ($(docv)/corpus/*.pmir) and \
                shrunk reproducers + oracle transcripts \
                ($(docv)/reproducers/).")
  in
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI smoke mode: small fixed budget, fully deterministic \
                output for a given $(b,--seed) at any $(b,--jobs).")
  in
  let run time execs seed corpus_dir smoke jobs exec =
    let max_execs =
      match execs with
      | Some e -> e
      | None -> if smoke then 64 else if time > 0. then max_int else 256
    in
    let cfg =
      {
        Hippo_fuzz.Fuzzer.seed;
        jobs = max 1 jobs;
        max_execs;
        max_time = time;
        corpus_dir;
        smoke;
        exec;
      }
    in
    Fmt.pr "fuzz: seed %d, budget %s@." seed
      (if max_execs < max_int then Fmt.str "%d execs" max_execs
       else Fmt.str "%.0fs" time);
    let s = Hippo_fuzz.Fuzzer.run cfg in
    Fmt.pr "%a" Hippo_fuzz.Fuzzer.pp_summary s;
    (match corpus_dir with
    | Some dir -> Fmt.pr "corpus and reproducers saved under %s/@." dir
    | None -> ());
    if s.Hippo_fuzz.Fuzzer.found = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~exits
       ~doc:"Coverage-guided differential fuzzing of the detectors, the \
             repair pipeline and the crash sweeps over generated PMIR; \
             violations are delta-debugged to minimal $(b,.pmir) \
             reproducers.")
    Term.(
      const run $ time_arg $ execs_arg $ seed_arg $ corpus_dir_arg
      $ smoke_flag $ jobs_arg $ exec_arg)

(* serve / loadgen ---------------------------------------------------- *)

let app_arg =
  Arg.(
    value
    & opt (enum [ ("redis", Hippo_apps.App.Redis); ("pclht", Hippo_apps.App.Pclht) ])
        Hippo_apps.App.Redis
    & info [ "app" ] ~docv:"APP"
        ~doc:"Application to serve: $(b,redis) (string KV, the §6.3 \
              subject) or $(b,pclht) (word-keyed hash table, §6.1).")

let variant_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("flush-free", Hippo_apps.App.Flush_free);
             ("manual", Hippo_apps.App.Manual);
             ("repaired", Hippo_apps.App.Repaired);
             ("optimized", Hippo_apps.App.Optimized);
           ])
        Hippo_apps.App.Manual
    & info [ "variant" ] ~docv:"VARIANT"
        ~doc:"Build to serve: $(b,flush-free) (the repair input; redis \
              only), $(b,manual) (the hand-written baseline), \
              $(b,repaired) (the Hippocrates pipeline output, verified \
              before serving) or $(b,optimized) (the repaired build \
              after the flush/fence optimizer).")

let workload_arg =
  Arg.(
    value
    & opt
        (enum
           (List.map
              (fun k ->
                (String.lowercase_ascii (Hippo_ycsb.Workload.kind_to_string k), k))
              Hippo_ycsb.Workload.all_kinds))
        Hippo_ycsb.Workload.A
    & info [ "workload" ] ~docv:"KIND"
        ~doc:"YCSB workload for the run phase: $(b,a)-$(b,f) or $(b,load).")

let records_arg =
  Arg.(
    value & opt int 10_000
    & info [ "records" ] ~docv:"N"
        ~doc:"Records loaded before the run phase (across all workers).")

let ops_arg =
  Arg.(
    value & opt int 10_000
    & info [ "ops" ] ~docv:"N"
        ~doc:"Run-phase operations (across all workers).")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:"Logical load-generator workers. Each owns a disjoint \
              keyspace slice and a seed substream, so results are \
              identical at any $(b,--jobs).")

let unix_arg =
  Arg.(
    value & opt (some string) None
    & info [ "unix" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port on 127.0.0.1.")

let serve_cmd =
  let inproc_flag =
    Arg.(
      value & flag
      & info [ "inproc" ]
          ~doc:"No sockets: run the load generator against the handler \
                in-process (same codec, same dispatch) and print the \
                outcome. The CI mode.")
  in
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"With $(b,--inproc): run both the manual baseline and the \
                repaired build over the same deterministic traffic, print \
                both outcomes (no wall-clock fields) and exit nonzero \
                unless every verdict, the final count and the store \
                digest agree. Byte-identical output at any $(b,--jobs).")
  in
  let expect_conns_arg =
    Arg.(
      value & opt (some int) None
      & info [ "expect-conns" ] ~docv:"N"
          ~doc:"Exit after $(docv) connections have come and gone (for \
                tests and benches); default: serve forever.")
  in
  let run app variant workload records ops workers inproc smoke unix_path
      port expect_conns seed jobs exec =
    let kind_name = Hippo_apps.App.kind_to_string app in
    if inproc || smoke then
      Hippo_parallel.Pool.run ~domains:(max 1 jobs) (fun pool ->
          let run_variant variant =
            Hippo_serve.Drive.run_inproc ~exec ~pool ~app ~variant ~workload
              ~records ~ops ~workers ~seed ()
          in
          if smoke then
            match (run_variant Hippo_apps.App.Manual,
                   run_variant Hippo_apps.App.Repaired) with
            | Ok manual, Ok repaired ->
                Fmt.pr "%a@.%a@." Hippo_serve.Drive.pp_outcome manual
                  Hippo_serve.Drive.pp_outcome repaired;
                if Hippo_serve.Drive.agrees manual repaired then begin
                  Fmt.pr "serve smoke: %s manual and repaired agree@."
                    kind_name;
                  0
                end
                else begin
                  Fmt.pr "serve smoke: %s VARIANTS DISAGREE@." kind_name;
                  1
                end
            | Error e, _ | _, Error e ->
                Fmt.epr "error: %s@." e;
                1
          else
            match run_variant variant with
            | Ok o ->
                Fmt.pr "%a@." Hippo_serve.Drive.pp_outcome o;
                Fmt.pr "load: %.1f kops/s, run: %.1f kops/s (wall)@."
                  (float_of_int o.Hippo_serve.Drive.load_reqs
                  /. o.Hippo_serve.Drive.wall_load_s /. 1e3)
                  (float_of_int o.Hippo_serve.Drive.run_reqs
                  /. o.Hippo_serve.Drive.wall_run_s /. 1e3);
                0
            | Error e ->
                Fmt.epr "error: %s@." e;
                1)
    else
      let listen =
        match (unix_path, port) with
        | Some path, None -> Ok (Hippo_serve.Listener.listen_unix ~path)
        | None, Some port -> Ok (Hippo_serve.Listener.listen_tcp ~port)
        | None, None -> Error "serve: need --unix, --port or --inproc"
        | Some _, Some _ -> Error "serve: --unix and --port are exclusive"
      in
      match listen with
      | Error e ->
          Fmt.epr "error: %s@." e;
          1
      | Ok listen -> (
          (* capacity hint: socket-mode traffic is bounded by the client's
             --records/--ops, which the server mirrors here *)
          let config =
            Hippo_serve.Drive.serve_config ~exec
              ~final_records:(records + ops) ()
          in
          let nbuckets =
            Hippo_serve.Drive.serve_nbuckets ~final_records:(records + ops)
          in
          match Hippo_apps.App.make ~config ~nbuckets app variant with
          | Error e ->
              Fmt.epr "error: %s@." e;
              1
          | Ok served ->
              (match port with
              | Some 0 ->
                  Fmt.pr "listening on port %d@."
                    (Hippo_serve.Listener.port_of listen)
              | _ -> ());
              let metrics = Hippo_serve.Metrics.create () in
              Hippo_serve.Listener.serve ~app:served ~metrics ~listen
                ?expect_conns ();
              Fmt.pr "served %s: %a@." served.Hippo_apps.App.name
                Hippo_serve.Metrics.pp metrics;
              0)
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:"Serve a PM application over the binary KV protocol (Unix or \
             TCP socket), or drive it in-process ($(b,--inproc)) for CI.")
    Term.(
      const run $ app_arg $ variant_arg $ workload_arg $ records_arg
      $ ops_arg $ workers_arg $ inproc_flag $ smoke_flag $ unix_arg
      $ port_arg $ expect_conns_arg $ seed_arg $ jobs_arg $ exec_arg)

let loadgen_cmd =
  let skip_load_flag =
    Arg.(
      value & flag
      & info [ "skip-load" ]
          ~doc:"Skip the load phase (the server is already populated).")
  in
  (* --exec is accepted so serve/loadgen scripts can pass one uniform flag
     set; the generator itself is a pure socket client and executes no
     PMIR — the tier in effect is the server's. *)
  let run workload records ops workers unix_path port skip_load seed jobs
      (_exec : [ `Interp | `Compiled ]) =
    let connect =
      match (unix_path, port) with
      | Some path, None ->
          Ok (fun () -> Hippo_serve.Listener.Client.connect_unix ~path)
      | None, Some port ->
          Ok (fun () -> Hippo_serve.Listener.Client.connect_tcp ~port)
      | None, None -> Error "loadgen: need --unix or --port"
      | Some _, Some _ -> Error "loadgen: --unix and --port are exclusive"
    in
    match connect with
    | Error e ->
        Fmt.epr "error: %s@." e;
        1
    | Ok connect ->
        let r =
          Hippo_parallel.Pool.run ~domains:(max 1 jobs) (fun pool ->
              Hippo_serve.Loadgen.run_sockets ~connect ~pool ~kind:workload
                ~records ~ops ~workers ~seed ~skip_load ())
        in
        Fmt.pr "load: %d reqs (%a)@." r.Hippo_serve.Loadgen.load_reqs
          Hippo_serve.Loadgen.pp_verdicts r.Hippo_serve.Loadgen.load_verdicts;
        Fmt.pr "run: %d reqs (%a)@." r.Hippo_serve.Loadgen.run_reqs
          Hippo_serve.Loadgen.pp_verdicts r.Hippo_serve.Loadgen.run_verdicts;
        Fmt.pr "%.1f kops/s (wall)@."
          (float_of_int
             (r.Hippo_serve.Loadgen.load_reqs + r.Hippo_serve.Loadgen.run_reqs)
          /. r.Hippo_serve.Loadgen.wall_s /. 1e3);
        if r.Hippo_serve.Loadgen.run_verdicts.Hippo_serve.Loadgen.errors = 0
        then 0
        else 1
  in
  Cmd.v
    (Cmd.info "loadgen" ~exits
       ~doc:"Stream YCSB traffic at a running $(b,hippocrates serve) over \
             its socket: one connection per logical worker, deterministic \
             per-worker op substreams.")
    Term.(
      const run $ workload_arg $ records_arg $ ops_arg $ workers_arg
      $ unix_arg $ port_arg $ skip_load_flag $ seed_arg $ jobs_arg
      $ exec_arg)

(* sim ---------------------------------------------------------------- *)

let sim_cmd =
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("quick", Hippo_sim.Harness.Quick);
               ("standard", Hippo_sim.Harness.Standard);
               ("chaos", Hippo_sim.Harness.Chaos);
             ])
          Hippo_sim.Harness.Standard
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Fault-rate preset: $(b,quick) (fault-free shadow \
                checking), $(b,standard) (crashes and recovery chains at \
                the pessimistic image) or $(b,chaos) (adds torn cache \
                lines, reordered write-back drain and deeper re-crash \
                chains).")
  in
  let scenarios_arg =
    Arg.(
      value & opt int 16
      & info [ "scenarios" ] ~docv:"N"
          ~doc:"Independent scenarios to play. Each derives its own seed \
                substream, so the run digest is byte-identical at any \
                $(b,--jobs).")
  in
  let sim_ops_arg =
    Arg.(
      value & opt int 120
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per scenario.")
  in
  let keyspace_arg =
    Arg.(
      value & opt int 32
      & info [ "keyspace" ] ~docv:"N"
          ~doc:"Distinct keys the workload draws from.")
  in
  let nbuckets_arg =
    Arg.(
      value & opt int 16
      & info [ "nbuckets" ] ~docv:"N"
          ~doc:"Hash-table buckets per session (small tables force \
                overflow chains).")
  in
  let out_arg =
    Arg.(
      value & opt string "sim-out"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for seed-stamped reproducers of violating \
                scenarios (created on first violation).")
  in
  let no_differential_flag =
    Arg.(
      value & flag
      & info [ "no-differential" ]
          ~doc:"Skip the lockstep repair-input baseline that \
                $(b,--variant repaired) otherwise drives through the \
                identical op and fault schedule.")
  in
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI smoke preset: 4 scenarios of 60 ops over 24 keys; \
                fully deterministic output for a given $(b,--seed) at any \
                $(b,--jobs) and either $(b,--exec) tier.")
  in
  let run app variant mode scenarios ops keyspace nbuckets out
      no_differential smoke seed jobs exec =
    let scenarios, ops, keyspace =
      if smoke then (4, 60, 24) else (scenarios, ops, keyspace)
    in
    let cfg =
      {
        Hippo_sim.Harness.kind = app;
        variant;
        mode;
        exec;
        seed;
        scenarios;
        ops;
        keyspace;
        nbuckets;
        jobs = max 1 jobs;
        differential = not no_differential;
      }
    in
    Fmt.pr "sim: %s/%s mode=%s seed=%d scenarios=%d ops=%d exec=%s@."
      (Hippo_apps.App.kind_to_string app)
      (Hippo_apps.App.variant_to_string variant)
      (Hippo_sim.Harness.mode_to_string mode)
      seed scenarios ops (Exec.tier_to_string exec);
    match Hippo_sim.Harness.run cfg with
    | Error e ->
        Fmt.epr "error: %s@." e;
        1
    | Ok r ->
        Fmt.pr "crashes: %d, recoveries: %d, reordered: %d, torn: %d@."
          r.Hippo_sim.Harness.crashes r.Hippo_sim.Harness.recoveries
          r.Hippo_sim.Harness.reordered r.Hippo_sim.Harness.torn;
        Fmt.pr "virtual time: %.3f ms@."
          (r.Hippo_sim.Harness.clock_ns /. 1e6);
        Fmt.pr "digest: %s@." r.Hippo_sim.Harness.digest;
        (match r.Hippo_sim.Harness.baseline_violating with
        | [] -> ()
        | idx ->
            Fmt.pr "baseline violations in scenarios: %a@."
              Fmt.(list ~sep:(any ",") int)
              idx);
        let violating = r.Hippo_sim.Harness.violating in
        if violating = [] then begin
          Fmt.pr "sim: OK (0 violations)@.";
          0
        end
        else begin
          Fmt.pr "violations: %d in scenarios: %a@."
            (List.length r.Hippo_sim.Harness.violations)
            Fmt.(list ~sep:(any ",") int)
            violating;
          List.iteri
            (fun i (v : Hippo_sim.Scenario.violation) ->
              if i < 5 then
                Fmt.pr "  step %d %s: %s@." v.Hippo_sim.Scenario.step
                  v.Hippo_sim.Scenario.kind v.Hippo_sim.Scenario.detail)
            r.Hippo_sim.Harness.violations;
          let paths = Hippo_sim.Harness.save_reproducers ~dir:out cfg r in
          List.iter (fun p -> Fmt.pr "reproducer: %s@." p) paths;
          Fmt.pr "replay: %s@." (Hippo_sim.Harness.replay_cmdline cfg);
          Fmt.pr "sim: FAIL@.";
          1
        end
  in
  Cmd.v
    (Cmd.info "sim" ~exits
       ~doc:"Deterministic fault-injecting scenario simulation of the PM \
             applications: seeded workloads, crashes at arbitrary crash \
             points, torn cache lines, reordered write-back drain and \
             recovery-then-re-crash chains, judged against a shadow state \
             and the apps' recovery invariants. Violations emit a \
             seed-stamped reproducer.")
    Term.(
      const run $ app_arg $ variant_arg $ mode_arg $ scenarios_arg
      $ sim_ops_arg $ keyspace_arg $ nbuckets_arg $ out_arg
      $ no_differential_flag $ smoke_flag $ seed_arg $ jobs_arg $ exec_arg)

(* corpus ------------------------------------------------------------ *)

let corpus_cmd =
  let run () =
    let cases =
      Hippo_pmdk_mini.Bugs.all @ Hippo_apps.Pclht.cases
      @ Hippo_apps.Memcached_mini.cases
    in
    List.iter
      (fun (c : Hippo_pmdk_mini.Case.t) ->
        Fmt.pr "%-12s %-14s %-55s %a@." c.Hippo_pmdk_mini.Case.id c.system
          c.title Hippo_pmdk_mini.Case.pp_shape c.expected_shape)
      cases;
    0
  in
  Cmd.v
    (Cmd.info "corpus" ~exits ~doc:"List the reproduced bug corpus.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hippocrates" ~version:"1.0.0"
      ~doc:"Automatically fix persistent-memory durability bugs"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd;
            fix_cmd;
            optimize_cmd;
            run_cmd;
            fuzz_cmd;
            serve_cmd;
            loadgen_cmd;
            sim_cmd;
            corpus_cmd;
          ]))
