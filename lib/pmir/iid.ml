(** Stable instruction identities.

    Fixes computed by Hippocrates are keyed on the identity of the buggy
    store / flush / crash-point instruction. Identities must survive program
    transformation: inserting a flush after a store must not invalidate the
    key of any other pending fix. We therefore identify instructions by a
    [(function, serial)] pair where the serial is allocated once, at
    instruction creation, and never reassigned — never by position.

    Serials are drawn from a process-global counter; uniqueness within any
    single program is all that the algorithms rely on. *)

type t = { func : string; serial : int }

(* Atomic: programs may be built or cloned from several domains at once
   (parallel corpus sweeps); serials only need process-wide uniqueness. *)
let counter = Atomic.make 0

let fresh ~func = { func; serial = Atomic.fetch_and_add counter 1 + 1 }

(** [of_serial ~func n] reconstitutes an identity recorded in a trace file.
    Does not touch the fresh-serial counter: trace identities must match the
    program's identities exactly. *)
let of_serial ~func serial = { func; serial }

(** [in_func t name] rebinds the identity to another function, keeping the
    serial. Used when cloning a function during the persistent-subprogram
    transformation: the clone's instructions get fresh serials, but the
    mapping from original to clone is tracked separately. *)
let in_func t func = { t with func }

let func t = t.func
let serial t = t.serial

let equal a b = a.serial = b.serial && String.equal a.func b.func

let compare a b =
  match Int.compare a.serial b.serial with
  | 0 -> String.compare a.func b.func
  | c -> c

let hash t = Hashtbl.hash (t.func, t.serial)

let pp ppf t = Fmt.pf ppf "%s#%d" t.func t.serial

let to_string t = Fmt.str "%a" pp t

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
