(** Imperative construction of PMIR programs from OCaml.

    The subject applications (Redis_mini, P-CLHT, memcached_mini, the PMDK
    unit-test corpus) are large enough that writing textual IR by hand would
    be error-prone; this builder plays the role clang plays for the original
    system — it is how "C source" becomes IR. Every emitted instruction is
    automatically tagged with a source location ([<file>:<line>], one line
    per emitted instruction unless overridden with [at]), which is what the
    bug-finder traces report and what Hippocrates keys its fixes on. *)

type t = {
  mutable funcs : Func.t list;
  mutable globals : (string * int) list;
}

let create () = { funcs = []; globals = [] }

let global t name size = t.globals <- t.globals @ [ (name, size) ]

let program t =
  let p = Program.of_funcs (List.rev t.funcs) in
  List.fold_left
    (fun p (name, size) -> Program.add_global p ~name ~size)
    p t.globals

(** A function under construction. *)
type fb = {
  fname : string;
  file : string;
  mutable line : int;
  mutable pending_loc : Loc.t option;
  mutable blocks_rev : (string * Instr.t list ref) list;
  mutable current : Instr.t list ref;
  mutable fresh : int;
  mutable nlabels : int;
}

let func t ?file name params ~(body : fb -> unit) =
  let file = Option.value file ~default:(name ^ ".c") in
  let entry = ref [] in
  let fb =
    {
      fname = name;
      file;
      line = 0;
      pending_loc = None;
      blocks_rev = [ ("entry", entry) ];
      current = entry;
      fresh = 0;
      nlabels = 0;
    }
  in
  body fb;
  (* Structured emitters ([if_], [while_]) append a jump to the join block
     unconditionally; when a branch body ends in [ret] that jump is dead.
     Truncate each block at its first terminator so the emitted function
     validates. *)
  let truncate instrs =
    let rec go acc = function
      | [] -> List.rev acc
      | i :: rest ->
          if Instr.is_terminator i then List.rev (i :: acc) else go (i :: acc) rest
    in
    go [] instrs
  in
  let blocks =
    List.map
      (fun (label, instrs) -> { Func.label; instrs = truncate (List.rev !(instrs)) })
      fb.blocks_rev
  in
  t.funcs <- Func.make ~name ~params ~blocks :: t.funcs;
  name

(** [at fb line] pins the source line of the next emitted instruction
    (useful to make distinct dynamic paths share a source location, or to
    reproduce a specific upstream issue's line numbers). *)
let at fb line = fb.pending_loc <- Some (Loc.make ~file:fb.file ~line)

let next_loc fb =
  match fb.pending_loc with
  | Some l ->
      fb.pending_loc <- None;
      l
  | None ->
      fb.line <- fb.line + 1;
      Loc.make ~file:fb.file ~line:fb.line

let emit fb op =
  let iid = Iid.fresh ~func:fb.fname in
  let loc = next_loc fb in
  fb.current := Instr.make ~iid ~loc op :: !(fb.current);
  iid

let fresh_reg fb =
  fb.fresh <- fb.fresh + 1;
  Printf.sprintf "t%d" fb.fresh

(* Block management ------------------------------------------------------- *)

let block fb label =
  match List.assoc_opt label fb.blocks_rev with
  | Some instrs -> fb.current <- instrs
  | None ->
      let instrs = ref [] in
      fb.blocks_rev <- fb.blocks_rev @ [ (label, instrs) ];
      fb.current <- instrs

(* Per-function numbering: a global counter here would make the emitted
   label names depend on everything built earlier in the process, which
   breaks the fuzzer's corpus-digest determinism across runs. *)
let fresh_label fb prefix =
  fb.nlabels <- fb.nlabels + 1;
  Printf.sprintf "%s_%s%d" prefix fb.fname fb.nlabels

(* Instruction emission --------------------------------------------------- *)

let store fb ?(nt = false) ?(size = 8) ~addr value =
  ignore (emit fb (Instr.Store { addr; value; size; nontemporal = nt }))

let load fb ?(size = 8) addr =
  let dst = fresh_reg fb in
  ignore (emit fb (Instr.Load { dst; addr; size }));
  Value.reg dst

let flush fb ?(kind = Instr.Clwb) addr =
  ignore (emit fb (Instr.Flush { kind; addr }))

let fence fb ?(kind = Instr.Sfence) () = ignore (emit fb (Instr.Fence { kind }))

let binop fb op lhs rhs =
  let dst = fresh_reg fb in
  ignore (emit fb (Instr.Binop { dst; op; lhs; rhs }));
  Value.reg dst

let add fb a b = binop fb Instr.Add a b
let sub fb a b = binop fb Instr.Sub a b
let mul fb a b = binop fb Instr.Mul a b
let div fb a b = binop fb Instr.Div a b
let rem fb a b = binop fb Instr.Rem a b
let band fb a b = binop fb Instr.And a b
let bor fb a b = binop fb Instr.Or a b
let bxor fb a b = binop fb Instr.Xor a b
let shl fb a b = binop fb Instr.Shl a b
let lshr fb a b = binop fb Instr.Lshr a b
let eq fb a b = binop fb Instr.Eq a b
let ne fb a b = binop fb Instr.Ne a b
let lt fb a b = binop fb Instr.Lt a b
let le fb a b = binop fb Instr.Le a b
let gt fb a b = binop fb Instr.Gt a b
let ge fb a b = binop fb Instr.Ge a b

(** [set fb "x" v] assigns register [%x]. *)
let set fb name v =
  ignore (emit fb (Instr.Mov { dst = name; src = v }));
  Value.reg name

let gep fb base offset =
  let dst = fresh_reg fb in
  ignore (emit fb (Instr.Gep { dst; base; offset }));
  Value.reg dst

let alloca fb size =
  let dst = fresh_reg fb in
  ignore (emit fb (Instr.Alloca { dst; size }));
  Value.reg dst

let call fb callee args =
  let dst = fresh_reg fb in
  ignore (emit fb (Instr.Call { dst = Some dst; callee; args }));
  Value.reg dst

let call_void fb callee args =
  ignore (emit fb (Instr.Call { dst = None; callee; args }))

let br fb target = ignore (emit fb (Instr.Br { target }))

let condbr fb cond if_true if_false =
  ignore (emit fb (Instr.Condbr { cond; if_true; if_false }))

let ret fb v = ignore (emit fb (Instr.Ret (Some v)))
let ret_void fb = ignore (emit fb (Instr.Ret None))
let crash fb = ignore (emit fb Instr.Crash)

(* Structured control flow ------------------------------------------------ *)

(** [if_ fb cond ~then_ ~else_] emits a diamond and leaves the builder
    positioned at the join block. *)
let if_ fb cond ~then_ ?else_ () =
  let lt = fresh_label fb "then" in
  let le = fresh_label fb "else" in
  let lj = fresh_label fb "join" in
  (match else_ with
  | Some _ -> condbr fb cond lt le
  | None -> condbr fb cond lt lj);
  block fb lt;
  then_ ();
  br fb lj;
  (match else_ with
  | Some e ->
      block fb le;
      e ();
      br fb lj
  | None -> ());
  block fb lj

(** [while_ fb ~cond ~body] emits a loop; [cond] is re-emitted in the loop
    header, so it must emit its own instructions and return the condition
    value. *)
let while_ fb ~cond ~body =
  let lh = fresh_label fb "head" in
  let lb = fresh_label fb "body" in
  let lx = fresh_label fb "exit" in
  br fb lh;
  block fb lh;
  let c = cond () in
  condbr fb c lb lx;
  block fb lb;
  body ();
  br fb lh;
  block fb lx

(** [for_ fb v ~from ~below ~body] — a counted loop over register [v]. *)
let for_ fb v ~from ~below ~body =
  let iv = set fb v from in
  while_ fb
    ~cond:(fun () -> lt fb iv below)
    ~body:(fun () ->
      body iv;
      ignore (set fb v (add fb iv (Value.imm 1))))
