(** The per-abstract-location persistency lattice of the static checker.

    Ordered by "how durable do we know the location to be":

    {[ Bot  ⊑  Persisted  ⊑  Flush_pending  ⊑  Dirty  ⊑  Top ]}

    [Bot] — never stored to on any path reaching this point; [Persisted] —
    every PM update of the location is covered by an [X -> F(X) -> M]
    chain; [Flush_pending] — covered by a weakly-ordered flush that no
    fence has ordered yet (missing-fence if still pending at a crash
    point); [Dirty] — some update may still sit in the CPU cache
    (missing-flush / missing-flush&fence); [Top] — unknown, e.g. after a
    recursive call the analysis refuses to model precisely. Join moves
    {e up} (toward less durable): merging a clean path with a dirty path
    must keep the bug. This is the static mirror of the dynamic
    {!Hippo_pmcheck.Pstate} machine's per-record [Dirty]/[Pending]
    states. *)

type t = Bot | Persisted | Flush_pending | Dirty | Top

val bot : t
val top : t

(** Height in the chain, [Bot] = 0 … [Top] = 4. *)
val rank : t -> int

val leq : t -> t -> bool
val join : t -> t -> t
val equal : t -> t -> bool

(** A location in this state can still hold an unpersisted update. *)
val undurable : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
