(** Interprocedural machinery of the static checker.

    Two pieces:

    - {e syntactic mod-info}: a cheap bottom-up fixpoint computing, per
      function, the PM objects it may transitively store to or flush,
      whether it may execute a fence, and its transitive PM store sites.
      This drives the tabulation (projecting the caller's state to the
      callee-relevant part makes summary reuse possible) and the havoc
      applied at recursive calls, where precise analysis is cut off;

    - the {e summary memo table}: analysing a callee is tabulated on
      (callee, symbolic arguments, projected abstract state). Abstract
      states are rendered to a canonical string, so the table is a plain
      hashtable. The cached outcome keeps the callee-relative exit state
      and bug reports; {!Adapter.extend_state} rebases them at each call
      site. *)

open Hippo_pmir
open Hippo_pmcheck
module ISet = Hippo_alias.Andersen.ISet
module SMap : Map.S with type key = string

type info = {
  touched : ISet.t;  (** PM objects possibly stored to or flushed,
                         transitively through calls *)
  may_fence : bool;
  opaque : bool;
      (** some transitive store/flush address has an {e empty} points-to
          set — Andersen lost track of it (e.g. a pointer masked with a
          [Binop], as in [pmem_flush]'s line rounding), so [touched] is
          not trustworthy as an upper bound and callers must project their
          whole state *)
  stores : (Iid.t * Loc.t * int * ISet.t) list;
      (** transitive PM store sites: identity, location, width, objects *)
}

(** Per-function mod-info, to fixpoint over the call graph. Recursive
    cycles are handled by the fixpoint itself (pure unions converge). *)
val modinfo : Transfer.ctx -> info SMap.t

val info_for : info SMap.t -> string -> info

(** What analysing a callee produced, relative to the callee: [out] has no
    register environment, and witness chains end at the callee's own
    frame. *)
type outcome = { out : Absmem.t; reports : Report.bug list }

module Memo : sig
  type t

  val create : unit -> t

  val find :
    t -> callee:string -> args:Absmem.sym list -> state:Absmem.t -> outcome option

  val add :
    t ->
    callee:string ->
    args:Absmem.sym list ->
    state:Absmem.t ->
    outcome ->
    unit

  val size : t -> int
end
