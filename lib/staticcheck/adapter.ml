(** Static records -> [Report.bug], witness-chain rebasing, and
    static-vs-dynamic comparison (see the interface). *)

open Hippo_pmir
open Hippo_pmcheck

let exit_crash : Report.crash_info =
  {
    crash_iid = None;
    crash_loc = Loc.make ~file:"<exit>" ~line:0;
    crash_stack = [];
  }

let bug_of_record (r : Absmem.srec) ~crash : Report.bug =
  let kind, ordering_flush =
    match r.pstate with
    | Lattice.Flush_pending -> (Report.Missing_fence, r.flushed_by)
    | Lattice.Dirty when r.fence_after -> (Report.Missing_flush, None)
    | _ -> (Report.Missing_flush_fence, None)
  in
  {
    kind;
    store =
      {
        iid = r.store_iid;
        loc = r.store_loc;
        stack = r.chain;
        addr = 0;
        size = r.size;
      };
    crash;
    ordering_flush;
  }

let bugs_at (st : Absmem.t) ~crash =
  List.filter_map
    (fun (_, (r : Absmem.srec)) ->
      if Lattice.undurable r.pstate then Some (bug_of_record r ~crash)
      else None)
    (Absmem.records st)

let extend_chain ~callee ~caller ~callsite ~callsite_loc (chain : Trace.stack)
    =
  match List.rev chain with
  | (outer : Trace.frame) :: rest_rev
    when String.equal outer.Trace.func callee && outer.Trace.callsite = None
    ->
      List.rev rest_rev
      @ [
          {
            outer with
            Trace.callsite = Some callsite;
            callsite_loc = Some callsite_loc;
          };
          { Trace.func = caller; callsite = None; callsite_loc = None };
        ]
  | _ -> chain

let extend_state ~callee ~caller ~callsite ~callsite_loc (st : Absmem.t) =
  let mem =
    Absmem.KMap.fold
      (fun (k : Absmem.Key.t) (r : Absmem.srec) acc ->
        let chain =
          extend_chain ~callee ~caller ~callsite ~callsite_loc r.chain
        in
        Absmem.KMap.add
          (Absmem.key_of ~oid:k.oid ~iid:r.store_iid ~chain)
          { r with Absmem.chain } acc)
      st.Absmem.mem Absmem.KMap.empty
  in
  { st with Absmem.mem }

let extend_report ~callee ~caller ~callsite ~callsite_loc (b : Report.bug) =
  let ext = extend_chain ~callee ~caller ~callsite ~callsite_loc in
  {
    b with
    store = { b.store with stack = ext b.store.stack };
    crash = { b.crash with crash_stack = ext b.crash.crash_stack };
  }

let site_key (b : Report.bug) =
  Fmt.str "%a|%s" Iid.pp b.store.iid
    (String.concat ","
       (List.map
          (fun (f, s) ->
            f ^ match s with Some n -> "@" ^ string_of_int n | None -> "")
          (Absmem.chain_sites b.store.stack)))

let kind_covers ~static_ ~dynamic =
  static_ = dynamic || static_ = Report.Missing_flush_fence

type comparison = {
  matched : (Report.bug * Report.bug) list;
  missed : Report.bug list;
  extra : Report.bug list;
}

let dedup_by_site bugs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun b ->
      let k = site_key b in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    bugs

let compare_reports ~static_ ~dynamic =
  let dyn_sites = dedup_by_site dynamic in
  let sta_sites = dedup_by_site static_ in
  let matched, missed =
    List.partition_map
      (fun d ->
        (* a site can carry several static records of different kinds
           (e.g. missing-flush at exit and missing-flush&fence at a
           crash); any one of them covers the dynamic finding *)
        match
          List.find_opt
            (fun s ->
              String.equal (site_key s) (site_key d)
              && kind_covers ~static_:s.Report.kind ~dynamic:d.Report.kind)
            static_
        with
        | Some s -> Left (d, s)
        | None -> Right d)
      dyn_sites
  in
  let covered = List.map (fun (_, s) -> site_key s) matched in
  let extra =
    List.filter (fun s -> not (List.mem (site_key s) covered)) sta_sites
  in
  { matched; missed; extra }
