(** The static durability checker: a forward abstract interpretation over
    PMIR that finds missing-flush / missing-fence / missing-flush&fence
    bugs without executing a workload.

    Per analysed function, a worklist fixpoint propagates {!Absmem.t}
    states through the basic blocks (joining at merge points); once
    converged, a single reporting pass emits a {!Hippo_pmcheck.Report.bug}
    for every live record at each [crash] instruction and at function
    exit. Calls to defined functions are analysed by memoized tabulation
    ({!Summary.Memo}); recursive calls fall back to a conservative havoc
    of the callee's syntactic mod-set. The resulting reports use witness
    chains in place of dynamic call stacks and feed the repair pipeline
    unchanged. *)

open Hippo_pmir
open Hippo_pmcheck

type stats = {
  entries : string list;  (** entry points analysed *)
  summaries_computed : int;
  summary_hits : int;
}

type result = { bugs : Report.bug list; stats : stats }

(** [main] when defined; otherwise call-graph roots (functions never
    called); otherwise every function. *)
val default_entries : Program.t -> string list

(** Analyse each entry against a fresh abstract PM state. Reports are
    {!Hippo_pmcheck.Report.dedup}ed across entries.

    [?aa] supplies an already-solved points-to analysis for the program
    (the {!Hippo_alias.Andersen.analyze} result is a pure function of the
    program, so callers holding a memoized one — the engine's analysis
    cache — avoid re-running it).

    [?observe] is invoked during the {e reporting} pass only (never while
    the fixpoint is still iterating) with the converged abstract in-state
    of every non-control instruction, once per analysed calling context:
    each distinct (callee, arguments, projected state) summary is computed
    exactly once, and its reporting pass fires the hook over that
    context's converged block states. Contexts reached while a caller's
    fixpoint had not yet converged are also observed (with states below
    the converged ones) — consumers accumulating must-conditions over all
    observations therefore stay conservative. The optimizer in
    [lib/engine] uses this to prove flush/fence redundancy against the
    same lattice the bug reports come from. *)
val check :
  ?aa:Hippo_alias.Andersen.t ->
  ?observe:(func:string -> Absmem.t -> Instr.t -> unit) ->
  ?entries:string list ->
  Program.t ->
  result
