(** The static durability checker: a forward abstract interpretation over
    PMIR that finds missing-flush / missing-fence / missing-flush&fence
    bugs without executing a workload.

    Per analysed function, a worklist fixpoint propagates {!Absmem.t}
    states through the basic blocks (joining at merge points); once
    converged, a single reporting pass emits a {!Hippo_pmcheck.Report.bug}
    for every live record at each [crash] instruction and at function
    exit. Calls to defined functions are analysed by memoized tabulation
    ({!Summary.Memo}); recursive calls fall back to a conservative havoc
    of the callee's syntactic mod-set. The resulting reports use witness
    chains in place of dynamic call stacks and feed the repair pipeline
    unchanged. *)

open Hippo_pmir
open Hippo_pmcheck

type stats = {
  entries : string list;  (** entry points analysed *)
  summaries_computed : int;
  summary_hits : int;
}

type result = { bugs : Report.bug list; stats : stats }

(** [main] when defined; otherwise call-graph roots (functions never
    called); otherwise every function. *)
val default_entries : Program.t -> string list

(** Analyse each entry against a fresh abstract PM state. Reports are
    {!Hippo_pmcheck.Report.dedup}ed across entries. *)
val check : ?entries:string list -> Program.t -> result
