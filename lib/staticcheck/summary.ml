(** Interprocedural mod-info and the summary memo table (see the
    interface). *)

open Hippo_pmir
open Hippo_pmcheck
module ISet = Hippo_alias.Andersen.ISet
module SMap = Map.Make (String)

type info = {
  touched : ISet.t;
  may_fence : bool;
  opaque : bool;
  stores : (Iid.t * Loc.t * int * ISet.t) list;
}

let empty_info =
  { touched = ISet.empty; may_fence = false; opaque = false; stores = [] }

let merge_stores a b =
  let m =
    List.fold_left
      (fun m ((iid, _, _, _) as s) -> Iid.Map.add iid s m)
      Iid.Map.empty (a @ b)
  in
  List.map snd (Iid.Map.bindings m)

let union_info a b =
  {
    touched = ISet.union a.touched b.touched;
    may_fence = a.may_fence || b.may_fence;
    opaque = a.opaque || b.opaque;
    stores = merge_stores a.stores b.stores;
  }

let info_equal a b =
  ISet.equal a.touched b.touched
  && a.may_fence = b.may_fence
  && a.opaque = b.opaque
  && List.length a.stores = List.length b.stores

let modinfo (ctx : Transfer.ctx) =
  let direct =
    List.map
      (fun f ->
        let name = Func.name f in
        let callees = ref [] in
        let info =
          Func.fold_instrs
            (fun acc (i : Instr.t) ->
              match Instr.op i with
              | Instr.Store { addr; size; _ } ->
                  let raw = Transfer.value_oids_raw ctx ~func:name addr in
                  let acc =
                    if ISet.is_empty raw then { acc with opaque = true }
                    else acc
                  in
                  let oids = Transfer.pm_only ctx raw in
                  if ISet.is_empty oids then acc
                  else
                    {
                      acc with
                      touched = ISet.union acc.touched oids;
                      stores =
                        (Instr.iid i, Instr.loc i, size, oids) :: acc.stores;
                    }
              | Instr.Flush { addr; _ } ->
                  let raw = Transfer.value_oids_raw ctx ~func:name addr in
                  {
                    acc with
                    opaque = acc.opaque || ISet.is_empty raw;
                    touched = ISet.union acc.touched (Transfer.pm_only ctx raw);
                  }
              | Instr.Fence _ -> { acc with may_fence = true }
              | Instr.Call { callee; _ } ->
                  if Program.mem ctx.prog callee then callees := callee :: !callees;
                  acc
              | _ -> acc)
            empty_info f
        in
        (name, info, !callees))
      (Program.funcs ctx.prog)
  in
  let state =
    ref
      (List.fold_left
         (fun m (name, info, _) -> SMap.add name info m)
         SMap.empty direct)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, _, callees) ->
        let cur = SMap.find name !state in
        let next =
          List.fold_left
            (fun acc c ->
              match SMap.find_opt c !state with
              | Some ci -> union_info acc ci
              | None -> acc)
            cur callees
        in
        if not (info_equal cur next) then begin
          state := SMap.add name next !state;
          changed := true
        end)
      direct
  done;
  !state

let info_for infos name =
  match SMap.find_opt name infos with Some i -> i | None -> empty_info

type outcome = { out : Absmem.t; reports : Report.bug list }

(* Memo keys: a canonical rendering of (callee, argument symbols,
   projected state). Locations and chain [Loc] metadata are functionally
   determined by the identities rendered here, so leaving them out cannot
   conflate distinct inputs. *)
module Memo = struct
  type t = (string, outcome) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let render_sites sites =
    String.concat ","
      (List.map
         (fun (f, s) ->
           f ^ (match s with Some n -> "@" ^ string_of_int n | None -> ""))
         sites)

  let render_key ~callee ~args ~(state : Absmem.t) =
    let b = Buffer.create 128 in
    Buffer.add_string b callee;
    List.iter
      (fun a -> Buffer.add_string b (Fmt.str "|%a" Absmem.pp_sym a))
      args;
    Absmem.KMap.iter
      (fun (k : Absmem.Key.t) l ->
        Buffer.add_string b
          (Fmt.str ";L%d:%s=%s" k.oid (render_sites k.sites)
             (Lattice.to_string l)))
      state.Absmem.locs;
    Absmem.KMap.iter
      (fun (k : Absmem.Key.t) (r : Absmem.srec) ->
        Buffer.add_string b
          (Fmt.str ";R%d:%a:%s=%s%s%s%s" k.oid Iid.pp k.iid
             (render_sites k.sites)
             (Lattice.to_string r.pstate)
             (if r.fence_after then "+f" else "")
             (match r.line with Some l -> Fmt.str "~%d" l | None -> "")
             (match r.flushed_by with
             | Some f -> Fmt.str "!%a" Iid.pp f
             | None -> "")))
      state.Absmem.mem;
    Buffer.contents b

  let find t ~callee ~args ~state =
    Hashtbl.find_opt t (render_key ~callee ~args ~state)

  let add t ~callee ~args ~state outcome =
    Hashtbl.replace t (render_key ~callee ~args ~state) outcome

  let size = Hashtbl.length
end
