(** The static durability checker (see the interface for the overall
    shape: per-function worklist fixpoint, then a single reporting pass;
    memoized tabulation across calls). *)

open Hippo_pmir
open Hippo_pmcheck
module Andersen = Hippo_alias.Andersen
module ISet = Andersen.ISet
module SMap = Summary.SMap
module SSet = Set.Make (String)

type stats = {
  entries : string list;
  summaries_computed : int;
  summary_hits : int;
}

type result = { bugs : Report.bug list; stats : stats }

type engine = {
  ctx : Transfer.ctx;
  info : Summary.info SMap.t;
  memo : Summary.Memo.t;
  observe : (func:string -> Absmem.t -> Instr.t -> unit) option;
      (** reporting-pass hook: converged in-state of each instruction,
          per analysed calling context (see the interface) *)
  mutable computed : int;
  mutable hits : int;
}

(* Split the caller's state into the part the callee can observe or
   modify and the part that passes through untouched. A callee that may
   fence observes everything (a fence drains every pending record); so
   does one whose mod-set is opaque (see {!Summary.info}). *)
let project (info : Summary.info) (st : Absmem.t) =
  if info.may_fence || info.opaque then (Absmem.forget_env st, Absmem.empty)
  else
    let relevant (k : Absmem.Key.t) _ = ISet.mem k.Absmem.Key.oid info.touched in
    ( {
        Absmem.empty with
        Absmem.locs = Absmem.KMap.filter relevant st.Absmem.locs;
        mem = Absmem.KMap.filter relevant st.Absmem.mem;
      },
      {
        st with
        Absmem.locs =
          Absmem.KMap.filter (fun k v -> not (relevant k v)) st.Absmem.locs;
        mem = Absmem.KMap.filter (fun k v -> not (relevant k v)) st.Absmem.mem;
      } )

(* Recursive call: give up on precision for everything the callee may
   transitively touch — [Top] locations, one [Top] record per transitive
   store site (witness chains are approximate here: only stores directly
   in the callee get the call site attached). *)
let havoc eng ~caller ~callsite ~callsite_loc callee st =
  let info = Summary.info_for eng.info callee in
  let st =
    ISet.fold (fun oid st -> Absmem.set_loc st oid Lattice.Top) info.touched st
  in
  List.fold_left
    (fun st (iid, loc, size, oids) ->
      let chain =
        Adapter.extend_chain ~callee ~caller ~callsite ~callsite_loc
          [ { Trace.func = Iid.func iid; callsite = None; callsite_loc = None } ]
      in
      ISet.fold
        (fun oid st ->
          let key = Absmem.key_of ~oid ~iid ~chain in
          let r =
            {
              Absmem.store_iid = iid;
              store_loc = loc;
              size;
              chain;
              line = None;
              pstate = Lattice.Top;
              fence_after = false;
              flushed_by = None;
            }
          in
          { st with Absmem.mem = Absmem.KMap.add key r st.Absmem.mem })
        oids st)
    st info.stores

let bind_params st params args =
  let rec go st params args =
    match (params, args) with
    | p :: ps, a :: as_ -> go (Absmem.bind st p a) ps as_
    | p :: ps, [] -> go (Absmem.bind st p Absmem.Unknown) ps []
    | [], _ -> st
  in
  go st params args

(* The mini-libpmem functions the checker models as single transfers
   instead of analysing their bodies: their cache-line loops have a
   zero-trip path that a path-insensitive fixpoint joins back in, leaving
   records dirty on a path that cannot execute (len > 0) — every correct
   [pmem_persist] caller would be flagged. The models mirror the runtime
   bodies: flush the range, fence, or both.

   [memcpy]/[memset] are deliberately NOT modelled: they are
   durability-oblivious (no internal flush), their loop summaries are
   honest, and their unpersisted stores are the paper's central bug
   pattern. *)
let libpmem_models =
  [ "pmem_flush"; "pmem_drain"; "pmem_persist"; "pmem_memcpy_persist" ]

let model_libpmem eng ~func st ~iid callee args =
  let ev = Transfer.eval eng.ctx ~func st in
  let arg n = match List.nth_opt args n with Some v -> ev v | None -> Absmem.Unknown in
  match callee with
  | "pmem_flush" ->
      Some (Transfer.flush_range eng.ctx st ~iid ~kind:Instr.Clwb (arg 0) (arg 1), Absmem.Unknown)
  | "pmem_drain" -> Some (Transfer.fence st, Absmem.Unknown)
  | "pmem_persist" ->
      let st = Transfer.flush_range eng.ctx st ~iid ~kind:Instr.Clwb (arg 0) (arg 1) in
      Some (Transfer.fence st, Absmem.Unknown)
  | "pmem_memcpy_persist" ->
      (* copies then persists the destination range: its own stores are
         durable by return, and any earlier dirty record there is flushed
         by the same loop; the trailing drain is a full fence *)
      let st = Transfer.flush_range eng.ctx st ~iid ~kind:Instr.Clwb (arg 0) (arg 2) in
      Some (Transfer.fence st, arg 0)
  | _ -> None

let rec handle_call eng ~stack ~func ?collect st (i : Instr.t) dst callee args
    =
  let iid = Instr.iid i and loc = Instr.loc i in
  let bind_dst st sym =
    match dst with None -> st | Some d -> Absmem.bind st d sym
  in
  let singleton oid = Absmem.Ptr { oids = ISet.singleton oid; off = Some 0 } in
  match model_libpmem eng ~func st ~iid callee args with
  | Some (st, ret) -> Some (bind_dst st ret)
  | None ->
  if Program.is_intrinsic callee then
    match callee with
    | "pm_alloc" | "malloc" ->
        Some
          (bind_dst st
             (match Iid.Map.find_opt iid eng.ctx.Transfer.site_oid with
             | Some oid -> singleton oid
             | None -> Absmem.Unknown))
    | "pm_base" ->
        Some
          (bind_dst st
             (match eng.ctx.Transfer.region_oid with
             | Some oid -> singleton oid
             | None -> Absmem.Unknown))
    | "abort" -> None (* the path ends here *)
    | _ (* pm_size, free, emit *) -> Some (bind_dst st Absmem.Unknown)
  else
    match Program.find eng.ctx.Transfer.prog callee with
    | None -> Some (bind_dst st Absmem.Unknown)
    | Some cf ->
        if List.mem callee stack then
          Some
            (bind_dst
               (havoc eng ~caller:func ~callsite:iid ~callsite_loc:loc callee
                  st)
               Absmem.Unknown)
        else
          let arg_syms = List.map (Transfer.eval eng.ctx ~func st) args in
          let info = Summary.info_for eng.info callee in
          let proj, rest = project info st in
          let outcome =
            match
              Summary.Memo.find eng.memo ~callee ~args:arg_syms ~state:proj
            with
            | Some o ->
                eng.hits <- eng.hits + 1;
                o
            | None ->
                let init = bind_params proj (Func.params cf) arg_syms in
                let exit_st, reports =
                  analyze_func eng ~stack:(callee :: stack) ~func:callee ~init
                in
                let o =
                  { Summary.out = Absmem.forget_env exit_st; reports }
                in
                eng.computed <- eng.computed + 1;
                Summary.Memo.add eng.memo ~callee ~args:arg_syms ~state:proj o;
                o
          in
          let ext =
            Adapter.extend_state ~callee ~caller:func ~callsite:iid
              ~callsite_loc:loc outcome.Summary.out
          in
          (match collect with
          | Some r ->
              r :=
                List.map
                  (Adapter.extend_report ~callee ~caller:func ~callsite:iid
                     ~callsite_loc:loc)
                  outcome.Summary.reports
                @ !r
          | None -> ());
          (* [ext] and [rest] have disjoint key domains by construction *)
          let merged =
            {
              Absmem.env = st.Absmem.env;
              locs =
                Absmem.KMap.union
                  (fun _ a b -> Some (Lattice.join a b))
                  ext.Absmem.locs rest.Absmem.locs;
              mem =
                Absmem.KMap.union (fun _ a _ -> Some a) ext.Absmem.mem
                  rest.Absmem.mem;
            }
          in
          let ret_sym =
            let oids =
              Andersen.points_to eng.ctx.Transfer.aa (Andersen.Retval callee)
            in
            if ISet.is_empty oids then Absmem.Unknown
            else Absmem.Ptr { oids; off = None }
          in
          Some (bind_dst merged ret_sym)

(* Analyse one function body from [init]: worklist fixpoint over block
   in-states, then one reporting pass over the converged states (so a
   block revisited by the fixpoint cannot duplicate or misclassify
   reports). Returns the exit state (join over [ret]s, environment
   dropped) and the collected reports, callee-relative. *)
and analyze_func eng ~stack ~func ~init =
  let f = Program.find_exn eng.ctx.Transfer.prog func in
  let chain = [ { Trace.func; callsite = None; callsite_loc = None } ] in
  let in_states : (string, Absmem.t) Hashtbl.t = Hashtbl.create 16 in
  let entry = (Func.entry f).Func.label in
  Hashtbl.replace in_states entry init;
  let work = Queue.create () in
  Queue.add entry work;
  let propagate target st =
    match Hashtbl.find_opt in_states target with
    | None ->
        Hashtbl.replace in_states target st;
        Queue.add target work
    | Some old ->
        let j = Absmem.join old st in
        if not (Absmem.equal j old) then begin
          Hashtbl.replace in_states target j;
          Queue.add target work
        end
  in
  (* Run one block; with [prop] branch targets are propagated (fixpoint
     mode), with [collect] crash/callee reports are accumulated
     (reporting mode). Returns the block's contribution to the exit
     state. *)
  let exec_block ?collect ~prop label st0 =
    let block = Option.get (Func.find_block f label) in
    let exit_acc = ref None in
    let join_exit s =
      let s = Absmem.forget_env s in
      exit_acc :=
        Some
          (match !exit_acc with None -> s | Some e -> Absmem.join e s)
    in
    let final =
      List.fold_left
        (fun st (i : Instr.t) ->
          match st with
          | None -> None
          | Some s -> (
              (* the hook sees converged states only: reporting mode is the
                 one place block in-states are final for this context *)
              (match (collect, eng.observe) with
              | Some _, Some f -> f ~func s i
              | _ -> ());
              match Instr.op i with
              | Instr.Call { dst; callee; args } ->
                  handle_call eng ~stack ~func ?collect s i dst callee args
              | Instr.Crash ->
                  (match collect with
                  | Some r ->
                      let crash =
                        {
                          Report.crash_iid = Some (Instr.iid i);
                          crash_loc = Instr.loc i;
                          crash_stack = chain;
                        }
                      in
                      r := Adapter.bugs_at s ~crash @ !r
                  | None -> ());
                  Some s
              | Instr.Ret _ ->
                  join_exit s;
                  None
              | Instr.Br { target } ->
                  if prop then propagate target s;
                  None
              | Instr.Condbr { if_true; if_false; _ } ->
                  if prop then begin
                    propagate if_true s;
                    propagate if_false s
                  end;
                  None
              | _ -> Some (Transfer.step eng.ctx ~func ~chain s i)))
        (Some st0) block.Func.instrs
    in
    (* a block without a terminator ends the function *)
    (match final with Some s -> join_exit s | None -> ());
    !exit_acc
  in
  while not (Queue.is_empty work) do
    let label = Queue.pop work in
    match Hashtbl.find_opt in_states label with
    | None -> ()
    | Some st0 -> ignore (exec_block ~prop:true label st0)
  done;
  let reports = ref [] in
  let exit_st =
    Hashtbl.fold
      (fun label st acc ->
        match exec_block ~collect:reports ~prop:false label st with
        | Some e -> Some (match acc with None -> e | Some a -> Absmem.join a e)
        | None -> acc)
      in_states None
  in
  let exit_st =
    match exit_st with Some e -> e | None -> Absmem.forget_env init
  in
  (exit_st, !reports)

(* Functions never treated as program entry points: the modelled libpmem
   surface, and the runtime's durability-oblivious helpers. Analysing a
   library function as a root would give its pointer formals the
   context-insensitive points-to fallback and flag its stores as
   unpersisted-at-exit on behalf of callers it does not have. *)
let library_names =
  SSet.of_list
    (libpmem_models @ [ "memcpy"; "memset"; "memcmp_eq"; "hash_fnv" ])

let default_entries prog =
  if Program.mem prog "main" then [ "main" ]
  else
    let called =
      List.fold_left
        (fun acc f ->
          List.fold_left
            (fun acc (_, callee, _) -> SSet.add callee acc)
            acc (Func.call_sites f))
        SSet.empty (Program.funcs prog)
    in
    let candidates =
      List.filter
        (fun n -> not (SSet.mem n library_names))
        (Program.func_names prog)
    in
    match List.filter (fun n -> not (SSet.mem n called)) candidates with
    | [] -> if candidates = [] then Program.func_names prog else candidates
    | roots -> roots

let check ?aa ?observe ?entries prog =
  let aa = match aa with Some aa -> aa | None -> Andersen.analyze prog in
  let ctx = Transfer.make_ctx prog aa in
  let info = Summary.modinfo ctx in
  let eng =
    { ctx; info; memo = Summary.Memo.create (); observe; computed = 0; hits = 0 }
  in
  let entries =
    match entries with Some e -> e | None -> default_entries prog
  in
  let bugs =
    List.concat_map
      (fun e ->
        match Program.find prog e with
        | None -> []
        | Some _ ->
            let exit_st, reports =
              analyze_func eng ~stack:[ e ] ~func:e ~init:Absmem.empty
            in
            reports @ Adapter.bugs_at exit_st ~crash:Adapter.exit_crash)
      entries
  in
  {
    bugs = Report.dedup bugs;
    stats =
      {
        entries;
        summaries_computed = eng.computed;
        summary_hits = eng.hits;
      };
  }
