(** Abstract machine state of the static durability checker.

    Two layers share one abstract-location space (the Andersen abstract
    objects of {!Hippo_alias.Andersen}):

    - a coarse per-location {!Lattice} value ([locs]) — the summary the
      fixpoint converges on;
    - fine-grained {e store records} ([mem]) — one per (location, store
      instruction, static call chain) still undurable, carrying everything
      a {!Hippo_pmcheck.Report.bug} needs: the store's identity, source
      location, width, the witness path, which flush covered it, and
      whether a fence is guaranteed after it.

    On top sits a flow-sensitive symbolic register environment ([env])
    that recovers byte offsets (and hence cache lines) lost by the
    field-insensitive points-to analysis: [pm_alloc]/[alloca]/[malloc]
    results are offset 0 of their site's object, and [gep]/[add]/[and]
    propagate constant offsets. A flush whose line provably differs from a
    store's line does not discharge it. *)

open Hippo_pmir
open Hippo_pmcheck
module ISet = Hippo_alias.Andersen.ISet

(** Symbolic register values. [Ptr] carries a refined points-to set
    (usually a singleton, bound at call entry from the actual argument)
    and a byte offset from the object base when statically known. *)
type sym =
  | Ptr of { oids : ISet.t; off : int option }
  | Addr of int  (** concrete (immediate) address *)
  | Int of int  (** known integer constant *)
  | Unknown

val sym_equal : sym -> sym -> bool
val sym_join : sym -> sym -> sym
val pp_sym : Format.formatter -> sym -> unit

type srec = {
  store_iid : Iid.t;
  store_loc : Loc.t;
  size : int;
  chain : Trace.stack;  (** witness path, innermost first; the outermost
                            frame's [callsite] is [None] until the
                            enclosing summary is applied at a call site *)
  line : int option;  (** cache-line index within the object, if known *)
  pstate : Lattice.t;  (** [Dirty], [Flush_pending] or [Top] *)
  fence_after : bool;  (** a fence executes on {e every} path since the
                           store — the static mirror of pmemcheck's
                           "later fence" that downgrades missing-flush&fence
                           to missing-flush *)
  flushed_by : Iid.t option;
}

(** Records are keyed by (object, store instruction, call-chain sites):
    the same identity {!Hippo_pmcheck.Report.same_static_bug} uses. *)
module Key : sig
  type t = { oid : int; iid : Iid.t; sites : (string * int option) list }

  val compare : t -> t -> int
end

module KMap : Map.S with type key = Key.t
module Env : Map.S with type key = string

(** A chain's identity: its (function, callsite serial) pairs — the same
    projection {!Hippo_pmcheck.Report.same_static_bug} compares. *)
val chain_sites : Trace.stack -> (string * int option) list

val key_of : oid:int -> iid:Iid.t -> chain:Trace.stack -> Key.t

type t = {
  env : sym Env.t;
  locs : Lattice.t KMap.t;
      (** coarse per-location state; keyed with the record key's [oid]
          only (iid/sites empty) *)
  mem : srec KMap.t;
}

val empty : t

(** Drop the register environment (crossing a function boundary). *)
val forget_env : t -> t

val lookup : t -> string -> sym
val bind : t -> string -> sym -> t

(** Coarse lattice state of one abstract location ([Bot] if untouched). *)
val loc_state : t -> int -> Lattice.t

val set_loc : t -> int -> Lattice.t -> t

val join : t -> t -> t
val equal : t -> t -> bool

(** Live (undurable) records, innermost key order. *)
val records : t -> (Key.t * srec) list

val pp : Format.formatter -> t -> unit
