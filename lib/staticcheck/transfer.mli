(** Abstract transfer functions of the static durability checker.

    One function per PMIR operation class, over {!Absmem.t}. The
    persistency transitions mirror the dynamic {!Hippo_pmcheck.Pstate}
    machine exactly:

    - a store to a PM location creates a [Dirty] record ([Flush_pending]
      when non-temporal);
    - [clwb]/[clflushopt] move covered [Dirty] records to [Flush_pending]
      (remembering the flush, the future [ordering_flush] of a
      missing-fence report); [clflush] makes them durable outright;
    - a fence makes [Flush_pending] records durable and marks surviving
      [Dirty] records [fence_after] — the static counterpart of
      pmemcheck's "a fence happened later", which downgrades
      missing-flush&fence to missing-flush.

    A flush discharges a record when their objects intersect {e unless}
    both cache lines are statically known and differ. Lines come from the
    symbolic environment: PM allocations are cache-line aligned (see
    {!Hippo_pmcheck.Mem}), so a known byte offset from an object base
    determines the line. *)

open Hippo_pmir
open Hippo_pmcheck
module ISet = Hippo_alias.Andersen.ISet

type ctx = {
  aa : Hippo_alias.Andersen.t;
  prog : Program.t;
  site_oid : int Iid.Map.t;  (** allocation-site instruction -> object *)
  global_oid : (string * int) list;
  region_oid : int option;  (** the [`Pm_region] object, if any *)
}

(** Build the analysis context from a solved points-to analysis, indexing
    {!Hippo_alias.Andersen.objects} by allocation site. *)
val make_ctx : Program.t -> Hippo_alias.Andersen.t -> ctx

(** Symbolic value of an operand: environment lookup for registers
    (falling back to the register's Andersen points-to set at offset
    [None]), region-classified immediates, globals at offset 0. *)
val eval : ctx -> func:string -> Absmem.t -> Value.t -> Absmem.sym

(** [(objects, byte offset)] a symbolic value addresses, or [None] when it
    is not a pointer the analysis can resolve. *)
val sym_targets : ctx -> Absmem.sym -> (ISet.t * int option) option

(** An operand's possible target objects per the points-to analysis alone
    (no symbolic environment, no PM filter). Empty for non-pointers — but
    also for pointers Andersen cannot track, e.g. through bit-masking
    [Binop]s; {!Summary} uses emptiness to mark a mod-set opaque. *)
val value_oids_raw : ctx -> func:string -> Value.t -> ISet.t

(** Restrict an object set to persistent objects. *)
val pm_only : ctx -> ISet.t -> ISet.t

(** PM objects among an operand's possible targets ({!value_oids_raw}
    restricted to persistent objects); the syntactic mod-sets of
    {!Summary} are built from this. *)
val value_pm_oids : ctx -> func:string -> Value.t -> ISet.t

(** Transfer a non-control instruction ([Call], [Br], [Condbr], [Ret] and
    [Crash] are the {!Checker}'s business and are left untouched).
    [chain] is the witness path new store records carry. *)
val step : ctx -> func:string -> chain:Trace.stack -> Absmem.t -> Instr.t -> Absmem.t

(** The individual persistency transitions, exposed for unit tests. *)

val store :
  ctx ->
  Absmem.t ->
  iid:Iid.t ->
  loc:Loc.t ->
  size:int ->
  nontemporal:bool ->
  chain:Trace.stack ->
  Absmem.sym ->
  Absmem.t

val flush : ctx -> Absmem.t -> iid:Iid.t -> kind:Instr.flush_kind -> Absmem.sym -> Absmem.t

(** The [pmem_flush] model: discharge records over a whole [(addr, len)]
    range at once (the runtime's line loop has a zero-trip path that a
    path-insensitive fixpoint cannot exclude, so {!Checker} models ranged
    flushes instead of analysing the loop). *)
val flush_range :
  ctx ->
  Absmem.t ->
  iid:Iid.t ->
  kind:Instr.flush_kind ->
  Absmem.sym ->
  Absmem.sym ->
  Absmem.t

val fence : Absmem.t -> Absmem.t
