(** Abstract transfer functions (see the interface for the semantics). *)

open Hippo_pmir
open Hippo_pmcheck
module Andersen = Hippo_alias.Andersen
module ISet = Andersen.ISet
open Absmem

type ctx = {
  aa : Andersen.t;
  prog : Program.t;
  site_oid : int Iid.Map.t;
  global_oid : (string * int) list;
  region_oid : int option;
}

let make_ctx prog aa =
  let site_oid, global_oid, region_oid =
    List.fold_left
      (fun (sites, globals, region) (o : Andersen.obj) ->
        match o.site with
        | `Alloca iid | `Malloc iid | `Pm_alloc iid ->
            (Iid.Map.add iid o.oid sites, globals, region)
        | `Global g -> (sites, (g, o.oid) :: globals, region)
        | `Pm_region -> (sites, globals, Some o.oid))
      (Iid.Map.empty, [], None)
      (Andersen.objects aa)
  in
  { aa; prog; site_oid; global_oid; region_oid }

let eval ctx ~func st (v : Value.t) =
  match v with
  | Value.Reg r -> (
      match Absmem.lookup st r with
      | Unknown ->
          let oids = Andersen.points_to_var ctx.aa ~func ~reg:r in
          if ISet.is_empty oids then Unknown else Ptr { oids; off = None }
      | s -> s)
  | Value.Imm n -> if Layout.is_pm n then Addr n else Int n
  | Value.Global g -> (
      match List.assoc_opt g ctx.global_oid with
      | Some oid -> Ptr { oids = ISet.singleton oid; off = Some 0 }
      | None -> Unknown)
  | Value.Null -> Int 0

let sym_targets ctx = function
  | Ptr { oids; off } -> if ISet.is_empty oids then None else Some (oids, off)
  | Addr a -> (
      (* a literal PM address: the region object, offset from its base
         (the region base is line-aligned by construction) *)
      match ctx.region_oid with
      | Some oid -> Some (ISet.singleton oid, Some (a - Layout.pm_base))
      | None -> None)
  | Int _ | Unknown -> None

let pm_only ctx oids = ISet.filter (fun o -> Andersen.obj_is_pm (Andersen.obj ctx.aa o)) oids

let value_oids_raw ctx ~func (v : Value.t) =
  match v with
  | Value.Reg r -> Andersen.points_to_var ctx.aa ~func ~reg:r
  | Value.Imm n ->
      if Layout.is_pm n then
        match ctx.region_oid with
        | Some oid -> ISet.singleton oid
        | None -> ISet.empty
      else ISet.empty
  | Value.Global g -> (
      match List.assoc_opt g ctx.global_oid with
      | Some oid -> ISet.singleton oid
      | None -> ISet.empty)
  | Value.Null -> ISet.empty

let value_pm_oids ctx ~func (v : Value.t) =
  pm_only ctx (value_oids_raw ctx ~func v)

(* Recompute the coarse layer for [oid] from its live records: with none
   left, everything written was persisted. *)
let refresh_loc st oid =
  let state =
    KMap.fold
      (fun (k : Key.t) (r : srec) acc ->
        if k.oid = oid then Lattice.join acc r.pstate else acc)
      st.mem Lattice.Persisted
  in
  Absmem.set_loc st oid state

let store ctx st ~iid ~loc ~size ~nontemporal ~chain addr_sym =
  match sym_targets ctx addr_sym with
  | None -> st
  | Some (oids, off) ->
      let oids = pm_only ctx oids in
      if ISet.is_empty oids then st
      else
        let line =
          match off with
          | Some o
            when o >= 0 && (o mod Layout.cache_line) + size <= Layout.cache_line
            ->
              Some (o / Layout.cache_line)
          | _ -> None
        in
        let pstate = if nontemporal then Lattice.Flush_pending else Lattice.Dirty in
        let flushed_by = if nontemporal then Some iid else None in
        ISet.fold
          (fun oid st ->
            let key = key_of ~oid ~iid ~chain in
            let r =
              {
                store_iid = iid;
                store_loc = loc;
                size;
                chain;
                line;
                pstate;
                fence_after = false;
                flushed_by;
              }
            in
            refresh_loc { st with mem = KMap.add key r st.mem } oid)
          oids st

let flush ctx st ~iid ~kind addr_sym =
  match sym_targets ctx addr_sym with
  | None -> st
  | Some (oids, off) ->
      let oids = pm_only ctx oids in
      if ISet.is_empty oids then st
      else
        let fline = Option.map (fun o -> o / Layout.cache_line) off in
        let touched = ref ISet.empty in
        let mem =
          KMap.filter_map
            (fun (k : Key.t) (r : srec) ->
              (* A flush at a known line touches exactly that line, so it
                 only discharges records known to sit there; a flush whose
                 line is unknown is (optimistically) a ranged flush loop
                 and covers the whole object. *)
              let covered =
                ISet.mem k.oid oids
                &&
                match (fline, r.line) with
                | Some fl, Some rl -> fl = rl
                | Some _, None -> false
                | None, _ -> true
              in
              if not (covered && Lattice.equal r.pstate Lattice.Dirty) then
                Some r
              else begin
                touched := ISet.add k.oid !touched;
                match kind with
                | Instr.Clflush -> None (* serialized: durable outright *)
                | Instr.Clwb | Instr.Clflushopt ->
                    Some
                      {
                        r with
                        pstate = Lattice.Flush_pending;
                        flushed_by = Some iid;
                      }
              end)
            st.mem
        in
        ISet.fold (fun oid st -> refresh_loc st oid) !touched { st with mem }

(* The [pmem_flush(addr, len)] model: discharge every record in the
   flushed line range. The runtime's real body is a cache-line loop whose
   zero-trip path the fixpoint would join back in, leaving records dirty
   on a path that cannot happen when [len > 0] — so ranged flushes are
   modelled, not analysed (see {!Checker}). With the offset and length
   both known the covered lines are exact; records at an unknown line are
   covered only by a flush starting at the object base (the whole-object
   persist idiom). An unresolvable range optimistically covers the whole
   object, like a [flush] at an unknown line. *)
let flush_range ctx st ~iid ~kind addr_sym len_sym =
  match sym_targets ctx addr_sym with
  | None -> st
  | Some (oids, off) ->
      let oids = pm_only ctx oids in
      if ISet.is_empty oids then st
      else
        let range =
          match (off, len_sym) with
          | Some o, Int l when l > 0 ->
              Some (o / Layout.cache_line, (o + l - 1) / Layout.cache_line, o)
          | _ -> None
        in
        let touched = ref ISet.empty in
        let mem =
          KMap.filter_map
            (fun (k : Key.t) (r : srec) ->
              let covered =
                ISet.mem k.oid oids
                &&
                match (range, r.line) with
                | Some (lo, hi, _), Some rl -> lo <= rl && rl <= hi
                | Some (_, _, o), None -> o = 0
                | None, _ -> true
              in
              if not (covered && Lattice.equal r.pstate Lattice.Dirty) then
                Some r
              else begin
                touched := ISet.add k.oid !touched;
                match kind with
                | Instr.Clflush -> None
                | Instr.Clwb | Instr.Clflushopt ->
                    Some
                      {
                        r with
                        pstate = Lattice.Flush_pending;
                        flushed_by = Some iid;
                      }
              end)
            st.mem
        in
        ISet.fold (fun oid st -> refresh_loc st oid) !touched { st with mem }

let fence st =
  let touched = ref ISet.empty in
  let mem =
    KMap.filter_map
      (fun (k : Key.t) (r : srec) ->
        match r.pstate with
        | Lattice.Flush_pending ->
            touched := ISet.add k.oid !touched;
            None
        | Lattice.Dirty when not r.fence_after ->
            Some { r with fence_after = true }
        | _ -> Some r)
      st.mem
  in
  ISet.fold (fun oid st -> refresh_loc st oid) !touched { st with mem }

(* Constant folding over symbolic values; anything else drops to Unknown
   (which [eval] later replaces by the Andersen fallback for pointers). *)
let binop (op : Instr.binop) a b =
  match (op, a, b) with
  | Instr.Add, Ptr { oids; off }, Int n | Instr.Add, Int n, Ptr { oids; off }
    ->
      Ptr { oids; off = Option.map (( + ) n) off }
  | Instr.Sub, Ptr { oids; off }, Int n ->
      Ptr { oids; off = Option.map (fun o -> o - n) off }
  | Instr.Add, Addr x, Int n | Instr.Add, Int n, Addr x -> Addr (x + n)
  | Instr.Sub, Addr x, Int n -> Addr (x - n)
  | Instr.And, Ptr { oids; off }, Int mask when mask land (Layout.cache_line - 1) = 0 ->
      (* alignment mask; PM object bases are line-aligned, so masking the
         offset is masking the address *)
      Ptr { oids; off = Option.map (fun o -> o land mask) off }
  | Instr.And, Addr x, Int mask -> Addr (x land mask)
  | (op, Int x, Int y) -> (
      match op with
      | Instr.Add -> Int (x + y)
      | Instr.Sub -> Int (x - y)
      | Instr.Mul -> Int (x * y)
      | Instr.Div -> if y = 0 then Unknown else Int (x / y)
      | Instr.Rem -> if y = 0 then Unknown else Int (x mod y)
      | Instr.And -> Int (x land y)
      | Instr.Or -> Int (x lor y)
      | Instr.Xor -> Int (x lxor y)
      | Instr.Shl -> Int (x lsl y)
      | Instr.Lshr -> Int (x lsr y)
      | Instr.Eq -> Int (Bool.to_int (x = y))
      | Instr.Ne -> Int (Bool.to_int (x <> y))
      | Instr.Lt -> Int (Bool.to_int (x < y))
      | Instr.Le -> Int (Bool.to_int (x <= y))
      | Instr.Gt -> Int (Bool.to_int (x > y))
      | Instr.Ge -> Int (Bool.to_int (x >= y)))
  | _ -> Unknown

let step ctx ~func ~chain st (i : Instr.t) =
  let ev = eval ctx ~func st in
  match Instr.op i with
  | Instr.Store { addr; size; nontemporal; _ } ->
      store ctx st ~iid:(Instr.iid i) ~loc:(Instr.loc i) ~size ~nontemporal
        ~chain (ev addr)
  | Instr.Flush { kind; addr } ->
      flush ctx st ~iid:(Instr.iid i) ~kind (ev addr)
  | Instr.Fence _ -> fence st
  | Instr.Mov { dst; src } -> Absmem.bind st dst (ev src)
  | Instr.Gep { dst; base; offset } ->
      Absmem.bind st dst (binop Instr.Add (ev base) (ev offset))
  | Instr.Binop { dst; op; lhs; rhs } ->
      Absmem.bind st dst (binop op (ev lhs) (ev rhs))
  | Instr.Alloca { dst; _ } -> (
      match Iid.Map.find_opt (Instr.iid i) ctx.site_oid with
      | Some oid ->
          Absmem.bind st dst (Ptr { oids = ISet.singleton oid; off = Some 0 })
      | None -> Absmem.bind st dst Unknown)
  | Instr.Load { dst; _ } ->
      (* loaded values get the Andersen fallback at their next use *)
      Absmem.bind st dst Unknown
  | Instr.Call _ | Instr.Br _ | Instr.Condbr _ | Instr.Ret _ | Instr.Crash ->
      st
