(** Abstract machine state (see the interface for the two-layer design). *)

open Hippo_pmir
open Hippo_pmcheck
module ISet = Hippo_alias.Andersen.ISet

type sym =
  | Ptr of { oids : ISet.t; off : int option }
  | Addr of int
  | Int of int
  | Unknown

let sym_equal a b =
  match (a, b) with
  | Ptr a, Ptr b -> ISet.equal a.oids b.oids && a.off = b.off
  | Addr a, Addr b -> a = b
  | Int a, Int b -> a = b
  | Unknown, Unknown -> true
  | (Ptr _ | Addr _ | Int _ | Unknown), _ -> false

let sym_join a b =
  match (a, b) with
  | Ptr a, Ptr b ->
      Ptr
        {
          oids = ISet.union a.oids b.oids;
          off = (if a.off = b.off then a.off else None);
        }
  | Addr a', Addr b' -> if a' = b' then a else Unknown
  | Int a', Int b' -> if a' = b' then a else Unknown
  | _ -> Unknown

let pp_sym ppf = function
  | Ptr { oids; off } ->
      Fmt.pf ppf "ptr{%a}%s"
        Fmt.(list ~sep:comma int)
        (ISet.elements oids)
        (match off with Some o -> Fmt.str "+%d" o | None -> "+?")
  | Addr a -> Fmt.pf ppf "addr:0x%x" a
  | Int n -> Fmt.pf ppf "int:%d" n
  | Unknown -> Fmt.string ppf "?"

type srec = {
  store_iid : Iid.t;
  store_loc : Loc.t;
  size : int;
  chain : Trace.stack;
  line : int option;
  pstate : Lattice.t;
  fence_after : bool;
  flushed_by : Iid.t option;
}

module Key = struct
  type t = { oid : int; iid : Iid.t; sites : (string * int option) list }

  let compare a b =
    let c = Int.compare a.oid b.oid in
    if c <> 0 then c
    else
      let c = Iid.compare a.iid b.iid in
      if c <> 0 then c
      else
        List.compare
          (fun (f1, s1) (f2, s2) ->
            let c = String.compare f1 f2 in
            if c <> 0 then c else Option.compare Int.compare s1 s2)
          a.sites b.sites
end

module KMap = Map.Make (Key)
module Env = Map.Make (String)

(* Chains are keyed by their call sites (function + callsite serial), the
   same identity [Report.same_static_bug] uses: locations are display
   metadata and must not split records. *)
let chain_sites (chain : Trace.stack) =
  List.map
    (fun (f : Trace.frame) ->
      (f.Trace.func, Option.map Iid.serial f.Trace.callsite))
    chain

let key_of ~oid ~iid ~chain = { Key.oid; iid; sites = chain_sites chain }

type t = { env : sym Env.t; locs : Lattice.t KMap.t; mem : srec KMap.t }

let empty = { env = Env.empty; locs = KMap.empty; mem = KMap.empty }
let forget_env t = { t with env = Env.empty }

let lookup t r = match Env.find_opt r t.env with Some s -> s | None -> Unknown

let bind t r s =
  if s = Unknown then { t with env = Env.remove r t.env }
  else { t with env = Env.add r s t.env }

let loc_key oid = { Key.oid; iid = Iid.of_serial ~func:"" 0; sites = [] }

let loc_state t oid =
  match KMap.find_opt (loc_key oid) t.locs with
  | Some l -> l
  | None -> Lattice.bot

let set_loc t oid l = { t with locs = KMap.add (loc_key oid) l t.locs }

let join_rec (a : srec) (b : srec) : srec =
  {
    a with
    pstate = Lattice.join a.pstate b.pstate;
    (* a fence is guaranteed after the store only if guaranteed on both
       incoming paths *)
    fence_after = a.fence_after && b.fence_after;
    line = (if a.line = b.line then a.line else None);
    flushed_by =
      (match (a.flushed_by, b.flushed_by) with
      | Some f, _ -> Some f
      | None, o -> o);
  }

let join a b =
  {
    env =
      Env.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y ->
              let j = sym_join x y in
              if j = Unknown then None else Some j
          | _ -> None)
        a.env b.env;
    locs =
      KMap.union (fun _ x y -> Some (Lattice.join x y)) a.locs b.locs;
    mem = KMap.union (fun _ x y -> Some (join_rec x y)) a.mem b.mem;
  }

let rec_equal (a : srec) (b : srec) =
  Lattice.equal a.pstate b.pstate
  && a.fence_after = b.fence_after
  && a.line = b.line
  && Option.equal Iid.equal a.flushed_by b.flushed_by

let equal a b =
  Env.equal sym_equal a.env b.env
  && KMap.equal Lattice.equal a.locs b.locs
  && KMap.equal rec_equal a.mem b.mem

let records t = KMap.bindings t.mem

let pp ppf t =
  let pp_rec ppf ((k : Key.t), (r : srec)) =
    Fmt.pf ppf "o%d %a %a%s%s" k.Key.oid Iid.pp r.store_iid Lattice.pp
      r.pstate
      (match r.line with Some l -> Fmt.str " line:%d" l | None -> "")
      (if r.fence_after then " fence-after" else "")
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_rec) (records t)
