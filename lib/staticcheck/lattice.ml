(** The per-abstract-location persistency lattice (see the interface for
    the ordering rationale). A total chain, so [join] is [max] by rank. *)

type t = Bot | Persisted | Flush_pending | Dirty | Top

let bot = Bot
let top = Top

let rank = function
  | Bot -> 0
  | Persisted -> 1
  | Flush_pending -> 2
  | Dirty -> 3
  | Top -> 4

let leq a b = rank a <= rank b
let join a b = if rank a >= rank b then a else b
let equal a b = rank a = rank b
let undurable = function Flush_pending | Dirty | Top -> true | Bot | Persisted -> false

let to_string = function
  | Bot -> "bot"
  | Persisted -> "persisted"
  | Flush_pending -> "flush-pending"
  | Dirty -> "dirty"
  | Top -> "top"

let pp ppf t = Format.pp_print_string ppf (to_string t)
