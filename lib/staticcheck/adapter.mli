(** Bridging static analysis results into {!Hippo_pmcheck.Report} bugs.

    The repair pipeline (Compute → Reduce → Heuristic → Apply → Verify)
    consumes [Report.bug] values and never asks where they came from; this
    module makes static records produce bugs indistinguishable in shape
    from the dynamic checker's, so the pipeline repairs them unchanged:

    - the witness chain plays the role of the dynamic call stack
      (innermost first, outermost frame's callsite [None], exactly what
      {!Hippo_core.Heuristic} walks when hoisting fixes);
    - the one field statics cannot produce — the concrete store address —
      is synthesised as [0]; no repair stage reads it. *)

open Hippo_pmir
open Hippo_pmcheck

(** The implicit crash point at program exit, byte-identical to the
    dynamic interpreter's ([crash_iid = None], location ["<exit>":0],
    empty stack). *)
val exit_crash : Report.crash_info

(** Classify one live record at a crash point:
    [Flush_pending] -> missing-fence (with its [ordering_flush]),
    [Dirty] with a fence guaranteed later -> missing-flush,
    [Dirty] without / [Top] -> missing-flush&fence. *)
val bug_of_record : Absmem.srec -> crash:Report.crash_info -> Report.bug

(** All bugs implied by the live records of a state at a crash point. *)
val bugs_at : Absmem.t -> crash:Report.crash_info -> Report.bug list

(** Rebase a callee-relative witness chain at a call site: the outermost
    frame — when it is the callee's own, callsite-less frame — receives
    the call instruction, and the caller's frame is appended. Chains not
    rooted in the callee (pass-through records) are returned unchanged. *)
val extend_chain :
  callee:string ->
  caller:string ->
  callsite:Iid.t ->
  callsite_loc:Loc.t ->
  Trace.stack ->
  Trace.stack

(** Rebase every record chain in a summary exit state (re-keying, since
    chains are part of record keys). *)
val extend_state :
  callee:string ->
  caller:string ->
  callsite:Iid.t ->
  callsite_loc:Loc.t ->
  Absmem.t ->
  Absmem.t

val extend_report :
  callee:string ->
  caller:string ->
  callsite:Iid.t ->
  callsite_loc:Loc.t ->
  Report.bug ->
  Report.bug

(** Matching a static report against dynamic ground truth. Site identity
    is (store instruction, chain call sites) — crash point and kind are
    compared separately, because a static exit report legitimately stands
    in for dynamic reports at interior crash points. *)
val site_key : Report.bug -> string

(** Does a static kind cover a dynamic one? Equal kinds do; so does
    static missing-flush&fence (its repair — flush and fence — subsumes
    the repair of either weaker kind). *)
val kind_covers : static_:Report.kind -> dynamic:Report.kind -> bool

type comparison = {
  matched : (Report.bug * Report.bug) list;  (** (dynamic, static) *)
  missed : Report.bug list;  (** dynamic sites with no covering static report *)
  extra : Report.bug list;  (** static sites matching no dynamic site *)
}

(** Compare per site: dynamic bugs are deduplicated by {!site_key} first. *)
val compare_reports :
  static_:Report.bug list -> dynamic:Report.bug list -> comparison
