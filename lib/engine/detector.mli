(** First-class bug sources for the repair engine.

    A detector is anything that can produce durability-bug reports for a
    program: the dynamic pmemcheck-style interpreter, the workload-free
    static checker, their union — or a preset list of reports parsed
    from an on-disk trace. Detectors share one report shape
    ({!Hippo_pmcheck.Report.bug}), so the downstream passes are
    oblivious to where bugs came from; making the source a first-class
    value is what lets the engine serve every pipeline variant with a
    single pass list. *)

open Hippo_pmcheck

(** The classic three-way selection, kept for CLI/API compatibility. *)
type choice = Dynamic | Static | Both

val choice_name : choice -> string
val choice_of_string : string -> choice option

(** What a detector found. [site_stats] and [trace_events] are only
    populated by dynamic execution (they feed the Trace-AA oracle and
    the offline-overhead experiment); [checker_stats] only by the static
    analyzer. *)
type outcome = {
  bugs : Report.bug list;
  site_stats : Sitestats.t option;
  trace_events : int;
  checker_stats : Hippo_staticcheck.Checker.stats option;
}

type t = {
  name : string;
  detect :
    Cache.view ->
    workload:(Interp.t -> unit) option ->
    config:Interp.config ->
    outcome;
}

(** Execute the workload under the tracing interpreter.
    Raises [Invalid_argument] when no workload is supplied. *)
val dynamic : t

(** Run the static durability checker (analyses come from the cache, so
    repeated detections of one program version are free). *)
val static_ : ?entries:string list -> unit -> t

(** Union of two detectors' reports, deduplicated; outcome metadata is
    merged (left operand wins on conflicts). *)
val union : t -> t -> t

(** Externally-supplied reports (e.g. parsed from a trace file). *)
val preset : ?site_stats:Sitestats.t -> Report.bug list -> t

val of_choice : ?entries:string list -> choice -> t
