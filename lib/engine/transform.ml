(** The persistent-subprogram transformation (paper §4.2.4, Theorem 4).

    [hoist] duplicates the callee of a chosen call site as a persistent
    subprogram: in the clone, every store that may modify PM is followed by
    a flush of its own address, and every call to a (transitively)
    PM-modifying function is retargeted to that function's persistent
    clone. A single fence is inserted after the transformed call site, so
    every PM modification made anywhere inside the subprogram satisfies
    [X -> F(X) -> M -> I].

    Clones are cached and shared across transformations (the paper's
    [update_PM] reuse), which keeps the code-size impact negligible —
    experiment E8 measures exactly this. *)

open Hippo_pmir

type ctx = {
  mutable prog : Program.t;
  oracle : Hippo_alias.Oracle.t;
  base : Program.t;  (** the pre-transformation program the oracle knows *)
  mutable clones : (string * string) list;  (** original -> clone name *)
  mutable instrs_added : int;
  mutable funcs_added : int;
  reuse : bool;  (** share clones across hoists (ablation A1 disables) *)
}

let create ?(reuse = true) ~oracle prog =
  {
    prog;
    oracle;
    base = prog;
    clones = [];
    instrs_added = 0;
    funcs_added = 0;
    reuse;
  }

let clone_name ctx original =
  let base = original ^ "_PM" in
  if not (Program.mem ctx.prog base) then base
  else begin
    let rec next k =
      let n = Fmt.str "%s%d" base k in
      if Program.mem ctx.prog n then next (k + 1) else n
    in
    next 2
  end

(** Does [fname] (transitively) contain a store that may modify PM? Only
    such callees need persistent versions. *)
let may_modify_pm ctx fname =
  let memo = Hashtbl.create 16 in
  let rec go fname visiting =
    match Hashtbl.find_opt memo fname with
    | Some v -> v
    | None ->
        if List.mem fname visiting then false
        else begin
          let result =
            match Program.find ctx.base fname with
            | None -> false
            | Some f ->
                List.exists
                  (fun (i : Instr.t) ->
                    match Instr.op i with
                    | Instr.Store _ ->
                        ctx.oracle.store_may_touch_pm ctx.base (Instr.iid i)
                    | Instr.Call { callee; _ } ->
                        (not (Program.is_intrinsic callee))
                        && go callee (fname :: visiting)
                    | _ -> false)
                  (Func.instrs f)
          in
          Hashtbl.replace memo fname result;
          result
        end
  in
  go fname []

(** Build (or reuse) the persistent clone of [original]; returns its name. *)
let rec ensure_clone ctx original : string =
  match List.assoc_opt original ctx.clones with
  | Some c -> c
  | None ->
      let cname = clone_name ctx original in
      ctx.clones <- (original, cname) :: ctx.clones;
      let f = Program.find_exn ctx.prog original in
      let clone, mapping = Clone.func ~new_name:cname f in
      (* Invert the mapping: judgements are keyed on original identities. *)
      let back = Iid.Tbl.create 64 in
      Iid.Tbl.iter (fun orig cl -> Iid.Tbl.replace back cl orig) mapping;
      let orig_iid i =
        match Iid.Tbl.find_opt back (Instr.iid i) with
        | Some o -> o
        | None -> Instr.iid i
      in
      let clone =
        Func.map_instrs
          (fun i ->
            match Instr.op i with
            | Instr.Store { addr; _ }
              when ctx.oracle.store_may_touch_pm ctx.base (orig_iid i) ->
                let flush =
                  Instr.make
                    ~iid:(Iid.fresh ~func:cname)
                    ~loc:(Instr.loc i)
                    (Instr.Flush { kind = Instr.Clwb; addr })
                in
                ctx.instrs_added <- ctx.instrs_added + 1;
                [ i; flush ]
            | Instr.Call { dst; callee; args }
              when (not (Program.is_intrinsic callee))
                   && may_modify_pm ctx callee ->
                let callee' = ensure_clone ctx callee in
                [ Instr.with_op i (Instr.Call { dst; callee = callee'; args }) ]
            | _ -> [ i ])
          clone
      in
      ctx.prog <- Program.add_func ctx.prog clone;
      ctx.funcs_added <- ctx.funcs_added + 1;
      ctx.instrs_added <- ctx.instrs_added + List.length (Func.instrs clone);
      cname

(** Apply one hoist fix: retarget the call site to the persistent clone and
    fence immediately after it. *)
let hoist ctx (h : Fix.hoist) =
  (* Without clone reuse (ablation A1) each hoist rebuilds its own
     subprogram copies; the cache is still used within one hoist to
     terminate on recursive subprograms. *)
  if not ctx.reuse then ctx.clones <- [];
  let fname = Iid.func h.call_site in
  let f = Program.find_exn ctx.prog fname in
  let applied = ref false in
  let f' =
    Func.map_instrs
      (fun i ->
        if Iid.equal (Instr.iid i) h.call_site then (
          match Instr.op i with
          | Instr.Call { dst; callee; args } ->
              applied := true;
              let callee' = ensure_clone ctx callee in
              let call =
                Instr.with_op i (Instr.Call { dst; callee = callee'; args })
              in
              let fence =
                Instr.make
                  ~iid:(Iid.fresh ~func:fname)
                  ~loc:(Instr.loc i)
                  (Instr.Fence { kind = Instr.Sfence })
              in
              ctx.instrs_added <- ctx.instrs_added + 1;
              [ call; fence ]
          | _ ->
              invalid_arg
                (Fmt.str "Transform.hoist: %a is not a call site" Iid.pp
                   h.call_site))
        else [ i ])
      f
  in
  if not !applied then
    invalid_arg
      (Fmt.str "Transform.hoist: call site %a not found" Iid.pp h.call_site);
  ctx.prog <- Program.update ctx.prog f'
