(** The pass-manager engine.

    One pass list serves every repair pipeline variant (Fig. 2 of the
    paper, previously hand-coded per driver entry point):

    {v locate -> compute -> reduce -> hoist -> apply -> verify v}

    - {e locate} runs the {!Detector.t} (dynamic interpreter, static
      checker, union, or preset reports) and records the bug reports —
      whose identities are IR identities, locating each bug's store;
    - {e compute} is Phase 1 (intraprocedural fixes per bug);
    - {e reduce} is Phase 2 (fix reduction; passthrough when disabled);
    - {e hoist} is Phase 3 (the interprocedural heuristic; disabled
      means every fix stays intraprocedural);
    - {e apply} rewrites the program and registers the result as a new
      program version in the {!Cache.t} (bumping the version counter);
    - {e verify} replays the workload on original and repaired program
      (dynamic), or re-runs the static checker on the repaired version
      when there is no workload.

    Every pass execution emits a structured {!Event.t}. Passing an
    explicit [?cache] shares memoized analyses (Andersen points-to, the
    Full-AA oracle, static summaries, program sizes) across runs: an
    ablation sweep over one program computes each analysis once. *)

open Hippo_pmir
open Hippo_pmcheck

(** The standard pass list, exposed for custom pipelines. *)
val passes : Pass.t list

(** Run the full pipeline; the returned context holds every
    intermediate product and the emitted events. [workload] drives
    dynamic detection (when the detector needs it) and verification;
    without it, verification is the static residual check. *)
val run :
  ?options:Context.options ->
  ?cache:Cache.t ->
  ?trace:(Event.t -> unit) ->
  ?static_entries:string list ->
  detector:Detector.t ->
  ?workload:(Interp.t -> unit) ->
  ?config:Interp.config ->
  name:string ->
  Program.t ->
  Context.t

(** The flush/fence optimizer pass list (see {!Optimize}):

    {v opt-analyze -> opt-apply -> opt-verify v}

    - {e opt-analyze} runs the observed static check plus the strict
      must-analysis and records the proposed removals;
    - {e opt-apply} deletes them and registers the result as a new
      program version (the input version when nothing was removable);
    - {e opt-verify} re-runs the static checker on the optimized
      version and {e reverts the whole rewrite} unless the reports are
      identical — repair must do no harm to speed, and the optimizer
      must do no harm to safety.

    Exposed for custom pipelines (e.g. repair-then-optimize over one
    shared cache, where Andersen runs once per program version). *)
val opt_passes : Pass.t list

(** Run the optimizer pipeline on [prog]; the returned context holds
    {!Context.t.opt_outcome} and the optimized version view. *)
val optimize :
  ?options:Context.options ->
  ?cache:Cache.t ->
  ?trace:(Event.t -> unit) ->
  ?static_entries:string list ->
  ?name:string ->
  Program.t ->
  Context.t

(** Steps 2–3 only: compute the fix plan for externally-supplied bug
    reports under an externally-built oracle. Returns the plan, the
    hoisting decisions, and the number of fixes reduction eliminated. *)
val plan :
  ?options:Context.options ->
  ?cache:Cache.t ->
  ?trace:(Event.t -> unit) ->
  ?name:string ->
  oracle:Hippo_alias.Oracle.t ->
  Program.t ->
  Report.bug list ->
  Fix.plan * Heuristic.decision list * int
