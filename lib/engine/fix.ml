(** Fix representations (paper §4.2).

    Phase 1 produces {e intraprocedural} fixes: a flush inserted
    immediately after the buggy store (so its address operand is still
    live — the insertion point guarantees [X -> F(X)]), and/or a fence
    inserted immediately after the ordering flush. Phase 3 may convert a
    flush fix into a {e hoist}: a persistent-subprogram transformation at
    a call site on the buggy store's stack. *)

open Hippo_pmir
open Hippo_pmcheck

type intra_action =
  | Add_flush of { addr : Value.t; size : int; kind : Instr.flush_kind }
      (** [size] is the buggy store's width — used when the fix is emitted
          in the portable style as a ranged [pmem_flush] call (§6.2) *)
  | Add_fence of { kind : Instr.fence_kind }

type intra = {
  after : Iid.t;  (** insertion point: immediately after this instruction *)
  action : intra_action;
}

type hoist = {
  call_site : Iid.t;  (** the call to transform *)
  callee : string;  (** the subprogram root being made persistent *)
  depth : int;  (** frames above the PM modification (1 = direct caller) *)
}

type t = Intra of intra | Hoist of hoist

(** How a bug ends up fixed — the classification axis of Fig. 3. *)
type shape =
  | Shape_intra_flush
  | Shape_intra_fence
  | Shape_intra_flush_fence
  | Shape_interprocedural of int  (** hoist depth *)

let shape_to_string = function
  | Shape_intra_flush -> "intraprocedural flush"
  | Shape_intra_fence -> "intraprocedural fence"
  | Shape_intra_flush_fence -> "intraprocedural flush+fence"
  | Shape_interprocedural d -> Fmt.str "interprocedural flush+fence (%d up)" d

let intra_equal (a : intra) (b : intra) =
  Iid.equal a.after b.after
  &&
  match (a.action, b.action) with
  | Add_flush x, Add_flush y ->
      x.kind = y.kind && x.size = y.size && Value.equal x.addr y.addr
  | Add_fence x, Add_fence y -> x.kind = y.kind
  | (Add_flush _ | Add_fence _), _ -> false

let equal a b =
  match (a, b) with
  | Intra x, Intra y -> intra_equal x y
  | Hoist x, Hoist y ->
      Iid.equal x.call_site y.call_site && String.equal x.callee y.callee
  | (Intra _ | Hoist _), _ -> false

let pp ppf = function
  | Intra { after; action = Add_flush { addr; kind; size = _ } } ->
      Fmt.pf ppf "insert flush.%s %a after %a"
        (Instr.flush_kind_to_string kind)
        Value.pp addr Iid.pp after
  | Intra { after; action = Add_fence { kind } } ->
      Fmt.pf ppf "insert fence.%s after %a"
        (Instr.fence_kind_to_string kind)
        Iid.pp after
  | Hoist { call_site; callee; depth } ->
      Fmt.pf ppf "persistent subprogram @%s at call site %a (depth %d)" callee
        Iid.pp call_site depth

let to_string t = Fmt.str "%a" pp t

(** A fix plan: the final fix list plus, per bug, the shape of its fix —
    consumed by the accuracy experiment (Fig. 3) and the fix-statistics
    experiment (§6.3). *)
type plan = {
  fixes : t list;
  per_bug : (Report.bug * shape) list;
}

let count_intra plan =
  List.length (List.filter (function Intra _ -> true | Hoist _ -> false) plan.fixes)

let count_hoisted plan =
  List.length (List.filter (function Hoist _ -> true | Intra _ -> false) plan.fixes)
