(** Post-repair validation (§6.1's methodology).

    Two checks, both executable counterparts of the paper's guarantees:

    - {e effectiveness}: re-running the bug finder on the repaired program
      under the same workload reports zero durability bugs;
    - {e do no harm}: on the bug-free execution, the repaired program is
      observationally identical to the original — same emitted outputs,
      same return values, same final working PM contents. Flush and fence
      insertion must not change program state (paper §4.2 definitions);
      this check would catch any violation. *)

open Hippo_pmir
open Hippo_pmcheck
module Pool = Hippo_parallel.Pool

type outcome = {
  residual_bugs : Report.bug list;
  outputs_match : bool;
  pm_working_match : bool;
  crash_consistent_improved : bool option;
      (** set by callers that also run crash simulation *)
}

let harm_free o = o.outputs_match && o.pm_working_match

let effective o = o.residual_bugs = []

let check ~jobs ~(workload : Interp.t -> unit) ~(config : Interp.config)
    ~(original : Program.t) ~(repaired : Program.t) : outcome =
  (* Everything this check compares — bugs, outputs, working images — is
     identical with tracing off (seq numbers advance either way), so the
     two full workload runs skip event materialization. *)
  let config = { config with Interp.trace = false } in
  let run prog =
    let t = Interp.create config prog in
    let crashed =
      try
        workload t;
        false
      with Interp.Stopped_at_crash -> true
    in
    (* A run that stopped at a crash point never reaches program exit: the
       interpreter is mid-transaction, and charging the implicit at-exit
       crash point would report stores the program had no chance to
       persist yet — phantom residual bugs on crash workloads. *)
    if not crashed then Interp.exit_check t;
    t
  in
  let t0, t1 =
    if jobs > 1 then
      (* the two executions are independent: one worker domain runs the
         original while this domain runs the repaired program *)
      match Pool.run ~domains:2 (fun p -> Pool.map p run [ original; repaired ]) with
      | [ t0; t1 ] -> (t0, t1)
      | _ -> assert false
    else (run original, run repaired)
  in
  {
    residual_bugs = Interp.bugs t1;
    outputs_match = Interp.output t0 = Interp.output t1;
    pm_working_match =
      Bytes.equal
        (Mem.working_image (Interp.mem t0))
        (Mem.working_image (Interp.mem t1));
    crash_consistent_improved = None;
  }

type crash_report = {
  original_consistent : bool;
  repaired_consistent : bool;
  original_stats : Crashsim.stats;
  repaired_stats : Crashsim.stats;
}

let crash_improved r = r.repaired_consistent && not r.original_consistent

(** Crash-simulation counterpart of {!check}: sweep every crash point of
    both programs and compare. The two single-pass sweeps share one memo
    under the original's signature — sound because a harm-free repair
    preserves working-image semantics, so the two checkers agree on every
    image; durable images the repair leaves unchanged (most of them) are
    then recovered once, not twice. *)
let check_crash_consistency ?(jobs = 1) ?strategy ?memo
    ~(config : Interp.config) ~setup ~checker ~checker_args
    ~(original : Program.t) ~(repaired : Program.t) () : crash_report =
  let memo = match memo with Some m -> m | None -> Crashsim.Memo.create () in
  let memo_sig = Crashsim.program_sig original in
  let sweep prog =
    Crashsim.sweep_with_stats ~config ~jobs ?strategy ~memo ~memo_sig prog
      ~setup ~checker ~checker_args
  in
  let vo, original_stats = sweep original in
  let vr, repaired_stats = sweep repaired in
  {
    original_consistent = List.for_all Crashsim.consistent vo;
    repaired_consistent = List.for_all Crashsim.consistent vr;
    original_stats;
    repaired_stats;
  }

(** Fold a crash report into an outcome: the repaired program recovers at
    every crash point. *)
let with_crash_report (o : outcome) (r : crash_report) =
  { o with crash_consistent_improved = Some r.repaired_consistent }

let pp ppf o =
  Fmt.pf ppf "residual bugs: %d; outputs %s; PM state %s"
    (List.length o.residual_bugs)
    (if o.outputs_match then "match" else "DIFFER")
    (if o.pm_working_match then "match" else "DIFFERS")
