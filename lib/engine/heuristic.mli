(** Phase 3: the hoisting heuristic (paper §4.3).

    For every bug that needs a flush, decides whether the intraprocedural
    fix should become an interprocedural one — a persistent-subprogram
    transformation at a call site on the buggy store's call stack — and at
    which level.

    Candidates, innermost first: the PM-modifying store itself, then the
    call site of every frame strictly below the crash-point function's
    frame. Scores are persistent-minus-volatile alias counts of the
    candidate's PM-relevant pointer argument(s); a call site with none
    scores -inf and cuts off all outer candidates. Highest score wins;
    ties go to the innermost candidate, so hoisting happens only when it
    strictly reduces expected volatile flushing. *)

open Hippo_pmir
open Hippo_pmcheck

type call_target = { call_site : Iid.t; callee : string; depth : int }

type candidate = At_store | At_call of call_target

type decision = {
  bug : Report.bug;
  choice : candidate;
  scores : (candidate * int) list;  (** considered candidates with scores *)
}

(** Call-site candidates from the bug's stacks, innermost first: each
    frame contributes the call site that created it (located in its
    caller); frames at or above the crash-point function are excluded. *)
val call_candidates : Report.bug -> (Iid.t * string) list

val decide : Hippo_alias.Oracle.t -> Program.t -> Report.bug -> decision

(** Partition the reduced fixes: flush fixes whose every bug hoists become
    {!Fix.Hoist} fixes; everything else stays intraprocedural. *)
val phase3 :
  Hippo_alias.Oracle.t ->
  Program.t ->
  Reduce.reduced list ->
  Fix.plan * decision list

(** Phase 3 disabled: every fix stays intraprocedural (the Redis_H-intra
    configuration of §6.3). *)
val phase3_disabled : Reduce.reduced list -> Fix.plan
