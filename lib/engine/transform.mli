(** The persistent-subprogram transformation (paper §4.2.4, Theorem 4).

    {!hoist} duplicates the callee of a chosen call site as a persistent
    subprogram: in the clone, every store that may modify PM is followed
    by a flush of its own address, and every call to a (transitively)
    PM-modifying function is retargeted to that function's persistent
    clone. A single fence is inserted after the transformed call site, so
    every PM modification inside the subprogram satisfies
    [X -> F(X) -> M -> I].

    Clones are cached and shared across transformations (the paper's
    [update_PM] reuse), which keeps the code-size impact negligible —
    experiment E8 measures exactly this. *)

open Hippo_pmir

type ctx = {
  mutable prog : Program.t;
  oracle : Hippo_alias.Oracle.t;
  base : Program.t;  (** the pre-transformation program the oracle knows *)
  mutable clones : (string * string) list;  (** original -> clone name *)
  mutable instrs_added : int;
  mutable funcs_added : int;
  reuse : bool;  (** share clones across hoists (ablation A1 disables) *)
}

val create : ?reuse:bool -> oracle:Hippo_alias.Oracle.t -> Program.t -> ctx

(** Does [fname] (transitively) contain a store that may modify PM? *)
val may_modify_pm : ctx -> string -> bool

(** Build (or reuse) the persistent clone of a function; returns the
    clone's name. Terminates on recursive subprograms. *)
val ensure_clone : ctx -> string -> string

(** Apply one hoist fix: retarget the call site to the persistent clone
    and fence immediately after it. Raises [Invalid_argument] if the call
    site does not exist. *)
val hoist : ctx -> Fix.hoist -> unit
