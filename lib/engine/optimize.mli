(** Bentō-style flush/fence optimizer: remove provably-redundant
    persistence operations without doing any harm.

    Hippocrates' repair passes insert flushes and fences conservatively;
    this pass family walks the repaired (or any) program and deletes
    persistence operations that are redundant on {e every} path:

    - a {b covered flush} whose exact cache lines are already durable
      ([Covered_flush]), or that provably never touches PM
      ([Volatile_flush]);
    - a {b dominated fence} with provably nothing in any write-pending
      queue — no flush or non-temporal store since the last fence on any
      path ([Dominated_fence]); adjacent fences coalesce this way;
    - a {b coalescible fence}: every path from it reaches a {e kept}
      fence without passing a [Crash], a [Ret] or a possibly-crashing
      call ([Coalesced_fence]). Crash points are the model's only
      durability-observable events, and pstate write-back snapshots are
      taken at flush time, so deferring the commit to the later fence
      leaves every crash image bit-identical — the epoch view of Bentō;
    - a [pmem_persist] call site where both conditions hold at once
      ([Covered_persist]).

    Soundness rests on two independent analyses that must {e both}
    approve a deletion:

    + an observed replay of the static checker's own transfer functions
      over its converged abstract states ({!Cache.static_observed} —
      Andersen is shared with repair through the versioned cache): the
      instruction must be the {e identity} on every state the checker
      visits, which pins the checker's least fixpoint and hence the
      static bug reports;
    + a strict intraprocedural must-analysis over cache lines
      (clean / pending / write-pending-queue flag) with pessimistic
      entry assumptions and exact line resolution restricted to
      single-instance objects (the PM region and globals): the deleted
      operation is a dynamic no-op on every concrete execution, so
      crash-image sweeps cannot change verdict.

    As a belt-and-braces guarantee, {!run} re-checks the rewritten
    program and {e reverts the whole rewrite} if the static reports are
    not identical to the input's. *)

open Hippo_pmir
open Hippo_pmcheck

type rule =
  | Covered_flush
  | Dominated_fence
  | Coalesced_fence
  | Covered_persist
  | Volatile_flush

val rule_name : rule -> string

type removal = {
  r_iid : Iid.t;
  r_loc : Loc.t;
  r_func : string;
  r_what : string;  (** rendered instruction, for logs *)
  r_rule : rule;
}

val pp_removal : Format.formatter -> removal -> unit

type analysis = {
  a_bugs : Report.bug list;  (** static reports on the input (baseline) *)
  a_removals : removal list;
  a_checker : Hippo_staticcheck.Checker.stats;
}

(** Analyse only — no rewrite. Uses (and feeds) [cache] so Andersen and
    the static result are shared with repair passes over the same
    program version. *)
val analyze :
  ?cache:Cache.t -> ?entries:string list -> Program.t -> analysis

(** Delete the given removals ([Func.map_instrs] returning []);
    validates the result. *)
val rewrite : Program.t -> removal list -> Program.t

(** Sorted [Report.to_line] rendering, the report-identity criterion. *)
val reports_equal : Report.bug list -> Report.bug list -> bool

type outcome = {
  o_prog : Program.t;  (** optimized program; the input when reverted *)
  o_removals : removal list;  (** applied removals; [[]] when reverted *)
  o_candidates : int;  (** removals the analysis proposed *)
  o_before : Hippo_perfmodel.Timed.static_counts;
  o_after : Hippo_perfmodel.Timed.static_counts;
  o_bugs : Report.bug list;  (** static reports before *)
  o_residual : Report.bug list;  (** static reports after *)
  o_report_equal : bool;
  o_reverted : bool;  (** reports drifted; the input program was kept *)
}

(** Analyse, rewrite, re-check; revert wholesale on static-report
    drift. *)
val run : ?cache:Cache.t -> ?entries:string list -> Program.t -> outcome

(** [crash_verdicts_identical ~setup ~checker ~checker_args orig opt]
    sweeps both programs over every crash point (crash points are
    [Crash] instructions, which the optimizer never touches, so the
    verdict lists align positionally) and compares the verdict lists
    structurally. The gauntlet's dynamic do-no-harm check. *)
val crash_verdicts_identical :
  ?config:Interp.config ->
  ?jobs:int ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  Program.t ->
  Program.t ->
  bool

val pp_outcome : Format.formatter -> outcome -> unit
