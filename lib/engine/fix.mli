(** Fix representations (paper §4.2).

    Phase 1 produces {e intraprocedural} fixes: a flush inserted
    immediately after the buggy store (so its address operand is still
    live — the insertion point guarantees [X -> F(X)]), and/or a fence
    inserted immediately after the ordering flush. Phase 3 may convert a
    flush fix into a {e hoist}: a persistent-subprogram transformation at
    a call site on the buggy store's stack. *)

open Hippo_pmir
open Hippo_pmcheck

type intra_action =
  | Add_flush of { addr : Value.t; size : int; kind : Instr.flush_kind }
      (** [size] is the buggy store's width — used when the fix is emitted
          in the portable style as a ranged [pmem_flush] call (§6.2) *)
  | Add_fence of { kind : Instr.fence_kind }

type intra = {
  after : Iid.t;  (** insertion point: immediately after this instruction *)
  action : intra_action;
}

type hoist = {
  call_site : Iid.t;  (** the call to transform *)
  callee : string;  (** the subprogram root being made persistent *)
  depth : int;  (** frames above the PM modification (1 = direct caller) *)
}

type t = Intra of intra | Hoist of hoist

(** How a bug ends up fixed — the classification axis of Fig. 3. *)
type shape =
  | Shape_intra_flush
  | Shape_intra_fence
  | Shape_intra_flush_fence
  | Shape_interprocedural of int  (** hoist depth *)

val shape_to_string : shape -> string
val intra_equal : intra -> intra -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A fix plan: the final fix list plus, per bug, the shape of its fix —
    consumed by the accuracy experiment (Fig. 3) and the fix-statistics
    experiment (§6.3). *)
type plan = { fixes : t list; per_bug : (Report.bug * shape) list }

val count_intra : plan -> int
val count_hoisted : plan -> int
