(** Phase 2: fix reduction (paper §4.3).

    Merges redundant fixes: two flushes of the same address at the same
    insertion point reduce to one (both satisfied by a single [F(X)]), and
    multiple fences at the same point reduce to one. Reduction also drops
    fixes that duplicate persistence operations already present in the
    program immediately after the insertion point — re-reported bugs whose
    mechanism exists but was reported on a different dynamic path never
    yield double insertions.

    The reduced plan keeps the provenance multimap [fix -> bugs it fixes]:
    Phase 3 needs it to know when every bug behind a fix has been hoisted
    away. *)

open Hippo_pmir
open Hippo_pmcheck

type reduced = {
  fix : Fix.intra;
  bugs : Report.bug list;  (** all bugs this single fix discharges *)
}

(** [already_present prog fix] — the program already performs this exact
    operation immediately after the insertion point. *)
let already_present (prog : Program.t) (fix : Fix.intra) =
  let func = Iid.func fix.Fix.after in
  match Program.find prog func with
  | None -> false
  | Some f ->
      List.exists
        (fun (b : Func.block) ->
          let rec scan = function
            | i :: (next :: _ as rest) when Iid.equal (Instr.iid i) fix.Fix.after
              -> (
                match (fix.Fix.action, Instr.op next) with
                | Fix.Add_flush { addr; kind; size = _ }, Instr.Flush f' ->
                    f'.kind = kind && Value.equal f'.addr addr
                | Fix.Add_fence { kind }, Instr.Fence f' -> f'.kind = kind
                | _ -> scan rest)
            | _ :: rest -> scan rest
            | [] -> false
          in
          scan b.instrs)
        (Func.blocks f)

let phase2 prog (per_bug : (Report.bug * Fix.intra list) list) : reduced list =
  let table : reduced list ref = ref [] in
  List.iter
    (fun (bug, fixes) ->
      List.iter
        (fun fix ->
          match
            List.find_opt (fun r -> Fix.intra_equal r.fix fix) !table
          with
          | Some r ->
              table :=
                { r with bugs = bug :: r.bugs }
                :: List.filter (fun x -> not (x == r)) !table
          | None -> table := { fix; bugs = [ bug ] } :: !table)
        fixes)
    per_bug;
  (* Drop fixes whose operation already exists at the insertion point. *)
  List.rev !table
  |> List.filter (fun r -> not (already_present prog r.fix))
  |> List.map (fun r -> { r with bugs = List.rev r.bugs })

(** Number of raw fixes eliminated by reduction (ablation metric). *)
let eliminated ~(raw : (Report.bug * Fix.intra list) list) ~(reduced : reduced list) =
  List.fold_left (fun n (_, fs) -> n + List.length fs) 0 raw
  - List.length reduced
