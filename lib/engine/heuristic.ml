(** Phase 3: the hoisting heuristic (paper §4.3).

    For every bug that needs a flush, the heuristic decides whether the
    intraprocedural fix should be converted into an interprocedural one —
    a persistent-subprogram transformation at a call site on the buggy
    store's call stack — and at which level.

    Candidate locations, innermost first: the PM-modifying store itself,
    then the call site of every frame strictly below the frame of the
    crash-point function (fixing at or above the crash frame would require
    an extra fence before the crash point, §4.2.4). Each candidate gets a
    score: persistent aliases minus volatile aliases of its pointer
    argument(s); call sites passing no pointer arguments score -inf and cut
    off all outer candidates. The highest score wins; ties go to the
    innermost candidate, so a hoist happens only when it strictly reduces
    the chance of flushing volatile data. *)

open Hippo_pmir
open Hippo_pmcheck

type call_target = { call_site : Iid.t; callee : string; depth : int }

type candidate = At_store | At_call of call_target

type decision = {
  bug : Report.bug;
  choice : candidate;
  scores : (candidate * int) list;  (** considered candidates with scores *)
}

(** Call-site candidates from the bug's stacks, innermost first. A frame
    contributes the call site that created it (located in its caller);
    frames at or above the crash-point function are excluded. *)
let call_candidates (bug : Report.bug) : (Iid.t * string) list =
  let crash_fn = Option.map Iid.func bug.crash.crash_iid in
  let rec walk acc = function
    | [] -> List.rev acc
    | (f : Trace.frame) :: rest -> (
        if crash_fn = Some f.Trace.func then List.rev acc
        else
          match f.Trace.callsite with
          | Some cs -> walk ((cs, f.Trace.func) :: acc) rest
          | None -> List.rev acc)
  in
  walk [] bug.store.stack

let decide (oracle : Hippo_alias.Oracle.t) (prog : Program.t)
    (bug : Report.bug) : decision =
  let store_site_score =
    Option.value (oracle.store_score prog bug.store.iid) ~default:0
  in
  let calls = call_candidates bug in
  (* Score call sites inward-out; a score of -inf (no pointer arguments)
     cuts off that candidate and every outer one. *)
  let rec score_calls depth acc = function
    | [] -> List.rev acc
    | (cs, callee) :: rest -> (
        match oracle.call_score prog cs with
        | None -> List.rev acc
        | Some s ->
            score_calls (depth + 1)
              ((At_call { call_site = cs; callee; depth }, s) :: acc)
              rest)
  in
  let scores = (At_store, store_site_score) :: score_calls 1 [] calls in
  (* Highest score wins; first (innermost) among equals. *)
  let choice, _ =
    List.fold_left
      (fun (bc, bs) (c, s) -> if s > bs then (c, s) else (bc, bs))
      (At_store, store_site_score) scores
  in
  { bug; choice; scores }

(** [phase3 oracle prog reduced] partitions the reduced fixes: flush fixes
    whose every bug hoists become {!Fix.Hoist} fixes; everything else stays
    intraprocedural. Returns the final plan. *)
let phase3 (oracle : Hippo_alias.Oracle.t) (prog : Program.t)
    (reduced : Reduce.reduced list) : Fix.plan * decision list =
  (* One decision per distinct static bug (store + call chain). *)
  let decisions = ref [] in
  let decision_for (bug : Report.bug) =
    match
      List.find_opt (fun d -> Report.same_static_bug d.bug bug) !decisions
    with
    | Some d -> d
    | None ->
        let d = decide oracle prog bug in
        decisions := d :: !decisions;
        d
  in
  let hoisted_bug (bug : Report.bug) =
    match bug.kind with
    | Report.Missing_fence -> None (* fence-only fixes are never hoisted *)
    | Report.Missing_flush | Report.Missing_flush_fence -> (
        match (decision_for bug).choice with
        | At_store -> None
        | At_call h -> Some h)
  in
  let fixes = ref [] in
  let shapes : (Report.bug * Fix.shape) list ref = ref [] in
  let add_fix f = if not (List.exists (Fix.equal f) !fixes) then fixes := f :: !fixes in
  (* Per-bug shape bookkeeping. *)
  let note_shape bug shape =
    if
      not
        (List.exists
           (fun (b, _) -> Report.same_static_bug b bug)
           !shapes)
    then shapes := (bug, shape) :: !shapes
  in
  List.iter
    (fun (r : Reduce.reduced) ->
      let staying_bugs =
        List.filter (fun b -> hoisted_bug b = None) r.bugs
      in
      (* Emit hoists for the bugs that leave. *)
      List.iter
        (fun b ->
          match hoisted_bug b with
          | Some { call_site; callee; depth } ->
              add_fix (Fix.Hoist { call_site; callee; depth });
              note_shape b (Fix.Shape_interprocedural depth)
          | None -> ())
        r.bugs;
      (* Keep the intra fix if any bug still relies on it. *)
      if staying_bugs <> [] then begin
        add_fix (Fix.Intra r.fix);
        List.iter
          (fun (b : Report.bug) ->
            note_shape b
              (match b.Report.kind with
              | Report.Missing_flush -> Fix.Shape_intra_flush
              | Report.Missing_fence -> Fix.Shape_intra_fence
              | Report.Missing_flush_fence -> Fix.Shape_intra_flush_fence))
          staying_bugs
      end)
    reduced;
  let plan = { Fix.fixes = List.rev !fixes; per_bug = List.rev !shapes } in
  (plan, List.rev !decisions)

(** Phase 3 disabled: every fix stays intraprocedural (the Redis_H-intra
    configuration of §6.3). *)
let phase3_disabled (reduced : Reduce.reduced list) : Fix.plan =
  let fixes = List.map (fun (r : Reduce.reduced) -> Fix.Intra r.fix) reduced in
  let shapes =
    List.concat_map
      (fun (r : Reduce.reduced) ->
        List.map
          (fun (b : Report.bug) ->
            ( b,
              match b.Report.kind with
              | Report.Missing_flush -> Fix.Shape_intra_flush
              | Report.Missing_fence -> Fix.Shape_intra_fence
              | Report.Missing_flush_fence -> Fix.Shape_intra_flush_fence ))
          r.bugs)
      reduced
  in
  let dedup =
    List.fold_left
      (fun acc (b, s) ->
        if List.exists (fun (b', _) -> Report.same_static_bug b b') acc then acc
        else (b, s) :: acc)
      [] shapes
  in
  { Fix.fixes; per_bug = List.rev dedup }
