(* Versioned analysis cache: memoized pure analyses keyed by a program
   version counter. See the interface for the invalidation rules. *)

open Hippo_pmir

type entry = {
  version : int;
  prog : Program.t;
  mutable size : int option;
  mutable andersen : Hippo_alias.Andersen.t option;
  mutable oracle : Hippo_alias.Oracle.t option;
  mutable static_ :
    (string list option * Hippo_staticcheck.Checker.result) list;
      (* keyed by the entry-point override *)
}

type counter = { mutable computes : int; mutable hits : int }

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable next_version : int;
  slots : (string, counter) Hashtbl.t;
  slot_order : string list;
}

type view = { cache : t; entry : entry }

let slot_names = [ "size"; "andersen"; "oracle"; "static" ]

let create () =
  let slots = Hashtbl.create 4 in
  List.iter
    (fun n -> Hashtbl.add slots n { computes = 0; hits = 0 })
    slot_names;
  { entries = []; next_version = 0; slots; slot_order = slot_names }

let counter t name = Hashtbl.find t.slots name

let view t prog =
  match List.find_opt (fun e -> e.prog == prog) t.entries with
  | Some entry -> { cache = t; entry }
  | None ->
      let entry =
        {
          version = t.next_version;
          prog;
          size = None;
          andersen = None;
          oracle = None;
          static_ = [];
        }
      in
      t.next_version <- t.next_version + 1;
      t.entries <- entry :: t.entries;
      { cache = t; entry }

let version v = v.entry.version
let program v = v.entry.prog
let versions t = t.next_version

(* ------------------------------------------------------------------ *)

let memo v slot get set compute =
  let c = counter v.cache slot in
  match get v.entry with
  | Some x ->
      c.hits <- c.hits + 1;
      x
  | None ->
      c.computes <- c.computes + 1;
      let x = compute v.entry.prog in
      set v.entry x;
      x

let size v =
  memo v "size"
    (fun e -> e.size)
    (fun e x -> e.size <- Some x)
    Program.size

let andersen v =
  memo v "andersen"
    (fun e -> e.andersen)
    (fun e x -> e.andersen <- Some x)
    Hippo_alias.Andersen.analyze

let oracle v =
  memo v "oracle"
    (fun e -> e.oracle)
    (fun e x -> e.oracle <- Some x)
    (fun _prog -> Hippo_alias.Oracle.full_aa (andersen v))

let static_check ?entries v =
  let c = counter v.cache "static" in
  match List.assoc_opt entries v.entry.static_ with
  | Some r ->
      c.hits <- c.hits + 1;
      r
  | None ->
      c.computes <- c.computes + 1;
      (* the points-to analysis is shared with every other consumer of
         this version — repair, optimize and re-checks all see one run *)
      let r =
        Hippo_staticcheck.Checker.check ~aa:(andersen v) ?entries v.entry.prog
      in
      v.entry.static_ <- (entries, r) :: v.entry.static_;
      r

(* An observed run cannot be answered from the memo (the caller wants the
   hook fired over the converged states), but it still reuses the cached
   Andersen result and feeds the static memo so a later plain
   [static_check] with the same entries is a hit. *)
let static_observed ?entries v ~observe =
  let c = counter v.cache "static" in
  c.computes <- c.computes + 1;
  let r =
    Hippo_staticcheck.Checker.check ~aa:(andersen v) ~observe ?entries
      v.entry.prog
  in
  if List.assoc_opt entries v.entry.static_ = None then
    v.entry.static_ <- (entries, r) :: v.entry.static_;
  r

(* ------------------------------------------------------------------ *)

let andersen_runs t = (counter t "andersen").computes

(* Read-only aggregation across a parallel sweep: each worker domain
   memoizes into its own cache; afterwards the per-domain counters and
   version counts are folded into one cache for reporting. Entries are
   not transferred — version numbers are only unique within the cache
   that minted them, so the merged cache is a statistics sink, never a
   memoization source. *)
let merge_stats ~into src =
  into.next_version <- into.next_version + src.next_version;
  List.iter
    (fun name ->
      let a = counter into name and b = counter src name in
      a.computes <- a.computes + b.computes;
      a.hits <- a.hits + b.hits)
    into.slot_order

let stats t =
  List.map
    (fun n ->
      let c = counter t n in
      (n, c.computes, c.hits))
    t.slot_order

let pp_stats ppf t =
  Fmt.pf ppf "@[<v>versions: %d@,%a@]" (versions t)
    (Fmt.list ~sep:Fmt.cut (fun ppf (n, computes, hits) ->
         Fmt.pf ppf "%-8s computed %d, reused %d" n computes hits))
    (stats t)
