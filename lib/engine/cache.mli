(** Versioned analysis cache.

    The engine's analyses — Andersen points-to, the Full-AA alias
    oracle, static durability summaries, program size — are pure
    functions of the program. Rebuilding them for every pipeline run is
    the dominant cost of ablation sweeps (the same program repaired
    under several configurations) and of re-verification (the static
    residual check after repair). The cache memoizes them per {e program
    version}: a monotonic counter where version 0 is the first program
    registered and the [apply] pass bumps the counter when it produces a
    repaired program. Analyses of a version that did not change are
    never recomputed; registering a new version never invalidates older
    ones, so a sweep that always starts from the original program keeps
    hitting version 0's entries.

    Programs are immutable, so a version is keyed by physical equality
    on the program value: looking up a program already registered
    returns its existing version, anything else registers a fresh one.

    The [andersen_runs] counter exposes how many times the points-to
    analysis actually executed — the observable that lets tests prove an
    ablation sweep computed it exactly once. *)

open Hippo_pmir

type t

val create : unit -> t

(** One registered program version. *)
type view

(** [view t prog] is the version bound to [prog]: the existing one when
    [prog] is already registered (physical equality), otherwise a fresh
    version with a bumped counter. *)
val view : t -> Program.t -> view

val version : view -> int
val program : view -> Program.t

(** Number of registered versions (= final counter value + 1). *)
val versions : t -> int

(* ---- memoized analyses ------------------------------------------- *)

val size : view -> int
val andersen : view -> Hippo_alias.Andersen.t

(** The Full-AA oracle over {!andersen}. *)
val oracle : view -> Hippo_alias.Oracle.t

(** Static durability check, memoized per entry-point list. *)
val static_check :
  ?entries:string list -> view -> Hippo_staticcheck.Checker.result

(** Like {!static_check} but always executes the checker so the
    [observe] hook fires over the converged abstract states (see
    {!Hippo_staticcheck.Checker.check}); reuses the cached Andersen
    result and feeds the static memo, so a later plain {!static_check}
    with the same entries is a hit. *)
val static_observed :
  ?entries:string list ->
  view ->
  observe:
    (func:string ->
    Hippo_staticcheck.Absmem.t ->
    Hippo_pmir.Instr.t ->
    unit) ->
  Hippo_staticcheck.Checker.result

(* ---- instrumentation --------------------------------------------- *)

(** How many times the Andersen analysis actually ran (cache misses). *)
val andersen_runs : t -> int

(** Per-slot [(name, computes, hits)] counters, e.g.
    [("andersen", 1, 3)] after one miss and three hits. *)
val stats : t -> (string * int * int) list

(** [merge_stats ~into src] folds [src]'s counters and version count into
    [into] — the read-only aggregation step after a parallel sweep where
    each worker domain memoized into its own cache. Entries are {e not}
    transferred (version numbers are only unique per minting cache): the
    merged cache reports aggregate statistics and must not be used for
    further memoization. [src] is not modified. *)
val merge_stats : into:t -> t -> unit

val pp_stats : Format.formatter -> t -> unit
