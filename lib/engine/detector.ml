(* First-class bug sources: dynamic interpreter, static checker, unions
   and preset report lists, all producing the same outcome shape. *)

open Hippo_pmcheck

type choice = Dynamic | Static | Both

let choice_name = function
  | Dynamic -> "dynamic"
  | Static -> "static"
  | Both -> "both"

let choice_of_string = function
  | "dynamic" -> Some Dynamic
  | "static" -> Some Static
  | "both" -> Some Both
  | _ -> None

type outcome = {
  bugs : Report.bug list;
  site_stats : Sitestats.t option;
  trace_events : int;
  checker_stats : Hippo_staticcheck.Checker.stats option;
}

type t = {
  name : string;
  detect :
    Cache.view ->
    workload:(Interp.t -> unit) option ->
    config:Interp.config ->
    outcome;
}

let dynamic =
  {
    name = "dynamic";
    detect =
      (fun view ~workload ~config ->
        match workload with
        | None ->
            invalid_arg
              "Detector.dynamic: the dynamic bug finder needs a workload"
        | Some workload ->
            let cfg = { config with Interp.trace = true } in
            let t = Interp.create cfg (Cache.program view) in
            (try workload t with Interp.Stopped_at_crash -> ());
            Interp.exit_check t;
            {
              bugs = Interp.bugs t;
              site_stats = Some (Interp.site_stats t);
              trace_events = List.length (Interp.trace t);
              checker_stats = None;
            });
  }

let static_ ?entries () =
  {
    name = "static";
    detect =
      (fun view ~workload:_ ~config:_ ->
        let r = Cache.static_check ?entries view in
        {
          bugs = r.Hippo_staticcheck.Checker.bugs;
          site_stats = None;
          trace_events = 0;
          checker_stats = Some r.Hippo_staticcheck.Checker.stats;
        });
  }

let union a b =
  {
    name = a.name ^ "+" ^ b.name;
    detect =
      (fun view ~workload ~config ->
        let ra = a.detect view ~workload ~config in
        let rb = b.detect view ~workload ~config in
        let merge oa ob = match oa with Some _ -> oa | None -> ob in
        {
          bugs = Report.dedup (ra.bugs @ rb.bugs);
          site_stats = merge ra.site_stats rb.site_stats;
          trace_events = max ra.trace_events rb.trace_events;
          checker_stats = merge ra.checker_stats rb.checker_stats;
        });
  }

let preset ?site_stats bugs =
  {
    name = "preset";
    detect =
      (fun _view ~workload:_ ~config:_ ->
        { bugs; site_stats; trace_events = 0; checker_stats = None });
  }

let of_choice ?entries = function
  | Dynamic -> dynamic
  | Static -> static_ ?entries ()
  | Both -> union dynamic (static_ ?entries ())
