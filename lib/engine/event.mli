(** Structured per-pass engine events.

    Every pass execution produces one event: which pass ran, against
    which program version, how long it took, and what it did (counters)
    — the raw material for the per-phase breakdown tables in bench
    output and for the JSON-lines trace files written by the CLI's
    [--trace-out] flag. Events are plain data; rendering (JSON or a
    formatted table) is separate so the same stream serves both. *)

type t = {
  pass : string;  (** pass name, e.g. ["locate"] *)
  target : string;  (** the repair target's name *)
  version : int;  (** program version the pass started from *)
  parallel : int;  (** domains the pass fanned out over (1 = serial) *)
  dur_s : float;  (** wall-clock duration of the pass *)
  counters : (string * int) list;  (** e.g. [("bugs", 3)] *)
  notes : (string * string) list;  (** e.g. [("detector", "dynamic")] *)
}

(** One JSON object per event (no trailing newline):
    [{"pass":…,"target":…,"version":…,"parallel":…,"dur_s":…,"counters":{…},"notes":{…}}] *)
val to_json : t -> string

(** Write the events as JSON-lines, one event per line, in order. *)
val write_jsonl : string -> t list -> unit

(** Per-phase breakdown: aggregate the events by pass name (first-seen
    order) and render runs, total/mean wall-clock time and the summed
    counters as an aligned table. *)
val pp_table : Format.formatter -> t list -> unit

(** Sum of all pass durations, in seconds. *)
val total_time : t list -> float
