(** Post-repair validation (§6.1's methodology).

    Two executable counterparts of the paper's guarantees:

    - {e effectiveness}: re-running the bug finder on the repaired program
      under the same workload reports zero durability bugs;
    - {e do no harm}: on the bug-free execution the repaired program is
      observationally identical to the original — same emitted outputs,
      same final working PM contents. *)

open Hippo_pmir
open Hippo_pmcheck

type outcome = {
  residual_bugs : Report.bug list;
  outputs_match : bool;
  pm_working_match : bool;
  crash_consistent_improved : bool option;
      (** set by callers that also run crash simulation *)
}

val harm_free : outcome -> bool
val effective : outcome -> bool

(** [check ~jobs ~workload ~config ~original ~repaired] replays the
    workload on both programs and compares. [jobs > 1] runs the two
    executions on separate domains (they are independent interpreter
    instances); the outcome is identical to the serial run. A workload
    that stops at a crash point ({!Interp.Stopped_at_crash}) skips the
    implicit at-exit check: the run never exited, so at-exit reports
    would be phantom residual bugs. *)
val check :
  jobs:int ->
  workload:(Interp.t -> unit) ->
  config:Interp.config ->
  original:Program.t ->
  repaired:Program.t ->
  outcome

val pp : Format.formatter -> outcome -> unit
