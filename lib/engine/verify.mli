(** Post-repair validation (§6.1's methodology).

    Two executable counterparts of the paper's guarantees:

    - {e effectiveness}: re-running the bug finder on the repaired program
      under the same workload reports zero durability bugs;
    - {e do no harm}: on the bug-free execution the repaired program is
      observationally identical to the original — same emitted outputs,
      same final working PM contents. *)

open Hippo_pmir
open Hippo_pmcheck

type outcome = {
  residual_bugs : Report.bug list;
  outputs_match : bool;
  pm_working_match : bool;
  crash_consistent_improved : bool option;
      (** set by callers that also run crash simulation *)
}

val harm_free : outcome -> bool
val effective : outcome -> bool

(** [check ~jobs ~workload ~config ~original ~repaired] replays the
    workload on both programs and compares. [jobs > 1] runs the two
    executions on separate domains (they are independent interpreter
    instances); the outcome is identical to the serial run. A workload
    that stops at a crash point ({!Interp.Stopped_at_crash}) skips the
    implicit at-exit check: the run never exited, so at-exit reports
    would be phantom residual bugs. *)
val check :
  jobs:int ->
  workload:(Interp.t -> unit) ->
  config:Interp.config ->
  original:Program.t ->
  repaired:Program.t ->
  outcome

type crash_report = {
  original_consistent : bool;
  repaired_consistent : bool;
  original_stats : Hippo_pmcheck.Crashsim.stats;
  repaired_stats : Hippo_pmcheck.Crashsim.stats;
}

(** The repair turned a crash-inconsistent program consistent. *)
val crash_improved : crash_report -> bool

(** [check_crash_consistency ~config ~setup ~checker ~checker_args
    ~original ~repaired ()] sweeps every crash point of both programs
    (single-pass by default) and reports whether each recovers at all of
    them. The sweeps share one memo table keyed under the original's
    signature — sound because a harm-free repair preserves working-image
    semantics, so the two checkers agree on every image; durable images
    the repair leaves unchanged are recovered once, not twice. [memo]
    extends the sharing across calls (e.g. candidate repairs of one
    program). *)
val check_crash_consistency :
  ?jobs:int ->
  ?strategy:Hippo_pmcheck.Crashsim.strategy ->
  ?memo:Hippo_pmcheck.Crashsim.Memo.t ->
  config:Interp.config ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  original:Program.t ->
  repaired:Program.t ->
  unit ->
  crash_report

(** Fold a crash report into an outcome, setting
    [crash_consistent_improved] to whether the {e repaired} program
    recovers at every crash point. *)
val with_crash_report : outcome -> crash_report -> outcome

val pp : Format.formatter -> outcome -> unit
