(* The pass-manager engine: the six Fig. 2 passes over the shared
   context, each timed and evented. See engine.mli for the contract. *)

open Hippo_pmcheck

let flag b = if b then 1 else 0

(* ------------------------------------------------------------------ *)
(* Pass definitions *)

let locate =
  Pass.make "locate" (fun ctx ->
      let open Context in
      let outcome =
        ctx.detector.Detector.detect ctx.input ~workload:ctx.workload
          ~config:ctx.config
      in
      ctx.bugs <- outcome.Detector.bugs;
      ctx.site_stats <- outcome.Detector.site_stats;
      ctx.trace_events <- outcome.Detector.trace_events;
      ctx.checker_stats <- outcome.Detector.checker_stats;
      let counters =
        [
          ("bugs", List.length ctx.bugs);
          ("trace_events", ctx.trace_events);
        ]
        @
        match ctx.checker_stats with
        | Some s ->
            [
              ("summaries_computed",
               s.Hippo_staticcheck.Checker.summaries_computed);
              ("summaries_reused", s.Hippo_staticcheck.Checker.summary_hits);
            ]
        | None -> []
      in
      (counters, [ ("detector", ctx.detector.Detector.name) ]))

let compute =
  Pass.make "compute" (fun ctx ->
      let open Context in
      ctx.per_bug <- Compute.phase1 (program ctx) ctx.bugs;
      ctx.raw_fix_count <-
        List.fold_left (fun n (_, fs) -> n + List.length fs) 0 ctx.per_bug;
      ([ ("raw_fixes", ctx.raw_fix_count) ], []))

(* Reduction disabled: one reduced entry per raw fix, provenance kept. *)
let no_reduction per_bug =
  List.concat_map
    (fun (bug, fixes) ->
      List.map (fun fix -> { Reduce.fix; bugs = [ bug ] }) fixes)
    per_bug

let reduce =
  Pass.make "reduce" (fun ctx ->
      let open Context in
      ctx.reduced <-
        (if ctx.options.reduction then Reduce.phase2 (program ctx) ctx.per_bug
         else no_reduction ctx.per_bug);
      ( [
          ("fixes", List.length ctx.reduced);
          ("eliminated", ctx.raw_fix_count - List.length ctx.reduced);
        ],
        [ ("reduction", if ctx.options.reduction then "on" else "off") ] ))

let hoist =
  Pass.make "hoist" (fun ctx ->
      let open Context in
      let notes =
        if ctx.options.hoisting then begin
          let oracle = Context.oracle ctx in
          let plan, decisions =
            Heuristic.phase3 oracle (program ctx) ctx.reduced
          in
          ctx.plan <- plan;
          ctx.decisions <- decisions;
          [ ("oracle", oracle.Hippo_alias.Oracle.name) ]
        end
        else begin
          ctx.plan <- Heuristic.phase3_disabled ctx.reduced;
          ctx.decisions <- [];
          [ ("hoisting", "off") ]
        end
      in
      ( [
          ("fixes", List.length ctx.plan.Fix.fixes);
          ("hoisted", Fix.count_hoisted ctx.plan);
          ("intra", Fix.count_intra ctx.plan);
        ],
        notes ))

let apply_ =
  Pass.make "apply" (fun ctx ->
      let open Context in
      let oracle = Context.oracle ctx in
      let repaired, stats =
        Apply.apply ~reuse:ctx.options.clone_reuse ~style:ctx.options.style
          ~oracle (program ctx) ctx.plan
      in
      (* Register the rewritten program as a new version: this is the
         bump that keys all downstream analyses off the fresh program
         while leaving the input version's cache entries warm. *)
      let view = Cache.view ctx.cache repaired in
      ctx.repaired <- Some view;
      ctx.apply_stats <- Some stats;
      ( [
          ("clones_created", stats.Apply.clones_created);
          ("instrs_added", stats.Apply.instrs_added);
          ("output_instrs", Cache.size view);
          ("output_version", Cache.version view);
        ],
        [] ))

(* The one parallel pass: with [options.jobs > 1] the original and
   repaired workload executions run on separate domains (independent
   interpreter instances over immutable programs); results are collected
   in a fixed order, so the outcome is identical to the serial run. *)
let verify_jobs (ctx : Context.t) =
  match ctx.Context.workload with
  | Some _ -> min 2 ctx.Context.options.Context.jobs
  | None -> 1

let verify_ =
  Pass.make ~parallel:verify_jobs "verify" (fun ctx ->
      let open Context in
      let repaired =
        match ctx.repaired with
        | Some v -> v
        | None -> invalid_arg "engine: verify scheduled before apply"
      in
      match ctx.workload with
      | Some workload ->
          let outcome =
            Verify.check ~jobs:(verify_jobs ctx) ~workload ~config:ctx.config
              ~original:(program ctx) ~repaired:(Cache.program repaired)
          in
          ctx.verification <- Some outcome;
          ( [
              ("residual_bugs", List.length outcome.Verify.residual_bugs);
              ("outputs_match", flag outcome.Verify.outputs_match);
              ("pm_working_match", flag outcome.Verify.pm_working_match);
            ],
            [ ("mode", "dynamic") ] )
      | None ->
          let residual =
            (Cache.static_check ?entries:ctx.static_entries repaired)
              .Hippo_staticcheck.Checker.bugs
          in
          ctx.residual_static <- Some residual;
          ([ ("residual_bugs", List.length residual) ], [ ("mode", "static") ]))

let passes = [ locate; compute; reduce; hoist; apply_; verify_ ]

(* ------------------------------------------------------------------ *)
(* Optimizer pipeline: analyze / apply / verify over the input version.
   Same pass machinery, so runs are evented and timed like repairs. *)

let opt_analyze =
  Pass.make "opt-analyze" (fun ctx ->
      let open Context in
      let a =
        Optimize.analyze ~cache:ctx.cache ?entries:ctx.static_entries
          (program ctx)
      in
      ctx.opt_analysis <- Some a;
      ( [
          ("bugs", List.length a.Optimize.a_bugs);
          ("candidates", List.length a.Optimize.a_removals);
        ],
        List.map
          (fun r ->
            ( Optimize.rule_name r.Optimize.r_rule,
              Fmt.str "%a" Optimize.pp_removal r ))
          a.Optimize.a_removals ))

let opt_apply =
  Pass.make "opt-apply" (fun ctx ->
      let open Context in
      let a =
        match ctx.opt_analysis with
        | Some a -> a
        | None -> invalid_arg "engine: opt-apply scheduled before opt-analyze"
      in
      let view =
        match a.Optimize.a_removals with
        | [] -> ctx.input
        | removals ->
            Cache.view ctx.cache (Optimize.rewrite (program ctx) removals)
      in
      ctx.optimized <- Some view;
      ( [
          ("removed", List.length a.Optimize.a_removals);
          ("output_instrs", Cache.size view);
          ("output_version", Cache.version view);
        ],
        [] ))

let opt_verify =
  Pass.make "opt-verify" (fun ctx ->
      let open Context in
      let a = Option.get ctx.opt_analysis in
      let view = Option.get ctx.optimized in
      let before =
        Hippo_perfmodel.Timed.static_counts (program ctx)
      in
      let removals = a.Optimize.a_removals in
      let residual =
        if removals = [] then a.Optimize.a_bugs
        else
          (Cache.static_check ?entries:ctx.static_entries view)
            .Hippo_staticcheck.Checker.bugs
      in
      let equal = Optimize.reports_equal a.Optimize.a_bugs residual in
      (* do no harm: static-report drift reverts the whole rewrite *)
      let view, removals, residual =
        if equal then (view, removals, residual)
        else (ctx.input, [], a.Optimize.a_bugs)
      in
      ctx.optimized <- Some view;
      let outcome =
        {
          Optimize.o_prog = Cache.program view;
          o_removals = removals;
          o_candidates = List.length a.Optimize.a_removals;
          o_before = before;
          o_after = Hippo_perfmodel.Timed.static_counts (Cache.program view);
          o_bugs = a.Optimize.a_bugs;
          o_residual = residual;
          o_report_equal = equal;
          o_reverted = not equal;
        }
      in
      ctx.opt_outcome <- Some outcome;
      ( [
          ("removed", List.length removals);
          ("residual_bugs", List.length residual);
          ("report_equal", flag equal);
          ("reverted", flag (not equal));
        ],
        [ ("mode", "static") ] ))

let opt_passes = [ opt_analyze; opt_apply; opt_verify ]

(* ------------------------------------------------------------------ *)
(* Entry points *)

let run ?options ?cache ?trace ?static_entries ~detector ?workload
    ?(config = Interp.default_config) ~name prog =
  let ctx =
    Context.create ?options ?cache ?trace ?static_entries ~detector ~workload
      ~config ~name prog
  in
  Pass.run_all ctx passes;
  ctx

let optimize ?options ?cache ?trace ?static_entries ?(name = "optimize") prog =
  let ctx =
    Context.create ?options ?cache ?trace ?static_entries
      ~detector:(Detector.preset []) ~workload:None
      ~config:Interp.default_config ~name prog
  in
  Pass.run_all ctx opt_passes;
  ctx

let plan ?options ?cache ?trace ?(name = "plan") ~oracle prog bugs =
  let ctx =
    Context.create ?options ?cache ~detector:(Detector.preset bugs)
      ?trace ~workload:None ~config:Interp.default_config ~name prog
  in
  Context.set_oracle ctx oracle;
  Pass.run_all ctx [ locate; compute; reduce; hoist ];
  let open Context in
  (ctx.plan, ctx.decisions, ctx.raw_fix_count - List.length ctx.reduced)
