(** Phase 2: fix reduction (paper §4.3).

    Merges redundant fixes: two flushes of the same address at the same
    insertion point reduce to one, multiple fences at a point reduce to
    one, and fixes duplicating a persistence operation already present
    right after the insertion point are dropped. The reduced plan keeps
    the provenance multimap [fix -> bugs it discharges]: Phase 3 needs it
    to know when every bug behind a fix has been hoisted away. *)

open Hippo_pmir
open Hippo_pmcheck

type reduced = {
  fix : Fix.intra;
  bugs : Report.bug list;  (** all bugs this single fix discharges *)
}

(** The program already performs this exact operation immediately after
    the insertion point. *)
val already_present : Program.t -> Fix.intra -> bool

val phase2 : Program.t -> (Report.bug * Fix.intra list) list -> reduced list

(** Number of raw fixes eliminated by reduction (ablation metric). *)
val eliminated :
  raw:(Report.bug * Fix.intra list) list -> reduced:reduced list -> int
