(** Phase 1: intraprocedural fix computation (paper §4.2, Fig. 2 step 3).

    Every durability bug admits a safe intraprocedural fix (§3.3):

    - missing-flush — a flush of the store's address immediately after the
      store (a fence already follows dynamically, Theorem 2);
    - missing-fence — a fence immediately after the flush that covered the
      store (Theorem 1);
    - missing-flush&fence — both, flush first (Theorem 3).

    The insertion point "immediately after the store" matters: the store's
    address operand is necessarily still live there, so the inserted flush
    can reuse it verbatim. *)

open Hippo_pmir
open Hippo_pmcheck

exception Cannot_fix of string

let cannot_fix fmt = Fmt.kstr (fun m -> raise (Cannot_fix m)) fmt

let store_addr (prog : Program.t) (iid : Iid.t) : Value.t =
  match Program.find_instr prog iid with
  | Some i -> (
      match Instr.op i with
      | Instr.Store { addr; _ } -> addr
      | _ -> cannot_fix "trace store event %a is not a store" Iid.pp iid)
  | None -> cannot_fix "no instruction %a in program" Iid.pp iid

(** Intraprocedural fixes for one bug, in insertion order. *)
let fixes_for (prog : Program.t) (bug : Report.bug) : Fix.intra list =
  let flush_fix () =
    {
      Fix.after = bug.store.iid;
      action =
        Fix.Add_flush
          {
            addr = store_addr prog bug.store.iid;
            size = bug.store.size;
            kind = Instr.Clwb;
          };
    }
  in
  match bug.kind with
  | Report.Missing_flush -> [ flush_fix () ]
  | Report.Missing_flush_fence ->
      [
        flush_fix ();
        { Fix.after = bug.store.iid; action = Fix.Add_fence { kind = Instr.Sfence } };
      ]
  | Report.Missing_fence ->
      let after =
        match bug.ordering_flush with
        | Some flush_iid -> flush_iid
        | None ->
            (* No flush recorded (e.g. a nontemporal store): order at the
               store itself. *)
            bug.store.iid
      in
      [ { Fix.after; action = Fix.Add_fence { kind = Instr.Sfence } } ]

(** [phase1 prog bugs] computes, for each bug, its naive intraprocedural
    fixes. Returns [(bug, fixes)] pairs. *)
let phase1 prog (bugs : Report.bug list) : (Report.bug * Fix.intra list) list =
  List.map (fun b -> (b, fixes_for prog b)) bugs
