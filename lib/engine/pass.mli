(** The pass abstraction.

    A pass is a named unit of pipeline work over the shared
    {!Context.t}: it reads what earlier passes produced, mutates the
    context, and returns counters describing what it did. The runner
    times every pass and emits one structured {!Event.t} per execution,
    so ordering, timing and provenance are uniform across all pipeline
    variants instead of hand-coded per driver entry point. *)

type t = {
  name : string;
  run : Context.t -> (string * int) list * (string * string) list;
      (** mutate the context; return (counters, notes) for the event *)
  parallel : Context.t -> int;
      (** domains the pass will fan out over, recorded in its event;
          defaults to a constant 1 (serial) *)
}

val make :
  ?parallel:(Context.t -> int) ->
  string ->
  (Context.t -> (string * int) list * (string * string) list) ->
  t

(** Run one pass: record the start version, time [run], emit the event. *)
val execute : Context.t -> t -> unit

(** Run the passes in order. *)
val run_all : Context.t -> t list -> unit
