(** Wall-clock seconds without a Unix dependency: monotonic-enough timing
    for the offline-overhead experiment (Fig. 5). *)

let now () = Sys.time ()
