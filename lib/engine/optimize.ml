(* Bentō-style flush/fence optimizer (see optimize.mli and DESIGN §12).

   Two analyses cooperate, both fed by a single observed run of the
   static checker (Andersen comes memoized from the versioned cache):

   - the {e observation} layer replays each flush/fence transfer on the
     converged abstract states the checker visited and demands it be the
     identity everywhere — the guarantee that deletion cannot perturb the
     checker's own fixpoint, i.e. the static bug reports;
   - the {e strict} layer is a separate intraprocedural must-analysis
     (clean lines / pending lines / write-pending-queue flag) whose
     entry assumptions are unconditionally pessimistic — the guarantee
     that deletion is a dynamic no-op on every execution, so crash-sweep
     verdicts cannot drift.

   A site is removed only when both agree. The pipeline additionally
   re-checks the optimized program and reverts wholesale if the static
   reports are not byte-identical. *)

open Hippo_pmir
open Hippo_pmcheck
module SC = Hippo_staticcheck
module Andersen = Hippo_alias.Andersen
module ISet = Andersen.ISet
module SSet = Set.Make (String)

(* Cache lines identified as (abstract object, line index). *)
module LSet = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type rule =
  | Covered_flush
  | Dominated_fence
  | Coalesced_fence
  | Covered_persist
  | Volatile_flush

let rule_name = function
  | Covered_flush -> "covered-flush"
  | Dominated_fence -> "dominated-fence"
  | Coalesced_fence -> "coalesced-fence"
  | Covered_persist -> "covered-persist"
  | Volatile_flush -> "volatile-flush"

type removal = {
  r_iid : Iid.t;
  r_loc : Loc.t;
  r_func : string;
  r_what : string;
  r_rule : rule;
}

let pp_removal ppf r =
  Fmt.pf ppf "%s: %s at %a [%s]" r.r_func r.r_what Loc.pp r.r_loc
    (rule_name r.r_rule)

(* ------------------------------------------------------------------ *)
(* Observation accumulators *)

(* May-effect of one instruction on PM cache lines, joined over every
   observed calling context. *)
type eff = Enone | Elines of LSet.t | Eobjs of ISet.t | Eany

let oids_of_lines ls = LSet.fold (fun (oid, _) s -> ISet.add oid s) ls

let eff_join a b =
  match (a, b) with
  | Enone, x | x, Enone -> x
  | Eany, _ | _, Eany -> Eany
  | Elines a, Elines b -> Elines (LSet.union a b)
  | Eobjs a, Eobjs b -> Eobjs (ISet.union a b)
  | Elines l, Eobjs o | Eobjs o, Elines l -> Eobjs (oids_of_lines l o)

type acc = {
  mutable visits : int;
  mutable pm_free : bool;  (* provably no PM target, at every visit *)
  mutable may : eff;
  mutable must : LSet.t option;
      (* the exact line set, identical at every visit — only for
         single-instance objects (PM region, globals), see [resolve] *)
  mutable must_init : bool;
  mutable identity : bool;
      (* the checker transfer was the identity on every observed state *)
}

let fresh_acc () =
  {
    visits = 0;
    pm_free = true;
    may = Enone;
    must = None;
    must_init = false;
    identity = true;
  }

(* Worst-case stand-in for instructions the checker never visited. Never
   mutated. *)
let dead_acc =
  {
    visits = 0;
    pm_free = false;
    may = Eany;
    must = None;
    must_init = true;
    identity = false;
  }

type t = {
  ctx : SC.Transfer.ctx;
  info : SC.Summary.info SC.Summary.SMap.t;
  taccs : acc Iid.Tbl.t;
}

let acc_for t iid =
  match Iid.Tbl.find_opt t.taccs iid with
  | Some a -> a
  | None ->
      let a = fresh_acc () in
      Iid.Tbl.add t.taccs iid a;
      a

let acc_of t iid =
  match Iid.Tbl.find_opt t.taccs iid with Some a -> a | None -> dead_acc

(* A line may only be promoted to clean/pending when its abstract object
   has exactly one runtime instance: allocation-site objects (pm_alloc /
   malloc / alloca) can stand for several live allocations, and a
   flush+fence of one instance must not certify the others. *)
let single_instance t oid =
  match (Andersen.obj t.ctx.SC.Transfer.aa oid).Andersen.site with
  | `Pm_region | `Global _ -> true
  | `Alloca _ | `Malloc _ | `Pm_alloc _ -> false

(* Resolve one access: which PM lines can it touch, and do we know them
   exactly? [`Lines (ls, exact)] — [exact] means a single-instance
   singleton object at a known offset, i.e. [ls] is the precise runtime
   coverage. *)
let resolve t sym ~size =
  match sym with
  | SC.Absmem.Int _ -> `No_pm
  | _ -> (
      match SC.Transfer.sym_targets t.ctx sym with
      | None -> `Any
      | Some (oids, off) -> (
          let pm = SC.Transfer.pm_only t.ctx oids in
          if ISet.is_empty pm then `No_pm
          else
            match off with
            | Some o when o >= 0 && size > 0 ->
                let lo = o / Layout.cache_line
                and hi = (o + size - 1) / Layout.cache_line in
                let lines =
                  ISet.fold
                    (fun oid ls ->
                      let rec add l ls =
                        if l > hi then ls else add (l + 1) (LSet.add (oid, l) ls)
                      in
                      add lo ls)
                    pm LSet.empty
                in
                let exact =
                  ISet.cardinal pm = 1 && single_instance t (ISet.choose pm)
                in
                `Lines (lines, exact)
            | _ -> `Objs pm))

let meet_must a m =
  if not a.must_init then begin
    a.must_init <- true;
    a.must <- m
  end
  else
    match (a.must, m) with
    | Some x, Some y when LSet.equal x y -> ()
    | _ -> a.must <- None

let record_target a = function
  | `No_pm -> meet_must a (Some LSet.empty)
  | `Lines (ls, exact) ->
      a.pm_free <- false;
      a.may <- eff_join a.may (Elines ls);
      meet_must a (if exact then Some ls else None)
  | `Objs pm ->
      a.pm_free <- false;
      a.may <- eff_join a.may (Eobjs pm);
      meet_must a None
  | `Any ->
      a.pm_free <- false;
      a.may <- Eany;
      meet_must a None

(* Degrade an unknown-length range access to its object set. *)
let whole_object = function
  | `Lines (ls, _) -> `Objs (oids_of_lines ls ISet.empty)
  | x -> x

let int_len = function SC.Absmem.Int n when n > 0 -> Some n | _ -> None

(* The checker's reporting-pass hook: accumulate target resolution per
   instruction and replay flush/fence transfers to test for identity. *)
let observe t ~func st (i : Instr.t) =
  let ev v = SC.Transfer.eval t.ctx ~func st v in
  let iid = Instr.iid i in
  let check_identity a st' =
    if not (SC.Absmem.equal st st') then a.identity <- false
  in
  match Instr.op i with
  | Instr.Store { addr; size; _ } ->
      let a = acc_for t iid in
      a.visits <- a.visits + 1;
      record_target a (resolve t (ev addr) ~size)
  | Instr.Flush { kind; addr } ->
      let a = acc_for t iid in
      a.visits <- a.visits + 1;
      let sym = ev addr in
      record_target a (resolve t sym ~size:1);
      check_identity a (SC.Transfer.flush t.ctx st ~iid ~kind sym)
  | Instr.Fence _ ->
      let a = acc_for t iid in
      a.visits <- a.visits + 1;
      check_identity a (SC.Transfer.fence st)
  | Instr.Call { callee = "pmem_drain"; _ } ->
      let a = acc_for t iid in
      a.visits <- a.visits + 1;
      check_identity a (SC.Transfer.fence st)
  | Instr.Call { callee = ("pmem_flush" | "pmem_persist") as callee; args; _ }
    ->
      let a = acc_for t iid in
      a.visits <- a.visits + 1;
      let arg n =
        match List.nth_opt args n with Some v -> ev v | None -> SC.Absmem.Unknown
      in
      let addr = arg 0 and len = arg 1 in
      record_target a
        (match int_len len with
        | Some l -> resolve t addr ~size:l
        | None -> whole_object (resolve t addr ~size:1));
      let st1 = SC.Transfer.flush_range t.ctx st ~iid ~kind:Instr.Clwb addr len in
      check_identity a
        (if String.equal callee "pmem_persist" then SC.Transfer.fence st1
         else st1)
  | Instr.Call { callee = "pmem_memcpy_persist"; args; _ } ->
      let a = acc_for t iid in
      a.visits <- a.visits + 1;
      let arg n =
        match List.nth_opt args n with Some v -> ev v | None -> SC.Absmem.Unknown
      in
      record_target a
        (match int_len (arg 2) with
        | Some l -> resolve t (arg 0) ~size:l
        | None -> whole_object (resolve t (arg 0) ~size:1))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Strict must-analysis *)

(* Per program point: [clean] — lines where every store so far is durable
   on every path; [pending] — lines whose undurable data is entirely in
   flight (flushed, awaiting fence); [wpq] — a flush or nontemporal
   store may have executed since the last fence on some path (entry
   assumption: true — the caller may have flushes in flight, which keeps
   fence coalescing same-function-dominated and unconditionally sound). *)
type sstate = { clean : LSet.t; pending : LSet.t; wpq : bool }

let sentry = { clean = LSet.empty; pending = LSet.empty; wpq = true }

let sjoin a b =
  {
    clean = LSet.inter a.clean b.clean;
    pending = LSet.inter a.pending b.pending;
    wpq = a.wpq || b.wpq;
  }

let sequal a b =
  LSet.equal a.clean b.clean && LSet.equal a.pending b.pending && a.wpq = b.wpq

let subtract st = function
  | Enone -> st
  | Elines ls ->
      {
        st with
        clean = LSet.diff st.clean ls;
        pending = LSet.diff st.pending ls;
      }
  | Eobjs oids ->
      let keep (oid, _) = not (ISet.mem oid oids) in
      {
        st with
        clean = LSet.filter keep st.clean;
        pending = LSet.filter keep st.pending;
      }
  | Eany -> { st with clean = LSet.empty; pending = LSet.empty }

(* Functions that may transitively execute a flush or nontemporal store
   (syntactic closure over the call graph; the libpmem runtime bodies
   carry their own [Flush] instructions, so no name special-casing). *)
let may_flush_set prog =
  let funcs = Program.funcs prog in
  let direct f =
    Func.fold_instrs
      (fun acc (i : Instr.t) ->
        acc
        ||
        match Instr.op i with
        | Instr.Flush _ -> true
        | Instr.Store { nontemporal; _ } -> nontemporal
        | _ -> false)
      false f
  in
  let set =
    ref
      (List.fold_left
         (fun s f -> if direct f then SSet.add (Func.name f) s else s)
         SSet.empty funcs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let name = Func.name f in
        if not (SSet.mem name !set) then
          let calls_flusher =
            List.exists
              (fun (_, callee, _) -> SSet.mem callee !set)
              (Func.call_sites f)
          in
          if calls_flusher then begin
            set := SSet.add name !set;
            changed := true
          end)
      funcs
  done;
  !set

let strict_fence st =
  { clean = LSet.union st.clean st.pending; pending = LSet.empty; wpq = false }

let strict_flush ~kind ac st =
  if ac.pm_free then st
  else
    match ac.must with
    | Some ls when LSet.subset ls st.clean -> st (* flush of clean lines *)
    | Some ls -> (
        match kind with
        | Instr.Clflush ->
            (* serialized: the lines' dirty data is durable outright *)
            {
              st with
              clean = LSet.union st.clean ls;
              pending = LSet.diff st.pending ls;
            }
        | Instr.Clwb | Instr.Clflushopt ->
            { st with pending = LSet.union st.pending ls; wpq = true })
    | None -> (
        match kind with
        | Instr.Clflush -> st
        | Instr.Clwb | Instr.Clflushopt -> { st with wpq = true })

let strict_step t mf st (i : Instr.t) =
  let iid = Instr.iid i in
  match Instr.op i with
  | Instr.Store { nontemporal; _ } ->
      let ac = acc_of t iid in
      if ac.pm_free then st
      else
        let before = LSet.union st.clean st.pending in
        let st = subtract st ac.may in
        if nontemporal then
          (* straight to the write-pending queue — but a line is only
             fully in flight if no older undurable store shares it *)
          let pending =
            match ac.must with
            | Some ls when LSet.subset ls before -> LSet.union st.pending ls
            | _ -> st.pending
          in
          { st with pending; wpq = true }
        else st
  | Instr.Flush { kind; _ } -> strict_flush ~kind (acc_of t iid) st
  | Instr.Fence _ -> strict_fence st
  | Instr.Call { callee = "pmem_drain"; _ } -> strict_fence st
  | Instr.Call { callee = "pmem_flush"; _ } ->
      strict_flush ~kind:Instr.Clwb (acc_of t iid) st
  | Instr.Call { callee = "pmem_persist"; _ } ->
      strict_fence (strict_flush ~kind:Instr.Clwb (acc_of t iid) st)
  | Instr.Call { callee = "pmem_memcpy_persist"; _ } ->
      let ac = acc_of t iid in
      if ac.pm_free then strict_fence st (* still drains *)
      else
        let st = strict_fence (subtract st ac.may) in
        (match ac.must with
        | Some ls -> { st with clean = LSet.union st.clean ls }
        | None -> st)
  | Instr.Call { callee; _ } ->
      if Program.is_intrinsic callee then st
      else (
        match Program.find t.ctx.SC.Transfer.prog callee with
        | None -> { clean = LSet.empty; pending = LSet.empty; wpq = true }
        | Some _ ->
            let info = SC.Summary.info_for t.info callee in
            let st =
              if info.SC.Summary.opaque then
                { st with clean = LSet.empty; pending = LSet.empty }
              else subtract st (Eobjs info.SC.Summary.touched)
            in
            let flushes = SSet.mem callee mf in
            if info.SC.Summary.may_fence then
              {
                clean = LSet.union st.clean st.pending;
                pending = LSet.empty;
                wpq = flushes;
              }
            else { st with wpq = st.wpq || flushes })
  | _ -> st

(* Worklist fixpoint over one function's blocks, then a final sweep over
   the converged in-states recording the strict state at every
   instruction into [states]. *)
let strict_func t mf states f =
  let entry = (Func.entry f).Func.label in
  let in_states : (string, sstate) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace in_states entry sentry;
  let work = Queue.create () in
  Queue.add entry work;
  let propagate target st =
    match Hashtbl.find_opt in_states target with
    | None ->
        Hashtbl.replace in_states target st;
        Queue.add target work
    | Some old ->
        let j = sjoin old st in
        if not (sequal j old) then begin
          Hashtbl.replace in_states target j;
          Queue.add target work
        end
  in
  let exec ~record label st0 =
    let block = Option.get (Func.find_block f label) in
    ignore
      (List.fold_left
         (fun st (i : Instr.t) ->
           if record then Iid.Tbl.replace states (Instr.iid i) st;
           match Instr.op i with
           | Instr.Br { target } ->
               if not record then propagate target st;
               st
           | Instr.Condbr { if_true; if_false; _ } ->
               if not record then begin
                 propagate if_true st;
                 propagate if_false st
               end;
               st
           | Instr.Ret _ -> st
           | _ -> strict_step t mf st i)
         st0 block.Func.instrs)
  in
  while not (Queue.is_empty work) do
    let label = Queue.pop work in
    match Hashtbl.find_opt in_states label with
    | None -> ()
    | Some st -> exec ~record:false label st
  done;
  Hashtbl.iter (fun label st -> exec ~record:true label st) in_states

(* ------------------------------------------------------------------ *)
(* Fence coalescing windows.

   In this model the only durability-observable events are [Crash]
   instructions: crash sweeps, the fault-injecting simulator and the
   crash-image verifiers all crash exactly there (or at op boundaries,
   i.e. after a [Ret]). A fence may therefore be deleted whenever every
   path from it reaches a {e kept} fence without passing a [Crash], a
   [Ret], or a call that might crash (or not return) — its pending
   write-backs commit at the later fence instead, with the {e same}
   snapshots (pstate snapshots are taken at flush time, so commits
   commute with intervening stores and flushes), leaving every crash
   image bit-identical. This is the epoch view of Bentō: within a
   crash-free window, one fence ends the epoch as well as two. *)

(* Syntactic closure: functions that might execute a [Crash] (or call
   out of the program / abort — conservatively treated as crashing). *)
let has_crash_set prog =
  let funcs = Program.funcs prog in
  let known callee =
    Program.is_intrinsic callee || Program.mem prog callee
  in
  let direct f =
    Func.fold_instrs
      (fun acc (i : Instr.t) ->
        acc
        ||
        match Instr.op i with
        | Instr.Crash -> true
        | Instr.Call { callee = "abort"; _ } -> true
        | Instr.Call { callee; _ } -> not (known callee)
        | _ -> false)
      false f
  in
  let set =
    ref
      (List.fold_left
         (fun s f -> if direct f then SSet.add (Func.name f) s else s)
         SSet.empty funcs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let name = Func.name f in
        if not (SSet.mem name !set) then
          if
            List.exists
              (fun (_, callee, _) -> SSet.mem callee !set)
              (Func.call_sites f)
          then begin
            set := SSet.add name !set;
            changed := true
          end)
      funcs
  done;
  !set

let fencing_callees = [ "pmem_drain"; "pmem_persist"; "pmem_memcpy_persist" ]

(* [window_scan prog hc mf ~doomed f rest label] — true when every path
   starting at the instruction list [rest] (the tail of block [label])
   reaches a kept fence before any Crash / Ret / possibly-crashing call.
   [mf] is the must-fence function set (callees guaranteed to fence on
   every path, crash-free); fences in [doomed] are transparent — they
   are being deleted too, so they cannot justify anything. *)
let window_scan prog hc mf ~doomed f rest label =
  let memo : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  let rec instrs visiting = function
    | [] -> false (* no terminator — be conservative *)
    | (i : Instr.t) :: rest -> (
        let kept_fence () = not (Iid.Set.mem (Instr.iid i) doomed) in
        match Instr.op i with
        | Instr.Fence _ -> if kept_fence () then true else instrs visiting rest
        | Instr.Crash -> false
        | Instr.Ret _ -> false
        | Instr.Br { target } -> block visiting target
        | Instr.Condbr { if_true; if_false; _ } ->
            block visiting if_true && block visiting if_false
        | Instr.Call { callee; _ } ->
            if List.mem callee fencing_callees then
              if kept_fence () then true else instrs visiting rest
            else if String.equal callee "abort" then false
            else if Program.is_intrinsic callee then instrs visiting rest
            else if not (Program.mem prog callee) then false
            else if SSet.mem callee mf then true
            else if SSet.mem callee hc then false
            else instrs visiting rest
        | _ -> instrs visiting rest)
  and block visiting lbl =
    match Hashtbl.find_opt memo lbl with
    | Some r -> r
    | None ->
        if SSet.mem lbl visiting then false (* loop with no fence *)
        else
          let r =
            match Func.find_block f lbl with
            | None -> false
            | Some b -> instrs (SSet.add lbl visiting) b.Func.instrs
          in
          Hashtbl.replace memo lbl r;
          r
  in
  instrs (SSet.singleton label) rest

(* Must-fence closure: functions guaranteed to execute a fence on every
   path before returning (and to be crash-free up to it). Computed as a
   monotone fixpoint with the window scanner itself, no doomed set. *)
let must_fence_set prog hc =
  let funcs = Program.funcs prog in
  let set = ref SSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let name = Func.name f in
        if not (SSet.mem name !set) then
          let e = Func.entry f in
          if
            window_scan prog hc !set ~doomed:Iid.Set.empty f e.Func.instrs
              e.Func.label
          then begin
            set := SSet.add name !set;
            changed := true
          end)
      funcs
  done;
  !set

(* ------------------------------------------------------------------ *)
(* Decisions *)

let decide t states prog =
  let hc = has_crash_set prog in
  let mfence = must_fence_set prog hc in
  let mk (i : Instr.t) fname rule =
    {
      r_iid = Instr.iid i;
      r_loc = Instr.loc i;
      r_func = fname;
      r_what = Fmt.str "%a" Instr.pp_op (Instr.op i);
      r_rule = rule;
    }
  in
  (* Stage 1: per-instruction identity rules (observed + strict). Each
     deleted instruction is a no-op on the original program, so these
     decisions cannot invalidate one another. *)
  let stage1 f =
    let fname = Func.name f in
    List.rev
      (Func.fold_instrs
         (fun acc (i : Instr.t) ->
           let iid = Instr.iid i in
           match (Iid.Tbl.find_opt t.taccs iid, Iid.Tbl.find_opt states iid)
           with
           | Some a, Some st when a.visits >= 1 && a.identity ->
               let covered () =
                 match a.must with
                 | Some ls ->
                     (not (LSet.is_empty ls)) && LSet.subset ls st.clean
                 | None -> false
               in
               let r =
                 match Instr.op i with
                 | Instr.Flush _ ->
                     if a.pm_free then Some Volatile_flush
                     else if covered () then Some Covered_flush
                     else None
                 | Instr.Fence _ ->
                     if not st.wpq then Some Dominated_fence else None
                 | Instr.Call { dst = None; callee = "pmem_drain"; _ } ->
                     if not st.wpq then Some Dominated_fence else None
                 | Instr.Call { dst = None; callee = "pmem_flush"; _ } ->
                     if a.pm_free then Some Volatile_flush
                     else if covered () then Some Covered_flush
                     else None
                 | Instr.Call { dst = None; callee = "pmem_persist"; _ } ->
                     if (not st.wpq) && (a.pm_free || covered ()) then
                       Some Covered_persist
                     else None
                 | _ -> None
               in
               (match r with Some r -> mk i fname r :: acc | None -> acc)
           | _ -> acc)
         [] f)
  in
  (* Stage 2: fence coalescing. Processed in reverse program order so a
     window only cites fences whose keep/delete fate is already final;
     doomed fences are transparent to the scan, which extends the
     (crash-free) window to the next kept fence. *)
  let coalesce doomed f =
    let fname = Func.name f in
    let sites =
      List.concat_map
        (fun (b : Func.block) ->
          let rec walk = function
            | [] -> []
            | (i : Instr.t) :: rest ->
                let here =
                  match Instr.op i with
                  | Instr.Fence _ -> [ (i, rest, b.Func.label) ]
                  | Instr.Call { dst = None; callee = "pmem_drain"; _ } ->
                      [ (i, rest, b.Func.label) ]
                  | _ -> []
                in
                here @ walk rest
          in
          walk b.Func.instrs)
        (Func.blocks f)
    in
    List.fold_left
      (fun (doomed, acc) (i, rest, label) ->
        if Iid.Set.mem (Instr.iid i) doomed then (doomed, acc)
        else if window_scan prog hc mfence ~doomed f rest label then
          ( Iid.Set.add (Instr.iid i) doomed,
            mk i fname Coalesced_fence :: acc )
        else (doomed, acc))
      (doomed, []) (List.rev sites)
  in
  List.concat_map
    (fun f ->
      let s1 = stage1 f in
      let doomed =
        List.fold_left
          (fun s r ->
            match r.r_rule with
            (* anything with a fence effect that is going away must not
               justify a coalescing window *)
            | Dominated_fence | Covered_persist -> Iid.Set.add r.r_iid s
            | Covered_flush | Volatile_flush | Coalesced_fence -> s)
          Iid.Set.empty s1
      in
      let _, s2 = coalesce doomed f in
      s1 @ s2)
    (Program.funcs prog)

(* ------------------------------------------------------------------ *)
(* Driver-facing API *)

type analysis = {
  a_bugs : Report.bug list;  (** static reports on the input (baseline) *)
  a_removals : removal list;
  a_checker : SC.Checker.stats;
}

let analyze ?(cache = Cache.create ()) ?entries prog =
  let v = Cache.view cache prog in
  let aa = Cache.andersen v in
  let ctx = SC.Transfer.make_ctx prog aa in
  let info = SC.Summary.modinfo ctx in
  let t = { ctx; info; taccs = Iid.Tbl.create 256 } in
  let result = Cache.static_observed ?entries v ~observe:(observe t) in
  let mf = may_flush_set prog in
  let states : sstate Iid.Tbl.t = Iid.Tbl.create 256 in
  List.iter (strict_func t mf states) (Program.funcs prog);
  {
    a_bugs = result.SC.Checker.bugs;
    a_removals = decide t states prog;
    a_checker = result.SC.Checker.stats;
  }

let rewrite prog removals =
  let doomed =
    List.fold_left (fun s r -> Iid.Set.add r.r_iid s) Iid.Set.empty removals
  in
  let prog' =
    Program.map_funcs
      (Func.map_instrs (fun i ->
           if Iid.Set.mem (Instr.iid i) doomed then [] else [ i ]))
      prog
  in
  Validate.check_exn prog';
  prog'

let report_lines bugs = List.sort String.compare (List.map Report.to_line bugs)
let reports_equal a b = List.equal String.equal (report_lines a) (report_lines b)

type outcome = {
  o_prog : Program.t;  (** the input program when reverted *)
  o_removals : removal list;  (** applied removals; [[]] when reverted *)
  o_candidates : int;
  o_before : Hippo_perfmodel.Timed.static_counts;
  o_after : Hippo_perfmodel.Timed.static_counts;
  o_bugs : Report.bug list;
  o_residual : Report.bug list;
  o_report_equal : bool;
  o_reverted : bool;
}

let run ?(cache = Cache.create ()) ?entries prog =
  let a = analyze ~cache ?entries prog in
  let before = Hippo_perfmodel.Timed.static_counts prog in
  match a.a_removals with
  | [] ->
      {
        o_prog = prog;
        o_removals = [];
        o_candidates = 0;
        o_before = before;
        o_after = before;
        o_bugs = a.a_bugs;
        o_residual = a.a_bugs;
        o_report_equal = true;
        o_reverted = false;
      }
  | removals ->
      let prog' = rewrite prog removals in
      let v' = Cache.view cache prog' in
      let residual = (Cache.static_check ?entries v').SC.Checker.bugs in
      if reports_equal a.a_bugs residual then
        {
          o_prog = prog';
          o_removals = removals;
          o_candidates = List.length removals;
          o_before = before;
          o_after = Hippo_perfmodel.Timed.static_counts prog';
          o_bugs = a.a_bugs;
          o_residual = residual;
          o_report_equal = true;
          o_reverted = false;
        }
      else
        (* do no harm: any static-report drift keeps the input program *)
        {
          o_prog = prog;
          o_removals = [];
          o_candidates = List.length removals;
          o_before = before;
          o_after = before;
          o_bugs = a.a_bugs;
          o_residual = a.a_bugs;
          o_report_equal = false;
          o_reverted = true;
        }

(* Do-no-harm check: byte-identical crash-sweep verdict lists. *)
let crash_verdicts_identical ?config ?jobs ~setup ~checker ~checker_args
    original optimized =
  let sweep p =
    Crashsim.sweep ?config ?jobs p ~setup ~checker ~checker_args
  in
  sweep original = sweep optimized

let pp_outcome ppf o =
  let open Hippo_perfmodel in
  let n rule = List.length (List.filter (fun r -> r.r_rule = rule) o.o_removals) in
  Fmt.pf ppf
    "@[<v>persistence ops: %a -> %a@,removed: %d (%d covered flush, %d \
     dominated fence, %d coalesced fence, %d persist, %d volatile)%s@,static \
     reports: %d -> %d (%s)@]"
    Timed.pp_static_counts o.o_before Timed.pp_static_counts o.o_after
    (List.length o.o_removals)
    (n Covered_flush) (n Dominated_fence) (n Coalesced_fence)
    (n Covered_persist) (n Volatile_flush)
    (if o.o_reverted then " [REVERTED: static reports drifted]" else "")
    (List.length o.o_bugs)
    (List.length o.o_residual)
    (if o.o_report_equal then "identical" else "drifted")
