(* The shared pass context: one mutable record threaded through the
   engine's pass list. Each pass reads the fields earlier passes filled
   in and writes its own; the driver wrappers assemble their public
   result records from the final state. *)

open Hippo_pmcheck

type oracle_choice = Full_aa | Trace_aa

let oracle_name = function Full_aa -> "Full-AA" | Trace_aa -> "Trace-AA"

type options = {
  oracle : oracle_choice;
  hoisting : bool;  (** Phase 3 on/off (off = the H-intra configuration) *)
  reduction : bool;  (** Phase 2 on/off (ablation A2) *)
  clone_reuse : bool;  (** share persistent subprograms (ablation A1) *)
  style : Apply.style;  (** raw clwb/sfence vs portable libpmem calls *)
  jobs : int;
      (** domain budget for parallel passes (verify); 1 = fully serial,
          byte-identical to the historical single-domain pipeline *)
}

let default_options =
  {
    oracle = Full_aa;
    hoisting = true;
    reduction = true;
    clone_reuse = true;
    style = Apply.Direct;
    jobs = 1;
  }

type t = {
  target : string;
  options : options;
  cache : Cache.t;
  input : Cache.view;  (** version of the program being repaired *)
  detector : Detector.t;
  static_entries : string list option;
      (** entry-point override for static residual checking *)
  workload : (Interp.t -> unit) option;
  config : Interp.config;  (** tracing enabled; shared by detect/verify *)
  trace_cb : (Event.t -> unit) option;
      (** streaming event callback, in addition to accumulation *)
  (* ---- filled in by the passes, in order ---- *)
  mutable bugs : Report.bug list;  (* locate *)
  mutable site_stats : Sitestats.t option;
  mutable trace_events : int;
  mutable checker_stats : Hippo_staticcheck.Checker.stats option;
  mutable per_bug : (Report.bug * Fix.intra list) list;  (* compute *)
  mutable raw_fix_count : int;
  mutable reduced : Reduce.reduced list;  (* reduce *)
  mutable plan : Fix.plan;  (* hoist *)
  mutable decisions : Heuristic.decision list;
  mutable oracle : Hippo_alias.Oracle.t option;  (* resolved lazily *)
  mutable repaired : Cache.view option;  (* apply *)
  mutable apply_stats : Apply.stats option;
  mutable verification : Verify.outcome option;  (* verify (dynamic) *)
  mutable residual_static : Report.bug list option;  (* verify (static) *)
  (* ---- optimizer passes (Engine.optimize pipeline) ---- *)
  mutable opt_analysis : Optimize.analysis option;  (* opt-analyze *)
  mutable optimized : Cache.view option;  (* opt-apply *)
  mutable opt_outcome : Optimize.outcome option;
  mutable events : Event.t list;  (* newest first *)
}

let create ?(options = default_options) ?(cache = Cache.create ()) ?trace
    ?static_entries ~detector ~workload ~config ~name prog =
  {
    target = name;
    options;
    cache;
    input = Cache.view cache prog;
    detector;
    static_entries;
    workload;
    config = { config with Interp.trace = true };
    trace_cb = trace;
    bugs = [];
    site_stats = None;
    trace_events = 0;
    checker_stats = None;
    per_bug = [];
    raw_fix_count = 0;
    reduced = [];
    plan = { Fix.fixes = []; per_bug = [] };
    decisions = [];
    oracle = None;
    repaired = None;
    apply_stats = None;
    verification = None;
    residual_static = None;
    opt_analysis = None;
    optimized = None;
    opt_outcome = None;
    events = [];
  }

let program ctx = Cache.program ctx.input

(** Current program version: the repaired version once [apply] ran. *)
let version ctx =
  match ctx.repaired with
  | Some v -> Cache.version v
  | None -> Cache.version ctx.input

let repaired_program ctx = Option.map Cache.program ctx.repaired

let emit ctx event =
  ctx.events <- event :: ctx.events;
  match ctx.trace_cb with Some f -> f event | None -> ()

(** Events in emission order. *)
let events ctx = List.rev ctx.events

(** The alias oracle for this run, resolved once. Full-AA comes from the
    cache (Andersen is shared across runs on the same program version);
    Trace-AA needs dynamic per-site observations — the locate pass's, or
    a dedicated instrumented execution when the detector was static. A
    Trace-AA request with no workload at all is a clear error. *)
let oracle ctx =
  match ctx.oracle with
  | Some o -> o
  | None ->
      let o =
        match ctx.options.oracle with
        | Full_aa -> Cache.oracle ctx.input
        | Trace_aa -> (
            match ctx.site_stats with
            | Some stats -> Hippo_alias.Oracle.trace_aa stats
            | None -> (
                match ctx.workload with
                | Some workload ->
                    let t = Interp.create ctx.config (program ctx) in
                    (try workload t with Interp.Stopped_at_crash -> ());
                    Interp.exit_check t;
                    Hippo_alias.Oracle.trace_aa (Interp.site_stats t)
                | None ->
                    invalid_arg
                      "engine: the Trace-AA oracle needs a workload trace \
                       (site statistics); use Full-AA or supply a workload"))
      in
      ctx.oracle <- Some o;
      o

let set_oracle ctx o = ctx.oracle <- Some o
