(* Named, timed pipeline passes over the shared context. *)

type t = {
  name : string;
  run : Context.t -> (string * int) list * (string * string) list;
  parallel : Context.t -> int;
}

let make ?(parallel = fun _ -> 1) name run = { name; run; parallel }

let execute (ctx : Context.t) pass =
  let version = Context.version ctx in
  let parallel = pass.parallel ctx in
  let started = Unix_time.now () in
  let counters, notes = pass.run ctx in
  let dur_s = Unix_time.now () -. started in
  Context.emit ctx
    {
      Event.pass = pass.name;
      target = ctx.Context.target;
      version;
      parallel;
      dur_s;
      counters;
      notes;
    }

let run_all ctx passes = List.iter (execute ctx) passes
