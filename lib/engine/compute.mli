(** Phase 1: intraprocedural fix computation (paper §4.2, Fig. 2 step 3).

    Every durability bug admits a safe intraprocedural fix (§3.3):
    missing-flush — a flush of the store's address immediately after the
    store (Theorem 2); missing-fence — a fence immediately after the flush
    that covered the store (Theorem 1); missing-flush&fence — both, flush
    first (Theorem 3). *)

open Hippo_pmir
open Hippo_pmcheck

exception Cannot_fix of string
(** raised when a trace report does not correspond to a store in the
    program (a stale or corrupted trace) *)

(** The address operand of a store instruction. *)
val store_addr : Program.t -> Iid.t -> Value.t

(** Intraprocedural fixes for one bug, in insertion order. *)
val fixes_for : Program.t -> Report.bug -> Fix.intra list

(** [(bug, fixes)] for every bug. *)
val phase1 : Program.t -> Report.bug list -> (Report.bug * Fix.intra list) list
