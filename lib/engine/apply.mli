(** Fix application (Fig. 2 step 4): rewrite the program with the final
    plan. Hoists run first, then all intraprocedural insertions in one
    pass; flush insertions at a point precede fence insertions at the same
    point, preserving [X -> F(X) -> M]. The rewritten program is
    re-validated: a structural error here would mean the repair engine
    broke "do no harm". *)

open Hippo_pmir

(** How intraprocedural fixes are spelled (§6.2's discussion): [Direct]
    inserts raw [clwb]/[sfence] instructions (the default); [Portable]
    inserts libpmem-style [pmem_flush]/[pmem_drain] calls — the
    machine-portable shape PMDK developers chose for issues 452/940/943 —
    when the program links the runtime, falling back to [Direct]
    otherwise. *)
type style = Direct | Portable

type stats = {
  intra_flushes : int;
  intra_fences : int;
  hoists : int;
  clones_created : int;
  instrs_added : int;
}

(** Raises [Invalid_argument] when a fix references a nonexistent
    insertion point or call site; raises {!Validate.Invalid} if the
    rewritten program is malformed. *)
val apply :
  ?reuse:bool ->
  ?style:style ->
  oracle:Hippo_alias.Oracle.t ->
  Program.t ->
  Fix.plan ->
  Program.t * stats
