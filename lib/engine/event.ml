(* Structured per-pass engine events: plain data plus two renderers
   (JSON-lines for --trace-out, an aligned table for bench output). *)

type t = {
  pass : string;
  target : string;
  version : int;
  parallel : int;
      (** domains the pass fanned out over (1 = ran serially) *)
  dur_s : float;
  counters : (string * int) list;
  notes : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* JSON-lines *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_obj fields =
  "{" ^ String.concat "," fields ^ "}"

let to_json e =
  let str k v = Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v) in
  let counters =
    json_obj
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
         e.counters)
  in
  let notes = json_obj (List.map (fun (k, v) -> str k v) e.notes) in
  json_obj
    [
      str "pass" e.pass;
      str "target" e.target;
      Printf.sprintf "\"version\":%d" e.version;
      Printf.sprintf "\"parallel\":%d" e.parallel;
      Printf.sprintf "\"dur_s\":%.6f" e.dur_s;
      "\"counters\":" ^ counters;
      "\"notes\":" ^ notes;
    ]

let write_jsonl path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (to_json e);
          output_char oc '\n')
        events)

(* ------------------------------------------------------------------ *)
(* Per-phase breakdown table *)

type agg = {
  mutable runs : int;
  mutable total_s : float;
  mutable sums : (string * int) list;  (* summed counters, first-seen order *)
}

let add_counter sums (k, v) =
  if List.mem_assoc k sums then
    List.map (fun (k', v') -> if k' = k then (k', v' + v) else (k', v')) sums
  else sums @ [ (k, v) ]

let aggregate events =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let a =
        match Hashtbl.find_opt tbl e.pass with
        | Some a -> a
        | None ->
            let a = { runs = 0; total_s = 0.0; sums = [] } in
            Hashtbl.add tbl e.pass a;
            order := e.pass :: !order;
            a
      in
      a.runs <- a.runs + 1;
      a.total_s <- a.total_s +. e.dur_s;
      a.sums <- List.fold_left add_counter a.sums e.counters)
    events;
  List.rev_map (fun pass -> (pass, Hashtbl.find tbl pass)) !order

let total_time events = List.fold_left (fun s e -> s +. e.dur_s) 0.0 events

let pp_table ppf events =
  let rows = aggregate events in
  let total = total_time events in
  Fmt.pf ppf "  %-10s %5s %10s %10s  %s@." "pass" "runs" "total(s)" "mean(ms)"
    "counters";
  List.iter
    (fun (pass, a) ->
      let counters =
        String.concat " "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) a.sums)
      in
      Fmt.pf ppf "  %-10s %5d %10.4f %10.3f  %s@." pass a.runs a.total_s
        (1000.0 *. a.total_s /. float_of_int (max 1 a.runs))
        counters)
    rows;
  Fmt.pf ppf "  %-10s %5d %10.4f@." "(all)" (List.length events) total
