(** Fix application (Fig. 2 step 4): rewrite the program with the final
    plan. Hoists run first (they may consume intraprocedural fix targets'
    call frames but never the insertion points themselves), then all
    intraprocedural insertions in one pass. Flush insertions at a point
    precede fence insertions at the same point, preserving
    [X -> F(X) -> M]. The rewritten program is re-validated: a structural
    error here would mean the repair engine broke "do no harm". *)

open Hippo_pmir

(** How intraprocedural fixes are spelled (§6.2's discussion): [Direct]
    inserts raw [clwb]/[sfence] instructions — Hippocrates's default,
    preferred by "some high-performance applications"; [Portable] inserts
    calls to the libpmem-style [pmem_flush]/[pmem_drain] runtime helpers,
    which real PMDK dispatches on CPU features at run time — the shape the
    PMDK developers chose for issues 452/940/943. Portable emission
    requires the program to link the runtime; fixes fall back to [Direct]
    when it does not. *)
type style = Direct | Portable

type stats = {
  intra_flushes : int;
  intra_fences : int;
  hoists : int;
  clones_created : int;
  instrs_added : int;
}

let apply ?(reuse = true) ?(style = Direct) ~(oracle : Hippo_alias.Oracle.t)
    (prog : Program.t) (plan : Fix.plan) : Program.t * stats =
  let ctx = Transform.create ~reuse ~oracle prog in
  let hoists =
    List.filter_map (function Fix.Hoist h -> Some h | Fix.Intra _ -> None)
      plan.Fix.fixes
  in
  List.iter (Transform.hoist ctx) hoists;
  let prog = ctx.Transform.prog in
  (* Group intraprocedural insertions by target instruction. *)
  let intra =
    List.filter_map (function Fix.Intra i -> Some i | Fix.Hoist _ -> None)
      plan.Fix.fixes
  in
  let by_target : Fix.intra list Iid.Tbl.t = Iid.Tbl.create 64 in
  List.iter
    (fun (f : Fix.intra) ->
      let existing =
        Option.value (Iid.Tbl.find_opt by_target f.Fix.after) ~default:[]
      in
      Iid.Tbl.replace by_target f.Fix.after (existing @ [ f ]))
    intra;
  let n_flush = ref 0 and n_fence = ref 0 in
  let insert_after (i : Instr.t) =
    match Iid.Tbl.find_opt by_target (Instr.iid i) with
    | None -> [ i ]
    | Some fixes ->
        let fname = Iid.func (Instr.iid i) in
        let flushes, fences =
          List.partition
            (fun (f : Fix.intra) ->
              match f.Fix.action with
              | Fix.Add_flush _ -> true
              | Fix.Add_fence _ -> false)
            fixes
        in
        let portable =
          style = Portable && Program.mem prog "pmem_flush"
          && Program.mem prog "pmem_drain"
        in
        let mk (f : Fix.intra) =
          let op =
            match (f.Fix.action, portable) with
            | Fix.Add_flush { addr; kind; size = _ }, false ->
                incr n_flush;
                Instr.Flush { kind; addr }
            | Fix.Add_flush { addr; size; kind = _ }, true ->
                incr n_flush;
                Instr.Call
                  {
                    dst = None;
                    callee = "pmem_flush";
                    args = [ addr; Value.imm size ];
                  }
            | Fix.Add_fence { kind }, false ->
                incr n_fence;
                Instr.Fence { kind }
            | Fix.Add_fence _, true ->
                incr n_fence;
                Instr.Call { dst = None; callee = "pmem_drain"; args = [] }
          in
          Instr.make ~iid:(Iid.fresh ~func:fname) ~loc:(Instr.loc i) op
        in
        i :: List.map mk (flushes @ fences)
  in
  let prog = Program.map_funcs (Func.map_instrs insert_after) prog in
  (* Every requested insertion point must exist. *)
  Iid.Tbl.iter
    (fun iid _ ->
      if Program.find_instr prog iid = None then
        invalid_arg (Fmt.str "Apply.apply: insertion point %a not found" Iid.pp iid))
    by_target;
  Validate.check_exn prog;
  ( prog,
    {
      intra_flushes = !n_flush;
      intra_fences = !n_fence;
      hoists = List.length hoists;
      clones_created = ctx.Transform.funcs_added;
      instrs_added = ctx.Transform.instrs_added + !n_flush + !n_fence;
    } )
