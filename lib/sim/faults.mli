(** Fault plans and injection for the scenario simulator: rate tables
    (ppm per decision point), per-op plans drawn from a deterministic
    substream, and crash-image perturbation through the {!Pstate}
    fault hooks. *)

open Hippo_pmcheck

type rates = {
  crash_ppm : int;  (** per-op probability of a crash at/during the op *)
  torn_ppm : int;  (** per dirty record: partial eviction at the crash *)
  reorder_ppm : int;
      (** per in-flight write-back: drained before power loss *)
  recrash_ppm : int;  (** per crash: force another crash after recovery *)
  max_chain : int;  (** bound on consecutive forced re-crashes *)
}

val none : rates
val standard : rates
val chaos : rates

(** [hit st ppm] draws one decision. Always consumes exactly one draw,
    even at rate 0, so call sites advance streams uniformly. *)
val hit : Random.State.t -> int -> bool

type plan = {
  crash : bool;
  in_op_at : int;
      (** crash at the [in_op_at]-th crash point the op passes (>= 1);
          an op with fewer crash points crashes at its boundary *)
  recrash : bool;  (** if this op crashed: chain another crash *)
}

val plan : Random.State.t -> rates -> plan

(** Perturb the durable image at a crash (reordered write-back drain,
    then torn dirty records); returns [(reordered, torn)] counts. *)
val inject : Random.State.t -> rates -> Pstate.t -> Mem.t -> int * int
