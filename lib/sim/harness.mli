(** The scenario fleet: build the app programs once, fan independent
    scenarios out over a domain pool, and fold their outcomes into one
    report whose digest is byte-identical at every [--jobs] width and
    across execution tiers. *)

open Hippo_pmcheck
open Hippo_apps

type mode = Quick | Standard | Chaos

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
val rates_of_mode : mode -> Faults.rates

type config = {
  kind : App.kind;
  variant : App.variant;
  mode : mode;
  exec : Machine.tier;
  seed : int;
  scenarios : int;
  ops : int;  (** per scenario *)
  keyspace : int;
  nbuckets : int;  (** small tables force overflow chains *)
  jobs : int;
  differential : bool;
      (** drive the repair-input baseline in lockstep (Repaired only) *)
}

val default_config : config

type report = {
  config : config;
  digest : string;  (** MD5 over scenario digests, in scenario order *)
  outcomes : Scenario.outcome list;
  crashes : int;
  recoveries : int;
  reordered : int;
  torn : int;
  clock_ns : float;  (** total virtual time across scenarios *)
  violations : Scenario.violation list;
  violating : int list;  (** scenario indices with target violations *)
  baseline_violating : int list;
}

(** The interpreter config the harness opens sessions with (exposed so
    differential tests replay under identical machine settings). *)
val interp_config : config -> Interp.config

val baseline_variant : App.kind -> App.variant
val scenario_config : config -> Scenario.config

(** [run cfg] plays [cfg.scenarios] scenarios over a [cfg.jobs]-wide
    pool. Program construction (including the repair pipeline for
    [Repaired]) happens once, up front. *)
val run : config -> (report, string) result

(** The seed-stamped one-liner that replays a report's configuration
    serially (the canonical reproduction recipe). *)
val replay_cmdline : config -> string

val reproducer_text : config -> Scenario.outcome -> string

(** Write one reproducer file per violating scenario; returns the paths
    (scenario order). *)
val save_reproducers : dir:string -> config -> report -> string list
