(** One simulated lifetime of a PM application: a deterministic KV
    workload against an {!Hippo_apps.App} session under injected faults
    (crashes at arbitrary crash points, torn cache lines, reordered
    write-back drain, recovery-then-re-crash chains), judged against a
    host-side shadow state plus the app's own recovery invariant.

    A scenario is a pure function of [(seed, index, config)]; its
    transcript MD5 is the digest the determinism battery compares
    across [--jobs] widths and execution tiers. *)

open Hippo_apps

type op =
  | Insert of { key : string; value : string }
  | Read of { key : string }
  | Delete of { key : string }

val op_to_string : op -> string

type violation = { step : int; kind : string; detail : string }

type config = {
  ops : int;  (** ops per scenario *)
  keyspace : int;  (** distinct keys the workload draws from *)
  rates : Faults.rates;
  force_crash_at : int option;
      (** crash (at most once) at this absolute crash point (1-based
          over the whole scenario) instead of drawing crashes from
          [rates] — the hook differential tests use to target one
          {!Crashsim} verdict *)
  recovery_ns : float;  (** virtual-clock penalty per restart *)
}

val default : config

type outcome = {
  index : int;
  digest : string;  (** hex MD5 of the transcript(s) *)
  ops_run : int;
  crashes : int;
  recoveries : int;
  reordered : int;  (** write-backs drained by injected reordering *)
  torn : int;  (** dirty records torn at crashes *)
  clock_ns : float;
  violations : violation list;  (** target app *)
  baseline_violations : violation list;  (** lockstep baseline, if any *)
  transcript : string;  (** the target transcript (reproducer payload) *)
}

(** The op sequence scenario [index] plays — the same stream derivation
    {!run} uses, so differential tests can replay it through
    {!Hippo_pmcheck.Crashsim}. *)
val ops_of : seed:int -> index:int -> config -> op list

(** [run ~seed ~index cfg ~make_app ?make_baseline ()] plays scenario
    [index]: [make_app] opens a fresh target session, [make_baseline]
    (optional) a baseline driven through the byte-identical op and
    fault schedule. Session construction failures surface as [Error]. *)
val run :
  seed:int ->
  index:int ->
  config ->
  make_app:(unit -> (App.t, string) result) ->
  ?make_baseline:(unit -> (App.t, string) result) ->
  unit ->
  (outcome, string) result
