(** Fault plans and injection for the scenario simulator.

    Every fault decision is drawn from a deterministic PRNG substream
    ({!Hippo_parallel.Stream}), never from app state, so a plan is a pure
    function of [(seed, scenario, step)] — the property that lets the
    harness drive a repaired app and its repair-input baseline through
    byte-identical fault schedules, and lets any run be replayed from its
    seed.

    Rates are parts-per-million per decision point, after TigerBeetle's
    VOPR convention: a mode is just a rate table, and cranking a rate is
    how "quick" becomes "chaos". *)

open Hippo_pmcheck

type rates = {
  crash_ppm : int;  (** per-op probability of a crash at/during the op *)
  torn_ppm : int;  (** per dirty record: partial eviction at the crash *)
  reorder_ppm : int;
      (** per in-flight write-back: drained before power loss *)
  recrash_ppm : int;  (** per crash: force another crash after recovery *)
  max_chain : int;  (** bound on consecutive forced re-crashes *)
}

(** Fault-free: pure workload + shadow-state checking. *)
let none =
  { crash_ppm = 0; torn_ppm = 0; reorder_ppm = 0; recrash_ppm = 0;
    max_chain = 0 }

(** Crashes and recovery chains at moderate rates; the durable image is
    the deterministic-pessimistic one (no torn lines, no reordering). *)
let standard =
  { crash_ppm = 30_000; torn_ppm = 0; reorder_ppm = 0;
    recrash_ppm = 250_000; max_chain = 2 }

(** High crash pressure plus image perturbation: torn cache lines and
    partially drained write-pending queues at every crash, deeper
    re-crash chains. *)
let chaos =
  { crash_ppm = 90_000; torn_ppm = 300_000; reorder_ppm = 400_000;
    recrash_ppm = 350_000; max_chain = 3 }

(* Always draw, even at rate 0: the stream advances the same number of
   times per call site whatever the mode, so plans stay aligned when
   rates change between runs of one seed. *)
let hit st ppm = Random.State.int st 1_000_000 < ppm

(** One op's worth of decisions, drawn up front (see module doc). *)
type plan = {
  crash : bool;
  in_op_at : int;
      (** crash at the [in_op_at]-th crash point the op passes (>= 1);
          an op with fewer crash points crashes at its boundary *)
  recrash : bool;  (** if this op crashed: chain another crash *)
}

let plan st rates =
  let crash = hit st rates.crash_ppm in
  let in_op_at = 1 + Random.State.int st 4 in
  let recrash = hit st rates.recrash_ppm in
  { crash; in_op_at; recrash }

(** [inject st rates ps mem] perturbs the durable image at a crash,
    beyond the deterministic-pessimistic endpoint: a random subset of
    in-flight write-backs drains ({!Pstate.commit_chosen} — closed so
    within-line order is preserved), then a random subset of dirty
    records tears ({!Pstate.tear_dirty}, 8-byte store atomicity).
    Returns [(reordered, torn)] record counts. *)
let inject st rates ps mem =
  let reordered =
    if rates.reorder_ppm = 0 then 0
    else Pstate.commit_chosen ps mem (fun _ -> hit st rates.reorder_ppm)
  in
  let torn = ref 0 in
  if rates.torn_ppm > 0 then
    List.iter
      (fun r ->
        if hit st rates.torn_ppm then begin
          incr torn;
          Pstate.tear_dirty mem r ~keep_word:(fun _ -> Random.State.bool st)
        end)
      (Pstate.dirty_records ps);
  (reordered, !torn)
