(** The scenario fleet: build the app programs once, fan independent
    scenarios out over a domain pool, and fold their outcomes into one
    report whose digest is byte-identical at every [--jobs] width and
    across execution tiers.

    Modes are TigerBeetle-style presets over {!Faults.rates}: [Quick] is
    fault-free shadow checking, [Standard] adds crashes and recovery
    chains at the deterministic-pessimistic image, [Chaos] adds torn
    cache lines and reordered write-back drain on top.

    When the target variant is [Repaired] the harness also opens the
    repair-input baseline (Redis: flush-free; P-CLHT: the buggy manual
    build) per scenario and drives it through the byte-identical op and
    fault schedule — a lockstep do-no-harm reading: the repaired app
    must be clean exactly where the unrepaired input loses data. *)

open Hippo_pmcheck
open Hippo_apps
module Pool = Hippo_parallel.Pool

type mode = Quick | Standard | Chaos

let mode_to_string = function
  | Quick -> "quick"
  | Standard -> "standard"
  | Chaos -> "chaos"

let mode_of_string = function
  | "quick" -> Some Quick
  | "standard" -> Some Standard
  | "chaos" -> Some Chaos
  | _ -> None

let rates_of_mode = function
  | Quick -> Faults.none
  | Standard -> Faults.standard
  | Chaos -> Faults.chaos

type config = {
  kind : App.kind;
  variant : App.variant;
  mode : mode;
  exec : Machine.tier;
  seed : int;
  scenarios : int;
  ops : int;  (** per scenario *)
  keyspace : int;
  nbuckets : int;  (** small tables force overflow chains *)
  jobs : int;
  differential : bool;
      (** drive the repair-input baseline in lockstep (Repaired only) *)
}

let default_config =
  {
    kind = App.Pclht;
    variant = App.Repaired;
    mode = Standard;
    exec = `Compiled;
    seed = 1;
    scenarios = 16;
    ops = Scenario.default.Scenario.ops;
    keyspace = Scenario.default.Scenario.keyspace;
    nbuckets = 16;
    jobs = 1;
    differential = true;
  }

type report = {
  config : config;
  digest : string;  (** MD5 over scenario digests, in scenario order *)
  outcomes : Scenario.outcome list;
  crashes : int;
  recoveries : int;
  reordered : int;
  torn : int;
  clock_ns : float;  (** total virtual time across scenarios *)
  violations : Scenario.violation list;  (** (scenario, violation) flat *)
  violating : int list;  (** scenario indices with target violations *)
  baseline_violating : int list;
}

let interp_config cfg =
  {
    Interp.default_config with
    Interp.trace = false;
    fuel = max_int;
    cost = Some Cost.default;
    exec = cfg.exec;
  }

(* The repair-input program: what [variant = Repaired] was repaired
   from. Its violations under the same schedule are the "before"
   picture of do-no-harm. *)
let baseline_variant = function
  | App.Redis -> App.Flush_free
  | App.Pclht -> App.Manual

let scenario_config cfg =
  {
    Scenario.default with
    Scenario.ops = cfg.ops;
    keyspace = cfg.keyspace;
    rates = rates_of_mode cfg.mode;
  }

(** [run cfg] plays [cfg.scenarios] scenarios over a [cfg.jobs]-wide
    pool. Program construction (including the repair pipeline for
    [Repaired]) happens once, up front. *)
let run cfg : (report, string) result =
  match App.program cfg.kind cfg.variant with
  | Error e -> Error e
  | Ok prog ->
      let baseline_prog =
        if cfg.differential && cfg.variant = App.Repaired then
          match App.program cfg.kind (baseline_variant cfg.kind) with
          | Ok p -> Some p
          | Error _ -> None
        else None
      in
      let icfg = interp_config cfg in
      let make_app () =
        Ok (App.wrap ~config:icfg ~nbuckets:cfg.nbuckets cfg.kind
              cfg.variant prog)
      in
      let make_baseline =
        Option.map
          (fun p () ->
            Ok
              (App.wrap ~config:icfg ~nbuckets:cfg.nbuckets cfg.kind
                 (baseline_variant cfg.kind) p))
          baseline_prog
      in
      let scfg = scenario_config cfg in
      let results =
        Pool.run ~domains:cfg.jobs (fun pool ->
            Pool.map pool
              (fun index ->
                Scenario.run ~seed:cfg.seed ~index scfg ~make_app
                  ?make_baseline ())
              (List.init cfg.scenarios Fun.id))
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | Ok o :: rest -> collect (o :: acc) rest
        | Error e :: _ -> Error e
      in
      (match collect [] results with
      | Error e -> Error e
      | Ok outcomes ->
          let sum f = List.fold_left (fun a o -> a + f o) 0 outcomes in
          let sumf f = List.fold_left (fun a o -> a +. f o) 0. outcomes in
          Ok
            {
              config = cfg;
              digest =
                Digest.to_hex
                  (Digest.string
                     (String.concat ""
                        (List.map (fun o -> o.Scenario.digest) outcomes)));
              outcomes;
              crashes = sum (fun o -> o.Scenario.crashes);
              recoveries = sum (fun o -> o.Scenario.recoveries);
              reordered = sum (fun o -> o.Scenario.reordered);
              torn = sum (fun o -> o.Scenario.torn);
              clock_ns = sumf (fun o -> o.Scenario.clock_ns);
              violations =
                List.concat_map (fun o -> o.Scenario.violations) outcomes;
              violating =
                List.filter_map
                  (fun o ->
                    if o.Scenario.violations <> [] then
                      Some o.Scenario.index
                    else None)
                  outcomes;
              baseline_violating =
                List.filter_map
                  (fun o ->
                    if o.Scenario.baseline_violations <> [] then
                      Some o.Scenario.index
                    else None)
                  outcomes;
            })

(* ------------------------------------------------------------------ *)
(* Reproducers *)

(** The seed-stamped one-liner that replays a report's configuration
    serially (the canonical reproduction recipe). *)
let replay_cmdline cfg =
  Printf.sprintf
    "hippocrates sim --app %s --variant %s --mode %s --exec %s --seed %d \
     --scenarios %d --ops %d --keyspace %d --nbuckets %d --jobs 1"
    (App.kind_to_string cfg.kind)
    (App.variant_to_string cfg.variant)
    (mode_to_string cfg.mode)
    (Exec.tier_to_string cfg.exec)
    cfg.seed cfg.scenarios cfg.ops cfg.keyspace cfg.nbuckets

let reproducer_text cfg (o : Scenario.outcome) =
  let b = Buffer.create 4096 in
  Printf.bprintf b "# sim reproducer: scenario %d of seed %d\n" o.index
    cfg.seed;
  Printf.bprintf b "# replay: %s\n\n" (replay_cmdline cfg);
  List.iter
    (fun (v : Scenario.violation) ->
      Printf.bprintf b "violation step=%d %s: %s\n" v.step v.kind v.detail)
    o.Scenario.violations;
  Printf.bprintf b "\n--- transcript ---\n%s" o.Scenario.transcript;
  Buffer.contents b

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(** Write one reproducer file per violating scenario; returns the paths
    (scenario order). *)
let save_reproducers ~dir cfg report =
  let violating =
    List.filter
      (fun o -> o.Scenario.violations <> [])
      report.outcomes
  in
  if violating = [] then []
  else begin
    ensure_dir dir;
    List.map
      (fun (o : Scenario.outcome) ->
        let path =
          Filename.concat dir
            (Printf.sprintf "sim-seed%d-s%03d.txt" cfg.seed o.index)
        in
        let oc = open_out path in
        output_string oc (reproducer_text cfg o);
        close_out oc;
        path)
      violating
  end
