(** One simulated lifetime of a PM application: a deterministic KV
    workload driven against an {!Hippo_apps.App} session under injected
    faults, with a host-side shadow state as the correctness oracle.

    The scenario is a pure function of [(seed, index, config)]: ops and
    fault plans are drawn from {!Hippo_parallel.Stream} substreams, the
    virtual clock is the machine's simulated cost (bit-identical across
    execution tiers), and every observable lands in a transcript whose
    MD5 is the scenario digest — the object the determinism battery
    compares across [--jobs] widths and tiers.

    Faults at an op: the machine is armed ({!Machine.arm_crash}) so the
    op stops at an injected crash point; apps without explicit crash
    points (Redis) crash at the op boundary instead. The durable image
    is then perturbed ({!Faults.inject}), the app is restarted on it
    through its recovery path ([App.reopen]), and recovery is judged:

    - the app's own invariant ([App.check] — the crash-consistency
      oracle);
    - the in-flight key reads back as old {e or} new (atomicity);
    - every other key matches the shadow exactly — a committed update
      that vanished is a lost durable update, precisely what a missing
      flush costs ({e do no harm}: on a repaired app any such loss is a
      regression the repair introduced or failed to fix);
    - the app's count equals the shadow's.

    A scenario can drive a second {e baseline} session (the repair
    input) through the byte-identical op and fault schedule; its
    violations are reported separately, so "the repaired app is clean
    where the baseline loses data" is directly visible. *)

open Hippo_pmcheck
open Hippo_apps
module Stream = Hippo_parallel.Stream

type op =
  | Insert of { key : string; value : string }
  | Read of { key : string }
  | Delete of { key : string }

let op_to_string = function
  | Insert { key; value } -> Printf.sprintf "set %s=%s" key value
  | Read { key } -> Printf.sprintf "get %s" key
  | Delete { key } -> Printf.sprintf "del %s" key

type violation = { step : int; kind : string; detail : string }

type config = {
  ops : int;  (** ops per scenario *)
  keyspace : int;  (** distinct keys the workload draws from *)
  rates : Faults.rates;
  force_crash_at : int option;
      (** crash at this absolute crash point (1-based over the whole
          scenario) instead of drawing crashes from [rates] — the hook
          differential tests use to target one {!Crashsim} verdict *)
  recovery_ns : float;  (** virtual-clock penalty per restart *)
}

let default =
  {
    ops = 120;
    keyspace = 32;
    rates = Faults.none;
    force_crash_at = None;
    recovery_ns = 5_000_000.;
  }

type outcome = {
  index : int;
  digest : string;  (** hex MD5 of the transcript(s) *)
  ops_run : int;
  crashes : int;
  recoveries : int;
  reordered : int;  (** write-backs drained by injected reordering *)
  torn : int;  (** dirty records torn at crashes *)
  clock_ns : float;
  violations : violation list;  (** target app *)
  baseline_violations : violation list;  (** lockstep baseline, if any *)
  transcript : string;  (** the target transcript (reproducer payload) *)
}

(* ------------------------------------------------------------------ *)
(* Workload generation (pure in the op substream) *)

let gen_ops st cfg =
  let key i = Printf.sprintf "k%02d" i in
  List.init cfg.ops (fun step ->
      let k = key (Random.State.int st cfg.keyspace) in
      let d = Random.State.int st 100 in
      if d < 45 then
        Insert { key = k; value = Printf.sprintf "v%d.%s" step k }
      else if d < 80 then Read { key = k }
      else Delete { key = k })

(** The op sequence scenario [index] plays — the same stream derivation
    {!run} uses, so differential tests can replay it elsewhere. *)
let ops_of ~seed ~index cfg = gen_ops (Stream.state ~seed [ 0x0B5; index ]) cfg

(* ------------------------------------------------------------------ *)
(* One session side (target or baseline) *)

type side = {
  label : string;
  mutable app : App.t;
  shadow : (string, string) Hashtbl.t;  (** committed key -> raw value *)
  flagged : (string, string) Hashtbl.t;
      (** key -> observed rendering already reported, so a corruption
          surviving several recoveries is one violation, not one per
          audit *)
  buf : Buffer.t;
  mutable halted : bool;  (** unrecoverable: remaining steps skipped *)
  mutable crashes : int;
  mutable recoveries : int;
  mutable reordered : int;
  mutable torn : int;
  mutable chain : int;  (** consecutive forced re-crashes so far *)
  mutable force_next : bool;  (** crash the next op (recovery chain) *)
  mutable clock : float;  (** cost of sessions already closed *)
  mutable violations : violation list;
}

let make_side label app =
  {
    label;
    app;
    shadow = Hashtbl.create 64;
    flagged = Hashtbl.create 8;
    buf = Buffer.create 4096;
    halted = false;
    crashes = 0;
    recoveries = 0;
    reordered = 0;
    torn = 0;
    chain = 0;
    force_next = false;
    clock = 0.;
    violations = [];
  }

let violate side ~step kind detail =
  side.violations <- { step; kind; detail } :: side.violations;
  Buffer.add_string side.buf
    (Printf.sprintf "!violation %d %s: %s\n" step kind detail)

let read_to_string = function
  | App.Absent -> "absent"
  | App.Found v -> v

(* Every app call can trap on a corrupted image (wild bucket pointer,
   zero modulus, exhausted fuel); a trap after recovery is itself a
   verdict, not a harness failure. *)
let guard side ~step what f =
  try Some (f ()) with
  | Mem.Trap m ->
      violate side ~step "trap" (Printf.sprintf "%s: %s" what m);
      None
  | Division_by_zero ->
      violate side ~step "trap" (Printf.sprintf "%s: division by zero" what);
      None
  | Machine.Aborted ->
      violate side ~step "trap" (Printf.sprintf "%s: abort" what);
      None
  | Machine.Out_of_fuel ->
      violate side ~step "trap" (Printf.sprintf "%s: out of fuel" what);
      None

(* What App.read must answer for a committed raw value. *)
let expect app = function
  | None -> App.Absent
  | Some raw -> App.Found (app.App.echo raw)

let read_eq a b =
  match (a, b) with
  | App.Absent, App.Absent -> true
  | App.Found x, App.Found y -> String.equal x y
  | _ -> false

(* Post-recovery audit: resolve the in-flight key (old or new), then
   sweep the whole keyspace against the shadow. *)
let audit side ~step ~keys ~uncertain =
  let app = side.app in
  (match guard side ~step "check" (fun () -> app.App.check ()) with
  | Some true -> ()
  | Some false ->
      violate side ~step "recovery-check-failed"
        (app.App.name ^ ": recovery invariant does not hold");
      side.halted <- true
  | None -> side.halted <- true);
  if not side.halted then begin
    (match uncertain with
    | None -> ()
    | Some (key, old_v, new_v) -> (
        match guard side ~step "read" (fun () -> app.App.read ~key) with
        | None -> side.halted <- true
        | Some obs ->
            if read_eq obs (expect app new_v) then
              (match new_v with
              | Some v -> Hashtbl.replace side.shadow key v
              | None -> Hashtbl.remove side.shadow key)
            else if read_eq obs (expect app old_v) then
              (match old_v with
              | Some v -> Hashtbl.replace side.shadow key v
              | None -> Hashtbl.remove side.shadow key)
            else
              violate side ~step "atomicity"
                (Printf.sprintf
                   "key %s is neither old (%s) nor new (%s) after \
                    recovery: %s"
                   key
                   (read_to_string (expect app old_v))
                   (read_to_string (expect app new_v))
                   (read_to_string obs))));
    List.iter
      (fun key ->
        if not side.halted then
          let expected = expect app (Hashtbl.find_opt side.shadow key) in
          match guard side ~step "read" (fun () -> app.App.read ~key) with
          | None -> side.halted <- true
          | Some obs ->
              if not (read_eq obs expected) then begin
                let obs_r = read_to_string obs in
                if Hashtbl.find_opt side.flagged key <> Some obs_r then begin
                  Hashtbl.replace side.flagged key obs_r;
                  let kind =
                    match (expected, obs) with
                    | App.Found _, App.Absent -> "lost-durable-update"
                    | App.Absent, App.Found _ -> "resurrected-key"
                    | _ -> "corrupted-value"
                  in
                  violate side ~step kind
                    (Printf.sprintf "key %s: expected %s, got %s" key
                       (read_to_string expected) obs_r)
                end
              end)
      keys;
    if not side.halted then
      match guard side ~step "count" (fun () -> app.App.count ()) with
      | None -> side.halted <- true
      | Some n ->
          let want = Hashtbl.length side.shadow in
          if n <> want then
            violate side ~step "count-mismatch"
              (Printf.sprintf "app reports %d keys, shadow holds %d" n want)
  end

(* ------------------------------------------------------------------ *)
(* Step execution *)

(* Apply a completed op to the shadow and render its result. *)
let apply_shadow side op result =
  match (op, result) with
  | Insert { key; value }, _ ->
      Hashtbl.replace side.shadow key value;
      Hashtbl.remove side.flagged key;
      "ok"
  | Read _, `Read r -> read_to_string r
  | Delete { key }, `Del existed ->
      Hashtbl.remove side.shadow key;
      Hashtbl.remove side.flagged key;
      if existed then "1" else "0"
  | _ -> "ok"

let exec_op app = function
  | Insert { key; value } ->
      app.App.insert ~key ~value;
      `Unit
  | Read { key } -> `Read (app.App.read ~key)
  | Delete { key } -> `Del (app.App.delete ~key)

(* Run one op on one side under a fault plan. [inj_st] is this side's
   private injection substream for the step (both sides derive it from
   the same path, so their schedules match). *)
let run_step side ~step ~seed ~index ~cfg ~keys op (plan : Faults.plan) =
  if not side.halted then begin
    let app = side.app in
    let interp = app.App.interp in
    let crash_wanted =
      match cfg.force_crash_at with
      | Some _ -> false (* armed below, absolutely *)
      | None -> plan.crash || side.force_next
    in
    (match cfg.force_crash_at with
    (* one forced crash per scenario: the restarted machine's counter
       begins again below [n], so only arm while no crash has fired *)
    | Some n when side.crashes = 0 && Machine.crash_points_hit interp < n ->
        Machine.arm_crash interp ~at:n
    | Some _ -> ()
    | None ->
        if crash_wanted then
          Machine.arm_crash interp
            ~at:(Machine.crash_points_hit interp + plan.in_op_at));
    let old_v =
      match op with
      | Insert { key; _ } | Read { key } | Delete { key } ->
          Hashtbl.find_opt side.shadow key
    in
    let crashed = ref false in
    (try
       let result = exec_op app op in
       let rendered = apply_shadow side op result in
       Buffer.add_string side.buf
         (Printf.sprintf "%d %s -> %s\n" step (op_to_string op) rendered);
       (* reads double as continuous shadow checks *)
       match (op, result) with
       | Read { key }, `Read obs ->
           let expected = expect app old_v in
           if not (read_eq obs expected) then
             violate side ~step "shadow-mismatch"
               (Printf.sprintf "get %s: expected %s, got %s" key
                  (read_to_string expected) (read_to_string obs))
       | _ -> ()
     with
    | Machine.Stopped_at_crash -> crashed := true
    | Mem.Trap m ->
        violate side ~step "trap"
          (Printf.sprintf "%s: %s" (op_to_string op) m);
        side.halted <- true
    | Machine.Aborted ->
        violate side ~step "trap" (op_to_string op ^ ": abort");
        side.halted <- true
    | Machine.Out_of_fuel ->
        violate side ~step "trap" (op_to_string op ^ ": out of fuel");
        side.halted <- true);
    Machine.disarm_crash interp;
    (* a wanted crash the op's crash points never realized becomes a
       boundary crash: the op completed but the cache's durability is
       still up to the injector (forced absolute crashes never fall
       back — they wait for their exact point) *)
    let crashed = !crashed || crash_wanted in
    if (not side.halted) && crashed then begin
      side.crashes <- side.crashes + 1;
      side.force_next <- false;
      let ps = Interp.pstate interp and mem = Interp.mem interp in
      let inj_st = Stream.state ~seed [ 0x51A3; index; step ] in
      let reordered, torn = Faults.inject inj_st cfg.rates ps mem in
      side.reordered <- side.reordered + reordered;
      side.torn <- side.torn + torn;
      let image = Mem.crash_image mem in
      side.clock <-
        side.clock +. Interp.cost_ns interp +. cfg.recovery_ns;
      Buffer.add_string side.buf
        (Printf.sprintf "%d !crash pt=%d img=%s reordered=%d torn=%d\n"
           step
           (Machine.crash_points_hit interp)
           (Digest.to_hex (Digest.bytes image))
           reordered torn);
      (* the op that was cut down (or completed un-durably): its key may
         legitimately read back old or new *)
      let uncertain =
        match op with
        | Insert { key; value } -> Some (key, old_v, Some value)
        | Delete { key } -> Some (key, old_v, None)
        | Read { key } -> Some (key, old_v, old_v)
      in
      match side.app.App.reopen ~pm_image:image with
      | Error e ->
          violate side ~step "reopen-failed" e;
          side.halted <- true
      | Ok app' ->
          side.app <- app';
          side.recoveries <- side.recoveries + 1;
          Buffer.add_string side.buf (Printf.sprintf "%d !recover\n" step);
          audit side ~step ~keys ~uncertain;
          (* recovery-then-re-crash chain *)
          if
            (not side.halted) && plan.recrash
            && side.chain < cfg.rates.max_chain
          then begin
            side.force_next <- true;
            side.chain <- side.chain + 1
          end
          else side.chain <- 0
    end
  end

(* ------------------------------------------------------------------ *)

let close side =
  side.clock <- side.clock +. Interp.cost_ns side.app.App.interp;
  Buffer.add_string side.buf
    (Printf.sprintf "end crashes=%d recoveries=%d clock=%.0f\n" side.crashes
       side.recoveries side.clock)

(** [run ~seed ~index cfg ~make_app ?make_baseline ()] plays scenario
    [index]. [make_app] opens a fresh target session; [make_baseline]
    (optional) opens the lockstep baseline. Session construction
    failures surface as an [Error]. *)
let run ~seed ~index cfg ~make_app ?make_baseline () :
    (outcome, string) result =
  let fault_st = Stream.state ~seed [ 0xFA17; index ] in
  let ops = ops_of ~seed ~index cfg in
  let plans = List.map (fun _ -> Faults.plan fault_st cfg.rates) ops in
  let keys = List.init cfg.keyspace (Printf.sprintf "k%02d") in
  match make_app () with
  | Error e -> Error e
  | Ok app -> (
      let target = make_side "target" app in
      let baseline =
        match make_baseline with
        | None -> Ok None
        | Some mk -> (
            match mk () with
            | Error e -> Error e
            | Ok b -> Ok (Some (make_side "baseline" b)))
      in
      match baseline with
      | Error e -> Error e
      | Ok baseline ->
          List.iteri
            (fun step (op, plan) ->
              run_step target ~step ~seed ~index ~cfg ~keys op plan;
              match baseline with
              | Some b -> run_step b ~step ~seed ~index ~cfg ~keys op plan
              | None -> ())
            (List.combine ops plans);
          close target;
          Option.iter close baseline;
          let transcript = Buffer.contents target.buf in
          let digest_src =
            transcript
            ^
            match baseline with
            | Some b -> Buffer.contents b.buf
            | None -> ""
          in
          Ok
            {
              index;
              digest = Digest.to_hex (Digest.string digest_src);
              ops_run = List.length ops;
              crashes = target.crashes;
              recoveries = target.recoveries;
              reordered = target.reordered;
              torn = target.torn;
              clock_ns = target.clock;
              violations = List.rev target.violations;
              baseline_violations =
                (match baseline with
                | Some b -> List.rev b.violations
                | None -> []);
              transcript;
            })
