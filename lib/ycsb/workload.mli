(** The YCSB core workloads (Cooper et al., SoCC'10), as used by the
    paper's Redis experiment (§6.3): Load plus A-F.

    - Load: 100% insert, sequential keys
    - A: 50% read / 50% update, zipfian
    - B: 95% read / 5% update, zipfian
    - C: 100% read, zipfian
    - D: 95% read / 5% insert, latest
    - E: 95% scan / 5% insert, zipfian
    - F: 50% read / 50% read-modify-write, zipfian *)

type op =
  | Read of int
  | Update of int
  | Insert of int
  | Scan of int * int  (** start key, length *)
  | Read_modify_write of int

type kind = Load | A | B | C | D | E | F

val kind_to_string : kind -> string
val all_kinds : kind list

type spec = {
  kind : kind;
  record_count : int;  (** records loaded before the run *)
  op_count : int;
  max_scan_len : int;
}

(** The paper's parameters: 10k records, 10k ops, scans up to 10. *)
val default_spec : kind -> spec

(** Stream the operation sequence for a trial; deterministic in [seed].
    Inserts use keys beyond the loaded range, as YCSB does. Nothing is
    materialized: a million-op stream costs O(1) space. Restarting from
    the returned head replays the identical stream (each traversal owns
    a fresh PRNG); intermediate nodes are ephemeral and must be consumed
    at most once. *)
val seq : spec -> seed:int -> op Seq.t

(** [List.of_seq (seq spec ~seed)]: the materialized form (historical
    API; prefer {!seq} for large op counts). *)
val ops : spec -> seed:int -> op list

(** YCSB-style keys: ["user%012d"], 16 bytes. *)
val key_bytes : int -> string

(** Deterministic printable 96-byte values derived from key and version. *)
val value_bytes : k:int -> version:int -> string
