(** The YCSB core workloads (Cooper et al., SoCC'10), as used by the
    paper's Redis experiment (§6.3): Load plus A-F.

    | Workload | Mix                                 | Distribution |
    |----------|-------------------------------------|--------------|
    | Load     | 100% insert                         | sequential   |
    | A        | 50% read, 50% update                | zipfian      |
    | B        | 95% read, 5% update                 | zipfian      |
    | C        | 100% read                           | zipfian      |
    | D        | 95% read, 5% insert                 | latest       |
    | E        | 95% scan, 5% insert                 | zipfian      |
    | F        | 50% read, 50% read-modify-write     | zipfian      | *)

type op =
  | Read of int
  | Update of int
  | Insert of int
  | Scan of int * int  (** start key, length *)
  | Read_modify_write of int

type kind = Load | A | B | C | D | E | F

let kind_to_string = function
  | Load -> "Load"
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"
  | F -> "F"

let all_kinds = [ Load; A; B; C; D; E; F ]

type spec = {
  kind : kind;
  record_count : int;  (** records loaded before the run *)
  op_count : int;
  max_scan_len : int;
}

let default_spec kind =
  { kind; record_count = 10_000; op_count = 10_000; max_scan_len = 10 }

(** Stream the operation sequence for a trial without materializing it.
    Inserts use keys beyond the loaded range, as YCSB does.

    Each traversal from the returned head allocates its own PRNG and
    zipfian state, so restarting from the head always replays the same
    deterministic stream. Intermediate nodes are ephemeral: they share
    the traversal's PRNG, so a mid-sequence node must be consumed at
    most once (million-op runs pull each op exactly once anyway). *)
let seq (spec : spec) ~seed : op Seq.t =
 fun () ->
  let rng = Rng.create ~seed in
  let zipf = Zipfian.create spec.record_count in
  let inserted = ref spec.record_count in
  let pick () = Zipfian.next zipf rng in
  let insert () =
    let k = !inserted in
    incr inserted;
    Insert k
  in
  let gen =
    match spec.kind with
    | Load -> fun i -> Insert i
    | A ->
        fun _ ->
          if Rng.int rng 100 < 50 then Read (pick ()) else Update (pick ())
    | B ->
        fun _ ->
          if Rng.int rng 100 < 95 then Read (pick ()) else Update (pick ())
    | C -> fun _ -> Read (pick ())
    | D ->
        fun _ ->
          if Rng.int rng 100 < 95 then
            Read (Zipfian.latest zipf rng ~n:!inserted)
          else insert ()
    | E ->
        fun _ ->
          if Rng.int rng 100 < 95 then
            Scan (pick (), 1 + Rng.int rng spec.max_scan_len)
          else insert ()
    | F ->
        fun _ ->
          if Rng.int rng 100 < 50 then Read (pick ())
          else Read_modify_write (pick ())
  in
  let n = match spec.kind with Load -> spec.record_count | _ -> spec.op_count in
  let rec node i () = if i >= n then Seq.Nil else Seq.Cons (gen i, node (i + 1)) in
  node 0 ()

(** Materialized form of {!seq} (the historical API). The generator
    applies the PRNG in stream order, so this equals the streaming
    sequence element for element. *)
let ops (spec : spec) ~seed : op list = List.of_seq (seq spec ~seed)

(** YCSB-style keys: zero-padded decimal with a fixed prefix, 16 bytes. *)
let key_bytes k = Fmt.str "user%012d" k

(** Deterministic 96-byte values derived from the key and a version. *)
let value_bytes ~k ~version =
  let seed = (k * 31) + version in
  String.init 96 (fun idx -> Char.chr (((seed + (idx * 7)) land 0x3F) + 0x20))
