(* SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
   number generators"), truncated to OCaml's boxed-free int range. Each
   path component is absorbed with the golden-gamma increment before
   mixing, so [seed [a]] and [seed [a; 0]] differ. *)

let golden_gamma = 0x1ec8e8589e7b13b5 (* 0x9e3779b97f4a7c15 land max_int *)

let mix64 z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14602704b16fd297 land max_int in
  z lxor (z lsr 31)

let derive ~seed path =
  List.fold_left
    (fun acc k -> mix64 ((acc + golden_gamma + k) land max_int))
    (mix64 (seed land max_int))
    path

let state ~seed path = Random.State.make [| derive ~seed path |]
