(** A fixed-size domain work pool with deterministic result collection.

    The engine's hot paths (corpus sweeps, crash-state enumeration,
    original-vs-repaired verification) are embarrassingly parallel: many
    independent pure tasks whose results are only combined at the end.
    This pool runs them across OCaml 5 domains while keeping every
    observable output {e deterministic}:

    - {!map} returns results in submission order, regardless of which
      domain finished first;
    - a raising task propagates its exception to the caller — always the
      exception of the {e earliest} submitted failing task, with its
      backtrace, so failures do not depend on scheduling;
    - [~domains:1] spawns no domains at all and degrades to [List.map],
      byte-identical to the serial code path (including lazy evaluation
      order and early exit on exceptions).

    The pool is fixed-size: [create ~domains:n] spawns [n - 1] worker
    domains; the submitting domain itself drains the queue while waiting
    (caller-helps), so [n] tasks make progress at once and nested [map]
    calls from inside a task cannot deadlock. Pools are reusable across
    any number of [map] calls and must be {!shutdown} (or created via
    {!run}) to join the workers. *)

type t

(** [default_domains ()] is the [HIPPO_JOBS] environment variable when it
    parses as a positive integer, otherwise
    [Domain.recommended_domain_count ()]. This is the default for every
    [--jobs] flag. *)
val default_domains : unit -> int

(** [create ~domains ()] builds a pool of [domains] total executors
    ([domains - 1] spawned worker domains plus the caller). [domains]
    defaults to {!default_domains}; values below 1 are clamped to 1. *)
val create : ?domains:int -> unit -> t

(** Nominal width of the pool (the [~domains] it was created with). *)
val domains : t -> int

(** [map pool f xs] applies [f] to every element of [xs] across the pool
    and returns the results in submission order. If any task raised, the
    exception of the earliest failing submission is re-raised (with its
    backtrace) after all tasks have settled. With a width-1 pool this is
    exactly [List.map f xs]. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_reduce pool ~map ~reduce ~init xs] maps across the pool, then
    folds the results in submission order:
    [List.fold_left reduce init (Pool.map pool map xs)]. *)
val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc

(** Join all worker domains. Idempotent; the pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [run ?domains f] is [f pool] on a fresh pool, with a guaranteed
    {!shutdown} on exit (normal or exceptional). *)
val run : ?domains:int -> (t -> 'a) -> 'a
