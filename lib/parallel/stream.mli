(** Deterministic RNG substreams for parallel randomized work.

    Parallel fuzzing and benchmarking need per-task randomness that does
    not depend on scheduling: a task's stream must be a pure function of
    the user's [--seed] and the task's {e logical} position (round,
    slot, worker index …), never of which domain happened to run it.

    [state ~seed path] derives an independent [Random.State.t] from a
    root seed and an integer path, by hashing the path into the seed
    with a SplitMix64-style finalizer. Distinct paths give statistically
    independent streams; the same [(seed, path)] gives the same stream
    on every run, process and [--jobs] width. Callers label each unit of
    work with its coordinates, e.g.
    [Stream.state ~seed [ namespace; round; slot ]]. *)

(** [derive ~seed path] is the 62-bit mixed seed for [path] (exposed for
    tests and for labelling runs). *)
val derive : seed:int -> int list -> int

(** [state ~seed path] is a fresh PRNG state for the given coordinates. *)
val state : seed:int -> int list -> Random.State.t
