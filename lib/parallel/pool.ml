(* Fixed-size domain pool over a mutex-protected queue. Determinism comes
   from collection, not scheduling: tasks write into a slot array indexed
   by submission order, and the caller reads the slots back in order once
   every task of its batch has settled. The caller drains the queue while
   waiting, so a width-n pool spawns only n-1 domains and a nested [map]
   issued from inside a task keeps making progress instead of
   deadlocking. *)

let default_domains () =
  match Sys.getenv_opt "HIPPO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type t = {
  width : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled on new work and on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.width

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    let job =
      let rec take () =
        match Queue.take_opt t.queue with
        | Some j -> Some j
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.work t.mutex;
              take ()
            end
      in
      take ()
    in
    Mutex.unlock t.mutex;
    match job with
    | Some j ->
        j ();
        next ()
    | None -> ()
  in
  next ()

let create ?domains () =
  let width =
    max 1 (match domains with Some n -> n | None -> default_domains ())
  in
  let t =
    {
      width;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  if not was_closed then List.iter Domain.join t.workers

let run ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)

type 'b slot = Empty | Ok_ of 'b | Error_ of exn * Printexc.raw_backtrace

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.width <= 1 -> List.map f xs
  | xs ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      let results = Array.make n Empty in
      let remaining = ref n in
      let finished = Condition.create () in
      let task k () =
        let r =
          try Ok_ (f inputs.(k))
          with e -> Error_ (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        results.(k) <- r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for k = 0 to n - 1 do
        Queue.push (task k) t.queue
      done;
      Condition.broadcast t.work;
      (* Caller-helps: run queued tasks (this batch's or, under nesting,
         anyone's) until every slot of this batch has settled. *)
      while !remaining > 0 do
        match Queue.take_opt t.queue with
        | Some job ->
            Mutex.unlock t.mutex;
            job ();
            Mutex.lock t.mutex
        | None -> Condition.wait finished t.mutex
      done;
      Mutex.unlock t.mutex;
      (* First failing submission wins: deterministic error reporting. *)
      Array.iter
        (function
          | Error_ (e, bt) -> Printexc.raise_with_backtrace e bt
          | Ok_ _ | Empty -> ())
        results;
      Array.to_list
        (Array.map
           (function Ok_ v -> v | Empty | Error_ _ -> assert false)
           results)

let map_reduce t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map t f xs)
