(** Andersen-style inclusion-based points-to analysis over PMIR.

    The original Hippocrates uses a whole-program Andersen analysis to
    drive its interprocedural fix heuristic (paper §4.3). This is the same
    algorithm: flow-insensitive, context-insensitive, field-insensitive,
    with one abstract object per allocation site and a single "contents"
    node per object.

    Abstract objects carry provenance: objects born at [pm_alloc] call
    sites (or [pm_base]) are persistent; [alloca] sites, [malloc] sites
    and globals are volatile. The heuristic's "PM alias" / "non-PM alias"
    counts are counts of persistent/volatile objects in a pointer's
    points-to set. *)

open Hippo_pmir

type obj = {
  oid : int;
  site :
    [ `Alloca of Iid.t
    | `Malloc of Iid.t
    | `Pm_alloc of Iid.t
    | `Pm_region
    | `Global of string ];
}

val obj_is_pm : obj -> bool
val pp_obj : Format.formatter -> obj -> unit

(** Constraint-graph nodes: one per (function, register), one per function
    return value, one "contents" node per abstract object. *)
type node =
  | Var of string * string  (** function, register *)
  | Retval of string
  | Contents of int  (** object id *)

module ISet : Set.S with type elt = int

type t

(** Whole-program analysis: constraint generation + worklist solving. *)
val analyze : Program.t -> t

(** The solved points-to set of a node (object ids; empty if unknown). *)
val points_to : t -> node -> ISet.t

(** All abstract objects, in oid order — the abstract-location universe of
    the static durability checker. *)
val objects : t -> obj list

val points_to_var : t -> func:string -> reg:string -> ISet.t
val obj : t -> int -> obj

(** Persistent / volatile objects in the node's points-to set — the alias
    counts of §4.3. *)
val pm_count : t -> node -> int

val vol_count : t -> node -> int

(** May the value point into persistent memory? *)
val may_be_pm : t -> func:string -> Value.t -> bool

(** Is the value a pointer at all (nonempty points-to set, or a literal
    in-range address)? *)
val is_pointer : t -> func:string -> Value.t -> bool
