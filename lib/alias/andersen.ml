(** Andersen-style inclusion-based points-to analysis over PMIR.

    The original Hippocrates uses a whole-program Andersen analysis (Jia
    Chen's LLVM implementation) to drive its interprocedural fix heuristic
    (paper §4.3). This is the same algorithm: flow-insensitive,
    context-insensitive, field-insensitive, with one abstract object per
    allocation site and a single "contents" node per object.

    Abstract objects carry provenance: objects born at [pm_alloc] call
    sites (or [pm_base]) are persistent, everything else — [alloca] sites,
    [malloc] sites, globals — is volatile. The heuristic's "PM alias" /
    "non-PM alias" counts are counts of persistent/volatile objects in a
    pointer's points-to set. *)

open Hippo_pmir

type obj = {
  oid : int;
  site : [ `Alloca of Iid.t | `Malloc of Iid.t | `Pm_alloc of Iid.t
         | `Pm_region | `Global of string ];
}

let obj_is_pm o = match o.site with `Pm_alloc _ | `Pm_region -> true | _ -> false

let pp_obj ppf o =
  match o.site with
  | `Alloca iid -> Fmt.pf ppf "alloca@%a" Iid.pp iid
  | `Malloc iid -> Fmt.pf ppf "malloc@%a" Iid.pp iid
  | `Pm_alloc iid -> Fmt.pf ppf "pm_alloc@%a" Iid.pp iid
  | `Pm_region -> Fmt.string ppf "pm_region"
  | `Global g -> Fmt.pf ppf "global@%s" g

(* Constraint-graph nodes: one per (function, register), one per function
   return value, one "contents" node per abstract object. *)
type node =
  | Var of string * string  (** function, register *)
  | Retval of string  (** function name *)
  | Contents of int  (** object id *)

module NodeKey = struct
  type t = node

  let equal a b =
    match (a, b) with
    | Var (f1, r1), Var (f2, r2) -> String.equal f1 f2 && String.equal r1 r2
    | Retval f1, Retval f2 -> String.equal f1 f2
    | Contents o1, Contents o2 -> Int.equal o1 o2
    | (Var _ | Retval _ | Contents _), _ -> false

  let hash = Hashtbl.hash
end

module NTbl = Hashtbl.Make (NodeKey)

module ISet = Set.Make (Int)

type t = {
  objects : obj array;
  points_to : ISet.t NTbl.t;  (** solved points-to sets (object ids) *)
}

(* Solver state: for each node, its current points-to set, its copy-edge
   successors, and the load/store constraints deferred until the set
   grows. Difference propagation: [delta] holds the objects added to a
   node's set since the node was last processed, and the solver applies
   constraints to the delta only — each object crosses each edge once,
   instead of the whole set being re-unioned on every visit. [queued]
   keeps a node from being enqueued twice while it waits. *)
type solver = {
  mutable objs : obj list;
  mutable nobj : int;
  pts : ISet.t ref NTbl.t;
  delta : ISet.t ref NTbl.t;  (** unprocessed recent additions to pts *)
  queued : unit NTbl.t;  (** nodes currently on the worklist *)
  succs : node list ref NTbl.t;
  (* [dst = *src]: when o enters pts(src), add edge Contents o -> dst *)
  load_cons : node list ref NTbl.t;
  (* [*dst = src]: when o enters pts(dst), add edge src -> Contents o *)
  store_cons : node list ref NTbl.t;
  mutable worklist : node list;
}

let get tbl key =
  match NTbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref [] in
      NTbl.add tbl key r;
      r

let get_pts s key =
  match NTbl.find_opt s.pts key with
  | Some r -> r
  | None ->
      let r = ref ISet.empty in
      NTbl.add s.pts key r;
      r

let new_obj s site =
  let o = { oid = s.nobj; site } in
  s.nobj <- s.nobj + 1;
  s.objs <- o :: s.objs;
  o

let get_delta s key =
  match NTbl.find_opt s.delta key with
  | Some r -> r
  | None ->
      let r = ref ISet.empty in
      NTbl.add s.delta key r;
      r

let enqueue s node =
  if not (NTbl.mem s.queued node) then begin
    NTbl.replace s.queued node ();
    s.worklist <- node :: s.worklist
  end

(* Additions land in both pts and the node's delta; a node already waiting
   on the worklist just accumulates more delta instead of a second entry. *)
let add_to_pts s node oid =
  let r = get_pts s node in
  if not (ISet.mem oid !r) then begin
    r := ISet.add oid !r;
    let d = get_delta s node in
    d := ISet.add oid !d;
    enqueue s node
  end

let add_set_to_pts s node set =
  let r = get_pts s node in
  let fresh = ISet.diff set !r in
  if not (ISet.is_empty fresh) then begin
    r := ISet.union !r fresh;
    let d = get_delta s node in
    d := ISet.union !d fresh;
    enqueue s node
  end

let add_edge s src dst =
  let es = get s.succs src in
  if not (List.exists (NodeKey.equal dst) !es) then begin
    es := dst :: !es;
    (* a new edge must carry the source's full current set once; deltas
       cover everything that arrives later *)
    add_set_to_pts s dst !(get_pts s src)
  end

(* Constraint generation --------------------------------------------------- *)

let gen_func s (prog : Program.t) (f : Func.t) =
  let fname = Func.name f in
  let var r = Var (fname, r) in
  let value_node (v : Value.t) : node option =
    match v with
    | Value.Reg r -> Some (var r)
    | Value.Global g ->
        (* The global's address value: points to the global object. *)
        let nd = Var ("<globals>", g) in
        (match NTbl.find_opt s.pts nd with
        | Some _ -> ()
        | None ->
            let o =
              match
                List.find_opt
                  (fun ob -> ob.site = `Global g)
                  s.objs
              with
              | Some ob -> ob
              | None -> new_obj s (`Global g)
            in
            add_to_pts s nd o.oid);
        Some nd
    | Value.Imm _ | Value.Null -> None
  in
  let copy_into dst v =
    match value_node v with Some n -> add_edge s n dst | None -> ()
  in
  List.iter
    (fun (i : Instr.t) ->
      match Instr.op i with
      | Instr.Mov { dst; src } -> copy_into (var dst) src
      | Instr.Gep { dst; base; offset } ->
          copy_into (var dst) base;
          (* Pointers occasionally flow through the offset operand in
             hand-written address arithmetic; stay conservative. *)
          copy_into (var dst) offset
      | Instr.Binop { dst; op = _; lhs; rhs } ->
          copy_into (var dst) lhs;
          copy_into (var dst) rhs
      | Instr.Alloca { dst; _ } ->
          let o = new_obj s (`Alloca (Instr.iid i)) in
          add_to_pts s (var dst) o.oid
      | Instr.Load { dst; addr; _ } -> (
          match value_node addr with
          | Some a ->
              let lc = get s.load_cons a in
              lc := var dst :: !lc;
              (* apply to already-known objects *)
              ISet.iter
                (fun oid -> add_edge s (Contents oid) (var dst))
                !(get_pts s a)
          | None -> ())
      | Instr.Store { addr; value; _ } -> (
          match (value_node addr, value_node value) with
          | Some a, Some v ->
              let sc = get s.store_cons a in
              sc := v :: !sc;
              ISet.iter (fun oid -> add_edge s v (Contents oid)) !(get_pts s a)
          | _ -> ())
      | Instr.Call { dst; callee; args } -> (
          match callee with
          | "pm_alloc" ->
              Option.iter
                (fun d ->
                  let o = new_obj s (`Pm_alloc (Instr.iid i)) in
                  add_to_pts s (var d) o.oid)
                dst
          | "pm_base" ->
              Option.iter
                (fun d ->
                  let o =
                    match
                      List.find_opt (fun ob -> ob.site = `Pm_region) s.objs
                    with
                    | Some ob -> ob
                    | None -> new_obj s `Pm_region
                  in
                  add_to_pts s (var d) o.oid)
                dst
          | "malloc" ->
              Option.iter
                (fun d ->
                  let o = new_obj s (`Malloc (Instr.iid i)) in
                  add_to_pts s (var d) o.oid)
                dst
          | _ when Program.is_intrinsic callee -> ()
          | _ -> (
              match Program.find prog callee with
              | None -> ()
              | Some cf ->
                  let cname = Func.name cf in
                  List.iteri
                    (fun k arg ->
                      match List.nth_opt (Func.params cf) k with
                      | Some p -> copy_into (Var (cname, p)) arg
                      | None -> ())
                    args;
                  Option.iter
                    (fun d -> add_edge s (Retval cname) (var d))
                    dst))
      | Instr.Ret (Some v) -> copy_into (Retval fname) v
      | Instr.Ret None | Instr.Br _ | Instr.Condbr _ | Instr.Fence _
      | Instr.Flush _ | Instr.Crash ->
          ())
    (Func.instrs f)

(* Worklist solving -------------------------------------------------------- *)

let solve s =
  let rec loop () =
    match s.worklist with
    | [] -> ()
    | n :: rest ->
        s.worklist <- rest;
        NTbl.remove s.queued n;
        (* only the objects added since n was last processed; everything
           older already crossed these edges *)
        let d = get_delta s n in
        let nd = !d in
        d := ISet.empty;
        if not (ISet.is_empty nd) then begin
          (* complex constraints indexed on n *)
          (match NTbl.find_opt s.load_cons n with
          | Some lc ->
              ISet.iter
                (fun oid -> List.iter (add_edge s (Contents oid)) !lc)
                nd
          | None -> ());
          (match NTbl.find_opt s.store_cons n with
          | Some sc ->
              List.iter
                (fun v -> ISet.iter (fun oid -> add_edge s v (Contents oid)) nd)
                !sc
          | None -> ());
          (* copy edges *)
          match NTbl.find_opt s.succs n with
          | Some es -> List.iter (fun dst -> add_set_to_pts s dst nd) !es
          | None -> ()
        end;
        loop ()
  in
  loop ()

(** [analyze prog] runs the whole-program analysis. *)
let analyze (prog : Program.t) : t =
  let s =
    {
      objs = [];
      nobj = 0;
      pts = NTbl.create 1024;
      delta = NTbl.create 1024;
      queued = NTbl.create 256;
      succs = NTbl.create 1024;
      load_cons = NTbl.create 256;
      store_cons = NTbl.create 256;
      worklist = [];
    }
  in
  List.iter (gen_func s prog) (Program.funcs prog);
  solve s;
  let objects = Array.make s.nobj { oid = 0; site = `Pm_region } in
  List.iter (fun o -> objects.(o.oid) <- o) s.objs;
  let points_to = NTbl.create (NTbl.length s.pts) in
  NTbl.iter (fun k v -> NTbl.replace points_to k !v) s.pts;
  { objects; points_to }

(* Queries ----------------------------------------------------------------- *)

let points_to t node =
  match NTbl.find_opt t.points_to node with
  | Some set -> set
  | None -> ISet.empty

(** All abstract objects, in oid order — lets clients (the static checker)
    index allocation sites without re-deriving them from the program. *)
let objects t = Array.to_list t.objects

let points_to_var t ~func ~reg = points_to t (Var (func, reg))

let obj t oid = t.objects.(oid)

(** [pm_count t node] and [vol_count t node]: persistent and volatile
    objects in the node's points-to set — the alias counts of §4.3. *)
let pm_count t node =
  ISet.cardinal (ISet.filter (fun oid -> obj_is_pm t.objects.(oid)) (points_to t node))

let vol_count t node =
  ISet.cardinal
    (ISet.filter (fun oid -> not (obj_is_pm t.objects.(oid))) (points_to t node))

(** A value may point into persistent memory. *)
let may_be_pm t ~func (v : Value.t) =
  match v with
  | Value.Reg r -> pm_count t (Var (func, r)) > 0
  | Value.Global _ -> false
  | Value.Imm n -> Hippo_pmcheck.Layout.is_pm n
  | Value.Null -> false

(** A value is a pointer at all (nonempty points-to set). *)
let is_pointer t ~func (v : Value.t) =
  match v with
  | Value.Reg r -> not (ISet.is_empty (points_to t (Var (func, r))))
  | Value.Global _ -> true
  | Value.Imm n ->
      Hippo_pmcheck.Layout.is_pm n || Hippo_pmcheck.Layout.is_volatile_ptr n
  | Value.Null -> false
