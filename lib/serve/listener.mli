(** The network front end: a single-domain [Unix.select] event loop
    (the interpreter session serializes every op anyway), plus the
    synchronous RPC client used by the load generator.

    Complete frames are dispatched in arrival order; [Truncated] input
    waits for more bytes; [Oversized]/[Malformed] input earns an [Err]
    reply and the connection is closed. *)

(** Bind a Unix-domain listening socket (unlinking any stale path). *)
val listen_unix : path:string -> Unix.file_descr

(** Bind 127.0.0.1:[port]; port 0 picks an ephemeral port — read it
    back with {!port_of}. *)
val listen_tcp : port:int -> Unix.file_descr

val port_of : Unix.file_descr -> int

(** Run the accept/dispatch loop. With [expect_conns], return once that
    many connections have been accepted and closed (the test/bench
    lifetime bound); without it, loop forever. *)
val serve :
  app:Hippo_apps.App.t ->
  metrics:Metrics.t ->
  listen:Unix.file_descr ->
  ?expect_conns:int ->
  unit ->
  unit

module Client : sig
  type t

  val connect_unix : path:string -> t
  val connect_tcp : port:int -> t
  val close : t -> unit

  exception Protocol_error of Protocol.error
  exception Disconnected

  (** One synchronous round trip. *)
  val rpc : t -> Protocol.request -> Protocol.reply
end
