(** The YCSB load generator: workload op streams expanded to protocol
    request streams, plus reply-verdict tallies.

    Worker [w] of [W] owns the disjoint keyspace [{k*W + w}] and draws
    ops from the substream [Stream.derive ~seed [ns; w]], so summed
    verdicts are identical under any worker interleaving and any
    [--jobs] width. Scans are emulated as point GETs (neither app
    iterates), read-modify-write as GET + SET. *)

open Hippo_ycsb

(** Worker [w]'s slice of [total] (even split, remainder to the first
    workers). *)
val share : total:int -> workers:int -> int -> int

(** The global key id behind worker [worker]'s logical key. *)
val global_key : workers:int -> worker:int -> int -> int

val key_string : workers:int -> worker:int -> int -> string

val worker_spec :
  kind:Workload.kind -> records:int -> ops:int -> workers:int -> worker:int ->
  Workload.spec

val worker_seed : seed:int -> worker:int -> int

(** The load phase: SET every record key (version 0), sequentially. *)
val load_requests :
  records:int -> workers:int -> worker:int -> Protocol.request Seq.t

(** The run phase; like {!Workload.seq}, replayable from the head,
    intermediate nodes ephemeral. *)
val run_requests :
  kind:Workload.kind -> records:int -> ops:int -> workers:int -> worker:int ->
  seed:int -> Protocol.request Seq.t

(** Records present after the run: loaded records plus the run's inserts
    (counted by streaming the ops; no interpreter involved). *)
val final_records :
  kind:Workload.kind -> records:int -> ops:int -> workers:int -> worker:int ->
  seed:int -> int

type verdicts = {
  ok : int;  (** SET acknowledgements *)
  found : int;
  absent : int;
  deleted : int;
  missed : int;  (** DEL of an absent key *)
  unsupported : int;
  counted : int;
  errors : int;
}

val zero : verdicts
val add : verdicts -> Protocol.reply -> verdicts
val sum : verdicts -> verdicts -> verdicts
val total : verdicts -> int
val pp_verdicts : Format.formatter -> verdicts -> unit

type socket_result = {
  load_verdicts : verdicts;
  run_verdicts : verdicts;
  load_reqs : int;
  run_reqs : int;
  wall_s : float;
}

(** Drive a server over sockets: one connection per logical worker,
    workers spread across [pool]. Verdicts are deterministic; wall time
    is not. *)
val run_sockets :
  connect:(unit -> Listener.Client.t) ->
  pool:Hippo_parallel.Pool.t ->
  kind:Workload.kind ->
  records:int ->
  ops:int ->
  workers:int ->
  seed:int ->
  skip_load:bool ->
  unit ->
  socket_result
