(** The in-process driver: load generator + codec + handler + metrics,
    minus the sockets. Dispatch is a deterministic round-robin across
    logical workers (frame generation fans out over the [--jobs] pool
    but is pure per-worker work collected in submission order), and each
    frame goes through {!Handler.handle_wire}, so CI exercises exactly
    the codec the network listener does. Every {!outcome} field except
    the wall-clock ones is byte-identical at any [--jobs] width. *)

open Hippo_ycsb

(** Interpreter config for a service holding [final_records] entries:
    trace off, unlimited fuel, the default cost model, PM sized to the
    record count. [exec] picks the execution tier (default: the
    library-wide default, the compiled tier); either tier produces
    byte-identical service observables. *)
val serve_config :
  ?exec:Hippo_pmcheck.Exec.tier ->
  final_records:int ->
  unit ->
  Hippo_pmcheck.Interp.config

val serve_nbuckets : final_records:int -> int

type outcome = {
  app_name : string;
  workers : int;
  records : int;  (** loaded records, all workers *)
  final_records : int;  (** records after the run's inserts *)
  load_reqs : int;
  run_reqs : int;
  load_verdicts : Loadgen.verdicts;
  run_verdicts : Loadgen.verdicts;
  hist : Hippo_perfmodel.Stats.Hist.t;
  sim_load_ns : float;
  sim_run_ns : float;
  wall_load_s : float;  (** wall clock; NOT deterministic *)
  wall_run_s : float;
  count : int;
  check : bool;
  digest : int;  (** FNV over the full final store contents *)
}

(** Run the whole pipeline in-process. [Error] when the app/variant
    cannot be built (e.g. pclht flush-free, or repair verification
    fails). *)
val run_inproc :
  ?exec:Hippo_pmcheck.Exec.tier ->
  pool:Hippo_parallel.Pool.t ->
  app:Hippo_apps.App.kind ->
  variant:Hippo_apps.App.variant ->
  workload:Workload.kind ->
  records:int ->
  ops:int ->
  workers:int ->
  seed:int ->
  unit ->
  (outcome, string) result

(** Do two variants agree on every deterministic service observable
    (verdicts, final count, store digest)? The serve-level
    do-no-harm check. *)
val agrees : outcome -> outcome -> bool

(** Deterministic rendering (no wall-clock fields): the smoke output. *)
val pp_outcome : Format.formatter -> outcome -> unit
