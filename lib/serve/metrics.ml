(** Server-side operation metrics: total and per-kind op counters plus a
    simulated-latency histogram ({!Hippo_perfmodel.Stats.Hist}).

    Latencies are {e simulated} nanoseconds — per-op deltas of the
    interpreter's cost model — so the histogram (and every percentile
    derived from it) is a pure function of the dispatched op sequence,
    independent of wall clock, machine and [--jobs]. *)

module Hist = Hippo_perfmodel.Stats.Hist

type t = { kind_counts : int array; hist : Hist.t; mutable ops : int }

let create () =
  { kind_counts = Array.make Protocol.nkinds 0; hist = Hist.create (); ops = 0 }

let record t kind ~ns =
  let i = Protocol.kind_index kind in
  t.kind_counts.(i) <- t.kind_counts.(i) + 1;
  t.ops <- t.ops + 1;
  Hist.record t.hist ns

let ops t = t.ops

(** An immutable copy, as served by the STATS endpoint. *)
let snapshot t : Protocol.server_stats =
  {
    ops = t.ops;
    kind_counts = Array.copy t.kind_counts;
    hist = Hist.merge t.hist (Hist.create ());
  }

let pp ppf t =
  let pairs =
    List.filter_map
      (fun i ->
        if t.kind_counts.(i) = 0 then None
        else
          Some
            (Fmt.str "%s=%d"
               (Protocol.kind_name (Protocol.kind_of_index i))
               t.kind_counts.(i)))
      (List.init Protocol.nkinds Fun.id)
  in
  Fmt.pf ppf "ops=%d [%s] %a" t.ops (String.concat " " pairs) Hist.pp t.hist
