(** The wire protocol: length-prefixed binary frames.

    Every message is one frame: a big-endian u32 payload length followed
    by the payload; the first payload byte is the message tag (requests
    1–6, replies 0x80–0x87). Integers are big-endian; key lengths are
    u16, value lengths u32, counters u64.

    Decoding is incremental: the decoders take a buffer and an offset
    and either consume exactly one frame or report [Truncated] (read
    more bytes), [Oversized] (protocol violation — close the
    connection), or [Malformed] (a complete frame whose payload does not
    parse; a short payload inside a complete frame is malformed, never
    truncated — the length prefix is the framing authority). *)

type request =
  | Set of { key : string; value : string }
  | Get of { key : string }
  | Del of { key : string }
  | Scan of { key : string; len : int }
  | Count
  | Stats

(** Operation kinds, indexing the per-kind counters in {!server_stats}. *)
type op_kind = KSet | KGet | KDel | KScan | KCount | KStats

val nkinds : int
val kind_index : op_kind -> int
val kind_name : op_kind -> string

(** Raises [Invalid_argument] outside [0..nkinds-1]. *)
val kind_of_index : int -> op_kind

val kind_of_request : request -> op_kind

(** The STATS payload: total ops served, per-kind counts (indexed by
    {!kind_index}), and the simulated-latency histogram. *)
type server_stats = {
  ops : int;
  kind_counts : int array;  (** length {!nkinds} *)
  hist : Hippo_perfmodel.Stats.Hist.t;
}

type reply =
  | Ok_
  | Value of string
  | Not_found
  | Deleted of bool
  | Unsupported
  | Count_is of int
  | Stats_are of server_stats
  | Err of string

type error = Truncated | Oversized of int | Malformed of string

val pp_error : Format.formatter -> error -> unit

(** Maximum payload bytes per frame (1 MiB). *)
val max_payload : int

(** Encoders produce a complete frame (length prefix included). They
    raise [Invalid_argument] when a field exceeds its wire width or the
    frame exceeds {!max_payload}. *)
val encode_request : request -> string

val encode_reply : reply -> string

(** [decode_request buf ~pos] consumes one frame starting at [pos] and
    returns the message plus the offset just past the frame. *)
val decode_request : string -> pos:int -> (request * int, error) result

val decode_reply : string -> pos:int -> (reply * int, error) result
val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit
