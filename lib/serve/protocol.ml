(** The wire protocol: length-prefixed binary frames.

    Every message is one frame: a big-endian u32 payload length followed
    by the payload; the first payload byte is the message tag. Requests
    use tags 1–6, replies 0x80–0x87, so a stream position can never
    confuse the two directions. Integers are big-endian; key lengths are
    u16, value lengths u32, counters u64 (stored in OCaml ints, so
    counts stay below 2^62 — far beyond any run here).

    Decoding is incremental: [decode_request]/[decode_reply] take a
    buffer and an offset and either consume exactly one frame or report
    [Truncated] (the caller should read more bytes), [Oversized] (the
    declared length exceeds {!max_payload} — a protocol violation, close
    the connection) or [Malformed] (a complete frame whose payload does
    not parse). A complete frame with a short payload is [Malformed],
    never [Truncated]: the length prefix is the framing authority. *)

type request =
  | Set of { key : string; value : string }
  | Get of { key : string }
  | Del of { key : string }
  | Scan of { key : string; len : int }
  | Count
  | Stats

(** Operation kinds, indexing the per-kind counters in {!server_stats}
    (and in [Metrics]). *)
type op_kind = KSet | KGet | KDel | KScan | KCount | KStats

let nkinds = 6

let kind_index = function
  | KSet -> 0
  | KGet -> 1
  | KDel -> 2
  | KScan -> 3
  | KCount -> 4
  | KStats -> 5

let kind_name = function
  | KSet -> "set"
  | KGet -> "get"
  | KDel -> "del"
  | KScan -> "scan"
  | KCount -> "count"
  | KStats -> "stats"

let kind_of_index = function
  | 0 -> KSet
  | 1 -> KGet
  | 2 -> KDel
  | 3 -> KScan
  | 4 -> KCount
  | 5 -> KStats
  | _ -> invalid_arg "Protocol.kind_of_index"

let kind_of_request = function
  | Set _ -> KSet
  | Get _ -> KGet
  | Del _ -> KDel
  | Scan _ -> KScan
  | Count -> KCount
  | Stats -> KStats

(** The STATS payload: total ops served, per-kind counts (indexed by
    {!kind_index}), and the simulated-latency histogram. *)
type server_stats = {
  ops : int;
  kind_counts : int array;  (** length {!nkinds} *)
  hist : Hippo_perfmodel.Stats.Hist.t;
}

type reply =
  | Ok_
  | Value of string
  | Not_found
  | Deleted of bool
  | Unsupported
  | Count_is of int
  | Stats_are of server_stats
  | Err of string

type error = Truncated | Oversized of int | Malformed of string

let pp_error ppf = function
  | Truncated -> Fmt.pf ppf "truncated frame"
  | Oversized n -> Fmt.pf ppf "oversized frame (%d bytes)" n
  | Malformed m -> Fmt.pf ppf "malformed frame: %s" m

let max_payload = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Encoding *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u16 b v =
  if v < 0 || v > 0xFFFF then invalid_arg "Protocol: u16 out of range";
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Protocol: u32 out of range";
  add_u8 b (v lsr 24);
  add_u8 b (v lsr 16);
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u64 b v =
  if v < 0 then invalid_arg "Protocol: u64 out of range";
  for byte = 7 downto 0 do
    add_u8 b (v lsr (byte * 8))
  done

let add_short_string b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_long_string b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

(* Prefix a payload with its u32 length. *)
let frame payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Protocol: frame exceeds max_payload";
  let b = Buffer.create (n + 4) in
  add_u32 b n;
  Buffer.add_string b payload;
  Buffer.contents b

let encode_request (r : request) : string =
  let b = Buffer.create 64 in
  (match r with
  | Set { key; value } ->
      add_u8 b 1;
      add_short_string b key;
      add_long_string b value
  | Get { key } ->
      add_u8 b 2;
      add_short_string b key
  | Del { key } ->
      add_u8 b 3;
      add_short_string b key
  | Scan { key; len } ->
      add_u8 b 4;
      add_short_string b key;
      add_u32 b len
  | Count -> add_u8 b 5
  | Stats -> add_u8 b 6);
  frame (Buffer.contents b)

let encode_reply (r : reply) : string =
  let b = Buffer.create 64 in
  (match r with
  | Ok_ -> add_u8 b 0x80
  | Value v ->
      add_u8 b 0x81;
      add_long_string b v
  | Not_found -> add_u8 b 0x82
  | Deleted d ->
      add_u8 b 0x83;
      add_u8 b (if d then 1 else 0)
  | Unsupported -> add_u8 b 0x84
  | Count_is n ->
      add_u8 b 0x85;
      add_u64 b n
  | Stats_are s ->
      add_u8 b 0x86;
      add_u64 b s.ops;
      if Array.length s.kind_counts <> nkinds then
        invalid_arg "Protocol: kind_counts length";
      Array.iter (add_u64 b) s.kind_counts;
      let pairs = Hippo_perfmodel.Stats.Hist.buckets s.hist in
      add_u32 b (List.length pairs);
      List.iter
        (fun (i, c) ->
          add_u16 b i;
          add_u64 b c)
        pairs
  | Err msg -> (
      add_u8 b 0x87;
      add_short_string b msg));
  frame (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Short
exception Bad of string

type cursor = { s : string; mutable p : int; limit : int }

let u8 c =
  if c.p >= c.limit then raise Short;
  let v = Char.code c.s.[c.p] in
  c.p <- c.p + 1;
  v

let u16 c =
  let a = u8 c in
  let b = u8 c in
  (a lsl 8) lor b

let u32 c =
  let a = u16 c in
  let b = u16 c in
  (a lsl 16) lor b

let u64 c =
  let v = ref 0 in
  for _ = 1 to 8 do
    let byte = u8 c in
    if !v lsr 54 <> 0 then raise (Bad "u64 exceeds OCaml int range");
    v := (!v lsl 8) lor byte
  done;
  !v

let take c n =
  if n < 0 || c.p + n > c.limit then raise Short;
  let s = String.sub c.s c.p n in
  c.p <- c.p + n;
  s

let short_string c = take c (u16 c)
let long_string c = take c (u32 c)

let decode_request_payload c : request =
  match u8 c with
  | 1 ->
      let key = short_string c in
      let value = long_string c in
      Set { key; value }
  | 2 -> Get { key = short_string c }
  | 3 -> Del { key = short_string c }
  | 4 ->
      let key = short_string c in
      let len = u32 c in
      Scan { key; len }
  | 5 -> Count
  | 6 -> Stats
  | t -> raise (Bad (Fmt.str "unknown request tag 0x%02x" t))

let decode_reply_payload c : reply =
  match u8 c with
  | 0x80 -> Ok_
  | 0x81 -> Value (long_string c)
  | 0x82 -> Not_found
  | 0x83 -> (
      match u8 c with
      | 0 -> Deleted false
      | 1 -> Deleted true
      | v -> raise (Bad (Fmt.str "bad Deleted flag %d" v)))
  | 0x84 -> Unsupported
  | 0x85 -> Count_is (u64 c)
  | 0x86 ->
      let ops = u64 c in
      let kind_counts = Array.init nkinds (fun _ -> u64 c) in
      let npairs = u32 c in
      let pairs =
        List.init npairs (fun _ ->
            let i = u16 c in
            let n = u64 c in
            (i, n))
      in
      let hist =
        try Hippo_perfmodel.Stats.Hist.of_buckets pairs
        with Invalid_argument m -> raise (Bad m)
      in
      Stats_are { ops; kind_counts; hist }
  | 0x87 -> Err (short_string c)
  | t -> raise (Bad (Fmt.str "unknown reply tag 0x%02x" t))

(* Decode one frame starting at [pos]; [payload] parses the body. *)
let decode_frame payload buf ~pos : ('a * int, error) result =
  let avail = String.length buf - pos in
  if avail < 4 then Error Truncated
  else
    let header = { s = buf; p = pos; limit = String.length buf } in
    let len = u32 header in
    if len > max_payload then Error (Oversized len)
    else if avail < 4 + len then Error Truncated
    else
      let c = { s = buf; p = pos + 4; limit = pos + 4 + len } in
      match payload c with
      | v ->
          if c.p <> c.limit then
            Error (Malformed "trailing bytes in payload")
          else Ok (v, pos + 4 + len)
      | exception Short -> Error (Malformed "payload shorter than declared")
      | exception Bad m -> Error (Malformed m)

let decode_request buf ~pos = decode_frame decode_request_payload buf ~pos
let decode_reply buf ~pos = decode_frame decode_reply_payload buf ~pos

(* ------------------------------------------------------------------ *)

let pp_request ppf = function
  | Set { key; value } ->
      Fmt.pf ppf "SET %s (%d bytes)" key (String.length value)
  | Get { key } -> Fmt.pf ppf "GET %s" key
  | Del { key } -> Fmt.pf ppf "DEL %s" key
  | Scan { key; len } -> Fmt.pf ppf "SCAN %s %d" key len
  | Count -> Fmt.pf ppf "COUNT"
  | Stats -> Fmt.pf ppf "STATS"

let pp_reply ppf = function
  | Ok_ -> Fmt.pf ppf "OK"
  | Value v -> Fmt.pf ppf "VALUE (%d bytes)" (String.length v)
  | Not_found -> Fmt.pf ppf "NOT_FOUND"
  | Deleted d -> Fmt.pf ppf "DELETED %b" d
  | Unsupported -> Fmt.pf ppf "UNSUPPORTED"
  | Count_is n -> Fmt.pf ppf "COUNT_IS %d" n
  | Stats_are s ->
      Fmt.pf ppf "STATS ops=%d %a" s.ops Hippo_perfmodel.Stats.Hist.pp s.hist
  | Err m -> Fmt.pf ppf "ERR %s" m
