(** The YCSB load generator: turns workload op streams into protocol
    request streams and tallies reply verdicts.

    Determinism is the whole design. The generator is parameterized by
    {e logical} workers, decoupled from physical [--jobs]: worker [w] of
    [W] owns the disjoint keyspace [{k*W + w}] (a round-robin remap of
    its workload's logical keys) and draws its ops from the substream
    [Stream.derive ~seed [ns; w]]. Because keyspaces are disjoint, every
    reply verdict (found/absent, deleted/missed) is a function of that
    worker's own op prefix alone — the summed verdict counts are
    identical under any interleaving of workers and any [--jobs] width.

    Neither app supports scans, so [Scan (k, len)] is emulated as [len]
    point GETs (exactly what the apps' own [run_op] harnesses do) and
    read-modify-write as GET + SET. *)

open Hippo_ycsb

(* Substream namespaces (arbitrary distinct tags). *)
let ns_run = 0x10ad

(** Worker [w]'s slice of [total] (even split, remainder to the first
    workers). *)
let share ~total ~workers w = (total / workers) + (if w < total mod workers then 1 else 0)

(** The global key id behind worker [w]'s logical key [k]. *)
let global_key ~workers ~worker k = (k * workers) + worker

let key_string ~workers ~worker k =
  Workload.key_bytes (global_key ~workers ~worker k)

(** Worker [w]'s workload spec for a [records]-record [ops]-op run. *)
let worker_spec ~kind ~records ~ops ~workers ~worker : Workload.spec =
  {
    Workload.kind;
    record_count = share ~total:records ~workers worker;
    op_count = share ~total:ops ~workers worker;
    max_scan_len = 10;
  }

let worker_seed ~seed ~worker = Hippo_parallel.Stream.derive ~seed [ ns_run; worker ]

(** The load phase: SET every record key (version 0), sequentially. *)
let load_requests ~records ~workers ~worker : Protocol.request Seq.t =
  let r = share ~total:records ~workers worker in
  let rec node k () =
    if k >= r then Seq.Nil
    else
      let g = global_key ~workers ~worker k in
      Seq.Cons
        ( Protocol.Set
            {
              key = Workload.key_bytes g;
              value = Workload.value_bytes ~k:g ~version:0;
            },
          node (k + 1) )
  in
  node 0

(** The run phase: the worker's YCSB op stream expanded to requests.
    Updates and the write half of read-modify-write carry a fresh
    version (the worker's op ordinal), so the final store contents pin
    the last writer of every key. Like {!Workload.seq}, traversals from
    the head replay identically but intermediate nodes are ephemeral. *)
let run_requests ~kind ~records ~ops ~workers ~worker ~seed :
    Protocol.request Seq.t =
 fun () ->
  let spec = worker_spec ~kind ~records ~ops ~workers ~worker in
  let wseed = worker_seed ~seed ~worker in
  let key = key_string ~workers ~worker in
  let ordinal = ref 0 in
  let expand (op : Workload.op) : Protocol.request list =
    let v = 1 + !ordinal in
    incr ordinal;
    match op with
    | Read k -> [ Get { key = key k } ]
    | Update k ->
        let g = global_key ~workers ~worker k in
        [ Set { key = key k; value = Workload.value_bytes ~k:g ~version:v } ]
    | Insert k ->
        let g = global_key ~workers ~worker k in
        [ Set { key = key k; value = Workload.value_bytes ~k:g ~version:0 } ]
    | Scan (k, len) -> List.init len (fun i -> Protocol.Get { key = key (k + i) })
    | Read_modify_write k ->
        let g = global_key ~workers ~worker k in
        [
          Get { key = key k };
          Set { key = key k; value = Workload.value_bytes ~k:g ~version:v };
        ]
  in
  Seq.concat_map (fun op -> List.to_seq (expand op)) (Workload.seq spec ~seed:wseed) ()

(** Records present after the run phase: the loaded records plus the
    run's inserts (workloads D and E), counted by streaming the ops (no
    interpreter involved — a million ops cost well under a second). *)
let final_records ~kind ~records ~ops ~workers ~worker ~seed =
  let spec = worker_spec ~kind ~records ~ops ~workers ~worker in
  match kind with
  | Workload.Load -> spec.record_count
  | _ ->
      let wseed = worker_seed ~seed ~worker in
      Seq.fold_left
        (fun acc (op : Workload.op) ->
          match op with Insert _ -> acc + 1 | _ -> acc)
        spec.record_count
        (Workload.seq spec ~seed:wseed)

(* ------------------------------------------------------------------ *)
(* Verdict tallies *)

type verdicts = {
  ok : int;  (** SET acknowledgements *)
  found : int;
  absent : int;
  deleted : int;
  missed : int;  (** DEL of an absent key *)
  unsupported : int;
  counted : int;
  errors : int;
}

let zero =
  {
    ok = 0;
    found = 0;
    absent = 0;
    deleted = 0;
    missed = 0;
    unsupported = 0;
    counted = 0;
    errors = 0;
  }

let add v (r : Protocol.reply) =
  match r with
  | Ok_ -> { v with ok = v.ok + 1 }
  | Value _ -> { v with found = v.found + 1 }
  | Not_found -> { v with absent = v.absent + 1 }
  | Deleted true -> { v with deleted = v.deleted + 1 }
  | Deleted false -> { v with missed = v.missed + 1 }
  | Unsupported -> { v with unsupported = v.unsupported + 1 }
  | Count_is _ -> { v with counted = v.counted + 1 }
  | Stats_are _ -> v
  | Err _ -> { v with errors = v.errors + 1 }

let sum a b =
  {
    ok = a.ok + b.ok;
    found = a.found + b.found;
    absent = a.absent + b.absent;
    deleted = a.deleted + b.deleted;
    missed = a.missed + b.missed;
    unsupported = a.unsupported + b.unsupported;
    counted = a.counted + b.counted;
    errors = a.errors + b.errors;
  }

let total v =
  v.ok + v.found + v.absent + v.deleted + v.missed + v.unsupported + v.counted
  + v.errors

let pp_verdicts ppf v =
  Fmt.pf ppf "ok=%d found=%d absent=%d deleted=%d missed=%d unsupported=%d counted=%d errors=%d"
    v.ok v.found v.absent v.deleted v.missed v.unsupported v.counted v.errors

(* ------------------------------------------------------------------ *)
(* Socket mode: one connection per worker, synchronous RPC. *)

type socket_result = {
  load_verdicts : verdicts;
  run_verdicts : verdicts;
  load_reqs : int;
  run_reqs : int;
  wall_s : float;
}

(** Drive a server over sockets: each logical worker opens its own
    connection via [connect] and streams its load slice then its run
    slice. Workers run across [pool]; summed verdicts are deterministic
    (disjoint keyspaces), wall time is not. *)
let run_sockets ~(connect : unit -> Listener.Client.t) ~pool ~kind ~records
    ~ops ~workers ~seed ~skip_load () : socket_result =
  let t0 = Unix.gettimeofday () in
  let per_worker =
    Hippo_parallel.Pool.map pool
      (fun worker ->
        let client = connect () in
        Fun.protect
          ~finally:(fun () -> Listener.Client.close client)
          (fun () ->
            let drive seq =
              Seq.fold_left
                (fun (v, n) req ->
                  (add v (Listener.Client.rpc client req), n + 1))
                (zero, 0) seq
            in
            let load =
              if skip_load then (zero, 0)
              else drive (load_requests ~records ~workers ~worker)
            in
            let run =
              drive (run_requests ~kind ~records ~ops ~workers ~worker ~seed)
            in
            (load, run)))
      (List.init workers Fun.id)
  in
  let fold f = List.fold_left f (zero, 0) per_worker in
  let load_verdicts, load_reqs =
    fold (fun (v, n) ((lv, ln), _) -> (sum v lv, n + ln))
  in
  let run_verdicts, run_reqs =
    fold (fun (v, n) (_, (rv, rn)) -> (sum v rv, n + rn))
  in
  {
    load_verdicts;
    run_verdicts;
    load_reqs;
    run_reqs;
    wall_s = Unix.gettimeofday () -. t0;
  }
