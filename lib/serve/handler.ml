(** Request dispatch: one protocol request in, one reply out, over a
    uniform {!Hippo_apps.App} adapter.

    Per-op latency is the delta of the interpreter's simulated cost
    clock around the app call, recorded into the {!Metrics} histogram —
    deterministic for a given dispatch order. App-level argument
    rejections ([Invalid_argument], e.g. an over-capacity key) map to
    [Err] replies rather than killing the connection; protocol-level
    garbage never reaches this layer (the listener rejects it). *)

open Hippo_apps

let handle ~(app : App.t) ~(metrics : Metrics.t) (req : Protocol.request) :
    Protocol.reply =
  let kind = Protocol.kind_of_request req in
  let t0 = app.App.cost_ns () in
  let reply : Protocol.reply =
    try
      match req with
      | Set { key; value } ->
          app.App.insert ~key ~value;
          Ok_
      | Get { key } -> (
          match app.App.read ~key with
          | App.Found v -> Value v
          | App.Absent -> Not_found)
      | Del { key } -> Deleted (app.App.delete ~key)
      | Scan { key; len } -> (
          match app.App.scan ~start:key ~len with
          | App.Scanned vs -> Value (String.concat "\x00" vs)
          | App.Scan_unsupported -> Unsupported)
      | Count -> Count_is (app.App.count ())
      | Stats ->
          (* reflects ops completed before this one *)
          Stats_are (Metrics.snapshot metrics)
    with Invalid_argument msg -> Err msg
  in
  let ns = int_of_float (app.App.cost_ns () -. t0) in
  Metrics.record metrics kind ~ns;
  reply

(** [handle_wire] round-trips the codec on both sides: the encoded
    request is decoded, handled, and the encoded reply returned — the
    exact server path minus the socket. The in-process driver uses this
    so CI exercises the same codec as the network listener. *)
let handle_wire ~app ~metrics (frame : string) : string =
  match Protocol.decode_request frame ~pos:0 with
  | Ok (req, next) ->
      if next <> String.length frame then
        Protocol.encode_reply (Err "trailing bytes after frame")
      else Protocol.encode_reply (handle ~app ~metrics req)
  | Error e -> Protocol.encode_reply (Err (Fmt.str "%a" Protocol.pp_error e))
