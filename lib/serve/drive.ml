(** The in-process driver: the full serve pipeline — load generator,
    codec, handler, metrics — minus the sockets, for CI and benches.

    Dispatch is a deterministic round-robin: in every round each worker
    contributes its next encoded request frame in worker order (frames
    are generated in batches across the [--jobs] pool, which is pure
    per-worker work collected in submission order, so physical
    parallelism never reorders dispatch). Each frame goes through
    {!Handler.handle_wire} — decode, handle, encode — so the in-process
    path exercises exactly the codec the network listener does.

    Everything in an {!outcome} except the wall-clock fields is a pure
    function of (app, variant, workload, records, ops, workers, seed):
    byte-identical at any [--jobs] width. *)

open Hippo_apps
module Hist = Hippo_perfmodel.Stats.Hist

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(** Size the interpreter for a service holding [final_records] entries:
    trace off (a million-op trace would be gigabytes), effectively
    unlimited fuel, the default cost model (simulated-latency
    histograms), and a PM arena sized to the record count. *)
let serve_config ?(exec = Hippo_pmcheck.Interp.default_config.Hippo_pmcheck.Interp.exec)
    ~final_records () : Hippo_pmcheck.Interp.config =
  let pm_size =
    pow2_at_least
      ((final_records * 256) + (1 lsl 22))
      (1 lsl 24)
  in
  {
    Hippo_pmcheck.Interp.default_config with
    trace = false;
    fuel = max_int;
    cost = Some Hippo_pmcheck.Cost.default;
    pm_size;
    exec;
  }

let serve_nbuckets ~final_records = pow2_at_least (max 1024 (final_records / 2)) 1024

type outcome = {
  app_name : string;
  workers : int;
  records : int;  (** loaded records, all workers *)
  final_records : int;  (** records after the run's inserts *)
  load_reqs : int;
  run_reqs : int;
  load_verdicts : Loadgen.verdicts;
  run_verdicts : Loadgen.verdicts;
  hist : Hist.t;  (** simulated-ns latency of every dispatched op *)
  sim_load_ns : float;
  sim_run_ns : float;
  wall_load_s : float;  (** wall clock; NOT deterministic *)
  wall_run_s : float;
  count : int;
  check : bool;
  digest : int;  (** FNV over the full final store contents *)
}

(* ------------------------------------------------------------------ *)

let batch = 2048

(* Pull up to [n] elements; returns them (encoded) plus the new tail. *)
let take_frames n seq =
  let acc = ref [] in
  let rec go i seq =
    if i >= n then seq
    else
      match seq () with
      | Seq.Nil -> Seq.empty
      | Seq.Cons (req, tail) ->
          acc := Protocol.encode_request req :: !acc;
          go (i + 1) tail
  in
  let tail = go 0 seq in
  (Array.of_list (List.rev !acc), tail)

exception Wire of string

(* Round-robin dispatch of every request of every worker through the
   wire handler; returns (summed verdicts, request count). *)
let dispatch ~pool ~app ~metrics (seqs : Protocol.request Seq.t array) =
  let verdicts = ref Loadgen.zero in
  let nreqs = ref 0 in
  let tally frame =
    let reply_frame = Handler.handle_wire ~app ~metrics frame in
    match Protocol.decode_reply reply_frame ~pos:0 with
    | Ok (reply, _) ->
        verdicts := Loadgen.add !verdicts reply;
        incr nreqs
    | Error e -> raise (Wire (Fmt.str "%a" Protocol.pp_error e))
  in
  let tails = ref (Array.to_list seqs) in
  let exhausted = ref false in
  while not !exhausted do
    let chunks =
      Hippo_parallel.Pool.map pool (take_frames batch) !tails
    in
    let longest =
      List.fold_left (fun m (fs, _) -> max m (Array.length fs)) 0 chunks
    in
    if longest = 0 then exhausted := true
    else begin
      let arrays = List.map fst chunks in
      for j = 0 to longest - 1 do
        List.iter
          (fun frames -> if j < Array.length frames then tally frames.(j))
          arrays
      done;
      tails := List.map snd chunks
    end
  done;
  (!verdicts, !nreqs)

(* FNV-1a fold over the full final store contents: every key in every
   worker's final range, tagged found/absent, with its value bytes. *)
let digest_store ~(app : App.t) ~workers ~finals =
  let h = ref 0x1505 in
  let mix s =
    String.iter
      (fun c ->
        h := (!h lxor Char.code c) * 0x01000193;
        h := !h land 0x3FFFFFFFFFFFFFF)
      s
  in
  for worker = 0 to workers - 1 do
    for k = 0 to finals.(worker) - 1 do
      let key = Loadgen.key_string ~workers ~worker k in
      mix key;
      match app.App.read ~key with
      | App.Found v ->
          mix "=";
          mix v
      | App.Absent -> mix "!"
    done
  done;
  !h

(** Run the whole pipeline in-process. Returns [Error] when the app or
    variant cannot be built (e.g. pclht has no flush-free build, or
    repair verification fails). *)
let run_inproc ?exec ~pool ~app:kind ~variant ~workload ~records ~ops ~workers
    ~seed () : (outcome, string) result =
  let finals =
    Array.init workers (fun worker ->
        Loadgen.final_records ~kind:workload ~records ~ops ~workers ~worker
          ~seed)
  in
  let final_total = Array.fold_left ( + ) 0 finals in
  let config = serve_config ?exec ~final_records:final_total () in
  let nbuckets = serve_nbuckets ~final_records:final_total in
  match App.make ~config ~nbuckets kind variant with
  | Error _ as e -> e
  | Ok app ->
      let metrics = Metrics.create () in
      let load_seqs =
        Array.init workers (fun worker ->
            Loadgen.load_requests ~records ~workers ~worker)
      in
      let t0 = Unix.gettimeofday () in
      let ns0 = app.App.cost_ns () in
      let load_verdicts, load_reqs =
        dispatch ~pool ~app ~metrics load_seqs
      in
      let t1 = Unix.gettimeofday () in
      let ns1 = app.App.cost_ns () in
      let run_seqs =
        Array.init workers (fun worker ->
            Loadgen.run_requests ~kind:workload ~records ~ops ~workers ~worker
              ~seed)
      in
      let run_verdicts, run_reqs = dispatch ~pool ~app ~metrics run_seqs in
      let t2 = Unix.gettimeofday () in
      let ns2 = app.App.cost_ns () in
      let stats = Metrics.snapshot metrics in
      let count = app.App.count () in
      let check = app.App.check () in
      let digest = digest_store ~app ~workers ~finals in
      Ok
        {
          app_name = app.App.name;
          workers;
          records;
          final_records = final_total;
          load_reqs;
          run_reqs;
          load_verdicts;
          run_verdicts;
          hist = stats.Protocol.hist;
          sim_load_ns = ns1 -. ns0;
          sim_run_ns = ns2 -. ns1;
          wall_load_s = t1 -. t0;
          wall_run_s = t2 -. t1;
          count;
          check;
          digest;
        }

(** The deterministic fields two variants must agree on for the service
    to be behaviorally identical: every reply verdict, the final record
    count, and the full store digest. *)
let agrees a b =
  a.load_verdicts = b.load_verdicts
  && a.run_verdicts = b.run_verdicts
  && a.count = b.count
  && a.digest = b.digest

(** Deterministic rendering (no wall-clock fields): the smoke output. *)
let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>%s: workers=%d records=%d final=%d@,\
     load: %d reqs (%a)@,\
     run: %d reqs (%a)@,\
     latency: %a@,\
     count=%d check=%b digest=%014x@]"
    o.app_name o.workers o.records o.final_records o.load_reqs
    Loadgen.pp_verdicts o.load_verdicts o.run_reqs Loadgen.pp_verdicts
    o.run_verdicts Hist.pp o.hist o.count o.check o.digest
