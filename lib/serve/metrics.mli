(** Server-side operation metrics: total and per-kind op counters plus a
    simulated-latency histogram. Latencies are simulated ns (cost-model
    deltas), so percentiles are deterministic for a given op sequence. *)

type t

val create : unit -> t

(** [record t kind ~ns] counts one op of [kind] with latency [ns]. *)
val record : t -> Protocol.op_kind -> ns:int -> unit

val ops : t -> int

(** An immutable copy, as served by the STATS endpoint. *)
val snapshot : t -> Protocol.server_stats

val pp : Format.formatter -> t -> unit
