(** Request dispatch: one protocol request in, one reply out, over a
    uniform {!Hippo_apps.App} adapter. Records per-op simulated-ns
    latency into [metrics]; app-level [Invalid_argument] maps to [Err]. *)

val handle :
  app:Hippo_apps.App.t -> metrics:Metrics.t -> Protocol.request ->
  Protocol.reply

(** Encoded-frame in, encoded-frame out: decode, {!handle}, encode — the
    exact server path minus the socket (the in-process driver's entry). *)
val handle_wire : app:Hippo_apps.App.t -> metrics:Metrics.t -> string -> string
