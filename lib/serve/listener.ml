(** The network front end: a single-domain [Unix.select] event loop over
    a Unix-domain or TCP listening socket.

    One domain is deliberate: an interpreter session is not thread-safe
    and every op serializes on it anyway, so concurrency buys nothing —
    the loop multiplexes reads across connections and dispatches
    complete frames in arrival order. Each connection accumulates bytes
    in a buffer; frames are decoded greedily ([Truncated] simply waits
    for more bytes), and [Oversized]/[Malformed] input earns an [Err]
    reply followed by connection close. Replies are written
    synchronously — clients speak a synchronous RPC, so replies are one
    small frame each.

    [expect_conns] bounds the server's lifetime for tests and benches:
    the loop returns once that many connections have been accepted and
    have closed. *)

open Hippo_apps

let listen_unix ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

(** Binds 127.0.0.1; [port] 0 picks an ephemeral port — read it back
    with {!port_of}. *)
let listen_tcp ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let port_of fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Listener.port_of: unix socket"

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

(* Dispatch every complete frame in [c.buf]; returns [`Close] on a
   protocol violation (after sending an [Err] reply). *)
let drain ~app ~metrics c =
  let data = Buffer.contents c.buf in
  let rec go pos =
    match Protocol.decode_request data ~pos with
    | Ok (req, next) ->
        write_all c.fd (Protocol.encode_reply (Handler.handle ~app ~metrics req));
        go next
    | Error Protocol.Truncated ->
        Buffer.clear c.buf;
        Buffer.add_substring c.buf data pos (String.length data - pos);
        `Keep
    | Error e ->
        (try
           write_all c.fd
             (Protocol.encode_reply (Err (Fmt.str "%a" Protocol.pp_error e)))
         with Unix.Unix_error _ -> ());
        `Close
  in
  go 0

let serve ~(app : App.t) ~(metrics : Metrics.t) ~listen ?expect_conns () =
  let read_chunk = Bytes.create 65536 in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let closed = ref 0 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    incr closed
  in
  let finished () =
    match expect_conns with
    | Some n -> !closed >= n && Hashtbl.length conns = 0
    | None -> false
  in
  let accepting () =
    match expect_conns with
    | Some n -> !closed + Hashtbl.length conns < n
    | None -> true
  in
  while not (finished ()) do
    let fds =
      (if accepting () then [ listen ] else [])
      @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    let readable, _, _ = Unix.select fds [] [] (-1.0) in
    List.iter
      (fun fd ->
        if fd == listen then begin
          let cfd, _ = Unix.accept listen in
          Hashtbl.replace conns cfd { fd = cfd; buf = Buffer.create 4096 }
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> (
              match Unix.read fd read_chunk 0 (Bytes.length read_chunk) with
              | 0 -> close_conn c
              | n ->
                  Buffer.add_subbytes c.buf read_chunk 0 n;
                  if drain ~app ~metrics c = `Close then close_conn c
              | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
                  close_conn c))
      readable
  done

(* ------------------------------------------------------------------ *)
(* The synchronous RPC client (the load generator's side). *)

module Client = struct
  type t = { fd : Unix.file_descr; mutable pending : string }

  let of_fd fd = { fd; pending = "" }

  let connect_unix ~path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    of_fd fd

  let connect_tcp ~port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    of_fd fd

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

  exception Protocol_error of Protocol.error
  exception Disconnected

  (* One synchronous round trip. *)
  let rpc t (req : Protocol.request) : Protocol.reply =
    write_all t.fd (Protocol.encode_request req);
    let chunk = Bytes.create 65536 in
    let rec await () =
      match Protocol.decode_reply t.pending ~pos:0 with
      | Ok (reply, next) ->
          t.pending <-
            String.sub t.pending next (String.length t.pending - next);
          reply
      | Error Protocol.Truncated -> (
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> raise Disconnected
          | n ->
              t.pending <- t.pending ^ Bytes.sub_string chunk 0 n;
              await ())
      | Error e -> raise (Protocol_error e)
    in
    await ()
end
