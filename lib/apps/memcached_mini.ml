(** memcached_mini: a PM-backed slab cache after Lenovo's memcached-pm,
    the third subject of §6.1 (10 previously-undocumented bugs).

    PM layout (two-line header, 288-byte slab chunks; fields that the
    buggy SET path forgets to persist sit on different cache lines from
    the fields the correct paths persist, as in the original layout where
    the omissions were observable):
    - header line 0: [0] magic, [8] nbuckets, [16] buckets ptr,
      [24] lru_tail, [32] stat_dels; header line 1: [64] lru_head,
      [72] count, [80] stat_sets;
    - item line 0: [0] hash_next, [8] klen, [16] vlen; item line 1:
      [64] flags, [72] exptime, [80] cas, [88] lru_next, [96] lru_prev;
      [128..160) key bytes, [192..288) value bytes.

    The correct persistence discipline (seen in [mc_del], [mc_touch] and
    the flags/cas/exptime updates) is [pmem_persist] after each logical
    write. Ten omissions are injected in the hot SET path — key copy,
    value copy, length fields, hash/LRU linkage, count and the set
    statistic — matching the bug population the paper reports for
    memcached-pm. Like Redis_mini, commands go through a wire-buffer
    layer, and GET builds its reply with the shared [memcpy], so the two
    copy bugs admit interprocedural fixes while the field stores take
    intraprocedural flushes. *)

open Hippo_pmir
open Hippo_pmcheck

let v = Value.reg
let i = Value.imm

(* header offsets *)
let h_magic = 0
let h_nbuckets = 8
let h_buckets = 16
let h_lru_tail = 24
let h_stat_dels = 32
let h_lru_head = 64
let h_count = 72
let h_stat_sets = 80

(* item offsets *)
let it_hash_next = 0
let it_klen = 8
let it_vlen = 16
let it_flags = 64
let it_exptime = 72
let it_cas = 80
let it_lru_next = 88
let it_lru_prev = 96
let it_key = 128
let it_val = 192

let item_size = 288
let magic = 0x4D454D43 (* "MEMC" *)

let build () : Program.t =
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  global b "g_mc" 8;
  global b "g_key" 8;
  global b "g_val" 8;
  global b "g_reply" 8;
  global b "g_klen" 8;
  global b "g_vlen" 8;
  global b "g_flags" 8;
  let hdr fb = load fb (Value.global "g_mc") in
  let persist fb addr len = call_void fb "pmem_persist" [ addr; len ] in
  let _ =
    func b "mc_init" [ "nbuckets" ] ~body:(fun fb ->
        let h = call fb "pm_alloc" [ i 128 ] in
        let nbytes = mul fb (v "nbuckets") (i 8) in
        let bp = call fb "pm_alloc" [ nbytes ] in
        ignore (call fb "memset" [ bp; i 0; nbytes ]);
        persist fb bp nbytes;
        store fb ~addr:(gep fb h (i h_nbuckets)) (v "nbuckets");
        store fb ~addr:(gep fb h (i h_buckets)) bp;
        store fb ~addr:(gep fb h (i h_magic)) (i magic);
        persist fb h (i 128);
        store fb ~addr:(Value.global "g_mc") h;
        store fb ~addr:(Value.global "g_key") (call fb "malloc" [ i 32 ]);
        store fb ~addr:(Value.global "g_val") (call fb "malloc" [ i 128 ]);
        store fb ~addr:(Value.global "g_reply") (call fb "malloc" [ i 128 ]);
        ret_void fb)
  in
  let _ =
    func b "mc_slot" [ "key"; "klen" ] ~body:(fun fb ->
        let h = hdr fb in
        let nb = load fb (gep fb h (i h_nbuckets)) in
        let bp = load fb (gep fb h (i h_buckets)) in
        let hv = call fb "hash_fnv" [ v "key"; v "klen" ] in
        ret fb (gep fb bp (mul fb (rem fb hv nb) (i 8))))
  in
  let _ =
    func b "mc_find" [ "key"; "klen" ] ~body:(fun fb ->
        let slot = call fb "mc_slot" [ v "key"; v "klen" ] in
        ignore (set fb "it" (load fb slot));
        while_ fb
          ~cond:(fun () -> ne fb (v "it") (i 0))
          ~body:(fun () ->
            let kl = load fb (gep fb (v "it") (i it_klen)) in
            if_ fb
              (eq fb kl (v "klen"))
              ~then_:(fun () ->
                let same =
                  call fb "memcmp_eq"
                    [ gep fb (v "it") (i it_key); v "key"; v "klen" ]
                in
                if_ fb same ~then_:(fun () -> ret fb (v "it")) ())
              ();
            ignore
              (set fb "it" (load fb (gep fb (v "it") (i it_hash_next)))));
        ret fb (i 0))
  in
  (* LRU push-front; BUGS 7 and 8 live here. *)
  let _ =
    func b "mc_lru_push" [ "it" ] ~body:(fun fb ->
        let h = hdr fb in
        let headp = gep fb h (i h_lru_head) in
        let old = load fb headp in
        store fb ~addr:(gep fb (v "it") (i it_lru_next)) old;
        store fb ~addr:(gep fb (v "it") (i it_lru_prev)) (i 0);
        persist fb (gep fb (v "it") (i it_lru_next)) (i 16);
        ignore old;
        if_ fb (ne fb old (i 0))
          ~then_:(fun () ->
            (* BUG 8 (missing-flush): the old head's back link is stored
               but never persisted. *)
            store fb ~addr:(gep fb old (i it_lru_prev)) (v "it"))
          ~else_:(fun () ->
            let tailp = gep fb h (i h_lru_tail) in
            store fb ~addr:tailp (v "it");
            persist fb tailp (i 8))
          ();
        (* BUG 7 (missing-flush): the LRU head pointer itself. *)
        store fb ~addr:headp (v "it");
        ret_void fb)
  in
  let _ =
    func b "mc_lru_unlink" [ "it" ] ~body:(fun fb ->
        let h = hdr fb in
        let nxt = load fb (gep fb (v "it") (i it_lru_next)) in
        let prv = load fb (gep fb (v "it") (i it_lru_prev)) in
        if_ fb (ne fb prv (i 0))
          ~then_:(fun () ->
            let p = gep fb prv (i it_lru_next) in
            store fb ~addr:p nxt;
            persist fb p (i 8))
          ~else_:(fun () ->
            let hp = gep fb h (i h_lru_head) in
            store fb ~addr:hp nxt;
            persist fb hp (i 8))
          ();
        if_ fb (ne fb nxt (i 0))
          ~then_:(fun () ->
            let p = gep fb nxt (i it_lru_prev) in
            store fb ~addr:p prv;
            persist fb p (i 8))
          ~else_:(fun () ->
            let tp = gep fb h (i h_lru_tail) in
            store fb ~addr:tp prv;
            persist fb tp (i 8))
          ();
        ret_void fb)
  in
  (* the SET path: 10 injected omissions in total *)
  let _ =
    func b "mc_store_item" [ "key"; "klen"; "val"; "vlen"; "flags" ]
      ~body:(fun fb ->
        let it = call fb "pm_alloc" [ i item_size ] in
        (* BUG 1 (missing-flush): key bytes copied, never persisted. *)
        ignore (call fb "memcpy" [ gep fb it (i it_key); v "key"; v "klen" ]);
        (* BUG 2 (missing-flush): value bytes copied, never persisted. *)
        ignore (call fb "memcpy" [ gep fb it (i it_val); v "val"; v "vlen" ]);
        (* BUG 3 / BUG 4 (missing-flush): both length fields. *)
        store fb ~addr:(gep fb it (i it_klen)) (v "klen");
        store fb ~addr:(gep fb it (i it_vlen)) (v "vlen");
        (* flags and cas are handled correctly, for contrast *)
        store fb ~addr:(gep fb it (i it_flags)) (v "flags");
        store fb ~addr:(gep fb it (i it_exptime)) (i 0);
        store fb ~addr:(gep fb it (i it_cas)) (i 1);
        persist fb (gep fb it (i it_flags)) (i 24);
        let slot = call fb "mc_slot" [ v "key"; v "klen" ] in
        (* BUG 5 (missing-flush): hash-chain link. *)
        store fb ~addr:(gep fb it (i it_hash_next)) (load fb slot);
        (* BUG 6 (missing-flush): bucket head. *)
        store fb ~addr:slot it;
        call_void fb "mc_lru_push" [ it ];
        let h = hdr fb in
        let cnt = gep fb h (i h_count) in
        (* BUG 9 (missing-flush): item count. *)
        store fb ~addr:cnt (add fb (load fb cnt) (i 1));
        let st = gep fb h (i h_stat_sets) in
        (* BUG 10 (missing-flush): the sets statistic. *)
        store fb ~addr:st (add fb (load fb st) (i 1));
        call_void fb "pmem_drain" [];
        ret fb it)
  in
  let _ =
    func b "cmd_set" [] ~body:(fun fb ->
        let key = load fb (Value.global "g_key") in
        let klen = load fb (Value.global "g_klen") in
        let vl = load fb (Value.global "g_val") in
        let vlen = load fb (Value.global "g_vlen") in
        let flags = load fb (Value.global "g_flags") in
        let existing = call fb "mc_find" [ key; klen ] in
        if_ fb (ne fb existing (i 0))
          ~then_:(fun () -> call_void fb "cmd_del" [])
          ();
        let it = call fb "mc_store_item" [ key; klen; vl; vlen; flags ] in
        (* reply echo through the shared memcpy (volatile) *)
        let reply = load fb (Value.global "g_reply") in
        ignore (call fb "memcpy" [ reply; vl; vlen ]);
        ret fb it)
  in
  let _ =
    func b "cmd_get" [] ~body:(fun fb ->
        let key = load fb (Value.global "g_key") in
        let klen = load fb (Value.global "g_klen") in
        let it = call fb "mc_find" [ key; klen ] in
        if_ fb (eq fb it (i 0)) ~then_:(fun () -> ret fb (i (-1))) ();
        let vlen = load fb (gep fb it (i it_vlen)) in
        let reply = load fb (Value.global "g_reply") in
        ignore (call fb "memcpy" [ reply; gep fb it (i it_val); vlen ]);
        ret fb vlen)
  in
  let _ =
    func b "cmd_del" [] ~body:(fun fb ->
        let key = load fb (Value.global "g_key") in
        let klen = load fb (Value.global "g_klen") in
        let it = call fb "mc_find" [ key; klen ] in
        if_ fb (eq fb it (i 0)) ~then_:(fun () -> ret fb (i 0)) ();
        (* unlink from the hash chain (correctly persisted) *)
        let slot = call fb "mc_slot" [ key; klen ] in
        ignore (set fb "cur" (load fb slot));
        ignore (set fb "prevp" slot);
        while_ fb
          ~cond:(fun () -> ne fb (v "cur") (i 0))
          ~body:(fun () ->
            if_ fb (eq fb (v "cur") it)
              ~then_:(fun () ->
                let nxt = load fb (gep fb (v "cur") (i it_hash_next)) in
                store fb ~addr:(v "prevp") nxt;
                persist fb (v "prevp") (i 8);
                call_void fb "mc_lru_unlink" [ it ];
                let h = hdr fb in
                let cnt = gep fb h (i h_count) in
                store fb ~addr:cnt (sub fb (load fb cnt) (i 1));
                persist fb cnt (i 8);
                let sd = gep fb h (i h_stat_dels) in
                store fb ~addr:sd (add fb (load fb sd) (i 1));
                persist fb sd (i 8);
                call_void fb "pmem_drain" [];
                ret fb (i 1))
              ();
            ignore (set fb "prevp" (gep fb (v "cur") (i it_hash_next)));
            ignore (set fb "cur" (load fb (gep fb (v "cur") (i it_hash_next)))));
        ret fb (i 0))
  in
  (* touch: correct-by-construction exptime update, for contrast *)
  let _ =
    func b "cmd_touch" [ "exptime" ] ~body:(fun fb ->
        let key = load fb (Value.global "g_key") in
        let klen = load fb (Value.global "g_klen") in
        let it = call fb "mc_find" [ key; klen ] in
        if_ fb (eq fb it (i 0)) ~then_:(fun () -> ret fb (i 0)) ();
        let p = gep fb it (i it_exptime) in
        store fb ~addr:p (v "exptime");
        persist fb p (i 8);
        ret fb (i 1))
  in
  let _ =
    func b "cmd_count" [] ~body:(fun fb ->
        ret fb (load fb (gep fb (hdr fb) (i h_count))))
  in
  (* Recovery invariant: magic, and the hash walk agrees with the count. *)
  let _ =
    func b "mc_recover_check" [] ~body:(fun fb ->
        let base = call fb "pm_base" [] in
        store fb ~addr:(Value.global "g_mc") base;
        let h = hdr fb in
        if_ fb (ne fb (load fb (gep fb h (i h_magic))) (i magic))
          ~then_:(fun () -> ret fb (i 0))
          ();
        let nb = load fb (gep fb h (i h_nbuckets)) in
        let bp = load fb (gep fb h (i h_buckets)) in
        ignore (set fb "n" (i 0));
        for_ fb "bi" ~from:(i 0) ~below:nb ~body:(fun bi ->
            ignore (set fb "it" (load fb (gep fb bp (mul fb bi (i 8)))));
            while_ fb
              ~cond:(fun () -> ne fb (v "it") (i 0))
              ~body:(fun () ->
                let kl = load fb (gep fb (v "it") (i it_klen)) in
                if_ fb
                  (bor fb (le fb kl (i 0)) (gt fb kl (i 32)))
                  ~then_:(fun () -> ret fb (i 0))
                  ();
                ignore (set fb "n" (add fb (v "n") (i 1)));
                ignore
                  (set fb "it" (load fb (gep fb (v "it") (i it_hash_next))))));
        ret fb (eq fb (v "n") (load fb (gep fb h (i h_count)))))
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

(* ---------------------------------------------------------------------- *)

type session = {
  interp : Interp.t;
  key_buf : int;
  val_buf : int;
  g_klen : int;
  g_vlen : int;
  g_flags : int;
}

let attach ?(nbuckets = 64) interp : session =
  ignore (Exec.call interp "mc_init" [ nbuckets ]);
  let mem = Interp.mem interp in
  let g name = Interp.global_addr interp name in
  {
    interp;
    key_buf = Mem.load mem ~addr:(g "g_key") ~size:8;
    val_buf = Mem.load mem ~addr:(g "g_val") ~size:8;
    g_klen = g "g_klen";
    g_vlen = g "g_vlen";
    g_flags = g "g_flags";
  }

let set_key s key =
  let mem = Interp.mem s.interp in
  Mem.write_string mem ~addr:s.key_buf key;
  Mem.store mem ~addr:s.g_klen ~size:8 (String.length key)

let op_set s ~key ~value ~flags =
  set_key s key;
  let mem = Interp.mem s.interp in
  Mem.write_string mem ~addr:s.val_buf value;
  Mem.store mem ~addr:s.g_vlen ~size:8 (String.length value);
  Mem.store mem ~addr:s.g_flags ~size:8 flags;
  ignore (Exec.call s.interp "cmd_set" [])

let op_get s ~key =
  set_key s key;
  Exec.call s.interp "cmd_get" []

let op_del s ~key =
  set_key s key;
  Exec.call s.interp "cmd_del" []

(** The repair/bug-finding workload: sets (fresh and replacing), gets,
    touches and deletes. *)
let workload (t : Interp.t) =
  let s = attach ~nbuckets:16 t in
  for k = 0 to 29 do
    op_set s
      ~key:(Printf.sprintf "obj:%04d" k)
      ~value:(String.init 64 (fun j -> Char.chr (65 + ((k + j) mod 26))))
      ~flags:(k land 3)
  done;
  for k = 0 to 9 do
    ignore (op_get s ~key:(Printf.sprintf "obj:%04d" k))
  done;
  op_set s ~key:"obj:0003" ~value:(String.make 64 'z') ~flags:1;
  set_key s "obj:0005";
  ignore (Exec.call t "cmd_touch" [ 3600 ]);
  ignore (op_del s ~key:"obj:0007");
  ignore (op_del s ~key:"obj:0011");
  (* a final burst of sets: the server rarely goes quiet after a delete *)
  for k = 30 to 37 do
    op_set s
      ~key:(Printf.sprintf "obj:%04d" k)
      ~value:(String.init 64 (fun j -> Char.chr (97 + ((k + j) mod 26))))
      ~flags:0
  done

(** The ten injected omissions, as corpus ground truth. The two copy bugs
    hoist into [memcpy]'s persistent clone; the rest are direct field
    stores on PM-only pointers and take intraprocedural flushes. *)
let cases : Hippo_pmdk_mini.Case.t list =
  let program = lazy (build ()) in
  let mk id title shape =
    {
      Hippo_pmdk_mini.Case.id;
      system = "memcached-pm";
      issue = None;
      title;
      program;
      workload;
      entry = "cmd_set";
      expected_kind = Report.Missing_flush;
      expected_shape = shape;
      dev_fix = None;
      notes = "previously undocumented (paper §6.1)";
    }
  in
  [
    mk "mc-1" "item key bytes never persisted" (Hippo_pmdk_mini.Case.Exp_inter 1);
    mk "mc-2" "item value bytes never persisted" (Hippo_pmdk_mini.Case.Exp_inter 1);
    mk "mc-3" "item klen field unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
    mk "mc-4" "item vlen field unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
    mk "mc-5" "hash-chain next link unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
    mk "mc-6" "bucket head pointer unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
    mk "mc-7" "LRU head pointer unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
    mk "mc-8" "old LRU head back-link unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
    mk "mc-9" "item count unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
    mk "mc-10" "sets statistic unflushed" Hippo_pmdk_mini.Case.Exp_intra_flush;
  ]
