(** A uniform key-value adapter over the PM applications, so the serve
    handler and the YCSB load generator are app-agnostic.

    Keys and values are byte strings (the wire form). Redis stores them
    natively; P-CLHT is a word store, so strings are mapped through a
    deterministic FNV-1a hash onto nonzero machine words — GET then
    echoes the stored word, not the original bytes, but two variants fed
    identical op streams still produce comparable stores. Neither app
    supports ordered iteration, so [scan] reports unsupported. *)

open Hippo_pmir
open Hippo_pmcheck

type kind = Redis | Pclht

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** Which build is being served:
    - [Flush_free]: the Hippocrates repair input (Redis only — P-CLHT's
      bugs are injected, not stripped);
    - [Manual]: the hand-written baseline;
    - [Repaired]: the {!Hippo_core.Driver} pipeline output, verified
      effective and harm-free before serving. *)
type variant = Flush_free | Manual | Repaired

val variant_to_string : variant -> string
val variant_of_string : string -> variant option

type read_result = Found of string | Absent
type scan_result = Scanned of string list | Scan_unsupported

type t = {
  name : string;  (** e.g. ["redis/manual"] *)
  interp : Interp.t;
  insert : key:string -> value:string -> unit;
      (** Raises [Invalid_argument] on empty or over-capacity keys or
          values (Redis enforces its wire-buffer capacities). *)
  read : key:string -> read_result;
  delete : key:string -> bool;  (** true when a binding was removed *)
  scan : start:string -> len:int -> scan_result;
  count : unit -> int;
  check : unit -> bool;  (** the app's own recovery invariant *)
  cost_ns : unit -> float;  (** simulated ns accumulated so far *)
}

(** Build the program for an (app, variant) pair. [Repaired] runs the
    full repair pipeline and fails if verification does. *)
val program : kind -> variant -> (Program.t, string) result

(** [make ?config ?nbuckets kind variant] builds the variant program and
    wraps a fresh interpreter session. The default config suits small
    smoke runs; million-key services should size [pm_size] and
    [nbuckets] to the expected record count and set a cost model for
    simulated-latency histograms. *)
val make :
  ?config:Interp.config -> ?nbuckets:int -> kind -> variant -> (t, string) result
