(** A uniform key-value adapter over the PM applications, so the serve
    handler and the YCSB load generator are app-agnostic.

    Keys and values are byte strings (the wire form). Redis stores them
    natively; P-CLHT is a word store, so strings are mapped through a
    deterministic FNV-1a hash onto nonzero machine words — GET then
    echoes the stored word, not the original bytes, but two variants fed
    identical op streams still produce comparable stores. Neither app
    supports ordered iteration, so [scan] reports unsupported. *)

open Hippo_pmir
open Hippo_pmcheck

type kind = Redis | Pclht

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** Which build is being served:
    - [Flush_free]: the Hippocrates repair input (Redis only — P-CLHT's
      bugs are injected, not stripped);
    - [Manual]: the hand-written baseline;
    - [Repaired]: the {!Hippo_core.Driver} pipeline output, verified
      effective and harm-free before serving;
    - [Optimized]: the flush/fence optimizer run over [Repaired]
      ({!Hippo_core.Driver.optimize}) — redundant persistence
      operations removed under the optimizer's do-no-harm gate. *)
type variant = Flush_free | Manual | Repaired | Optimized

val variant_to_string : variant -> string
val variant_of_string : string -> variant option

type read_result = Found of string | Absent
type scan_result = Scanned of string list | Scan_unsupported

type t = {
  name : string;  (** e.g. ["redis/manual"] *)
  interp : Interp.t;
  insert : key:string -> value:string -> unit;
      (** Raises [Invalid_argument] on empty or over-capacity keys or
          values (Redis enforces its wire-buffer capacities). *)
  read : key:string -> read_result;
  delete : key:string -> bool;  (** true when a binding was removed *)
  scan : start:string -> len:int -> scan_result;
  count : unit -> int;
  check : unit -> bool;  (** the app's own recovery invariant *)
  cost_ns : unit -> float;  (** simulated ns accumulated so far *)
  echo : string -> string;
      (** what [read] answers for a stored value: identity for Redis,
          the FNV word image for P-CLHT *)
  reopen : pm_image:Bytes.t -> (t, string) result;
      (** restart the app over a crash image of its PM pool: a fresh
          interpreter runs the app's recovery path (no initialization),
          same program and sizing as this adapter *)
}

(** The FNV-1a word image P-CLHT stores for a string key or value
    (deterministic, nonzero) — exposed so differential tests can replay
    an adapter-level op stream as raw [clht_*] calls. *)
val word_of_string : string -> int

(** Build the program for an (app, variant) pair. [Repaired] runs the
    full repair pipeline and fails if verification does. *)
val program : kind -> variant -> (Program.t, string) result

(** Wrap a fresh session of an already-built program (see {!program}) —
    callers that open many sessions of one variant build it once. *)
val wrap :
  ?config:Interp.config -> ?nbuckets:int -> kind -> variant ->
  Hippo_pmir.Program.t -> t

(** [make ?config ?nbuckets kind variant] builds the variant program and
    wraps a fresh interpreter session. The default config suits small
    smoke runs; million-key services should size [pm_size] and
    [nbuckets] to the expected record count and set a cost model for
    simulated-latency histograms. *)
val make :
  ?config:Interp.config -> ?nbuckets:int -> kind -> variant -> (t, string) result
