(** A uniform key-value adapter over the PM applications, so the serve
    handler and the YCSB load generator are app-agnostic.

    Each adapter wraps one interpreter session of one {e build variant}
    of one app:

    - {b flush-free}: the Hippocrates repair input (no flushes at all) —
      only Redis has one; P-CLHT's bugs are injected, not stripped;
    - {b manual}: the hand-written baseline (Redis-pm's developer port,
      CLHT's line-granular discipline with the two injected bugs);
    - {b repaired}: the program produced by the {!Hippo_core.Driver}
      repair pipeline, verified effective and harm-free before serving.

    Keys and values are byte strings at this boundary (the wire form).
    Redis stores them natively; P-CLHT is a word store, so strings are
    mapped through FNV-1a onto nonzero machine words — deterministic, so
    two variants fed identical op streams still produce comparable
    stores. Neither app supports ordered iteration, so [scan] reports
    unsupported and the caller degrades gracefully. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

type kind = Redis | Pclht

let kind_to_string = function Redis -> "redis" | Pclht -> "pclht"

let kind_of_string = function
  | "redis" -> Some Redis
  | "pclht" -> Some Pclht
  | _ -> None

type variant = Flush_free | Manual | Repaired | Optimized

let variant_to_string = function
  | Flush_free -> "flush-free"
  | Manual -> "manual"
  | Repaired -> "repaired"
  | Optimized -> "optimized"

let variant_of_string = function
  | "flush-free" -> Some Flush_free
  | "manual" -> Some Manual
  | "repaired" -> Some Repaired
  | "optimized" -> Some Optimized
  | _ -> None

type read_result = Found of string | Absent
type scan_result = Scanned of string list | Scan_unsupported

type t = {
  name : string;  (** e.g. ["redis/manual"] *)
  interp : Interp.t;
  insert : key:string -> value:string -> unit;
  read : key:string -> read_result;
  delete : key:string -> bool;  (** true when a binding was removed *)
  scan : start:string -> len:int -> scan_result;
  count : unit -> int;
  check : unit -> bool;  (** the app's own recovery invariant *)
  cost_ns : unit -> float;  (** simulated ns accumulated so far *)
  echo : string -> string;
      (** what [read] answers for a stored value: identity for Redis,
          the FNV word image for P-CLHT *)
  reopen : pm_image:Bytes.t -> (t, string) result;
      (** restart the app over a crash image of its PM pool: a fresh
          interpreter runs the app's recovery path (no initialization),
          same program and sizing as this adapter *)
}

(* ------------------------------------------------------------------ *)
(* Variant programs *)

let repair_or_error ~name ~workload prog =
  let r = Driver.repair ~name ~workload prog in
  if not (Verify.effective r.Driver.verification) then
    Error (Fmt.str "%s: residual bugs after repair" name)
  else if not (Verify.harm_free r.Driver.verification) then
    Error (Fmt.str "%s: repaired program diverges" name)
  else Ok r.Driver.repaired

(** Build the program for an (app, variant) pair. [Repaired] runs the
    full repair pipeline (dynamic detector, hoisting on) and fails if
    verification does. [Optimized] runs the flush/fence optimizer over
    the repaired program; the optimizer's own do-no-harm gate (identical
    static reports, else wholesale revert) has already run by the time
    the program is returned. *)
let rec program kind variant : (Program.t, string) result =
  match (kind, variant) with
  | Redis, Flush_free -> Ok (Redis_mini.build Redis_mini.Flush_free)
  | Redis, Manual -> Ok (Redis_mini.build Redis_mini.Manual)
  | Redis, Repaired ->
      repair_or_error ~name:"redis-serve"
        ~workload:Redis_bench.repair_workload
        (Redis_mini.build Redis_mini.Flush_free)
  | Pclht, Flush_free ->
      Error
        "pclht has no flush-free build (its two bugs are injected, not \
         stripped); use --variant manual or repaired"
  | Pclht, Manual -> Ok (Pclht.build ())
  | Pclht, Repaired ->
      repair_or_error ~name:"pclht-serve" ~workload:Pclht.workload
        (Pclht.build ())
  | (Redis | Pclht), Optimized -> (
      match program kind Repaired with
      | Error e -> Error e
      | Ok repaired ->
          let r =
            Driver.optimize
              ~name:(kind_to_string kind ^ "-optimize")
              repaired
          in
          Ok r.Driver.t_outcome.Hippo_engine.Optimize.o_prog)

(* ------------------------------------------------------------------ *)
(* Adapters *)

let rec redis_adapter ~name ~nbuckets config prog ?pm_image () : t =
  let s =
    match pm_image with
    | None -> Redis_mini.start ~config ~nbuckets prog
    | Some (img, brk) ->
        Redis_mini.recover_attach
          (Interp.create ~pm_image:img ~pm_brk:brk config prog)
  in
  let mem = Interp.mem s.Redis_mini.interp in
  let put_key key =
    if String.length key = 0 || String.length key > Redis_mini.key_cap then
      invalid_arg
        (Fmt.str "redis: key length %d not in 1..%d" (String.length key)
           Redis_mini.key_cap);
    Mem.write_string mem ~addr:s.Redis_mini.key_buf key;
    Mem.store mem ~addr:s.Redis_mini.g_klen ~size:8 (String.length key)
  in
  let put_value value =
    if String.length value = 0 || String.length value > Redis_mini.val_cap
    then
      invalid_arg
        (Fmt.str "redis: value length %d not in 1..%d" (String.length value)
           Redis_mini.val_cap);
    Mem.write_string mem ~addr:s.Redis_mini.val_buf value;
    Mem.store mem ~addr:s.Redis_mini.g_vlen ~size:8 (String.length value)
  in
  {
    name;
    interp = s.Redis_mini.interp;
    insert =
      (fun ~key ~value ->
        put_key key;
        put_value value;
        ignore (Exec.call s.Redis_mini.interp "cmd_set" []));
    read =
      (fun ~key ->
        put_key key;
        let vl = Exec.call s.Redis_mini.interp "cmd_get" [] in
        if vl < 0 then Absent
        else Found (Mem.read_string mem ~addr:s.Redis_mini.reply_buf ~len:vl));
    delete =
      (fun ~key ->
        put_key key;
        Exec.call s.Redis_mini.interp "cmd_del" [] = 1);
    scan = (fun ~start:_ ~len:_ -> Scan_unsupported);
    count = (fun () -> Exec.call s.Redis_mini.interp "cmd_count" []);
    check = (fun () -> Exec.call s.Redis_mini.interp "cmd_check" [] <> 0);
    cost_ns = (fun () -> Interp.cost_ns s.Redis_mini.interp);
    echo = (fun v -> v);
    reopen =
      (fun ~pm_image ->
        (* the allocator's high-water mark restarts with the image (a
           real PM heap persists its metadata) *)
        let brk = mem.Mem.pm_brk in
        Ok (redis_adapter ~name ~nbuckets config prog ~pm_image:(pm_image, brk) ()));
  }

(* FNV-1a over a string, masked to a positive 62-bit word and forced
   nonzero (CLHT's key and value domain). The 64-bit offset basis
   0xcbf29ce484222325 exceeds OCaml's int literal range, so it is
   composed from halves and masked like every round. *)
let fnv_offset = ((0xcbf29ce4 lsl 32) lor 0x84222325) land 0x3FFFFFFFFFFFFFF

let word_of_string str =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x100000001b3;
      h := !h land 0x3FFFFFFFFFFFFFF)
    str;
  if !h = 0 then 1 else !h

let rec pclht_adapter ~name ~nbuckets config prog ?pm_image () : t =
  let s =
    match pm_image with
    | None -> Pclht.start ~config ~nbuckets prog
    | Some (img, brk) ->
        Pclht.recover_attach
          (Interp.create ~pm_image:img ~pm_brk:brk config prog)
  in
  let call f args = Exec.call s.Pclht.interp f args in
  {
    name;
    interp = s.Pclht.interp;
    insert =
      (fun ~key ~value ->
        ignore
          (call "clht_put" [ word_of_string key; word_of_string value ]));
    read =
      (fun ~key ->
        let v = call "clht_get" [ word_of_string key ] in
        (* a word store: GET echoes the stored word, not the SET bytes *)
        if v = 0 then Absent else Found (string_of_int v));
    delete = (fun ~key -> call "clht_del" [ word_of_string key ] = 1);
    scan = (fun ~start:_ ~len:_ -> Scan_unsupported);
    count = (fun () -> Pclht.count s);
    check = (fun () -> Pclht.check s);
    cost_ns = (fun () -> Interp.cost_ns s.Pclht.interp);
    echo = (fun v -> string_of_int (word_of_string v));
    reopen =
      (fun ~pm_image ->
        let brk = (Interp.mem s.Pclht.interp).Mem.pm_brk in
        Ok (pclht_adapter ~name ~nbuckets config prog ~pm_image:(pm_image, brk) ()));
  }

(** [wrap ?config ?nbuckets kind variant prog] wraps a fresh session of an
    already-built program — the simulation harness builds one (possibly
    repaired) program and wraps it once per scenario. *)
let wrap ?(config = { Interp.default_config with Interp.trace = false })
    ?(nbuckets = 1024) kind variant prog : t =
  let name =
    Fmt.str "%s/%s" (kind_to_string kind) (variant_to_string variant)
  in
  match kind with
  | Redis -> redis_adapter ~name ~nbuckets config prog ()
  | Pclht -> pclht_adapter ~name ~nbuckets config prog ()

(** [make ?config ?nbuckets kind variant] builds the variant program and
    wraps a fresh session. The default config suits small smoke runs;
    million-key services should size [pm_size] and bucket counts to the
    expected record count. *)
let make ?(config = { Interp.default_config with Interp.trace = false })
    ?(nbuckets = 1024) kind variant :
    (t, string) result =
  let name =
    Fmt.str "%s/%s" (kind_to_string kind) (variant_to_string variant)
  in
  match program kind variant with
  | Error _ as e -> e
  | Ok prog -> (
      match kind with
      | Redis -> Ok (redis_adapter ~name ~nbuckets config prog ())
      | Pclht -> Ok (pclht_adapter ~name ~nbuckets config prog ()))
