(** P-CLHT: a persistent cache-line hash table after RECIPE's P-CLHT
    (Lee et al., SOSP'19), the research-prototype subject of §6.1.

    Each bucket is exactly one cache line: three (key, value) slot pairs,
    an overflow-bucket pointer, and a metadata word. CLHT's persistence
    discipline is line-granular: mutate the line, [clwb] it, [sfence] —
    which this implementation follows everywhere except at the two
    injected, previously-undocumented bugs the paper found:

    - {b bug 1} (missing-flush): the update-existing-key path overwrites
      the value slot but skips the line flush (the fence at the end of
      the operation still runs);
    - {b bug 2} (missing-fence): the bucket-overflow path links the new
      bucket and flushes the link, but returns without a fence.

    Keys and values are nonzero machine words, as in CLHT proper. *)

open Hippo_pmir
open Hippo_pmcheck

let v = Value.reg
let i = Value.imm

let slots_per_bucket = 3
let off_next = 48

(* Header: [0] magic, [8] nbuckets, [16] buckets, [24] size. *)
let magic = 0x434C4854 (* "CLHT" *)

let build () : Program.t =
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  global b "g_clht" 8;
  let _ =
    func b "clht_bucket" [ "key" ] ~body:(fun fb ->
        let hdr = load fb (Value.global "g_clht") in
        let nb = load fb (gep fb hdr (i 8)) in
        let bp = load fb (gep fb hdr (i 16)) in
        let h = band fb (mul fb (v "key") (i 0x1B873593)) (i 0x3FFFFFFF) in
        let idx = rem fb h nb in
        ret fb (gep fb bp (mul fb idx (i 64))))
  in
  let _ =
    func b "clht_init" [ "nbuckets" ] ~body:(fun fb ->
        let hdr = call fb "pm_alloc" [ i 64 ] in
        let nbytes = mul fb (v "nbuckets") (i 64) in
        let bp = call fb "pm_alloc" [ nbytes ] in
        ignore (call fb "memset" [ bp; i 0; nbytes ]);
        call_void fb "pmem_persist" [ bp; nbytes ];
        store fb ~addr:(gep fb hdr (i 8)) (v "nbuckets");
        store fb ~addr:(gep fb hdr (i 16)) bp;
        store fb ~addr:(gep fb hdr (i 24)) (i 0);
        store fb ~addr:hdr (i magic);
        call_void fb "pmem_persist" [ hdr; i 32 ];
        store fb ~addr:(Value.global "g_clht") hdr;
        ret fb hdr)
  in
  let _ =
    func b "clht_size_add" [ "delta" ] ~body:(fun fb ->
        let hdr = load fb (Value.global "g_clht") in
        let sz = gep fb hdr (i 24) in
        store fb ~addr:sz (add fb (load fb sz) (v "delta"));
        flush fb sz;
        ret_void fb)
  in
  (* put: returns 1 on fresh insert, 2 on update *)
  let _ =
    func b "clht_put" [ "key"; "value" ] ~body:(fun fb ->
        ignore (set fb "bkt" (call fb "clht_bucket" [ v "key" ]));
        ignore (set fb "last" (v "bkt"));
        while_ fb
          ~cond:(fun () -> ne fb (v "bkt") (i 0))
          ~body:(fun () ->
            for_ fb "s" ~from:(i 0) ~below:(i slots_per_bucket)
              ~body:(fun s ->
                let kslot = gep fb (v "bkt") (mul fb s (i 16)) in
                if_ fb
                  (eq fb (load fb kslot) (v "key"))
                  ~then_:(fun () ->
                    (* BUG 1 (missing-flush): value slot updated, line
                       never flushed; only the trailing fence runs. *)
                    store fb ~addr:(gep fb kslot (i 8)) (v "value");
                    fence fb ();
                    (* durability point: the update must be durable once
                       the operation returns (PMTest-style annotation) *)
                    crash fb;
                    ret fb (i 2))
                  ());
            ignore (set fb "last" (v "bkt"));
            ignore (set fb "bkt" (load fb (gep fb (v "bkt") (i off_next)))));
        (* insert into a free slot of the last chain bucket *)
        for_ fb "s2" ~from:(i 0) ~below:(i slots_per_bucket) ~body:(fun s ->
            let kslot = gep fb (v "last") (mul fb s (i 16)) in
            if_ fb
              (eq fb (load fb kslot) (i 0))
              ~then_:(fun () ->
                store fb ~addr:(gep fb kslot (i 8)) (v "value");
                store fb ~addr:kslot (v "key");
                flush fb kslot;
                fence fb ();
                call_void fb "clht_size_add" [ i 1 ];
                fence fb ();
                crash fb;
                ret fb (i 1))
              ());
        (* overflow: chain a fresh one-line bucket *)
        let nb = call fb "pm_alloc" [ i 64 ] in
        ignore (call fb "memset" [ nb; i 0; i 64 ]);
        call_void fb "pmem_persist" [ nb; i 64 ];
        store fb ~addr:(gep fb nb (i 8)) (v "value");
        store fb ~addr:nb (v "key");
        flush fb nb;
        call_void fb "clht_size_add" [ i 1 ];
        fence fb ();
        let link = gep fb (v "last") (i off_next) in
        store fb ~addr:link nb;
        flush fb link;
        (* BUG 2 (missing-fence): return without ordering the link flush. *)
        crash fb;
        ret fb (i 1))
  in
  let _ =
    func b "clht_get" [ "key" ] ~body:(fun fb ->
        ignore (set fb "bkt" (call fb "clht_bucket" [ v "key" ]));
        while_ fb
          ~cond:(fun () -> ne fb (v "bkt") (i 0))
          ~body:(fun () ->
            for_ fb "s" ~from:(i 0) ~below:(i slots_per_bucket)
              ~body:(fun s ->
                let kslot = gep fb (v "bkt") (mul fb s (i 16)) in
                if_ fb
                  (eq fb (load fb kslot) (v "key"))
                  ~then_:(fun () -> ret fb (load fb (gep fb kslot (i 8))))
                  ());
            ignore (set fb "bkt" (load fb (gep fb (v "bkt") (i off_next)))));
        ret fb (i 0))
  in
  let _ =
    func b "clht_del" [ "key" ] ~body:(fun fb ->
        ignore (set fb "bkt" (call fb "clht_bucket" [ v "key" ]));
        while_ fb
          ~cond:(fun () -> ne fb (v "bkt") (i 0))
          ~body:(fun () ->
            for_ fb "s" ~from:(i 0) ~below:(i slots_per_bucket)
              ~body:(fun s ->
                let kslot = gep fb (v "bkt") (mul fb s (i 16)) in
                if_ fb
                  (eq fb (load fb kslot) (v "key"))
                  ~then_:(fun () ->
                    store fb ~addr:kslot (i 0);
                    flush fb kslot;
                    fence fb ();
                    call_void fb "clht_size_add" [ i (-1) ];
                    fence fb ();
                    ret fb (i 1))
                  ());
            ignore (set fb "bkt" (load fb (gep fb (v "bkt") (i off_next)))));
        ret fb (i 0))
  in
  (* Recovery: the header is the pool's first allocation, so a restart can
     rebind the volatile root pointer before validating. *)
  let _ =
    func b "clht_recover_check" [] ~body:(fun fb ->
        let base = call fb "pm_base" [] in
        store fb ~addr:(Value.global "g_clht") base;
        ret fb (call fb "clht_check" []))
  in
  let _ =
    func b "clht_check" [] ~body:(fun fb ->
        let hdr = load fb (Value.global "g_clht") in
        if_ fb (ne fb (load fb hdr) (i magic))
          ~then_:(fun () -> ret fb (i 0))
          ();
        let nbk = load fb (gep fb hdr (i 8)) in
        let bp = load fb (gep fb hdr (i 16)) in
        ignore (set fb "n" (i 0));
        for_ fb "bi" ~from:(i 0) ~below:nbk ~body:(fun bi ->
            ignore (set fb "bkt" (gep fb bp (mul fb bi (i 64))));
            while_ fb
              ~cond:(fun () -> ne fb (v "bkt") (i 0))
              ~body:(fun () ->
                for_ fb "s" ~from:(i 0) ~below:(i slots_per_bucket)
                  ~body:(fun s ->
                    if_ fb
                      (ne fb (load fb (gep fb (v "bkt") (mul fb s (i 16)))) (i 0))
                      ~then_:(fun () ->
                        ignore (set fb "n" (add fb (v "n") (i 1))))
                      ());
                ignore
                  (set fb "bkt" (load fb (gep fb (v "bkt") (i off_next))))));
        ret fb (eq fb (v "n") (load fb (gep fb hdr (i 24)))))
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

(* ---------------------------------------------------------------------- *)
(* Host-side driver: a YCSB client session symmetric to
   {!Redis_mini.run_op}, so the serve handler and load generator can be
   app-agnostic. CLHT keys and values are nonzero machine words, so YCSB
   integer keys and (key, version) values are shifted into the nonzero
   range. *)

type session = { interp : Interp.t; hdr_addr : int }

let key_of k = k + 1
let value_of ~k ~version = ((k + 1) * 8) + version + 1

let attach ?(nbuckets = 1024) interp : session =
  let hdr = Exec.call interp "clht_init" [ nbuckets ] in
  { interp; hdr_addr = hdr }

(* Sessions are hot paths (the load generator drives millions of ops):
   no trace by default. *)
let start ?(config = { Interp.default_config with Interp.trace = false })
    ?nbuckets prog : session =
  attach ?nbuckets (Interp.create config prog)

(** [recover_attach interp] rebinds the table root on an interpreter
    created over a crash image: [clht_recover_check] re-derives the
    header from [pm_base] (the pool's first allocation) and validates
    it; the verdict is discarded here — callers judge consistency with
    {!check}. *)
let recover_attach interp : session =
  ignore (Exec.call interp "clht_recover_check" []);
  let hdr =
    Mem.load (Interp.mem interp)
      ~addr:(Interp.global_addr interp "g_clht")
      ~size:8
  in
  { interp; hdr_addr = hdr }

let op_insert s ~k ~version =
  ignore (Exec.call s.interp "clht_put" [ key_of k; value_of ~k ~version ])

(** Returns the stored value word, or 0 when absent. *)
let op_read s ~k = Exec.call s.interp "clht_get" [ key_of k ]

let op_delete s ~k = Exec.call s.interp "clht_del" [ key_of k ]

(** The table's size field (header offset 24), read host-side: CLHT has
    no size query function. *)
let count s =
  Mem.load (Interp.mem s.interp) ~addr:(s.hdr_addr + 24) ~size:8

let check s = Exec.call s.interp "clht_check" [] <> 0

(** CLHT has no ordered iteration, so [Scan] degrades to point lookups
    of the [len] keys following the start key (exactly what
    {!Redis_mini.run_op} does); the protocol-level scan is reported as
    unsupported by the {!App} adapter instead. *)
let run_op s (op : Hippo_ycsb.Workload.op) =
  match op with
  | Hippo_ycsb.Workload.Read k -> ignore (op_read s ~k)
  | Hippo_ycsb.Workload.Update k -> op_insert s ~k ~version:1
  | Hippo_ycsb.Workload.Insert k -> op_insert s ~k ~version:0
  | Hippo_ycsb.Workload.Scan (k, len) ->
      for j = k to k + len - 1 do
        ignore (op_read s ~k:j)
      done
  | Hippo_ycsb.Workload.Read_modify_write k ->
      ignore (op_read s ~k);
      op_insert s ~k ~version:2

(** The example workload from RECIPE's evaluation: standard insertion,
    update, lookup and deletion traffic. 60 keys into 16 three-slot
    buckets force overflow chains, exercising the buggy link path. *)
let workload (t : Interp.t) =
  ignore (Exec.call t "clht_init" [ 16 ]);
  for k = 1 to 60 do
    ignore (Exec.call t "clht_put" [ k; k * 100 ])
  done;
  for k = 1 to 10 do
    ignore (Exec.call t "clht_put" [ k; k * 200 ]) (* updates: bug 1 *)
  done;
  for k = 1 to 60 do
    ignore (Exec.call t "clht_get" [ k ])
  done;
  ignore (Exec.call t "clht_del" [ 7 ]);
  ignore (Exec.call t "clht_del" [ 23 ])

(** Injected-bug ground truth for the corpus harness. *)
let cases : Hippo_pmdk_mini.Case.t list =
  let program = lazy (build ()) in
  [
    {
      Hippo_pmdk_mini.Case.id = "pclht-1";
      system = "P-CLHT";
      issue = None;
      title = "value-slot update skips the line flush";
      program;
      workload;
      entry = "clht_put";
      expected_kind = Report.Missing_flush;
      expected_shape = Hippo_pmdk_mini.Case.Exp_intra_flush;
      dev_fix = None;
      notes = "previously undocumented (paper §6.1)";
    };
    {
      Hippo_pmdk_mini.Case.id = "pclht-2";
      system = "P-CLHT";
      issue = None;
      title = "overflow-bucket link flushed but never fenced";
      program;
      workload;
      entry = "clht_put";
      expected_kind = Report.Missing_fence;
      expected_shape = Hippo_pmdk_mini.Case.Exp_intra_fence;
      dev_fix = None;
      notes = "previously undocumented (paper §6.1)";
    };
  ]
