(** Redis_mini: a persistent hash-table key-value store in PMIR, modelled
    on Redis-pmem's PMDK dict (§6.3's subject).

    Commands go through a wire-buffer layer ([cmd_set], [cmd_get],
    [cmd_del], [cmd_count], [cmd_check] over the [g_*] globals) and copy
    data with the shared [memcpy] — into PM (SET's key and value) and into
    volatile staging/reply buffers (protocol decode and reply echoes) —
    recreating the fix-placement tension of §3.2. Every mutating command
    ends with an [sfence]; the {!Flush_free} build has no flushes at all
    (the Hippocrates repair input), while {!Manual} is the hand-written
    Redis-pm baseline, on which pmcheck reports no bugs. *)

open Hippo_pmir
open Hippo_pmcheck

type variant = Flush_free | Manual

val variant_to_string : variant -> string

(** Build the program (validated). *)
val build : variant -> Program.t

(** A YCSB client session: the host side fills the server's connection
    buffers and issues commands. *)
type session = {
  interp : Interp.t;
  key_buf : int;
  val_buf : int;
  reply_buf : int;
  g_klen : int;
  g_vlen : int;
}

val key_cap : int
val val_cap : int

(** Initialize the server and locate the connection buffers on an existing
    interpreter (used when a repair or measurement harness owns it). *)
val attach : ?nbuckets:int -> Interp.t -> session

val start : ?config:Interp.config -> ?nbuckets:int -> Program.t -> session

(** Rebind the server roots on an interpreter created over a crash image
    ([Interp.create ~pm_image ~pm_brk]). Recovery is host-side root
    recomputation (the header is the pool's first allocation) plus fresh
    volatile connection buffers; nothing durable is written and the
    program itself is untouched, so repair analysis sees no extra call
    sites. *)
val recover_attach : Interp.t -> session

val set_key : session -> int -> unit
val set_value : session -> k:int -> version:int -> unit
val op_insert : session -> k:int -> version:int -> unit

(** Returns the value length, or -1 when absent; the bytes land in
    [reply_buf]. *)
val op_read : session -> k:int -> int

val op_delete : session -> k:int -> int
val run_op : session -> Hippo_ycsb.Workload.op -> unit
val count : session -> int
