(** P-CLHT: a persistent cache-line hash table after RECIPE's P-CLHT
    (Lee et al., SOSP'19), the research-prototype subject of §6.1.

    Each bucket is one cache line (three key/value slot pairs + an
    overflow link); the persistence discipline is line-granular
    flush+fence with explicit durability points ([crash]) at operation
    boundaries. Two previously-undocumented bugs are injected, matching
    the paper's findings: a missing flush on the value-update path and a
    missing fence on the overflow-link path.

    IR functions: [clht_init nbuckets], [clht_put key value] (1 = insert,
    2 = update), [clht_get key], [clht_del key], [clht_check],
    [clht_recover_check] (rebinds the root from [pm_base] after a crash,
    then checks). Keys and values are nonzero machine words. *)

open Hippo_pmir
open Hippo_pmcheck

val build : unit -> Program.t

(** A YCSB client session symmetric to {!Redis_mini}'s: integer keys and
    (key, version) values are shifted into CLHT's nonzero-word domain. *)
type session = { interp : Interp.t; hdr_addr : int }

(** The nonzero key word a YCSB integer key maps to. *)
val key_of : int -> int

(** The nonzero value word a (key, version) pair maps to. *)
val value_of : k:int -> version:int -> int

(** Initialize the table on an existing interpreter. *)
val attach : ?nbuckets:int -> Interp.t -> session

val start : ?config:Interp.config -> ?nbuckets:int -> Program.t -> session

(** Rebind the table root on an interpreter created over a crash image
    ([clht_recover_check] re-derives the header from [pm_base]). *)
val recover_attach : Interp.t -> session
val op_insert : session -> k:int -> version:int -> unit

(** Returns the stored value word, or 0 when absent. *)
val op_read : session -> k:int -> int

val op_delete : session -> k:int -> int

(** The table's size field, read host-side (CLHT has no size query). *)
val count : session -> int

(** Run [clht_check]: the walk agrees with the stored size. *)
val check : session -> bool

(** [Scan] degrades to point lookups ({!Redis_mini.run_op}'s behavior);
    protocol-level scans are reported unsupported by the {!App} adapter. *)
val run_op : session -> Hippo_ycsb.Workload.op -> unit

(** The example workload from RECIPE's evaluation: insertion, update,
    lookup and deletion traffic, with chains forced through overflow. *)
val workload : Interp.t -> unit

(** Injected-bug ground truth for the corpus harness (both cases share the
    program). *)
val cases : Hippo_pmdk_mini.Case.t list
