(** The Redis case study (§6.3, Fig. 4).

    Builds the three persistent Redises:

    - {b Redis_H-intra}: flush-free Redis repaired with Phase 3 disabled
      (intraprocedural fixes only);
    - {b Redis-pm}: the hand-written {!Redis_mini.Manual} baseline;
    - {b Redis_H-full}: flush-free Redis repaired by full Hippocrates;

    then drives each through the YCSB workloads under the latency cost
    model and reports throughput with 95% confidence intervals. *)

open Hippo_pmir
open Hippo_pmcheck
open Hippo_core

(** The repair workload: exercises every PM-mutating path (fresh insert,
    in-place update, delete at chain head and mid-chain) plus the volatile
    paths (reply echoes, GET copies) that teach the heuristic which helpers
    are dual-use. Few buckets force collision chains. *)
let repair_workload (t : Interp.t) =
  let s = Redis_mini.attach ~nbuckets:8 t in
  for k = 0 to 19 do
    Redis_mini.op_insert s ~k ~version:0
  done;
  for k = 0 to 4 do
    Redis_mini.op_insert s ~k ~version:1 (* in-place updates *)
  done;
  for k = 0 to 9 do
    ignore (Redis_mini.op_read s ~k)
  done;
  ignore (Redis_mini.op_delete s ~k:3);
  ignore (Redis_mini.op_delete s ~k:11);
  ignore (Redis_mini.op_read s ~k:3)

type variants = {
  h_intra : Program.t;
  manual : Program.t;
  h_full : Program.t;
  full_result : Driver.result;
  intra_result : Driver.result;
}

let repair_variants () : variants =
  let flush_free = Redis_mini.build Redis_mini.Flush_free in
  let manual = Redis_mini.build Redis_mini.Manual in
  let full_result =
    Driver.repair ~name:"redis-H-full" ~workload:repair_workload flush_free
  in
  let intra_result =
    Driver.repair
      ~options:{ Driver.default_options with hoisting = false }
      ~name:"redis-H-intra" ~workload:repair_workload flush_free
  in
  {
    h_intra = intra_result.Driver.repaired;
    manual;
    h_full = full_result.Driver.repaired;
    full_result;
    intra_result;
  }

(** Confirm the baseline is clean and the repaired variants are clean:
    pmemcheck reports no durability bugs on any of the three (the paper's
    precondition for the performance comparison). *)
let residual_bugs prog =
  (* bug collection does not need the event trace *)
  let t =
    Interp.create { Interp.default_config with Interp.trace = false } prog
  in
  repair_workload t;
  Interp.exit_check t;
  Interp.bugs t

(* ------------------------------------------------------------------ *)

let load_records s ~n =
  for k = 0 to n - 1 do
    Redis_mini.op_insert s ~k ~version:0
  done

(** One timed trial of one workload against one program variant. *)
let trial ?(cost = Cost.default) prog (spec : Hippo_ycsb.Workload.spec) ~seed :
    Hippo_perfmodel.Timed.run =
  let ops = Hippo_ycsb.Workload.ops spec ~seed in
  let nbuckets = max 64 (spec.record_count / 8) in
  Hippo_perfmodel.Timed.measure ~cost prog
    ~setup:(fun t ->
      let s = Redis_mini.attach ~nbuckets t in
      if spec.kind <> Hippo_ycsb.Workload.Load then
        load_records s ~n:spec.record_count;
      s)
    ~drive:(fun _t s -> List.iter (Redis_mini.run_op s) ops)
    ~ops:(List.length ops)

type row = {
  workload : Hippo_ycsb.Workload.kind;
  intra : Hippo_perfmodel.Stats.summary;
  manual_pm : Hippo_perfmodel.Stats.summary;
  full : Hippo_perfmodel.Stats.summary;
}

(** The full Fig. 4 sweep. [trials] seeds per cell. Throughputs are in
    simulated kops/s. *)
let figure4 ?(trials = 5) ?(record_count = 2_000) ?(op_count = 2_000)
    (v : variants) : row list =
  List.map
    (fun kind ->
      let spec =
        {
          (Hippo_ycsb.Workload.default_spec kind) with
          record_count;
          op_count;
        }
      in
      let summarize prog =
        Hippo_perfmodel.Timed.trials trials (fun seed ->
            trial prog spec ~seed)
      in
      {
        workload = kind;
        intra = summarize v.h_intra;
        manual_pm = summarize v.manual;
        full = summarize v.h_full;
      })
    Hippo_ycsb.Workload.all_kinds

let pp_row ppf r =
  let open Hippo_perfmodel in
  let cell s = Fmt.str "%a" Stats.pp_summary s in
  Fmt.pf ppf
    "%-5s  H-intra: %-14s  Redis-pm: %-14s  H-full: %-14s  (full/intra %.1fx)"
    (Hippo_ycsb.Workload.kind_to_string r.workload)
    (cell r.intra) (cell r.manual_pm) (cell r.full)
    (r.full.Stats.mean /. r.intra.Stats.mean)
