(** Redis_mini: a persistent hash-table key-value store in PMIR, modelled
    on Redis-pmem's PMDK dict (§6.3's subject).

    PM layout:
    - header: [0] magic, [8] nbuckets, [16] count, [24] buckets pointer;
    - bucket array: nbuckets × 8-byte entry pointers;
    - entry: [0] next, [8] klen, [16] vlen, [24] vcap,
      [32..56) key bytes (klen <= 24), [64..64+vcap) value bytes.

    Commands copy data with the shared [memcpy] — both into PM (SET's key
    and value) and into the volatile reply buffer (GET's echo and SET's
    confirmation), recreating the exact fix-placement tension of §3.2.
    Every command ends with an [sfence]: removing all flushes but keeping
    fences is precisely how the paper builds the Redis repair subject
    ("we leave memory fences in order to preserve semantic ordering").

    Three build variants:
    - {!Flush_free}: no flushes at all — the Hippocrates input;
    - {!Manual}: hand-placed [pmem_persist] calls in developer style
      (Listing 2), the Redis-pmem baseline; pmcheck reports no bugs here. *)

open Hippo_pmir
open Hippo_pmcheck

type variant = Flush_free | Manual

let variant_to_string = function
  | Flush_free -> "flush-free"
  | Manual -> "manual (Redis-pm)"

let v = Value.reg
let i = Value.imm

(* Entry field offsets. *)
let off_next = 0
let off_klen = 8
let off_vlen = 16
let off_vcap = 24
let off_key = 32
let off_val = 64

(* Header field offsets. *)
let hdr_magic = 0
let hdr_nbuckets = 8
let hdr_count = 16
let hdr_buckets = 24

let magic = 0x52444953 (* "RDIS" *)

let build (variant : variant) : Program.t =
  let b = Builder.create () in
  Hippo_pmdk_mini.Runtime.add b;
  let open Builder in
  let persist fb addr len =
    match variant with
    | Manual -> call_void fb "pmem_persist" [ addr; len ]
    | Flush_free -> ()
  in
  (* bucket slot address for a key *)
  let _ =
    func b "dict_slot" [ "hdr"; "key"; "klen" ] ~body:(fun fb ->
        let nb = load fb (gep fb (v "hdr") (i hdr_nbuckets)) in
        let bp = load fb (gep fb (v "hdr") (i hdr_buckets)) in
        let h = call fb "hash_fnv" [ v "key"; v "klen" ] in
        let idx = rem fb h nb in
        ret fb (gep fb bp (mul fb idx (i 8))))
  in
  let _ =
    func b "dict_find" [ "hdr"; "key"; "klen" ] ~body:(fun fb ->
        let slot = call fb "dict_slot" [ v "hdr"; v "key"; v "klen" ] in
        ignore (set fb "e" (load fb slot));
        while_ fb
          ~cond:(fun () -> ne fb (v "e") (i 0))
          ~body:(fun () ->
            let ekl = load fb (gep fb (v "e") (i off_klen)) in
            if_ fb
              (eq fb ekl (v "klen"))
              ~then_:(fun () ->
                let keq =
                  call fb "memcmp_eq"
                    [ gep fb (v "e") (i off_key); v "key"; v "klen" ]
                in
                if_ fb keq ~then_:(fun () -> ret fb (v "e")) ())
              ();
            ignore (set fb "e" (load fb (gep fb (v "e") (i off_next)))));
        ret fb (i 0))
  in
  let _ =
    func b "dict_init" [ "nbuckets" ] ~body:(fun fb ->
        let hdr = call fb "pm_alloc" [ i 64 ] in
        let nbytes = mul fb (v "nbuckets") (i 8) in
        let bp = call fb "pm_alloc" [ nbytes ] in
        ignore (call fb "memset" [ bp; i 0; nbytes ]);
        store fb ~addr:(gep fb hdr (i hdr_nbuckets)) (v "nbuckets");
        store fb ~addr:(gep fb hdr (i hdr_count)) (i 0);
        store fb ~addr:(gep fb hdr (i hdr_buckets)) bp;
        store fb ~addr:(gep fb hdr (i hdr_magic)) (i magic);
        persist fb bp nbytes;
        persist fb hdr (i 32);
        fence fb ();
        ret fb hdr)
  in
  let _ =
    func b "dict_set" [ "hdr"; "key"; "klen"; "val"; "vlen"; "reply" ]
      ~body:(fun fb ->
        (* protocol decode: wire buffer -> volatile sds staging copy *)
        let stage = load fb (Value.global "g_stage") in
        ignore (call fb "memcpy" [ stage; v "val"; v "vlen" ]);
        let e = call fb "dict_find" [ v "hdr"; v "key"; v "klen" ] in
        (* no short-circuit &&: guard the vcap load behind the null test *)
        ignore (set fb "fits" (i 0));
        if_ fb
          (ne fb e (i 0))
          ~then_:(fun () ->
            let cap = load fb (gep fb e (i off_vcap)) in
            if_ fb
              (le fb (v "vlen") cap)
              ~then_:(fun () -> ignore (set fb "fits" (i 1)))
              ())
          ();
        if_ fb (v "fits")
          ~then_:(fun () ->
            (* update in place: value bytes, then length *)
            ignore
              (call fb "memcpy" [ gep fb e (i off_val); stage; v "vlen" ]);
            persist fb (gep fb e (i off_val)) (v "vlen");
            store fb ~addr:(gep fb e (i off_vlen)) (v "vlen");
            persist fb (gep fb e (i off_vlen)) (i 8))
          ~else_:(fun () ->
            let cap = band fb (add fb (v "vlen") (i 63)) (i (lnot 63)) in
            let ne_ = call fb "pm_alloc" [ add fb (i off_val) cap ] in
            ignore
              (call fb "memcpy" [ gep fb ne_ (i off_key); v "key"; v "klen" ]);
            store fb ~addr:(gep fb ne_ (i off_klen)) (v "klen");
            persist fb (gep fb ne_ (i off_key)) (v "klen");
            ignore
              (call fb "memcpy" [ gep fb ne_ (i off_val); stage; v "vlen" ]);
            persist fb (gep fb ne_ (i off_val)) (v "vlen");
            store fb ~addr:(gep fb ne_ (i off_vlen)) (v "vlen");
            store fb ~addr:(gep fb ne_ (i off_vcap)) cap;
            let slot = call fb "dict_slot" [ v "hdr"; v "key"; v "klen" ] in
            store fb ~addr:(gep fb ne_ (i off_next)) (load fb slot);
            (* header fields must be durable before the entry is linked *)
            persist fb ne_ (i 32);
            (match variant with
            | Manual ->
                (* undo-log the link update (libpmemobj-tx style) *)
                let log = load fb (Value.global "g_txlog") in
                store fb ~addr:log slot;
                store fb ~addr:(gep fb log (i 8)) (load fb slot);
                store fb ~addr:(gep fb log (i 16))
                  (load fb (gep fb (v "hdr") (i hdr_count)));
                call_void fb "pmem_persist" [ log; i 24 ];
                store fb ~addr:(gep fb log (i 24)) (i 1);
                call_void fb "pmem_persist" [ gep fb log (i 24); i 8 ]
            | Flush_free -> ());
            store fb ~addr:slot ne_;
            persist fb slot (i 8);
            let cnt = gep fb (v "hdr") (i hdr_count) in
            store fb ~addr:cnt (add fb (load fb cnt) (i 1));
            persist fb cnt (i 8))
          ();
        (* volatile reply echo (the server acknowledges with the value) *)
        ignore (call fb "memcpy" [ v "reply"; v "val"; v "vlen" ]);
        fence fb ();
        ret fb (i 0))
  in
  let _ =
    func b "dict_get" [ "hdr"; "key"; "klen"; "out" ] ~body:(fun fb ->
        let e = call fb "dict_find" [ v "hdr"; v "key"; v "klen" ] in
        if_ fb
          (eq fb e (i 0))
          ~then_:(fun () -> ret fb (i (-1)))
          ();
        let vl = load fb (gep fb e (i off_vlen)) in
        let stage = load fb (Value.global "g_stage") in
        ignore (call fb "memcpy" [ stage; gep fb e (i off_val); vl ]);
        ignore (call fb "memcpy" [ v "out"; stage; vl ]);
        ret fb vl)
  in
  let _ =
    func b "dict_del" [ "hdr"; "key"; "klen" ] ~body:(fun fb ->
        let slot = call fb "dict_slot" [ v "hdr"; v "key"; v "klen" ] in
        ignore (set fb "prev" (i 0));
        ignore (set fb "e" (load fb slot));
        while_ fb
          ~cond:(fun () -> ne fb (v "e") (i 0))
          ~body:(fun () ->
            let ekl = load fb (gep fb (v "e") (i off_klen)) in
            let keq =
              band fb
                (eq fb ekl (v "klen"))
                (call fb "memcmp_eq"
                   [ gep fb (v "e") (i off_key); v "key"; v "klen" ])
            in
            if_ fb keq
              ~then_:(fun () ->
                let nxt = load fb (gep fb (v "e") (i off_next)) in
                if_ fb
                  (eq fb (v "prev") (i 0))
                  ~then_:(fun () ->
                    store fb ~addr:slot nxt;
                    persist fb slot (i 8))
                  ~else_:(fun () ->
                    let pn = gep fb (v "prev") (i off_next) in
                    store fb ~addr:pn nxt;
                    persist fb pn (i 8))
                  ();
                let cnt = gep fb (v "hdr") (i hdr_count) in
                store fb ~addr:cnt (sub fb (load fb cnt) (i 1));
                persist fb cnt (i 8);
                fence fb ();
                ret fb (i 1))
              ();
            ignore (set fb "prev" (v "e"));
            ignore (set fb "e" (load fb (gep fb (v "e") (i off_next)))));
        fence fb ();
        ret fb (i 0))
  in
  let _ =
    func b "dict_count" [ "hdr" ] ~body:(fun fb ->
        ret fb (load fb (gep fb (v "hdr") (i hdr_count))))
  in
  (* Recovery invariant: magic intact and the entry walk agrees with the
     stored count, with all lengths in range. Used by crash simulation. *)
  let _ =
    func b "dict_check" [ "hdr" ] ~body:(fun fb ->
        let m = load fb (gep fb (v "hdr") (i hdr_magic)) in
        if_ fb (ne fb m (i magic)) ~then_:(fun () -> ret fb (i 0)) ();
        let nb = load fb (gep fb (v "hdr") (i hdr_nbuckets)) in
        let bp = load fb (gep fb (v "hdr") (i hdr_buckets)) in
        ignore (set fb "n" (i 0));
        for_ fb "bi" ~from:(i 0) ~below:nb ~body:(fun bi ->
            let slot = gep fb bp (mul fb bi (i 8)) in
            ignore (set fb "e" (load fb slot));
            while_ fb
              ~cond:(fun () -> ne fb (v "e") (i 0))
              ~body:(fun () ->
                let kl = load fb (gep fb (v "e") (i off_klen)) in
                let vl = load fb (gep fb (v "e") (i off_vlen)) in
                let vc = load fb (gep fb (v "e") (i off_vcap)) in
                let bad =
                  bor fb
                    (bor fb (le fb kl (i 0)) (gt fb kl (i 24)))
                    (bor fb (lt fb vl (i 0)) (gt fb vl vc))
                in
                if_ fb bad ~then_:(fun () -> ret fb (i 0)) ();
                ignore (set fb "n" (add fb (v "n") (i 1)));
                ignore (set fb "e" (load fb (gep fb (v "e") (i off_next))))));
        let cnt = load fb (gep fb (v "hdr") (i hdr_count)) in
        ret fb (eq fb (v "n") cnt))
  in
  (* --- the command layer (the "server" side) --------------------------
     The host client never passes pointers: it fills the connection
     buffers, sets the length globals, and issues a command. This is also
     what makes whole-program alias analysis complete: every pointer that
     reaches the dict flows from an allocation the program performs
     itself, exactly as in the real Redis server. *)
  global b "g_hdr" 8;
  global b "g_key" 8;
  global b "g_val" 8;
  global b "g_reply" 8;
  global b "g_stage" 8;
  global b "g_txlog" 8;
  global b "g_klen" 8;
  global b "g_vlen" 8;
  let _ =
    func b "server_init" [ "nbuckets" ] ~body:(fun fb ->
        let hdr = call fb "dict_init" [ v "nbuckets" ] in
        store fb ~addr:(Value.global "g_hdr") hdr;
        store fb ~addr:(Value.global "g_key") (call fb "malloc" [ i 32 ]);
        store fb ~addr:(Value.global "g_val") (call fb "malloc" [ i 128 ]);
        store fb ~addr:(Value.global "g_reply") (call fb "malloc" [ i 128 ]);
        store fb ~addr:(Value.global "g_stage") (call fb "malloc" [ i 128 ]);
        (match variant with
        | Manual ->
            (* the developer port keeps a small undo log, as the
               libpmemobj-transaction-based Redis-pmem does *)
            let log = call fb "pm_alloc" [ i 64 ] in
            store fb ~addr:(Value.global "g_txlog") log;
            call_void fb "pmem_persist" [ log; i 8 ]
        | Flush_free -> ());
        ret_void fb)
  in
  let _ =
    func b "cmd_set" [] ~body:(fun fb ->
        let hdr = load fb (Value.global "g_hdr") in
        let key = load fb (Value.global "g_key") in
        let klen = load fb (Value.global "g_klen") in
        let vl = load fb (Value.global "g_val") in
        let vlen = load fb (Value.global "g_vlen") in
        let reply = load fb (Value.global "g_reply") in
        ret fb (call fb "dict_set" [ hdr; key; klen; vl; vlen; reply ]))
  in
  let _ =
    func b "cmd_get" [] ~body:(fun fb ->
        let hdr = load fb (Value.global "g_hdr") in
        let key = load fb (Value.global "g_key") in
        let klen = load fb (Value.global "g_klen") in
        let reply = load fb (Value.global "g_reply") in
        ret fb (call fb "dict_get" [ hdr; key; klen; reply ]))
  in
  let _ =
    func b "cmd_del" [] ~body:(fun fb ->
        let hdr = load fb (Value.global "g_hdr") in
        let key = load fb (Value.global "g_key") in
        let klen = load fb (Value.global "g_klen") in
        ret fb (call fb "dict_del" [ hdr; key; klen ]))
  in
  let _ =
    func b "cmd_count" [] ~body:(fun fb ->
        ret fb (call fb "dict_count" [ load fb (Value.global "g_hdr") ]))
  in
  let _ =
    func b "cmd_check" [] ~body:(fun fb ->
        ret fb (call fb "dict_check" [ load fb (Value.global "g_hdr") ]))
  in
  let p = Builder.program b in
  Validate.check_exn p;
  p

(* ---------------------------------------------------------------------- *)
(* Host-side driver: a YCSB client that fills the server's connection
   buffers and issues commands. *)

type session = {
  interp : Interp.t;
  key_buf : int;
  val_buf : int;
  reply_buf : int;
  g_klen : int;
  g_vlen : int;
}

let key_cap = 24
let val_cap = 96

(** [attach interp ~nbuckets] initializes the server and locates the
    connection buffers (used when the interpreter is owned by a repair or
    measurement harness). *)
let attach ?(nbuckets = 1024) interp : session =
  ignore (Exec.call interp "server_init" [ nbuckets ]);
  let mem = Interp.mem interp in
  let g name = Interp.global_addr interp name in
  let deref name = Mem.load mem ~addr:(g name) ~size:8 in
  {
    interp;
    key_buf = deref "g_key";
    val_buf = deref "g_val";
    reply_buf = deref "g_reply";
    g_klen = g "g_klen";
    g_vlen = g "g_vlen";
  }

(* Sessions are hot paths (the load generator drives millions of ops):
   no trace by default. *)
let start ?(config = { Interp.default_config with Interp.trace = false })
    ?nbuckets prog : session =
  attach ?nbuckets (Interp.create config prog)

(** [recover_attach interp] rebinds the server roots on an interpreter
    that was created over a crash image ([Interp.create ~pm_image]
    [~pm_brk]). Redis recovery is pure root recomputation — the dict
    header is the pool's first (cache-line-aligned) allocation and the
    bucket array follows it — so it runs host-side: a PMIR recovery
    function would add malloc and call sites to the program and perturb
    the whole-program alias analysis (and with it the repair's flush
    placement) in every build variant. The volatile connection buffers
    are reallocated fresh; nothing durable is written, so the image
    under recovery is exactly what the crash preserved. Consistency is
    judged by the caller ({!session} commands, e.g. [cmd_check]). *)
let recover_attach interp : session =
  let mem = Interp.mem interp in
  let g name = Interp.global_addr interp name in
  let put name value = Mem.store mem ~addr:(g name) ~size:8 value in
  let hdr = Layout.pm_base in
  put "g_hdr" hdr;
  let key_buf = Mem.alloc_vol mem 32 in
  let val_buf = Mem.alloc_vol mem 128 in
  let reply_buf = Mem.alloc_vol mem 128 in
  put "g_key" key_buf;
  put "g_val" val_buf;
  put "g_reply" reply_buf;
  put "g_stage" (Mem.alloc_vol mem 128);
  (* Manual's undo log is the allocation right after the bucket array;
     its address is recomputable from the persisted bucket count
     (pm_alloc rounds to cache lines). The flush-free build never reads
     [g_txlog], so the unconditional store is harmless there. *)
  let nb = Mem.load mem ~addr:(hdr + hdr_nbuckets) ~size:8 in
  put "g_txlog" (hdr + 64 + (((nb * 8) + 63) land lnot 63));
  { interp; key_buf; val_buf; reply_buf; g_klen = g "g_klen"; g_vlen = g "g_vlen" }

let set_key s k =
  let key = Hippo_ycsb.Workload.key_bytes k in
  let mem = Interp.mem s.interp in
  Mem.write_string mem ~addr:s.key_buf key;
  Mem.store mem ~addr:s.g_klen ~size:8 (String.length key)

let set_value s ~k ~version =
  let value = Hippo_ycsb.Workload.value_bytes ~k ~version in
  let mem = Interp.mem s.interp in
  Mem.write_string mem ~addr:s.val_buf value;
  Mem.store mem ~addr:s.g_vlen ~size:8 (String.length value)

let op_insert s ~k ~version =
  set_key s k;
  set_value s ~k ~version;
  ignore (Exec.call s.interp "cmd_set" [])

let op_read s ~k =
  set_key s k;
  Exec.call s.interp "cmd_get" []

let op_delete s ~k =
  set_key s k;
  Exec.call s.interp "cmd_del" []

let run_op s (op : Hippo_ycsb.Workload.op) =
  match op with
  | Hippo_ycsb.Workload.Read k -> ignore (op_read s ~k)
  | Hippo_ycsb.Workload.Update k -> op_insert s ~k ~version:1
  | Hippo_ycsb.Workload.Insert k -> op_insert s ~k ~version:0
  | Hippo_ycsb.Workload.Scan (k, len) ->
      for j = k to k + len - 1 do
        ignore (op_read s ~k:j)
      done
  | Hippo_ycsb.Workload.Read_modify_write k ->
      ignore (op_read s ~k);
      op_insert s ~k ~version:2

let count s = Exec.call s.interp "cmd_count" []
