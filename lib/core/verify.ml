(* Facade: the pipeline pass moved into the engine library (lib/engine);
   this alias keeps the historical [Hippo_core.Verify] path working for
   every existing caller. *)
include Hippo_engine.Verify
