(** End-to-end repair pipeline (Fig. 2).

    Step 1: run the workload under the bug finder, collecting the trace,
    per-site pointer observations and bug reports. Step 2: locate each
    bug's store in the IR. Step 3: compute fixes — Phase 1
    intraprocedural, Phase 2 reduction, Phase 3 hoisting. Step 4: apply,
    validate, and re-run the bug finder to confirm zero residual bugs and
    observational equivalence.

    {[
      let result = Driver.repair ~name:"myapp"
          ~workload:(fun t -> ignore (Interp.call t "main" [])) prog in
      assert (Verify.effective result.verification);
      Printer.to_string result.repaired
    ]} *)

open Hippo_pmir
open Hippo_pmcheck

type oracle_choice = Full_aa | Trace_aa

val oracle_name : oracle_choice -> string

type options = {
  oracle : oracle_choice;
  hoisting : bool;  (** Phase 3 on/off (off = the H-intra configuration) *)
  reduction : bool;  (** Phase 2 on/off (ablation A2) *)
  clone_reuse : bool;  (** share persistent subprograms (ablation A1) *)
  style : Apply.style;  (** raw clwb/sfence vs portable libpmem calls *)
}

val default_options : options

type result = {
  target : string;
  bugs : Report.bug list;
  plan : Fix.plan;
  decisions : Heuristic.decision list;
  repaired : Program.t;
  apply_stats : Apply.stats;
  verification : Verify.outcome;
  raw_fix_count : int;
  reduce_eliminated : int;
  input_instrs : int;
  output_instrs : int;
  time_s : float;  (** wall-clock time of the whole pipeline (Fig. 5) *)
  peak_heap_bytes : int;
  trace_events : int;
}

(** [plan ?options ~oracle prog bugs] runs Steps 2-3 only: compute the fix
    plan for externally-supplied bug reports (e.g. parsed from an on-disk
    trace file, the artifact's command-line mode). Returns the plan, the
    hoisting decisions, and the number of fixes reduction eliminated. *)
val plan :
  ?options:options ->
  oracle:Hippo_alias.Oracle.t ->
  Program.t ->
  Report.bug list ->
  Fix.plan * Heuristic.decision list * int

(** Which bug finder seeds the repair. [Dynamic] is the paper's pipeline
    (pmemcheck-style tracing); [Static] takes the reports of
    {!Hippo_staticcheck.Checker} instead — same report shape, same repair
    stages; [Both] unions the two report sets. *)
type detector = Dynamic | Static | Both

val detector_name : detector -> string
val detector_of_string : string -> detector option

(** Run the static durability checker (Step 1 of the static pipeline). *)
val check_static :
  ?entries:string list -> Program.t -> Hippo_staticcheck.Checker.result

(** The full pipeline. [workload] drives the program through the
    interpreter; the same workload is replayed on the repaired program for
    verification. [detector] (default [Dynamic]) selects where the bug
    reports come from; verification is always dynamic. [static_entries]
    overrides the static checker's entry points. *)
val repair :
  ?options:options ->
  ?detector:detector ->
  ?static_entries:string list ->
  name:string ->
  workload:(Interp.t -> unit) ->
  ?config:Interp.config ->
  Program.t ->
  result

val pp_summary : Format.formatter -> result -> unit

(** Outcome of the workload-free static pipeline: repair driven purely by
    static reports, verified by re-running the static checker on the
    repaired program. *)
type static_result = {
  s_target : string;
  s_bugs : Report.bug list;
  s_plan : Fix.plan;
  s_decisions : Heuristic.decision list;
  s_repaired : Program.t;
  s_apply : Apply.stats;
  s_residual : Report.bug list;  (** static bugs left after repair *)
  s_checker : Hippo_staticcheck.Checker.stats;
  s_time : float;
}

val repair_static :
  ?options:options ->
  ?entries:string list ->
  name:string ->
  Program.t ->
  static_result

val pp_static_summary : Format.formatter -> static_result -> unit
