(** End-to-end repair pipeline (Fig. 2) — thin wrappers over the
    pass-manager engine ({!Hippo_engine.Engine}).

    The engine runs locate -> compute -> reduce -> hoist -> apply ->
    verify over a shared context; these wrappers keep the historical
    API. Pass an explicit [?cache] to share memoized analyses (Andersen
    points-to, the Full-AA oracle, static summaries) across runs — an
    ablation sweep over one program computes each analysis once — and
    [?trace] to stream structured per-pass events.

    {[
      let result = Driver.repair ~name:"myapp"
          ~workload:(fun t -> ignore (Interp.call t "main" [])) prog in
      assert (Verify.effective result.verification);
      Printer.to_string result.repaired
    ]} *)

open Hippo_pmir
open Hippo_pmcheck

type oracle_choice = Hippo_engine.Context.oracle_choice =
  | Full_aa
  | Trace_aa

val oracle_name : oracle_choice -> string

type options = Hippo_engine.Context.options = {
  oracle : oracle_choice;
  hoisting : bool;  (** Phase 3 on/off (off = the H-intra configuration) *)
  reduction : bool;  (** Phase 2 on/off (ablation A2) *)
  clone_reuse : bool;  (** share persistent subprograms (ablation A1) *)
  style : Apply.style;  (** raw clwb/sfence vs portable libpmem calls *)
  jobs : int;
      (** domain budget for parallel passes (the verify pass runs the
          original and repaired workload executions concurrently when
          [jobs > 1]); 1 (the default) keeps the pipeline fully serial
          and byte-identical to the historical single-domain behavior *)
}

val default_options : options

type result = {
  target : string;
  bugs : Report.bug list;
  plan : Fix.plan;
  decisions : Heuristic.decision list;
  repaired : Program.t;
  apply_stats : Apply.stats;
  verification : Verify.outcome;
  raw_fix_count : int;
  reduce_eliminated : int;
  input_instrs : int;
  output_instrs : int;
  time_s : float;  (** wall-clock time of the whole pipeline (Fig. 5) *)
  peak_heap_bytes : int;
  trace_events : int;
  events : Hippo_engine.Event.t list;
      (** structured per-pass engine events, in emission order *)
}

(** [plan ?options ~oracle prog bugs] runs Steps 2-3 only: compute the fix
    plan for externally-supplied bug reports (e.g. parsed from an on-disk
    trace file, the artifact's command-line mode). Returns the plan, the
    hoisting decisions, and the number of fixes reduction eliminated. *)
val plan :
  ?options:options ->
  ?cache:Hippo_engine.Cache.t ->
  ?trace:(Hippo_engine.Event.t -> unit) ->
  oracle:Hippo_alias.Oracle.t ->
  Program.t ->
  Report.bug list ->
  Fix.plan * Heuristic.decision list * int

(** Which bug finder seeds the repair. [Dynamic] is the paper's pipeline
    (pmemcheck-style tracing); [Static] takes the reports of
    {!Hippo_staticcheck.Checker} instead — same report shape, same repair
    stages; [Both] unions the two report sets. These are the first-class
    {!Hippo_engine.Detector.t} sources, selected by name. *)
type detector = Hippo_engine.Detector.choice = Dynamic | Static | Both

val detector_name : detector -> string
val detector_of_string : string -> detector option

(** Run the static durability checker (Step 1 of the static pipeline). *)
val check_static :
  ?entries:string list -> Program.t -> Hippo_staticcheck.Checker.result

(** The full pipeline. [workload] drives the program through the
    interpreter; the same workload is replayed on the repaired program for
    verification. [detector] (default [Dynamic]) selects where the bug
    reports come from; verification is always dynamic. [static_entries]
    overrides the static checker's entry points. *)
val repair :
  ?options:options ->
  ?detector:detector ->
  ?static_entries:string list ->
  ?cache:Hippo_engine.Cache.t ->
  ?trace:(Hippo_engine.Event.t -> unit) ->
  name:string ->
  workload:(Interp.t -> unit) ->
  ?config:Interp.config ->
  Program.t ->
  result

val pp_summary : Format.formatter -> result -> unit

(** Outcome of the workload-free static pipeline: repair driven purely by
    static reports, verified by re-running the static checker on the
    repaired program. *)
type static_result = {
  s_target : string;
  s_bugs : Report.bug list;
  s_plan : Fix.plan;
  s_decisions : Heuristic.decision list;
  s_repaired : Program.t;
  s_apply : Apply.stats;
  s_residual : Report.bug list;  (** static bugs left after repair *)
  s_checker : Hippo_staticcheck.Checker.stats;
  s_time : float;
  s_events : Hippo_engine.Event.t list;
}

(** Workload-free repair from static reports. Respects [options.oracle]:
    [Full_aa] (the default) uses the whole-program Andersen oracle;
    [Trace_aa] raises [Invalid_argument] — it needs a workload trace,
    which this entry point by definition does not have (use
    [repair ~detector:Static] with a workload instead). *)
val repair_static :
  ?options:options ->
  ?entries:string list ->
  ?cache:Hippo_engine.Cache.t ->
  ?trace:(Hippo_engine.Event.t -> unit) ->
  name:string ->
  Program.t ->
  static_result

val pp_static_summary : Format.formatter -> static_result -> unit

(** Outcome of the flush/fence optimizer pipeline (opt-analyze ->
    opt-apply -> opt-verify; see {!Hippo_engine.Optimize}). *)
type opt_result = {
  t_target : string;
  t_outcome : Hippo_engine.Optimize.outcome;
  t_time : float;
  t_events : Hippo_engine.Event.t list;
}

(** Remove provably-redundant flushes and fences: deletions must be the
    identity on the static checker's converged states {e and} dynamic
    no-ops under a strict must-analysis; the rewrite is reverted
    wholesale if the static bug reports are not byte-identical
    afterwards. Share [?cache] with {!repair_static} over the same
    program to run Andersen exactly once across repair and optimize. *)
val optimize :
  ?options:options ->
  ?entries:string list ->
  ?cache:Hippo_engine.Cache.t ->
  ?trace:(Hippo_engine.Event.t -> unit) ->
  name:string ->
  Program.t ->
  opt_result

val pp_opt_summary : Format.formatter -> opt_result -> unit
