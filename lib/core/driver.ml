(** End-to-end repair pipeline (Fig. 2).

    Step 1: run the workload under the bug finder, collecting the trace,
    the per-site pointer observations and the bug reports. Step 2: locate
    each bug's store in the IR (identities in the trace are IR identities,
    as in the LLVM implementation). Step 3: compute fixes — Phase 1
    intraprocedural, Phase 2 reduction, Phase 3 hoisting. Step 4: apply,
    validate, and re-run the bug finder to confirm zero residual bugs and
    observational equivalence. *)

open Hippo_pmir
open Hippo_pmcheck

type oracle_choice = Full_aa | Trace_aa

let oracle_name = function Full_aa -> "Full-AA" | Trace_aa -> "Trace-AA"

type options = {
  oracle : oracle_choice;
  hoisting : bool;  (** Phase 3 on/off (off = the H-intra configuration) *)
  reduction : bool;  (** Phase 2 on/off (ablation A2) *)
  clone_reuse : bool;  (** share persistent subprograms (ablation A1) *)
  style : Apply.style;  (** raw clwb/sfence vs portable libpmem calls *)
}

let default_options =
  {
    oracle = Full_aa;
    hoisting = true;
    reduction = true;
    clone_reuse = true;
    style = Apply.Direct;
  }

type result = {
  target : string;
  bugs : Report.bug list;
  plan : Fix.plan;
  decisions : Heuristic.decision list;
  repaired : Program.t;
  apply_stats : Apply.stats;
  verification : Verify.outcome;
  raw_fix_count : int;
  reduce_eliminated : int;
  input_instrs : int;  (** program size before repair, in IR instructions *)
  output_instrs : int;
  time_s : float;  (** wall-clock time of the whole pipeline *)
  peak_heap_bytes : int;
  trace_events : int;
}

let no_reduction prog (per_bug : (Report.bug * Fix.intra list) list) :
    Reduce.reduced list =
  ignore prog;
  List.concat_map
    (fun (bug, fixes) ->
      List.map (fun fix -> { Reduce.fix; bugs = [ bug ] }) fixes)
    per_bug

(** [plan ?options ~oracle prog bugs] runs Steps 2-3 only: compute the fix
    plan for externally-supplied bug reports (e.g. parsed from an on-disk
    trace file, the artifact's command-line mode). *)
let plan ?(options = default_options) ~oracle prog (bugs : Report.bug list) :
    Fix.plan * Heuristic.decision list * int =
  let per_bug = Compute.phase1 prog bugs in
  let raw = List.fold_left (fun n (_, fs) -> n + List.length fs) 0 per_bug in
  let reduced =
    if options.reduction then Reduce.phase2 prog per_bug
    else no_reduction prog per_bug
  in
  let plan, decisions =
    if options.hoisting then Heuristic.phase3 oracle prog reduced
    else (Heuristic.phase3_disabled reduced, [])
  in
  (plan, decisions, raw - List.length reduced)

(** [repair ?options ~name ~workload ~config prog] runs the full pipeline.
    [workload] drives the program through the interpreter (host calls plus
    any scratch-buffer setup); the same workload is replayed on the
    repaired program for verification. *)
type detector = Dynamic | Static | Both

let detector_name = function
  | Dynamic -> "dynamic"
  | Static -> "static"
  | Both -> "both"

let detector_of_string = function
  | "dynamic" -> Some Dynamic
  | "static" -> Some Static
  | "both" -> Some Both
  | _ -> None

let check_static ?entries prog = Hippo_staticcheck.Checker.check ?entries prog

let repair ?(options = default_options) ?(detector = Dynamic) ?static_entries
    ~name ~(workload : Interp.t -> unit) ?(config = Interp.default_config)
    prog : result =
  let started = Unix_time.now () in
  (* Step 1: bug finding. The workload always runs (verification replays
     it), but which detector's reports seed the repair is selectable:
     statically-found bugs flow through the very same pipeline. *)
  let cfg = { config with Interp.trace = true } in
  let t = Interp.create cfg prog in
  (try workload t with Interp.Stopped_at_crash -> ());
  Interp.exit_check t;
  let dynamic_bugs = Interp.bugs t in
  let bugs =
    match detector with
    | Dynamic -> dynamic_bugs
    | Static -> (check_static ?entries:static_entries prog).bugs
    | Both ->
        Report.dedup
          (dynamic_bugs @ (check_static ?entries:static_entries prog).bugs)
  in
  let stats = Interp.site_stats t in
  let trace_events = List.length (Interp.trace t) in
  (* Step 2/3: fixes. *)
  let oracle =
    match options.oracle with
    | Full_aa -> Hippo_alias.Oracle.of_program prog
    | Trace_aa -> Hippo_alias.Oracle.trace_aa stats
  in
  let per_bug = Compute.phase1 prog bugs in
  let raw_fix_count =
    List.fold_left (fun n (_, fs) -> n + List.length fs) 0 per_bug
  in
  let reduced =
    if options.reduction then Reduce.phase2 prog per_bug
    else no_reduction prog per_bug
  in
  let reduce_eliminated = raw_fix_count - List.length reduced in
  let plan, decisions =
    if options.hoisting then Heuristic.phase3 oracle prog reduced
    else (Heuristic.phase3_disabled reduced, [])
  in
  (* Step 4: apply + verify. *)
  let repaired, apply_stats =
    Apply.apply ~reuse:options.clone_reuse ~style:options.style ~oracle prog
      plan
  in
  let verification =
    Verify.check ~workload ~config:cfg ~original:prog ~repaired
  in
  let time_s = Unix_time.now () -. started in
  let peak_heap_bytes = (Gc.quick_stat ()).Gc.top_heap_words * 8 in
  {
    target = name;
    bugs;
    plan;
    decisions;
    repaired;
    apply_stats;
    verification;
    raw_fix_count;
    reduce_eliminated;
    input_instrs = Program.size prog;
    output_instrs = Program.size repaired;
    time_s;
    peak_heap_bytes;
    trace_events;
  }

type static_result = {
  s_target : string;
  s_bugs : Report.bug list;
  s_plan : Fix.plan;
  s_decisions : Heuristic.decision list;
  s_repaired : Program.t;
  s_apply : Apply.stats;
  s_residual : Report.bug list;
  s_checker : Hippo_staticcheck.Checker.stats;
  s_time : float;
}

(** [repair_static ?options ?entries ~name prog] is the workload-free
    pipeline: bugs come from the static checker, and verification re-runs
    the static checker on the repaired program (effectiveness only —
    "do no harm" needs an execution to compare against, so callers with a
    workload should use [repair ~detector:Static]). *)
let repair_static ?(options = default_options) ?entries ~name prog :
    static_result =
  let started = Unix_time.now () in
  let checked = check_static ?entries prog in
  let oracle = Hippo_alias.Oracle.of_program prog in
  let plan, decisions, _eliminated = plan ~options ~oracle prog checked.bugs in
  let repaired, apply_stats =
    Apply.apply ~reuse:options.clone_reuse ~style:options.style ~oracle prog
      plan
  in
  let residual = (check_static ?entries repaired).bugs in
  {
    s_target = name;
    s_bugs = checked.bugs;
    s_plan = plan;
    s_decisions = decisions;
    s_repaired = repaired;
    s_apply = apply_stats;
    s_residual = residual;
    s_checker = checked.stats;
    s_time = Unix_time.now () -. started;
  }

let pp_static_summary ppf r =
  Fmt.pf ppf
    "@[<v>target: %s@,static bugs: %d@,fixes: %d (%d intraprocedural, %d \
     interprocedural)@,residual static bugs: %d@,summaries: %d computed, %d \
     reused@]"
    r.s_target
    (List.length r.s_bugs)
    (List.length r.s_plan.Fix.fixes)
    (Fix.count_intra r.s_plan)
    (Fix.count_hoisted r.s_plan)
    (List.length r.s_residual)
    r.s_checker.Hippo_staticcheck.Checker.summaries_computed
    r.s_checker.Hippo_staticcheck.Checker.summary_hits

let pp_summary ppf r =
  Fmt.pf ppf
    "@[<v>target: %s@,bugs: %d@,fixes: %d (%d intraprocedural, %d \
     interprocedural)@,reduction eliminated: %d@,IR size: %d -> %d \
     (+%.3f%%)@,verification: %a@]"
    r.target (List.length r.bugs)
    (List.length r.plan.Fix.fixes)
    (Fix.count_intra r.plan) (Fix.count_hoisted r.plan) r.reduce_eliminated
    r.input_instrs r.output_instrs
    (100.0
    *. float_of_int (r.output_instrs - r.input_instrs)
    /. float_of_int (max 1 r.input_instrs))
    Verify.pp r.verification
