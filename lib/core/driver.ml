(** End-to-end repair pipeline (Fig. 2) — thin wrappers over the
    pass-manager engine in [lib/engine].

    The engine runs locate -> compute -> reduce -> hoist -> apply ->
    verify over a shared context, memoizing analyses in a versioned
    cache and emitting one structured event per pass; these wrappers
    keep the historical [plan] / [repair] / [repair_static] API (and
    result shapes) for every existing caller, and add the optional
    [?cache] / [?trace] hooks that expose the engine's analysis reuse
    and structured tracing. *)

open Hippo_pmir
open Hippo_pmcheck
module E = Hippo_engine

let now = E.Unix_time.now

type oracle_choice = E.Context.oracle_choice = Full_aa | Trace_aa

let oracle_name = E.Context.oracle_name

type options = E.Context.options = {
  oracle : oracle_choice;
  hoisting : bool;  (** Phase 3 on/off (off = the H-intra configuration) *)
  reduction : bool;  (** Phase 2 on/off (ablation A2) *)
  clone_reuse : bool;  (** share persistent subprograms (ablation A1) *)
  style : Apply.style;  (** raw clwb/sfence vs portable libpmem calls *)
  jobs : int;  (** domain budget for parallel passes; 1 = fully serial *)
}

let default_options = E.Context.default_options

type result = {
  target : string;
  bugs : Report.bug list;
  plan : Fix.plan;
  decisions : Heuristic.decision list;
  repaired : Program.t;
  apply_stats : Apply.stats;
  verification : Verify.outcome;
  raw_fix_count : int;
  reduce_eliminated : int;
  input_instrs : int;  (** program size before repair, in IR instructions *)
  output_instrs : int;
  time_s : float;  (** wall-clock time of the whole pipeline *)
  peak_heap_bytes : int;
  trace_events : int;
  events : E.Event.t list;  (** structured per-pass engine events *)
}

let peak_heap_bytes () =
  (Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8)

(** [plan ?options ~oracle prog bugs] runs Steps 2-3 only: compute the fix
    plan for externally-supplied bug reports (e.g. parsed from an on-disk
    trace file, the artifact's command-line mode). *)
let plan ?(options = default_options) ?cache ?trace ~oracle prog
    (bugs : Report.bug list) : Fix.plan * Heuristic.decision list * int =
  E.Engine.plan ~options ?cache ?trace ~oracle prog bugs

type detector = E.Detector.choice = Dynamic | Static | Both

let detector_name = E.Detector.choice_name
let detector_of_string = E.Detector.choice_of_string
let check_static ?entries prog = Hippo_staticcheck.Checker.check ?entries prog

let repair ?(options = default_options) ?(detector = Dynamic) ?static_entries
    ?cache ?trace ~name ~(workload : Interp.t -> unit)
    ?(config = Interp.default_config) prog : result =
  let started = now () in
  let ctx =
    E.Engine.run ~options ?cache ?trace ?static_entries
      ~detector:(E.Detector.of_choice ?entries:static_entries detector)
      ~workload ~config ~name prog
  in
  let open E.Context in
  let repaired_view = Option.get ctx.repaired in
  {
    target = name;
    bugs = ctx.bugs;
    plan = ctx.plan;
    decisions = ctx.decisions;
    repaired = E.Cache.program repaired_view;
    apply_stats = Option.get ctx.apply_stats;
    verification = Option.get ctx.verification;
    raw_fix_count = ctx.raw_fix_count;
    reduce_eliminated = ctx.raw_fix_count - List.length ctx.reduced;
    input_instrs = E.Cache.size ctx.input;
    output_instrs = E.Cache.size repaired_view;
    time_s = now () -. started;
    peak_heap_bytes = peak_heap_bytes ();
    trace_events = ctx.trace_events;
    events = E.Context.events ctx;
  }

type static_result = {
  s_target : string;
  s_bugs : Report.bug list;
  s_plan : Fix.plan;
  s_decisions : Heuristic.decision list;
  s_repaired : Program.t;
  s_apply : Apply.stats;
  s_residual : Report.bug list;
  s_checker : Hippo_staticcheck.Checker.stats;
  s_time : float;
  s_events : E.Event.t list;
}

(** [repair_static ?options ?entries ~name prog] is the workload-free
    pipeline: bugs come from the static checker, and verification re-runs
    the static checker on the repaired program (effectiveness only —
    "do no harm" needs an execution to compare against, so callers with a
    workload should use [repair ~detector:Static]). *)
let repair_static ?(options = default_options) ?entries ?cache ?trace ~name
    prog : static_result =
  (match options.oracle with
  | Full_aa -> ()
  | Trace_aa ->
      invalid_arg
        "Driver.repair_static: the Trace-AA oracle needs a workload trace; \
         use repair ~detector:Static with a workload, or the Full-AA oracle");
  let started = now () in
  let ctx =
    E.Engine.run ~options ?cache ?trace ?static_entries:entries
      ~detector:(E.Detector.static_ ?entries ())
      ~name prog
  in
  let open E.Context in
  let repaired_view = Option.get ctx.repaired in
  {
    s_target = name;
    s_bugs = ctx.bugs;
    s_plan = ctx.plan;
    s_decisions = ctx.decisions;
    s_repaired = E.Cache.program repaired_view;
    s_apply = Option.get ctx.apply_stats;
    s_residual = Option.value ctx.residual_static ~default:[];
    s_checker = Option.get ctx.checker_stats;
    s_time = now () -. started;
    s_events = E.Context.events ctx;
  }

let pp_static_summary ppf r =
  Fmt.pf ppf
    "@[<v>target: %s@,static bugs: %d@,fixes: %d (%d intraprocedural, %d \
     interprocedural)@,residual static bugs: %d@,summaries: %d computed, %d \
     reused@]"
    r.s_target
    (List.length r.s_bugs)
    (List.length r.s_plan.Fix.fixes)
    (Fix.count_intra r.s_plan)
    (Fix.count_hoisted r.s_plan)
    (List.length r.s_residual)
    r.s_checker.Hippo_staticcheck.Checker.summaries_computed
    r.s_checker.Hippo_staticcheck.Checker.summary_hits

let pp_summary ppf r =
  Fmt.pf ppf
    "@[<v>target: %s@,bugs: %d@,fixes: %d (%d intraprocedural, %d \
     interprocedural)@,reduction eliminated: %d@,IR size: %d -> %d \
     (+%.3f%%)@,verification: %a@]"
    r.target (List.length r.bugs)
    (List.length r.plan.Fix.fixes)
    (Fix.count_intra r.plan) (Fix.count_hoisted r.plan) r.reduce_eliminated
    r.input_instrs r.output_instrs
    (100.0
    *. float_of_int (r.output_instrs - r.input_instrs)
    /. float_of_int (max 1 r.input_instrs))
    Verify.pp r.verification

(* ------------------------------------------------------------------ *)
(* Flush/fence optimizer (Bentō-style: repair must do no harm to speed) *)

type opt_result = {
  t_target : string;
  t_outcome : E.Optimize.outcome;
  t_time : float;
  t_events : E.Event.t list;
}

let optimize ?options ?entries ?cache ?trace ~name prog : opt_result =
  let started = now () in
  let ctx =
    E.Engine.optimize ?options ?cache ?trace ?static_entries:entries ~name
      prog
  in
  {
    t_target = name;
    t_outcome = Option.get ctx.E.Context.opt_outcome;
    t_time = now () -. started;
    t_events = E.Context.events ctx;
  }

let pp_opt_summary ppf r =
  Fmt.pf ppf "@[<v>target: %s@,%a@]" r.t_target E.Optimize.pp_outcome
    r.t_outcome
