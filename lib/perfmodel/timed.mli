(** Timed execution: run a host driver against a program under the latency
    cost model and report simulated throughput. *)

open Hippo_pmcheck

type run = {
  ops : int;
  sim_ns : float;  (** simulated nanoseconds accumulated by the model *)
  steps : int;  (** interpreted instructions *)
}

(** Thousands of operations per simulated second. *)
val throughput_kops : run -> float

(** [measure prog ~setup ~drive ~ops] creates an untraced interpreter with
    the cost model, runs [setup] (not timed — it may build driver state
    such as scratch buffers and return it), then [drive] (timed); [ops] is
    the operation count [drive] performs. *)
val measure :
  ?cost:Cost.t ->
  ?config:Interp.config ->
  Hippo_pmir.Program.t ->
  setup:(Interp.t -> 'a) ->
  drive:(Interp.t -> 'a -> unit) ->
  ops:int ->
  run

(** [trials n f] runs [f seed] for seeds 1..n and summarizes the
    throughputs. *)
val trials : int -> (int -> run) -> Stats.summary

(** Static persistence-operation counts: the no-bench-needed visibility
    metric for flush/fence redundancy removal. [flushes]/[fences] count
    [Flush]/[Fence] instructions plus call sites of the mini-libpmem
    entry points that flush and/or fence ([pmem_flush], [pmem_drain],
    [pmem_persist], [pmem_memcpy_persist] — the persist variants count as
    one of each). *)
type static_counts = { stores : int; flushes : int; fences : int }

val static_counts : Hippo_pmir.Program.t -> static_counts
val pp_static_counts : Format.formatter -> static_counts -> unit
