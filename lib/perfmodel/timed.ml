(** Timed execution: run a host driver against a program under the latency
    cost model and report simulated throughput. *)

open Hippo_pmcheck

type run = {
  ops : int;
  sim_ns : float;  (** simulated nanoseconds accumulated by the cost model *)
  steps : int;  (** interpreted instructions *)
}

let throughput_kops r =
  if r.sim_ns <= 0.0 then 0.0 else float_of_int r.ops /. r.sim_ns *. 1e6

(** [measure ?cost prog ~setup ~drive ~ops] creates an untraced interpreter
    with the cost model, runs [setup] (not timed — it may build driver
    state such as scratch buffers and return it), then [drive] (timed);
    [ops] is the operation count [drive] performs. *)
let measure ?(cost = Cost.default) ?(config = Interp.default_config) prog
    ~(setup : Interp.t -> 'a) ~(drive : Interp.t -> 'a -> unit) ~ops : run =
  let cfg = { config with Interp.trace = false; cost = Some cost } in
  let t = Interp.create cfg prog in
  let state = setup t in
  let before = Interp.cost_ns t in
  let steps_before = Interp.steps t in
  drive t state;
  {
    ops;
    sim_ns = Interp.cost_ns t -. before;
    steps = Interp.steps t - steps_before;
  }

(** [trials n f] runs [f seed] for seeds 1..n and summarizes the
    throughputs. *)
let trials n (f : int -> run) : Stats.summary =
  Stats.summarize (List.init n (fun k -> throughput_kops (f (k + 1))))

type static_counts = { stores : int; flushes : int; fences : int }

(* The mini-libpmem entry points that flush a range and/or fence; a call
   site counts as one flush site, one fence site, or both ([pmem_persist],
   [pmem_memcpy_persist]). The runtime bodies' own [Flush]/[Fence]
   instructions are counted once like any other instruction. *)
let flushing_calls = [ "pmem_flush"; "pmem_persist"; "pmem_memcpy_persist" ]
let fencing_calls = [ "pmem_drain"; "pmem_persist"; "pmem_memcpy_persist" ]

let static_counts prog =
  let open Hippo_pmir in
  List.fold_left
    (fun acc f ->
      Func.fold_instrs
        (fun acc (i : Instr.t) ->
          match Instr.op i with
          | Instr.Store _ -> { acc with stores = acc.stores + 1 }
          | Instr.Flush _ -> { acc with flushes = acc.flushes + 1 }
          | Instr.Fence _ -> { acc with fences = acc.fences + 1 }
          | Instr.Call { callee; _ } ->
              {
                acc with
                flushes =
                  (acc.flushes + if List.mem callee flushing_calls then 1 else 0);
                fences =
                  (acc.fences + if List.mem callee fencing_calls then 1 else 0);
              }
          | _ -> acc)
        acc f)
    { stores = 0; flushes = 0; fences = 0 }
    (Hippo_pmir.Program.funcs prog)

let pp_static_counts ppf c =
  Fmt.pf ppf "%d stores, %d flush sites, %d fence sites" c.stores c.flushes
    c.fences
