(** Mean and 95% confidence intervals over benchmark trials, as plotted in
    Fig. 4's error bars. Small samples use Student-t critical values. *)

type summary = { n : int; mean : float; stddev : float; ci95 : float }

(** Raises [Invalid_argument] on an empty sample. *)
val mean : float list -> float

(** Sample standard deviation (Bessel-corrected); 0 for n < 2. *)
val stddev : float list -> float

val summarize : float list -> summary

(** Renders as ["mean ±ci"]. *)
val pp_summary : Format.formatter -> summary -> unit

(** Do two 95% confidence intervals overlap? (the paper's "equal
    performance within the 95% confidence intervals") *)
val overlap : summary -> summary -> bool

(** Fixed-bucket log-linear latency histograms (HdrHistogram-style):
    16 linear sub-buckets per power-of-two octave over [0, 2^47) ns, in
    a fixed 704-slot array of exact integer counters. Worst-case
    relative quantile error is 1/16. [merge] is associative and
    commutative to the bit, so per-worker histograms can be combined in
    any order — the server's STATS endpoint and the serve bench both
    rely on this. *)
module Hist : sig
  type t

  val nbuckets : int
  val create : unit -> t

  (** [record t ns] adds one sample (negative values clamp to 0). *)
  val record : t -> int -> unit

  (** Total samples recorded. *)
  val count : t -> int

  (** Functional merge; neither input is modified. *)
  val merge : t -> t -> t

  (** [quantile t q] is the inclusive upper bound of the bucket holding
      the [q]-quantile sample, in ns; 0 on an empty histogram.
      Monotone in [q]. *)
  val quantile : t -> float -> float

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float
  val p999 : t -> float

  (** Sparse form: nonzero (bucket index, count) pairs in index order
      (the STATS wire payload). *)
  val buckets : t -> (int * int) list

  (** Rebuild from the sparse form; raises [Invalid_argument] on
      out-of-range indices or negative counts. *)
  val of_buckets : (int * int) list -> t

  (** Bucket index for a sample value (exposed for tests). *)
  val bucket_of : int -> int

  (** Inclusive upper bound of a bucket (exposed for tests). *)
  val bucket_bound : int -> float

  val pp : Format.formatter -> t -> unit
end
