(** Mean and 95% confidence intervals over benchmark trials, as plotted in
    Fig. 4's error bars. *)

type summary = { n : int; mean : float; stddev : float; ci95 : float }

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let n = List.length xs in
  if n < 2 then 0.0
  else
    sqrt
      (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (n - 1))

(* Two-sided t critical values at 95% for small samples; 1.96 beyond. *)
let t_crit n =
  let table =
    [| 12.71; 4.30; 3.18; 2.78; 2.57; 2.45; 2.36; 2.31; 2.26; 2.23;
       2.20; 2.18; 2.16; 2.14; 2.13; 2.12; 2.11; 2.10; 2.09; 2.09 |]
  in
  let df = n - 1 in
  if df <= 0 then 0.0 else if df <= 20 then table.(df - 1) else 1.96

let summarize xs =
  let n = List.length xs in
  let m = mean xs in
  let s = stddev xs in
  { n; mean = m; stddev = s; ci95 = t_crit n *. s /. sqrt (float_of_int n) }

let pp_summary ppf s = Fmt.pf ppf "%.0f ±%.0f" s.mean s.ci95

(** Do two confidence intervals overlap? (the paper's "equal performance
    within the 95% confidence intervals") *)
let overlap a b =
  a.mean -. a.ci95 <= b.mean +. b.ci95 && b.mean -. b.ci95 <= a.mean +. a.ci95

(** Fixed-bucket log-linear latency histograms (HdrHistogram-style).

    Buckets are exact integer counters, so [merge] is associative and
    commutative to the bit. The bucket layout is log-linear: 16 linear
    sub-buckets per power-of-two octave, giving a worst-case relative
    quantile error of 1/16 while covering [0, 2^47) ns (~1.6 days) in a
    fixed 704-slot array. *)
module Hist = struct
  let sub_bits = 4
  let sub = 1 lsl sub_bits (* 16 sub-buckets per octave *)
  let octaves = 44
  let nbuckets = sub * octaves (* 704 *)

  type t = { counts : int array; mutable total : int }

  let create () = { counts = Array.make nbuckets 0; total = 0 }

  (* Bucket index for a nonnegative ns value: values below [sub] get
     their own bucket; above, the octave of the most significant bit
     selects a group of [sub] linear sub-buckets. *)
  let bucket_of v =
    let v = max 0 v in
    if v < sub then v
    else
      let msb =
        (* position of the most significant set bit *)
        let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
        go 0 v
      in
      let idx =
        ((msb - sub_bits + 1) * sub) + ((v lsr (msb - sub_bits)) land (sub - 1))
      in
      min idx (nbuckets - 1)

  (* Inclusive upper bound of bucket [i], as a float (the quantile
     estimate reported for samples landing in the bucket). *)
  let bucket_bound i =
    if i < sub then float_of_int i
    else
      let g = (i / sub) - 1 in
      let s = i mod sub in
      float_of_int (((sub + s + 1) lsl g) - 1)

  let record t v =
    let i = bucket_of v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let merge a b =
    let counts = Array.init nbuckets (fun i -> a.counts.(i) + b.counts.(i)) in
    { counts; total = a.total + b.total }

  (* Smallest bucket bound below which at least [q] of the samples lie.
     Empty histograms report 0. *)
  let quantile t q =
    if t.total = 0 then 0.0
    else
      let target =
        max 1 (int_of_float (ceil (q *. float_of_int t.total)))
      in
      let rec go i acc =
        if i >= nbuckets then bucket_bound (nbuckets - 1)
        else
          let acc = acc + t.counts.(i) in
          if acc >= target then bucket_bound i else go (i + 1) acc
      in
      go 0 0

  let p50 t = quantile t 0.50
  let p95 t = quantile t 0.95
  let p99 t = quantile t 0.99
  let p999 t = quantile t 0.999

  (* Sparse serialized form: nonzero (index, count) pairs in index
     order — the STATS wire payload. *)
  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
    done;
    !acc

  let of_buckets pairs =
    let t = create () in
    List.iter
      (fun (i, c) ->
        if i < 0 || i >= nbuckets then
          invalid_arg "Stats.Hist.of_buckets: bucket index out of range";
        if c < 0 then invalid_arg "Stats.Hist.of_buckets: negative count";
        t.counts.(i) <- t.counts.(i) + c;
        t.total <- t.total + c)
      pairs;
    t

  let pp ppf t =
    Fmt.pf ppf "p50 %.0fns p95 %.0fns p99 %.0fns p99.9 %.0fns (n=%d)"
      (p50 t) (p95 t) (p99 t) (p999 t) t.total
end
