(** The 11 reproduced PMDK unit-test bugs (§6.1, Fig. 3).

    Each case is a miniature of the cited upstream issue, preserving the
    structural property that determined how it was fixed:

    - issues {b 452, 940, 943}: a leaf routine updates a single-cache-line
      PM field reached only through persistent pointers. Hippocrates fixes
      these with an intraprocedural [clwb]; PMDK developers instead called
      a libpmem flush helper (functionally equivalent, more portable) —
      Fig. 3's first row.
    - issues {b 447, 458, 459, 460, 461, 585, 942, 945}: the unflushed
      store sits in a helper ([memcpy], [memset], a pointer/field writer)
      that other paths apply to volatile data, so the interprocedural fix
      at the PM call site is both what developers did and what
      Hippocrates's heuristic chooses — Fig. 3's second row. Issue 945 is
      modelled two frames deep (the paper observed hoists up to 2 frames).

    The miniatures drive both the effectiveness experiment (E2: all fixed,
    zero residual reports) and the accuracy comparison (E4 / Fig. 3). *)

open Hippo_pmir
open Hippo_pmcheck

let v = Value.reg
let i = Value.imm

let build ~(name : string) (emit : Builder.t -> unit) : Program.t =
  let b = Builder.create () in
  Runtime.add b;
  emit b;
  let p = Builder.program b in
  Validate.check_exn p;
  ignore name;
  p

let run_entry entry t = ignore (Exec.call t entry [])

(* --------------------------------------------------------------------- *)
(* Issue 452: obj_store unit test left a pool-header OID field in the
   cache. The field is only ever reached through the persistent pool
   pointer, so the fix stays in-line. *)

let case_452 : Case.t =
  let entry = "test_452" in
  let program =
    lazy
      (build ~name:"pmdk-452" (fun b ->
           let open Builder in
           let _ =
             func b "pool_clear_oid" [ "pool" ] ~body:(fun fb ->
                 let f = gep fb (v "pool") (i 16) in
                 store fb ~addr:f (i 0);
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let pool = call fb "pm_alloc" [ i 256 ] in
                 store fb ~addr:pool (i 0x504D444B) (* header magic *);
                 call_void fb "pmem_persist" [ pool; i 8 ];
                 call_void fb "pool_clear_oid" [ pool ];
                 call_void fb "pmem_drain" [];
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-452";
    system = "PMDK";
    issue = Some 452;
    title = "pool OID field not flushed after clear";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush;
    expected_shape = Case.Exp_intra_flush;
    dev_fix = Some Case.Dev_portable_flush;
    notes =
      "store is single-cache-line and PM-only; a fence already follows";
  }

(* Issue 940: API-misuse test forgot to persist the root object's size
   field. Same single-field shape as 452. *)

let case_940 : Case.t =
  let entry = "test_940" in
  let program =
    lazy
      (build ~name:"pmdk-940" (fun b ->
           let open Builder in
           let _ =
             func b "root_set_size" [ "root"; "n" ] ~body:(fun fb ->
                 let f = gep fb (v "root") (i 8) in
                 store fb ~addr:f (v "n");
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let root = call fb "pm_alloc" [ i 128 ] in
                 call_void fb "root_set_size" [ root; i 64 ];
                 call_void fb "pmem_drain" [];
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-940";
    system = "PMDK";
    issue = Some 940;
    title = "root object size update never flushed";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush;
    expected_shape = Case.Exp_intra_flush;
    dev_fix = Some Case.Dev_portable_flush;
    notes = "PM-only leaf store; developers added pmem_flush on the field";
  }

(* Issue 943: a persistent statistics counter bumped without a flush. *)

let case_943 : Case.t =
  let entry = "test_943" in
  let program =
    lazy
      (build ~name:"pmdk-943" (fun b ->
           let open Builder in
           let _ =
             func b "stats_bump" [ "stats" ] ~body:(fun fb ->
                 let f = gep fb (v "stats") (i 24) in
                 let old = load fb f in
                 let nw = add fb old (i 1) in
                 store fb ~addr:f nw;
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let stats = call fb "pm_alloc" [ i 64 ] in
                 for_ fb "k" ~from:(i 0) ~below:(i 10) ~body:(fun _ ->
                     call_void fb "stats_bump" [ stats ]);
                 call_void fb "pmem_drain" [];
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-943";
    system = "PMDK";
    issue = Some 943;
    title = "persistent run counter incremented in cache only";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush;
    expected_shape = Case.Exp_intra_flush;
    dev_fix = Some Case.Dev_portable_flush;
    notes = "read-modify-write on a PM-only counter inside a loop";
  }

(* --------------------------------------------------------------------- *)
(* Issue 447: redo-log entries written through a generic entry writer that
   the transaction code also applies to its volatile staging array. *)

let case_447 : Case.t =
  let entry = "test_447" in
  let program =
    lazy
      (build ~name:"pmdk-447" (fun b ->
           let open Builder in
           let _ =
             func b "entry_write" [ "buf"; "idx"; "val" ] ~body:(fun fb ->
                 let off = mul fb (v "idx") (i 8) in
                 let slot = gep fb (v "buf") off in
                 store fb ~addr:slot (v "val");
                 ret_void fb)
           in
           let _ =
             func b "redo_append" [ "log"; "idx"; "val" ] ~body:(fun fb ->
                 call_void fb "entry_write" [ v "log"; v "idx"; v "val" ];
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let staging = call fb "malloc" [ i 512 ] in
                 let log = call fb "pm_alloc" [ i 512 ] in
                 for_ fb "k" ~from:(i 0) ~below:(i 64) ~body:(fun k ->
                     call_void fb "entry_write" [ staging; k; k ]);
                 for_ fb "m" ~from:(i 0) ~below:(i 8) ~body:(fun m ->
                     call_void fb "redo_append" [ log; m; m ]);
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-447";
    system = "PMDK";
    issue = Some 447;
    title = "redo-log entries unflushed before commit point";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush_fence;
    expected_shape = Case.Exp_inter 1;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes = "entry writer shared with the volatile staging path";
  }

(* Issue 458: zeroing a heap zone header with the shared memset. *)

let case_458 : Case.t =
  let entry = "test_458" in
  let program =
    lazy
      (build ~name:"pmdk-458" (fun b ->
           let open Builder in
           let _ =
             func b "zone_init" [ "zone" ] ~body:(fun fb ->
                 ignore (call fb "memset" [ v "zone"; i 0; i 128 ]);
                 store fb ~addr:(v "zone") (i 0x5A4F4E45);
                 flush fb (v "zone");
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let scratch = call fb "malloc" [ i 64 ] in
                 ignore (call fb "memset" [ scratch; i 255; i 64 ]);
                 let zone = call fb "pm_alloc" [ i 192 ] in
                 call_void fb "zone_init" [ zone ];
                 call_void fb "pmem_drain" [];
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-458";
    system = "PMDK";
    issue = Some 458;
    title = "zone header zeroed through cache, only the magic flushed";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush;
    expected_shape = Case.Exp_inter 1;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes = "memset shared with volatile scratch; magic store was flushed";
  }

(* Issue 459: linked-list insert through a generic pointer writer. *)

let case_459 : Case.t =
  let entry = "test_459" in
  let program =
    lazy
      (build ~name:"pmdk-459" (fun b ->
           let open Builder in
           let _ =
             func b "ptr_write" [ "slot"; "val" ] ~body:(fun fb ->
                 store fb ~addr:(v "slot") (v "val");
                 ret_void fb)
           in
           let _ =
             func b "list_push" [ "head_slot"; "node" ] ~body:(fun fb ->
                 let old = load fb (v "head_slot") in
                 let nxt = gep fb (v "node") (i 0) in
                 call_void fb "ptr_write" [ nxt; old ];
                 call_void fb "ptr_write" [ v "head_slot"; v "node" ];
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 (* volatile list exercising the same writer *)
                 let vhead = call fb "malloc" [ i 8 ] in
                 let vnode = call fb "malloc" [ i 16 ] in
                 call_void fb "list_push" [ vhead; vnode ];
                 (* persistent list *)
                 let phead = call fb "pm_alloc" [ i 8 ] in
                 for_ fb "k" ~from:(i 0) ~below:(i 4) ~body:(fun _ ->
                     let n = call fb "pm_alloc" [ i 16 ] in
                     call_void fb "list_push" [ phead; n ]);
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-459";
    system = "PMDK";
    issue = Some 459;
    title = "list insert leaves next/head pointers volatile";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush_fence;
    expected_shape = Case.Exp_inter 2;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes =
      "pointer writer and list_push are both shared with the volatile \
       list, so the hoist lands two frames up";
  }

(* Issue 460 (after the shape of 463/Listing 2): pool descriptor updated
   with memcpy, persist deferred and then forgotten. *)

let case_460 : Case.t =
  let entry = "test_460" in
  let program =
    lazy
      (build ~name:"pmdk-460" (fun b ->
           let open Builder in
           let _ =
             func b "desc_update" [ "pool"; "src"; "len" ] ~body:(fun fb ->
                 let d = gep fb (v "pool") (i 64) in
                 ignore (call fb "memcpy" [ d; v "src"; v "len" ]);
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let reply = call fb "malloc" [ i 64 ] in
                 let src = call fb "malloc" [ i 64 ] in
                 for_ fb "k" ~from:(i 0) ~below:(i 64) ~body:(fun k ->
                     store fb ~size:1 ~addr:(gep fb src k) k);
                 (* volatile use of memcpy (building a reply) *)
                 ignore (call fb "memcpy" [ reply; src; i 64 ]);
                 let pool = call fb "pm_alloc" [ i 256 ] in
                 call_void fb "desc_update" [ pool; src; i 64 ];
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-460";
    system = "PMDK";
    issue = Some 460;
    title = "pool descriptor memcpy never persisted";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush_fence;
    expected_shape = Case.Exp_inter 1;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes = "the paper's Listing 2 pattern: pmem_persist after memcpy";
  }

(* Issue 461: chunk header run flags via a header writer used during
   volatile rebuilds too. *)

let case_461 : Case.t =
  let entry = "test_461" in
  let program =
    lazy
      (build ~name:"pmdk-461" (fun b ->
           let open Builder in
           let _ =
             func b "hdr_write" [ "hdr"; "flags"; "size" ] ~body:(fun fb ->
                 store fb ~addr:(v "hdr") (v "flags");
                 let f2 = gep fb (v "hdr") (i 8) in
                 store fb ~addr:f2 (v "size");
                 ret_void fb)
           in
           let _ =
             func b "chunk_mark_used" [ "chunk" ] ~body:(fun fb ->
                 call_void fb "hdr_write" [ v "chunk"; i 1; i 4096 ];
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 (* volatile header rebuild cache *)
                 let vh = call fb "malloc" [ i 16 ] in
                 call_void fb "hdr_write" [ vh; i 0; i 0 ];
                 let chunk = call fb "pm_alloc" [ i 4096 ] in
                 call_void fb "chunk_mark_used" [ chunk ];
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-461";
    system = "PMDK";
    issue = Some 461;
    title = "chunk header flags/size volatile at crash";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush_fence;
    expected_shape = Case.Exp_inter 1;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes = "two stores in one helper; one hoist covers both";
  }

(* Issue 585: test code copies a blob into PM with the generic memcpy and
   omits the persist entirely. *)

let case_585 : Case.t =
  let entry = "test_585" in
  let program =
    lazy
      (build ~name:"pmdk-585" (fun b ->
           let open Builder in
           let _ =
             func b "blob_store" [ "dst"; "src"; "len" ] ~body:(fun fb ->
                 ignore (call fb "memcpy" [ v "dst"; v "src"; v "len" ]);
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let src = call fb "malloc" [ i 128 ] in
                 let tmp = call fb "malloc" [ i 128 ] in
                 ignore (call fb "memcpy" [ tmp; src; i 128 ]);
                 let blob = call fb "pm_alloc" [ i 128 ] in
                 call_void fb "blob_store" [ blob; src; i 128 ];
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-585";
    system = "PMDK";
    issue = Some 585;
    title = "blob copied to PM without persist (API misuse)";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush_fence;
    expected_shape = Case.Exp_inter 1;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes = "memcpy dual-use from the same test body";
  }

(* Issue 942: TOID-style typed assignment helper. *)

let case_942 : Case.t =
  let entry = "test_942" in
  let program =
    lazy
      (build ~name:"pmdk-942" (fun b ->
           let open Builder in
           let _ =
             func b "toid_assign" [ "slot"; "off" ] ~body:(fun fb ->
                 store fb ~addr:(v "slot") (v "off");
                 let ty = gep fb (v "slot") (i 8) in
                 store fb ~addr:ty (i 7);
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let vslot = call fb "malloc" [ i 16 ] in
                 call_void fb "toid_assign" [ vslot; i 1234 ];
                 let pslot = call fb "pm_alloc" [ i 16 ] in
                 call_void fb "toid_assign" [ pslot; i 5678 ];
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-942";
    system = "PMDK";
    issue = Some 942;
    title = "typed OID assignment left in cache (API misuse)";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush_fence;
    expected_shape = Case.Exp_inter 1;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes = "assignment helper used for stack-local OIDs as well";
  }

(* Issue 945: a field writer called through an object updater — the hoist
   lands two frames above the store. *)

let case_945 : Case.t =
  let entry = "test_945" in
  let program =
    lazy
      (build ~name:"pmdk-945" (fun b ->
           let open Builder in
           let _ =
             func b "field_write" [ "obj"; "off"; "val" ] ~body:(fun fb ->
                 let f = gep fb (v "obj") (v "off") in
                 store fb ~addr:f (v "val");
                 ret_void fb)
           in
           let _ =
             func b "obj_update" [ "obj"; "gen" ] ~body:(fun fb ->
                 call_void fb "field_write" [ v "obj"; i 0; v "gen" ];
                 call_void fb "field_write" [ v "obj"; i 8; i 1 ];
                 ret_void fb)
           in
           let _ =
             func b entry [] ~body:(fun fb ->
                 let shadow = call fb "malloc" [ i 64 ] in
                 call_void fb "obj_update" [ shadow; i 1 ];
                 let obj = call fb "pm_alloc" [ i 64 ] in
                 call_void fb "obj_update" [ obj; i 2 ];
                 crash fb;
                 ret_void fb)
           in
           ()))
  in
  {
    Case.id = "pmdk-945";
    system = "PMDK";
    issue = Some 945;
    title = "object update through shadow-capable updater (API misuse)";
    program;
    workload = run_entry entry;
    entry;
    expected_kind = Report.Missing_flush_fence;
    expected_shape = Case.Exp_inter 2;
    dev_fix = Some Case.Dev_inter_flush_fence;
    notes = "both intermediate frames operate on volatile shadows too";
  }

let all : Case.t list =
  [
    case_447;
    case_452;
    case_458;
    case_459;
    case_460;
    case_461;
    case_585;
    case_940;
    case_942;
    case_943;
    case_945;
  ]
