(** Tier dispatch: one entry point over {!Interp} (the differential
    oracle) and {!Compile} (the closure-threaded tier).

    [config.exec] selects the tier; both produce bit-identical traces,
    bugs, output, [cost_ns], coverage and crash images, so callers choose
    on performance alone. *)

type tier = Machine.tier

val tier_to_string : tier -> string

(** Parses ["interp"] / ["compiled"] (the CLI [--exec] values). *)
val tier_of_string : string -> (tier, string) result

(** [call t name args] invokes a function from the host through the tier
    named by [t]'s config. Raises {!Mem.Trap}, {!Interp.Aborted},
    {!Interp.Out_of_fuel} or {!Interp.Stopped_at_crash}, exactly like
    {!Interp.call}. *)
val call : Machine.t -> string -> int list -> int

(** One-shot convenience mirroring {!Interp.run} but honouring
    [config.exec]. *)
val run :
  ?pm_image:Bytes.t ->
  ?config:Machine.config ->
  Hippo_pmir.Program.t ->
  entry:string ->
  args:int list ->
  Machine.t * (int, [ `Stopped_at_crash | `Aborted | `Out_of_fuel ]) result
