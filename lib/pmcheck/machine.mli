(** Machine state shared by both execution tiers.

    One state record owns everything an execution accumulates — memory,
    persistency state, trace, bugs, output, simulated cost, coverage,
    crash points. {!Interp} (the oracle) and {!Compile} (the fast tier)
    are two dispatch strategies over this state; {!Exec} picks between
    them from [config.exec].

    The record is exposed concretely because the dispatch loops live in
    sibling modules and field access must not cost a function call. Treat
    it as read-only outside [lib/pmcheck]. *)

open Hippo_pmir

exception Aborted
exception Out_of_fuel
exception Stopped_at_crash

type tier = [ `Interp | `Compiled ]

type config = {
  trace : bool;  (** record the PM operation trace *)
  fuel : int;  (** maximum interpreted instructions *)
  cost : Cost.t option;  (** account simulated latency *)
  stop_at_crash : int option;  (** halt at the n-th crash point (1-based) *)
  track_images : bool;  (** fingerprint both PM images incrementally *)
  coverage : Coverage.t option;
      (** mark executed control edges in this map (the fuzzer's signal);
          [None] (the default) skips all marking *)
  exec : tier;  (** which execution tier {!Exec} dispatches to *)
  vol_size : int;
  stack_size : int;
  global_size : int;
  pm_size : int;
}

val default_config : config

type fcell = { mutable fv : float }
(** all-float cell: in-place (unboxed) accumulation for simulated cost *)

type t = {
  prog : Program.t;
  pfuncs : Prep.pfunc array;
  fidx : (string, int) Hashtbl.t;
  mem : Mem.t;
  ps : Pstate.t;
  cfg : config;
  cov : Coverage.t option;  (** = [cfg.coverage], hoisted for the hot loop *)
  compiled : (int array -> int) option array;
      (** per-function entry closures, built lazily by {!Compile} *)
  cost_acc : fcell;
  mutable seq : int;
  mutable steps : int;
  mutable trace_rev : Trace.event list;
  mutable bugs_rev : Report.bug list;
  mutable output_rev : int list;
  mutable crashes_hit : int;
  mutable armed_crash : int option;
  mutable crash_hook : (unit -> unit) option;
  mutable frames : Trace.stack;  (** current call stack, innermost first *)
  stats : Sitestats.t;  (** per-site pointer-class observations *)
}

val create : ?pm_image:Bytes.t -> ?pm_brk:int -> config -> Program.t -> t
val mem : t -> Mem.t
val set_crash_hook : t -> (unit -> unit) -> unit

(** [arm_crash t ~at] schedules {!Stopped_at_crash} for the [at]-th
    explicit crash point (absolute, 1-based, against
    {!crash_points_hit}). Unlike [cfg.stop_at_crash] it is mutable on a
    live machine: the simulation harness arms a crash for one workload
    call and disarms for the next, without rebuilding the session.
    Honoured identically by both tiers (the check lives in
    {!record_crash_point}). *)
val arm_crash : t -> at:int -> unit

val disarm_crash : t -> unit
val crash_points_hit : t -> int
val next_seq : t -> int
val push_event : t -> Trace.event -> unit
val classify_arg : int -> Trace.arg_class

(** [record_crash_point t ~iid ~loc] advances the crash-point counter,
    records the trace event, collects unpersisted-store bugs, fires the
    crash hook and honours [stop_at_crash] — identically in both tiers. *)
val record_crash_point : t -> iid:Iid.t option -> loc:Loc.t -> unit

(** The implicit crash point at program exit. *)
val exit_check : t -> unit

val trace : t -> Trace.event list
val site_stats : t -> Sitestats.t
val bugs : t -> Report.bug list
val raw_bugs : t -> Report.bug list
val output : t -> int list
val cost_ns : t -> float
val steps : t -> int
val pstate : t -> Pstate.t
val crash_image : t -> Bytes.t
val global_addr : t -> string -> int
