(** The persistency state machine (paper §4.2 definitions).

    Tracks, per PM store, whether the stored range is still {e dirty} in
    the CPU cache, {e pending} (covered by a weakly-ordered flush that no
    fence has ordered yet), or durable. Durable ranges are copied into the
    persisted image so crash simulation sees exactly the bytes a real crash
    would preserve.

    Deterministic-pessimistic model: lines are never spontaneously evicted,
    so "may still be volatile at the crash" becomes "is volatile at the
    crash" — the same worst-case stance pmemcheck takes when it reports
    every unflushed store. *)

open Hippo_pmir

type state = Dirty | Pending

type record = {
  iid : Iid.t;
  loc : Loc.t;
  stack : Trace.stack;
  addr : int;
  size : int;
  seq : int;  (** global event sequence number of the store *)
  mutable state : state;
  mutable snapshot : string;  (** bytes captured at flush time *)
  mutable flushed_by : Iid.t option;  (** the flush that moved it to pending *)
}

type t = {
  lines : (int, record list ref) Hashtbl.t;  (** keyed by start line index *)
  mutable pending : record list;
  mutable last_fence_seq : int;
  mutable flushes_total : int;
  mutable flushes_clean : int;  (** flushes that moved no dirty data *)
  mutable fences_total : int;
  mutable stores_pm_total : int;
}

let create () =
  {
    lines = Hashtbl.create 1024;
    pending = [];
    last_fence_seq = -1;
    flushes_total = 0;
    flushes_clean = 0;
    fences_total = 0;
    stores_pm_total = 0;
  }

let bucket t line =
  match Hashtbl.find_opt t.lines line with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.add t.lines line b;
      b

(** Record a PM store. Overlapping older {e dirty} records are superseded:
    the new store re-dirties the range, so only the newest cached value's
    durability matters. Pending records are left alone — they model
    writebacks already in flight toward the write-pending queue, which a
    later store to the same range cannot recall. *)
let store t ~iid ~loc ~stack ~addr ~size ~seq =
  t.stores_pm_total <- t.stores_pm_total + 1;
  let lo = addr and hi = addr + size in
  let line_lo = Layout.line_of_addr lo
  and line_hi = Layout.line_of_addr (hi - 1) in
  for line = line_lo to line_hi do
    let b = bucket t line in
    b :=
      List.filter
        (fun r ->
          not (r.state = Dirty && r.addr >= lo && r.addr + r.size <= hi))
        !b
  done;
  let r =
    { iid; loc; stack; addr; size; seq; state = Dirty; snapshot = "";
      flushed_by = None }
  in
  for line = line_lo to line_hi do
    let b = bucket t line in
    b := r :: !b
  done;
  r

(** Nontemporal stores bypass the cache into the write-pending queue: they
    are durable after the next fence, without any flush. *)
let store_nt t mem ~iid ~loc ~stack ~addr ~size ~seq =
  let r = store t ~iid ~loc ~stack ~addr ~size ~seq in
  r.state <- Pending;
  r.snapshot <- Mem.read_string mem ~addr ~len:size;
  t.pending <- r :: t.pending

(* Make a record's flush-time snapshot durable. The snapshot (not the
   current working bytes) is what the flush wrote back: stores issued to
   the same range after the flush but before the fence are not covered.
   Routed through Mem so the durable-image fingerprint stays current. *)
let commit_snapshot mem (r : record) =
  Mem.persist_string mem ~addr:r.addr r.snapshot

let remove_record t (r : record) =
  let line_lo = Layout.line_of_addr r.addr
  and line_hi = Layout.line_of_addr (r.addr + r.size - 1) in
  for line = line_lo to line_hi do
    match Hashtbl.find_opt t.lines line with
    | None -> ()
    | Some b -> b := List.filter (fun x -> not (x == r)) !b
  done

(** Flush the cache line containing [addr]. Dirty records intersecting the
    line capture their current working bytes and become pending ([Clwb],
    [Clflushopt]) or immediately durable ([Clflush], which the ISA orders
    with respect to stores to the same line). Returns the number of dirty
    records the flush transitioned. *)
let compare_seq a b = Int.compare a.seq b.seq

let flush t mem ~iid ~kind ~addr =
  t.flushes_total <- t.flushes_total + 1;
  if not (Layout.is_pm addr) then 0
  else begin
    let line = Layout.line_of_addr addr in
    let lo = line * Layout.cache_line and hi = (line + 1) * Layout.cache_line in
    let affected = ref [] in
    List.iter
      (fun b ->
        List.iter
          (fun r ->
            if r.state = Dirty && r.addr < hi && lo < r.addr + r.size then
              affected := r :: !affected)
          !b)
      (List.filter_map (Hashtbl.find_opt t.lines) [ line - 1; line ]);
    let affected = List.sort_uniq compare_seq !affected in
    (* Write-backs to one line complete in order, so a clflush — which
       makes the line's current contents durable right away — logically
       completes after any earlier still-in-flight flush of the same
       line. Drain those pending records first (oldest first), or their
       stale snapshots would overwrite the newer bytes at the next
       fence. *)
    (match kind with
    | Instr.Clflush ->
        let drained, in_flight =
          List.partition
            (fun r -> r.addr < hi && lo < r.addr + r.size)
            t.pending
        in
        List.iter
          (fun r ->
            commit_snapshot mem r;
            remove_record t r)
          (List.sort compare_seq drained);
        t.pending <- in_flight
    | Instr.Clwb | Instr.Clflushopt -> ());
    List.iter
      (fun r ->
        r.snapshot <- Mem.read_string mem ~addr:r.addr ~len:r.size;
        r.flushed_by <- Some iid;
        match kind with
        | Instr.Clflush ->
            commit_snapshot mem r;
            remove_record t r
        | Instr.Clwb | Instr.Clflushopt ->
            r.state <- Pending;
            t.pending <- r :: t.pending)
      affected;
    if affected = [] then t.flushes_clean <- t.flushes_clean + 1;
    List.length affected
  end

(** A fence orders every pending flush: pending records become durable.
    Returns the number of {e distinct cache lines} drained — the
    write-pending-queue drain work a real sfence waits for. *)
let fence t mem ~seq =
  t.fences_total <- t.fences_total + 1;
  t.last_fence_seq <- seq;
  let lines = Hashtbl.create 16 in
  (* Write-backs of overlapping ranges land in store order: commit oldest
     first so the newest flushed snapshot is the one that survives. *)
  List.iter
    (fun r ->
      Hashtbl.replace lines (Layout.line_of_addr r.addr) ();
      commit_snapshot mem r;
      remove_record t r)
    (List.sort compare_seq t.pending);
  t.pending <- [];
  Hashtbl.length lines

(** All still-unpersisted records, classified (paper §4.2): a [Dirty]
    record whose store precedes the last fence is a missing-flush (a fence
    that could order a flush exists); a [Dirty] record with no subsequent
    fence is missing-flush&fence; a [Pending] record is missing-fence. *)
let unpersisted_bugs t ~(crash : Report.crash_info) : Report.bug list =
  let seen = Hashtbl.create 64 in
  let bugs = ref [] in
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun r ->
          if not (Hashtbl.mem seen r.seq) then begin
            Hashtbl.add seen r.seq ();
            let kind =
              match r.state with
              | Pending -> Report.Missing_fence
              | Dirty ->
                  if r.seq < t.last_fence_seq then Report.Missing_flush
                  else Report.Missing_flush_fence
            in
            bugs :=
              {
                Report.kind;
                store =
                  {
                    iid = r.iid;
                    loc = r.loc;
                    stack = r.stack;
                    addr = r.addr;
                    size = r.size;
                  };
                crash;
                ordering_flush = r.flushed_by;
              }
              :: !bugs
          end)
        !b)
    t.lines;
  List.sort
    (fun (a : Report.bug) b -> Loc.compare a.store.loc b.store.loc)
    !bugs

(* ------------------------------------------------------------------ *)
(* Fault-injection hooks (the simulation harness).

   At an injected crash the harness perturbs the durable image beyond the
   deterministic-pessimistic endpoint: it may evict a subset of in-flight
   write-backs (reordered WPQ drain across lines) and tear dirty cache
   lines (partial eviction at 8-byte store-atomicity granularity). Both
   entry points below preserve the machine's physical ordering rules, so
   no injected schedule can fabricate an impossible image. *)

let dedup_by_seq records =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.seq then false
      else begin
        Hashtbl.add seen r.seq ();
        true
      end)
    records

(** Every still-dirty record, oldest store first (deterministic iteration
    base for fault injection and tests). *)
let dirty_records t =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ b -> List.iter (fun r -> if r.state = Dirty then acc := r :: !acc) !b)
    t.lines;
  List.sort compare_seq (dedup_by_seq !acc)

(** In-flight (flushed, unfenced) records, oldest first. *)
let pending_records t = List.sort compare_seq (dedup_by_seq t.pending)

let lines_of r =
  let lo = Layout.line_of_addr r.addr
  and hi = Layout.line_of_addr (r.addr + r.size - 1) in
  List.init (hi - lo + 1) (fun i -> lo + i)

(** [commit_chosen t mem chosen] makes a chosen subset of the in-flight
    write-backs durable, modelling a write-pending queue that drained
    some entries before power was lost. Write-backs to one cache line
    complete in store order (the PR 3 clflush-drain invariant), so the
    chosen set is first {e closed}: picking a record drags along every
    older pending record sharing a cache line with it, transitively.
    Committing then proceeds oldest-first, exactly like {!fence} — an
    injected schedule can choose {e which lines} drained, never the
    within-line order. Returns the number of records made durable. *)
let commit_chosen t mem chosen =
  let pend = pending_records t in
  let picked = Hashtbl.create 16 in
  List.iter (fun r -> if chosen r then Hashtbl.replace picked r.seq ()) pend;
  (* close under "older pending record sharing a cache line with a
     picked record"; iterate to a fixpoint since dragged records widen
     the picked line set *)
  let share_line a b =
    List.exists (fun l -> List.mem l (lines_of b)) (lines_of a)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        if
          (not (Hashtbl.mem picked r.seq))
          && List.exists
               (fun r' ->
                 Hashtbl.mem picked r'.seq
                 && r'.seq > r.seq && share_line r r')
               pend
        then begin
          Hashtbl.replace picked r.seq ();
          changed := true
        end)
      pend
  done;
  let drained, in_flight =
    List.partition (fun r -> Hashtbl.mem picked r.seq) t.pending
  in
  let drained = List.sort compare_seq (dedup_by_seq drained) in
  List.iter
    (fun r ->
      commit_snapshot mem r;
      remove_record t r)
    drained;
  t.pending <- in_flight;
  List.length drained

(** [tear_dirty mem r ~keep_word] partially evicts a dirty record: each
    8-byte-aligned word of its range whose index satisfies [keep_word]
    has its {e working} bytes copied into the durable image (stores are
    word-atomic on the simulated machine, so tearing never splits a
    word). The record itself stays dirty — tearing models an eviction
    the program never observed. *)
let tear_dirty mem (r : record) ~keep_word =
  let lo = r.addr and hi = r.addr + r.size in
  let w0 = lo / 8 and w1 = (hi - 1) / 8 in
  for w = w0 to w1 do
    if keep_word (w - w0) then begin
      let a = max lo (w * 8) and b = min hi ((w + 1) * 8) in
      Mem.persist_range mem ~addr:a ~size:(b - a)
    end
  done

(** Count of records not yet durable (dirty or pending). *)
let unpersisted_count t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ b ->
      List.iter (fun r -> Hashtbl.replace seen r.seq ()) !b)
    t.lines;
  Hashtbl.length seen

let pending_count t = List.length t.pending
