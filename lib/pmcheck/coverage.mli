(** Cheap edge-coverage bitmaps for the PMIR interpreter.

    The fuzzing subsystem ({!Hippo_fuzz}) steers mutation by the control
    edges an execution exercises. An edge is a [(function, block,
    successor)] triple — the successor of a branch, the taken arm of a
    conditional, the callee of a call, or the pseudo-successors
    ["!crash"] at a crash point — hashed into a fixed-size bitmap by a
    {e stable} string hash (FNV-1a), so the same program shape maps to
    the same indices in every run and across processes.

    Keying edges by names rather than positions makes the map meaningful
    {e across} programs: two mutants that share a block/callee name share
    its edges, while a mutation that introduces a fresh block or helper
    function contributes genuinely new indices. Hash collisions merely
    merge two edges (AFL-style) and cost precision, never soundness.

    Enabled by passing a map in {!Interp.config}[.coverage]; when absent
    the interpreter's hot loop only tests one immutable field per branch
    (the "zero cost when disabled" contract). Maps are not domain-safe:
    use one per worker and {!merge} the results. *)

type t

(** Number of bitmap slots ([2^16]); edge indices are in [0, map_size). *)
val map_size : int

val create : unit -> t

(** Clear every bit (reuse between runs). *)
val reset : t -> unit

(** [edge ~func ~block ~dest] is the stable bitmap index of a CFG edge.
    Computed once at program-preparation time, never in the hot loop. *)
val edge : func:string -> block:string -> dest:string -> int

(** [mark t i] sets bit [i]. O(1); called from the interpreter. *)
val mark : t -> int -> unit

val mem : t -> int -> bool

(** Number of distinct bits set. O(1). *)
val count : t -> int

(** Set bits in ascending index order. *)
val to_list : t -> int list

(** [merge ~into t] ors [t] into [into]; returns how many bits were new
    to [into]. *)
val merge : into:t -> t -> int

(** [add ~into is] marks the listed bits; returns how many were new. *)
val add : into:t -> int list -> int
