(** Program preparation: the one-time lowering both execution tiers share.

    Register names become array slots, block labels become code indices,
    callees become function indices, and coverage-edge hashes are
    precomputed from the stable (function, block, successor) naming — so
    neither the interpreter loop nor the compiled closures ever hash a
    string or search a table at run time. *)

open Hippo_pmir

type pval = PReg of int | PImm of int

type intrinsic =
  | Ipm_alloc
  | Ipm_base
  | Ipm_size
  | Imalloc
  | Ifree
  | Iemit
  | Iabort

type callee = Cfunc of int | Cintrinsic of intrinsic

(* Branchy operations carry their coverage-map indices, precomputed from
   the stable (function, block, successor) naming at preparation time so
   the hot loop never hashes a string. *)
type pop =
  | PStore of { addr : pval; value : pval; size : int; nt : bool }
  | PLoad of { dst : int; addr : pval; size : int }
  | PFlush of { kind : Instr.flush_kind; addr : pval }
  | PFence of { kind : Instr.fence_kind }
  | PBinop of { dst : int; op : Instr.binop; lhs : pval; rhs : pval }
  | PMov of { dst : int; src : pval }
  | PGep of { dst : int; base : pval; offset : pval }
  | PAlloca of { dst : int; size : int }
  | PCall of { dst : int; callee : callee; args : pval array; edge : int }
      (** [dst = -1] when the result is discarded *)
  | PJmp of { target : int; edge : int }
  | PCondbr of {
      cond : pval;
      if_true : int;
      if_false : int;
      edge_true : int;
      edge_false : int;
    }
  | PRet of pval option
  | PCrash of { edge : int }

type pinstr = { iid : Iid.t; loc : Loc.t; op : pop }

type pfunc = {
  fname : string;
  nregs : int;
  pslots : int array;
  code : pinstr array;
  leaders : int array;
      (** code index of each block's first instruction, in block order —
          the compiled tier's basic-block boundaries *)
}

let intrinsic_of_name = function
  | "pm_alloc" -> Some Ipm_alloc
  | "pm_base" -> Some Ipm_base
  | "pm_size" -> Some Ipm_size
  | "malloc" -> Some Imalloc
  | "free" -> Some Ifree
  | "emit" -> Some Iemit
  | "abort" -> Some Iabort
  | _ -> None

let prepare_func ~fidx ~global_addr (f : Func.t) : pfunc =
  let slots = Hashtbl.create 32 in
  let next = ref 0 in
  let slot r =
    match Hashtbl.find_opt slots r with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add slots r i;
        i
  in
  let pslots = Array.of_list (List.map slot (Func.params f)) in
  let blocks = Func.blocks f in
  (* Block label -> code index of its first instruction. *)
  let starts = Hashtbl.create 16 in
  let leaders_rev = ref [] in
  let _ =
    List.fold_left
      (fun idx (b : Func.block) ->
        Hashtbl.add starts b.label idx;
        leaders_rev := idx :: !leaders_rev;
        idx + List.length b.instrs)
      0 blocks
  in
  let leaders = Array.of_list (List.rev !leaders_rev) in
  let target l =
    match Hashtbl.find_opt starts l with
    | Some i -> i
    | None -> Mem.trap "undefined label %S in @%s" l (Func.name f)
  in
  let pv : Value.t -> pval = function
    | Value.Reg r -> PReg (slot r)
    | Value.Imm n -> PImm n
    | Value.Global g -> PImm (global_addr g)
    | Value.Null -> PImm 0
  in
  let fname = Func.name f in
  let pop ~block (i : Instr.t) : pop =
    let cov dest = Coverage.edge ~func:fname ~block ~dest in
    match Instr.op i with
    | Instr.Store { addr; value; size; nontemporal } ->
        PStore { addr = pv addr; value = pv value; size; nt = nontemporal }
    | Instr.Load { dst; addr; size } ->
        PLoad { dst = slot dst; addr = pv addr; size }
    | Instr.Flush { kind; addr } -> PFlush { kind; addr = pv addr }
    | Instr.Fence { kind } -> PFence { kind }
    | Instr.Binop { dst; op; lhs; rhs } ->
        PBinop { dst = slot dst; op; lhs = pv lhs; rhs = pv rhs }
    | Instr.Mov { dst; src } -> PMov { dst = slot dst; src = pv src }
    | Instr.Gep { dst; base; offset } ->
        PGep { dst = slot dst; base = pv base; offset = pv offset }
    | Instr.Alloca { dst; size } -> PAlloca { dst = slot dst; size }
    | Instr.Call { dst; callee; args } ->
        let target =
          match Hashtbl.find_opt fidx callee with
          | Some i -> Cfunc i
          | None -> (
              match intrinsic_of_name callee with
              | Some it -> Cintrinsic it
              | None -> Mem.trap "call to undefined function @%s" callee)
        in
        PCall
          {
            dst = (match dst with Some d -> slot d | None -> -1);
            callee = target;
            args = Array.of_list (List.map pv args);
            edge = cov callee;
          }
    | Instr.Br { target = l } -> PJmp { target = target l; edge = cov l }
    | Instr.Condbr { cond; if_true; if_false } ->
        PCondbr
          {
            cond = pv cond;
            if_true = target if_true;
            if_false = target if_false;
            edge_true = cov if_true;
            edge_false = cov if_false;
          }
    | Instr.Ret v -> PRet (Option.map pv v)
    | Instr.Crash -> PCrash { edge = cov "!crash" }
  in
  let code =
    List.concat_map
      (fun (b : Func.block) ->
        List.map
          (fun i ->
            { iid = Instr.iid i; loc = Instr.loc i; op = pop ~block:b.label i })
          b.instrs)
      blocks
    |> Array.of_list
  in
  { fname = Func.name f; nregs = !next; pslots; code; leaders }
