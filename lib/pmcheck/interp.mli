(** The PMIR interpreter and durability-bug finder.

    Plays the role pmemcheck plays for the original system: it executes
    the program under test, records a PM-operation trace (stores, flushes,
    fences, calls — each with its call stack), and reports every store
    that is not durable when a crash point or program exit is reached.

    Programs are prepared once (register names become array slots, labels
    become code indices, callees become function indices — see {!Prep}),
    which makes the YCSB benchmark workloads tractable.

    [Interp.call] {e always} interprets, whatever [config.exec] says —
    that discipline is what makes it the differential oracle for the
    compiled tier. Use {!Exec.call} when the caller should honour the
    configured tier.

    A typical bug-finding session:
    {[
      let t = Interp.create Interp.default_config prog in
      ignore (Interp.call t "main" []);
      Interp.exit_check t;
      let bugs = Interp.bugs t in
      ...
    ]} *)

open Hippo_pmir

exception Aborted  (** the program called the [abort] intrinsic *)

exception Out_of_fuel

exception Stopped_at_crash
(** raised when [stop_at_crash] is reached; the durable image is then the
    crash state under study *)

type config = Machine.config = {
  trace : bool;  (** record the PM operation trace and site statistics *)
  fuel : int;  (** maximum interpreted instructions *)
  cost : Cost.t option;  (** account simulated latency *)
  stop_at_crash : int option;  (** halt at the n-th crash point (1-based) *)
  track_images : bool;
      (** maintain incremental {!Imghash} fingerprints of both PM images
          (the single-pass crash sweep's capture mode; default false) *)
  coverage : Coverage.t option;
      (** mark executed control edges in this map (the fuzzer's guidance
          signal); [None] (the default) skips all marking — the hot loop
          only tests one immutable field per branch *)
  exec : Machine.tier;
      (** which tier {!Exec} dispatches to (default [`Compiled]); ignored
          by [Interp.call]/[Interp.run], which always interpret *)
  vol_size : int;
  stack_size : int;
  global_size : int;
  pm_size : int;
}

val default_config : config

type t = Machine.t

(** [create ?pm_image cfg prog] prepares the program and builds a fresh
    machine; [pm_image] seeds persistent memory (a restart) and
    [pm_brk] restores the PM allocator's high-water mark with it. *)
val create : ?pm_image:Bytes.t -> ?pm_brk:int -> config -> Program.t -> t

val mem : t -> Mem.t

(** [set_crash_hook t f] fires [f] at every explicit crash point, after
    bug collection and before any [stop_at_crash] stop — the single-pass
    sweep's image-capture callback. *)
val set_crash_hook : t -> (unit -> unit) -> unit

(** Explicit crash points passed so far. Maintained whether or not the
    trace is recorded, so crash points can be counted without
    materializing a trace. *)
val crash_points_hit : t -> int

(** [call t name args] invokes a function from the host (as a test driver
    invokes the program under valgrind), always through the interpreter.
    Persistency state, trace and detected bugs accumulate across calls.
    Raises {!Mem.Trap}, {!Aborted}, {!Out_of_fuel} or
    {!Stopped_at_crash}. *)
val call : t -> string -> int list -> int

(** [exit_check t] performs the implicit crash point at program exit:
    pmemcheck's "stores not made persistent" summary. *)
val exit_check : t -> unit

val trace : t -> Trace.event list
val site_stats : t -> Sitestats.t

(** Deduplicated bug reports (see {!Report.same_static_bug}). *)
val bugs : t -> Report.bug list

(** Every dynamic report, undeduplicated (the on-disk trace form). *)
val raw_bugs : t -> Report.bug list

(** Values passed to the [emit] intrinsic, in order — the program's
    observable output, compared by the do-no-harm verifier. *)
val output : t -> int list

val cost_ns : t -> float
val steps : t -> int
val pstate : t -> Pstate.t

(** The durable PM image (what a crash would preserve right now). *)
val crash_image : t -> Bytes.t

val global_addr : t -> string -> int

(** One-shot convenience: run [entry] with [args] under the interpreter,
    then the exit check. *)
val run :
  ?pm_image:Bytes.t ->
  ?config:config ->
  Program.t ->
  entry:string ->
  args:int list ->
  t * (int, [ `Stopped_at_crash | `Aborted | `Out_of_fuel ]) result
