(** The PMIR interpreter and durability-bug finder.

    Plays the role pmemcheck plays for the original system: it executes the
    program under test, records a PM-operation trace (stores, flushes,
    fences, calls — each with its call stack), and reports every store that
    is not durable when a crash point or program exit is reached.

    Since the compiled tier ({!Compile}) landed, this module is the
    differential {e oracle}: a direct, obviously-correct walk over the
    prepared code shared with the compiler ({!Prep}), against which the
    compiled closures are checked bit for bit. [Interp.call] always
    interprets; use {!Exec.call} to dispatch on [config.exec]. *)

open Hippo_pmir
open Prep
open Machine

exception Aborted = Machine.Aborted
exception Out_of_fuel = Machine.Out_of_fuel
exception Stopped_at_crash = Machine.Stopped_at_crash

type config = Machine.config = {
  trace : bool;
  fuel : int;
  cost : Cost.t option;
  stop_at_crash : int option;
  track_images : bool;
  coverage : Coverage.t option;
  exec : Machine.tier;
  vol_size : int;
  stack_size : int;
  global_size : int;
  pm_size : int;
}

let default_config = Machine.default_config

type t = Machine.t

let create = Machine.create
let mem = Machine.mem
let set_crash_hook = Machine.set_crash_hook
let crash_points_hit = Machine.crash_points_hit

(* Execution -------------------------------------------------------------- *)

let rec exec_call (t : Machine.t) (pf : pfunc) (args : int array) : int =
  if Array.length args <> Array.length pf.pslots then
    Mem.trap "@%s called with %d arguments (expects %d)" pf.fname
      (Array.length args) (Array.length pf.pslots);
  let regs = Array.make pf.nregs 0 in
  Array.iteri (fun i slot -> regs.(slot) <- args.(i)) pf.pslots;
  let stack_mark = Mem.stack_mark t.mem in
  let cost = t.cfg.cost in
  let ev (v : pval) = match v with PReg i -> regs.(i) | PImm n -> n in
  let acc = t.cost_acc in
  let charge ns = acc.fv <- acc.fv +. ns in
  let code = pf.code in
  let ncode = Array.length code in
  let pc = ref 0 in
  let result = ref 0 in
  let running = ref true in
  while !running do
    if !pc >= ncode then
      Mem.trap "fell off the end of @%s (missing ret)" pf.fname;
    t.steps <- t.steps + 1;
    if t.steps > t.cfg.fuel then raise Out_of_fuel;
    let i = Array.unsafe_get code !pc in
    incr pc;
    match i.op with
    | PBinop { dst; op; lhs; rhs } ->
        let a = ev lhs and b = ev rhs in
        let r =
          match op with
          | Instr.Add -> a + b
          | Instr.Sub -> a - b
          | Instr.Mul -> a * b
          | Instr.Div -> if b = 0 then Mem.trap "division by zero" else a / b
          | Instr.Rem -> if b = 0 then Mem.trap "remainder by zero" else a mod b
          | Instr.And -> a land b
          | Instr.Or -> a lor b
          | Instr.Xor -> a lxor b
          | Instr.Shl -> a lsl (b land 62)
          | Instr.Lshr -> a lsr (b land 62)
          | Instr.Eq -> if a = b then 1 else 0
          | Instr.Ne -> if a <> b then 1 else 0
          | Instr.Lt -> if a < b then 1 else 0
          | Instr.Le -> if a <= b then 1 else 0
          | Instr.Gt -> if a > b then 1 else 0
          | Instr.Ge -> if a >= b then 1 else 0
        in
        regs.(dst) <- r;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PMov { dst; src } ->
        regs.(dst) <- ev src;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PGep { dst; base; offset } ->
        regs.(dst) <- ev base + ev offset;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PLoad { dst; addr; size } ->
        let a = ev addr in
        regs.(dst) <- Mem.load t.mem ~addr:a ~size;
        (match cost with
        | Some c ->
            charge (if Layout.is_pm a then c.load_pm_ns else c.load_dram_ns)
        | None -> ())
    | PStore { addr; value; size; nt } ->
        let a = ev addr and v = ev value in
        Mem.store t.mem ~addr:a ~size v;
        if t.cfg.trace then
          Sitestats.observe t.stats ~site:i.iid ~arg:(-1) (classify_arg a);
        if Layout.is_pm a then begin
          let seq = next_seq t in
          (if nt then
             Pstate.store_nt t.ps t.mem ~iid:i.iid ~loc:i.loc ~stack:t.frames
               ~addr:a ~size ~seq
           else
             ignore
               (Pstate.store t.ps ~iid:i.iid ~loc:i.loc ~stack:t.frames ~addr:a
                  ~size ~seq));
          if t.cfg.trace then
            push_event t
              (Trace.Store
                 {
                   iid = i.iid;
                   loc = i.loc;
                   stack = t.frames;
                   addr = a;
                   size;
                   nontemporal = nt;
                   seq;
                 })
        end;
        (match cost with
        | Some c ->
            charge (if Layout.is_pm a then c.store_pm_ns else c.store_dram_ns)
        | None -> ())
    | PFlush { kind; addr } ->
        let a = ev addr in
        let moved = Pstate.flush t.ps t.mem ~iid:i.iid ~kind ~addr:a in
        if Layout.is_pm a then begin
          let seq = next_seq t in
          if t.cfg.trace then
            push_event t
              (Trace.Flush
                 {
                   iid = i.iid;
                   loc = i.loc;
                   stack = t.frames;
                   kind;
                   line_addr = Layout.line_base a;
                   seq;
                 })
        end;
        (match cost with
        | Some c ->
            charge
              (if Layout.is_pm a then
                 if moved > 0 then c.flush_pm_dirty_ns else c.flush_pm_clean_ns
               else c.flush_vol_ns)
        | None -> ())
    | PFence { kind } ->
        let seq = next_seq t in
        let drained = Pstate.fence t.ps t.mem ~seq in
        if t.cfg.trace then
          push_event t
            (Trace.Fence
               { iid = i.iid; loc = i.loc; stack = t.frames; kind; seq });
        (match cost with
        | Some c ->
            charge
              (c.fence_base_ns
              +. (float_of_int drained *. c.fence_drain_line_ns))
        | None -> ())
    | PAlloca { dst; size } ->
        regs.(dst) <- Mem.alloc_stack t.mem size;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PCall { dst; callee; args; edge } -> (
        (match t.cov with Some c -> Coverage.mark c edge | None -> ());
        match callee with
        | Cintrinsic it ->
            let arg k = ev args.(k) in
            let r =
              match it with
              | Ipm_alloc -> Mem.alloc_pm t.mem (arg 0)
              | Ipm_base -> Layout.pm_base
              | Ipm_size -> t.cfg.pm_size
              | Imalloc -> Mem.alloc_vol t.mem (arg 0)
              | Ifree -> 0
              | Iemit ->
                  t.output_rev <- arg 0 :: t.output_rev;
                  0
              | Iabort -> raise Aborted
            in
            if dst >= 0 then regs.(dst) <- r;
            (match cost with Some c -> charge c.call_ns | None -> ())
        | Cfunc fi ->
            let callee_pf = t.pfuncs.(fi) in
            let argv = Array.map ev args in
            if t.cfg.trace then
              Array.iteri
                (fun k v ->
                  Sitestats.observe t.stats ~site:i.iid ~arg:k (classify_arg v))
                argv;
            (if t.cfg.trace then
               let seq = next_seq t in
               push_event t
                 (Trace.Call
                    {
                      iid = i.iid;
                      loc = i.loc;
                      stack = t.frames;
                      callee = callee_pf.fname;
                      arg_classes = Array.to_list (Array.map classify_arg argv);
                      seq;
                    }));
            t.frames <-
              {
                Trace.func = callee_pf.fname;
                callsite = Some i.iid;
                callsite_loc = Some i.loc;
              }
              :: t.frames;
            (match cost with Some c -> charge c.call_ns | None -> ());
            let r = exec_call t callee_pf argv in
            t.frames <- List.tl t.frames;
            if dst >= 0 then regs.(dst) <- r)
    | PJmp { target; edge } ->
        (match t.cov with Some c -> Coverage.mark c edge | None -> ());
        pc := target;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PCondbr { cond; if_true; if_false; edge_true; edge_false } ->
        let taken = ev cond <> 0 in
        (match t.cov with
        | Some c -> Coverage.mark c (if taken then edge_true else edge_false)
        | None -> ());
        pc := (if taken then if_true else if_false);
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PRet v ->
        result := (match v with Some v -> ev v | None -> 0);
        running := false
    | PCrash { edge } ->
        (match t.cov with Some c -> Coverage.mark c edge | None -> ());
        record_crash_point t ~iid:(Some i.iid) ~loc:i.loc
  done;
  Mem.stack_release t.mem stack_mark;
  !result

(** [call t name args] invokes a function from the host (as the test driver
    invokes the program under valgrind) — always through the interpreter,
    whatever [config.exec] says; this is what makes it the oracle. The
    persistency state, the trace and detected bugs accumulate across
    calls. *)
let call t name args =
  match Hashtbl.find_opt t.fidx name with
  | None -> Mem.trap "call to undefined function @%s" name
  | Some fi ->
      t.frames <- [ { Trace.func = name; callsite = None; callsite_loc = None } ];
      Fun.protect
        ~finally:(fun () -> t.frames <- [])
        (fun () -> exec_call t t.pfuncs.(fi) (Array.of_list args))

(* Results ---------------------------------------------------------------- *)

let exit_check = Machine.exit_check
let trace = Machine.trace
let site_stats = Machine.site_stats
let bugs = Machine.bugs
let raw_bugs = Machine.raw_bugs
let output = Machine.output
let cost_ns = Machine.cost_ns
let steps = Machine.steps
let pstate = Machine.pstate
let crash_image = Machine.crash_image
let global_addr = Machine.global_addr

(** One-shot convenience: run [entry] with [args] under the interpreter,
    then apply the exit check. Returns the machine for inspection. *)
let run ?pm_image ?(config = default_config) prog ~entry ~args =
  let t = create ?pm_image config prog in
  let ret =
    try Ok (call t entry args) with
    | Stopped_at_crash -> Error `Stopped_at_crash
    | Aborted -> Error `Aborted
    | Out_of_fuel -> Error `Out_of_fuel
  in
  (match ret with Ok _ -> exit_check t | Error _ -> ());
  (t, ret)
